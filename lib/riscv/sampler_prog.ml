type variant = Vulnerable | Branchless | Shuffled | Cdt_table

type layout = { ram_size : int; poly_base : int; moduli_base : int; perm_base : int }

let default_layout = { ram_size = 1 lsl 20; poly_base = 0x40000; moduli_base = 0x8000; perm_base = 0xC000 }

let noise_port = Memory.mmio_base
let rejection_port = Memory.mmio_base + 4
let uniform_port = Memory.mmio_base + 8
let sign_port = Memory.mmio_base + 12
let cdt_entries = 41
let cdt_base = 0xE000

(* Register plan (see the .mli for the algorithm):
   s1 = coeff_count, s2 = coeff_mod_count, s3 = moduli base,
   s4 = MMIO base, s5 = i, s0 = poly base,
   t0/t1 = noise lo/hi, t2 = borrow/carry, t3 = j, t4 = element addr,
   t5/t6 + a1..a3 = scratch. *)

let s0 = Inst.s 0
let s1 = Inst.s 1
let s2 = Inst.s 2
let s3 = Inst.s 3
let s4 = Inst.s 4
let s5 = Inst.s 5
let t0 = Inst.t 0
let t1 = Inst.t 1
let t2 = Inst.t 2
let t3 = Inst.t 3
let t4 = Inst.t 4
let t5 = Inst.t 5
let t6 = Inst.t 6
let a0 = Inst.a 0
let a1 = Inst.a 1
let a2 = Inst.a 2
let a3 = Inst.a 3
let x0 = Inst.x0

let dist_subroutine =
  let open Asm in
  [
    label "dist";
    comment "replay the polar-method rejections of this draw";
    ins (Inst.Lw (t5, s4, 4));
    li t6 0x1E3779B9;
    label "dist_rej_loop";
    beq t5 x0 "dist_accept";
    ins (Inst.Mul (a1, t6, t5));
    ins (Inst.Mulhu (a2, a1, t6));
    ins (Inst.Xor (a1, a1, a2));
    ins (Inst.Divu (a3, a1, t6));
    ins (Inst.Addi (t5, t5, -1));
    j "dist_rej_loop";
    label "dist_accept";
    comment "fixed-length burn modelling sqrt/log of the accepted point";
    ins (Inst.Mul (a1, t6, t6));
    ins (Inst.Divu (a2, a1, t6));
    ins (Inst.Mul (a1, a2, t6));
    ins (Inst.Divu (a2, a1, t6));
    ins (Inst.Lw (a0, s4, 0));
    ret;
  ]

(* poly element address for coefficient index held in a register:
   t4 = poly_base + 8 * idx.  The j loop then strides by 8*n. *)
let coefficient_address ~layout ~idx_reg =
  let open Asm in
  [ ins (Inst.Slli (t4, idx_reg, 3)); ins (Inst.Add (t4, t4, s0)); comment (Printf.sprintf "poly @0x%x" layout.poly_base) ]

let store_and_stride =
  let open Asm in
  fun next_label ->
    [
      ins (Inst.Slli (t6, s1, 3));
      ins (Inst.Add (t4, t4, t6));
      ins (Inst.Addi (t3, t3, 1));
      j next_label;
    ]

let prologue ?(with_perm = false) ~layout ~n ~k () =
  let open Asm in
  [
    comment "set_poly_coeffs_normal prologue";
    li s1 n;
    li s2 k;
    li s3 layout.moduli_base;
    li s4 Memory.mmio_base;
    li s0 layout.poly_base;
    li s5 0;
  ]
  @ (if with_perm then [ li (Inst.s 6) layout.perm_base ] else [])

let vulnerable_body ~layout ~shuffled =
  let open Asm in
  let idx_setup =
    if shuffled then
      [
        comment "idx = perm[i]";
        ins (Inst.Slli (t4, s5, 2));
        ins (Inst.Add (t4, t4, Inst.s 6));
        ins (Inst.Lw (t2, t4, 0));
      ]
      @ coefficient_address ~layout ~idx_reg:t2
    else coefficient_address ~layout ~idx_reg:s5
  in
  [
    label "outer_loop";
    bge s5 s1 "finish";
    call "dist";
    comment "int64_t noise = dist(engine)  [vulnerability 2]";
    mv t0 a0;
    ins (Inst.Srai (t1, t0, 31));
  ]
  @ idx_setup
  @ [
      li t3 0;
      comment "if (noise > 0) / else if (noise < 0) / else  [vulnerability 1]";
      blt x0 t0 "pos_branch";
      blt t0 x0 "neg_branch";
      j "zero_branch";
      (* --- noise > 0 -------------------------------------------------- *)
      label "pos_branch";
      label "pos_loop";
      bge t3 s2 "next_i";
      ins (Inst.Sw (t0, t4, 0));
      ins (Inst.Sw (t1, t4, 4));
    ]
  @ store_and_stride "pos_loop"
  @ [
      (* --- noise < 0 -------------------------------------------------- *)
      label "neg_branch";
      comment "noise = -noise  (64-bit)  [vulnerability 3]";
      ins (Inst.Sltu (t2, x0, t0));
      ins (Inst.Sub (t0, x0, t0));
      ins (Inst.Sub (t1, x0, t1));
      ins (Inst.Sub (t1, t1, t2));
      label "neg_loop";
      bge t3 s2 "next_i";
      comment "poly[i + j*n] = coeff_modulus[j] - noise";
      ins (Inst.Slli (t6, t3, 3));
      ins (Inst.Add (t6, t6, s3));
      ins (Inst.Lw (a1, t6, 0));
      ins (Inst.Lw (a2, t6, 4));
      ins (Inst.Sltu (t2, a1, t0));
      ins (Inst.Sub (a1, a1, t0));
      ins (Inst.Sub (a2, a2, t1));
      ins (Inst.Sub (a2, a2, t2));
      ins (Inst.Sw (a1, t4, 0));
      ins (Inst.Sw (a2, t4, 4));
    ]
  @ store_and_stride "neg_loop"
  @ [
      (* --- noise = 0 -------------------------------------------------- *)
      label "zero_branch";
      label "zero_loop";
      bge t3 s2 "next_i";
      ins (Inst.Sw (x0, t4, 0));
      ins (Inst.Sw (x0, t4, 4));
    ]
  @ store_and_stride "zero_loop"
  @ [ label "next_i"; ins (Inst.Addi (s5, s5, 1)); j "outer_loop"; label "finish"; halt ]

let branchless_body ~layout =
  let open Asm in
  [
    label "outer_loop";
    bge s5 s1 "finish";
    call "dist";
    comment "v3.6-style: value = noise + (q & (noise >> 63)); no data branch";
    mv t0 a0;
    ins (Inst.Srai (t1, t0, 31));
  ]
  @ coefficient_address ~layout ~idx_reg:s5
  @ [
      li t3 0;
      label "mask_loop";
      bge t3 s2 "next_i";
      ins (Inst.Slli (t6, t3, 3));
      ins (Inst.Add (t6, t6, s3));
      ins (Inst.Lw (a1, t6, 0));
      ins (Inst.Lw (a2, t6, 4));
      comment "t1 is already the all-ones/zero mask (sign extension)";
      ins (Inst.And (a1, a1, t1));
      ins (Inst.And (a2, a2, t1));
      comment "64-bit add: noise + masked modulus";
      ins (Inst.Add (a1, a1, t0));
      ins (Inst.Sltu (t2, a1, t0));
      ins (Inst.Add (a2, a2, t1));
      ins (Inst.Add (a2, a2, t2));
      ins (Inst.Sw (a1, t4, 0));
      ins (Inst.Sw (a2, t4, 4));
    ]
  @ store_and_stride "mask_loop"
  @ [ label "next_i"; ins (Inst.Addi (s5, s5, 1)); j "outer_loop"; label "finish"; halt ]

(* Constant-time CDT draw: scan all thresholds unconditionally,
   accumulate how many fall below the uniform word, then branch on a
   separate sign coin (the leak [10] exploits). *)
let cdt_dist_subroutine =
  let open Asm in
  [
    label "dist";
    ins (Inst.Lw (a1, s4, 8));
    (* uniform 31-bit word *)
    li t5 cdt_base;
    li t6 cdt_entries;
    li a0 0;
    (* magnitude accumulator *)
    li a2 0;
    (* index *)
    label "cdt_loop";
    beq a2 t6 "cdt_scan_done";
    ins (Inst.Lw (a3, t5, 0));
    comment "fixed-latency wide compare of the table entry, modelled on";
    comment "the div unit (same burn convention as the polar dist): the";
    comment "count is data-independent so the scan stays constant-time,";
    comment "and every draw keeps the high-power plateau segmentation";
    comment "anchors on";
    ins (Inst.Divu (t3, a3, t6));
    ins (Inst.Sltu (t2, a3, a1));
    ins (Inst.Add (a0, a0, t2));
    ins (Inst.Addi (t5, t5, 4));
    ins (Inst.Addi (a2, a2, 1));
    j "cdt_loop";
    label "cdt_scan_done";
    ins (Inst.Lw (a1, s4, 12));
    (* sign coin *)
    beq a1 x0 "cdt_positive";
    ins (Inst.Sub (a0, x0, a0));
    label "cdt_positive";
    ret;
  ]

let build ?(variant = Vulnerable) ?origin ~n ~k () =
  let layout = default_layout in
  if n <= 0 || k <= 0 then invalid_arg "Sampler_prog.build: n and k must be positive";
  let body, dist =
    match variant with
    | Vulnerable -> (prologue ~layout ~n ~k () @ vulnerable_body ~layout ~shuffled:false, dist_subroutine)
    | Shuffled -> (prologue ~with_perm:true ~layout ~n ~k () @ vulnerable_body ~layout ~shuffled:true, dist_subroutine)
    | Branchless -> (prologue ~layout ~n ~k () @ branchless_body ~layout, dist_subroutine)
    | Cdt_table ->
        (* The CDT design point ([10]/[12]) pairs the constant-time
           table scan with a branchless assignment body: its residual
           leak is the sign branch inside the draw, not the v3.2
           ladder. *)
        (prologue ~layout ~n ~k () @ branchless_body ~layout, cdt_dist_subroutine)
  in
  (* The dist subroutine sits after the main code; execution falls into
     it only via call. *)
  Asm.assemble ?origin (body @ dist)

let install_noise_port mem ~draws =
  let noise_cursor = ref 0 and rejection_cursor = ref 0 in
  Memory.set_mmio_read mem (fun addr ->
      if addr = noise_port then begin
        if !noise_cursor >= Array.length draws then invalid_arg "Sampler_prog: noise queue exhausted";
        let v, _ = draws.(!noise_cursor) in
        incr noise_cursor;
        Int32.of_int v
      end
      else if addr = rejection_port then begin
        if !rejection_cursor >= Array.length draws then invalid_arg "Sampler_prog: rejection queue exhausted";
        let _, r = draws.(!rejection_cursor) in
        incr rejection_cursor;
        Int32.of_int r
      end
      else invalid_arg (Printf.sprintf "Sampler_prog: unmapped MMIO read at 0x%x" addr))

let stage_moduli mem layout moduli =
  Array.iteri
    (fun j q ->
      if q <= 0 then invalid_arg "Sampler_prog.stage_moduli: modulus must be positive";
      let addr = layout.moduli_base + (8 * j) in
      Memory.store_word mem addr (Int32.of_int (q land 0xFFFFFFFF));
      Memory.store_word mem (addr + 4) (Int32.of_int (q lsr 32)))
    moduli

let stage_permutation mem layout perm =
  Array.iteri (fun i p -> Memory.store_word mem (layout.perm_base + (4 * i)) (Int32.of_int p)) perm

let read_poly mem layout ~n ~k =
  Array.init k (fun j ->
      Array.init n (fun i ->
          let addr = layout.poly_base + (8 * (i + (j * n))) in
          let lo = Int32.to_int (Memory.load_word mem addr) land 0xFFFFFFFF in
          let hi = Int32.to_int (Memory.load_word mem (addr + 4)) land 0xFFFFFFFF in
          lo lor (hi lsl 32)))

let draws_of_gaussian rng clipped ~count =
  let polar = Mathkit.Gaussian.polar () in
  let noises = Array.make count 0 in
  let draws =
    Array.init count (fun i ->
        (* Replay both rejection sources: polar-loop retries inside each
           normal draw and whole-draw retries from the deviation clip. *)
        let rec clipped_draw rejections =
          let x, polar_rej = Mathkit.Gaussian.normal_rejections polar rng ~mu:0.0 ~sigma:clipped.Mathkit.Gaussian.sigma in
          let rejections = rejections + polar_rej in
          if Float.abs x > clipped.Mathkit.Gaussian.max_deviation then clipped_draw (rejections + 1)
          else (int_of_float (Float.round x), rejections)
        in
        let noise, rejections = clipped_draw 0 in
        noises.(i) <- noise;
        (noise, rejections))
  in
  (draws, noises)

let install_cdt_port mem ~draws =
  let uniform_cursor = ref 0 and sign_cursor = ref 0 in
  Memory.set_mmio_read mem (fun addr ->
      if addr = uniform_port then begin
        if !uniform_cursor >= Array.length draws then invalid_arg "Sampler_prog: uniform queue exhausted";
        let u, _ = draws.(!uniform_cursor) in
        incr uniform_cursor;
        Int32.of_int u
      end
      else if addr = sign_port then begin
        if !sign_cursor >= Array.length draws then invalid_arg "Sampler_prog: sign queue exhausted";
        let _, sgn = draws.(!sign_cursor) in
        incr sign_cursor;
        Int32.of_int sgn
      end
      else invalid_arg (Printf.sprintf "Sampler_prog: unmapped MMIO read at 0x%x" addr))

let stage_cdt_table mem layout thresholds =
  ignore layout;
  if Array.length thresholds <> cdt_entries then
    invalid_arg (Printf.sprintf "Sampler_prog.stage_cdt_table: need exactly %d thresholds" cdt_entries);
  Array.iteri
    (fun i t -> Memory.store_word mem (cdt_base + (4 * i)) (Int32.of_int (t land 0x7FFFFFFF)))
    thresholds

let cdt_thresholds ~sigma =
  let table = Mathkit.Gaussian.cdt_table ~sigma ~tail_cut:(float_of_int cdt_entries /. sigma) in
  (* table covers magnitudes 0..bound cumulatively in [0,1]; rescale to
     31-bit fixed point, padding with saturated entries *)
  Array.init cdt_entries (fun i ->
      let p = if i < Array.length table then table.(i) else 1.0 in
      int_of_float (Float.round (p *. float_of_int 0x7FFFFFFF)))

let cdt_magnitude thresholds u =
  Array.fold_left (fun acc t -> if t < u then acc + 1 else acc) 0 thresholds

let cdt_draws_of_gaussian rng ~sigma ~count =
  let thresholds = cdt_thresholds ~sigma in
  let noises = Array.make count 0 in
  let draws =
    Array.init count (fun i ->
        let u = Int64.to_int (Mathkit.Prng.int64_below rng (Int64.of_int 0x80000000)) in
        let magnitude = cdt_magnitude thresholds u in
        let sgn = if magnitude = 0 then 0 else if Mathkit.Prng.bool rng then 1 else 0 in
        noises.(i) <- (if sgn = 1 then -magnitude else magnitude);
        (u, sgn))
  in
  (draws, noises)

let cdt_force_draw rng ~sigma ~value =
  let thresholds = cdt_thresholds ~sigma in
  let m = abs value in
  if m > cdt_entries then invalid_arg "Sampler_prog.cdt_force_draw: magnitude beyond the table";
  (* magnitude m <=> thresholds.(m-1) < u <= thresholds.(m) *)
  let lo = if m = 0 then 0 else thresholds.(m - 1) + 1 in
  let hi = if m < cdt_entries then thresholds.(m) else 0x7FFFFFFF in
  if hi < lo then invalid_arg "Sampler_prog.cdt_force_draw: empty CDF band at this resolution";
  let u = Mathkit.Prng.int_in rng lo hi in
  let sgn = if value < 0 then 1 else 0 in
  (u, sgn)
