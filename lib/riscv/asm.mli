(** Two-pass assembler with symbolic labels.

    Programs are described as a list of {!item}s; [assemble] resolves
    labels in a first pass (every item has a size that does not depend
    on label addresses) and emits encoded words in a second.  Pseudo
    instructions ([li], [la], [j], [call], ...) expand exactly as the
    GNU assembler expands them, so the instruction stream — and hence
    the power trace — matches what a real toolchain would produce. *)

type item

val label : string -> item
val ins : Inst.t -> item
(** A concrete instruction with numeric offsets. *)

val comment : string -> item
(** No-op marker kept for listings. *)

(* Label-relative control flow. *)

val beq : Inst.reg -> Inst.reg -> string -> item
val bne : Inst.reg -> Inst.reg -> string -> item
val blt : Inst.reg -> Inst.reg -> string -> item
val bge : Inst.reg -> Inst.reg -> string -> item
val bltu : Inst.reg -> Inst.reg -> string -> item
val bgeu : Inst.reg -> Inst.reg -> string -> item
val j : string -> item
val jal : Inst.reg -> string -> item
val call : string -> item  (** jal ra, label *)

(* Pseudo instructions. *)

val li : Inst.reg -> int -> item
(** Load a 32-bit constant (addi, or lui+addi when it does not fit). *)

val la : Inst.reg -> string -> item
(** Load a label's absolute address. *)

val mv : Inst.reg -> Inst.reg -> item
val nop : item
val ret : item
val neg : Inst.reg -> Inst.reg -> item
val halt : item  (** ebreak *)

type program = {
  words : int32 array;  (** encoded instructions *)
  labels : (string * int) list;  (** label -> byte address *)
  listing : string list;  (** disassembly with addresses *)
  origin : int;  (** byte address of [words.(0)] *)
}

type error =
  | Duplicate_label of string
  | Undefined_label of string
  | Branch_out_of_range of { label : string; distance : int; at : int }
      (** a label-relative branch/jump at byte address [at] cannot
          encode the [distance] (bytes) to [label] *)

exception Error of error

val error_to_string : error -> string

val assemble : ?origin:int -> item list -> program
(** @raise Error on duplicate or undefined labels and on
    label-relative offsets that do not fit their encoding.
    @raise Invalid_argument on out-of-range numeric immediates in
    concrete instructions. *)

val label_address : program -> string -> int
(** @raise Not_found for unknown labels. *)
