(** SEAL's noise sampler as an RV32IM program.

    This is the Fig. 2 code of the paper —
    [Encryptor::set_poly_coeffs_normal] of SEAL v3.2 — compiled by hand
    to the instruction stream a RISC-V toolchain produces for it:

    - the outer loop samples [coeff_count] coefficients;
    - each sample is a 64-bit [noise] (register pair, low word plus
      sign extension);
    - the [if (noise > 0) / else if (noise < 0) / else] ladder executes
      three distinct code paths (vulnerability 1);
    - the value assignment moves [noise] through registers and the
      memory bus (vulnerability 2);
    - the negative path executes a 64-bit two's-complement negation
      before storing [modulus - noise] into every RNS plane
      (vulnerability 3).

    The clipped-normal draw itself ([dist(engine)] in Fig. 2) is
    delegated to a memory-mapped entropy/accelerator port: the host
    pre-samples the values with {!Mathkit.Gaussian} and replays, per
    draw, the exact number of Marsaglia-polar rejections the software
    sampler performed, as a data-independent burn loop dominated by
    [divu] (38-cycle, high-power) instructions.  This keeps the
    time-variant execution profile — and therefore the segmentation
    problem the paper solves with peak detection — while avoiding a
    soft-float library whose leakage we could not validate.  The
    substitution is recorded in DESIGN.md. *)

type variant =
  | Vulnerable  (** SEAL v3.2: the if/elseif/else ladder of Fig. 2 *)
  | Branchless  (** SEAL v3.6-style: mask arithmetic, no secret-dependent branch *)
  | Shuffled  (** v3.2 ladder but coefficients sampled in a host-supplied random order *)
  | Cdt_table
      (** constant-time CDT sampler (the design of the prior work the
          paper contrasts with, [10]/[12]): a fixed-length scan of a
          cumulative-distribution table accumulates the magnitude
          without data branches, then a sign branch negates — the
          residual leak those papers attack *)

type layout = {
  ram_size : int;
  poly_base : int;  (** uint64 array, coeff_count * coeff_mod_count entries *)
  moduli_base : int;  (** uint64 array, coeff_mod_count entries *)
  perm_base : int;  (** uint32 array, coeff_count entries (Shuffled only) *)
}

val default_layout : layout

val build : ?variant:variant -> ?origin:int -> n:int -> k:int -> unit -> Asm.program
(** Assemble the sampler for [n] coefficients and [k] RNS primes, at
    byte address [origin] (default 0).  Labels of interest:
    ["outer_loop"], ["dist"], ["pos_branch"], ["neg_branch"],
    ["zero_branch"], ["next_i"], ["finish"]. *)

val noise_port : int
(** MMIO address the program loads each accepted noise value from. *)

val rejection_port : int
(** MMIO address delivering the rejection count of the next draw. *)

val uniform_port : int
(** MMIO address the CDT firmware reads its 31-bit uniform word from. *)

val sign_port : int
(** MMIO address the CDT firmware reads the sign coin from (0 or 1). *)

val install_cdt_port : Memory.t -> draws:(int * int) array -> unit
(** [install_cdt_port mem ~draws] with [draws.(i) = (uniform31, sign)];
    wires the CDT firmware's two entropy ports. *)

val cdt_entries : int
(** Number of thresholds the firmware scans (covers magnitudes
    0..cdt_entries). *)

val cdt_base : int
(** RAM address of the staged threshold table. *)

val stage_cdt_table : Memory.t -> layout -> int array -> unit
(** Write the scaled (31-bit) cumulative thresholds.
    @raise Invalid_argument unless exactly {!cdt_entries} values. *)

val cdt_thresholds : sigma:float -> int array
(** 31-bit scaled thresholds of the half-normal CDF: the firmware's
    magnitude for uniform u is the number of thresholds <= u. *)

val cdt_draws_of_gaussian : Mathkit.Prng.t -> sigma:float -> count:int -> (int * int) array * int array
(** Entropy queue for the CDT firmware plus the ground-truth signed
    values it will produce (host replica of the scan). *)

val cdt_force_draw : Mathkit.Prng.t -> sigma:float -> value:int -> int * int
(** A (uniform, sign) entropy pair that makes the firmware produce
    exactly [value] — how profiling "configures" a CDT device.
    @raise Invalid_argument when the CDF band for |value| is empty at
    31-bit resolution. *)

val install_noise_port : Memory.t -> draws:(int * int) array -> unit
(** [install_noise_port mem ~draws] wires the MMIO handler;
    [draws.(i) = (noise, rejections)].  Reading more draws than
    provided raises [Invalid_argument]. *)

val stage_moduli : Memory.t -> layout -> int array -> unit
(** Write the coefficient-modulus chain (each < 2^62) into RAM. *)

val stage_permutation : Memory.t -> layout -> int array -> unit
(** Write the sampling-order permutation (Shuffled variant). *)

val read_poly : Memory.t -> layout -> n:int -> k:int -> int array array
(** [read_poly mem l ~n ~k] returns [k] rows of [n] coefficients, the
    contents the program stored (RNS plane-major, like SEAL). *)

val draws_of_gaussian :
  Mathkit.Prng.t -> Mathkit.Gaussian.clipped -> count:int -> (int * int) array * int array
(** Pre-sample [count] draws with the software sampler; returns the
    MMIO queue and the plain noise values (ground truth for
    profiling). *)
