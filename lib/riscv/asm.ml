type item =
  | Label of string
  | Fixed of Inst.t list
  | Ref of { size : int; emit : own:int -> target:int -> Inst.t list; target : string }
  | Comment of string

let label name = Label name
let ins i = Fixed [ i ]
let comment text = Comment text

let branch_item make rs1 rs2 target =
  Ref { size = 1; emit = (fun ~own ~target -> [ make rs1 rs2 (target - own) ]); target }

let beq = branch_item (fun a b off -> Inst.Beq (a, b, off))
let bne = branch_item (fun a b off -> Inst.Bne (a, b, off))
let blt = branch_item (fun a b off -> Inst.Blt (a, b, off))
let bge = branch_item (fun a b off -> Inst.Bge (a, b, off))
let bltu = branch_item (fun a b off -> Inst.Bltu (a, b, off))
let bgeu = branch_item (fun a b off -> Inst.Bgeu (a, b, off))

let jal rd target = Ref { size = 1; emit = (fun ~own ~target -> [ Inst.Jal (rd, target - own) ]); target }
let j target = jal Inst.x0 target
let call target = jal Inst.ra target

let fits_imm12 v = v >= -2048 && v <= 2047

let li_insts rd v =
  if fits_imm12 v then [ Inst.Addi (rd, Inst.x0, v) ]
  else begin
    let v32 = v land 0xFFFFFFFF in
    let lo = v32 land 0xFFF in
    let lo_signed = if lo >= 0x800 then lo - 0x1000 else lo in
    let hi = ((v32 - lo_signed) lsr 12) land 0xFFFFF in
    if lo_signed = 0 then [ Inst.Lui (rd, hi) ] else [ Inst.Lui (rd, hi); Inst.Addi (rd, rd, lo_signed) ]
  end

let li rd v = Fixed (li_insts rd v)

let la rd target =
  (* Absolute addressing: program origins are concrete in this SoC, so
     lui+addi with the label's absolute address (matching `la` with a
     non-PIC linker).  Size must not depend on the address, so always
     two instructions. *)
  Ref
    {
      size = 2;
      emit =
        (fun ~own:_ ~target ->
          let lo = target land 0xFFF in
          let lo_signed = if lo >= 0x800 then lo - 0x1000 else lo in
          let hi = ((target - lo_signed) lsr 12) land 0xFFFFF in
          [ Inst.Lui (rd, hi); Inst.Addi (rd, rd, lo_signed) ]);
      target;
    }

let mv rd rs = ins (Inst.Addi (rd, rs, 0))
let nop = ins (Inst.Addi (Inst.x0, Inst.x0, 0))
let ret = ins (Inst.Jalr (Inst.x0, Inst.ra, 0))
let neg rd rs = ins (Inst.Sub (rd, Inst.x0, rs))
let halt = ins Inst.Ebreak

type program = { words : int32 array; labels : (string * int) list; listing : string list; origin : int }

type error =
  | Duplicate_label of string
  | Undefined_label of string
  | Branch_out_of_range of { label : string; distance : int; at : int }

exception Error of error

let error_to_string = function
  | Duplicate_label name -> Printf.sprintf "duplicate label %S" name
  | Undefined_label name -> Printf.sprintf "undefined label %S" name
  | Branch_out_of_range { label; distance; at } ->
      Printf.sprintf "branch at 0x%08x to label %S out of range (distance %d bytes)" at label distance

let () =
  Printexc.register_printer (function
    | Error e -> Some (Printf.sprintf "Asm.Error (%s)" (error_to_string e))
    | _ -> None)

let item_size = function
  | Label _ | Comment _ -> 0
  | Fixed is -> List.length is
  | Ref { size; _ } -> size

let assemble ?(origin = 0) items =
  (* Pass 1: label addresses. *)
  let labels = Hashtbl.create 16 in
  let addr = ref origin in
  List.iter
    (fun item ->
      (match item with
      | Label name ->
          if Hashtbl.mem labels name then raise (Error (Duplicate_label name));
          Hashtbl.add labels name !addr
      | _ -> ());
      addr := !addr + (4 * item_size item))
    items;
  let lookup name =
    match Hashtbl.find_opt labels name with
    | Some a -> a
    | None -> raise (Error (Undefined_label name))
  in
  (* Pass 2: emit. *)
  let words = ref [] and listing = ref [] and addr = ref origin in
  let emit_inst i =
    listing := Printf.sprintf "%08x:  %s" !addr (Inst.to_string i) :: !listing;
    words := Codec.encode i :: !words;
    addr := !addr + 4
  in
  List.iter
    (fun item ->
      match item with
      | Label name -> listing := Printf.sprintf "%08x: <%s>" !addr name :: !listing
      | Comment text -> listing := Printf.sprintf "          ; %s" text :: !listing
      | Fixed is -> List.iter emit_inst is
      | Ref { emit; target; size } ->
          let own = !addr in
          let resolved = lookup target in
          let insts = emit ~own ~target:resolved in
          if List.length insts <> size then invalid_arg "Asm.assemble: ref expansion size mismatch";
          (* Label-relative offsets are the only immediates whose range
             the program author cannot see locally: report which label
             was too far, not just that some immediate overflowed. *)
          (try List.iter emit_inst insts
           with Invalid_argument _ ->
             raise (Error (Branch_out_of_range { label = target; distance = resolved - own; at = own }))))
    items;
  {
    words = Array.of_list (List.rev !words);
    labels = Hashtbl.fold (fun k v acc -> (k, v) :: acc) labels [] |> List.sort compare;
    listing = List.rev !listing;
    origin;
  }

let label_address p name = List.assoc name p.labels
