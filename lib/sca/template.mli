(** Multivariate Gaussian template attack (Chari et al., CHES 2002).

    Profiling: for every candidate secret (here, every sampled
    coefficient value) record many POI vectors, store the class mean,
    and pool the covariance across classes (the noise is
    class-independent, and pooling is what makes 29-class templates
    feasible from modest trace counts).  Matching: score a measured
    vector by Gaussian log-likelihood under each template, optionally
    weighted by the class prior, and either pick the argmax or return
    the whole posterior — the posterior feeds the LWE-hint machinery
    of Section IV-C. *)

type t = {
  labels : int array;  (** class labels, e.g. coefficient values *)
  means : float array array;
  inv_cov : Mathkit.Matrix.t;  (** inverse pooled covariance *)
  inv_cov_fm : Mathkit.Fmat.t;
      (** same matrix, flat row-major — the scoring-kernel copy *)
  log_det : float;
  pois : int array;  (** POI indices into the window, kept for bookkeeping *)
}

val build : ?regularization:float -> pois:int array -> (int * float array array) list -> t
(** [build ~pois classes] with [classes = (label, poi_vectors) list].
    The covariance is pooled over classes and regularised by
    [regularization] (default 1e-6) times the mean diagonal.
    @raise Invalid_argument when any class has < 2 rows. *)

val log_likelihoods : t -> float array -> float array
(** Per-class Gaussian log density of one POI vector (same order as
    [labels]). *)

val posterior : ?priors:float array -> t -> float array -> float array
(** Normalised class probabilities; [priors] defaults to uniform. *)

val classify : ?priors:float array -> t -> float array -> int
(** Maximum-likelihood (or MAP, with priors) label. *)

val restrict : t -> (int -> bool) -> t
(** Keep only classes whose label satisfies the predicate — used to
    condition the value template on the recovered sign. *)

(** {1 Fvec scoring}

    Allocation-free counterparts of the scoring entry points above:
    the caller owns a {!scratch} (one per domain — scratches must not
    be shared across domains) and the [_fv] functions return rows
    BORROWED from it, valid until the next call on the same scratch.
    Arithmetic is bit-identical to the [float array] path. *)

val dimension : t -> int
(** POI-vector dimensionality the template scores (length of each
    class mean). *)

type scratch = {
  diff : Mathkit.Fvec.t;  (** x - mu workspace, [dimension] long *)
  ll : float array;  (** per-class log likelihoods, borrowed *)
  post : float array;  (** per-class posterior, borrowed *)
  post_p : float array;  (** per-class priored posterior, borrowed *)
}

val make_scratch : ?arena:Mathkit.Fvec.Scratch.t -> t -> scratch
(** Scratch sized for [t]; [diff] is carved from [arena] when given,
    freshly allocated otherwise. *)

val log_likelihoods_fv : t -> scratch -> Mathkit.Fvec.t -> float array
val posterior_fv : ?priors:float array -> t -> scratch -> Mathkit.Fvec.t -> float array
val classify_fv : ?priors:float array -> t -> scratch -> Mathkit.Fvec.t -> int

type scores = {
  s_best_ll : float;  (** [Float.max] fold over the log likelihoods *)
  s_post : float array;  (** flat-prior posterior, borrowed *)
  s_post_p : float array;  (** posterior under [priors], borrowed *)
}

val scores_fv : priors:float array -> t -> scratch -> Mathkit.Fvec.t -> scores
(** One log-likelihood pass, then every score a grading consumer
    needs.  Each row is bit-identical to the corresponding
    single-purpose entry point ([log_likelihoods] max, [posterior]
    without and with [priors]), so one [scores_fv] call substitutes
    for several separate scoring calls without observable effect.
    Both rows are borrowed from the scratch. *)

val priored_posterior_fv : priors:float array -> t -> scratch -> Mathkit.Fvec.t -> float array
(** The [s_post_p] row of {!scores_fv} alone, bit-identical to it, for
    a template whose flat posterior and best density go unread.
    Borrowed from the scratch. *)
