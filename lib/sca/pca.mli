(** Principal-subspace trace compression (Archambeau et al., CHES 2006).

    An alternative to hand-picked points of interest: project whole
    windows onto the top principal components of the *between-class*
    scatter (the directions along which class means move), then build
    Gaussian templates in that low-dimensional subspace.  Compared
    against SOSD/SOST POIs in the feature-selection ablation. *)

type t = {
  mean : float array;  (** global mean subtracted before projection *)
  basis : Mathkit.Matrix.t;  (** d x k projection (columns orthonormal) *)
}

val fit : ?k:int -> (int * float array array) list -> t
(** [fit classes] with [(label, windows)] pairs: principal components
    of the between-class scatter of the class means (default k = 8
    components, clipped to #classes - 1).
    @raise Invalid_argument on fewer than two classes. *)

val components : t -> int
val transform : t -> float array -> float array
(** Project one window into the subspace. *)

val transform_all : t -> float array array -> float array array

val transform_fv : t -> Mathkit.Fvec.t -> float array
(** [transform] reading from an {!Mathkit.Fvec} view (same values). *)

val explained : (int * float array array) list -> k:int -> float
(** Fraction of between-class variance captured by the top k
    components — the knob-tuning diagnostic. *)
