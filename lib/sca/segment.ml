type threshold = Auto | Percentile of float | Absolute of float

type config = {
  threshold : threshold;
  smooth_radius : int;
  merge_gap : int;
  min_burst : int;
}

let default = { threshold = Auto; smooth_radius = 2; merge_gap = 55; min_burst = 4 }

type window = { start : int; stop : int }

(* The segmentation kernels are Fvec-native: one borrowed view of the
   trace in, no per-stage copies.  The historical float-array entry
   points below are thin of_array shims — same arithmetic, so the two
   forms are bit-identical (pinned by test_sca). *)

module Fvec = Mathkit.Fvec

let smooth_fv radius samples =
  if radius <= 0 then Fvec.copy samples
  else begin
    let n = Fvec.length samples in
    let buf = Fvec.buffer samples and off = Fvec.offset samples and str = Fvec.stride samples in
    Fvec.check_range buf ~off ~stride:str ~len:n "Segment.smooth_fv";
    let out = Fvec.create n in
    let obuf = Fvec.buffer out in
    let edge i =
      let lo = max 0 (i - radius) and hi = min (n - 1) (i + radius) in
      let acc = ref 0.0 in
      for j = lo to hi do
        (* srclint: allow unsafe-index j stays in [0,n) and the view range is check_range'd above *)
        acc := !acc +. Bigarray.Array1.unsafe_get buf (off + (j * str))
      done;
      (* srclint: allow unsafe-index out is freshly created with length n *)
      Bigarray.Array1.unsafe_set obuf i (!acc /. float_of_int (hi - lo + 1))
    in
    (* Steady interior: the [i - radius, i + radius] window never
       clips, so the edge clamping and the per-sample width conversion
       hoist out of the loop.  Summation order (ascending j) and the
       divide match [edge] exactly — bit-identical, just leaner. *)
    let interior_stop = n - 1 - radius in
    let w = float_of_int ((2 * radius) + 1) in
    for i = 0 to min (radius - 1) (n - 1) do
      edge i
    done;
    for i = radius to interior_stop do
      let base = off + ((i - radius) * str) in
      let acc = ref 0.0 in
      for j = 0 to 2 * radius do
        (* srclint: allow unsafe-index the window stays inside the view range check_range'd above *)
        acc := !acc +. Bigarray.Array1.unsafe_get buf (base + (j * str))
      done;
      (* srclint: allow unsafe-index out is freshly created with length n *)
      Bigarray.Array1.unsafe_set obuf i (!acc /. w)
    done;
    for i = max radius (interior_stop + 1) to n - 1 do
      edge i
    done;
    out
  end

let smooth radius samples = Fvec.to_array (smooth_fv radius (Fvec.of_array samples))

(* Otsu's method: pick the level that best separates the bimodal
   power histogram (busy divider vs ordinary code).  Unlike a
   percentile midpoint, it does not care what fraction of the trace is
   spent in each mode, so it survives very slow or very fast dividers. *)
let otsu_fv samples =
  if Fvec.length samples = 0 then 0.0
  else
    let lo, hi = Fvec.minmax samples in
    if hi -. lo <= 0.0 then lo
    else begin
      let bins = 256 in
      let hist = Fvec.histogram ~bins ~lo ~hi:(hi +. 1e-9) samples in
      let total = float_of_int (Fvec.length samples) in
      let sum_all = ref 0.0 in
      Array.iteri (fun b c -> sum_all := !sum_all +. (float_of_int b *. float_of_int c)) hist;
      let best_t = ref 0 and best_var = ref neg_infinity in
      let best_mu0 = ref 0.0 and best_mu1 = ref 0.0 in
      let w0 = ref 0.0 and sum0 = ref 0.0 in
      for t = 0 to bins - 1 do
        w0 := !w0 +. float_of_int hist.(t);
        sum0 := !sum0 +. (float_of_int t *. float_of_int hist.(t));
        let w1 = total -. !w0 in
        if !w0 > 0.0 && w1 > 0.0 then begin
          let mu0 = !sum0 /. !w0 and mu1 = (!sum_all -. !sum0) /. w1 in
          let between = !w0 *. w1 *. (mu0 -. mu1) *. (mu0 -. mu1) in
          if between > !best_var then begin
            best_var := between;
            best_t := t;
            best_mu0 := mu0;
            best_mu1 := mu1
          end
        end
      done;
      let of_bin b = lo +. ((hi -. lo) *. (b +. 0.5) /. float_of_int bins) in
      (* Bias the cut towards the high mode: only the divider plateau
         should clear it, not the tallest loads/stores of ordinary code
         (whose height is data-dependent and would wiggle the window
         boundaries with the secret). *)
      of_bin (!best_mu0 +. (0.75 *. (!best_mu1 -. !best_mu0)))
    end

let auto_threshold_fv cfg samples =
  let s = smooth_fv cfg.smooth_radius samples in
  otsu_fv s

let auto_threshold cfg samples = auto_threshold_fv cfg (Fvec.of_array samples)

let burst_regions_fv cfg samples =
  let n = Fvec.length samples in
  if n = 0 then [||]
  else begin
    let s = smooth_fv cfg.smooth_radius samples in
    let threshold =
      match cfg.threshold with
      | Absolute t -> t
      | Percentile p -> Mathkit.Stats.percentile (Fvec.to_array s) p
      | Auto -> otsu_fv s
    in
    (* Raw above-threshold runs.  [s] is contiguous (fresh from
       smooth_fv), so the scan reads the buffer directly. *)
    let sbuf = Fvec.buffer s and soff = Fvec.offset s and sstr = Fvec.stride s in
    Fvec.check_range sbuf ~off:soff ~stride:sstr ~len:n "Segment.burst_regions_fv";
    let runs = ref [] in
    let run_start = ref (-1) in
    for i = 0 to n - 1 do
      (* srclint: allow unsafe-index i stays in [0,n) and the view range is check_range'd above *)
      if Bigarray.Array1.unsafe_get sbuf (soff + (i * sstr)) > threshold then begin
        if !run_start < 0 then run_start := i
      end
      else if !run_start >= 0 then begin
        runs := { start = !run_start; stop = i } :: !runs;
        run_start := -1
      end
    done;
    if !run_start >= 0 then runs := { start = !run_start; stop = n } :: !runs;
    let runs = List.rev !runs in
    (* Group runs separated by less than merge_gap into one burst. *)
    let groups =
      List.fold_left
        (fun acc r ->
          match acc with
          | (last :: _ as grp) :: rest when r.start - last.stop < cfg.merge_gap -> (r :: grp) :: rest
          | _ -> [ r ] :: acc)
        [] runs
      |> List.rev_map List.rev
    in
    (* Anchor each burst on its long runs only: short slivers at the
       edges (a single data-dependent load or store crossing the
       threshold) must not move the boundary, or windows would shift
       with the secret data they start with. *)
    let anchor grp =
      match List.filter (fun r -> r.stop - r.start >= cfg.min_burst) grp with
      | [] -> None
      | long ->
          let first = List.hd long and last = List.nth long (List.length long - 1) in
          Some { start = first.start; stop = last.stop }
    in
    List.filter_map anchor groups |> Array.of_list
  end

let burst_regions cfg samples = burst_regions_fv cfg (Fvec.of_array samples)

let windows_of_bursts bursts ~trace_len =
  Array.mapi
    (fun i b ->
      let stop = if i + 1 < Array.length bursts then bursts.(i + 1).start else trace_len in
      { start = b.stop; stop })
    bursts

let windows_fv cfg samples = windows_of_bursts (burst_regions_fv cfg samples) ~trace_len:(Fvec.length samples)

let windows cfg samples = windows_fv cfg (Fvec.of_array samples)

let vectorize samples wins ~length =
  if length <= 0 then invalid_arg "Segment.vectorize: length must be positive";
  Array.map
    (fun w ->
      Array.init length (fun i ->
          let idx = w.start + i in
          if idx < w.stop && idx < Array.length samples then samples.(idx) else 0.0))
    wins

(* The Fvec counterpart of {!vectorize}: a window fully inside both
   its burst span and the trace is a borrowed sub-view (no copy); a
   short window gets the same zero-padded copy vectorize would build.
   Values are identical either way. *)
let views samples wins ~length =
  if length <= 0 then invalid_arg "Segment.views: length must be positive";
  let n = Fvec.length samples in
  Array.map
    (fun w ->
      if w.start + length <= w.stop && w.start + length <= n then Fvec.sub samples w.start length
      else
        Fvec.init length (fun i ->
            let idx = w.start + i in
            if idx < w.stop && idx < n then Fvec.get samples idx else 0.0))
    wins

(* --- resilient segmentation ------------------------------------------------ *)

type quality = Clean | Resynced | Suspect

type segment_error =
  | Empty_trace
  | Flat_trace
  | Count_mismatch of { expected : int; found : int }

type segmented = { wins : window array; quality : quality array }

let error_to_string = function
  | Empty_trace -> "empty trace"
  | Flat_trace -> "flat trace: no bursts above threshold"
  | Count_mismatch { expected; found } ->
      Printf.sprintf "found %d bursts where %d were expected" found expected

let median xs = Mathkit.Stats.percentile xs 50.0

let burst_lengths bursts = Array.map (fun b -> float_of_int (b.stop - b.start)) bursts

(* Glitch bursts masquerade as distribution calls but are much shorter
   than the real divider plateau: drop the shortest sub-median bursts
   until the count fits. *)
let drop_spurious bursts ~expected =
  let excess = Array.length bursts - expected in
  let med = median (burst_lengths bursts) in
  let candidates =
    Array.to_list bursts
    |> List.mapi (fun i b -> (i, b))
    |> List.filter (fun (_, b) -> float_of_int (b.stop - b.start) < 0.6 *. med)
    |> List.sort (fun (_, a) (_, b) -> compare (a.stop - a.start) (b.stop - b.start))
  in
  let doomed = List.filteri (fun k _ -> k < excess) candidates |> List.map fst in
  let keep = Array.to_list bursts |> List.mapi (fun i b -> (i, b)) |> List.filter (fun (i, _) -> not (List.mem i doomed)) in
  let removed = List.filter (fun (i, _) -> List.mem i doomed) (Array.to_list bursts |> List.mapi (fun i b -> (i, b))) in
  (Array.of_list (List.map snd keep), List.map snd removed)

(* A missed burst (clipped away, or fused into its neighbour) leaves a
   gap of ~k periods between consecutive bursts.  Re-synchronise by
   planting synthetic bursts at the expected cadence; windows touching
   one are flagged Resynced. *)
let resync bursts ~expected ~trace_len =
  let count = Array.length bursts in
  if count < 2 then (bursts, [])
  else begin
    let periods =
      Array.init (count - 1) (fun i -> float_of_int (bursts.(i + 1).start - bursts.(i).start))
    in
    let p = median periods in
    let w = int_of_float (median (burst_lengths bursts)) in
    if p <= 0.0 then (bursts, [])
    else begin
      let missing = ref (expected - count) in
      let out = ref [] in
      let synth = ref [] in
      let plant start =
        let b = { start; stop = min trace_len (start + max 1 w) } in
        out := b :: !out;
        synth := b :: !synth;
        decr missing
      in
      for i = 0 to count - 1 do
        out := bursts.(i) :: !out;
        let gap_end = if i + 1 < count then bursts.(i + 1).start else trace_len in
        let d = float_of_int (gap_end - bursts.(i).start) in
        let k =
          if i + 1 < count then int_of_float (Float.round (d /. p)) - 1
          else (* tail: the final burst may itself have been missed *)
            int_of_float (Float.round (d /. p)) - 1
        in
        let k = min (max 0 k) !missing in
        for j = 1 to k do
          plant (bursts.(i).start + int_of_float (float_of_int j *. d /. float_of_int (k + 1)))
        done
      done;
      let arr = Array.of_list (List.rev !out) in
      Array.sort (fun a b -> compare a.start b.start) arr;
      (arr, !synth)
    end
  end

let segment_fv cfg ~expected samples =
  if expected <= 0 then invalid_arg "Segment.segment: expected must be positive";
  let trace_len = Fvec.length samples in
  if trace_len = 0 then Error Empty_trace
  else begin
    let bursts = burst_regions_fv cfg samples in
    if Array.length bursts = 0 then Error Flat_trace
    else begin
      let bursts, removed =
        if Array.length bursts > expected then drop_spurious bursts ~expected else (bursts, [])
      in
      let bursts, synthetic =
        if Array.length bursts < expected then resync bursts ~expected ~trace_len
        else (bursts, [])
      in
      let found = Array.length bursts in
      if found <> expected then Error (Count_mismatch { expected; found })
      else begin
        let wins = windows_of_bursts bursts ~trace_len in
        let touched w bs =
          List.exists (fun b -> b.start >= w.start - 1 && b.start <= w.stop) bs
        in
        let is_synth b = List.exists (fun s -> s.start = b.start && s.stop = b.stop) synthetic in
        let quality =
          Array.mapi
            (fun i w ->
              (* a window is resynchronised if either delimiting burst is
                 synthetic, or a spurious burst was excised inside it *)
              let lead_synth = is_synth bursts.(i) in
              let trail_synth = i + 1 < found && is_synth bursts.(i + 1) in
              if lead_synth || trail_synth || touched w removed then Resynced else Clean)
            wins
        in
        (* Length-plausibility: a window far from the median length was
           mis-delimited even if the burst count worked out. *)
        let lens = Array.map (fun w -> float_of_int (w.stop - w.start)) wins in
        let med = median lens in
        let mad = median (Array.map (fun l -> Float.abs (l -. med)) lens) in
        let scale = Float.max mad (0.05 *. med) in
        Array.iteri
          (fun i l -> if Float.abs (l -. med) > 3.5 *. scale then quality.(i) <- Suspect)
          lens;
        Ok { wins; quality }
      end
    end
  end

let segment cfg ~expected samples = segment_fv cfg ~expected (Fvec.of_array samples)
