module type S = sig
  type t

  val name : string
  val classify : t -> float array -> Attack.verdict
  val posterior_all : t -> float array -> (int * float) array
  val sign_confidence : t -> float array -> float
  val sign_fit : t -> float array -> float
  val value_fit : t -> sign:int -> float array -> float
end

module Template : S with type t = Attack.t = struct
  type t = Attack.t

  let name = "template"
  let classify = Attack.classify
  let posterior_all = Attack.posterior_all
  let sign_confidence = Attack.sign_confidence
  let sign_fit = Attack.sign_fit
  let value_fit = Attack.value_fit
end
