module type S = sig
  type t
  type scratch

  val name : string
  val make_scratch : t -> scratch
  val classify : t -> scratch -> Mathkit.Fvec.t -> Attack.verdict
  val posterior_all : t -> scratch -> Mathkit.Fvec.t -> (int * float) array
  val sign_confidence : t -> scratch -> Mathkit.Fvec.t -> float
  val sign_fit : t -> scratch -> Mathkit.Fvec.t -> float
  val value_fit : t -> scratch -> sign:int -> Mathkit.Fvec.t -> float

  val grade : t -> scratch -> Mathkit.Fvec.t -> Attack.graded
  (** All five grading quantities from one pass; each field must equal
      what the corresponding function above returns for the window. *)
end

module Template : S with type t = Attack.t and type scratch = Attack.Scratch.t = struct
  type t = Attack.t
  type scratch = Attack.Scratch.t

  let name = "template"
  let make_scratch = Attack.make_scratch
  let classify = Attack.classify_fv
  let posterior_all = Attack.posterior_all_fv
  let sign_confidence = Attack.sign_confidence_fv
  let sign_fit = Attack.sign_fit_fv
  let value_fit = Attack.value_fit_fv
  let grade = Attack.grade_fv
end
