(** Point-of-interest selection.

    A template over a full window is impractical (the covariance blows
    up with dimension — the "curse of dimensionality" the paper cites),
    so the attack keeps only the few samples where class means differ
    most.

    Two classical scores are provided:
    - SOSD (sum of squared differences of class means), the method the
      paper cites [30];
    - SOST, the variance-normalised variant: squared mean differences
      divided by the standard error of those means.  SOST is what this
      reproduction uses by default, because late window positions whose
      content depends on the *next* coefficient's sampling have large
      spurious mean differences that SOSD cannot tell apart from real
      leakage; normalising by within-class scatter suppresses them.

    POIs are the highest scorers subject to a minimum spacing so one
    wide peak does not consume the whole budget. *)

val scores : float array array array -> float array
(** SOSD: [scores classes] where [classes.(c)] is a matrix of windows
    (rows) for class [c]; per-position summed squared pairwise mean
    differences.
    @raise Invalid_argument on ragged input or fewer than two
    non-empty classes. *)

val scores_t : float array array array -> float array
(** SOST: pairwise squared t-statistics,
    (mu_i - mu_j)^2 / (v_i/n_i + v_j/n_j + kappa). *)

val select : ?min_spacing:int -> count:int -> float array -> int array
(** Indices of the top-[count] score positions, greedy with spacing
    (default 3), sorted ascending. *)

val pick : float array -> int array -> float array
(** Project a window onto the chosen POIs. *)

val pick_fv : Mathkit.Fvec.t -> int array -> out:Mathkit.Fvec.t -> unit
(** [pick] over views: gather [window]'s POI samples into [out]
    (length [Array.length pois]) without allocating.
    @raise Invalid_argument on length mismatch or an out-of-bounds
    POI. *)
