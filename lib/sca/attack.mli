(** The combined single-trace attack of Section III-D.

    Three templates cooperate, mirroring the paper's use of the three
    vulnerabilities:

    - a 3-class {e sign} template over the branch region
      (vulnerability 1) — the paper reports 100 % success for it;
    - a value template over the {e negative} candidates: its POIs land
      on the negation sequence and the [modulus - noise] stores, i.e.
      vulnerabilities 3 + 2, which is why negative coefficients come
      out far better (Table I);
    - a value template over the {e positive} candidates: only the
      assignment leakage (vulnerability 2) is available, so values of
      equal Hamming weight collide — the 1/2/4/8 confusions visible in
      Table I.

    Matching classifies the sign first and then dispatches to that
    group's template; zero needs no second stage.  [classify] returns
    the hard decision plus the posterior over all candidate values —
    Table I consumes the former, the LWE-hint integration (Tables
    II-III) the latter. *)

type t = {
  sign_template : Template.t;
  neg_template : Template.t;
  pos_template : Template.t;
  neg_priors : float array;  (** Gaussian prior restricted to the group *)
  pos_priors : float array;
  prior_of_sign : float array;  (** P(sign = -1, 0, +1) under the sampler *)
  pois_sign : int array;
  pois_neg : int array;
  pois_pos : int array;
}

type verdict = {
  sign : int;  (** -1, 0 or 1 *)
  value : int;  (** recovered coefficient *)
  posterior : (int * float) array;  (** value -> probability over every candidate *)
}

val sign_of_label : int -> int

val build :
  ?poi_count:int ->
  ?sign_poi_count:int ->
  sigma:float ->
  (int * float array array) list ->
  t
(** [build ~sigma classes] profiles from labelled windows
    ([label, window_vectors]).  POIs are selected by SOSD —
    independently for the sign grouping and within each sign group.
    [sigma] shapes the value priors.  Defaults: 16 POIs per value
    group, 6 sign POIs. *)

val classify : t -> float array -> verdict
(** Attack one window (combined attack). *)

val classify_sign_only : t -> float array -> int
(** Branch-vulnerability-only attack (Table IV). *)

val sign_confidence : t -> float array -> float
(** Peak of the (flat-prior) sign posterior for this window — how
    unambiguous the branch-region match is.  Near 1/3 means the window
    does not look like any sign class (e.g. after a segmentation
    failure); confidence gating uses it to demote garbage windows. *)

val sign_fit : t -> float array -> float
(** Best-class Gaussian log density of the window under the sign
    template — an absolute goodness-of-fit.  Posteriors normalise the
    likelihood away, so a corrupted window can still look confident;
    its fit, by contrast, collapses (the exponent is quadratic in the
    deviation from the nearest class mean).  Confidence gating compares
    this against a floor calibrated on profiling windows. *)

val value_fit : t -> sign:int -> float array -> float
(** Best-class log density under the value template of [sign]'s group
    (for sign 0, the sign template — zero has no second stage). *)

val posterior_all : t -> float array -> (int * float) array
(** Joint posterior over all candidates:
    P(v) = P(sign of v) * P(v | its group) — the raw Table II rows. *)

(** {1 Fvec scoring}

    Allocation-free counterparts over {!Mathkit.Fvec} views.  A
    {!Scratch.t} bundles the POI gather buffer and the three template
    scratches in one arena; build one per domain ([make_scratch] once,
    score many windows).  Arithmetic is bit-identical to the
    [float array] path above. *)

module Scratch : sig
  type t
end

val make_scratch : t -> Scratch.t

val classify_fv : t -> Scratch.t -> Mathkit.Fvec.t -> verdict
val classify_sign_only_fv : t -> Scratch.t -> Mathkit.Fvec.t -> int
val sign_confidence_fv : t -> Scratch.t -> Mathkit.Fvec.t -> float
val sign_fit_fv : t -> Scratch.t -> Mathkit.Fvec.t -> float
val value_fit_fv : t -> Scratch.t -> sign:int -> Mathkit.Fvec.t -> float
val posterior_all_fv : t -> Scratch.t -> Mathkit.Fvec.t -> (int * float) array

(** Everything the confidence gate consumes for one window. *)
type graded = {
  g_verdict : verdict;
  g_posterior_all : (int * float) array;
  g_sign_confidence : float;
  g_sign_fit : float;
  g_value_fit : float;
}

val grade_fv : t -> Scratch.t -> Mathkit.Fvec.t -> graded
(** Fused grading: each template is scored exactly once and all five
    quantities are derived from the shared score rows.  Calling the
    five single-purpose entry points above performs the same template
    scorings several times over; every field here is bit-identical to
    the value the corresponding separate call returns, so the fusion
    is observationally invisible — only faster. *)
