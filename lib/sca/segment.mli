(** Trace segmentation by peak detection.

    The sampler's execution time varies per coefficient (rejection
    sampling), so the attacker cannot slice the trace at a fixed
    stride.  Section III-C of the paper locates each distribution call
    through its "distinguishable and visible peaks" — on this device,
    the div-heavy burn of the polar loop — and uses them as start/end
    markers.  This module implements exactly that:

    + smooth the trace with a short moving average (removes sub-cycle
      pulse shape and most measurement noise),
    + threshold into high-power bursts — by default with Otsu's
      bimodal split, which lands between the divider-unit plateau and
      ordinary code regardless of how much of the trace each occupies,
    + merge bursts closer than a gap (the polar loop's iterations)
      into one distribution call,
    + report the quiet region after each call — the sign/assignment
      code of one coefficient — as that coefficient's window. *)

type threshold =
  | Auto  (** Otsu's bimodal split of the smoothed power histogram *)
  | Percentile of float
  | Absolute of float
      (** profiling calibrates once with {!auto_threshold} and pins the
          level so that all traces segment identically *)

type config = {
  threshold : threshold;
  smooth_radius : int;  (** moving-average half width, in samples *)
  merge_gap : int;  (** bursts closer than this many samples are one call *)
  min_burst : int;  (** ignore bursts shorter than this *)
}

val default : config
(** Auto threshold, radius 2, gap 55, min burst 4. *)

type window = { start : int; stop : int }
(** Half-open sample range [start, stop). *)

val smooth : int -> float array -> float array
(** Centred moving average. *)

val auto_threshold : config -> float array -> float
(** The level the Auto rule would pick for this trace.  An empty trace
    yields 0.0 and a flat trace yields its constant level — both leave
    {!burst_regions} with zero bursts rather than crashing; use
    {!segment} to get a typed error instead. *)

val burst_regions : config -> float array -> window array
(** Merged high-power regions, one per distribution call. *)

val windows : config -> float array -> window array
(** Quiet regions between consecutive bursts: window [i] covers
    coefficient [i]'s sign/assignment code.  The final window runs to
    the end of the trace. *)

val vectorize : float array -> window array -> length:int -> float array array
(** Clip every window to its first [length] samples (windows shorter
    than [length] are zero-padded) — the fixed-dimension vectors the
    templates consume. *)

(** {1 Resilient segmentation}

    {!windows} silently returns however many windows it finds; on a
    faulty capture that poisons everything downstream.  {!segment}
    instead validates the count against the expected number of
    distribution calls, repairs what it can, and reports per-window
    quality so the attack can gate its confidence. *)

type quality =
  | Clean  (** delimited by two real bursts, plausible length *)
  | Resynced
      (** a delimiting burst was synthesised at the expected cadence
          (missed burst), or a spurious glitch burst was excised *)
  | Suspect  (** length is a >3.5-MAD outlier: mis-delimited *)

type segment_error =
  | Empty_trace
  | Flat_trace  (** no burst cleared the threshold — all-quiet capture *)
  | Count_mismatch of { expected : int; found : int }
      (** repair could not reconcile the burst count *)

type segmented = { wins : window array; quality : quality array }

val error_to_string : segment_error -> string

val segment : config -> expected:int -> float array -> (segmented, segment_error) result
(** [segment cfg ~expected samples] returns exactly [expected] windows
    or a typed error — never a silent short array.  When the burst
    count is off it first drops glitch-length spurious bursts
    (< 0.6 x median length), then plants synthetic bursts at the median
    cadence inside oversized gaps (including a missed final burst);
    affected windows are flagged [Resynced].  Windows whose length is a
    gross outlier (median absolute deviation test) are flagged
    [Suspect].  On a clean trace with the right burst count the result
    equals {!windows} with every flag [Clean].
    @raise Invalid_argument when [expected <= 0]. *)

(** {1 Fvec-native segmentation}

    The kernels above are implemented over borrowed {!Mathkit.Fvec}
    views; the [float array] entry points are thin [of_array] shims.
    Both forms compute identical values (pinned by the equivalence
    tests), so a caller can adopt views incrementally. *)

val smooth_fv : int -> Mathkit.Fvec.t -> Mathkit.Fvec.t
val auto_threshold_fv : config -> Mathkit.Fvec.t -> float
val burst_regions_fv : config -> Mathkit.Fvec.t -> window array
val windows_fv : config -> Mathkit.Fvec.t -> window array

val views : Mathkit.Fvec.t -> window array -> length:int -> Mathkit.Fvec.t array
(** {!vectorize} without the copies: a window whose first [length]
    samples lie inside both its span and the trace is returned as a
    borrowed sub-view of [samples]; shorter windows get the same
    zero-padded fresh vector {!vectorize} would build.  Views alias
    the trace — treat them as read-only. *)

val segment_fv : config -> expected:int -> Mathkit.Fvec.t -> (segmented, segment_error) result
