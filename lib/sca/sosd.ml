let scores classes =
  let classes = Array.to_list classes |> List.filter (fun c -> Array.length c > 0) in
  (match classes with [] | [ _ ] -> invalid_arg "Sosd.scores: need at least two non-empty classes" | _ -> ());
  let means = List.map Mathkit.Stats.mean_vector classes in
  let d = Array.length (List.hd means) in
  List.iter (fun m -> if Array.length m <> d then invalid_arg "Sosd.scores: ragged classes") means;
  let score = Array.make d 0.0 in
  let rec pairs = function
    | [] -> ()
    | m :: rest ->
        List.iter
          (fun m' ->
            for t = 0 to d - 1 do
              let diff = m.(t) -. m'.(t) in
              score.(t) <- score.(t) +. (diff *. diff)
            done)
          rest;
        pairs rest
  in
  pairs means;
  score

let scores_t classes =
  let classes = Array.to_list classes |> List.filter (fun c -> Array.length c > 0) in
  (match classes with [] | [ _ ] -> invalid_arg "Sosd.scores_t: need at least two non-empty classes" | _ -> ());
  let stats =
    List.map
      (fun rows ->
        let mu = Mathkit.Stats.mean_vector rows in
        let d = Array.length mu in
        let var = Array.make d 0.0 in
        Array.iter
          (fun r ->
            for t = 0 to d - 1 do
              let diff = r.(t) -. mu.(t) in
              var.(t) <- var.(t) +. (diff *. diff)
            done)
          rows;
        let n = Array.length rows in
        let var = Array.map (fun v -> if n > 1 then v /. float_of_int (n - 1) else 0.0) var in
        (mu, var, n))
      classes
  in
  let d = match stats with (mu, _, _) :: _ -> Array.length mu | [] -> 0 in
  List.iter (fun (mu, _, _) -> if Array.length mu <> d then invalid_arg "Sosd.scores_t: ragged classes") stats;
  let kappa = 1e-9 in
  let score = Array.make d 0.0 in
  let rec pairs = function
    | [] -> ()
    | (mu, var, n) :: rest ->
        List.iter
          (fun (mu', var', n') ->
            for t = 0 to d - 1 do
              let diff = mu.(t) -. mu'.(t) in
              let se = (var.(t) /. float_of_int n) +. (var'.(t) /. float_of_int n') +. kappa in
              score.(t) <- score.(t) +. (diff *. diff /. se)
            done)
          rest;
        pairs rest
  in
  pairs stats;
  score

let select ?(min_spacing = 3) ~count score =
  if count <= 0 then invalid_arg "Sosd.select: count must be positive";
  let order = Array.init (Array.length score) (fun i -> i) in
  Array.sort (fun a b -> Float.compare score.(b) score.(a)) order;
  let chosen = ref [] and taken = ref 0 in
  Array.iter
    (fun idx ->
      if !taken < count && List.for_all (fun c -> abs (c - idx) >= min_spacing) !chosen then begin
        chosen := idx :: !chosen;
        incr taken
      end)
    order;
  let a = Array.of_list !chosen in
  Array.sort compare a;
  a

let pick window pois = Array.map (fun i -> window.(i)) pois

(* [pick] over views: gather the POI samples into a caller-owned
   vector.  Bounds are validated per POI (the POI table is data), then
   the write itself is raw. *)
let pick_fv window pois ~out =
  let open Mathkit in
  if Fvec.length out <> Array.length pois then invalid_arg "Sosd.pick_fv: output length mismatch";
  let n = Fvec.length window in
  let wbuf = Fvec.buffer window and woff = Fvec.offset window and wstr = Fvec.stride window in
  let obuf = Fvec.buffer out and ooff = Fvec.offset out and ostr = Fvec.stride out in
  Fvec.check_range wbuf ~off:woff ~stride:wstr ~len:n "Sosd.pick_fv";
  Fvec.check_range obuf ~off:ooff ~stride:ostr ~len:(Fvec.length out) "Sosd.pick_fv";
  for k = 0 to Array.length pois - 1 do
    let i = pois.(k) in
    if i < 0 || i >= n then invalid_arg "Sosd.pick_fv: POI out of window bounds";
    (* srclint: allow unsafe-index POI checked against the window above, both view ranges check_range'd *)
    Bigarray.Array1.unsafe_set obuf (ooff + (k * ostr)) (Bigarray.Array1.unsafe_get wbuf (woff + (i * wstr)))
  done
