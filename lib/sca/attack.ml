type t = {
  sign_template : Template.t;
  neg_template : Template.t;
  pos_template : Template.t;
  neg_priors : float array;
  pos_priors : float array;
  prior_of_sign : float array;
  pois_sign : int array;
  pois_neg : int array;
  pois_pos : int array;
}

type verdict = {
  sign : int;
  value : int;
  posterior : (int * float) array;
}

let sign_of_label v = compare v 0

let group_template ~poi_count ~sigma classes =
  (match classes with
  | [] | [ _ ] -> invalid_arg "Attack.build: a sign group needs at least two candidate values"
  | _ -> ());
  let scores = Sosd.scores_t (Array.of_list (List.map snd classes)) in
  let pois = Sosd.select ~count:poi_count scores in
  let project rows = Array.map (fun w -> Sosd.pick w pois) rows in
  let template = Template.build ~pois (List.map (fun (label, rows) -> (label, project rows)) classes) in
  let priors =
    Array.map (fun label -> Mathkit.Gaussian.discrete_probability ~sigma label) template.Template.labels
    |> Mathkit.Stats.normalize_probs
  in
  (template, priors, pois)

let build ?(poi_count = 24) ?(sign_poi_count = 10) ~sigma classes =
  (match classes with [] -> invalid_arg "Attack.build: no profiling classes" | _ -> ());
  let group s = List.filter (fun (label, _) -> sign_of_label label = s) classes in
  let neg_template, neg_priors, pois_neg = group_template ~poi_count ~sigma (group (-1)) in
  let pos_template, pos_priors, pois_pos = group_template ~poi_count ~sigma (group 1) in
  (* Sign template: SOSD between the three pooled sign groups. *)
  let pooled s = group s |> List.map snd |> Array.concat in
  let sign_groups = [| pooled (-1); pooled 0; pooled 1 |] in
  let sign_scores = Sosd.scores_t sign_groups in
  let pois_sign = Sosd.select ~count:sign_poi_count sign_scores in
  let project rows = Array.map (fun w -> Sosd.pick w pois_sign) rows in
  let sign_template =
    Template.build ~pois:pois_sign
      (List.filter_map
         (fun s ->
           let rows = sign_groups.(s + 1) in
           if Array.length rows < 2 then None else Some (s, project rows))
         [ -1; 0; 1 ])
  in
  let prior_of_sign =
    let mass s =
      List.fold_left
        (fun acc (label, _) -> if sign_of_label label = s then acc +. Mathkit.Gaussian.discrete_probability ~sigma label else acc)
        0.0 classes
    in
    Mathkit.Stats.normalize_probs [| mass (-1); mass 0; mass 1 |]
  in
  { sign_template; neg_template; pos_template; neg_priors; pos_priors; prior_of_sign; pois_sign; pois_neg; pois_pos }

let classify_sign_only t window = Template.classify t.sign_template (Sosd.pick window t.pois_sign)

let sign_confidence t window =
  let post = Template.posterior t.sign_template (Sosd.pick window t.pois_sign) in
  Array.fold_left Float.max 0.0 post

(* Posteriors normalise away the absolute likelihood, so a corrupted
   window still yields a (meaninglessly) sharp posterior.  The absolute
   best-class log density is the out-of-distribution signal: honest
   windows score within a calibrated band, faulted ones fall off a
   cliff (the Mahalanobis term is quadratic in the deviation). *)
let best_log_likelihood template vec =
  Array.fold_left Float.max neg_infinity (Template.log_likelihoods template vec)

let sign_fit t window = best_log_likelihood t.sign_template (Sosd.pick window t.pois_sign)

let value_fit t ~sign window =
  match sign with
  | -1 -> best_log_likelihood t.neg_template (Sosd.pick window t.pois_neg)
  | 1 -> best_log_likelihood t.pos_template (Sosd.pick window t.pois_pos)
  | _ ->
      (* zero has no second-stage template: its value information lives
         entirely in the branch region the sign template models *)
      sign_fit t window

(* Pure maximum likelihood, as in classical template attacks (and as
   the paper's Table I/II scores behave): the class prior is NOT mixed
   in — with single-trace likelihood margins of a few nats, a Gaussian
   prior would drag every rare value onto its frequent neighbours. *)
let group_posterior t sign window =
  match sign with
  | -1 -> (t.neg_template, Template.posterior t.neg_template (Sosd.pick window t.pois_neg))
  | 1 -> (t.pos_template, Template.posterior t.pos_template (Sosd.pick window t.pois_pos))
  | _ -> invalid_arg "Attack.group_posterior: sign must be -1 or 1"

let classify t window =
  let sign = classify_sign_only t window in
  if sign = 0 then { sign; value = 0; posterior = [| (0, 1.0) |] }
  else begin
    let template, post = group_posterior t sign window in
    let labels = template.Template.labels in
    let best = Mathkit.Stats.argmax post in
    { sign; value = labels.(best); posterior = Array.mapi (fun i l -> (l, post.(i))) labels }
  end

(* The joint posterior is Bayesian: the adversary knows the sampler's
   distribution, so P(v | trace) uses the Gaussian prior both across
   sign groups and within them.  (Classification above deliberately
   does not — see the comment there.) *)
let posterior_all t window =
  let sign_post =
    Template.posterior ~priors:t.prior_of_sign t.sign_template (Sosd.pick window t.pois_sign)
  in
  let sign_labels = t.sign_template.Template.labels in
  let p_of_sign s =
    let acc = ref 0.0 in
    Array.iteri (fun i l -> if l = s then acc := sign_post.(i)) sign_labels;
    !acc
  in
  let entries = ref [] in
  (* zero *)
  entries := (0, p_of_sign 0) :: !entries;
  List.iter
    (fun s ->
      let template, priors =
        match s with
        | -1 -> (t.neg_template, t.neg_priors)
        | _ -> (t.pos_template, t.pos_priors)
      in
      let post = Template.posterior ~priors template (Sosd.pick window (if s = -1 then t.pois_neg else t.pois_pos)) in
      let ps = p_of_sign s in
      Array.iteri (fun i l -> entries := (l, ps *. post.(i)) :: !entries) template.Template.labels)
    [ -1; 1 ];
  let arr = Array.of_list !entries in
  Array.sort (fun (a, _) (b, _) -> compare a b) arr;
  arr

type graded = {
  g_verdict : verdict;
  g_posterior_all : (int * float) array;
  g_sign_confidence : float;
  g_sign_fit : float;
  g_value_fit : float;
}

(* ------------------------------------------------------------------ *)
(* Fvec scoring: one scratch per domain, zero allocation per window.  *)
(* ------------------------------------------------------------------ *)

module Scratch = struct
  type t = {
    gather : Mathkit.Fvec.t;  (* POI gather buffer, max over the three sets *)
    sign : Template.scratch;
    neg : Template.scratch;
    pos : Template.scratch;
  }
end

let make_scratch t =
  let np = max (Array.length t.pois_sign) (max (Array.length t.pois_neg) (Array.length t.pois_pos)) in
  let cap =
    np + Template.dimension t.sign_template + Template.dimension t.neg_template
    + Template.dimension t.pos_template
  in
  let arena = Mathkit.Fvec.Scratch.create cap in
  {
    Scratch.gather = Mathkit.Fvec.Scratch.alloc arena np;
    sign = Template.make_scratch ~arena t.sign_template;
    neg = Template.make_scratch ~arena t.neg_template;
    pos = Template.make_scratch ~arena t.pos_template;
  }

(* Gather the POI samples into a prefix view of the scratch buffer.
   The view is consumed before the next pick, so one buffer serves all
   three POI sets. *)
let pick_into (s : Scratch.t) pois window =
  let out = Mathkit.Fvec.sub s.Scratch.gather 0 (Array.length pois) in
  Sosd.pick_fv window pois ~out;
  out

let classify_sign_only_fv t s window =
  Template.classify_fv t.sign_template s.Scratch.sign (pick_into s t.pois_sign window)

let sign_confidence_fv t s window =
  let post = Template.posterior_fv t.sign_template s.Scratch.sign (pick_into s t.pois_sign window) in
  Array.fold_left Float.max 0.0 post

let best_log_likelihood_fv template scratch vec =
  Array.fold_left Float.max neg_infinity (Template.log_likelihoods_fv template scratch vec)

let sign_fit_fv t s window =
  best_log_likelihood_fv t.sign_template s.Scratch.sign (pick_into s t.pois_sign window)

let value_fit_fv t s ~sign window =
  match sign with
  | -1 -> best_log_likelihood_fv t.neg_template s.Scratch.neg (pick_into s t.pois_neg window)
  | 1 -> best_log_likelihood_fv t.pos_template s.Scratch.pos (pick_into s t.pois_pos window)
  | _ -> sign_fit_fv t s window

let group_posterior_fv t s sign window =
  match sign with
  | -1 -> (t.neg_template, Template.posterior_fv t.neg_template s.Scratch.neg (pick_into s t.pois_neg window))
  | 1 -> (t.pos_template, Template.posterior_fv t.pos_template s.Scratch.pos (pick_into s t.pois_pos window))
  | _ -> invalid_arg "Attack.group_posterior: sign must be -1 or 1"

let classify_fv t s window =
  let sign = classify_sign_only_fv t s window in
  if sign = 0 then { sign; value = 0; posterior = [| (0, 1.0) |] }
  else begin
    let template, post = group_posterior_fv t s sign window in
    let labels = template.Template.labels in
    let best = Mathkit.Stats.argmax post in
    { sign; value = labels.(best); posterior = Array.mapi (fun i l -> (l, post.(i))) labels }
  end

(* [posterior_all] over scratch.  The sign posterior is borrowed from
   the sign scratch, which the value-group scoring below never touches,
   so reading it after each group posterior is safe. *)
let posterior_all_fv t s window =
  let sign_post =
    Template.posterior_fv ~priors:t.prior_of_sign t.sign_template s.Scratch.sign
      (pick_into s t.pois_sign window)
  in
  let sign_labels = t.sign_template.Template.labels in
  let p_of_sign sg =
    let acc = ref 0.0 in
    Array.iteri (fun i l -> if l = sg then acc := sign_post.(i)) sign_labels;
    !acc
  in
  let entries = ref [] in
  entries := (0, p_of_sign 0) :: !entries;
  List.iter
    (fun sg ->
      let template, priors, pois, tsc =
        match sg with
        | -1 -> (t.neg_template, t.neg_priors, t.pois_neg, s.Scratch.neg)
        | _ -> (t.pos_template, t.pos_priors, t.pois_pos, s.Scratch.pos)
      in
      let post = Template.posterior_fv ~priors template tsc (pick_into s pois window) in
      let ps = p_of_sign sg in
      Array.iteri (fun i l -> entries := (l, ps *. post.(i)) :: !entries) template.Template.labels)
    [ -1; 1 ];
  let arr = Array.of_list !entries in
  Array.sort (fun (a, _) (b, _) -> compare a b) arr;
  arr

(* The fused grading pass: everything the confidence gate consumes per
   window, from ONE scoring of each template.  The separate entry
   points above score the sign template up to four times and a value
   template up to three times per graded window; [Template.scores_fv]
   computes each template's rows once and this function derives the
   five grading quantities from them.  Every derived value replicates
   the arithmetic of the corresponding single call exactly, so the
   fusion is bit-invisible (test_sca pins this) — it is the main
   per-window win of the numeric-core refactor. *)
let grade_fv t s window =
  let sign_sc = Template.scores_fv ~priors:t.prior_of_sign t.sign_template s.Scratch.sign (pick_into s t.pois_sign window) in
  let sign_labels = t.sign_template.Template.labels in
  let sign = sign_labels.(Mathkit.Stats.argmax sign_sc.Template.s_post) in
  let g_sign_confidence = Array.fold_left Float.max 0.0 sign_sc.Template.s_post in
  let g_sign_fit = sign_sc.Template.s_best_ll in
  (* Both value groups always feed the joint posterior, exactly like
     posterior_all — but only the recovered sign's template has its
     flat posterior (verdict) and best density (fit floor) read.  The
     other group — both groups, under a zero sign — contributes its
     priored row alone, so the rows no consumer reads are simply not
     computed; every row that is carries full-[scores_fv] bits. *)
  let verdict_of template (sc : Template.scores) =
    let labels = template.Template.labels in
    let best = Mathkit.Stats.argmax sc.Template.s_post in
    { sign; value = labels.(best); posterior = Array.mapi (fun i l -> (l, sc.Template.s_post.(i))) labels }
  in
  let g_verdict, g_value_fit, neg_pp, pos_pp =
    match sign with
    | -1 ->
        let neg_sc = Template.scores_fv ~priors:t.neg_priors t.neg_template s.Scratch.neg (pick_into s t.pois_neg window) in
        let pos_pp = Template.priored_posterior_fv ~priors:t.pos_priors t.pos_template s.Scratch.pos (pick_into s t.pois_pos window) in
        (verdict_of t.neg_template neg_sc, neg_sc.Template.s_best_ll, neg_sc.Template.s_post_p, pos_pp)
    | 1 ->
        let neg_pp = Template.priored_posterior_fv ~priors:t.neg_priors t.neg_template s.Scratch.neg (pick_into s t.pois_neg window) in
        let pos_sc = Template.scores_fv ~priors:t.pos_priors t.pos_template s.Scratch.pos (pick_into s t.pois_pos window) in
        (verdict_of t.pos_template pos_sc, pos_sc.Template.s_best_ll, neg_pp, pos_sc.Template.s_post_p)
    | _ ->
        let neg_pp = Template.priored_posterior_fv ~priors:t.neg_priors t.neg_template s.Scratch.neg (pick_into s t.pois_neg window) in
        let pos_pp = Template.priored_posterior_fv ~priors:t.pos_priors t.pos_template s.Scratch.pos (pick_into s t.pois_pos window) in
        ({ sign; value = 0; posterior = [| (0, 1.0) |] }, g_sign_fit, neg_pp, pos_pp)
  in
  let p_of_sign sg =
    let acc = ref 0.0 in
    Array.iteri (fun i l -> if l = sg then acc := sign_sc.Template.s_post_p.(i)) sign_labels;
    !acc
  in
  let entries = ref [] in
  entries := (0, p_of_sign 0) :: !entries;
  List.iter
    (fun sg ->
      let template, pp = match sg with -1 -> (t.neg_template, neg_pp) | _ -> (t.pos_template, pos_pp) in
      let ps = p_of_sign sg in
      Array.iteri (fun i l -> entries := (l, ps *. pp.(i)) :: !entries) template.Template.labels)
    [ -1; 1 ];
  let g_posterior_all = Array.of_list !entries in
  Array.sort (fun (a, _) (b, _) -> compare a b) g_posterior_all;
  { g_verdict; g_posterior_all; g_sign_confidence; g_sign_fit; g_value_fit }
