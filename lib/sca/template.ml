type t = {
  labels : int array;
  means : float array array;
  inv_cov : Mathkit.Matrix.t;
  inv_cov_fm : Mathkit.Fmat.t;
  log_det : float;
  pois : int array;
}

let build ?(regularization = 1e-6) ~pois classes =
  (match classes with [] -> invalid_arg "Template.build: no classes" | _ -> ());
  List.iter
    (fun (label, rows) ->
      if Array.length rows < 2 then
        invalid_arg (Printf.sprintf "Template.build: class %d needs >= 2 profiling vectors" label))
    classes;
  let labels = Array.of_list (List.map fst classes) in
  let means = Array.of_list (List.map (fun (_, rows) -> Mathkit.Stats.mean_vector rows) classes) in
  let pooled = Mathkit.Stats.pooled_covariance (Array.of_list (List.map snd classes)) in
  let d = Mathkit.Matrix.rows pooled in
  let mean_diag = Mathkit.Matrix.trace pooled /. float_of_int d in
  let eps = regularization *. Float.max mean_diag 1e-12 in
  let cov = Mathkit.Linalg.regularize pooled eps in
  let inv_cov = Mathkit.Linalg.inverse cov in
  let log_det = Mathkit.Linalg.logdet cov in
  { labels; means; inv_cov; inv_cov_fm = Mathkit.Fmat.of_matrix inv_cov; log_det; pois }

let log_likelihoods t x =
  let d = float_of_int (Array.length x) in
  let const = -0.5 *. ((d *. log (2.0 *. Float.pi)) +. t.log_det) in
  Array.map (fun mu -> const -. (0.5 *. Mathkit.Linalg.mahalanobis_sq ~inv_cov:t.inv_cov x mu)) t.means

let posterior ?priors t x =
  let ll = log_likelihoods t x in
  (match priors with
  | Some p ->
      if Array.length p <> Array.length ll then invalid_arg "Template.posterior: prior length mismatch";
      Array.iteri (fun i pi -> ll.(i) <- ll.(i) +. log (Float.max pi 1e-300)) p
  | None -> ());
  let z = Mathkit.Stats.log_sum_exp ll in
  Array.map (fun l -> exp (l -. z)) ll

let classify ?priors t x =
  let p = posterior ?priors t x in
  t.labels.(Mathkit.Stats.argmax p)

let dimension t = match t.means with [||] -> 0 | ms -> Array.length ms.(0)

(* Per-template reusable buffers.  [diff] holds x - mu for the fused
   quadratic form; [ll]/[post] are the per-class score rows that the
   _fv entry points return BORROWED — valid until the next call on the
   same scratch. *)
type scratch = { diff : Mathkit.Fvec.t; ll : float array; post : float array; post_p : float array }

let make_scratch ?arena t =
  let d = dimension t in
  let diff =
    match arena with
    | Some a -> Mathkit.Fvec.Scratch.alloc a d
    | None -> Mathkit.Fvec.create d
  in
  let k = Array.length t.labels in
  { diff; ll = Array.make k 0.0; post = Array.make k 0.0; post_p = Array.make k 0.0 }

(* Bit-identical to [log_likelihoods]: the diff elements are computed
   the same way and [Fmat.quadratic_form] replicates the accumulation
   order of [Matrix.dot d (Matrix.mul_vec inv_cov d)] exactly. *)
let log_likelihoods_fv t s x =
  let open Mathkit in
  let dim = Fvec.length x in
  if Fvec.length s.diff <> dim then invalid_arg "Template.log_likelihoods_fv: scratch dimension mismatch";
  let d = float_of_int dim in
  let const = -0.5 *. ((d *. log (2.0 *. Float.pi)) +. t.log_det) in
  let xbuf = Fvec.buffer x and xoff = Fvec.offset x and xstr = Fvec.stride x in
  let dbuf = Fvec.buffer s.diff and doff = Fvec.offset s.diff and dstr = Fvec.stride s.diff in
  Fvec.check_range xbuf ~off:xoff ~stride:xstr ~len:dim "Template.log_likelihoods_fv";
  Fvec.check_range dbuf ~off:doff ~stride:dstr ~len:dim "Template.log_likelihoods_fv";
  Array.iteri
    (fun k mu ->
      if Array.length mu <> dim then invalid_arg "Linalg.mahalanobis_sq: length mismatch";
      for j = 0 to dim - 1 do
        (* srclint: allow unsafe-index both view ranges check_range'd above, mu length checked per class *)
        Bigarray.Array1.unsafe_set dbuf (doff + (j * dstr)) (Bigarray.Array1.unsafe_get xbuf (xoff + (j * xstr)) -. Array.unsafe_get mu j)
      done;
      s.ll.(k) <- const -. (0.5 *. Fmat.quadratic_form t.inv_cov_fm s.diff))
    t.means;
  s.ll

let posterior_fv ?priors t s x =
  let ll = log_likelihoods_fv t s x in
  (match priors with
  | Some p ->
      if Array.length p <> Array.length ll then invalid_arg "Template.posterior: prior length mismatch";
      Array.iteri (fun i pi -> ll.(i) <- ll.(i) +. log (Float.max pi 1e-300)) p
  | None -> ());
  let z = Mathkit.Stats.log_sum_exp ll in
  for i = 0 to Array.length ll - 1 do
    s.post.(i) <- exp (ll.(i) -. z)
  done;
  s.post

let classify_fv ?priors t s x = t.labels.(Mathkit.Stats.argmax (posterior_fv ?priors t s x))

type scores = { s_best_ll : float; s_post : float array; s_post_p : float array }

(* One ll pass feeding every consumer of a template's scores: the
   best-class log density (fit gating), the flat-prior posterior
   (classification, confidence) and the priored posterior (the joint
   Bayesian posterior).  Each derived row replicates the arithmetic of
   the corresponding single-purpose entry point exactly — same values
   in the same order — so fusing several calls into one [scores_fv] is
   bit-invisible to every consumer.  Both rows are BORROWED, valid
   until the next call on the same scratch. *)
(* [Array.fold_left Float.max neg_infinity xs], with the common case
   settled by a strict [>] (Float.max's sign_bit test boxes an Int64
   per call); ties and NaNs fall back to the real Float.max, so the
   result is bitwise the plain fold's. *)
let max_fold xs =
  let acc = ref neg_infinity in
  for i = 0 to Array.length xs - 1 do
    let x = xs.(i) in
    if x > !acc then acc := x else if not (x < !acc) then acc := Float.max !acc x
  done;
  !acc

(* [Stats.log_sum_exp] with the peak already in hand: same guard, same
   ascending accumulation. *)
let lse_with_max xs m =
  if Float.is_nan m || m = neg_infinity then m
  else m +. log (Array.fold_left (fun acc x -> acc +. exp (x -. m)) 0.0 xs)

let scores_fv ~priors t s x =
  let ll = log_likelihoods_fv t s x in
  let k = Array.length ll in
  (* log_sum_exp's internal peak IS the best-class log density: one
     fold serves both. *)
  let best = max_fold ll in
  let z = lse_with_max ll best in
  for i = 0 to k - 1 do
    s.post.(i) <- exp (ll.(i) -. z)
  done;
  if Array.length priors <> k then invalid_arg "Template.posterior: prior length mismatch";
  Array.iteri (fun i pi -> ll.(i) <- ll.(i) +. log (Float.max pi 1e-300)) priors;
  let zp = lse_with_max ll (max_fold ll) in
  for i = 0 to k - 1 do
    s.post_p.(i) <- exp (ll.(i) -. zp)
  done;
  { s_best_ll = best; s_post = s.post; s_post_p = s.post_p }

(* The priored posterior row alone — [scores_fv] minus the flat
   posterior and the best density, for a template whose only consumed
   output is its factor of the joint posterior.  Every step is the
   corresponding [scores_fv] step, so the row carries the same bits.
   BORROWED like the scores rows. *)
let priored_posterior_fv ~priors t s x =
  let ll = log_likelihoods_fv t s x in
  let k = Array.length ll in
  if Array.length priors <> k then invalid_arg "Template.posterior: prior length mismatch";
  Array.iteri (fun i pi -> ll.(i) <- ll.(i) +. log (Float.max pi 1e-300)) priors;
  let zp = lse_with_max ll (max_fold ll) in
  for i = 0 to k - 1 do
    s.post_p.(i) <- exp (ll.(i) -. zp)
  done;
  s.post_p

let restrict t keep =
  let idx = ref [] in
  Array.iteri (fun i label -> if keep label then idx := i :: !idx) t.labels;
  let idx = Array.of_list (List.rev !idx) in
  if Array.length idx = 0 then invalid_arg "Template.restrict: no classes left";
  { t with labels = Array.map (fun i -> t.labels.(i)) idx; means = Array.map (fun i -> t.means.(i)) idx }
