type t = {
  mean : float array;
  basis : Mathkit.Matrix.t;
}

let between_class_scatter classes =
  (match classes with [] | [ _ ] -> invalid_arg "Pca.fit: need at least two classes" | _ -> ());
  let means = List.map (fun (_, rows) -> Mathkit.Stats.mean_vector rows) classes in
  let d = Array.length (List.hd means) in
  List.iter (fun m -> if Array.length m <> d then invalid_arg "Pca.fit: ragged classes") means;
  let global = Mathkit.Stats.mean_vector (Array.of_list means) in
  let scatter = Mathkit.Matrix.create d d in
  List.iter
    (fun mu ->
      let diff = Array.init d (fun i -> mu.(i) -. global.(i)) in
      for i = 0 to d - 1 do
        if diff.(i) <> 0.0 then
          for j = 0 to d - 1 do
            Mathkit.Matrix.set scatter i j (Mathkit.Matrix.get scatter i j +. (diff.(i) *. diff.(j)))
          done
      done)
    means;
  (global, scatter)

let fit ?(k = 8) classes =
  let global, scatter = between_class_scatter classes in
  let k = min k (List.length classes - 1) in
  let k = max 1 k in
  { mean = global; basis = Mathkit.Linalg.principal_components scatter ~k }

let components t = Mathkit.Matrix.cols t.basis

let transform t window =
  let d = Array.length t.mean in
  if Array.length window <> d then invalid_arg "Pca.transform: dimension mismatch";
  let centered = Array.init d (fun i -> window.(i) -. t.mean.(i)) in
  Array.init (components t) (fun c ->
      let acc = ref 0.0 in
      for i = 0 to d - 1 do
        acc := !acc +. (centered.(i) *. Mathkit.Matrix.get t.basis i c)
      done;
      !acc)

let transform_all t rows = Array.map (transform t) rows

(* View-reading variant for callers that hold Fvec windows; the
   projection itself is cold (ablation only), so the result stays a
   plain array.  Same arithmetic as [transform]. *)
let transform_fv t window =
  let d = Array.length t.mean in
  if Mathkit.Fvec.length window <> d then invalid_arg "Pca.transform: dimension mismatch";
  let centered = Array.init d (fun i -> Mathkit.Fvec.get window i -. t.mean.(i)) in
  Array.init (components t) (fun c ->
      let acc = ref 0.0 in
      for i = 0 to d - 1 do
        acc := !acc +. (centered.(i) *. Mathkit.Matrix.get t.basis i c)
      done;
      !acc)

let explained classes ~k =
  let _, scatter = between_class_scatter classes in
  let values, _ = Mathkit.Linalg.jacobi_eigen scatter in
  let total = Array.fold_left (fun acc v -> acc +. Float.max 0.0 v) 0.0 values in
  if total <= 0.0 then 0.0
  else begin
    let top = ref 0.0 in
    for i = 0 to min k (Array.length values) - 1 do
      top := !top +. Float.max 0.0 values.(i)
    done;
    !top /. total
  end
