(** The narrow per-window classifier interface of the attack pipeline.

    Everything the grading and hint stages need from a trained
    classifier fits in this signature: a hard verdict, the full value
    posterior, and the three absolute goodness-of-fit scores the
    confidence gate compares against its calibrated floors.  The
    combined template attack ({!Attack}) is the first instance; an ML
    classifier (GALACTICS-style) or a per-variant specialisation only
    has to implement [S] to slot into the same pipeline. *)

module type S = sig
  type t
  (** Trained classifier state. *)

  val name : string

  val classify : t -> float array -> Attack.verdict
  (** Hard decision for one window vector. *)

  val posterior_all : t -> float array -> (int * float) array
  (** Joint posterior over every candidate value. *)

  val sign_confidence : t -> float array -> float
  (** Peak of the flat-prior sign posterior (how unambiguous the
      branch-region match is). *)

  val sign_fit : t -> float array -> float
  (** Best-class log density under the sign model — absolute
      goodness-of-fit, gate input. *)

  val value_fit : t -> sign:int -> float array -> float
  (** Best-class log density under [sign]'s value model. *)
end

module Template : S with type t = Attack.t
(** The combined template attack behind the narrow interface. *)
