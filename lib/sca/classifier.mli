(** The narrow per-window classifier interface of the attack pipeline.

    Everything the grading and hint stages need from a trained
    classifier fits in this signature: a hard verdict, the full value
    posterior, and the three absolute goodness-of-fit scores the
    confidence gate compares against its calibrated floors.  Windows
    arrive as {!Mathkit.Fvec} views (possibly aliasing the trace
    buffer — implementations must treat them as read-only), and every
    scoring call threads a [scratch] the implementation allocated in
    [make_scratch]: per-domain reusable buffers, so the hot loop is
    allocation-free.  A stateless classifier can use [scratch = unit].

    The combined template attack ({!Attack}) is the first instance; an
    ML classifier (GALACTICS-style) or a per-variant specialisation
    only has to implement [S] to slot into the same pipeline. *)

module type S = sig
  type t
  (** Trained classifier state. *)

  type scratch
  (** Per-domain mutable scoring workspace.  Never share one scratch
      across domains. *)

  val name : string

  val make_scratch : t -> scratch
  (** Fresh scratch sized for this classifier. *)

  val classify : t -> scratch -> Mathkit.Fvec.t -> Attack.verdict
  (** Hard decision for one window view. *)

  val posterior_all : t -> scratch -> Mathkit.Fvec.t -> (int * float) array
  (** Joint posterior over every candidate value. *)

  val sign_confidence : t -> scratch -> Mathkit.Fvec.t -> float
  (** Peak of the flat-prior sign posterior (how unambiguous the
      branch-region match is). *)

  val sign_fit : t -> scratch -> Mathkit.Fvec.t -> float
  (** Best-class log density under the sign model — absolute
      goodness-of-fit, gate input. *)

  val value_fit : t -> scratch -> sign:int -> Mathkit.Fvec.t -> float
  (** Best-class log density under [sign]'s value model. *)

  val grade : t -> scratch -> Mathkit.Fvec.t -> Attack.graded
  (** All five grading quantities from one scoring pass.  Contract:
      each field equals — bitwise — what the corresponding
      single-purpose function above returns for the same window, so
      the grader may call either form interchangeably.  Implementations
      that cannot share work may simply bundle the five calls. *)
end

module Template : S with type t = Attack.t and type scratch = Attack.Scratch.t
(** The combined template attack behind the narrow interface. *)
