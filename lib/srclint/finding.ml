type kind = Broke of Rule.t | Unused_allow of Rule.t | Bad_directive

type t = { file : string; line : int; kind : kind; detail : string }

let rule_name = function
  | Broke r -> Rule.name r
  | Unused_allow _ -> "unused-allow"
  | Bad_directive -> "bad-directive"

let severity_name = function Broke _ -> "VIOLATION" | Unused_allow _ | Bad_directive -> "warning"

let kind_rank = function Broke r -> (0, Rule.name r) | Unused_allow r -> (1, Rule.name r) | Bad_directive -> (2, "")

let compare a b =
  match String.compare a.file b.file with
  | 0 -> ( match Int.compare a.line b.line with 0 -> Stdlib.compare (kind_rank a.kind) (kind_rank b.kind) | c -> c)
  | c -> c

let to_row f =
  {
    Ctcheck.Render.loc = Printf.sprintf "%s:%d" f.file f.line;
    rule = rule_name f.kind;
    severity = severity_name f.kind;
    tag = None;
    detail = f.detail;
  }

let to_string f = Ctcheck.Render.line (to_row f)
