(** The five srclint rule classes.

    Each rule protects one leg of the repo's determinism contract
    (bit-identical sharded merges, byte-identical fuzz batches,
    reproducible obs traces — see DESIGN.md §15):

    - {!Nondet_source}: [Random.self_init] and global-state
      [Random.*], [Unix.gettimeofday], [Unix.time], [Sys.time] and
      [Domain.self] values anywhere except sanctioned, allowlisted
      wall-clock sites (the [Obs.Clock] Wall clock, worker
      deadlines).
    - {!Hashtbl_order}: [Hashtbl.fold] / [Hashtbl.iter] /
      [Hashtbl.to_seq*] results that are not visibly sorted at the
      call site — conservatively assumed to reach emitted output in
      nondeterministic hash order.
    - {!Domain_capture}: [ref]s, mutable record fields, [Hashtbl]s
      and [Buffer]s mutated inside a [Domain.spawn] closure that
      never mentions [Mutex] / [Atomic].
    - {!Exn_message}: pattern matches or comparisons on exception
      {e message strings} rather than exception families —
      [Triage.Signature] already learned this lesson the hard way.
    - {!Unsafe_index}: [*.unsafe_get] / [*.unsafe_set] anywhere —
      bounds-unchecked access is sanctioned only in the audited
      {!Mathkit.Fvec} kernel loops (which validate bounds up front
      and re-enable checked access under [REVEAL_FVEC_BOUNDS=1]),
      each site carrying its own allow with a written reason.

    Suppression is per-site via an allow comment naming the rule and
    a written reason (syntax in DESIGN.md §15); unused suppressions
    are themselves reported. *)

type t = Nondet_source | Hashtbl_order | Domain_capture | Exn_message | Unsafe_index

val all : t list

val name : t -> string
(** Kebab-case rule id: ["nondet-source"], ["hashtbl-order"],
    ["domain-capture"], ["exn-message"], ["unsafe-index"]. *)

val of_name : string -> t option

val why : t -> string
(** One-line rationale, rendered by [reveal srclint --rules]-style
    documentation surfaces. *)
