(** Per-site suppression and expectation directives.

    A directive is an OCaml comment containing, on one line:

    - [(* srclint: allow RULE reason... *)] — suppress findings of
      [RULE] on this line or the next; the reason is mandatory and
      free-form.  An allow that never fires is reported as an
      [unused-allow] finding, mirroring leaklint's
      confirmed-vs-static discipline: a suppression is a claim, and
      stale claims must surface.
    - [(* srclint: expect RULE *)] — under [--check], assert that a
      finding of [RULE] anchors on this line or the next.  Used by
      the planted-violation fixtures; drift in either direction
      fails.

    Scanning is textual and line-based (the parser drops comments).
    A line whose first string-quote opens before the marker is never
    a directive, so documentation and tests can quote the syntax;
    keep real directives on their own line when in doubt. *)

type parsed =
  | Not_directive
  | Allow of Rule.t * string  (** rule, reason (whitespace-normalized) *)
  | Expect of string  (** a core rule name or a meta finding name *)
  | Malformed of string  (** a directive that does not parse — reported as [bad-directive] *)

val meta_names : string list
(** [["unused-allow"; "bad-directive"]] — the driver-synthesized finding kinds. *)

val expect_names : string list
(** Every name an [expect] may reference: core rules plus {!meta_names}. *)

val parse_line : string -> parsed
(** Classify one source line.  Total: lines without the marker are
    {!Not_directive}, marker lines that fail to parse are
    {!Malformed}. *)

val allow_comment : rule:Rule.t -> reason:string -> string
(** Render an allow directive; [parse_line (allow_comment ~rule ~reason)]
    round-trips to [Allow (rule, reason)] for single-spaced reasons
    (the QCheck property pins this). *)

type scan = {
  allows : (int * Rule.t * string) list;  (** (1-based line, rule, reason) *)
  expects : (int * string) list;
  malformed : (int * string) list;
}

val scan : string -> scan
(** All directives of one source, in line order. *)

val covers : directive_line:int -> finding_line:int -> bool
(** A directive on line [L] covers findings on [L] and [L+1]. *)
