(** Typed srclint findings, anchored at a file and 1-based line.

    Rule breaks are {e VIOLATION} severity; the two meta findings the
    driver synthesizes — an allow that suppressed nothing, a directive
    that does not parse — are {e warning} severity.  Either kind makes
    a report dirty: a stale suppression is drift in the determinism
    contract's paper trail, not noise. *)

type kind =
  | Broke of Rule.t  (** a rule fired at this site *)
  | Unused_allow of Rule.t  (** an allow directive that suppressed no finding *)
  | Bad_directive  (** a directive comment that does not parse *)

type t = { file : string; line : int; kind : kind; detail : string }

val rule_name : kind -> string
(** Core rule name, ["unused-allow"] or ["bad-directive"] — the
    vocabulary [expect] directives use. *)

val severity_name : kind -> string

val compare : t -> t -> int
(** Report order: file, then line, then kind. *)

val to_row : t -> Ctcheck.Render.row
(** The shared report row ([loc] = ["file:line"], no tag) — both
    [reveal srclint]'s listing and its [--json] findings render
    through {!Ctcheck.Render}, the same helper [reveal lint] uses. *)

val to_string : t -> string
