type t = Nondet_source | Hashtbl_order | Domain_capture | Exn_message | Unsafe_index

let all = [ Nondet_source; Hashtbl_order; Domain_capture; Exn_message; Unsafe_index ]

let name = function
  | Nondet_source -> "nondet-source"
  | Hashtbl_order -> "hashtbl-order"
  | Domain_capture -> "domain-capture"
  | Exn_message -> "exn-message"
  | Unsafe_index -> "unsafe-index"

let of_name s = List.find_opt (fun r -> name r = s) all

let why = function
  | Nondet_source ->
      "ambient entropy, wall-clock or scheduler state reaches a value — identical inputs could produce different \
       output"
  | Hashtbl_order ->
      "Hashtbl iteration order depends on hashing internals — a fold/iter result must be sorted before it can reach \
       emitted output"
  | Domain_capture ->
      "mutable state captured by a Domain.spawn closure with no synchronization in sight is a data race"
  | Exn_message ->
      "exception message strings are not a stable interface — match on the exception family (typed constructor) \
       instead"
  | Unsafe_index ->
      "unsafe_get/unsafe_set skip bounds checking — sanctioned only in audited numeric kernels whose loop bounds are \
       validated up front and re-checkable via a debug flag"
