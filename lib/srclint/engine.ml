(* The static pass proper: one Parsetree traversal per file, five rule
   classes, everything syntactic and conservative.  compiler-libs
   ships with the compiler, so this adds no external dependency.

   Conservatism contract (see DESIGN.md §15): the pass over-reports
   rather than model dataflow — a Hashtbl.fold is clean only when a
   sort visibly consumes it at the call site, a Domain.spawn closure
   is clean only when the closure itself mentions a synchronizer.
   Anything the syntax cannot prove is a finding, and provably-benign
   sites are allowlisted with a written reason. *)

open Parsetree

type raw = { r_line : int; r_rule : Rule.t; r_detail : string }

let rec path_strings = function
  | Longident.Lident s -> Some [ s ]
  | Longident.Ldot (l, s) -> ( match path_strings l with Some p -> Some (p @ [ s ]) | None -> None)
  | Longident.Lapply _ -> None

let dotted lid = match path_strings lid with Some p -> Some (String.concat "." p) | None -> None

let line_of (loc : Location.t) = loc.Location.loc_start.Lexing.pos_lnum

let rec head e =
  match e.pexp_desc with Pexp_ident { txt; _ } -> dotted txt | Pexp_apply (f, _) -> head f | _ -> None

let starts_with ~prefix s =
  String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix

let ends_with ~suffix s =
  let n = String.length s and m = String.length suffix in
  n >= m && String.sub s (n - m) m = suffix

(* --- rule 1: nondeterminism sources ------------------------------------- *)

let nondet_detail name =
  match name with
  | "Random.self_init" -> Some "seeds the global PRNG from ambient entropy — randomness must flow from explicit seeds"
  | "Unix.gettimeofday" | "Unix.time" ->
      Some (name ^ " reads the wall clock — route time through Obs.Clock or allowlist the sanctioned site")
  | "Sys.time" -> Some "reads process CPU time — not reproducible across runs"
  | "Domain.self" -> Some "domain identity depends on runtime scheduling"
  | _ -> (
      (* Global-state Random.* (Random.State.* is explicit-state and fine). *)
      match String.index_opt name '.' with
      | Some i when String.sub name 0 i = "Random" && not (starts_with ~prefix:"Random.State" name) ->
          Some (name ^ " draws from the global PRNG — use a seeded Mathkit.Prng (or Random.State)")
      | _ -> None)

(* --- rule 5: bounds-unchecked indexing ------------------------------------ *)

(* Any module's unsafe accessors ([Array.unsafe_get], [Bytes.unsafe_set],
   [Bigarray.Array1.unsafe_get], [String.unsafe_get], ...): the dotted
   path is matched on its tail so new containers are covered for free. *)
let unsafe_index_detail name =
  if ends_with ~suffix:".unsafe_get" name || ends_with ~suffix:".unsafe_set" name then
    Some (name ^ " skips bounds checking — allowed only at audited kernel sites with a written reason")
  else None

(* --- rule 2: Hashtbl iteration order ------------------------------------- *)

let foldish = [ "Hashtbl.fold"; "Hashtbl.to_seq"; "Hashtbl.to_seq_keys"; "Hashtbl.to_seq_values" ]
let iterish = [ "Hashtbl.iter"; "Hashtbl.filter_map_inplace" ]

let sorters =
  [
    "List.sort";
    "List.stable_sort";
    "List.fast_sort";
    "List.sort_uniq";
    "Array.sort";
    "Array.stable_sort";
    "Array.fast_sort";
  ]

let is_sorter n = List.mem n sorters

(* --- rule 3: Domain.spawn captures ---------------------------------------- *)

let sync_prefixes = [ "Mutex."; "Atomic."; "Semaphore."; "Condition."; "Domain.DLS." ]
let mutable_prefixes = [ "Hashtbl."; "Buffer."; "Queue."; "Stack." ]

let mutable_idents =
  [ ":="; "!"; "incr"; "decr"; "Array.set"; "Array.fill"; "Array.blit"; "Bytes.set"; "Bytes.fill"; "Bytes.blit" ]

(* Collect (dotted ident, line) mentions plus mutable-field writes in a
   closure body; the write markers use the pseudo-name "<-". *)
let mentions e =
  let acc = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_ident { txt; _ } -> (
              match dotted txt with Some n -> acc := (n, line_of e.pexp_loc) :: !acc | None -> ())
          | Pexp_setfield _ | Pexp_setinstvar _ -> acc := ("<-", line_of e.pexp_loc) :: !acc
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it e;
  List.rev !acc

let is_mutation n =
  n = "<-" || List.mem n mutable_idents || List.exists (fun p -> starts_with ~prefix:p n) mutable_prefixes

let is_sync n = List.exists (fun p -> starts_with ~prefix:p n) sync_prefixes

(* --- rule 4: exception message strings ------------------------------------ *)

let comparators =
  [ "="; "<>"; "=="; "!="; "String.equal"; "String.compare"; "String.starts_with"; "String.ends_with" ]

let rec pat_string_construct p =
  let has_string p =
    let found = ref false in
    let it =
      {
        Ast_iterator.default_iterator with
        pat =
          (fun it p ->
            (match p.ppat_desc with Ppat_constant (Pconst_string _) -> found := true | _ -> ());
            Ast_iterator.default_iterator.pat it p);
      }
    in
    it.pat it p;
    !found
  in
  match p.ppat_desc with
  | Ppat_construct ({ txt; _ }, Some (_, arg)) when has_string arg ->
      Some (line_of p.ppat_loc, Option.value ~default:"?" (dotted txt))
  | Ppat_variant (label, Some arg) when has_string arg -> Some (line_of p.ppat_loc, "`" ^ label)
  | Ppat_or (a, b) -> ( match pat_string_construct a with Some r -> Some r | None -> pat_string_construct b)
  | Ppat_alias (p, _) | Ppat_constraint (p, _) -> pat_string_construct p
  | Ppat_tuple ps -> List.find_map pat_string_construct ps
  | _ -> None

(* --- the pass -------------------------------------------------------------- *)

let analyze structure =
  let out = ref [] in
  let emit line rule detail = out := { r_line = line; r_rule = rule; r_detail = detail } :: !out in
  let sorted = ref 0 in
  let in_sorted f =
    incr sorted;
    Fun.protect ~finally:(fun () -> decr sorted) f
  in
  let exn_pattern p =
    match pat_string_construct p with
    | Some (line, constr) ->
        emit line Rule.Exn_message
          (Printf.sprintf "handler matches %s on a literal message string — match the exception family instead" constr)
    | None -> ()
  in
  let spawn_check args =
    List.iter
      (fun (_, arg) ->
        let ms = mentions arg in
        match List.find_opt (fun (n, _) -> is_mutation n) ms with
        | Some (name, line) when not (List.exists (fun (n, _) -> is_sync n) ms) ->
            emit line Rule.Domain_capture
              (Printf.sprintf
                 "Domain.spawn closure touches mutable state (%s) with no Mutex/Atomic in the closure" name)
        | _ -> ())
      args
  in
  let expr_iter (it : Ast_iterator.iterator) e =
    match e.pexp_desc with
    | Pexp_ident { txt; _ } -> (
        match dotted txt with
        | None -> ()
        | Some name -> (
            (match nondet_detail name with
            | Some d -> emit (line_of e.pexp_loc) Rule.Nondet_source d
            | None -> ());
            (match unsafe_index_detail name with
            | Some d -> emit (line_of e.pexp_loc) Rule.Unsafe_index d
            | None -> ());
            if List.mem name iterish then
              emit (line_of e.pexp_loc) Rule.Hashtbl_order
                (name ^ " visits entries in nondeterministic hash order — collect, sort, then iterate")
            else if List.mem name foldish && !sorted = 0 then
              emit (line_of e.pexp_loc) Rule.Hashtbl_order
                (name ^ " result is not visibly sorted — hash order could reach emitted output")))
    | Pexp_try (body, cases) ->
        List.iter (fun c -> exn_pattern c.pc_lhs) cases;
        it.expr it body;
        List.iter
          (fun c ->
            (match c.pc_guard with Some g -> it.expr it g | None -> ());
            it.expr it c.pc_rhs)
          cases
    | Pexp_apply (f, args) -> (
        match head f with
        | Some h when is_sorter h ->
            it.expr it f;
            in_sorted (fun () -> List.iter (fun (_, a) -> it.expr it a) args)
        | Some "|>" -> (
            match args with
            | [ (_, l); (_, r) ] when (match head r with Some hr -> is_sorter hr | None -> false) ->
                in_sorted (fun () -> it.expr it l);
                it.expr it r
            | _ -> Ast_iterator.default_iterator.expr it e)
        | Some "@@" -> (
            match args with
            | [ (_, l); (_, r) ] when (match head l with Some hl -> is_sorter hl | None -> false) ->
                it.expr it l;
                in_sorted (fun () -> it.expr it r)
            | _ -> Ast_iterator.default_iterator.expr it e)
        | Some "Domain.spawn" ->
            spawn_check args;
            Ast_iterator.default_iterator.expr it e
        | Some h when List.mem h comparators ->
            List.iter
              (fun (_, a) ->
                List.iter
                  (fun (n, line) ->
                    if n = "Printexc.to_string" || n = "Printexc.to_string_default" then
                      emit line Rule.Exn_message
                        "compares an exception's rendered message — match on the exception family instead")
                  (mentions a))
              args;
            Ast_iterator.default_iterator.expr it e
        | _ -> Ast_iterator.default_iterator.expr it e)
    | _ -> Ast_iterator.default_iterator.expr it e
  in
  let pat_iter (it : Ast_iterator.iterator) p =
    (match p.ppat_desc with Ppat_exception inner -> exn_pattern inner | _ -> ());
    Ast_iterator.default_iterator.pat it p
  in
  let it = { Ast_iterator.default_iterator with expr = expr_iter; pat = pat_iter } in
  it.structure it structure;
  List.sort_uniq compare (List.rev !out)

let analyze_string ~file src =
  let lexbuf = Lexing.from_string src in
  Lexing.set_filename lexbuf file;
  match Parse.implementation lexbuf with
  | structure -> Ok (analyze structure)
  | exception exn -> Error (Printf.sprintf "%s: parse error (%s)" file (Printexc.to_string exn))
