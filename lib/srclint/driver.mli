(** The srclint driver: walk sources, run the pass, apply
    suppressions, synthesize the meta findings, render the report.

    Exit-code mapping lives in the CLI; here a report is {!clean}
    when no finding survived (rule breaks, unused allows and bad
    directives all count), and {!drift} compares the surviving
    findings against the expect table for [--check]. *)

type report = {
  paths : string list;  (** the paths as given on the command line *)
  files : int;  (** .ml files scanned *)
  findings : Finding.t list;  (** surviving findings, report order *)
  suppressed : int;  (** findings an allow directive absorbed *)
  expects : (string * int * string) list;  (** (file, line, rule name) expect directives *)
}

val report_of_strings : ?paths:string list -> (string * string) list -> (report, string) result
(** Lint in-memory [(file, source)] pairs — the unit tests' entry
    point; {!lint_paths} routes through this. *)

val lint_paths : string list -> (report, string) result
(** Walk each path (recursing into directories, skipping [_build] and
    dot-entries), lint every [.ml] file in sorted order.  [Error] on
    unreadable paths and files that do not parse. *)

val clean : report -> bool

val drift : report -> string list
(** Mismatches between findings and the expect table, both directions
    — the [--check] verdict, mirroring leaklint's verdict-table
    check.  Empty means every expect matched a finding and every
    finding was expected. *)

val render : report -> string
(** Human-readable report: header, one shared-schema line per finding
    (see {!Ctcheck.Render}), verdict. *)

val to_json : report -> drift:string list -> ok:bool -> Obs.Json.t
(** The [--json] document: [paths], [files], [suppressed], [findings]
    (shared row objects), [drift], [ok]. *)
