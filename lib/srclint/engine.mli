(** The static pass: five syntactic, conservative rule classes over
    one file's Parsetree (compiler-libs [Parse] + [Ast_iterator] — no
    external dependency).

    Soundness stance, spelled out in DESIGN.md §15: the pass
    over-approximates.  A [Hashtbl.fold]/[to_seq] is clean only when
    a [List.sort*]/[Array.sort*] application visibly consumes it at
    the call site (directly, via [|>], or via [@@]); [Hashtbl.iter]
    is never clean; a [Domain.spawn] argument is clean only when the
    closure's own subtree mentions a synchronizer; module aliases and
    [open]ed modules are not resolved.  What the syntax cannot prove
    is a finding — provably-benign sites carry an allow directive
    with a written reason instead. *)

type raw = { r_line : int; r_rule : Rule.t; r_detail : string }
(** A pre-suppression finding: 1-based line, rule, one-line why. *)

val analyze_string : file:string -> string -> (raw list, string) result
(** Parse [src] (named [file] for locations) and run every rule.
    Findings are sorted by line then rule and deduplicated; a file
    that does not parse is an [Error]. *)
