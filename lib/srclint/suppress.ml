(* Directive scanning is textual (compiler-libs' Parse drops comments),
   one directive per line.  The marker string is assembled at runtime
   so that srclint's own source never contains it — otherwise this
   very file would scan as a directive. *)

let marker = "srclint" ^ ":"

type parsed =
  | Not_directive
  | Allow of Rule.t * string
  | Expect of string
  | Malformed of string

(* Names an [expect] may reference: the four core rules plus the two
   meta findings the driver synthesizes. *)
let meta_names = [ "unused-allow"; "bad-directive" ]
let expect_names = List.map Rule.name Rule.all @ meta_names
let is_expect_name s = List.mem s expect_names

let find_sub line sub =
  let n = String.length line and m = String.length sub in
  let rec at i = if i + m > n then None else if String.sub line i m = sub then Some i else at (i + 1) in
  at 0

let words s = String.split_on_char ' ' s |> List.concat_map (String.split_on_char '\t') |> List.filter (( <> ) "")

let parse_line line =
  match find_sub line marker with
  | None -> Not_directive
  | Some i -> (
      (* A string literal opening before the marker means the marker is
         (part of) data, not a directive — docs and tests may quote the
         syntax freely.  Put real directives on their own line. *)
      match String.index_opt line '"' with
      | Some q when q < i -> Not_directive
      | _ -> (
          let rest = String.sub line (i + String.length marker) (String.length line - i - String.length marker) in
          let rest = match find_sub rest "*)" with Some j -> String.sub rest 0 j | None -> rest in
          match words rest with
          | "allow" :: rule :: reason -> (
              match Rule.of_name rule with
              | None -> Malformed (Printf.sprintf "allow names unknown rule %S" rule)
              | Some r ->
                  let reason = String.concat " " reason in
                  if reason = "" then Malformed (Printf.sprintf "allow %s carries no reason" rule)
                  else Allow (r, reason))
          | [ "allow" ] -> Malformed "allow names no rule"
          | [ "expect"; rule ] ->
              if is_expect_name rule then Expect rule
              else Malformed (Printf.sprintf "expect names unknown rule %S" rule)
          | "expect" :: _ -> Malformed "expect takes exactly one rule name"
          | kw :: _ -> Malformed (Printf.sprintf "unknown directive %S" kw)
          | [] -> Malformed "empty directive"))

let allow_comment ~rule ~reason = Printf.sprintf "(* %s allow %s %s *)" marker (Rule.name rule) reason

type scan = {
  allows : (int * Rule.t * string) list;
  expects : (int * string) list;
  malformed : (int * string) list;
}

(* A directive on line L covers findings on lines L and L+1, so it can
   sit at the end of the offending line or on its own line above. *)
let covers ~directive_line ~finding_line = finding_line = directive_line || finding_line = directive_line + 1

let scan src =
  let lines = String.split_on_char '\n' src in
  let _, allows, expects, malformed =
    List.fold_left
      (fun (ln, allows, expects, malformed) line ->
        match parse_line line with
        | Not_directive -> (ln + 1, allows, expects, malformed)
        | Allow (r, reason) -> (ln + 1, (ln, r, reason) :: allows, expects, malformed)
        | Expect rule -> (ln + 1, allows, (ln, rule) :: expects, malformed)
        | Malformed msg -> (ln + 1, allows, expects, (ln, msg) :: malformed))
      (1, [], [], [])
      lines
  in
  { allows = List.rev allows; expects = List.rev expects; malformed = List.rev malformed }
