type report = {
  paths : string list;
  files : int;
  findings : Finding.t list;
  suppressed : int;
  expects : (string * int * string) list;
}

(* --- one file -------------------------------------------------------------- *)

(* Apply suppressions and synthesize the meta findings for one file. *)
let file_findings ~file src =
  match Engine.analyze_string ~file src with
  | Error _ as e -> e
  | Ok raws ->
      let scan = Suppress.scan src in
      let used = Hashtbl.create 8 in
      let surviving =
        List.filter
          (fun (r : Engine.raw) ->
            match
              List.find_opt
                (fun (aline, arule, _) ->
                  arule = r.Engine.r_rule && Suppress.covers ~directive_line:aline ~finding_line:r.Engine.r_line)
                scan.Suppress.allows
            with
            | Some (aline, _, _) ->
                Hashtbl.replace used aline ();
                false
            | None -> true)
          raws
      in
      let broke =
        List.map
          (fun (r : Engine.raw) ->
            { Finding.file; line = r.Engine.r_line; kind = Finding.Broke r.Engine.r_rule; detail = r.Engine.r_detail })
          surviving
      in
      let unused =
        List.filter_map
          (fun (aline, arule, reason) ->
            if Hashtbl.mem used aline then None
            else
              Some
                {
                  Finding.file;
                  line = aline;
                  kind = Finding.Unused_allow arule;
                  detail = Printf.sprintf "allow %s never fired (reason given: %s)" (Rule.name arule) reason;
                })
          scan.Suppress.allows
      in
      let bad =
        List.map
          (fun (mline, msg) -> { Finding.file; line = mline; kind = Finding.Bad_directive; detail = msg })
          scan.Suppress.malformed
      in
      let suppressed = List.length raws - List.length surviving in
      let expects = List.map (fun (eline, name) -> (file, eline, name)) scan.Suppress.expects in
      Ok (List.sort Finding.compare (broke @ unused @ bad), suppressed, expects)

let report_of_strings ?(paths = []) sources =
  let rec fold acc = function
    | [] -> Ok acc
    | (file, src) :: rest -> (
        match file_findings ~file src with
        | Error msg -> Error msg
        | Ok (fs, supp, exps) ->
            let findings, suppressed, expects = acc in
            fold (findings @ fs, suppressed + supp, expects @ exps) rest)
  in
  match fold ([], 0, []) sources with
  | Error _ as e -> e
  | Ok (findings, suppressed, expects) ->
      Ok { paths; files = List.length sources; findings = List.sort Finding.compare findings; suppressed; expects }

(* --- the filesystem walk ---------------------------------------------------- *)

(* Sys.readdir order is filesystem-dependent; sorting here keeps every
   report (and the golden fixtures) byte-stable. *)
let rec collect path acc =
  match Sys.is_directory path with
  | exception Sys_error msg -> Error msg
  | true ->
      let entries = Sys.readdir path |> Array.to_list |> List.sort String.compare in
      List.fold_left
        (fun acc name ->
          match acc with
          | Error _ as e -> e
          | Ok files ->
              if name = "_build" || (String.length name > 0 && name.[0] = '.') then Ok files
              else collect (Filename.concat path name) files)
        (Ok acc) entries
  | false -> if Filename.check_suffix path ".ml" then Ok (path :: acc) else Ok acc

let read_file path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> Ok (really_input_string ic (in_channel_length ic)))

let lint_paths paths =
  let rec gather acc = function
    | [] -> Ok (List.sort String.compare acc)
    | p :: rest -> ( match collect p acc with Ok files -> gather files rest | Error _ as e -> e)
  in
  match gather [] paths with
  | Error msg -> Error msg
  | Ok files -> (
      let rec load acc = function
        | [] -> Ok (List.rev acc)
        | f :: rest -> ( match read_file f with Ok src -> load ((f, src) :: acc) rest | Error _ as e -> e)
      in
      match load [] files with
      | Error msg -> Error msg
      | Ok sources -> report_of_strings ~paths sources)

(* --- verdicts ---------------------------------------------------------------- *)

let clean r = r.findings = []

(* Drift between the findings and the expect table: used by --check on
   the planted fixtures, mirroring leaklint's verdict-table check. *)
let drift r =
  let covered f =
    List.exists
      (fun (efile, eline, ename) ->
        efile = f.Finding.file
        && ename = Finding.rule_name f.Finding.kind
        && Suppress.covers ~directive_line:eline ~finding_line:f.Finding.line)
      r.expects
  in
  let matched (efile, eline, ename) =
    List.exists
      (fun f ->
        efile = f.Finding.file
        && ename = Finding.rule_name f.Finding.kind
        && Suppress.covers ~directive_line:eline ~finding_line:f.Finding.line)
      r.findings
  in
  List.filter_map
    (fun e ->
      if matched e then None
      else
        let file, line, name = e in
        Some (Printf.sprintf "missing expected finding: %s at %s:%d" name file line))
    r.expects
  @ List.filter_map
      (fun f ->
        if covered f then None
        else
          Some
            (Printf.sprintf "finding not in the expect table: %s at %s:%d" (Finding.rule_name f.Finding.kind)
               f.Finding.file f.Finding.line))
      r.findings

(* --- rendering --------------------------------------------------------------- *)

let render r =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "srclint: %d files, %d findings, %d suppressed\n" r.files (List.length r.findings) r.suppressed);
  List.iter
    (fun f ->
      Buffer.add_string buf ("  " ^ Finding.to_string f);
      Buffer.add_char buf '\n')
    r.findings;
  let nviol = List.length (List.filter (fun f -> Finding.severity_name f.Finding.kind = "VIOLATION") r.findings) in
  let nwarn = List.length r.findings - nviol in
  Buffer.add_string buf
    (if r.findings = [] then "verdict: CLEAN\n"
     else
       Printf.sprintf "verdict: DIRTY (%d violation%s, %d warning%s)\n" nviol
         (if nviol = 1 then "" else "s")
         nwarn
         (if nwarn = 1 then "" else "s"));
  Buffer.contents buf

let to_json r ~drift ~ok =
  Obs.Json.Obj
    [
      ("paths", Obs.Json.List (List.map (fun p -> Obs.Json.String p) r.paths));
      ("files", Obs.Json.Int r.files);
      ("suppressed", Obs.Json.Int r.suppressed);
      ("findings", Obs.Json.List (List.map (fun f -> Ctcheck.Render.to_json (Finding.to_row f)) r.findings));
      ("drift", Obs.Json.List (List.map (fun d -> Obs.Json.String d) drift));
      ("ok", Obs.Json.Bool ok);
    ]
