(* Hand-rolled JSON — the repo deliberately has no JSON dependency.
   The emitter moved here verbatim from Reveal.Report (which now
   re-exports it) so the observability layer can live below the report
   layer; the parser is new, added for [obs summarize] and the codec
   round-trip tests.  Emission is compact, with the float rendering
   pinned to "%.12g" so output is stable across runs and platforms. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_float buf f =
  (* JSON has no NaN/inf literal *)
  if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then Buffer.add_string buf "null"
  else begin
    let s = Printf.sprintf "%.12g" f in
    Buffer.add_string buf s;
    (* "1" would re-read as an int; keep the float-ness explicit *)
    if String.for_all (fun c -> (c >= '0' && c <= '9') || c = '-') s then Buffer.add_string buf ".0"
  end

let rec add_json buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> add_float buf f
  | String s -> escape_string buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          add_json buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_string buf k;
          Buffer.add_char buf ':';
          add_json buf v)
        fields;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 1024 in
  add_json buf j;
  Buffer.contents buf

let print j =
  print_string (to_string j);
  print_newline ()

(* --- parsing --------------------------------------------------------------- *)

(* Recursive-descent parser over the whole input string.  Numbers with
   a '.', 'e' or 'E' become [Float], everything else [Int] (falling
   back to [Float] on 63-bit overflow); escapes cover exactly what the
   emitter produces, plus "\/", "\b", "\f" and full "\uXXXX" (encoded
   back to UTF-8) for interoperability with other producers. *)

exception Parse_error of int * string

let parse_fail pos msg = raise (Parse_error (pos, msg))

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some x when x = c -> advance ()
    | Some x -> parse_fail !pos (Printf.sprintf "expected '%c', found '%c'" c x)
    | None -> parse_fail !pos (Printf.sprintf "expected '%c', found end of input" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else parse_fail !pos (Printf.sprintf "invalid literal (expected %s)" word)
  in
  let hex4 () =
    if !pos + 4 > n then parse_fail !pos "truncated \\u escape";
    let v = ref 0 in
    for _ = 1 to 4 do
      let d =
        match s.[!pos] with
        | '0' .. '9' as c -> Char.code c - Char.code '0'
        | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
        | c -> parse_fail !pos (Printf.sprintf "invalid hex digit '%c' in \\u escape" c)
      in
      v := (!v * 16) + d;
      advance ()
    done;
    !v
  in
  let add_utf8 buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xc0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xe0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then parse_fail !pos "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (if !pos >= n then parse_fail !pos "truncated escape";
           match s.[!pos] with
           | '"' -> Buffer.add_char buf '"'; advance ()
           | '\\' -> Buffer.add_char buf '\\'; advance ()
           | '/' -> Buffer.add_char buf '/'; advance ()
           | 'n' -> Buffer.add_char buf '\n'; advance ()
           | 'r' -> Buffer.add_char buf '\r'; advance ()
           | 't' -> Buffer.add_char buf '\t'; advance ()
           | 'b' -> Buffer.add_char buf '\b'; advance ()
           | 'f' -> Buffer.add_char buf '\012'; advance ()
           | 'u' ->
               advance ();
               add_utf8 buf (hex4 ())
           | c -> parse_fail !pos (Printf.sprintf "invalid escape '\\%c'" c));
          loop ()
      | c -> Buffer.add_char buf c; advance (); loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    let continue = ref true in
    while !continue && !pos < n do
      match s.[!pos] with
      | '0' .. '9' | '-' | '+' -> advance ()
      | '.' | 'e' | 'E' ->
          is_float := true;
          advance ()
      | _ -> continue := false
    done;
    let text = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> parse_fail start (Printf.sprintf "invalid number %S" text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
          (* out of 63-bit range but still a valid JSON number *)
          match float_of_string_opt text with
          | Some f -> Float f
          | None -> parse_fail start (Printf.sprintf "invalid number %S" text))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> parse_fail !pos "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
    | Some ('0' .. '9' | '-') -> parse_number ()
    | Some c -> parse_fail !pos (Printf.sprintf "unexpected character '%c'" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then parse_fail !pos "trailing garbage after value";
    v
  with
  | v -> Ok v
  | exception Parse_error (p, msg) -> Error (Printf.sprintf "offset %d: %s" p msg)

(* --- accessors -------------------------------------------------------------- *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_int_opt = function Int i -> Some i | _ -> None
let to_string_opt = function String s -> Some s | _ -> None
