(* Aggregation of a JSON Lines trace back into a human-readable tree:
   span wall-clock totals grouped by name, event tallies by
   name+level, and the final metrics snapshot re-parsed into typed
   rows.  This is the engine behind [reveal_cli obs summarize] and the
   golden obs-summary test, so rendering is deterministic: every
   section is sorted by name. *)

type span_row = { span_name : string; span_count : int; span_total : float; span_max : float }
type event_row = { event_name : string; event_level : string; event_count : int }

type hist_row = {
  hist_name : string;
  hist_count : int;
  hist_sum : float;
  hist_min : float option;
  hist_max : float option;
  hist_buckets : (float * int) list;  (* (upper bound, count), ascending *)
  hist_overflow : int;
}

type t = {
  clock : string option;
  records : int;
  spans : span_row list;
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : hist_row list;
  events : event_row list;
}

exception Malformed of string

let fail fmt = Printf.ksprintf (fun msg -> raise (Malformed msg)) fmt

let get_string record key = Option.bind (Json.member key record) Json.to_string_opt
let get_float record key = Option.bind (Json.member key record) Json.to_float_opt
let get_int record key = Option.bind (Json.member key record) Json.to_int_opt

let hist_of_json name j =
  let req_int key =
    match get_int j key with
    | Some v -> v
    | None -> fail "histogram %s: missing %S" name key
  in
  let req_float key =
    match get_float j key with
    | Some v -> v
    | None -> fail "histogram %s: missing %S" name key
  in
  let opt_float key = get_float j key in
  let buckets =
    match Json.member "buckets" j with
    | Some (Json.List items) ->
        List.map
          (fun item ->
            match (get_float item "le", get_int item "count") with
            | Some le, Some c -> (le, c)
            | _ -> fail "histogram %s: malformed bucket" name)
          items
    | _ -> fail "histogram %s: missing buckets" name
  in
  {
    hist_name = name;
    hist_count = req_int "count";
    hist_sum = req_float "sum";
    hist_min = opt_float "min";
    hist_max = opt_float "max";
    hist_buckets = buckets;
    hist_overflow = req_int "overflow";
  }

(* Incremental aggregation state: one record is folded in at a time,
   so paper-scale traces stream through {!load} in bounded memory
   instead of accumulating a parsed record list. *)
type state = {
  st_spans : (string, int ref * float ref * float ref) Hashtbl.t;
  st_events : (string * string, int ref) Hashtbl.t;
  mutable st_clock : string option;
  mutable st_metrics : Json.t option;
  mutable st_records : int;
}

let state_create () =
  { st_spans = Hashtbl.create 16; st_events = Hashtbl.create 16; st_clock = None; st_metrics = None; st_records = 0 }

(* Count a record that was deliberately not parsed (event sampling). *)
let state_skip st = st.st_records <- st.st_records + 1

let state_add ?(weight = 1) st record =
  st.st_records <- st.st_records + 1;
  let idx = st.st_records in
  match Json.member "ev" record with
  | None -> fail "record %d: missing \"ev\" field" idx
  | Some (Json.String "start") -> st.st_clock <- get_string record "clock"
  | Some (Json.String "span_begin") -> ()
  | Some (Json.String "span_end") -> (
      match (get_string record "name", get_float record "dur") with
      | Some name, Some dur ->
          let count, total, mx =
            match Hashtbl.find_opt st.st_spans name with
            | Some cell -> cell
            | None ->
                let cell = (ref 0, ref 0.0, ref neg_infinity) in
                Hashtbl.add st.st_spans name cell;
                cell
          in
          incr count;
          total := !total +. dur;
          if dur > !mx then mx := dur
      | _ -> fail "record %d: span_end needs \"name\" and \"dur\"" idx)
  | Some (Json.String "event") -> (
      match get_string record "name" with
      | Some name ->
          let level = Option.value ~default:"info" (get_string record "level") in
          let cell =
            match Hashtbl.find_opt st.st_events (name, level) with
            | Some c -> c
            | None ->
                let c = ref 0 in
                Hashtbl.add st.st_events (name, level) c;
                c
          in
          cell := !cell + weight
      | None -> fail "record %d: event needs \"name\"" idx)
  | Some (Json.String "metrics") -> st.st_metrics <- Some record
  | Some (Json.String other) -> fail "record %d: unknown event type %S" idx other
  | Some _ -> fail "record %d: \"ev\" is not a string" idx

let state_finish st =
  let span_rows =
    Hashtbl.fold
      (fun name (count, total, mx) acc ->
        { span_name = name; span_count = !count; span_total = !total; span_max = !mx } :: acc)
      st.st_spans []
    |> List.sort (fun a b -> compare a.span_name b.span_name)
  in
  let event_rows =
    Hashtbl.fold
      (fun (name, level) count acc -> { event_name = name; event_level = level; event_count = !count } :: acc)
      st.st_events []
    |> List.sort (fun a b -> compare (a.event_name, a.event_level) (b.event_name, b.event_level))
  in
  let assoc_of key conv =
    match st.st_metrics with
    | None -> []
    | Some m -> (
        match Json.member key m with
        | Some (Json.Obj fields) -> List.filter_map conv fields
        | _ -> [])
  in
  let counters =
    assoc_of "counters" (fun (k, v) -> Option.map (fun i -> (k, i)) (Json.to_int_opt v)) |> List.sort compare
  in
  let gauges =
    assoc_of "gauges" (fun (k, v) -> Option.map (fun f -> (k, f)) (Json.to_float_opt v)) |> List.sort compare
  in
  let histograms =
    assoc_of "histograms" (fun (k, v) -> Some (hist_of_json k v))
    |> List.sort (fun a b -> compare a.hist_name b.hist_name)
  in
  {
    clock = st.st_clock;
    records = st.st_records;
    spans = span_rows;
    counters;
    gauges;
    histograms;
    events = event_rows;
  }

let of_records records =
  let st = state_create () in
  match
    List.iter (state_add st) records;
    state_finish st
  with
  | t -> Ok t
  | exception Malformed msg -> Error msg

(* Cheap pre-parse test for point-event lines: the writer emits
   compact JSON, so an event record always contains this literal
   (string values would carry escaped quotes instead). *)
let event_marker = "\"ev\":\"event\""

let is_event_line line =
  let n = String.length line and m = String.length event_marker in
  let rec at i = i + m <= n && (String.sub line i m = event_marker || at (i + 1)) in
  at 0

let load ?(sample_events = 1) path =
  if sample_events < 1 then invalid_arg "Obs.Summary.load: sample_events must be >= 1";
  match open_in path with
  | exception Sys_error msg -> Error (Printf.sprintf "Obs.Summary.load: cannot read %s: %s" path msg)
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let st = state_create () in
          let lineno = ref 0 in
          let seen_events = ref 0 in
          let rec read_all () =
            match input_line ic with
            | exception End_of_file -> Ok ()
            | line ->
                incr lineno;
                if String.trim line = "" then read_all ()
                else if
                  sample_events > 1 && is_event_line line
                  && begin
                       incr seen_events;
                       (!seen_events - 1) mod sample_events <> 0
                     end
                then begin
                  (* sampled out: counted, not parsed; the kept events
                     carry weight [sample_events] to compensate *)
                  state_skip st;
                  read_all ()
                end
                else (
                  match Json.parse line with
                  | Ok j -> (
                      let weight = if sample_events > 1 && is_event_line line then sample_events else 1 in
                      match state_add ~weight st j with
                      | () -> read_all ()
                      | exception Malformed msg -> Error (Printf.sprintf "%s: %s" path msg))
                  | Error msg -> Error (Printf.sprintf "%s:%d: %s" path !lineno msg))
          in
          match read_all () with
          | Error _ as e -> e
          | Ok () -> (
              match state_finish st with
              | t -> Ok t
              | exception Malformed msg -> Error (Printf.sprintf "%s: %s" path msg)))

(* --- merging --------------------------------------------------------------- *)

(* Union of two lists sorted by a key, combining equal-key entries —
   all section lists are already sorted, so merged summaries stay
   deterministic without re-sorting. *)
let rec merge_sorted cmp combine l1 l2 =
  match (l1, l2) with
  | [], l | l, [] -> l
  | x :: xs, y :: ys ->
      let c = cmp x y in
      if c < 0 then x :: merge_sorted cmp combine xs l2
      else if c > 0 then y :: merge_sorted cmp combine l1 ys
      else combine x y :: merge_sorted cmp combine xs ys

let opt2 f a b = match (a, b) with None, x | x, None -> x | Some a, Some b -> Some (f a b)

let merge_hist a b =
  {
    hist_name = a.hist_name;
    hist_count = a.hist_count + b.hist_count;
    hist_sum = a.hist_sum +. b.hist_sum;
    hist_min = opt2 min a.hist_min b.hist_min;
    hist_max = opt2 max a.hist_max b.hist_max;
    hist_buckets =
      merge_sorted
        (fun (le1, _) (le2, _) -> compare le1 le2)
        (fun (le, c1) (_, c2) -> (le, c1 + c2))
        a.hist_buckets b.hist_buckets;
    hist_overflow = a.hist_overflow + b.hist_overflow;
  }

let merge a b =
  {
    clock =
      (match (a.clock, b.clock) with
      | None, c | c, None -> c
      | Some x, Some y -> if x = y then Some x else Some "mixed");
    records = a.records + b.records;
    spans =
      merge_sorted
        (fun s1 s2 -> compare s1.span_name s2.span_name)
        (fun s1 s2 ->
          {
            span_name = s1.span_name;
            span_count = s1.span_count + s2.span_count;
            span_total = s1.span_total +. s2.span_total;
            span_max = max s1.span_max s2.span_max;
          })
        a.spans b.spans;
    counters =
      merge_sorted (fun (k1, _) (k2, _) -> compare k1 k2) (fun (k, v1) (_, v2) -> (k, v1 + v2)) a.counters b.counters;
    gauges =
      merge_sorted
        (fun (k1, _) (k2, _) -> compare k1 k2)
        (fun (k, v1) (_, v2) -> (k, v1 +. v2))
        a.gauges b.gauges;
    histograms = merge_sorted (fun h1 h2 -> compare h1.hist_name h2.hist_name) merge_hist a.histograms b.histograms;
    events =
      merge_sorted
        (fun e1 e2 -> compare (e1.event_name, e1.event_level) (e2.event_name, e2.event_level))
        (fun e1 e2 -> { e1 with event_count = e1.event_count + e2.event_count })
        a.events b.events;
  }

let merge_files ?sample_events paths =
  let rec fold acc = function
    | [] -> Ok acc
    | path :: rest -> (
        match load ?sample_events path with
        | Ok t -> fold (merge acc t) rest
        | Error _ as e -> e)
  in
  match paths with
  | [] -> Error "Obs.Summary.merge_files: no traces given"
  | first :: rest -> ( match load ?sample_events first with Ok t -> fold t rest | Error _ as e -> e)

(* --- rendering -------------------------------------------------------------- *)

let name_width floor names =
  List.fold_left (fun acc n -> max acc (String.length n)) floor names

let fopt = function Some v -> Printf.sprintf "%.6g" v | None -> "-"

let hist_quantile h q =
  Metrics.estimate_quantile ~count:h.hist_count ~min:h.hist_min ~max:h.hist_max
    ~buckets:h.hist_buckets ~overflow:h.hist_overflow q

let render t =
  let buf = Buffer.create 2048 in
  Printf.bprintf buf "obs summary: %d records, %s clock\n" t.records
    (Option.value ~default:"unknown" t.clock);
  if t.spans <> [] then begin
    let w = name_width 4 (List.map (fun s -> s.span_name) t.spans) in
    Printf.bprintf buf "spans\n  %-*s  %6s  %12s  %12s  %12s\n" w "name" "count" "total" "mean" "max";
    List.iter
      (fun s ->
        Printf.bprintf buf "  %-*s  %6d  %12.6f  %12.6f  %12.6f\n" w s.span_name s.span_count
          s.span_total
          (s.span_total /. float_of_int s.span_count)
          s.span_max)
      t.spans
  end;
  if t.counters <> [] then begin
    let w = name_width 4 (List.map fst t.counters) in
    Buffer.add_string buf "counters\n";
    List.iter (fun (k, v) -> Printf.bprintf buf "  %-*s  %10d\n" w k v) t.counters
  end;
  if t.gauges <> [] then begin
    let w = name_width 4 (List.map fst t.gauges) in
    Buffer.add_string buf "gauges\n";
    List.iter (fun (k, v) -> Printf.bprintf buf "  %-*s  %10.6g\n" w k v) t.gauges
  end;
  if t.histograms <> [] then begin
    Buffer.add_string buf "histograms\n";
    List.iter
      (fun h ->
        Printf.bprintf buf "  %s: count %d  sum %.6g  min %s  max %s  p50 %s  p95 %s  p99 %s\n"
          h.hist_name h.hist_count h.hist_sum (fopt h.hist_min) (fopt h.hist_max)
          (fopt (hist_quantile h 0.50))
          (fopt (hist_quantile h 0.95))
          (fopt (hist_quantile h 0.99));
        List.iter (fun (le, c) -> Printf.bprintf buf "    <= %-10.6g  %6d\n" le c) h.hist_buckets;
        Printf.bprintf buf "    overflow       %6d\n" h.hist_overflow)
      t.histograms
  end;
  if t.events <> [] then begin
    Buffer.add_string buf "events\n";
    List.iter
      (fun e -> Printf.bprintf buf "  [%s] %s x%d\n" e.event_level e.event_name e.event_count)
      t.events
  end;
  Buffer.contents buf

let to_json t =
  let fopt_json = function Some v -> Json.Float v | None -> Json.Null in
  Json.Obj
    [
      ("records", Json.Int t.records);
      ("clock", (match t.clock with Some c -> Json.String c | None -> Json.Null));
      ( "spans",
        Json.List
          (List.map
             (fun s ->
               Json.Obj
                 [
                   ("name", Json.String s.span_name);
                   ("count", Json.Int s.span_count);
                   ("total", Json.Float s.span_total);
                   ("mean", Json.Float (s.span_total /. float_of_int s.span_count));
                   ("max", Json.Float s.span_max);
                 ])
             t.spans) );
      ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) t.counters));
      ("gauges", Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) t.gauges));
      ( "histograms",
        Json.Obj
          (List.map
             (fun h ->
               ( h.hist_name,
                 Json.Obj
                   [
                     ("count", Json.Int h.hist_count);
                     ("sum", Json.Float h.hist_sum);
                     ("min", fopt_json h.hist_min);
                     ("max", fopt_json h.hist_max);
                     ("p50", fopt_json (hist_quantile h 0.50));
                     ("p95", fopt_json (hist_quantile h 0.95));
                     ("p99", fopt_json (hist_quantile h 0.99));
                     ( "buckets",
                       Json.List
                         (List.map
                            (fun (le, c) ->
                              Json.Obj [ ("le", Json.Float le); ("count", Json.Int c) ])
                            h.hist_buckets) );
                     ("overflow", Json.Int h.hist_overflow);
                   ] ))
             t.histograms) );
      ( "events",
        Json.List
          (List.map
             (fun e ->
               Json.Obj
                 [
                   ("name", Json.String e.event_name);
                   ("level", Json.String e.event_level);
                   ("count", Json.Int e.event_count);
                 ])
             t.events) );
    ]

(* --- prometheus export ------------------------------------------------------ *)

(* Prometheus text exposition of a summary.  Every section list is
   already sorted by name, so the rendering is deterministic; bucket
   counts are re-emitted cumulatively with the conventional "+Inf"
   terminal bucket.  Label values are escaped per the exposition
   format (backslash, quote, newline). *)
let prom_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let prom_float v = Printf.sprintf "%.12g" v

let to_prometheus t =
  let buf = Buffer.create 2048 in
  let line fmt = Printf.bprintf buf fmt in
  line "# reveal obs summary, prometheus text exposition\n";
  line "# TYPE reveal_obs_records gauge\n";
  line "reveal_obs_records %d\n" t.records;
  if t.spans <> [] then begin
    line "# TYPE reveal_span_count counter\n";
    line "# TYPE reveal_span_seconds_total counter\n";
    line "# TYPE reveal_span_seconds_max gauge\n";
    List.iter
      (fun s ->
        let l = prom_escape s.span_name in
        line "reveal_span_count{name=\"%s\"} %d\n" l s.span_count;
        line "reveal_span_seconds_total{name=\"%s\"} %s\n" l (prom_float s.span_total);
        line "reveal_span_seconds_max{name=\"%s\"} %s\n" l (prom_float s.span_max))
      t.spans
  end;
  if t.counters <> [] then begin
    line "# TYPE reveal_counter_total counter\n";
    List.iter
      (fun (k, v) -> line "reveal_counter_total{name=\"%s\"} %d\n" (prom_escape k) v)
      t.counters
  end;
  if t.gauges <> [] then begin
    line "# TYPE reveal_gauge gauge\n";
    List.iter
      (fun (k, v) -> line "reveal_gauge{name=\"%s\"} %s\n" (prom_escape k) (prom_float v))
      t.gauges
  end;
  if t.histograms <> [] then begin
    line "# TYPE reveal_histogram histogram\n";
    List.iter
      (fun h ->
        let l = prom_escape h.hist_name in
        let cum = ref 0 in
        List.iter
          (fun (le, c) ->
            cum := !cum + c;
            line "reveal_histogram_bucket{name=\"%s\",le=\"%s\"} %d\n" l (prom_float le) !cum)
          h.hist_buckets;
        line "reveal_histogram_bucket{name=\"%s\",le=\"+Inf\"} %d\n" l h.hist_count;
        line "reveal_histogram_sum{name=\"%s\"} %s\n" l (prom_float h.hist_sum);
        line "reveal_histogram_count{name=\"%s\"} %d\n" l h.hist_count)
      t.histograms
  end;
  if t.events <> [] then begin
    line "# TYPE reveal_event_total counter\n";
    List.iter
      (fun e ->
        line "reveal_event_total{name=\"%s\",level=\"%s\"} %d\n" (prom_escape e.event_name)
          (prom_escape e.event_level) e.event_count)
      t.events
  end;
  Buffer.contents buf
