(** Typed metrics registry: counters, gauges and fixed-bucket
    histograms, keyed by name.

    Stages get-or-create instruments once per run (registry access
    takes a lock) and then update them on the hot path lock-free
    (counters/gauges are atomics) or under a per-instrument mutex
    (histograms).  {!snapshot} renders the whole registry as one JSON
    object with names sorted, so the final "metrics" line of a trace
    is deterministic. *)

type t

type counter
type gauge
type histogram

val create : unit -> t

(** {1 Counters} — monotonically increasing integers. *)

val counter : t -> string -> counter
(** Get or create by name.  The first creation wins; later calls with
    the same name return the same instrument. *)

val incr : ?by:int -> counter -> unit
val counter_value : counter -> int
val counter_name : counter -> string

(** {1 Gauges} — last-write-wins floats. *)

val gauge : t -> string -> gauge
val set : gauge -> float -> unit
val gauge_value : gauge -> float
val gauge_name : gauge -> string

(** {1 Histograms} — fixed buckets, cumulative-free representation. *)

val default_buckets : float array
(** Decades from 10µs to 100s — sized for span durations in seconds. *)

val histogram : ?buckets:float array -> t -> string -> histogram
(** [buckets] are the ascending upper bounds (one bucket per bound
    plus an implicit overflow slot); must be strictly increasing or
    [Invalid_argument] is raised.  As with {!counter}, first creation
    wins — the bucket layout of later calls is ignored. *)

val observe : histogram -> float -> unit
(** A value equal to a bound counts in that bound's bucket; values
    above the last bound count as overflow. *)

type histogram_snapshot = {
  name : string;
  count : int;
  sum : float;
  min : float option;  (** [None] when no observations *)
  max : float option;
  bounds : float array;
  counts : int array;
  overflow : int;
}

val histogram_snapshot : histogram -> histogram_snapshot
val histogram_name : histogram -> string

val estimate_quantile :
  count:int ->
  min:float option ->
  max:float option ->
  buckets:(float * int) list ->
  overflow:int ->
  float ->
  float option
(** [estimate_quantile ~count ~min ~max ~buckets ~overflow q] estimates
    the [q]-quantile (0 ≤ q ≤ 1, clamped) of a bucketed distribution by
    linear interpolation inside the bucket containing the rank.
    [buckets] pairs each ascending upper bound with its (non-cumulative)
    count; [overflow] counts observations above the last bound.  The
    observed [min]/[max] bound the open outer bucket edges and clamp the
    result, so estimates never leave the observed range.  [None] when
    [count <= 0].  Pure and deterministic — merged summaries report the
    same estimate regardless of which process computes it. *)

val quantile : histogram_snapshot -> float -> float option
(** {!estimate_quantile} applied to a snapshot's buckets. *)

val snapshot : t -> Json.t
(** [{"counters":{...},"gauges":{...},"histograms":{...}}], each
    sub-object sorted by instrument name. *)
