(** Hand-rolled JSON codec — the single JSON implementation in the
    tree (the repo has no JSON dependency, deliberately).

    The emitter moved here from [Reveal.Report], which re-exports the
    type so existing [Reveal.Report.Obj]-style constructors keep
    compiling; emission is compact, floats pinned to ["%.12g"],
    NaN/infinity rendered as [null], and integral floats keep an
    explicit [".0"].  The parser is what [obs summarize] and the codec
    round-trip tests consume: it accepts everything the emitter
    produces (and standard JSON beyond it — ["\u"] escapes, ["\/"],
    ["\b"], ["\f"]). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering with full string escaping. *)

val print : t -> unit
(** [to_string] to stdout plus a newline — the [--json] output path. *)

val parse : string -> (t, string) result
(** Parse one complete JSON value; trailing garbage is an error.
    Errors carry the byte offset ([Error "offset 12: ..."]).  Numbers
    containing '.', 'e' or 'E' parse as [Float], the rest as [Int]
    (falling back to [Float] past 63-bit range). *)

(** {1 Accessors} — for walking parsed event records. *)

val member : string -> t -> t option
(** [member key (Obj fields)] — [None] for missing keys and non-objects. *)

val to_float_opt : t -> float option
(** [Float f] or [Int i] (widened); [None] otherwise. *)

val to_int_opt : t -> int option
val to_string_opt : t -> string option
