(* Two time sources behind one face: wall time for real runs,
   a logical tick counter for byte-reproducible golden output.
   Wall readings are monotonized (gettimeofday can step backwards
   under NTP) and rebased to the clock's creation so traces start
   near zero and never leak absolute timestamps. *)

type kind = Wall | Logical

type t = {
  kind : kind;
  origin : float;
  mutable last : float;  (* wall: highest reading handed out *)
  mutable ticks : int;  (* logical: next tick - 1 *)
  lock : Mutex.t;
}

(* srclint: allow nondet-source the Wall clock is the sanctioned wall-time source *)
let wall () = { kind = Wall; origin = Unix.gettimeofday (); last = 0.0; ticks = 0; lock = Mutex.create () }
let logical () = { kind = Logical; origin = 0.0; last = 0.0; ticks = 0; lock = Mutex.create () }

let kind c = c.kind
let kind_name c = match c.kind with Wall -> "wall" | Logical -> "logical"

let now c =
  Mutex.lock c.lock;
  let v =
    match c.kind with
    | Wall ->
        (* srclint: allow nondet-source the Wall clock is the sanctioned wall-time source *)
        let v = Unix.gettimeofday () -. c.origin in
        let v = if v > c.last then v else c.last in
        c.last <- v;
        v
    | Logical ->
        c.ticks <- c.ticks + 1;
        float_of_int c.ticks
  in
  Mutex.unlock c.lock;
  v
