(** Pluggable time source for observability timestamps.

    [wall] reads [Unix.gettimeofday], rebased to the clock's creation
    and monotonized (a reading never goes backwards, even if the
    system clock steps).  [logical] ignores real time entirely: every
    [now] returns the next integer tick, which makes span timings —
    and therefore whole obs traces — byte-reproducible under fixed
    seeds, the property the golden obs-summary test pins. *)

type kind = Wall | Logical

type t

val wall : unit -> t
(** Monotonized wall clock; origin = creation time, so traces start near 0. *)

val logical : unit -> t
(** Deterministic tick counter: [now] returns 1.0, 2.0, 3.0, ... *)

val now : t -> float
(** Current reading in seconds (wall) or ticks (logical).  Thread-safe;
    successive readings never decrease. *)

val kind : t -> kind

val kind_name : t -> string
(** ["wall"] or ["logical"] — recorded in the trace's start event. *)
