(** Observability context — the handle instrumented stages receive.

    Every pipeline entry point takes [?obs] defaulting to {!disabled},
    where {!span} reduces to calling its thunk and {!event} to a
    single branch: no clock read, no allocation.  An enabled context
    (from {!create}) emits a self-describing JSON Lines trace —
    a ["start"] record, paired ["span_begin"]/["span_end"] records
    with durations from its clock, severity-tagged ["event"] records —
    and owns a {!Metrics} registry whose snapshot is appended as the
    final ["metrics"] record by {!close}.

    Instrumentation discipline: resolve counters/histograms by name
    once per run (they hit a registry lock), update them per item;
    guard any attr-list construction with {!enabled} so disabled runs
    stay allocation-free. *)

type level = Debug | Info | Warn | Error

val level_name : level -> string

type t

val disabled : t
(** The shared no-op context: [enabled] is [false], spans and events
    cost nothing, the metrics registry is live but never exported. *)

val create : ?clock:Clock.t -> ?source:string -> sink:Sink.t -> unit -> t
(** Fresh enabled context; emits the ["start"] record immediately.
    [clock] defaults to {!Clock.wall}; pass {!Clock.logical} for
    byte-reproducible traces.  [source], when given, is stamped into
    the ["start"] record so a fleet aggregator can tell the workers'
    streams apart (e.g. ["shard-0"]). *)

val enabled : t -> bool
val metrics : t -> Metrics.t
val clock : t -> Clock.t

val counter : t -> string -> Metrics.counter
(** [Metrics.counter (metrics t)] — get-or-create by name. *)

val gauge : t -> string -> Metrics.gauge
val histogram : ?buckets:float array -> t -> string -> Metrics.histogram

val span : ?attrs:(string * Json.t) list -> t -> string -> (unit -> 'a) -> 'a
(** [span t name f] runs [f] inside a timed span.  Disabled: exactly
    [f ()].  Enabled: emits ["span_begin"], runs [f], emits
    ["span_end"] with the duration — also on exception, with
    ["error":true], before re-raising. *)

val event : ?level:level -> ?attrs:(string * Json.t) list -> t -> string -> unit
(** Point event; no-op when disabled.  Build [attrs] under an
    [enabled] guard to keep the disabled path allocation-free. *)

val close : t -> unit
(** Emit the final ["metrics"] snapshot record and close the sink.
    Idempotent; no-op on {!disabled}. *)
