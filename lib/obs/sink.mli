(** Pluggable destinations for observability events.

    {!null} is the default sink: a shared immutable value, so the
    disabled path costs one pattern match and never allocates.  The
    writing sinks serialize each event as one compact JSON line; they
    lock internally, so one sink may receive events from several
    domains. *)

type t

val null : t
(** Drops everything; allocation-free. *)

val is_null : t -> bool

val jsonl : out_channel -> t
(** One JSON line per event to an existing channel.  {!close} flushes
    but does not close the channel — the caller owns it (e.g. stderr). *)

val file : string -> t
(** Opens [path] for writing; {!close} closes it.  Raises [Failure
    "Obs.Sink.file: cannot write <path>: ..."] when the path cannot be
    opened — errors name the path, never a bare [Sys_error]. *)

val memory : unit -> t * (unit -> Json.t list)
(** In-memory sink for tests: returns the sink and a function reading
    the events emitted so far, in order. *)

val emit : t -> Json.t -> unit
val close : t -> unit
