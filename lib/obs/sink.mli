(** Pluggable destinations for observability events.

    {!null} is the default sink: a shared immutable value, so the
    disabled path costs one pattern match and never allocates.  The
    writing sinks serialize each event as one compact JSON line; they
    lock internally, so one sink may receive events from several
    domains. *)

type t

val null : t
(** Drops everything; allocation-free. *)

val is_null : t -> bool

val jsonl : out_channel -> t
(** One JSON line per event to an existing channel.  {!close} flushes
    but does not close the channel — the caller owns it (e.g. stderr). *)

val file : string -> t
(** Opens [path] for writing; {!close} closes it.  Raises [Failure
    "Obs.Sink.file: cannot write <path>: ..."] when the path cannot be
    opened — errors name the path, never a bare [Sys_error]. *)

val memory : unit -> t * (unit -> Json.t list)
(** In-memory sink for tests: returns the sink and a function reading
    the events emitted so far, in order. *)

val tee : t -> t -> t
(** Fan each event out to both sinks, in argument order, under one
    lock — both destinations observe the identical event sequence, so
    a live stream carries exactly the lines of the tee'd file.
    {!close} closes both (the second even if the first raises).
    Teeing with {!null} returns the other sink unchanged. *)

val stream : ?capacity:int -> send:(string -> unit) -> close:(unit -> unit) -> unit -> t * (unit -> int)
(** Bounded, non-blocking streaming sink: events are serialized to
    single JSON lines and queued (up to [capacity], default 1024) for a
    background domain that hands each line to [send] in emission order.
    The emitter never blocks and never raises: a full queue, or any
    exception from [send] (the receiver went away), drops the line and
    counts it.  Closing the sink drains the queue, joins the sender
    domain, then calls [close] — the place to write an end-of-stream
    frame and tear the connection down.  Returns the sink and a
    function reading the drop count.  Raises [Invalid_argument] when
    [capacity <= 0]. *)

(** {1 Flight recorder} — fixed-size ring of the most recent events. *)

type ring

val ring : ?capacity:int -> unit -> t * ring
(** Ring-buffer sink retaining the last [capacity] (default 256)
    events.  Recording stores the already-built event under a lock —
    no serialization, no I/O — so the recorder stays armed for a whole
    run at negligible cost.  {!close} on the sink is a no-op: the ring
    outlives it for the crash dump.  Raises [Invalid_argument] when
    [capacity <= 0]. *)

val ring_total : ring -> int
(** Events ever recorded (not just retained). *)

val ring_contents : ring -> Json.t list
(** The retained events, oldest first. *)

val ring_dump : ring -> string -> unit
(** Write the retained events to [path] as JSON Lines, preceded by a
    header record [{"v":1,"ev":"flight","capacity":N,"total":M}] so a
    reader can tell how much history wraparound discarded.  Raises
    [Failure "Obs.Sink.ring_dump: cannot write <path>: ..."] when the
    path cannot be opened. *)

val emit : t -> Json.t -> unit
val close : t -> unit
