(** Aggregation of a JSON Lines obs trace into a metrics tree.

    Backs [reveal_cli obs summarize]: span durations are grouped by
    name (count / total / mean / max), point events tallied by
    name+level, and the trace's final ["metrics"] record re-parsed
    into typed counter/gauge/histogram rows.  Every section is sorted
    by name, so {!render} output is deterministic — under the logical
    clock, byte-reproducible (the golden obs-summary test pins this). *)

type span_row = { span_name : string; span_count : int; span_total : float; span_max : float }
type event_row = { event_name : string; event_level : string; event_count : int }

type hist_row = {
  hist_name : string;
  hist_count : int;
  hist_sum : float;
  hist_min : float option;
  hist_max : float option;
  hist_buckets : (float * int) list;  (** (upper bound, count), ascending *)
  hist_overflow : int;
}

type t = {
  clock : string option;  (** from the ["start"] record, when present *)
  records : int;
  spans : span_row list;
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : hist_row list;
  events : event_row list;
}

val of_records : Json.t list -> (t, string) result
(** Aggregate parsed trace records.  Unknown ["ev"] values and
    structurally broken records are errors naming the record index. *)

val load : ?sample_events:int -> string -> (t, string) result
(** Stream a JSONL file through the aggregation (blank lines skipped,
    one record resident at a time — paper-scale traces stay bounded).
    Errors name the path and, for parse failures, the 1-based line
    number.

    [sample_events] (default 1 = exact) keeps only every k-th point
    event and weights it by k: skipped event lines are counted in
    [records] but never JSON-parsed, so a trace dominated by per-trace
    warn events summarizes in ~1/k the time.  Event counts become
    estimates (count x k of the sampled stream); spans, counters,
    gauges and histograms are unaffected.
    @raise Invalid_argument when [sample_events < 1]. *)

val merge : t -> t -> t
(** Fold two summaries into one — the orchestrator's view of a
    sharded campaign from its workers' traces.  Span counts/totals
    add and maxima take the max; counters, event tallies, histogram
    buckets and [records] add; gauges add (campaign aggregates like
    [result.sign_correct] sum to the whole-campaign value — read
    per-run gauges from the per-worker summaries instead).  Clocks
    that disagree merge to ["mixed"]. *)

val merge_files : ?sample_events:int -> string list -> (t, string) result
(** {!load} each path and {!merge} the results, left to right.  An
    empty list is an error. *)

val render : t -> string
(** The text tree [obs summarize] prints. *)

val to_json : t -> Json.t
(** The [--json] rendering: same data, machine shape. *)
