(** Aggregation of a JSON Lines obs trace into a metrics tree.

    Backs [reveal_cli obs summarize]: span durations are grouped by
    name (count / total / mean / max), point events tallied by
    name+level, and the trace's final ["metrics"] record re-parsed
    into typed counter/gauge/histogram rows.  Every section is sorted
    by name, so {!render} output is deterministic — under the logical
    clock, byte-reproducible (the golden obs-summary test pins this). *)

type span_row = { span_name : string; span_count : int; span_total : float; span_max : float }
type event_row = { event_name : string; event_level : string; event_count : int }

type hist_row = {
  hist_name : string;
  hist_count : int;
  hist_sum : float;
  hist_min : float option;
  hist_max : float option;
  hist_buckets : (float * int) list;  (** (upper bound, count), ascending *)
  hist_overflow : int;
}

type t = {
  clock : string option;  (** from the ["start"] record, when present *)
  records : int;
  spans : span_row list;
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : hist_row list;
  events : event_row list;
}

exception Malformed of string
(** Raised by {!state_add} on a structurally broken record. *)

(** {1 Incremental aggregation}

    The streaming core behind {!load} and the live fleet aggregator:
    records are folded in one at a time, so paper-scale traces (and
    open-ended telemetry streams) aggregate in bounded memory. *)

type state

val state_create : unit -> state

val state_add : ?weight:int -> state -> Json.t -> unit
(** Fold one parsed record in.  [weight] (default 1) multiplies point
    events — the event-sampling compensation.  @raise Malformed on a
    record with a missing/unknown ["ev"] or broken required fields,
    with a message naming the 1-based record index. *)

val state_skip : state -> unit
(** Count a record that was deliberately not parsed. *)

val state_finish : state -> t
(** Freeze the state into a summary (sections sorted by name).  The
    state may keep accumulating afterwards; finish again for an
    updated snapshot. *)

val of_records : Json.t list -> (t, string) result
(** Aggregate parsed trace records.  Unknown ["ev"] values and
    structurally broken records are errors naming the record index. *)

val load : ?sample_events:int -> string -> (t, string) result
(** Stream a JSONL file through the aggregation (blank lines skipped,
    one record resident at a time — paper-scale traces stay bounded).
    Errors name the path and, for parse failures, the 1-based line
    number.

    [sample_events] (default 1 = exact) keeps only every k-th point
    event and weights it by k: skipped event lines are counted in
    [records] but never JSON-parsed, so a trace dominated by per-trace
    warn events summarizes in ~1/k the time.  Event counts become
    estimates (count x k of the sampled stream); spans, counters,
    gauges and histograms are unaffected.
    @raise Invalid_argument when [sample_events < 1]. *)

val merge : t -> t -> t
(** Fold two summaries into one — the orchestrator's view of a
    sharded campaign from its workers' traces.  Span counts/totals
    add and maxima take the max; counters, event tallies, histogram
    buckets and [records] add; gauges add (campaign aggregates like
    [result.sign_correct] sum to the whole-campaign value — read
    per-run gauges from the per-worker summaries instead).  Clocks
    that disagree merge to ["mixed"]. *)

val merge_files : ?sample_events:int -> string list -> (t, string) result
(** {!load} each path and {!merge} the results, left to right.  An
    empty list is an error. *)

val render : t -> string
(** The text tree [obs summarize] prints.  Histogram header lines
    include p50/p95/p99 estimates ({!Metrics.estimate_quantile} over
    the merged buckets — deterministic, clamped to observed min/max). *)

val to_json : t -> Json.t
(** The [--json] rendering: same data, machine shape; histograms carry
    ["p50"]/["p95"]/["p99"] estimate fields ([null] when empty). *)

val to_prometheus : t -> string
(** Prometheus text-exposition rendering ([obs export]): spans as
    [reveal_span_count]/[reveal_span_seconds_total]/[..._max],
    counters as [reveal_counter_total], gauges as [reveal_gauge],
    histograms as cumulative [reveal_histogram_bucket] series with the
    conventional [+Inf] terminal bucket, events as
    [reveal_event_total{name,level}].  Deterministic: every section is
    pre-sorted and label values escaped. *)
