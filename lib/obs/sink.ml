(* Pluggable event sinks.  [Null] is the default everywhere: it is a
   shared immutable constructor, so "obs disabled" costs one pattern
   match and allocates nothing on the hot path.  The JSONL sinks
   serialize under a mutex — emitters may run on multiple domains. *)

type t =
  | Null
  | Emit of { emit : Json.t -> unit; close : unit -> unit }

let null = Null
let is_null = function Null -> true | Emit _ -> false

let emit t j = match t with Null -> () | Emit s -> s.emit j
let close t = match t with Null -> () | Emit s -> s.close ()

let jsonl_sink ~close_channel oc =
  let lock = Mutex.create () in
  let emit j =
    let line = Json.to_string j in
    Mutex.lock lock;
    output_string oc line;
    output_char oc '\n';
    Mutex.unlock lock
  in
  let close () =
    Mutex.lock lock;
    (if close_channel then close_out oc else flush oc);
    Mutex.unlock lock
  in
  Emit { emit; close }

let jsonl oc = jsonl_sink ~close_channel:false oc

let file path =
  match open_out path with
  | oc -> jsonl_sink ~close_channel:true oc
  | exception Sys_error msg ->
      failwith (Printf.sprintf "Obs.Sink.file: cannot write %s: %s" path msg)

let memory () =
  let lock = Mutex.create () in
  let events = ref [] in
  let emit j =
    Mutex.lock lock;
    events := j :: !events;
    Mutex.unlock lock
  in
  let contents () =
    Mutex.lock lock;
    let l = List.rev !events in
    Mutex.unlock lock;
    l
  in
  (Emit { emit; close = (fun () -> ()) }, contents)
