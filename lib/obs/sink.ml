(* Pluggable event sinks.  [Null] is the default everywhere: it is a
   shared immutable constructor, so "obs disabled" costs one pattern
   match and allocates nothing on the hot path.  The JSONL sinks
   serialize under a mutex — emitters may run on multiple domains. *)

type t =
  | Null
  | Emit of { emit : Json.t -> unit; close : unit -> unit }

let null = Null
let is_null = function Null -> true | Emit _ -> false

let emit t j = match t with Null -> () | Emit s -> s.emit j
let close t = match t with Null -> () | Emit s -> s.close ()

let jsonl_sink ~close_channel oc =
  let lock = Mutex.create () in
  let emit j =
    let line = Json.to_string j in
    Mutex.lock lock;
    output_string oc line;
    output_char oc '\n';
    Mutex.unlock lock
  in
  let close () =
    Mutex.lock lock;
    (if close_channel then close_out oc else flush oc);
    Mutex.unlock lock
  in
  Emit { emit; close }

let jsonl oc = jsonl_sink ~close_channel:false oc

let file path =
  match open_out path with
  | oc -> jsonl_sink ~close_channel:true oc
  | exception Sys_error msg ->
      failwith (Printf.sprintf "Obs.Sink.file: cannot write %s: %s" path msg)

let memory () =
  let lock = Mutex.create () in
  let events = ref [] in
  let emit j =
    Mutex.lock lock;
    events := j :: !events;
    Mutex.unlock lock
  in
  let contents () =
    Mutex.lock lock;
    let l = List.rev !events in
    Mutex.unlock lock;
    l
  in
  (Emit { emit; close = (fun () -> ()) }, contents)

(* --- tee -------------------------------------------------------------------- *)

(* Both destinations must observe events in the SAME order: the live
   monitor's fold is only bit-identical to a post-hoc merge of the
   JSONL file if the stream carries the file's exact line sequence, and
   span-duration sums are float folds in record order.  So a tee takes
   one lock around both emits instead of letting each sink serialize
   independently. *)
let tee a b =
  match (a, b) with
  | Null, t | t, Null -> t
  | _ ->
      let lock = Mutex.create () in
      let emit_both j =
        Mutex.lock lock;
        Fun.protect
          ~finally:(fun () -> Mutex.unlock lock)
          (fun () ->
            emit a j;
            emit b j)
      in
      let close_both () =
        Mutex.lock lock;
        Fun.protect
          ~finally:(fun () -> Mutex.unlock lock)
          (fun () ->
            (* close both even if the first raises *)
            match close a with
            | () -> close b
            | exception e ->
                (try close b with _ -> ());
                raise e)
      in
      Emit { emit = emit_both; close = close_both }

(* --- bounded streaming sink ------------------------------------------------- *)

(* Telemetry must never stall or reorder the attack hot path, so the
   emitter only serializes the event and pushes the line onto a bounded
   queue; one background domain drains the queue into [send] (a wire
   frame write, possibly a blocking socket).  A full queue or a failed
   sender drops the line and counts the drop — the campaign always
   wins over the monitor.  [close] drains whatever is queued, then
   calls the caller's [close] (end frame + connection teardown). *)
let stream ?(capacity = 1024) ~send ~close:close_stream () =
  if capacity <= 0 then invalid_arg "Obs.Sink.stream: capacity must be positive";
  let lock = Mutex.create () in
  let nonempty = Condition.create () in
  let queue : string Queue.t = Queue.create () in
  let closing = ref false in
  let failed = ref false in
  let dropped = ref 0 in
  let sender () =
    let rec loop () =
      Mutex.lock lock;
      while Queue.is_empty queue && not !closing do
        Condition.wait nonempty lock
      done;
      let batch = Queue.create () in
      Queue.transfer queue batch;
      let stop = !closing && Queue.is_empty batch in
      Mutex.unlock lock;
      Queue.iter
        (fun line ->
          if not !failed then
            try send line
            with _ ->
              (* the monitor went away: latch the failure and count the
                 rest as drops rather than erroring the campaign *)
              failed := true;
              Mutex.lock lock;
              dropped := !dropped + 1;
              Mutex.unlock lock
          else begin
            Mutex.lock lock;
            dropped := !dropped + 1;
            Mutex.unlock lock
          end)
        batch;
      if not stop then loop ()
    in
    loop ()
  in
  let domain = Domain.spawn sender in
  let emit j =
    let line = Json.to_string j in
    Mutex.lock lock;
    if !closing || Queue.length queue >= capacity then incr dropped
    else begin
      Queue.push line queue;
      Condition.signal nonempty
    end;
    Mutex.unlock lock
  in
  let close () =
    let already =
      Mutex.lock lock;
      let was = !closing in
      closing := true;
      Condition.signal nonempty;
      Mutex.unlock lock;
      was
    in
    if not already then begin
      Domain.join domain;
      if not !failed then try close_stream () with _ -> failed := true
    end
  in
  let dropped_count () =
    Mutex.lock lock;
    let n = !dropped in
    Mutex.unlock lock;
    n
  in
  (Emit { emit; close }, dropped_count)

(* --- flight recorder ring --------------------------------------------------- *)

(* Fixed-size ring over already-built events: recording costs one lock
   and two array writes, no serialization, no I/O — cheap enough to
   leave armed for a whole fuzz trial.  The dump renders the retained
   tail as JSONL with a header naming capacity and the true total, so
   a triage reader knows how much history was lost to wraparound. *)
type ring = {
  rg_lock : Mutex.t;
  rg_slots : Json.t option array;
  mutable rg_next : int;
  mutable rg_total : int;
}

let ring ?(capacity = 256) () =
  if capacity <= 0 then invalid_arg "Obs.Sink.ring: capacity must be positive";
  let r = { rg_lock = Mutex.create (); rg_slots = Array.make capacity None; rg_next = 0; rg_total = 0 } in
  let emit j =
    Mutex.lock r.rg_lock;
    r.rg_slots.(r.rg_next) <- Some j;
    r.rg_next <- (r.rg_next + 1) mod Array.length r.rg_slots;
    r.rg_total <- r.rg_total + 1;
    Mutex.unlock r.rg_lock
  in
  (Emit { emit; close = (fun () -> ()) }, r)

let ring_total r =
  Mutex.lock r.rg_lock;
  let n = r.rg_total in
  Mutex.unlock r.rg_lock;
  n

let ring_contents r =
  Mutex.lock r.rg_lock;
  let cap = Array.length r.rg_slots in
  let acc = ref [] in
  (* newest-to-oldest walk backwards from the write cursor, then
     reverse: yields oldest-first without tracking a separate start *)
  for i = 1 to cap do
    match r.rg_slots.((r.rg_next - i + (2 * cap)) mod cap) with
    | Some j -> acc := j :: !acc
    | None -> ()
  done;
  Mutex.unlock r.rg_lock;
  !acc

let ring_dump r path =
  let events = ring_contents r in
  let total = ring_total r in
  match open_out path with
  | exception Sys_error msg ->
      failwith (Printf.sprintf "Obs.Sink.ring_dump: cannot write %s: %s" path msg)
  | oc ->
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          output_string oc
            (Json.to_string
               (Json.Obj
                  [
                    ("v", Json.Int 1);
                    ("ev", Json.String "flight");
                    ("capacity", Json.Int (Array.length r.rg_slots));
                    ("total", Json.Int total);
                  ]));
          output_char oc '\n';
          List.iter
            (fun j ->
              output_string oc (Json.to_string j);
              output_char oc '\n')
            events)
