(* The handle every instrumented stage receives.  [disabled] is the
   default argument throughout the pipeline: [enabled] is false, so
   [span] reduces to calling the thunk and [event] to one branch —
   no allocation, no clock read.  An enabled context stamps events
   with its clock, hands spans process-unique ids, and owns a shared
   metrics registry whose snapshot becomes the trace's final line. *)

type level = Debug | Info | Warn | Error

let level_name = function Debug -> "debug" | Info -> "info" | Warn -> "warn" | Error -> "error"

type t = {
  enabled : bool;
  sink : Sink.t;
  clock : Clock.t;
  metrics : Metrics.t;
  ids : int Atomic.t;
  mutable closed : bool;
}

let disabled =
  {
    enabled = false;
    sink = Sink.null;
    clock = Clock.logical ();
    metrics = Metrics.create ();
    ids = Atomic.make 0;
    closed = true;
  }

let schema_version = 1

let create ?clock ?source ~sink () =
  let clock = match clock with Some c -> c | None -> Clock.wall () in
  let t =
    { enabled = true; sink; clock; metrics = Metrics.create (); ids = Atomic.make 0; closed = false }
  in
  Sink.emit sink
    (Json.Obj
       ([
          ("v", Json.Int schema_version);
          ("ev", Json.String "start");
          ("clock", Json.String (Clock.kind_name clock));
        ]
       @ (match source with Some s -> [ ("source", Json.String s) ] | None -> [])
       @ [ ("t", Json.Float (Clock.now clock)) ]));
  t

let enabled t = t.enabled
let metrics t = t.metrics
let clock t = t.clock

(* registry conveniences — resolve by name against the ctx registry *)
let counter t name = Metrics.counter t.metrics name
let gauge t name = Metrics.gauge t.metrics name
let histogram ?buckets t name = Metrics.histogram ?buckets t.metrics name

let event ?(level = Info) ?(attrs = []) t name =
  if t.enabled then
    Sink.emit t.sink
      (Json.Obj
         (("ev", Json.String "event")
         :: ("name", Json.String name)
         :: ("level", Json.String (level_name level))
         :: ("t", Json.Float (Clock.now t.clock))
         :: (match attrs with [] -> [] | l -> [ ("attrs", Json.Obj l) ])))

let span ?(attrs = []) t name f =
  if not t.enabled then f ()
  else begin
    let id = Atomic.fetch_and_add t.ids 1 + 1 in
    let t0 = Clock.now t.clock in
    Sink.emit t.sink
      (Json.Obj
         (("ev", Json.String "span_begin")
         :: ("name", Json.String name)
         :: ("id", Json.Int id)
         :: ("t", Json.Float t0)
         :: (match attrs with [] -> [] | l -> [ ("attrs", Json.Obj l) ])));
    let finish ~error =
      let t1 = Clock.now t.clock in
      Sink.emit t.sink
        (Json.Obj
           (("ev", Json.String "span_end")
           :: ("name", Json.String name)
           :: ("id", Json.Int id)
           :: ("t", Json.Float t1)
           :: ("dur", Json.Float (t1 -. t0))
           :: (if error then [ ("error", Json.Bool true) ] else [])))
    in
    match f () with
    | v ->
        finish ~error:false;
        v
    | exception e ->
        finish ~error:true;
        raise e
  end

let close t =
  if t.enabled && not t.closed then begin
    t.closed <- true;
    let fields =
      match Metrics.snapshot t.metrics with
      | Json.Obj fields -> fields
      | other -> [ ("snapshot", other) ]
    in
    Sink.emit t.sink
      (Json.Obj
         (("ev", Json.String "metrics") :: ("t", Json.Float (Clock.now t.clock)) :: fields));
    Sink.close t.sink
  end
