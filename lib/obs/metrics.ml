(* Typed metrics registry: counters (atomic), gauges (last write
   wins) and fixed-bucket histograms (mutex per instance).  Stages
   get-or-create instruments by name once per run — never per window —
   so the hot path touches only an [Atomic.incr] or one short
   critical section.  Snapshots sort by name so the final "metrics"
   trace line is deterministic. *)

type counter = { c_name : string; c_cell : int Atomic.t }
type gauge = { g_name : string; g_cell : float Atomic.t }

type histogram = {
  h_name : string;
  h_lock : Mutex.t;
  les : float array;  (* ascending upper bounds, one bucket each *)
  slots : int array;  (* length les + 1; last slot = overflow *)
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
}

type t = {
  lock : Mutex.t;
  counters : (string, counter) Hashtbl.t;
  gauges : (string, gauge) Hashtbl.t;
  histograms : (string, histogram) Hashtbl.t;
}

let create () =
  {
    lock = Mutex.create ();
    counters = Hashtbl.create 16;
    gauges = Hashtbl.create 16;
    histograms = Hashtbl.create 16;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* --- counters -------------------------------------------------------------- *)

let counter t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.counters name with
      | Some c -> c
      | None ->
          let c = { c_name = name; c_cell = Atomic.make 0 } in
          Hashtbl.add t.counters name c;
          c)

let incr ?(by = 1) c = ignore (Atomic.fetch_and_add c.c_cell by)
let counter_value c = Atomic.get c.c_cell
let counter_name c = c.c_name

(* --- gauges ---------------------------------------------------------------- *)

let gauge t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.gauges name with
      | Some g -> g
      | None ->
          let g = { g_name = name; g_cell = Atomic.make 0.0 } in
          Hashtbl.add t.gauges name g;
          g)

let set g v = Atomic.set g.g_cell v
let gauge_value g = Atomic.get g.g_cell
let gauge_name g = g.g_name

(* --- histograms ------------------------------------------------------------ *)

let default_buckets = [| 1e-5; 1e-4; 1e-3; 0.01; 0.1; 1.0; 10.0; 100.0 |]

let validate_buckets name les =
  if Array.length les = 0 then
    invalid_arg (Printf.sprintf "Obs.Metrics.histogram %s: empty bucket list" name);
  for i = 1 to Array.length les - 1 do
    if not (les.(i) > les.(i - 1)) then
      invalid_arg
        (Printf.sprintf "Obs.Metrics.histogram %s: buckets must be strictly increasing" name)
  done

let histogram ?(buckets = default_buckets) t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.histograms name with
      | Some h -> h
      | None ->
          validate_buckets name buckets;
          let les = Array.copy buckets in
          let h =
            {
              h_name = name;
              h_lock = Mutex.create ();
              les;
              slots = Array.make (Array.length les + 1) 0;
              h_count = 0;
              h_sum = 0.0;
              h_min = Float.infinity;
              h_max = Float.neg_infinity;
            }
          in
          Hashtbl.add t.histograms name h;
          h)

let observe h v =
  Mutex.lock h.h_lock;
  (* first bucket whose upper bound admits v (boundary values count in
     the bucket they bound); values above every bound land in the
     trailing overflow slot *)
  let n = Array.length h.les in
  let i = ref 0 in
  while !i < n && not (v <= h.les.(!i)) do
    Stdlib.incr i
  done;
  h.slots.(!i) <- h.slots.(!i) + 1;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. v;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v;
  Mutex.unlock h.h_lock

type histogram_snapshot = {
  name : string;
  count : int;
  sum : float;
  min : float option;  (* None when empty *)
  max : float option;
  bounds : float array;
  counts : int array;  (* per bound, same order *)
  overflow : int;
}

let histogram_snapshot h =
  Mutex.lock h.h_lock;
  let s =
    {
      name = h.h_name;
      count = h.h_count;
      sum = h.h_sum;
      min = (if h.h_count = 0 then None else Some h.h_min);
      max = (if h.h_count = 0 then None else Some h.h_max);
      bounds = Array.copy h.les;
      counts = Array.sub h.slots 0 (Array.length h.les);
      overflow = h.slots.(Array.length h.les);
    }
  in
  Mutex.unlock h.h_lock;
  s

let histogram_name h = h.h_name

(* --- quantile estimation ---------------------------------------------------- *)

(* A fixed-bucket histogram only bounds each observation, so quantiles
   are estimates: walk the buckets to the one containing the rank and
   interpolate linearly inside it.  The observed min and max stand in
   for the open outer edges (the first bucket's lower edge, the
   overflow bucket's upper edge), and the result is clamped to
   [min, max] so an estimate can never leave the observed range.
   Pure arithmetic over the snapshot — deterministic for a fixed
   bucket layout, which is what lets merged summaries report the same
   p50/p95/p99 whatever process computed them. *)
let estimate_quantile ~count ~min:mn ~max:mx ~buckets ~overflow q =
  if count <= 0 then None
  else begin
    let q = if q < 0.0 then 0.0 else if q > 1.0 then 1.0 else q in
    let rank = q *. float_of_int count in
    let clamp v =
      let v = match mx with Some m when v > m -> m | _ -> v in
      match mn with Some m when v < m -> m | _ -> v
    in
    let interp lo hi frac =
      let frac = if frac < 0.0 then 0.0 else if frac > 1.0 then 1.0 else frac in
      if Float.is_finite lo && Float.is_finite hi then lo +. ((hi -. lo) *. frac)
      else if Float.is_finite hi then hi
      else lo
    in
    let lo0 = match mn with Some m -> m | None -> Float.neg_infinity in
    let hi_last = match mx with Some m -> m | None -> Float.infinity in
    let rec walk seen lo = function
      | [] ->
          (* the overflow bucket: (last bound, max] *)
          if overflow <= 0 then Some (clamp lo)
          else Some (clamp (interp lo hi_last ((rank -. float_of_int seen) /. float_of_int overflow)))
      | (le, c) :: rest ->
          if c > 0 && rank <= float_of_int (seen + c) then
            Some (clamp (interp lo le ((rank -. float_of_int seen) /. float_of_int c)))
          else walk (seen + c) le rest
    in
    walk 0 lo0 buckets
  end

let quantile s q =
  estimate_quantile ~count:s.count ~min:s.min ~max:s.max
    ~buckets:(Array.to_list (Array.mapi (fun i le -> (le, s.counts.(i))) s.bounds))
    ~overflow:s.overflow q

(* --- snapshot --------------------------------------------------------------- *)

(* Hash order must never reach a snapshot: collect, then sort by the
   registered name right here, so every caller gets a stable listing. *)
let sorted_values name_of tbl =
  Hashtbl.fold (fun _ v acc -> v :: acc) tbl [] |> List.sort (fun a b -> compare (name_of a) (name_of b))

let json_of_hist_snapshot s =
  Json.Obj
    [
      ("count", Json.Int s.count);
      ("sum", Json.Float s.sum);
      ("min", (match s.min with Some v -> Json.Float v | None -> Json.Null));
      ("max", (match s.max with Some v -> Json.Float v | None -> Json.Null));
      ( "buckets",
        Json.List
          (Array.to_list
             (Array.mapi
                (fun i le -> Json.Obj [ ("le", Json.Float le); ("count", Json.Int s.counts.(i)) ])
                s.bounds)) );
      ("overflow", Json.Int s.overflow);
    ]

let snapshot t =
  let counters, gauges, hists =
    locked t (fun () ->
        ( sorted_values (fun c -> c.c_name) t.counters,
          sorted_values (fun g -> g.g_name) t.gauges,
          sorted_values (fun h -> h.h_name) t.histograms ))
  in
  Json.Obj
    [
      ("counters", Json.Obj (List.map (fun c -> (c.c_name, Json.Int (counter_value c))) counters));
      ("gauges", Json.Obj (List.map (fun g -> (g.g_name, Json.Float (gauge_value g))) gauges));
      ( "histograms",
        Json.Obj (List.map (fun h -> (h.h_name, json_of_hist_snapshot (histogram_snapshot h))) hists)
      );
    ]
