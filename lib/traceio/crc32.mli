(** CRC-32 (IEEE, reflected, poly 0xEDB88320 — the zlib/PNG variant).

    Every frame of a [traceio] archive carries the CRC of its payload;
    readers recompute and compare before interpreting a single byte.
    Checksums are 32-bit values held in non-negative OCaml [int]s. *)

val digest : string -> int
(** CRC-32 of a whole string.  [digest "123456789" = 0xCBF43926]. *)

val digest_sub : string -> pos:int -> len:int -> int
(** CRC-32 of a substring.
    @raise Invalid_argument when the range is out of bounds. *)

val update : int -> string -> int -> int -> int
(** [update crc s pos len] extends a running digest — feeding a string
    piecewise gives the same result as one [digest] over the
    concatenation. *)
