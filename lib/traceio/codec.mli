(** Varint + delta codecs for the archive's array streams.

    All three codecs are self-delimiting (length-prefixed) and
    lossless; {!get_floats} reproduces the exact IEEE-754 bit pattern
    written by {!put_floats}.  Sample streams delta-encode consecutive
    bit patterns (neighbouring samples are numerically close, so the
    deltas are short varints); event-start streams delta-encode the
    monotone indices; label streams zigzag each small signed value
    directly. *)

val put_floats : Buffer.t -> float array -> unit
val get_floats : Binio.cursor -> float array

val get_floats_fv : Binio.cursor -> Mathkit.Fvec.t
(** [get_floats] decoding straight into a fresh unboxed vector — same
    bytes, same errors, no intermediate [float array]. *)

val put_ints_delta : Buffer.t -> int array -> unit
val get_ints_delta : Binio.cursor -> int array

val check_ints_delta : Binio.cursor -> int
(** Decode-and-discard [get_ints_delta]: identical validation and
    cursor advance, nothing allocated; returns the element count. *)

val put_ints : Buffer.t -> int array -> unit
val get_ints : Binio.cursor -> int array
