(* The trace-set archive: magic + versioned header frame + one frame
   per trace record.  See DESIGN.md ("traceio archive format") for the
   byte-level layout. *)

let magic = "REVEALTR"
let version = 1

(* trace_count placeholder while the writer is still streaming; a
   reader that sees it knows the writer never finalised the file *)
let count_unknown = 0xFFFFFFFF

type header = {
  variant : Riscv.Sampler_prog.variant;
  n : int;
  seed : int64;
  samples_per_cycle : int;
  noise_sigma : float;
  trace_count : int;
  meta : (string * string) list;
}

type record = {
  index : int;
  noises : int array;
  trace : Power.Ptrace.t;
}

(* The replay-path record shape: samples stay in the unboxed vector
   they were decoded into, and the event streams — which replay never
   reads — are validated but not materialised. *)
type record_fv = {
  fv_index : int;
  fv_noises : int array;
  fv_samples : Mathkit.Fvec.t;
}

let fv_of_record (r : record) =
  { fv_index = r.index; fv_noises = r.noises; fv_samples = Mathkit.Fvec.of_array r.trace.Power.Ptrace.samples }

let variant_code = function
  | Riscv.Sampler_prog.Vulnerable -> 0
  | Riscv.Sampler_prog.Branchless -> 1
  | Riscv.Sampler_prog.Shuffled -> 2
  | Riscv.Sampler_prog.Cdt_table -> 3

let variant_of_code ~path = function
  | 0 -> Riscv.Sampler_prog.Vulnerable
  | 1 -> Riscv.Sampler_prog.Branchless
  | 2 -> Riscv.Sampler_prog.Shuffled
  | 3 -> Riscv.Sampler_prog.Cdt_table
  | c -> Error.corruptf "%s: unknown sampler-variant code %d" path c

let variant_name = function
  | Riscv.Sampler_prog.Vulnerable -> "vulnerable (SEAL v3.2)"
  | Riscv.Sampler_prog.Branchless -> "branchless (SEAL v3.6)"
  | Riscv.Sampler_prog.Shuffled -> "shuffled"
  | Riscv.Sampler_prog.Cdt_table -> "cdt-table"

let meta_find h key = List.assoc_opt key h.meta

let header_payload h ~count =
  let b = Buffer.create 128 in
  Binio.put_u8 b (variant_code h.variant);
  Binio.put_u32 b h.n;
  Binio.put_u64 b h.seed;
  Binio.put_u16 b h.samples_per_cycle;
  Binio.put_f64 b h.noise_sigma;
  Binio.put_u32 b count;
  Binio.put_varint b (Int64.of_int (List.length h.meta));
  List.iter
    (fun (k, v) ->
      Binio.put_string b k;
      Binio.put_string b v)
    h.meta;
  Buffer.contents b

let header_of_payload ~path payload =
  let c = Binio.cursor ~name:path payload in
  let variant = variant_of_code ~path (Binio.get_u8 c) in
  let n = Binio.get_u32 c in
  let seed = Binio.get_u64 c in
  let samples_per_cycle = Binio.get_u16 c in
  let noise_sigma = Binio.get_f64 c in
  let trace_count = Binio.get_u32 c in
  let pairs = Binio.get_varint_int c in
  let meta =
    List.init pairs (fun _ ->
        let k = Binio.get_string c in
        let v = Binio.get_string c in
        (k, v))
  in
  Binio.expect_end c;
  if n <= 0 then Error.corruptf "%s: header declares a non-positive coefficient count %d" path n;
  if samples_per_cycle <= 0 then
    Error.corruptf "%s: header declares a non-positive samples_per_cycle %d" path samples_per_cycle;
  { variant; n; seed; samples_per_cycle; noise_sigma; trace_count; meta }

(* --- writing ------------------------------------------------------------ *)

(* metrics handles resolved once at open time (registry access locks);
   [None] when the archive was opened without an enabled obs context *)
type writer_stats = { ws_records : Obs.Metrics.counter; ws_bytes : Obs.Metrics.counter }

type writer = {
  w_path : string;
  oc : out_channel;
  w_header : header;  (* trace_count field unused while open *)
  mutable count : int;
  mutable w_closed : bool;
  w_stats : writer_stats option;
}

let writer_stats_of obs =
  if Obs.Ctx.enabled obs then
    Some
      {
        ws_records = Obs.Ctx.counter obs "traceio.records_written";
        ws_bytes = Obs.Ctx.counter obs "traceio.payload_bytes_written";
      }
  else None

let open_writer ?(obs = Obs.Ctx.disabled) ?(meta = []) ~variant ~n ~seed ~samples_per_cycle
    ~noise_sigma path =
  if n <= 0 then invalid_arg "Archive.open_writer: n must be positive";
  if samples_per_cycle <= 0 then invalid_arg "Archive.open_writer: samples_per_cycle must be positive";
  let h = { variant; n; seed; samples_per_cycle; noise_sigma; trace_count = 0; meta } in
  let oc = Error.open_out_bin path in
  Error.wrap_io path (fun () ->
      output_string oc magic;
      output_string oc (String.init 2 (fun i -> Char.chr ((version lsr (8 * i)) land 0xFF))));
  Frame.write ~path oc (header_payload h ~count:count_unknown);
  { w_path = path; oc; w_header = h; count = 0; w_closed = false; w_stats = writer_stats_of obs }

let writer_count w = w.count
let writer_path w = w.w_path

let record_payload ~index ~noises trace =
  let b = Buffer.create (4 * Array.length trace.Power.Ptrace.samples) in
  Binio.put_varint b (Int64.of_int index);
  Codec.put_ints b noises;
  Codec.put_floats b trace.Power.Ptrace.samples;
  Codec.put_ints_delta b trace.Power.Ptrace.event_start;
  Codec.put_ints_delta b trace.Power.Ptrace.event_pc;
  Buffer.contents b

let append w ~noises trace =
  if w.w_closed then invalid_arg "Archive.append: writer already closed";
  if Array.length noises <> w.w_header.n then
    invalid_arg
      (Printf.sprintf "Archive.append: %d noise labels for an n=%d archive" (Array.length noises) w.w_header.n);
  if trace.Power.Ptrace.samples_per_cycle <> w.w_header.samples_per_cycle then
    invalid_arg
      (Printf.sprintf "Archive.append: trace sampled at %d/cycle, archive at %d/cycle"
         trace.Power.Ptrace.samples_per_cycle w.w_header.samples_per_cycle);
  let payload = record_payload ~index:w.count ~noises trace in
  Frame.write ~path:w.w_path w.oc payload;
  w.count <- w.count + 1;
  match w.w_stats with
  | None -> ()
  | Some s ->
      Obs.Metrics.incr s.ws_records;
      Obs.Metrics.incr ~by:(String.length payload) s.ws_bytes

let close_writer w =
  if not w.w_closed then begin
    w.w_closed <- true;
    Error.wrap_io w.w_path (fun () ->
        (* patch the finalised trace count into the header frame; only a
           fixed-width field changes, so the frame keeps its size *)
        seek_out w.oc (String.length magic + 2);
        Frame.write ~path:w.w_path w.oc (header_payload w.w_header ~count:w.count);
        close_out w.oc)
  end

(* --- reading ------------------------------------------------------------ *)

type reader_stats = {
  rs_obs : Obs.Ctx.t;  (* for the per-skip warning event *)
  rs_records : Obs.Metrics.counter;
  rs_skipped : Obs.Metrics.counter;
  rs_bytes : Obs.Metrics.counter;
}

type reader = {
  r_path : string;
  ic : in_channel;
  header : header;
  mutable next_index : int;
  mutable r_closed : bool;
  r_stats : reader_stats option;
}

let reader_stats_of obs =
  if Obs.Ctx.enabled obs then
    Some
      {
        rs_obs = obs;
        rs_records = Obs.Ctx.counter obs "traceio.records_read";
        rs_skipped = Obs.Ctx.counter obs "traceio.records_skipped";
        rs_bytes = Obs.Ctx.counter obs "traceio.payload_bytes_read";
      }
  else None

let count_read r payload =
  match r.r_stats with
  | None -> ()
  | Some s ->
      Obs.Metrics.incr s.rs_records;
      Obs.Metrics.incr ~by:(String.length payload) s.rs_bytes

let count_skip r msg =
  match r.r_stats with
  | None -> ()
  | Some s ->
      Obs.Metrics.incr s.rs_skipped;
      Obs.Ctx.event ~level:Obs.Ctx.Warn
        ~attrs:[ ("path", Obs.Json.String r.r_path); ("reason", Obs.Json.String msg) ]
        s.rs_obs "traceio.skip"

let open_reader ?(obs = Obs.Ctx.disabled) path =
  let ic = Error.open_in_bin path in
  let fail_with exn = (try close_in ic with Sys_error _ -> ()); raise exn in
  try
    let m = Error.wrap_io path (fun () -> really_input_string ic (String.length magic)) in
    if m <> magic then
      Error.corruptf "%s: not a reveal trace archive (magic %S, expected %S)" path m magic;
    let v = Error.wrap_io path (fun () -> really_input_string ic 2) in
    let v = Char.code v.[0] lor (Char.code v.[1] lsl 8) in
    if v <> version then
      Error.corruptf "%s: unsupported archive version %d (this build reads version %d)" path v version;
    let header =
      match Frame.read ~path ic with
      | None -> Error.corruptf "%s: missing header frame" path
      | Some payload -> header_of_payload ~path payload
    in
    if header.trace_count = count_unknown then
      Error.corruptf "%s: archive was never finalised (writer not closed) — record count unknown" path;
    { r_path = path; ic; header; next_index = 0; r_closed = false; r_stats = reader_stats_of obs }
  with exn -> fail_with exn

let header r = r.header
let reader_path r = r.r_path

let close_reader r =
  if not r.r_closed then begin
    r.r_closed <- true;
    try close_in r.ic with Sys_error _ -> ()
  end

let record_of_payload ~path ~header ~expect_index payload =
  let c = Binio.cursor ~name:path payload in
  let index = Binio.get_varint_int c in
  if index <> expect_index then
    Error.corruptf "%s: record %d found where record %d was expected — records reordered or lost" path index
      expect_index;
  let noises = Codec.get_ints c in
  if Array.length noises <> header.n then
    Error.corruptf "%s: record %d carries %d noise labels for an n=%d archive" path index (Array.length noises)
      header.n;
  let samples = Codec.get_floats c in
  let event_start = Codec.get_ints_delta c in
  let event_pc = Codec.get_ints_delta c in
  if Array.length event_start <> Array.length event_pc then
    Error.corruptf "%s: record %d has %d event starts but %d event pcs" path index (Array.length event_start)
      (Array.length event_pc);
  Binio.expect_end c;
  {
    index;
    noises;
    trace = { Power.Ptrace.samples; samples_per_cycle = header.samples_per_cycle; event_start; event_pc };
  }

let record_fv_of_payload ~path ~header ~expect_index payload =
  let c = Binio.cursor ~name:path payload in
  let index = Binio.get_varint_int c in
  if index <> expect_index then
    Error.corruptf "%s: record %d found where record %d was expected — records reordered or lost" path index
      expect_index;
  let noises = Codec.get_ints c in
  if Array.length noises <> header.n then
    Error.corruptf "%s: record %d carries %d noise labels for an n=%d archive" path index (Array.length noises)
      header.n;
  let samples = Codec.get_floats_fv c in
  let n_start = Codec.check_ints_delta c in
  let n_pc = Codec.check_ints_delta c in
  if n_start <> n_pc then
    Error.corruptf "%s: record %d has %d event starts but %d event pcs" path index n_start n_pc;
  Binio.expect_end c;
  { fv_index = index; fv_noises = noises; fv_samples = samples }

(* [next]/[next_fv] differ only in the payload decoder; the cursor
   protocol (truncation/trailing-data checks, index advance, metrics)
   is shared here so the two stay in lockstep. *)
let next_gen ~fname ~decode r =
  if r.r_closed then invalid_arg (Printf.sprintf "Archive.%s: reader already closed" fname);
  match Frame.read ~path:r.r_path r.ic with
  | None ->
      if r.next_index < r.header.trace_count then
        Error.corruptf "%s: archive truncated — header declares %d records but only %d are present" r.r_path
          r.header.trace_count r.next_index;
      None
  | Some payload ->
      if r.next_index >= r.header.trace_count then
        Error.corruptf "%s: trailing data after the %d records the header declares" r.r_path r.header.trace_count;
      let rec_ = decode ~path:r.r_path ~header:r.header ~expect_index:r.next_index payload in
      r.next_index <- r.next_index + 1;
      count_read r payload;
      Some rec_

let next r = next_gen ~fname:"next" ~decode:record_of_payload r
let next_fv r = next_gen ~fname:"next_fv" ~decode:record_fv_of_payload r

(* Tolerant cursor: a record whose frame fails its CRC — or whose
   verified payload will not decode — is reported as [`Skipped] and the
   cursor moves on to the next frame boundary.  [next_index] advances
   over the skipped slot so the following records' index checks still
   line up.  Structural damage (truncation, bad length field) has no
   boundary to resume from and raises as in {!next}. *)
let try_next_gen ~fname ~decode r =
  if r.r_closed then invalid_arg (Printf.sprintf "Archive.%s: reader already closed" fname);
  match Frame.try_read ~path:r.r_path r.ic with
  | `End ->
      if r.next_index < r.header.trace_count then
        Error.corruptf "%s: archive truncated — header declares %d records but only %d are present" r.r_path
          r.header.trace_count r.next_index;
      `End_of_archive
  | `Bad_crc msg ->
      if r.next_index >= r.header.trace_count then
        Error.corruptf "%s: trailing data after the %d records the header declares" r.r_path r.header.trace_count;
      r.next_index <- r.next_index + 1;
      count_skip r msg;
      `Skipped msg
  | `Payload payload -> (
      if r.next_index >= r.header.trace_count then
        Error.corruptf "%s: trailing data after the %d records the header declares" r.r_path r.header.trace_count;
      match decode ~path:r.r_path ~header:r.header ~expect_index:r.next_index payload with
      | rec_ ->
          r.next_index <- r.next_index + 1;
          count_read r payload;
          `Record rec_
      | exception Error.Corrupt msg ->
          r.next_index <- r.next_index + 1;
          count_skip r msg;
          `Skipped msg)

let try_next r = try_next_gen ~fname:"try_next" ~decode:record_of_payload r
let try_next_fv r = try_next_gen ~fname:"try_next_fv" ~decode:record_fv_of_payload r

let next_batch r ~max =
  if max <= 0 then invalid_arg "Archive.next_batch: max must be positive";
  let rec take acc k = if k = 0 then acc else match next r with None -> acc | Some x -> take (x :: acc) (k - 1) in
  Array.of_list (List.rev (take [] max))

let with_reader ?obs path f =
  let r = open_reader ?obs path in
  Fun.protect ~finally:(fun () -> close_reader r) (fun () -> f r)

let iter path f =
  with_reader path (fun r ->
      let rec loop () = match next r with None -> () | Some x -> f x; loop () in
      loop ())

let fold path f init =
  with_reader path (fun r ->
      let rec loop acc = match next r with None -> acc | Some x -> loop (f acc x) in
      loop init)

(* Surgical copy for the triage minimizer: keep a subset of records
   and/or crop every kept record to one sample span.  The writer
   re-indexes kept records densely (its own counter), so the output is
   a self-consistent archive a strict reader accepts. *)
let crop_trace ~lo ~hi (t : Power.Ptrace.t) =
  let len = Array.length t.Power.Ptrace.samples in
  (* spans are clamped per record: fault drop/dup makes record lengths
     differ, and a span chosen on one record must stay legal on all *)
  let lo_r = min lo len in
  let hi_r = min hi len in
  let samples = Array.sub t.Power.Ptrace.samples lo_r (hi_r - lo_r) in
  let ev = ref [] in
  Array.iteri
    (fun i s -> if s >= lo_r && s < hi_r then ev := (s - lo_r, t.Power.Ptrace.event_pc.(i)) :: !ev)
    t.Power.Ptrace.event_start;
  let pairs = Array.of_list (List.rev !ev) in
  {
    t with
    Power.Ptrace.samples;
    event_start = Array.map fst pairs;
    event_pc = Array.map snd pairs;
  }

let rewrite ?keep ?span ~src ~dst () =
  (match span with
  | Some (lo, hi) when lo < 0 || hi < lo -> invalid_arg "Archive.rewrite: span must satisfy 0 <= lo <= hi"
  | _ -> ());
  (match keep with
  | Some l when List.exists (fun i -> i < 0) l -> invalid_arg "Archive.rewrite: negative record index"
  | _ -> ());
  with_reader src (fun r ->
      let h = header r in
      let w =
        open_writer ~meta:h.meta ~variant:h.variant ~n:h.n ~seed:h.seed
          ~samples_per_cycle:h.samples_per_cycle ~noise_sigma:h.noise_sigma dst
      in
      Fun.protect ~finally:(fun () -> close_writer w) @@ fun () ->
      let kept i = match keep with None -> true | Some l -> List.mem i l in
      let rec loop () =
        match next r with
        | None -> ()
        | Some rec_ ->
            if kept rec_.index then begin
              let trace =
                match span with None -> rec_.trace | Some (lo, hi) -> crop_trace ~lo ~hi rec_.trace
              in
              append w ~noises:rec_.noises trace
            end;
            loop ()
      in
      loop ();
      w.count)

let file_size path =
  let ic = Error.open_in_bin path in
  Fun.protect ~finally:(fun () -> try close_in ic with Sys_error _ -> ()) (fun () -> in_channel_length ic)
