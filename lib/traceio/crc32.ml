(* Reflected CRC-32 (IEEE 802.3, polynomial 0xEDB88320) — the
   variant of zlib/PNG, chosen so archives can be cross-checked with
   any standard tool. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let update crc s pos len =
  if pos < 0 || len < 0 || pos + len > String.length s then invalid_arg "Crc32.update: range out of bounds";
  let t = Lazy.force table in
  let c = ref (crc lxor 0xFFFFFFFF) in
  for i = pos to pos + len - 1 do
    (* srclint: allow unsafe-index i ranges over [pos, pos+len) validated above *)
    c := t.((!c lxor Char.code (String.unsafe_get s i)) land 0xFF) lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

let digest_sub s ~pos ~len = update 0 s pos len
let digest s = update 0 s 0 (String.length s)
