(* Little-endian primitives on Buffer (writing) and a bounds-checked
   cursor (reading).  All read failures are Error.Corrupt: by the time
   a cursor exists the bytes came off disk successfully, so any
   shortfall means the file is damaged, not the OS. *)

let put_u8 b v =
  if v < 0 || v > 0xFF then invalid_arg "Binio.put_u8: out of range";
  Buffer.add_char b (Char.chr v)

let put_u16 b v =
  if v < 0 || v > 0xFFFF then invalid_arg "Binio.put_u16: out of range";
  Buffer.add_char b (Char.chr (v land 0xFF));
  Buffer.add_char b (Char.chr ((v lsr 8) land 0xFF))

let put_u32 b v =
  if v < 0 || v > 0xFFFFFFFF then invalid_arg "Binio.put_u32: out of range";
  for i = 0 to 3 do
    Buffer.add_char b (Char.chr ((v lsr (8 * i)) land 0xFF))
  done

let put_u64 b (v : int64) =
  for i = 0 to 7 do
    Buffer.add_char b (Char.chr (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xFF))
  done

let put_f64 b v = put_u64 b (Int64.bits_of_float v)

(* Unsigned LEB128 over the full 64-bit range. *)
let put_varint b (v : int64) =
  let v = ref v in
  let continue_ = ref true in
  while !continue_ do
    let byte = Int64.to_int (Int64.logand !v 0x7FL) in
    v := Int64.shift_right_logical !v 7;
    if Int64.equal !v 0L then begin
      Buffer.add_char b (Char.chr byte);
      continue_ := false
    end
    else Buffer.add_char b (Char.chr (byte lor 0x80))
  done

let zigzag (v : int64) = Int64.logxor (Int64.shift_left v 1) (Int64.shift_right v 63)
let unzigzag (v : int64) = Int64.logxor (Int64.shift_right_logical v 1) (Int64.neg (Int64.logand v 1L))
let put_svarint b v = put_varint b (zigzag v)

let put_string b s =
  put_varint b (Int64.of_int (String.length s));
  Buffer.add_string b s

type cursor = { data : string; mutable pos : int; name : string }

let cursor ?(name = "buffer") data = { data; pos = 0; name }
let remaining c = String.length c.data - c.pos
let at_end c = remaining c = 0

let need c n =
  if remaining c < n then
    Error.corruptf "%s: truncated record (need %d more bytes at offset %d of %d)" c.name n c.pos
      (String.length c.data)

let get_u8 c =
  need c 1;
  let v = Char.code c.data.[c.pos] in
  c.pos <- c.pos + 1;
  v

let get_u16 c =
  need c 2;
  let v = Char.code c.data.[c.pos] lor (Char.code c.data.[c.pos + 1] lsl 8) in
  c.pos <- c.pos + 2;
  v

let get_u32 c =
  need c 4;
  let v = ref 0 in
  for i = 3 downto 0 do
    v := (!v lsl 8) lor Char.code c.data.[c.pos + i]
  done;
  c.pos <- c.pos + 4;
  !v

let get_u64 c =
  need c 8;
  let v = ref 0L in
  for i = 7 downto 0 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code c.data.[c.pos + i]))
  done;
  c.pos <- c.pos + 8;
  !v

let get_f64 c = Int64.float_of_bits (get_u64 c)

let get_varint c =
  let v = ref 0L and shift = ref 0 and continue_ = ref true in
  while !continue_ do
    if !shift > 63 then Error.corruptf "%s: varint longer than 10 bytes at offset %d" c.name c.pos;
    let byte = get_u8 c in
    v := Int64.logor !v (Int64.shift_left (Int64.of_int (byte land 0x7F)) !shift);
    shift := !shift + 7;
    if byte land 0x80 = 0 then continue_ := false
  done;
  !v

let get_svarint c = unzigzag (get_varint c)

let get_varint_int c =
  let v = get_varint c in
  if Int64.compare v (Int64.of_int max_int) > 0 then
    Error.corruptf "%s: varint %Lu does not fit an OCaml int" c.name v;
  Int64.to_int v

let get_string c =
  let len = get_varint_int c in
  need c len;
  let s = String.sub c.data c.pos len in
  c.pos <- c.pos + len;
  s

let expect_end c =
  if not (at_end c) then
    Error.corruptf "%s: %d trailing bytes after the last field" c.name (remaining c)
