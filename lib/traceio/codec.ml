(* Array codecs for the sample/event/label streams.

   Floats are serialised losslessly as deltas of consecutive IEEE-754
   bit patterns: neighbouring oscilloscope samples share sign,
   exponent and high mantissa bits, so the bit-pattern difference is a
   small signed integer that zigzag+LEB128 stores in a few bytes —
   while decode reproduces the exact bits, NaN payloads included. *)

let put_floats b xs =
  Binio.put_varint b (Int64.of_int (Array.length xs));
  let prev = ref 0L in
  Array.iter
    (fun x ->
      let bits = Int64.bits_of_float x in
      Binio.put_svarint b (Int64.sub bits !prev);
      prev := bits)
    xs

let get_floats c =
  let n = Binio.get_varint_int c in
  if n > Binio.remaining c then Error.corruptf "float array claims %d elements but only %d bytes remain" n (Binio.remaining c);
  let prev = ref 0L in
  Array.init n (fun _ ->
      let bits = Int64.add !prev (Binio.get_svarint c) in
      prev := bits;
      Int64.float_of_bits bits)

(* Same decode, straight into a fresh unboxed vector: the archive
   replay path never materialises a [float array] per record. *)
let get_floats_fv c =
  let n = Binio.get_varint_int c in
  if n > Binio.remaining c then Error.corruptf "float array claims %d elements but only %d bytes remain" n (Binio.remaining c);
  let v = Mathkit.Fvec.create n in
  let prev = ref 0L in
  for i = 0 to n - 1 do
    let bits = Int64.add !prev (Binio.get_svarint c) in
    prev := bits;
    Mathkit.Fvec.set v i (Int64.float_of_bits bits)
  done;
  v

(* Monotone-ish integer streams (event start indices): delta + zigzag. *)
let put_ints_delta b xs =
  Binio.put_varint b (Int64.of_int (Array.length xs));
  let prev = ref 0L in
  Array.iter
    (fun x ->
      let v = Int64.of_int x in
      Binio.put_svarint b (Int64.sub v !prev);
      prev := v)
    xs

let get_ints_delta c =
  let n = Binio.get_varint_int c in
  if n > Binio.remaining c then Error.corruptf "int array claims %d elements but only %d bytes remain" n (Binio.remaining c);
  let prev = ref 0L in
  Array.init n (fun _ ->
      let v = Int64.add !prev (Binio.get_svarint c) in
      prev := v;
      if Int64.compare v (Int64.of_int max_int) > 0 || Int64.compare v (Int64.of_int min_int) < 0 then
        Error.corruptf "int array element %Ld does not fit an OCaml int" v;
      Int64.to_int v)

(* Validate-and-discard [get_ints_delta]: runs the exact same checks
   (so corrupt streams raise the same errors) but allocates nothing.
   Returns the element count for cross-field consistency checks. *)
let check_ints_delta c =
  let n = Binio.get_varint_int c in
  if n > Binio.remaining c then Error.corruptf "int array claims %d elements but only %d bytes remain" n (Binio.remaining c);
  let prev = ref 0L in
  for _ = 1 to n do
    let v = Int64.add !prev (Binio.get_svarint c) in
    prev := v;
    if Int64.compare v (Int64.of_int max_int) > 0 || Int64.compare v (Int64.of_int min_int) < 0 then
      Error.corruptf "int array element %Ld does not fit an OCaml int" v
  done;
  n

(* Small signed values around zero (noise labels, pcs): plain zigzag. *)
let put_ints b xs =
  Binio.put_varint b (Int64.of_int (Array.length xs));
  Array.iter (fun x -> Binio.put_svarint b (Int64.of_int x)) xs

let get_ints c =
  let n = Binio.get_varint_int c in
  if n > Binio.remaining c then Error.corruptf "int array claims %d elements but only %d bytes remain" n (Binio.remaining c);
  Array.init n (fun _ ->
      let v = Binio.get_svarint c in
      if Int64.compare v (Int64.of_int max_int) > 0 || Int64.compare v (Int64.of_int min_int) < 0 then
        Error.corruptf "int array element %Ld does not fit an OCaml int" v;
      Int64.to_int v)
