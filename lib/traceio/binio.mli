(** Little-endian binary primitives: [Buffer] writers and a
    bounds-checked string cursor for reading.

    Fixed-width fields are little-endian.  Variable-width integers use
    unsigned LEB128 ({!put_varint}); signed values go through zigzag
    ({!put_svarint}) so small magnitudes of either sign stay short.
    Every reader raises {!Error.Corrupt} — never [Invalid_argument] or
    a silent wrap — when the bytes run out or a field is out of
    range. *)

val put_u8 : Buffer.t -> int -> unit
val put_u16 : Buffer.t -> int -> unit
val put_u32 : Buffer.t -> int -> unit
val put_u64 : Buffer.t -> int64 -> unit
val put_f64 : Buffer.t -> float -> unit
(** IEEE-754 bit pattern via {!put_u64}: lossless for every float,
    including NaNs and infinities. *)

val put_varint : Buffer.t -> int64 -> unit
(** Unsigned LEB128 (1–10 bytes; the argument is treated as a 64-bit
    unsigned quantity). *)

val put_svarint : Buffer.t -> int64 -> unit
(** Zigzag + LEB128 for signed values. *)

val put_string : Buffer.t -> string -> unit
(** Length (varint) + raw bytes. *)

val zigzag : int64 -> int64
val unzigzag : int64 -> int64

type cursor
(** Read position over an immutable string. *)

val cursor : ?name:string -> string -> cursor
(** [name] prefixes corruption messages (e.g. the file path). *)

val remaining : cursor -> int
val at_end : cursor -> bool

val get_u8 : cursor -> int
val get_u16 : cursor -> int
val get_u32 : cursor -> int
val get_u64 : cursor -> int64
val get_f64 : cursor -> float
val get_varint : cursor -> int64
val get_svarint : cursor -> int64

val get_varint_int : cursor -> int
(** Varint checked to fit a non-negative OCaml [int].
    @raise Error.Corrupt when it does not. *)

val get_string : cursor -> string

val expect_end : cursor -> unit
(** @raise Error.Corrupt when decoded fields did not consume the whole
    payload — trailing garbage means a codec/version mismatch. *)
