(** Versioned binary archives of power-trace sets.

    The paper's attack flow is acquire-once / analyze-many: one
    captured trace of the sampler is segmented, templated and fed to
    the lattice estimator over and over.  This module is the storage
    layer that separates the two phases — a campaign is captured once
    into an on-disk archive and replayed through any number of offline
    analyses with bounded memory.

    On-disk layout (all little-endian):

    {v
    "REVEALTR"  8-byte magic
    u16         format version (currently 1)
    FRAME       header: variant u8, n u32, seed u64,
                samples_per_cycle u16, noise_sigma f64,
                trace_count u32 (0xFFFFFFFF until finalised),
                meta count + (key, value) string pairs
    FRAME*      one per trace record: index varint,
                noise labels (zigzag varints),
                samples (IEEE-bit delta varints),
                event starts (delta varints),
                event pcs (delta varints)
    v}

    where FRAME is [u32 length | payload | u32 crc32] (see {!Frame}).
    Readers verify every checksum and every declared count before
    interpreting bytes; any mismatch raises {!Error.Corrupt} rather
    than misreading data. *)

type header = {
  variant : Riscv.Sampler_prog.variant;  (** firmware the traces came from *)
  n : int;  (** coefficients per run *)
  seed : int64;  (** campaign seed, for provenance *)
  samples_per_cycle : int;
  noise_sigma : float;  (** scope noise the synthesiser added *)
  trace_count : int;
  meta : (string * string) list;  (** free-form extensions (e.g. profiling calibration) *)
}

type record = {
  index : int;  (** position in the campaign, 0-based and sequential *)
  noises : int array;  (** ground-truth labels: the coefficients sampled *)
  trace : Power.Ptrace.t;
}

type record_fv = {
  fv_index : int;
  fv_noises : int array;
  fv_samples : Mathkit.Fvec.t;
      (** samples in the unboxed vector they were decoded into *)
}
(** The replay-path record shape: no intermediate [float array], and
    the event streams — which replay never reads — are validated but
    not materialised. *)

val fv_of_record : record -> record_fv
(** Convert an already-decoded record (one copy of the samples). *)

val variant_name : Riscv.Sampler_prog.variant -> string
val meta_find : header -> string -> string option

(** {1 Payload codec}

    The header/record byte codecs, independent of the file container.
    {!Wire} streams the same payloads over a socket, and the property
    tests corrupt them directly. *)

val count_unknown : int
(** The [trace_count] placeholder (0xFFFFFFFF) a streaming writer
    leaves in the header until it finalises — also the value a live
    wire stream advertises when its length is open-ended. *)

val header_payload : header -> count:int -> string
(** Encode a header with an explicit [count] in the [trace_count]
    slot (the struct's own field is ignored so writers can patch the
    final count in without rebuilding the header). *)

val header_of_payload : path:string -> string -> header
(** @raise Error.Corrupt when the payload does not decode or declares
    impossible dimensions ([path] contextualises the message). *)

val record_payload : index:int -> noises:int array -> Power.Ptrace.t -> string

val record_of_payload : path:string -> header:header -> expect_index:int -> string -> record
(** @raise Error.Corrupt on any decode failure, an index other than
    [expect_index], or a record inconsistent with [header]. *)

val record_fv_of_payload : path:string -> header:header -> expect_index:int -> string -> record_fv
(** [record_of_payload] into the replay shape: identical validation
    (same errors on the same corrupt payloads), samples decoded
    straight into the vector, event streams checked and discarded. *)

(** {1 Writing}

    The writer streams: each appended record is framed and flushed
    forward, nothing is buffered across records, so a paper-scale
    campaign never holds more than one trace in memory. *)

type writer

val open_writer :
  ?obs:Obs.Ctx.t ->
  ?meta:(string * string) list ->
  variant:Riscv.Sampler_prog.variant ->
  n:int ->
  seed:int64 ->
  samples_per_cycle:int ->
  noise_sigma:float ->
  string ->
  writer
(** With an enabled [obs] context the writer counts
    [traceio.records_written] / [traceio.payload_bytes_written] in the
    context's metrics registry.
    @raise Error.Io when the path cannot be created. *)

val append : writer -> noises:int array -> Power.Ptrace.t -> unit
(** @raise Invalid_argument when the record does not match the header
    (label count, samples per cycle).
    @raise Error.Io on a write failure (message carries the path). *)

val writer_count : writer -> int
val writer_path : writer -> string

val close_writer : writer -> unit
(** Patches the finalised record count into the header and closes the
    file.  Idempotent.  An archive whose writer never closed is
    rejected by {!open_reader}. *)

(** {1 Reading}

    Strictly streaming: {!next} holds exactly one record in memory. *)

type reader

val open_reader : ?obs:Obs.Ctx.t -> string -> reader
(** Validates magic, version and the header checksum.  With an enabled
    [obs] context the reader counts [traceio.records_read],
    [traceio.payload_bytes_read] and — crucially for replay campaigns —
    [traceio.records_skipped] in the context's metrics registry, so
    skip totals survive beyond any one caller's local tally; each skip
    also emits a warn-level [traceio.skip] event carrying the
    diagnostic.
    @raise Error.Corrupt on any mismatch, including an unfinalised
    archive. *)

val header : reader -> header
val reader_path : reader -> string

val next : reader -> record option
(** Next verified record; [None] at the declared end.
    @raise Error.Corrupt on checksum mismatch, truncation (fewer
    records than the header declares), trailing data, or a record
    inconsistent with the header. *)

val next_batch : reader -> max:int -> record array
(** Up to [max] records — the unit parallel ingestion works on. *)

val next_fv : reader -> record_fv option
(** {!next} decoding into the replay shape.  The two share the
    reader's cursor — use one or the other, not both. *)

val try_next : reader -> [ `Record of record | `Skipped of string | `End_of_archive ]
(** Tolerant {!next}: a record whose frame fails its CRC, or whose
    verified payload will not decode, is reported as [`Skipped] (with
    the diagnostic) and the cursor resumes at the next frame boundary —
    campaign replay can drop the one bad trace and keep going.
    Structural damage that destroys the framing (truncation, damaged
    length field, trailing data) still raises {!Error.Corrupt}. *)

val try_next_fv : reader -> [ `Record of record_fv | `Skipped of string | `End_of_archive ]
(** {!try_next} decoding into the replay shape (same skip policy). *)

val close_reader : reader -> unit

val with_reader : ?obs:Obs.Ctx.t -> string -> (reader -> 'a) -> 'a
val iter : string -> (record -> unit) -> unit
val fold : string -> ('a -> record -> 'a) -> 'a -> 'a

val rewrite : ?keep:int list -> ?span:int * int -> src:string -> dst:string -> unit -> int
(** Copy [src] to [dst], keeping only the records whose original index
    is in [keep] (default: all) and cropping every kept record's trace
    to the sample span [\[lo, hi)] (default: whole trace).  Kept
    records are re-indexed densely, the header's other fields and meta
    are copied verbatim, and events are filtered to the span and
    shifted to its origin.  The span is clamped per record — fault
    drop/dup makes record lengths differ — so one span is legal across
    a whole archive.  Returns the number of records written.  This is
    the primitive the triage minimizer bisects with (DESIGN.md §14).
    @raise Invalid_argument on a negative index or [lo < 0 || hi < lo].
    @raise Error.Corrupt when [src] does not verify (strict read). *)

val file_size : string -> int
(** On-disk byte size (for compression-ratio reporting). *)
