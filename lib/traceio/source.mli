(** Pull-based record streams — the storage-side source adapter.

    An archive on disk, an already-decoded record array, or any future
    acquisition backend presents the same three operations: pull the
    next event, know what it is called, release it.  The attack
    pipeline's archive-replay source is a thin wrapper over this
    adapter, so corruption policy (skip-and-count vs fail-fast) is
    decided once, here, instead of per consumer. *)

type event = [ `Record of Archive.record | `Skipped of string | `End_of_archive ]
(** One pull: a decoded record, a mid-stream corrupt record that was
    skipped (tolerant mode only; carries the reason), or the end. *)

type event_fv = [ `Record of Archive.record_fv | `Skipped of string | `End_of_archive ]
(** The same pull in the replay shape ({!Archive.record_fv}). *)

type t

val name : t -> string
(** Where the stream comes from (the path, for archives). *)

val next : t -> event

val next_fv : t -> event_fv
(** Pull in the replay shape.  Archive-backed sources decode natively
    (no intermediate [float array]); other backends convert.  [next]
    and [next_fv] advance the same cursor — pick one per consumer. *)

val close : t -> unit
(** Idempotent; releases the underlying reader, if any. *)

val of_archive : ?strict:bool -> ?obs:Obs.Ctx.t -> string -> t
(** Stream an archive file.  Tolerant by default: a record failing its
    CRC (or refusing to decode) yields [`Skipped] and the stream
    resumes at the next frame boundary.  With [~strict:true] the same
    condition raises {!Error.Corrupt} instead.  [obs] is forwarded to
    {!Archive.open_reader}, so read/skip totals land in its metrics
    registry rather than in per-caller local counts ({!fold}'s skip
    return stays as a convenience, but the registry is the durable
    record).
    @raise Error.Io when the file cannot be opened. *)

val of_reader : ?strict:bool -> name:string -> Archive.reader -> t
(** Same, over an already-open reader (closing the source closes the
    reader). *)

val of_records : name:string -> Archive.record array -> t
(** An in-memory stream — synthetic campaigns and tests. *)

val make : name:string -> next:(unit -> event) -> close:(unit -> unit) -> t
(** Wrap an arbitrary acquisition backend (e.g. {!Wire.source}'s
    socket receiver).  [next] must keep returning [`End_of_archive]
    once it has; [close] must be idempotent.  {!next_fv} converts
    [next]'s records. *)

val make_fv :
  name:string -> next:(unit -> event) -> next_fv:(unit -> event_fv) -> close:(unit -> unit) -> t
(** {!make} with a native replay-shape decoder for backends that can
    skip the boxed intermediate. *)

val fold : t -> ('a -> Archive.record -> 'a) -> 'a -> ('a * int)
(** Drain the stream; returns the accumulator and the number of
    skipped records.  Closes the source, also on exceptions. *)
