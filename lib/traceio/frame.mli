(** CRC-checksummed chunk framing.

    A frame is [u32 length | payload | u32 crc32(payload)], all
    little-endian.  Frames are the archive's unit of verification and
    of memory residency: readers hold exactly one frame's payload at a
    time. *)

val max_payload : int
(** Hard ceiling on a frame payload (1 GiB) — a damaged length field
    is rejected before any oversized allocation. *)

val write : path:string -> out_channel -> string -> unit
(** Append one frame.  [path] contextualises {!Error.Io} failures. *)

val size : string -> int
(** On-disk size of the frame [write] would emit for this payload. *)

val read : path:string -> in_channel -> string option
(** Next verified payload; [None] on a clean end of file.
    @raise Error.Corrupt on truncation mid-frame, an oversized length
    field, or a checksum mismatch.
    @raise Error.Io when the OS fails the read. *)
