(** CRC-checksummed chunk framing.

    A frame is [u32 length | payload | u32 crc32(payload)], all
    little-endian.  Frames are the archive's unit of verification and
    of memory residency: readers hold exactly one frame's payload at a
    time. *)

val max_payload : int
(** Hard ceiling on a frame payload (1 GiB) — a damaged length field
    is rejected before any oversized allocation. *)

val write : path:string -> out_channel -> string -> unit
(** Append one frame.  [path] contextualises {!Error.Io} failures. *)

val size : string -> int
(** On-disk size of the frame [write] would emit for this payload. *)

val read : path:string -> in_channel -> string option
(** Next verified payload; [None] on a clean end of file.
    @raise Error.Corrupt on truncation mid-frame, an oversized length
    field, or a checksum mismatch.
    @raise Error.Io when the OS fails the read. *)

val try_read : path:string -> in_channel -> [ `Payload of string | `Bad_crc of string | `End ]
(** Like {!read}, but a checksum mismatch is reported as [`Bad_crc]
    with the diagnostic message instead of raising.  The mismatch is
    only detected after the whole frame has been consumed, so the
    channel sits at the next frame boundary and reading can continue —
    the basis of skip-and-continue archive recovery.  Truncation and
    damaged length fields still raise {!Error.Corrupt}: they destroy
    the framing itself, there is no boundary to resume from. *)
