(* Chunk framing: every header and record in an archive is one frame,
     u32 payload length | payload bytes | u32 crc32(payload)
   so a reader can stream chunk by chunk, verify each independently,
   and detect truncation at any byte. *)

(* A corrupted length field must not trigger a gigabyte allocation
   before the CRC check gets a chance to reject the frame. *)
let max_payload = 1 lsl 30

let output_u32 oc v =
  let b = Bytes.create 4 in
  for i = 0 to 3 do
    Bytes.set b i (Char.chr ((v lsr (8 * i)) land 0xFF))
  done;
  output_bytes oc b

let input_u32 ~path ic =
  let b = really_input_string ic 4 in
  let v = ref 0 in
  for i = 3 downto 0 do
    v := (!v lsl 8) lor Char.code b.[i]
  done;
  ignore path;
  !v

let write ~path oc payload =
  let len = String.length payload in
  if len > max_payload then invalid_arg "Frame.write: payload too large";
  Error.wrap_io path (fun () ->
      output_u32 oc len;
      output_string oc payload;
      output_u32 oc (Crc32.digest payload))

let size payload = 8 + String.length payload

(* Shared reader core.  A checksum mismatch is only detected after the
   whole frame (length, payload, stored CRC) has been consumed, so the
   channel is positioned at the next frame boundary either way — which
   is what makes skip-and-continue recovery possible.  A damaged length
   field or truncation mid-frame leaves no boundary to resume from and
   stays a hard {!Error.Corrupt}. *)
let read_result ~path ic =
  let first =
    try Some (input_char ic)
    with End_of_file -> None
  in
  match first with
  | None -> `End
  | Some c0 ->
      Error.wrap_io path (fun () ->
          let rest = really_input_string ic 3 in
          let len = ref 0 in
          let byte i = if i = 0 then Char.code c0 else Char.code rest.[i - 1] in
          for i = 3 downto 0 do
            len := (!len lsl 8) lor byte i
          done;
          if !len > max_payload then
            Error.corruptf "%s: frame length %d exceeds the format maximum (%d) — damaged length field" path !len
              max_payload;
          let payload = really_input_string ic !len in
          let stored = input_u32 ~path ic in
          let actual = Crc32.digest payload in
          if stored <> actual then
            `Bad_crc
              (Printf.sprintf "%s: checksum mismatch (stored %08x, computed %08x) — the archive is damaged" path
                 stored actual)
          else `Payload payload)

(* [read ~path ic] returns the next verified payload, or [None] on a
   clean end of file (EOF exactly at a frame boundary). *)
let read ~path ic =
  match read_result ~path ic with
  | `End -> None
  | `Payload payload -> Some payload
  | `Bad_crc msg -> raise (Error.Corrupt msg)

let try_read = read_result
