(** Socket wire protocol: an archive's record stream over a byte pipe.

    A serving peer streams the same header/record payloads that
    {!Archive} stores on disk, re-framed for a connection where seeking
    back to patch a final count is impossible.  Layout (little-endian):

    {v
    "REVEALWS"  8-byte magic
    u16         wire version (currently 1)
    FRAME       'H' tag + header payload (trace_count may be
                Archive.count_unknown for open-ended live streams)
    FRAME*      'R' tag + record payload, indices 0,1,2,…
    FRAME       'E' tag + u32 count of record slots streamed
    v}

    where FRAME is [u32 length | payload | u32 crc32] ({!Frame}) and
    the tag is the payload's first byte.  The explicit end frame is
    what stands in for the archive's patched header count: a connection
    that drops mid-stream leaves no 'E' frame and the receiver raises
    {!Error.Corrupt} instead of mistaking the cut for a clean end.

    Corruption discipline mirrors {!Archive.try_next}: a record frame
    that fails its CRC (or refuses to decode) is skippable — the frame
    boundary survives, the receiver counts the slot and moves on — while
    damage to the preamble, header frame, end frame or framing itself
    is structural and always raises. *)

val magic : string
val version : int

(** {1 Sending} *)

type sender

val create_sender : ?obs:Obs.Ctx.t -> peer:string -> header:Archive.header -> out_channel -> sender
(** Writes the preamble and header frame immediately.  The header's
    own [trace_count] field is forwarded verbatim — pass
    {!Archive.count_unknown} when the stream length is open-ended.
    [peer] contextualises error messages.  With an enabled [obs]
    context the sender counts [wire.records_sent] /
    [wire.payload_bytes_sent].
    @raise Error.Io when the channel refuses the write. *)

val send : sender -> noises:int array -> Power.Ptrace.t -> unit
(** Stream one record; records are re-indexed 0,1,2,… in send order
    (so serving a tolerant archive reader that skipped records still
    yields a dense stream).  Flushes, so a live receiver sees the
    record without waiting for the end of the stream.
    @raise Invalid_argument when the record does not match the header
    or the sender is finished. *)

val sender_count : sender -> int

val finish : sender -> unit
(** Write the end frame and flush.  Idempotent.  Closing the channel
    is the caller's business (it usually owns the socket). *)

(** {1 Receiving} *)

type receiver

val open_receiver :
  ?strict:bool -> ?obs:Obs.Ctx.t -> ?close:(unit -> unit) -> peer:string -> in_channel -> receiver
(** Reads and validates the preamble and header frame.  Tolerant by
    default (see module doc); [~strict:true] turns every record skip
    into {!Error.Corrupt}.  [close] is invoked (once) by
    {!close_receiver} — pass the socket teardown here.  With an
    enabled [obs] context the receiver counts [wire.records_received],
    [wire.records_skipped] and [wire.payload_bytes_received], and
    emits a warn-level [wire.skip] event per skipped record.
    @raise Error.Corrupt on a bad preamble, version or header frame. *)

val receiver_header : receiver -> Archive.header

val recv : receiver -> [ `Record of Archive.record | `Skipped of string | `End_of_stream ]
(** Pull the next record slot.  [`End_of_stream] is returned at (and
    after) the end frame, whose count must equal the slots streamed.
    @raise Error.Corrupt when the connection ends without an end
    frame, on structural frame damage, or (strict mode) on any
    skippable record. *)

val close_receiver : receiver -> unit
(** Runs the [close] callback.  Idempotent. *)

val source :
  ?strict:bool -> ?obs:Obs.Ctx.t -> ?close:(unit -> unit) -> peer:string -> in_channel -> Source.t
(** The receiver as a {!Source.t}, so remote acquisition plugs into
    anything that replays archives.  Opens the receiver immediately
    (the header is read before this returns). *)

(** {1 Telemetry streams}

    A second stream kind over the same preamble and {!Frame} layout,
    carrying live observability lines instead of trace records:

    {v
    "REVEALWS"  8-byte magic
    u16         wire version (currently 1)
    FRAME*      'T' tag + one obs JSONL line (verbatim bytes)
    FRAME       'E' tag + u32 count of telemetry slots streamed
    v}

    There is no header frame — the obs trace's own ["start"] record is
    the stream's self-description.  The corruption discipline is the
    archive stream's: a 'T' frame failing its CRC is skippable (the
    slot is counted and the receiver moves on); preamble or framing
    damage, an archive tag on a telemetry endpoint, or a cut before
    the end frame is structural {!Error.Corrupt}. *)

type telemetry_sender

val create_telemetry_sender : peer:string -> out_channel -> telemetry_sender
(** Writes the preamble immediately and flushes.
    @raise Error.Io when the channel refuses the write. *)

val telemetry_send : telemetry_sender -> string -> unit
(** Frame one JSONL line (without its newline) and flush, so a live
    monitor sees it immediately.
    @raise Invalid_argument on an empty line or a finished sender. *)

val telemetry_count : telemetry_sender -> int

val telemetry_finish : telemetry_sender -> unit
(** Write the end frame and flush.  Idempotent; the channel stays the
    caller's to close. *)

type telemetry_receiver

val open_telemetry_receiver :
  ?strict:bool -> ?close:(unit -> unit) -> peer:string -> in_channel -> telemetry_receiver
(** Reads and validates the preamble.  Tolerant by default;
    [~strict:true] turns every skippable frame into {!Error.Corrupt}.
    [close] is invoked (once) by {!close_telemetry_receiver}.
    @raise Error.Corrupt on a bad preamble or version. *)

val telemetry_recv : telemetry_receiver -> [ `Line of string | `Skipped of string | `End_of_stream ]
(** Pull the next telemetry slot.  [`End_of_stream] at (and after) the
    end frame, whose count must equal the slots streamed.
    @raise Error.Corrupt when the connection ends without an end
    frame, on structural damage, on an archive-tagged frame, or
    (strict mode) on any skippable frame. *)

val telemetry_skipped : telemetry_receiver -> int
(** Slots lost to CRC damage so far (tolerant mode). *)

val close_telemetry_receiver : telemetry_receiver -> unit
(** Runs the [close] callback.  Idempotent. *)
