(* The archive record stream, re-framed for a socket: explicit tagged
   frames and a mandatory end frame instead of a seek-back header
   patch.  See wire.mli for the byte-level layout. *)

let magic = "REVEALWS"
let version = 1

let tag_header = 'H'
let tag_record = 'R'
let tag_end = 'E'

let tagged tag payload =
  let b = Buffer.create (String.length payload + 1) in
  Buffer.add_char b tag;
  Buffer.add_string b payload;
  Buffer.contents b

(* --- sending ------------------------------------------------------------ *)

type sender_stats = { ss_records : Obs.Metrics.counter; ss_bytes : Obs.Metrics.counter }

type sender = {
  s_peer : string;
  s_oc : out_channel;
  s_header : Archive.header;
  mutable s_count : int;
  mutable s_finished : bool;
  s_stats : sender_stats option;
}

let sender_stats_of obs =
  if Obs.Ctx.enabled obs then
    Some
      {
        ss_records = Obs.Ctx.counter obs "wire.records_sent";
        ss_bytes = Obs.Ctx.counter obs "wire.payload_bytes_sent";
      }
  else None

let create_sender ?(obs = Obs.Ctx.disabled) ~peer ~header oc =
  Error.wrap_io peer (fun () ->
      output_string oc magic;
      output_string oc (String.init 2 (fun i -> Char.chr ((version lsr (8 * i)) land 0xFF))));
  Frame.write ~path:peer oc (tagged tag_header (Archive.header_payload header ~count:header.Archive.trace_count));
  Error.wrap_io peer (fun () -> flush oc);
  { s_peer = peer; s_oc = oc; s_header = header; s_count = 0; s_finished = false; s_stats = sender_stats_of obs }

let sender_count s = s.s_count

let send s ~noises trace =
  if s.s_finished then invalid_arg "Wire.send: sender already finished";
  if Array.length noises <> s.s_header.Archive.n then
    invalid_arg
      (Printf.sprintf "Wire.send: %d noise labels for an n=%d stream" (Array.length noises) s.s_header.Archive.n);
  if trace.Power.Ptrace.samples_per_cycle <> s.s_header.Archive.samples_per_cycle then
    invalid_arg
      (Printf.sprintf "Wire.send: trace sampled at %d/cycle, stream at %d/cycle" trace.Power.Ptrace.samples_per_cycle
         s.s_header.Archive.samples_per_cycle);
  let payload = Archive.record_payload ~index:s.s_count ~noises trace in
  Frame.write ~path:s.s_peer s.s_oc (tagged tag_record payload);
  Error.wrap_io s.s_peer (fun () -> flush s.s_oc);
  s.s_count <- s.s_count + 1;
  match s.s_stats with
  | None -> ()
  | Some st ->
      Obs.Metrics.incr st.ss_records;
      Obs.Metrics.incr ~by:(String.length payload) st.ss_bytes

let finish s =
  if not s.s_finished then begin
    s.s_finished <- true;
    let b = Buffer.create 4 in
    Binio.put_u32 b s.s_count;
    Frame.write ~path:s.s_peer s.s_oc (tagged tag_end (Buffer.contents b));
    Error.wrap_io s.s_peer (fun () -> flush s.s_oc)
  end

(* --- receiving ---------------------------------------------------------- *)

type receiver_stats = {
  rs_obs : Obs.Ctx.t;
  rs_records : Obs.Metrics.counter;
  rs_skipped : Obs.Metrics.counter;
  rs_bytes : Obs.Metrics.counter;
}

type receiver = {
  r_peer : string;
  r_ic : in_channel;
  r_header : Archive.header;
  r_strict : bool;
  r_close : unit -> unit;
  mutable r_next_index : int;
  mutable r_finished : bool;
  mutable r_closed : bool;
  r_stats : receiver_stats option;
}

let receiver_stats_of obs =
  if Obs.Ctx.enabled obs then
    Some
      {
        rs_obs = obs;
        rs_records = Obs.Ctx.counter obs "wire.records_received";
        rs_skipped = Obs.Ctx.counter obs "wire.records_skipped";
        rs_bytes = Obs.Ctx.counter obs "wire.payload_bytes_received";
      }
  else None

let count_recv r payload =
  match r.r_stats with
  | None -> ()
  | Some s ->
      Obs.Metrics.incr s.rs_records;
      Obs.Metrics.incr ~by:(String.length payload) s.rs_bytes

let count_skip r msg =
  match r.r_stats with
  | None -> ()
  | Some s ->
      Obs.Metrics.incr s.rs_skipped;
      Obs.Ctx.event ~level:Obs.Ctx.Warn
        ~attrs:[ ("peer", Obs.Json.String r.r_peer); ("reason", Obs.Json.String msg) ]
        s.rs_obs "wire.skip"

(* Split a verified frame payload into its tag and body.  An empty
   payload cannot have come from a sender, so it is structural. *)
let untag ~peer payload =
  if String.length payload = 0 then Error.corruptf "%s: empty wire frame" peer;
  (payload.[0], String.sub payload 1 (String.length payload - 1))

let open_receiver ?(strict = false) ?(obs = Obs.Ctx.disabled) ?(close = ignore) ~peer ic =
  let m = Error.wrap_io peer (fun () -> really_input_string ic (String.length magic)) in
  if m <> magic then Error.corruptf "%s: not a reveal wire stream (magic %S, expected %S)" peer m magic;
  let v = Error.wrap_io peer (fun () -> really_input_string ic 2) in
  let v = Char.code v.[0] lor (Char.code v.[1] lsl 8) in
  if v <> version then
    Error.corruptf "%s: unsupported wire version %d (this build speaks version %d)" peer v version;
  let header =
    match Frame.read ~path:peer ic with
    | None -> Error.corruptf "%s: connection closed before the header frame" peer
    | Some payload -> (
        match untag ~peer payload with
        | t, body when t = tag_header -> Archive.header_of_payload ~path:peer body
        | t, _ -> Error.corruptf "%s: expected header frame, got tag %C" peer t)
  in
  {
    r_peer = peer;
    r_ic = ic;
    r_header = header;
    r_strict = strict;
    r_close = close;
    r_next_index = 0;
    r_finished = false;
    r_closed = false;
    r_stats = receiver_stats_of obs;
  }

let receiver_header r = r.r_header

let skip_or_raise r msg =
  if r.r_strict then Error.corruptf "%s: %s" r.r_peer msg
  else begin
    r.r_next_index <- r.r_next_index + 1;
    count_skip r msg;
    `Skipped msg
  end

let recv r =
  if r.r_finished then `End_of_stream
  else
    match Frame.try_read ~path:r.r_peer r.r_ic with
    | `End ->
        Error.corruptf "%s: connection closed mid-stream after %d record slots (no end frame)" r.r_peer
          r.r_next_index
    | `Bad_crc msg ->
        (* could have been any frame kind; treating it as a lost record
           slot keeps later index checks aligned, and a mangled end
           frame still surfaces as Corrupt at the following EOF *)
        skip_or_raise r msg
    | `Payload payload -> (
        match untag ~peer:r.r_peer payload with
        | t, body when t = tag_record -> (
            match
              Archive.record_of_payload ~path:r.r_peer ~header:r.r_header ~expect_index:r.r_next_index body
            with
            | rec_ ->
                r.r_next_index <- r.r_next_index + 1;
                count_recv r body;
                `Record rec_
            | exception Error.Corrupt msg -> skip_or_raise r msg)
        | t, body when t = tag_end ->
            let c = Binio.cursor ~name:r.r_peer body in
            let count = Binio.get_u32 c in
            Binio.expect_end c;
            if count <> r.r_next_index then
              Error.corruptf "%s: end frame declares %d record slots but %d were streamed" r.r_peer count
                r.r_next_index;
            r.r_finished <- true;
            `End_of_stream
        | t, _ when t = tag_header -> Error.corruptf "%s: duplicate header frame mid-stream" r.r_peer
        | t, _ -> Error.corruptf "%s: unknown wire frame tag %C" r.r_peer t)

let close_receiver r =
  if not r.r_closed then begin
    r.r_closed <- true;
    r.r_close ()
  end

let source ?strict ?obs ?close ~peer ic =
  let r = open_receiver ?strict ?obs ?close ~peer ic in
  let next () =
    match recv r with
    | `Record rec_ -> `Record rec_
    | `Skipped msg -> `Skipped msg
    | `End_of_stream -> `End_of_archive
  in
  Source.make ~name:peer ~next ~close:(fun () -> close_receiver r)

(* --- telemetry streams --------------------------------------------------- *)

(* A second stream kind over the same preamble and frame discipline:
   'T' frames carrying one obs JSONL line each, no header frame (the
   trace's own "start" record is its header), same mandatory 'E' end
   frame.  Keeping the byte layout identical to the archive stream
   means the CRC/skip/truncation properties — and their tests — carry
   over wholesale. *)

let tag_telemetry = 'T'

type telemetry_sender = {
  ts_peer : string;
  ts_oc : out_channel;
  mutable ts_count : int;
  mutable ts_finished : bool;
}

let create_telemetry_sender ~peer oc =
  Error.wrap_io peer (fun () ->
      output_string oc magic;
      output_string oc (String.init 2 (fun i -> Char.chr ((version lsr (8 * i)) land 0xFF)));
      flush oc);
  { ts_peer = peer; ts_oc = oc; ts_count = 0; ts_finished = false }

let telemetry_send s line =
  if s.ts_finished then invalid_arg "Wire.telemetry_send: sender already finished";
  if String.length line = 0 then invalid_arg "Wire.telemetry_send: empty line";
  Frame.write ~path:s.ts_peer s.ts_oc (tagged tag_telemetry line);
  Error.wrap_io s.ts_peer (fun () -> flush s.ts_oc);
  s.ts_count <- s.ts_count + 1

let telemetry_count s = s.ts_count

let telemetry_finish s =
  if not s.ts_finished then begin
    s.ts_finished <- true;
    let b = Buffer.create 4 in
    Binio.put_u32 b s.ts_count;
    Frame.write ~path:s.ts_peer s.ts_oc (tagged tag_end (Buffer.contents b));
    Error.wrap_io s.ts_peer (fun () -> flush s.ts_oc)
  end

type telemetry_receiver = {
  tr_peer : string;
  tr_ic : in_channel;
  tr_strict : bool;
  tr_close : unit -> unit;
  mutable tr_next_index : int;
  mutable tr_skipped : int;
  mutable tr_finished : bool;
  mutable tr_closed : bool;
}

let open_telemetry_receiver ?(strict = false) ?(close = ignore) ~peer ic =
  let m = Error.wrap_io peer (fun () -> really_input_string ic (String.length magic)) in
  if m <> magic then Error.corruptf "%s: not a reveal wire stream (magic %S, expected %S)" peer m magic;
  let v = Error.wrap_io peer (fun () -> really_input_string ic 2) in
  let v = Char.code v.[0] lor (Char.code v.[1] lsl 8) in
  if v <> version then
    Error.corruptf "%s: unsupported wire version %d (this build speaks version %d)" peer v version;
  {
    tr_peer = peer;
    tr_ic = ic;
    tr_strict = strict;
    tr_close = close;
    tr_next_index = 0;
    tr_skipped = 0;
    tr_finished = false;
    tr_closed = false;
  }

let telemetry_skip_or_raise r msg =
  if r.tr_strict then Error.corruptf "%s: %s" r.tr_peer msg
  else begin
    r.tr_next_index <- r.tr_next_index + 1;
    r.tr_skipped <- r.tr_skipped + 1;
    `Skipped msg
  end

let telemetry_recv r =
  if r.tr_finished then `End_of_stream
  else
    match Frame.try_read ~path:r.tr_peer r.tr_ic with
    | `End ->
        Error.corruptf "%s: connection closed mid-stream after %d telemetry slots (no end frame)"
          r.tr_peer r.tr_next_index
    | `Bad_crc msg -> telemetry_skip_or_raise r msg
    | `Payload payload -> (
        match untag ~peer:r.tr_peer payload with
        | t, body when t = tag_telemetry ->
            r.tr_next_index <- r.tr_next_index + 1;
            `Line body
        | t, body when t = tag_end ->
            let c = Binio.cursor ~name:r.tr_peer body in
            let count = Binio.get_u32 c in
            Binio.expect_end c;
            if count <> r.tr_next_index then
              Error.corruptf "%s: end frame declares %d telemetry slots but %d were streamed"
                r.tr_peer count r.tr_next_index;
            r.tr_finished <- true;
            `End_of_stream
        | t, _ when t = tag_header ->
            Error.corruptf "%s: archive stream on a telemetry endpoint (header frame)" r.tr_peer
        | t, _ when t = tag_record ->
            Error.corruptf "%s: archive stream on a telemetry endpoint (record frame)" r.tr_peer
        | t, _ -> Error.corruptf "%s: unknown wire frame tag %C" r.tr_peer t)

let telemetry_skipped r = r.tr_skipped

let close_telemetry_receiver r =
  if not r.tr_closed then begin
    r.tr_closed <- true;
    r.tr_close ()
  end
