(** Error discipline of the [traceio] format family.

    Two failure classes, kept distinct on purpose:

    - {!Corrupt}: the bytes were read fine but do not form a valid
      archive — bad magic, unsupported version, checksum mismatch,
      truncation, out-of-range field.  The file is not trustworthy and
      no read path may fall back to "interpret it anyway".
    - {!Io}: the operating system refused — missing file, permissions,
      disk full.  The message always carries the offending path, so
      callers never see a bare [Sys_error "…"] with no context. *)

exception Corrupt of string
exception Io of string

val corruptf : ('a, unit, string, 'b) format4 -> 'a
(** Raise {!Corrupt} with a formatted message. *)

val iof : ('a, unit, string, 'b) format4 -> 'a
(** Raise {!Io} with a formatted message. *)

val wrap_io : string -> (unit -> 'a) -> 'a
(** [wrap_io path f] runs [f], rewriting [Sys_error] into {!Io}
    (prefixed with [path]) and [End_of_file] into {!Corrupt}. *)

val open_in_bin : string -> in_channel
(** [Stdlib.open_in_bin] with {!Io} errors carrying the path. *)

val open_out_bin : string -> out_channel
(** [Stdlib.open_out_bin] with {!Io} errors carrying the path. *)

val to_string : exn -> string
(** Human-readable rendering (CLI error reporting). *)
