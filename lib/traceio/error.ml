exception Corrupt of string
exception Io of string

let corruptf fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt
let iof fmt = Printf.ksprintf (fun s -> raise (Io s)) fmt

let wrap_io path f =
  try f () with
  | Sys_error msg ->
      (* Sys_error messages from open/read already start with the file name;
         avoid printing the path twice. *)
      let plen = String.length path in
      if String.length msg >= plen && String.sub msg 0 plen = path then raise (Io msg)
      else iof "%s: %s" path msg
  | End_of_file -> corruptf "%s: unexpected end of file" path

let open_in_bin path = wrap_io path (fun () -> Stdlib.open_in_bin path)
let open_out_bin path = wrap_io path (fun () -> Stdlib.open_out_bin path)

let to_string = function
  | Corrupt msg -> Printf.sprintf "corrupt archive: %s" msg
  | Io msg -> Printf.sprintf "i/o error: %s" msg
  | exn -> Printexc.to_string exn
