type event = [ `Record of Archive.record | `Skipped of string | `End_of_archive ]
type event_fv = [ `Record of Archive.record_fv | `Skipped of string | `End_of_archive ]

type t = {
  name : string;
  next : unit -> event;
  next_fv : unit -> event_fv;
  close : unit -> unit;
}

let name t = t.name
let next t = t.next ()
let next_fv t = t.next_fv ()
let close t = t.close ()

(* Backends that only produce boxed records get the conversion shim;
   the archive reader below overrides it with a native decode. *)
let fv_of_event : event -> event_fv = function
  | `Record r -> `Record (Archive.fv_of_record r)
  | `Skipped msg -> `Skipped msg
  | `End_of_archive -> `End_of_archive

let of_reader ?(strict = false) ~name reader =
  let next () =
    if strict then match Archive.next reader with Some r -> `Record r | None -> `End_of_archive
    else Archive.try_next reader
  in
  let next_fv () =
    if strict then match Archive.next_fv reader with Some r -> `Record r | None -> `End_of_archive
    else Archive.try_next_fv reader
  in
  { name; next; next_fv; close = (fun () -> Archive.close_reader reader) }

let of_archive ?strict ?obs path =
  of_reader ?strict ~name:path (Archive.open_reader ?obs path)

let of_records ~name records =
  let pos = ref 0 in
  let next () =
    if !pos >= Array.length records then `End_of_archive
    else begin
      let r = records.(!pos) in
      incr pos;
      `Record r
    end
  in
  let next_fv () = fv_of_event (next ()) in
  { name; next; next_fv; close = ignore }

let make ~name ~next ~close = { name; next; next_fv = (fun () -> fv_of_event (next ())); close }
let make_fv ~name ~next ~next_fv ~close = { name; next; next_fv; close }

let fold t f acc =
  let rec loop acc skipped =
    match t.next () with
    | `End_of_archive -> (acc, skipped)
    | `Skipped _ -> loop acc (skipped + 1)
    | `Record r -> loop (f acc r) skipped
  in
  Fun.protect ~finally:t.close (fun () -> loop acc 0)
