type event = [ `Record of Archive.record | `Skipped of string | `End_of_archive ]

type t = {
  name : string;
  next : unit -> event;
  close : unit -> unit;
}

let name t = t.name
let next t = t.next ()
let close t = t.close ()

let of_reader ?(strict = false) ~name reader =
  let next () =
    if strict then match Archive.next reader with Some r -> `Record r | None -> `End_of_archive
    else Archive.try_next reader
  in
  { name; next; close = (fun () -> Archive.close_reader reader) }

let of_archive ?strict ?obs path =
  of_reader ?strict ~name:path (Archive.open_reader ?obs path)

let of_records ~name records =
  let pos = ref 0 in
  let next () =
    if !pos >= Array.length records then `End_of_archive
    else begin
      let r = records.(!pos) in
      incr pos;
      `Record r
    end
  in
  { name; next; close = ignore }

let make ~name ~next ~close = { name; next; close }

let fold t f acc =
  let rec loop acc skipped =
    match t.next () with
    | `End_of_archive -> (acc, skipped)
    | `Skipped _ -> loop acc (skipped + 1)
    | `Record r -> loop (f acc r) skipped
  in
  Fun.protect ~finally:t.close (fun () -> loop acc 0)
