(** The fuzz campaign driver: plan -> worker pool -> verdicts ->
    signatures -> dedupe -> auto-minimized novel failures.

    Trials run as separate [exe trial] worker processes under
    {!Fabric.Orchestrator.run_pool} ([fail_fast = false], no retries —
    a crashed trial is a finding, not a flake).  A worker that exits
    cleanly reports its typed verdict through a JSON result file; one
    that crashes or blows the timeout is classified from the
    orchestrator's typed failure record alone, so log noise never
    reaches a signature.

    The batch is deterministic: outcomes are assembled in trial order,
    and for a fixed (master seed, trial count, work dir, executable)
    two runs produce byte-identical tables and summaries. *)

type status =
  | Passed  (** non-failure verdict *)
  | Novel  (** failure, first sighting — the fuzzer's product *)
  | Known  (** failure matching the known-signatures store *)
  | Duplicate  (** failure already surfaced earlier in this batch *)

type outcome = {
  o_trial : Plan.trial;
  o_verdict : Verdict.t;
  o_signature : string;
  o_status : status;
  o_archive : string option;  (** the recorded campaign, when the worker got that far *)
  o_minimized : (string * Minimize.report) option;  (** minimal archive + reduction report *)
  o_repro : string;  (** the one-line repro command *)
  o_log : string;  (** captured worker output path *)
  o_flight : string option;
      (** the worker's flight-recorder dump ([flight.jsonl] beside the
          verdict): the last obs events before a crash, or — for a
          timeout — what the SIGTERM handler managed to save in the
          orchestrator's grace window.  Only attached to failures. *)
}

type batch = {
  b_outcomes : outcome array;  (** one per trial, in trial order *)
  b_summary : (string * int) list;  (** verdict kind -> count, in {!kinds_in_order} *)
  b_novel : int;
  b_known : int;
  b_duplicate : int;
}

val kinds_in_order : string list

val run :
  ?minimize:bool ->
  exe:string ->
  work_dir:string ->
  workers:int ->
  timeout_s:float option ->
  known:Signature.store ->
  Plan.trial array ->
  batch
(** Execute the trials.  [exe] is the reveal CLI binary (workers are
    spawned as [exe trial ...] and repro lines quote it).  Per-trial
    artefacts live in [work_dir/trial-<id>/]: the recorded archive,
    the worker's result file and log, and — for a minimized novel
    failure — [min.rvt].  With [minimize] (default true) every novel
    failure that reproduces in-process is shrunk via
    {!Minimize.reduce}; timeouts and pre-archive crashes are reported
    unminimized.
    @raise Invalid_argument when [workers <= 0]. *)
