(** One trial, executed: record a faulted campaign archive, replay the
    attack over it, measure, classify.

    Trials deliberately attack from a recorded archive rather than the
    live device, so a trial's outcome is definitionally equal to a
    deterministic replay of its archive — the property the minimizer's
    bisection rests on.  (Live retries draw randomness a replay cannot
    reproduce; in replay an Unknown coefficient is always
    [Unrecoverable], consistently on both sides.) *)

val gate_of : Plan.gate_profile -> Reveal.Grading.gate

val effective_profile : Plan.gate_profile -> Reveal.Campaign.profile -> Reveal.Campaign.profile
(** [Aggressive] disables the profile's goodness-of-fit floors (its
    scenario is a pipeline without its out-of-distribution tripwire);
    the others return the profile unchanged. *)

val profile_for : Plan.trial -> Reveal.Campaign.profile
(** Build the trial's templates: fault-free clone device, seeded by
    the trial seed alone — any process rebuilds them bit-identically
    from the trial row.  Already passed through
    {!effective_profile}. *)

val record_archive : Plan.trial -> path:string -> unit
(** Capture the trial's faulted campaign ([traces] honest runs under
    {!Power.Fault.of_intensity}[ intensity]) into an archive. *)

val attack :
  ?obs:Obs.Ctx.t ->
  Plan.trial ->
  Reveal.Campaign.profile ->
  archive:string ->
  Reveal.Campaign.stats * Reveal.Campaign.coefficient_result array
(** Replay the attack over an archive in the trial's mode (strict
    segmenter = Classic, resilient = gated).  Single-domain: trials
    parallelise across orchestrator workers, not within.  [obs]
    threads into the campaign driver (heartbeats and stage spans) —
    the flight recorder's feed. *)

val measure : ?obs:Obs.Ctx.t -> Plan.trial -> Reveal.Campaign.profile -> archive:string -> Verdict.measurements
(** {!attack} plus the invariant checks (grade-count accounting,
    correct-vs-total bounds, result-array length, and — for
    zero-intensity resilient/default trials — bit-identity with the
    classic pipeline).  Violated invariants land in
    [m_violations] as stable identifiers. *)

val run : ?obs:Obs.Ctx.t -> ?archive:string -> Plan.trial -> Verdict.measurements
(** The whole trial: profile, record (into [archive] if given, else a
    temp file removed afterwards — a [trial.record] span with an
    enabled [obs]), measure.  Raises whatever the pipeline raises —
    the caller decides whether that is a crash verdict (fuzzer) or a
    reported error (CLI). *)

val record_and_measure : ?obs:Obs.Ctx.t -> Plan.trial -> archive:string -> Verdict.measurements
(** {!run} keeping the archive at [archive] — the worker entry
    point. *)

val replay_verdict : Plan.trial -> Reveal.Campaign.profile -> archive:string -> Verdict.t
(** The minimizer's probe: measure + classify, mapping any pipeline
    exception to its [Crash] family instead of raising (a candidate
    that crashes the pipeline reproduces a crash finding).  OS-level
    [Unix_error]s still raise. *)
