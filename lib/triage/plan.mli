(** The fuzzer's trial planner: one master seed, one table of
    scenarios.

    A trial is a complete, self-describing campaign scenario — fault
    intensity x sampler variant x campaign seed x segmenter mode x
    gate profile x sizes.  Every downstream artefact (worker argv,
    verdict signature, repro line, minimizer replay) is a pure
    function of the trial record, so reproducing a finding never
    needs the fuzzer's state, only this table's row (DESIGN.md
    section 14). *)

type gate_profile =
  | Default  (** {!Reveal.Grading.default_gate} *)
  | Aggressive
      (** thresholds floored and the profile's goodness-of-fit floors
          disabled: accepts garbage confidently — the planted-misgrade
          scenario *)
  | Paranoid  (** thresholds raised (0.99/0.5/0.9), deeper retry budget *)

type segmenter = Strict | Resilient

type trial = {
  id : int;  (** row in the plan — not part of the scenario identity *)
  variant : Riscv.Sampler_prog.variant;
  intensity : float;  (** {!Power.Fault.of_intensity} scale *)
  seed : int;  (** campaign + profiling seed *)
  segmenter : segmenter;
  gate : gate_profile;
  traces : int;
  n : int;  (** coefficients per run (pinned to {!trial_n}) *)
  per_value : int;  (** profiling windows per candidate value *)
}

val trial_n : int
(** 64: the smallest cheap n that still hosts every candidate value
    twice per profiling run (29 values need n >= 58). *)

val plan : master_seed:int -> trials:int -> trial array
(** Deterministic: same master seed, same table — and a longer table
    extends a shorter one (the stream is sequential, so trial [i] is
    identical for every [trials > i]).
    @raise Invalid_argument when [trials < 0]. *)

val describe : trial -> string
(** One stable line of [key=value] pairs (no paths, no timestamps). *)

val repro_command : ?archive:string -> exe:string -> trial -> string
(** The one-line repro contract: [exe trial --variant ... --seed ...];
    with [archive], the line replays that archive instead of
    re-recording ([--archive]). *)

val to_json : trial -> Obs.Json.t

(** {1 Field codecs} — shared by the CLI flags and the signature
    format, so the two can never drift. *)

val variant_to_string : Riscv.Sampler_prog.variant -> string
val variant_of_string : string -> Riscv.Sampler_prog.variant option
val gate_to_string : gate_profile -> string
val gate_of_string : string -> gate_profile option
val segmenter_to_string : segmenter -> string
val segmenter_of_string : string -> segmenter option
