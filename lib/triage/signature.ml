(* Stable fingerprints for verdicts, and the known-signatures file
   that separates "new bug" from "known bug" (the pquery-run
   known_bugs.strings idea).  A signature is built from typed scenario
   and verdict fields only — never trial ids, seeds, counts, paths or
   log text — so the same bug found under different seeds, on a
   different machine, or with noisier logs fingerprints identically. *)

module S = Set.Make (String)

let of_verdict t v =
  Printf.sprintf "%s variant=%s segmenter=%s gate=%s intensity=%g detail=%s" (Verdict.kind v)
    (Plan.variant_to_string t.Plan.variant)
    (Plan.segmenter_to_string t.Plan.segmenter)
    (Plan.gate_to_string t.Plan.gate)
    t.Plan.intensity (Verdict.detail v)

type store = S.t

let empty = S.empty
let mem store s = S.mem s store
let add store s = S.add s store
let of_list l = List.fold_left add empty l
let to_list store = S.elements store
let size = S.cardinal

let trim s =
  let is_space c = c = ' ' || c = '\t' || c = '\r' in
  let n = String.length s in
  let lo = ref 0 and hi = ref n in
  while !lo < n && is_space s.[!lo] do incr lo done;
  while !hi > !lo && is_space s.[!hi - 1] do decr hi done;
  String.sub s !lo (!hi - !lo)

(* One signature per line; blank lines and '#' comments for humans. *)
let load path =
  let ic = Traceio.Error.open_in_bin path in
  Fun.protect
    ~finally:(fun () -> try close_in ic with Sys_error _ -> ())
    (fun () ->
      let store = ref empty in
      (try
         while true do
           let line = trim (input_line ic) in
           if line <> "" && line.[0] <> '#' then store := add !store line
         done
       with End_of_file -> ());
      !store)

let load_opt path = if Sys.file_exists path then load path else empty

let save path store =
  Traceio.Error.wrap_io path (fun () ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          output_string oc "# reveal triage: known verdict signatures (one per line)\n";
          List.iter (fun s -> output_string oc (s ^ "\n")) (to_list store)))

let append path sigs =
  Traceio.Error.wrap_io path (fun () ->
      let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> List.iter (fun s -> output_string oc (s ^ "\n")) sigs))
