(* Deterministic corpus minimization: shrink a failing archive to the
   smallest record subset, then the smallest per-record sample span,
   that still reproduces the verdict.  Reproduction is whatever the
   [check] probe says — the loops below only ever propose candidates
   and keep the smallest accepted one, so the result reproduces by
   construction and the whole walk is a pure function of (src, check).

   Record removal is ddmin-shaped (chunked removal with rescan before
   halving); the span search is stepped greedy cuts from each end.  A
   plain bisection would be unsound for both: reproduction is not
   monotone in either the record set or the span. *)

type report = {
  original_records : int;
  kept : int list;
  span : (int * int) option;
  original_bytes : int;
  reduced_bytes : int;
  probes : int;
}

let reduce ~check ~work_dir ~src ~dst =
  let original_records = Traceio.Archive.with_reader src (fun r -> (Traceio.Archive.header r).Traceio.Archive.trace_count) in
  let original_bytes = Traceio.Archive.file_size src in
  if not (check src) then Error "the original archive does not reproduce the expected verdict"
  else begin
    let cand = Filename.concat work_dir "minimize-candidate.rvt" in
    let probes = ref 0 in
    let try_candidate ~keep ~span =
      ignore (Traceio.Archive.rewrite ~keep ?span ~src ~dst:cand ());
      incr probes;
      check cand
    in
    (* --- pass 1: smallest record subset --- *)
    let remove_chunk kept chunk =
      let n = List.length kept in
      let rec scan start =
        if start >= n then None
        else
          let c = List.filteri (fun i _ -> i < start || i >= start + chunk) kept in
          if try_candidate ~keep:c ~span:None then Some c else scan (start + chunk)
      in
      scan 0
    in
    let rec shrink_records kept chunk =
      if chunk = 0 then kept
      else if chunk >= List.length kept then shrink_records kept (chunk / 2)
      else
        match remove_chunk kept chunk with
        | Some c -> shrink_records c (min chunk (List.length c))
        | None -> shrink_records kept (chunk / 2)
    in
    let all = List.init original_records (fun i -> i) in
    let kept = shrink_records all (max 1 (original_records / 2)) in
    (* --- pass 2: smallest sample span, clamped per record --- *)
    ignore (Traceio.Archive.rewrite ~keep:kept ~src ~dst:cand ());
    let max_len =
      Traceio.Archive.fold cand
        (fun acc r -> max acc (Array.length r.Traceio.Archive.trace.Power.Ptrace.samples))
        0
    in
    let rec cut_hi (lo, hi) step =
      if step = 0 then (lo, hi)
      else if hi - step > lo && try_candidate ~keep:kept ~span:(Some (lo, hi - step)) then cut_hi (lo, hi - step) step
      else cut_hi (lo, hi) (step / 2)
    in
    let rec cut_lo (lo, hi) step =
      if step = 0 then (lo, hi)
      else if lo + step < hi && try_candidate ~keep:kept ~span:(Some (lo + step, hi)) then cut_lo (lo + step, hi) step
      else cut_lo (lo, hi) (step / 2)
    in
    let full = (0, max_len) in
    let after_hi = cut_hi full (max_len / 2) in
    let lo, hi = cut_lo after_hi ((snd after_hi - fst after_hi) / 2) in
    let span = if (lo, hi) = full then None else Some (lo, hi) in
    (* --- emit and re-verify the minimal archive --- *)
    ignore (Traceio.Archive.rewrite ~keep:kept ?span ~src ~dst ());
    (try Sys.remove cand with Sys_error _ -> ());
    if not (check dst) then Error "internal: the minimized archive stopped reproducing (non-deterministic check?)"
    else
      Ok
        {
          original_records;
          kept;
          span;
          original_bytes;
          reduced_bytes = Traceio.Archive.file_size dst;
          probes = !probes;
        }
  end

let describe r =
  Printf.sprintf "%d/%d record(s) kept%s, %d -> %d bytes (%d probes)" (List.length r.kept) r.original_records
    (match r.span with None -> "" | Some (lo, hi) -> Printf.sprintf ", samples cropped to [%d,%d)" lo hi)
    r.original_bytes r.reduced_bytes r.probes

let to_json r =
  Obs.Json.Obj
    [
      ("original_records", Obs.Json.Int r.original_records);
      ("kept_records", Obs.Json.List (List.map (fun i -> Obs.Json.Int i) r.kept));
      ( "span",
        match r.span with
        | None -> Obs.Json.Null
        | Some (lo, hi) -> Obs.Json.List [ Obs.Json.Int lo; Obs.Json.Int hi ] );
      ("original_bytes", Obs.Json.Int r.original_bytes);
      ("reduced_bytes", Obs.Json.Int r.reduced_bytes);
      ("probes", Obs.Json.Int r.probes);
    ]
