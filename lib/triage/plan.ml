(* The trial planner: one master seed expands into a table of randomized
   campaign scenarios.  Everything downstream — the fuzzer's worker argv,
   the repro line a novel failure prints, the minimizer's replay — is a
   pure function of one trial record, so the table IS the experiment. *)

type gate_profile = Default | Aggressive | Paranoid
type segmenter = Strict | Resilient

type trial = {
  id : int;
  variant : Riscv.Sampler_prog.variant;
  intensity : float;
  seed : int;
  segmenter : segmenter;
  gate : gate_profile;
  traces : int;
  n : int;
  per_value : int;
}

let variant_to_string = function
  | Riscv.Sampler_prog.Vulnerable -> "v32"
  | Riscv.Sampler_prog.Branchless -> "v36"
  | Riscv.Sampler_prog.Shuffled -> "shuffled"
  | Riscv.Sampler_prog.Cdt_table -> "cdt"

let variant_of_string = function
  | "v32" -> Some Riscv.Sampler_prog.Vulnerable
  | "v36" -> Some Riscv.Sampler_prog.Branchless
  | "shuffled" -> Some Riscv.Sampler_prog.Shuffled
  | "cdt" -> Some Riscv.Sampler_prog.Cdt_table
  | _ -> None

let gate_to_string = function Default -> "default" | Aggressive -> "aggressive" | Paranoid -> "paranoid"

let gate_of_string = function
  | "default" -> Some Default
  | "aggressive" -> Some Aggressive
  | "paranoid" -> Some Paranoid
  | _ -> None

let segmenter_to_string = function Strict -> "strict" | Resilient -> "resilient"

let segmenter_of_string = function
  | "strict" -> Some Strict
  | "resilient" -> Some Resilient
  | _ -> None

(* The sampling space.  n is pinned: profiling needs every candidate
   value to appear twice per run (n >= 58 for the 29-value table), and
   64 keeps trials cheap without changing the shapes under test. *)
let trial_n = 64
let intensities = [| 0.0; 0.25; 0.5; 0.75; 1.0; 1.5 |]
let per_values = [| 24; 32; 40 |]
let gates = [| Default; Aggressive; Paranoid |]

let variants =
  [|
    Riscv.Sampler_prog.Vulnerable;
    Riscv.Sampler_prog.Branchless;
    Riscv.Sampler_prog.Shuffled;
    Riscv.Sampler_prog.Cdt_table;
  |]

(* Strict segmentation under fault load mostly dies outright (that is
   its contract), so it gets a minority share — enough to keep the
   crash-triage path honest without drowning the grading scenarios. *)
let segmenters = [| Resilient; Resilient; Resilient; Strict |]

let pick rng arr = arr.(Mathkit.Prng.int rng (Array.length arr))

(* Fields draw in a fixed order from one sequential stream, so the
   table is deterministic in the master seed and a longer run's table
   extends a shorter one's (prefix property — rerunning with more
   trials revisits exactly the old scenarios first). *)
let plan ~master_seed ~trials =
  if trials < 0 then invalid_arg "Plan.plan: trials must be non-negative";
  let rng = Mathkit.Prng.create ~seed:(Int64.of_int master_seed) () in
  Array.init trials (fun id ->
      let variant = pick rng variants in
      let intensity = pick rng intensities in
      let seed = Mathkit.Prng.int rng 1_000_000 in
      let segmenter = pick rng segmenters in
      let gate = pick rng gates in
      let traces = 1 + Mathkit.Prng.int rng 2 in
      let per_value = pick rng per_values in
      { id; variant; intensity; seed; segmenter; gate; traces; n = trial_n; per_value })

let describe t =
  Printf.sprintf "variant=%s intensity=%g seed=%d segmenter=%s gate=%s traces=%d per-value=%d n=%d"
    (variant_to_string t.variant) t.intensity t.seed (segmenter_to_string t.segmenter) (gate_to_string t.gate)
    t.traces t.per_value t.n

(* The repro contract (README "Fuzzing & triage"): this one line,
   pasted into a shell, re-runs the scenario in-process and exits
   nonzero iff the verdict is a failure. *)
let repro_command ?archive ~exe t =
  Printf.sprintf "%s trial --variant %s --intensity %g --seed %d --segmenter %s --gate %s --traces %d --per-value %d%s"
    exe (variant_to_string t.variant) t.intensity t.seed (segmenter_to_string t.segmenter) (gate_to_string t.gate)
    t.traces t.per_value
    (match archive with None -> "" | Some a -> " --archive " ^ Filename.quote a)

let to_json t =
  Obs.Json.Obj
    [
      ("id", Obs.Json.Int t.id);
      ("variant", Obs.Json.String (variant_to_string t.variant));
      ("intensity", Obs.Json.Float t.intensity);
      ("seed", Obs.Json.Int t.seed);
      ("segmenter", Obs.Json.String (segmenter_to_string t.segmenter));
      ("gate", Obs.Json.String (gate_to_string t.gate));
      ("traces", Obs.Json.Int t.traces);
      ("n", Obs.Json.Int t.n);
      ("per_value", Obs.Json.Int t.per_value);
    ]
