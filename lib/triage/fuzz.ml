(* The fuzz campaign: expand the plan, run every trial as a worker
   process under the orchestrator pool, classify, fingerprint, dedupe
   against the known store, and auto-minimize what is genuinely new.
   Everything here folds over arrays in trial order, so the batch —
   table, summary, novel list — is byte-deterministic for a fixed
   (master seed, trial count, work dir, executable). *)

type status = Passed | Novel | Known | Duplicate

type outcome = {
  o_trial : Plan.trial;
  o_verdict : Verdict.t;
  o_signature : string;
  o_status : status;
  o_archive : string option;  (** the trial's recorded campaign, when the worker got that far *)
  o_minimized : (string * Minimize.report) option;
  o_repro : string;
  o_log : string;  (** the attempt's captured output, for diagnosis *)
  o_flight : string option;  (** the worker's flight-recorder dump, for failures that left one *)
}

type batch = {
  b_outcomes : outcome array;  (** one per trial, in trial order *)
  b_summary : (string * int) list;  (** verdict kind -> count, fixed kind order *)
  b_novel : int;
  b_known : int;
  b_duplicate : int;
}

let kinds_in_order = [ "bit-exact"; "degraded-hints"; "misgrade"; "invariant-violation"; "crash"; "timeout" ]

let mkdir_p path = try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()

let read_file path =
  let ic = Traceio.Error.open_in_bin path in
  Fun.protect
    ~finally:(fun () -> try close_in ic with Sys_error _ -> ())
    (fun () -> really_input_string ic (in_channel_length ic))

(* A worker that never produced measurements left only its typed
   failure record; normalise that into the crash/timeout verdicts.
   Details come from the typed status, never from log text. *)
let verdict_of_failures = function
  | [] -> Verdict.Crash "never-started"
  | failures -> (
      let last = List.nth failures (List.length failures - 1) in
      match last.Fabric.Orchestrator.f_status with
      | Fabric.Orchestrator.Timed_out t -> Verdict.Timeout t
      | Fabric.Orchestrator.Exited 0 -> Verdict.Crash "bad-result"
      | Fabric.Orchestrator.Exited c -> Verdict.Crash (Printf.sprintf "exit-%d" c)
      | Fabric.Orchestrator.Signaled _ ->
          let s = Fabric.Orchestrator.status_to_string last.Fabric.Orchestrator.f_status in
          Verdict.Crash (String.map (fun c -> if c = ' ' then '-' else Char.lowercase_ascii c) s))

let trial_argv ~exe ~archive ~out ~flight t =
  Array.of_list
    [
      exe;
      "trial";
      "--variant";
      Plan.variant_to_string t.Plan.variant;
      "--intensity";
      Printf.sprintf "%g" t.Plan.intensity;
      "--seed";
      string_of_int t.Plan.seed;
      "--segmenter";
      Plan.segmenter_to_string t.Plan.segmenter;
      "--gate";
      Plan.gate_to_string t.Plan.gate;
      "--traces";
      string_of_int t.Plan.traces;
      "--per-value";
      string_of_int t.Plan.per_value;
      "--archive-out";
      archive;
      "--out";
      out;
      "--flight";
      flight;
    ]

(* Auto-minimization re-derives the expected verdict by an in-process
   replay of the trial's archive — the same deterministic computation
   the worker ran, crash families included (the worker maps pipeline
   exceptions exactly as {!Runner.replay_verdict} does).  A failure
   that does not reproduce in-process (a timeout, a crash before the
   archive finished) is reported unminimized. *)
let try_minimize t ~trial_dir ~archive =
  match archive with
  | None -> None
  | Some src -> (
      match Traceio.Archive.with_reader src Traceio.Archive.header with
      | exception (Traceio.Error.Corrupt _ | Traceio.Error.Io _) -> None
      | _ -> (
          let prof = Runner.profile_for t in
          let expected = Runner.replay_verdict t prof ~archive:src in
          if not (Verdict.is_failure expected) then None
          else
            let check path = Verdict.same_failure (Runner.replay_verdict t prof ~archive:path) expected in
            let dst = Filename.concat trial_dir "min.rvt" in
            match Minimize.reduce ~check ~work_dir:trial_dir ~src ~dst with
            | Ok report -> Some (dst, report)
            | Error _ -> None))

let run ?(minimize = true) ~exe ~work_dir ~workers ~timeout_s ~known trials =
  if workers <= 0 then invalid_arg "Fuzz.run: workers must be positive";
  mkdir_p work_dir;
  let count = Array.length trials in
  let dir id = Filename.concat work_dir (Printf.sprintf "trial-%d" id) in
  Array.iter (fun (t : Plan.trial) -> mkdir_p (dir t.Plan.id)) trials;
  let archive_path id = Filename.concat (dir id) "campaign.rvt" in
  let flight_path id = Filename.concat (dir id) "flight.jsonl" in
  let jobs =
    {
      Fabric.Orchestrator.job_count = count;
      command =
        (fun ~job ~attempt:_ ~out ~log:_ ->
          trial_argv ~exe ~archive:(archive_path job) ~out ~flight:(flight_path job) trials.(job));
      out_path = (fun ~job -> Filename.concat (dir job) "result.json");
      log_path = (fun ~job ~attempt -> Filename.concat (dir job) (Printf.sprintf "attempt-%d.log" attempt));
      collect =
        (fun ~job:_ ~out ->
          match Obs.Json.parse (read_file out) with
          | Error e -> Error ("result file does not parse: " ^ e)
          | Ok j -> (
              match Option.bind (Obs.Json.member "verdict" j) Verdict.of_json with
              | Some v -> Ok v
              | None -> Error "result file lacks a verdict"));
    }
  in
  let pool = { Fabric.Orchestrator.max_inflight = workers; retries = 0; timeout_s; fail_fast = false } in
  let r = Fabric.Orchestrator.run_pool pool jobs in
  (* classification + dedupe fold, strictly in trial order *)
  let seen = ref known in
  let outcomes =
    Array.mapi
      (fun id outcome ->
        let t = trials.(id) in
        let verdict, log =
          match outcome with
          | Ok v -> (v, jobs.Fabric.Orchestrator.log_path ~job:id ~attempt:0)
          | Error fs ->
              ( verdict_of_failures fs,
                match fs with [] -> "" | f :: _ -> f.Fabric.Orchestrator.f_log )
        in
        let signature = Signature.of_verdict t verdict in
        let status =
          if not (Verdict.is_failure verdict) then Passed
          else if Signature.mem known signature then Known
          else if Signature.mem !seen signature then Duplicate
          else begin
            seen := Signature.add !seen signature;
            Novel
          end
        in
        let archive =
          let p = archive_path id in
          if Sys.file_exists p then Some p else None
        in
        let minimized = if status = Novel && minimize then try_minimize t ~trial_dir:(dir id) ~archive else None in
        (* the flight dump only matters for failures: a clean trial's
           final moments are its result file *)
        let flight =
          let p = flight_path id in
          if Verdict.is_failure verdict && Sys.file_exists p then Some p else None
        in
        {
          o_trial = t;
          o_verdict = verdict;
          o_signature = signature;
          o_status = status;
          o_archive = archive;
          o_minimized = minimized;
          o_repro = Plan.repro_command ~exe t;
          o_log = log;
          o_flight = flight;
        })
      r.Fabric.Orchestrator.outcomes
  in
  let count_kind k = Array.fold_left (fun acc o -> if Verdict.kind o.o_verdict = k then acc + 1 else acc) 0 outcomes in
  let count_status s = Array.fold_left (fun acc o -> if o.o_status = s then acc + 1 else acc) 0 outcomes in
  {
    b_outcomes = outcomes;
    b_summary = List.map (fun k -> (k, count_kind k)) kinds_in_order;
    b_novel = count_status Novel;
    b_known = count_status Known;
    b_duplicate = count_status Duplicate;
  }
