(** The verdict taxonomy: what one fuzz trial's campaign outcome means.

    Classification is a total, ordered function of the trial's
    measured aggregates — invariant violations dominate grading
    questions, a misgrade dominates mere degradation — so equal
    scenarios yield equal verdicts everywhere.  [Crash] and [Timeout]
    are assigned by the fuzzer from the orchestrator's typed failure
    records (a worker that produced them never wrote measurements). *)

type measurements = {
  m_confident : int;
  m_tentative : int;
  m_sign_only : int;
  m_unknown : int;
  m_value_correct : int;
  m_value_total : int;
  m_sign_correct : int;
  m_sign_total : int;
  m_confident_wrong : int;  (** graded Confident yet sign wrong — the cardinal sin *)
  m_corrupt_skipped : int;
  m_results : int;  (** result-array length *)
  m_violations : string list;  (** violated invariant names, stable identifiers *)
}

type t =
  | Bit_exact
      (** the clean-run product intact: every coefficient's sign
          recovered, none lost to corruption or demoted to Unknown.
          (Exact values are only partially recoverable even on an
          honest device, so they don't gate this verdict.) *)
  | Degraded_hints  (** survived, but lost coefficients or signs — the expected fault response *)
  | Misgrade of int  (** coefficients graded Confident with a wrong sign: the gate lied *)
  | Invariant_violation of string  (** the pipeline broke its own accounting *)
  | Crash of string  (** worker exit/signal or exception family *)
  | Timeout of float  (** killed after this wall-clock budget *)

val classify : measurements -> t
(** Never returns [Crash] or [Timeout]. *)

val is_failure : t -> bool
(** Misgrade / invariant-violation / crash / timeout. *)

val kind : t -> string
(** Stable kebab-case tag, the signature's first token. *)

val detail : t -> string
(** The failure's shape, never its size: misgrades of 3 and of 7
    coefficients share a detail.  Crash details carry the status or
    exception family only — no message text — so signatures are stable
    under log noise. *)

val same_failure : t -> t -> bool
(** Equal [kind] and [detail] — the minimizer's reproduction test. *)

val crash_of_exn : exn -> t
(** Map an in-process replay exception to its [Crash] family. *)

val to_string : t -> string

(** {1 Codecs} — the worker's result file and [--json] output. *)

val to_json : t -> Obs.Json.t
val of_json : Obs.Json.t -> t option
val measurements_to_json : measurements -> Obs.Json.t
val measurements_of_json : Obs.Json.t -> measurements option
