(* Execute one trial.  The scenario always attacks FROM a recorded
   archive — the worker records the faulted campaign first, then
   replays it — so a trial's outcome is identical to a deterministic
   replay of its archive, which is exactly what the minimizer bisects
   over.  (A live campaign's retry ladder would draw fresh randomness
   the replay cannot, and the two paths would disagree.) *)

let gate_of = function
  | Plan.Default -> Reveal.Grading.default_gate
  | Plan.Aggressive ->
      { Reveal.Grading.confident_threshold = 0.3; tentative_threshold = 0.0; sign_only_threshold = 0.2; retry_budget = 0 }
  | Plan.Paranoid ->
      { Reveal.Grading.confident_threshold = 0.99; tentative_threshold = 0.5; sign_only_threshold = 0.9; retry_budget = 3 }

(* The Aggressive profile also drops the goodness-of-fit floors: they
   are the out-of-distribution tripwire, and the misgrade scenario is
   precisely a pipeline that lost its tripwire. *)
let effective_profile gate prof =
  match gate with
  | Plan.Aggressive -> { prof with Reveal.Campaign.sign_fit_floor = neg_infinity; value_fit_floor = neg_infinity }
  | Plan.Default | Plan.Paranoid -> prof

(* Profiling is fault-free (templates model the honest device) and
   seeded by the trial seed alone, so any process — worker, fuzzer,
   minimizer — rebuilds bit-identical templates from the trial row. *)
let profile_for t =
  let device = Reveal.Device.create ~variant:t.Plan.variant ~n:t.Plan.n () in
  let rng = Mathkit.Prng.create ~seed:(Int64.of_int t.Plan.seed) () in
  effective_profile t.Plan.gate (Reveal.Campaign.profile ~per_value:t.Plan.per_value device rng)

let record_archive t ~path =
  let device =
    Reveal.Device.create ~variant:t.Plan.variant ~fault:(Power.Fault.of_intensity t.Plan.intensity) ~n:t.Plan.n ()
  in
  let rng = Mathkit.Prng.create ~seed:(Int64.of_int t.Plan.seed) () in
  let scope_rng = Mathkit.Prng.split rng and sampler_rng = Mathkit.Prng.split rng in
  Reveal.Device.record device ~path ~seed:(Int64.of_int t.Plan.seed) ~traces:t.Plan.traces ~scope_rng ~sampler_rng

let mode_of t =
  match t.Plan.segmenter with
  | Plan.Strict -> Reveal.Campaign.Classic
  | Plan.Resilient -> Reveal.Campaign.Resilient (gate_of t.Plan.gate)

let attack ?(obs = Obs.Ctx.disabled) t prof ~archive =
  (* one domain: trials are tiny and run many-per-machine under the
     orchestrator; nested domain pools would only fight each other *)
  Reveal.Campaign.run_source ~obs ~expected:(t.Plan.traces * t.Plan.n) ~domains:1 ~mode:(mode_of t)
    prof
    (Reveal.Source.archive_replay archive)

let measure ?obs t prof ~archive =
  let stats, results = attack ?obs t prof ~archive in
  let confident, tentative, sign_only, unknown = Reveal.Campaign.grade_counts results in
  let violations = ref [] in
  let check name ok = if not ok then violations := name :: !violations in
  let nresults = Array.length results in
  check "grade-counts-sum" (confident + tentative + sign_only + unknown = nresults);
  check "correct-exceeds-total"
    (stats.Reveal.Campaign.value_correct <= stats.Reveal.Campaign.value_total
    && stats.Reveal.Campaign.sign_correct <= stats.Reveal.Campaign.sign_total);
  check "results-length"
    (nresults = (t.Plan.traces - stats.Reveal.Campaign.corrupt_skipped) * t.Plan.n);
  (* The repo's oldest promise: at zero fault intensity the resilient
     stack under the default gate is bit-identical to the classic
     pipeline.  Cheap to re-check per trial, and the one invariant
     that catches a quietly diverging retry ladder. *)
  if t.Plan.intensity = 0.0 && t.Plan.segmenter = Plan.Resilient && t.Plan.gate = Plan.Default then begin
    let classic =
      Reveal.Campaign.run_source ~domains:1 ~mode:Reveal.Campaign.Classic prof
        (Reveal.Source.archive_replay archive)
    in
    check "zero-intensity-divergence" (Stdlib.compare classic (stats, results) = 0)
  end;
  {
    Verdict.m_confident = confident;
    m_tentative = tentative;
    m_sign_only = sign_only;
    m_unknown = unknown;
    m_value_correct = stats.Reveal.Campaign.value_correct;
    m_value_total = stats.Reveal.Campaign.value_total;
    m_sign_correct = stats.Reveal.Campaign.sign_correct;
    m_sign_total = stats.Reveal.Campaign.sign_total;
    m_confident_wrong = Reveal.Campaign.confident_mismatches results;
    m_corrupt_skipped = stats.Reveal.Campaign.corrupt_skipped;
    m_results = nresults;
    m_violations = List.rev !violations;
  }

let run ?(obs = Obs.Ctx.disabled) ?archive t =
  let prof = profile_for t in
  match archive with
  | Some path -> measure ~obs t prof ~archive:path
  | None ->
      let path = Filename.temp_file "reveal_trial" ".rvt" in
      Fun.protect
        ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
        (fun () ->
          Obs.Ctx.span obs "trial.record" (fun () -> record_archive t ~path);
          measure ~obs t prof ~archive:path)

let record_and_measure ?(obs = Obs.Ctx.disabled) t ~archive =
  let prof = profile_for t in
  Obs.Ctx.span obs "trial.record" (fun () -> record_archive t ~path:archive);
  measure ~obs t prof ~archive

(* The minimizer's probe: never raises — an exception IS a verdict
   (the crash family), because a candidate archive that crashes the
   pipeline reproduces a crash finding. *)
let replay_verdict t prof ~archive =
  match measure t prof ~archive with
  | m -> Verdict.classify m
  | exception (Unix.Unix_error _ as e) -> raise e
  | exception e -> Verdict.crash_of_exn e
