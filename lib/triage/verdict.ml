(* Typed outcomes for one trial.  The classification rules are fixed
   and ordered — invariant violations dominate grading questions, a
   misgrade dominates mere degradation — so one measurement record
   maps to exactly one verdict, and equal scenarios map to equal
   verdicts on every machine. *)

type measurements = {
  m_confident : int;
  m_tentative : int;
  m_sign_only : int;
  m_unknown : int;
  m_value_correct : int;
  m_value_total : int;
  m_sign_correct : int;
  m_sign_total : int;
  m_confident_wrong : int;
  m_corrupt_skipped : int;
  m_results : int;
  m_violations : string list;
}

type t =
  | Bit_exact
  | Degraded_hints
  | Misgrade of int  (* confidently-wrong-sign coefficient count *)
  | Invariant_violation of string
  | Crash of string  (* exit/signal/exception family — no message text *)
  | Timeout of float

(* Calibration note: the clean pipeline recovers every SIGN but only a
   fraction of exact values (the paper's own Table IV shape), so the
   pass/fail line is drawn on signs.  Bit_exact = the attack's full
   clean-run product: every coefficient's sign recovered, none lost to
   corruption or demoted to Unknown.  Misgrade = the gate vouched
   (Confident) for a wrong sign — never happens on an honest run. *)
let classify m =
  match m.m_violations with
  | v :: _ -> Invariant_violation v
  | [] ->
      if m.m_confident_wrong > 0 then Misgrade m.m_confident_wrong
      else if
        m.m_sign_total > 0
        && m.m_sign_correct = m.m_sign_total
        && m.m_unknown = 0 && m.m_corrupt_skipped = 0
      then Bit_exact
      else Degraded_hints

let is_failure = function
  | Misgrade _ | Invariant_violation _ | Crash _ | Timeout _ -> true
  | Bit_exact | Degraded_hints -> false

(* The signature's detail field: the failure's shape, never its size —
   a misgrade of 3 coefficients and of 7 are the same bug. *)
let detail = function
  | Bit_exact -> "bit-exact"
  | Degraded_hints -> "degraded"
  | Misgrade _ -> "confident-wrong-sign"
  | Invariant_violation v -> v
  | Crash s -> s
  | Timeout _ -> "timeout"

let kind = function
  | Bit_exact -> "bit-exact"
  | Degraded_hints -> "degraded-hints"
  | Misgrade _ -> "misgrade"
  | Invariant_violation _ -> "invariant-violation"
  | Crash _ -> "crash"
  | Timeout _ -> "timeout"

let same_failure a b = kind a = kind b && detail a = detail b

let to_string = function
  | Bit_exact -> "bit-exact"
  | Degraded_hints -> "degraded-hints"
  | Misgrade k -> Printf.sprintf "misgrade (%d confident signs wrong)" k
  | Invariant_violation v -> Printf.sprintf "invariant-violation (%s)" v
  | Crash s -> Printf.sprintf "crash (%s)" s
  | Timeout t -> Printf.sprintf "timeout (%.1fs)" t

(* The exception family, not its message: signatures must survive
   log-noise (paths, counts, offsets embedded in messages). *)
let crash_of_exn = function
  | Failure _ -> Crash "exception-failure"
  | Invalid_argument _ -> Crash "exception-invalid-argument"
  | Traceio.Error.Corrupt _ -> Crash "exception-corrupt"
  | Traceio.Error.Io _ -> Crash "exception-io"
  | Assert_failure _ -> Crash "exception-assert"
  | Not_found -> Crash "exception-not-found"
  | Division_by_zero -> Crash "exception-division-by-zero"
  | Out_of_memory -> Crash "exception-out-of-memory"
  | Stack_overflow -> Crash "exception-stack-overflow"
  | _ -> Crash "exception-other"

(* --- worker result codec ------------------------------------------------- *)

let measurements_to_json m =
  Obs.Json.Obj
    [
      ("confident", Obs.Json.Int m.m_confident);
      ("tentative", Obs.Json.Int m.m_tentative);
      ("sign_only", Obs.Json.Int m.m_sign_only);
      ("unknown", Obs.Json.Int m.m_unknown);
      ("value_correct", Obs.Json.Int m.m_value_correct);
      ("value_total", Obs.Json.Int m.m_value_total);
      ("sign_correct", Obs.Json.Int m.m_sign_correct);
      ("sign_total", Obs.Json.Int m.m_sign_total);
      ("confident_wrong", Obs.Json.Int m.m_confident_wrong);
      ("corrupt_skipped", Obs.Json.Int m.m_corrupt_skipped);
      ("results", Obs.Json.Int m.m_results);
      ("violations", Obs.Json.List (List.map (fun v -> Obs.Json.String v) m.m_violations));
    ]

let to_json v =
  let base = [ ("kind", Obs.Json.String (kind v)) ] in
  Obs.Json.Obj
    (match v with
    | Bit_exact | Degraded_hints -> base
    | Misgrade k -> base @ [ ("confident_wrong", Obs.Json.Int k) ]
    | Invariant_violation d -> base @ [ ("detail", Obs.Json.String d) ]
    | Crash d -> base @ [ ("detail", Obs.Json.String d) ]
    | Timeout t -> base @ [ ("seconds", Obs.Json.Float t) ])

let of_json j =
  let str k = Option.bind (Obs.Json.member k j) Obs.Json.to_string_opt in
  match str "kind" with
  | Some "bit-exact" -> Some Bit_exact
  | Some "degraded-hints" -> Some Degraded_hints
  | Some "misgrade" ->
      Some (Misgrade (Option.value ~default:1 (Option.bind (Obs.Json.member "confident_wrong" j) Obs.Json.to_int_opt)))
  | Some "invariant-violation" -> Option.map (fun d -> Invariant_violation d) (str "detail")
  | Some "crash" -> Option.map (fun d -> Crash d) (str "detail")
  | Some "timeout" ->
      Some (Timeout (Option.value ~default:0.0 (Option.bind (Obs.Json.member "seconds" j) Obs.Json.to_float_opt)))
  | _ -> None

let measurements_of_json j =
  let int k = Option.bind (Obs.Json.member k j) Obs.Json.to_int_opt in
  match
    ( int "confident",
      int "tentative",
      int "sign_only",
      int "unknown",
      int "value_correct",
      int "value_total" )
  with
  | Some c, Some t, Some s, Some u, Some vc, Some vt ->
      let d k = Option.value ~default:0 (int k) in
      let violations =
        match Obs.Json.member "violations" j with
        | Some (Obs.Json.List l) -> List.filter_map Obs.Json.to_string_opt l
        | _ -> []
      in
      Some
        {
          m_confident = c;
          m_tentative = t;
          m_sign_only = s;
          m_unknown = u;
          m_value_correct = vc;
          m_value_total = vt;
          m_sign_correct = d "sign_correct";
          m_sign_total = d "sign_total";
          m_confident_wrong = d "confident_wrong";
          m_corrupt_skipped = d "corrupt_skipped";
          m_results = d "results";
          m_violations = violations;
        }
  | _ -> None
