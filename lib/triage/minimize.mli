(** Deterministic trace-corpus minimizer (the reducer.sh half of the
    triage flow).

    Shrinks a failing archive in two passes: first the smallest record
    subset (ddmin-shaped chunk removal — rescan on success, halve on a
    full failed scan), then the smallest per-record sample span
    (stepped greedy cuts from the top, then the bottom, halving the
    step on rejection).  Plain bisection would be unsound for both
    passes — reproduction is not monotone in the record set or the
    span — so every candidate is independently verified by the [check]
    probe and only accepted candidates survive.

    The walk is a pure function of [(src, check)]: same archive, same
    probe, same minimal result, byte for byte. *)

type report = {
  original_records : int;
  kept : int list;  (** original record indices kept, ascending *)
  span : (int * int) option;  (** final sample crop, [None] = full traces *)
  original_bytes : int;
  reduced_bytes : int;
  probes : int;  (** candidate archives tested *)
}

val reduce :
  check:(string -> bool) ->
  work_dir:string ->
  src:string ->
  dst:string ->
  (report, string) result
(** Minimize [src] into [dst].  [check path] must answer "does this
    candidate archive still reproduce the expected verdict?" — build
    it from {!Runner.replay_verdict} + {!Verdict.same_failure} with a
    profile constructed once.  Candidates are staged in [work_dir].
    [Error] when [src] itself does not reproduce (nothing to
    minimize), or when the re-verified [dst] fails — which can only
    mean the probe is not deterministic. *)

val describe : report -> string
val to_json : report -> Obs.Json.t
