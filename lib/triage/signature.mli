(** Verdict fingerprints and the known-signatures store.

    A signature is one stable text line built from typed scenario and
    verdict fields only — kind, variant, segmenter, gate, intensity,
    detail.  Trial ids, seeds, counts, file paths and log text are
    deliberately excluded: the same bug found under a different seed
    or with noisier logs must fingerprint identically, and a line
    committed to a known-signatures file must keep matching across
    machines and runs (the pquery-run [known_bugs.strings]
    discipline). *)

val of_verdict : Plan.trial -> Verdict.t -> string
(** e.g. [misgrade variant=v32 segmenter=resilient gate=aggressive
    intensity=0.75 detail=confident-wrong-sign]. *)

type store

val empty : store
val of_list : string list -> store
val mem : store -> string -> bool
val add : store -> string -> store
val to_list : store -> string list
(** Sorted — rendering a store is deterministic. *)

val size : store -> int

val load : string -> store
(** Parse a known-signatures file: one signature per line, blank lines
    and [#] comments ignored, surrounding whitespace trimmed.
    @raise Traceio.Error.Io when the file cannot be read. *)

val load_opt : string -> store
(** {!load}, or {!empty} when the file does not exist. *)

val save : string -> store -> unit
(** Write the store (sorted, with a header comment). *)

val append : string -> string list -> unit
(** Append signatures to a known-signatures file, creating it if
    missing — how a triaged novel failure graduates to known. *)
