(* Concrete Pipeline.SOURCE instances.  The live source pre-draws one
   (scope, sampler) seed pair per trace from the campaign generators —
   at construction time, in trace order — so the randomness a campaign
   consumes is independent of batching, domain count, or how far the
   driver actually pulls. *)

let live_item ~retry device index (scope_seed, sampler_seed) =
  {
    Pipeline.index;
    acquire =
      (fun () ->
        let scope_rng = Mathkit.Prng.create ~seed:scope_seed () in
        let sampler_rng = Mathkit.Prng.create ~seed:sampler_seed () in
        let run = Device.run_gaussian device ~scope_rng ~sampler_rng in
        let remeasure =
          if not retry then None
          else begin
            (* The retry stream is carved from a separate generator, so
               a campaign that needs no retries consumes its randomness
               exactly like one with retries disabled. *)
            let retry_master = Mathkit.Prng.create ~seed:(Int64.logxor scope_seed Constants.retry_seed_salt) () in
            Some
              (fun _attempt ->
                let rng = Mathkit.Prng.split retry_master in
                let draws = Array.map (fun v -> Device.profiling_draw device rng ~value:v) run.Device.noises in
                Mathkit.Fvec.of_array (Device.run device ~scope_rng:rng ~draws).Device.trace.Power.Ptrace.samples)
          end
        in
        {
          Pipeline.samples = Mathkit.Fvec.of_array run.Device.trace.Power.Ptrace.samples;
          noises = run.Device.noises;
          remeasure;
        });
  }

(* The full campaign's seed table is always drawn, whatever slice is
   served: shard [lo,hi) of an N-trace campaign sees exactly the seeds
   trace lo..hi-1 would see in the single-process run, which is what
   makes the sharded merge bit-identical. *)
let device_live_range ?(retry = false) device ~traces ~lo ~hi ~scope_rng ~sampler_rng =
  if traces < 0 then invalid_arg "Source.device_live_range: negative trace count";
  if lo < 0 || hi < lo || hi > traces then
    invalid_arg (Printf.sprintf "Source.device_live_range: bad range [%d,%d) of %d traces" lo hi traces);
  let seeds = Array.init traces (fun _ -> (Mathkit.Prng.bits64 scope_rng, Mathkit.Prng.bits64 sampler_rng)) in
  let pos = ref lo in
  let module M = struct
    type t = unit

    let name = Printf.sprintf "device-live[%d,%d)" lo hi

    let next () =
      if !pos >= hi then `End
      else begin
        let i = !pos in
        incr pos;
        `Item (live_item ~retry device i seeds.(i))
      end

    let close () = ()
  end in
  Pipeline.Source ((module M), ())

let device_live ?retry device ~traces ~scope_rng ~sampler_rng =
  device_live_range ?retry device ~traces ~lo:0 ~hi:traces ~scope_rng ~sampler_rng

(* Replay items carry the record's samples in the decoder's own Fvec —
   no per-record boxed [float array] is ever materialised. *)
let item_of_record_fv index (r : Traceio.Archive.record_fv) =
  {
    Pipeline.index;
    acquire =
      (fun () ->
        {
          Pipeline.samples = r.Traceio.Archive.fv_samples;
          noises = r.Traceio.Archive.fv_noises;
          remeasure = None;
        });
  }

let of_trace_source stream =
  let pos = ref 0 in
  let module M = struct
    type t = unit

    let name = Traceio.Source.name stream

    let next () =
      match Traceio.Source.next_fv stream with
      | `End_of_archive -> `End
      | `Skipped reason -> `Skip reason
      | `Record r ->
          let i = !pos in
          incr pos;
          `Item (item_of_record_fv i r)

    let close () = Traceio.Source.close stream
  end in
  Pipeline.Source ((module M), ())

let archive_replay ?strict ?obs path = of_trace_source (Traceio.Source.of_archive ?strict ?obs path)

let remote ?strict ?obs ?close ~peer ic = of_trace_source (Traceio.Wire.source ?strict ?obs ?close ~peer ic)

let of_runs ~name runs =
  let pos = ref 0 in
  let module M = struct
    type t = unit

    let name = name

    let next () =
      if !pos >= Array.length runs then `End
      else begin
        let i = !pos in
        let run : Device.run = runs.(i) in
        incr pos;
        `Item
          {
            Pipeline.index = i;
            acquire =
              (fun () ->
                {
                  Pipeline.samples = Mathkit.Fvec.of_array run.Device.trace.Power.Ptrace.samples;
                  noises = run.Device.noises;
                  remeasure = None;
                });
          }
      end

    let close () = ()
  end in
  Pipeline.Source ((module M), ())
