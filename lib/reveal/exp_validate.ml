open Exp_core

(* --- supporting experiments ---------------------------------------------------- *)

type sign_report = { correct : int; total : int; accuracy_percent : float }

let signs env =
  let s = env.stats in
  {
    correct = s.Campaign.sign_correct;
    total = s.Campaign.sign_total;
    accuracy_percent = 100.0 *. float_of_int s.Campaign.sign_correct /. float_of_int (max 1 s.Campaign.sign_total);
  }

let render_signs r =
  Printf.sprintf "Sign recovery: %d/%d = %.2f%%   [paper: 100%%]\n" r.correct r.total r.accuracy_percent

let json_signs r =
  Report.Obj
    [
      ("correct", Report.Int r.correct);
      ("total", Report.Int r.total);
      ("accuracy_percent", Report.Float r.accuracy_percent);
    ]

let signs_doc r = { Report.text = render_signs r; json = json_signs r }

type recovery_report = {
  n : int;
  coefficients_total : int;
  coefficients_exact : int;
  message_recovered_exactly : bool;
  residual_bikz : float;
  expected_wrong : float;
  log2_full_recovery_probability : float;
}

let recovery config =
  let rng = Mathkit.Prng.create ~seed:(Int64.add config.seed 17L) () in
  let n = config.device_n in
  let params = Bfv.Params.create ~n ~coeff_modulus:[ 132120577 ] ~plain_modulus:256 in
  let ctx = Bfv.Rq.context params in
  let sk = Bfv.Keygen.secret_key rng ctx in
  let pk = Bfv.Keygen.public_key rng ctx sk in
  let m =
    Bfv.Keys.plaintext_of_coeffs params (Array.init n (fun _ -> Mathkit.Prng.int rng 256))
  in
  (* the device samples e1 then e2 in one encryption: 2n draws *)
  let device = Device.create ~n:(2 * n) () in
  let prof_device = Device.create ~n:(min n 256) () in
  let prof = Campaign.profile ~per_value:(min config.per_value 400) prof_device rng in
  let scope_rng = Mathkit.Prng.split rng and sampler_rng = Mathkit.Prng.split rng in
  let run = Device.run_gaussian device ~scope_rng ~sampler_rng in
  let e1_true = Array.sub run.Device.noises 0 n and e2_true = Array.sub run.Device.noises n n in
  let u = Bfv.Rq.ternary rng ctx in
  let randomness =
    {
      Bfv.Encryptor.u;
      e1 = Bfv.Sampler.of_noises ctx e1_true;
      e2 = Bfv.Sampler.of_noises ctx e2_true;
      e1_log = { Bfv.Sampler.noises = e1_true; rejections = Array.make n 0 };
      e2_log = { Bfv.Sampler.noises = e2_true; rejections = Array.make n 0 };
    }
  in
  let c = Bfv.Encryptor.encrypt_with ctx pk m randomness in
  (* sanity: the algebra recovers m from the true noise *)
  (match Bfv.Recover.recover_with_noises ctx pk c ~e1_noises:e1_true ~e2_noises:e2_true with
  | Some m' when Bfv.Keys.plaintext_equal m m' -> ()
  | _ -> failwith "Experiment.recovery: eq. (3) sanity check failed");
  (* the attack *)
  let results = Campaign.attack_trace prof run in
  let recovered = Array.map (fun r -> r.Campaign.verdict.Sca.Attack.value) results in
  let exact = ref 0 in
  Array.iteri (fun i v -> if v = run.Device.noises.(i) then incr exact) recovered;
  let e1_rec = Array.sub recovered 0 n and e2_rec = Array.sub recovered n n in
  let recovered_exactly =
    match Bfv.Recover.recover_with_noises ctx pk c ~e1_noises:e1_rec ~e2_noises:e2_rec with
    | Some m' -> Bfv.Keys.plaintext_equal m m'
    | None -> false
  in
  (* residual search space, extrapolated to the full SEAL-128 instance:
     the e2-half posteriors are recycled over the 1024 coordinates *)
  let dbdd = Hints.Dbdd.create Sink.lwe_instance in
  for c = 0 to Sink.lwe_instance.Hints.Lwe.m - 1 do
    let r = results.(n + (c mod n)) in
    Hints.Hint.apply dbdd (Hints.Hint.of_posterior ~coordinate:c r.Campaign.posterior_all)
  done;
  (* posterior-based success accounting: P(correct) per coefficient *)
  let expected_wrong = ref 0.0 and log2_all = ref 0.0 in
  Array.iter
    (fun r ->
      let p_true =
        Array.fold_left
          (fun acc (v, p) -> if v = r.Campaign.actual then acc +. p else acc)
          0.0 r.Campaign.posterior_all
      in
      expected_wrong := !expected_wrong +. (1.0 -. p_true);
      log2_all := !log2_all +. Float.log2 (Float.max p_true 1e-300))
    results;
  {
    n;
    coefficients_total = 2 * n;
    coefficients_exact = !exact;
    message_recovered_exactly = recovered_exactly;
    residual_bikz = Hints.Dbdd.estimate_bikz dbdd;
    expected_wrong = !expected_wrong;
    log2_full_recovery_probability = !log2_all;
  }

let render_recovery r =
  Printf.sprintf
    "End-to-end single-trace recovery (n = %d):\n\
    \  eq.(3) with true e1,e2: message recovered exactly (sanity check passed)\n\
    \  attacked coefficients exactly right: %d / %d (%.1f%%)\n\
    \  plaintext recovered from raw guesses alone: %b\n\
    \  expected wrong coefficients (posterior-based): %.1f; P(all correct) = 2^%.0f\n\
    \  => the lattice stage is what absorbs the residue:\n\
    \  residual search space from posteriors: %.2f bikz (~2^%.1f)\n"
    r.n r.coefficients_exact r.coefficients_total
    (100.0 *. float_of_int r.coefficients_exact /. float_of_int r.coefficients_total)
    r.message_recovered_exactly r.expected_wrong r.log2_full_recovery_probability r.residual_bikz
    (Hints.Bkz_model.security_bits r.residual_bikz)

let json_recovery r =
  Report.Obj
    [
      ("n", Report.Int r.n);
      ("coefficients_total", Report.Int r.coefficients_total);
      ("coefficients_exact", Report.Int r.coefficients_exact);
      ("message_recovered_exactly", Report.Bool r.message_recovered_exactly);
      ("residual_bikz", Report.Float r.residual_bikz);
      ("expected_wrong", Report.Float r.expected_wrong);
      ("log2_full_recovery_probability", Report.Float r.log2_full_recovery_probability);
    ]

let recovery_doc r = { Report.text = render_recovery r; json = json_recovery r }

(* --- toy lattice validation -------------------------------------------------------- *)

type toylattice_row = {
  toy_n : int;
  hints_given : int;
  predicted_bikz : float;
  solved : bool;
}

let toylattice config =
  let rng = Mathkit.Prng.create ~seed:(Int64.add config.seed 31L) () in
  let polar = Mathkit.Gaussian.polar () in
  let rows = ref [] in
  List.iter
    (fun (toy_n, q) ->
      let md = Mathkit.Modular.modulus q in
      (* ring instance b = p1 * u + e2 over Z_q[x]/(x^n+1) *)
      let p1 = Mathkit.Poly.uniform rng md toy_n in
      let u = Array.init toy_n (fun _ -> Mathkit.Prng.ternary rng) in
      let e2 = Array.init toy_n (fun _ -> int_of_float (Float.round (Mathkit.Gaussian.normal polar rng ~mu:0.0 ~sigma:3.19))) in
      let a = Lattice.Embed.negacyclic_matrix ~q p1 in
      let b =
        Array.init toy_n (fun j ->
            let acc = ref 0 in
            for i = 0 to toy_n - 1 do
              acc := Mathkit.Modular.add md !acc (Mathkit.Modular.mul md a.(j).(i) (Mathkit.Modular.reduce md u.(i)))
            done;
            Mathkit.Modular.add md !acc (Mathkit.Modular.reduce md e2.(j)))
      in
      let inst = { Lattice.Embed.q; a; b } in
      List.iter
        (fun hints_given ->
          let reduced =
            if hints_given = 0 then inst
            else Lattice.Embed.eliminate_perfect inst ~known:(List.init hints_given (fun j -> (j, e2.(j))))
          in
          let solved =
            match Lattice.Embed.solve ~block_size:12 reduced with
            | Some sol -> sol.Lattice.Embed.error = Array.sub e2 hints_given (toy_n - hints_given)
            | None -> false
          in
          (* estimator prediction for the same shrinkage *)
          let lwe = { Hints.Lwe.n = toy_n; m = toy_n; q; sigma_error = 3.19; sigma_secret = sqrt (2.0 /. 3.0) } in
          let dbdd = Hints.Dbdd.create lwe in
          for i = 0 to hints_given - 1 do
            Hints.Dbdd.perfect_hint dbdd i
          done;
          rows := { toy_n; hints_given; predicted_bikz = Hints.Dbdd.estimate_bikz dbdd; solved } :: !rows)
        [ 0; toy_n / 2 ])
    [ (16, 521); (32, 257); (40, 127) ];
  List.rev !rows

let toylattice_columns =
  [
    Report.icol ~heading:"   n" ~key:"n" ~fmt:"%4d" (fun r -> r.toy_n);
    Report.icol ~heading:"  hints" ~key:"hints" ~fmt:"  %5d" (fun r -> r.hints_given);
    Report.fcol ~heading:"  predicted bikz" ~key:"predicted_bikz" ~fmt:"  %14.1f" (fun r -> r.predicted_bikz);
    Report.column ~heading:"  BKZ-12 solved?" ~key:"solved"
      ~cell:(fun r -> Printf.sprintf "  %s" (if r.solved then "yes" else "no"))
      ~value:(fun r -> Report.Bool r.solved);
  ]

let toylattice_doc rows =
  Report.table
    ~title:"Estimator vs. solver on toy Ring-LWE (sigma = 3.19, q shrinks as n grows to stay lattice-solvable):\n"
    ~footer:"(hints shrink the instance; estimator and solver must agree on the trend)\n" toylattice_columns rows

let render_toylattice rows = (toylattice_doc rows).Report.text
let json_toylattice rows = (toylattice_doc rows).Report.json

(* --- leakage assessment -------------------------------------------------------------- *)

type tvla_row = {
  sampler : string;
  max_t_first_order : float;
  leaky_samples : int;
  max_t_second_order : float;
}

let tvla_windows device rng ~count ~draw =
  (* fixed-length windows of single-coefficient runs *)
  let seg = Sca.Segment.default in
  let raw =
    Array.init count (fun _ ->
        let run = Device.run device ~scope_rng:rng ~draws:[| draw rng |] in
        let samples = run.Device.trace.Power.Ptrace.samples in
        let wins = Sca.Segment.windows seg samples in
        if Array.length wins < 1 then failwith "Experiment.tvla: no window";
        let w = wins.(0) in
        Array.sub samples w.Sca.Segment.start (w.Sca.Segment.stop - w.Sca.Segment.start))
  in
  let len = Array.fold_left (fun acc w -> min acc (Array.length w)) max_int raw in
  Array.map (fun w -> Array.sub w 0 len) raw

let tvla config =
  List.map
    (fun (variant, name) ->
      let rng = Mathkit.Prng.create ~seed:(Int64.add config.seed 71L) () in
      let device = Device.create ~variant ~n:1 () in
      let count = max 100 (config.per_value / 2) in
      let fixed = tvla_windows device rng ~count ~draw:(fun rng -> Device.profiling_draw device rng ~value:5) in
      let random =
        tvla_windows device rng ~count ~draw:(fun rng ->
            let draws, _ = Riscv.Sampler_prog.draws_of_gaussian rng Mathkit.Gaussian.seal_default ~count:1 in
            draws.(0))
      in
      let len = min (Array.length fixed.(0)) (Array.length random.(0)) in
      let clip set = Array.map (fun w -> Array.sub w 0 len) set in
      let fixed = clip fixed and random = clip random in
      let t1 = Sca.Tvla.t_statistics fixed random in
      let t2 = Sca.Tvla.second_order fixed random in
      {
        sampler = name;
        max_t_first_order = Sca.Tvla.max_abs_t t1;
        leaky_samples = Array.length (Sca.Tvla.leaky_points t1);
        max_t_second_order = Sca.Tvla.max_abs_t t2;
      })
    [ (Riscv.Sampler_prog.Vulnerable, "SEAL v3.2 (vulnerable)"); (Riscv.Sampler_prog.Branchless, "v3.6-style branchless") ]

let tvla_columns =
  [
    Report.scol ~heading:"  variant" ~key:"variant" ~fmt:"  %-26s" (fun r -> r.sampler);
    Report.fcol ~heading:"max |t| (1st)" ~key:"max_t_first_order" ~fmt:" %12.1f" (fun r -> r.max_t_first_order);
    Report.icol ~heading:"leaky samples" ~key:"leaky_samples" ~fmt:"   %13d" (fun r -> r.leaky_samples);
    Report.fcol ~heading:"max |t| (2nd)" ~key:"max_t_second_order" ~fmt:"   %13.1f" (fun r -> r.max_t_second_order);
    Report.column ~heading:"" ~key:"pass"
      ~cell:(fun r -> if r.max_t_first_order > Sca.Tvla.threshold then "   FAIL" else "   pass")
      ~value:(fun r -> Report.Bool (r.max_t_first_order <= Sca.Tvla.threshold));
  ]

let tvla_doc rows =
  Report.table ~title:"TVLA (fixed coefficient = 5 vs honest Gaussian), pass level |t| <= 4.5:\n"
    ~header:"  variant                     max |t| (1st)   leaky samples   max |t| (2nd)\n"
    ~footer:
      "(the branchless sampler removes the branches yet still fails TVLA: its mask\n\
      \ arithmetic is data-dependent -- the paper's 'may have a different vulnerability')\n"
    tvla_columns rows

let render_tvla rows = (tvla_doc rows).Report.text
let json_tvla rows = (tvla_doc rows).Report.json

type averaging_row = { traces_averaged : int; value_accuracy : float }

let averaging config =
  let rng = Mathkit.Prng.create ~seed:(Int64.add config.seed 83L) () in
  let n = min config.device_n 128 in
  let device = Device.create ~n () in
  let prof = Campaign.profile ~per_value:(min config.per_value 200) device rng in
  let scope_rng = Mathkit.Prng.split rng and sampler_rng = Mathkit.Prng.split rng in
  (* hypothetical noise-reusing device: the same draw queue measured K
     times with fresh scope noise; windows averaged before matching *)
  let draws, _ = Riscv.Sampler_prog.draws_of_gaussian sampler_rng Mathkit.Gaussian.seal_default ~count:n in
  List.map
    (fun k ->
      let window_sets =
        Array.init k (fun _ ->
            let run = Device.run device ~scope_rng ~draws in
            let samples = run.Device.trace.Power.Ptrace.samples in
            let wins = Sca.Segment.windows prof.Campaign.segment samples in
            Sca.Segment.vectorize samples (Array.sub wins 0 n) ~length:prof.Campaign.window_length)
      in
      let averaged =
        Array.init n (fun i ->
            let acc = Array.make prof.Campaign.window_length 0.0 in
            Array.iter (fun set -> Array.iteri (fun t x -> acc.(t) <- acc.(t) +. x) set.(i)) window_sets;
            Array.map (fun x -> x /. float_of_int k) acc)
      in
      let ok = ref 0 in
      Array.iteri
        (fun i w -> if (Sca.Attack.classify prof.Campaign.attack w).Sca.Attack.value = fst draws.(i) then incr ok)
        averaged;
      { traces_averaged = k; value_accuracy = 100.0 *. float_of_int !ok /. float_of_int n })
    [ 1; 4; 16 ]

let averaging_columns =
  [
    Report.icol ~heading:"" ~key:"traces_averaged" ~fmt:"  averaging %2d" (fun r -> r.traces_averaged);
    Report.fcol ~heading:"" ~key:"value_accuracy" ~fmt:" traces: value accuracy %5.1f%%" (fun r -> r.value_accuracy);
  ]

let averaging_doc rows =
  Report.table ~title:"Multi-trace averaging baseline (hypothetical noise-reusing device):\n" ~header:""
    ~footer:
      "(BFV samples fresh noise per encryption, so the real adversary gets K = 1;\n\
      \ this is why the paper's attack is designed to be single-trace)\n"
    averaging_columns rows

let render_averaging rows = (averaging_doc rows).Report.text
let json_averaging rows = (averaging_doc rows).Report.json

(* --- feature-extraction comparison ---------------------------------------------------- *)

type feature_row = { feature_method : string; accuracy : float }

let ablate_features config =
  let rng = Mathkit.Prng.create ~seed:(Int64.add config.seed 67L) () in
  let n = min config.device_n 128 in
  let device = Device.create ~n () in
  let segment, window_length, classes =
    Campaign.profiling_windows ~per_value:(min config.per_value 200) device rng
  in
  (* held-out attack windows with ground truth *)
  let scope_rng = Mathkit.Prng.split rng and sampler_rng = Mathkit.Prng.split rng in
  let test_windows =
    List.concat
      (List.init 4 (fun _ ->
           let run = Device.run_gaussian device ~scope_rng ~sampler_rng in
           let samples = run.Device.trace.Power.Ptrace.samples in
           let wins = Sca.Segment.windows segment samples in
           let vecs = Sca.Segment.vectorize samples (Array.sub wins 0 n) ~length:window_length in
           Array.to_list (Array.mapi (fun i w -> (run.Device.noises.(i), w)) vecs)))
  in
  let in_labels = Hashtbl.create 32 in
  List.iter (fun (v, _) -> Hashtbl.replace in_labels v ()) classes;
  let test_windows = List.filter (fun (v, _) -> Hashtbl.mem in_labels v) test_windows in
  let evaluate name project =
    let template = Sca.Template.build ~pois:[||] (List.map (fun (l, rows) -> (l, Array.map project rows)) classes) in
    let ok = List.fold_left (fun acc (actual, w) -> if Sca.Template.classify template (project w) = actual then acc + 1 else acc) 0 test_windows in
    { feature_method = name; accuracy = 100.0 *. float_of_int ok /. float_of_int (List.length test_windows) }
  in
  let class_array = Array.of_list (List.map snd classes) in
  let sost_pois = Sca.Sosd.select ~count:24 (Sca.Sosd.scores_t class_array) in
  let sosd_pois = Sca.Sosd.select ~count:24 (Sca.Sosd.scores class_array) in
  let pca = Sca.Pca.fit ~k:12 classes in
  let corr_pois =
    let rows = List.concat_map (fun (l, ws) -> Array.to_list (Array.map (fun w -> (l, w)) ws)) classes in
    let traces = Array.of_list (List.map snd rows) in
    let labels = Array.of_list (List.map fst rows) in
    Sca.Cpa.correlation_poi ~count:24 traces labels
  in
  [
    evaluate "SOST POIs (default)" (fun w -> Sca.Sosd.pick w sost_pois);
    evaluate "SOSD POIs (paper's cite [30])" (fun w -> Sca.Sosd.pick w sosd_pois);
    evaluate "PCA subspace (k=12)" (Sca.Pca.transform pca);
    evaluate "correlation POIs" (fun w -> Sca.Sosd.pick w corr_pois);
  ]

let features_columns =
  [
    Report.scol ~heading:"" ~key:"feature_method" ~fmt:"  %-32s" (fun r -> r.feature_method);
    Report.fcol ~heading:"" ~key:"value_accuracy" ~fmt:" value accuracy %5.1f%%" (fun r -> r.accuracy);
  ]

let features_doc rows =
  Report.table ~title:"Feature-extraction comparison (flat 29-class templates, same data):\n" ~header:""
    features_columns rows

let render_features rows = (features_doc rows).Report.text
let json_features rows = (features_doc rows).Report.json
