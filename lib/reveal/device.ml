type t = {
  variant : Riscv.Sampler_prog.variant;
  synth : Power.Synth.config;
  moduli : int array;
  cycle_model : (Riscv.Inst.klass -> int) option;
  n : int;
  program : Riscv.Asm.program;
  layout : Riscv.Sampler_prog.layout;
  fault : Power.Fault.config option;
}

let seal_moduli = [| 132120577 |]

let create ?(variant = Riscv.Sampler_prog.Vulnerable) ?(synth = Power.Synth.default) ?(moduli = seal_moduli)
    ?cycle_model ?fault ~n () =
  if n <= 0 then invalid_arg "Device.create: n must be positive";
  {
    variant;
    synth;
    moduli;
    cycle_model;
    n;
    fault;
    (* one trailing dummy coefficient: every real coefficient's window
       is then delimited by a following distribution-call burst, so the
       last real window segments like all the others *)
    program = Riscv.Sampler_prog.build ~variant ~n:(n + 1) ~k:(Array.length moduli) ();
    layout = Riscv.Sampler_prog.default_layout;
  }

let n t = t.n
let variant t = t.variant
let moduli t = Array.copy t.moduli
let synth_config t = t.synth

let with_synth t synth =
  (* the firmware is unchanged; only the scope differs *)
  { t with synth }

let with_fault t fault = { t with fault }
let fault_config t = t.fault

type run = {
  trace : Power.Ptrace.t;
  noises : int array;
  poly : int array array;
}

let execute t ~scope_rng ~draws ~perm =
  if Array.length draws <> t.n then invalid_arg "Device: draw queue length must equal n";
  let draws = Array.append draws [| (0, 0) |] in
  let mem = Riscv.Memory.create t.layout.Riscv.Sampler_prog.ram_size in
  Riscv.Memory.load_program mem 0 t.program.Riscv.Asm.words;
  Riscv.Sampler_prog.stage_moduli mem t.layout t.moduli;
  (match perm with
  | Some p ->
      if t.variant <> Riscv.Sampler_prog.Shuffled then invalid_arg "Device: permutation needs the Shuffled variant";
      if Array.length p <> t.n then invalid_arg "Device: permutation length must equal n";
      Riscv.Sampler_prog.stage_permutation mem t.layout (Array.append p [| t.n |])
  | None ->
      (* Profiling runs on the adversary's clone use the identity
         order (they control the device); honest victim runs must go
         through run_shuffled with a secret permutation. *)
      if t.variant = Riscv.Sampler_prog.Shuffled then
        Riscv.Sampler_prog.stage_permutation mem t.layout (Array.init (t.n + 1) (fun i -> i)));
  (match t.variant with
  | Riscv.Sampler_prog.Cdt_table ->
      (* a CDT device consumes (uniform, sign) entropy; the draw queue
         still carries the intended values, which profiling forces into
         the matching CDF band *)
      let sigma = Mathkit.Gaussian.seal_default.Mathkit.Gaussian.sigma in
      Riscv.Sampler_prog.stage_cdt_table mem t.layout (Riscv.Sampler_prog.cdt_thresholds ~sigma);
      let force_rng = Mathkit.Prng.split scope_rng in
      let entropy =
        Array.map (fun (v, _) -> Riscv.Sampler_prog.cdt_force_draw force_rng ~sigma ~value:v) draws
      in
      Riscv.Sampler_prog.install_cdt_port mem ~draws:entropy
  | _ -> Riscv.Sampler_prog.install_noise_port mem ~draws);
  let recorder = Riscv.Trace.recorder () in
  let cpu =
    match t.cycle_model with
    | Some cm -> Riscv.Cpu.create ~tracer:(Riscv.Trace.record recorder) ~cycle_model:cm mem
    | None -> Riscv.Cpu.create ~tracer:(Riscv.Trace.record recorder) mem
  in
  ignore (Riscv.Cpu.run ~max_steps:(200 * t.n * 64) cpu);
  let events = Riscv.Trace.events recorder in
  let trace = Power.Synth.synthesize ~rng:scope_rng t.synth events in
  let trace =
    (* a no-op fault must leave the clean path bit-identical: no RNG
       split, no trace rebuild *)
    match t.fault with
    | Some f when not (Power.Fault.is_noop f) -> Power.Fault.apply ~rng:(Mathkit.Prng.split scope_rng) f trace
    | _ -> trace
  in
  {
    trace;
    noises = Array.map fst (Array.sub draws 0 t.n);
    poly =
      Array.map
        (fun plane -> Array.sub plane 0 t.n)
        (Riscv.Sampler_prog.read_poly mem t.layout ~n:(t.n + 1) ~k:(Array.length t.moduli));
  }

let run t ~scope_rng ~draws = execute t ~scope_rng ~draws ~perm:None

let run_gaussian t ~scope_rng ~sampler_rng =
  let draws =
    match t.variant with
    | Riscv.Sampler_prog.Cdt_table ->
        (* honest CDT draws: values follow the table's distribution *)
        let sigma = Mathkit.Gaussian.seal_default.Mathkit.Gaussian.sigma in
        let _, noises = Riscv.Sampler_prog.cdt_draws_of_gaussian sampler_rng ~sigma ~count:t.n in
        Array.map (fun v -> (v, 0)) noises
    | _ -> fst (Riscv.Sampler_prog.draws_of_gaussian sampler_rng Mathkit.Gaussian.seal_default ~count:t.n)
  in
  execute t ~scope_rng ~draws ~perm:None

let run_shuffled t ~scope_rng ~sampler_rng ~perm =
  let draws, _ = Riscv.Sampler_prog.draws_of_gaussian sampler_rng Mathkit.Gaussian.seal_default ~count:t.n in
  execute t ~scope_rng ~draws ~perm:(Some perm)

let profiling_draw t rng ~value =
  ignore t;
  (* honest timing: take the rejection count of a real clipped draw *)
  let draws, _ = Riscv.Sampler_prog.draws_of_gaussian rng Mathkit.Gaussian.seal_default ~count:1 in
  let _, rejections = draws.(0) in
  (value, rejections)

(* --- record / replay ----------------------------------------------------- *)

let open_recorder ?meta ?obs t ~path ~seed =
  Traceio.Archive.open_writer ?meta ?obs ~variant:t.variant ~n:t.n ~seed
    ~samples_per_cycle:t.synth.Power.Synth.samples_per_cycle ~noise_sigma:t.synth.Power.Synth.noise_sigma path

let record_run writer run = Traceio.Archive.append writer ~noises:run.noises run.trace

let record ?(obs = Obs.Ctx.disabled) t ~path ~seed ~traces ~scope_rng ~sampler_rng =
  if traces < 0 then invalid_arg "Device.record: traces must be non-negative";
  let writer = open_recorder ~obs t ~path ~seed in
  Fun.protect
    ~finally:(fun () -> Traceio.Archive.close_writer writer)
    (fun () ->
      Obs.Ctx.span obs "device.record" (fun () ->
          for _ = 1 to traces do
            let run =
              match t.variant with
              | Riscv.Sampler_prog.Shuffled ->
                  let perm = Array.init t.n (fun i -> i) in
                  Mathkit.Prng.shuffle sampler_rng perm;
                  run_shuffled t ~scope_rng ~sampler_rng ~perm
              | _ -> run_gaussian t ~scope_rng ~sampler_rng
            in
            record_run writer run
          done))

let check_compatible t (h : Traceio.Archive.header) ~path =
  let mismatch what a b =
    invalid_arg (Printf.sprintf "Device.replay: %s: archive has %s %s, device expects %s" path what a b)
  in
  if h.Traceio.Archive.variant <> t.variant then
    mismatch "sampler variant"
      (Traceio.Archive.variant_name h.Traceio.Archive.variant)
      (Traceio.Archive.variant_name t.variant);
  if h.Traceio.Archive.n <> t.n then
    mismatch "coefficient count" (string_of_int h.Traceio.Archive.n) (string_of_int t.n);
  if h.Traceio.Archive.samples_per_cycle <> t.synth.Power.Synth.samples_per_cycle then
    mismatch "samples per cycle"
      (string_of_int h.Traceio.Archive.samples_per_cycle)
      (string_of_int t.synth.Power.Synth.samples_per_cycle)

type replay = Traceio.Archive.reader

let open_replay ?expect path =
  let reader = Traceio.Archive.open_reader path in
  (match expect with
  | Some t -> (
      try check_compatible t (Traceio.Archive.header reader) ~path
      with exn ->
        Traceio.Archive.close_reader reader;
        raise exn)
  | None -> ());
  reader

let replay_header = Traceio.Archive.header

(* A replayed run carries everything the attack consumes (trace +
   ground-truth labels); the firmware's memory image is not archived,
   so [poly] is empty. *)
let run_of_record (r : Traceio.Archive.record) = { trace = r.Traceio.Archive.trace; noises = r.Traceio.Archive.noises; poly = [||] }

let replay_next reader = Option.map run_of_record (Traceio.Archive.next reader)
let close_replay = Traceio.Archive.close_reader

let replay_iter ?expect path ~f =
  let reader = open_replay ?expect path in
  Fun.protect
    ~finally:(fun () -> close_replay reader)
    (fun () ->
      let rec loop () = match replay_next reader with None -> () | Some run -> f run; loop () in
      loop ())

let of_header ?synth ?cycle_model (h : Traceio.Archive.header) =
  let synth =
    match synth with
    | Some s -> s
    | None ->
        {
          Power.Synth.default with
          Power.Synth.samples_per_cycle = h.Traceio.Archive.samples_per_cycle;
          noise_sigma = h.Traceio.Archive.noise_sigma;
        }
  in
  create ~variant:h.Traceio.Archive.variant ~synth ?cycle_model ~n:h.Traceio.Archive.n ()
