(** The staged attack pipeline: typed stage interfaces and errors.

    Every campaign — live, archive replay, synthetic — is the same
    composition

    {v Source -> Segmenter -> Classifier -> Grader -> Sink v}

    and this module defines the stage contracts the concrete instances
    plug into: {!SOURCE} (where traces come from), {!SEGMENTER} (trace
    to per-coefficient window vectors), {!classifier} (window vector
    to verdict/posterior/fit).  The grader lives in {!Grading}, the
    drivers composing the stages in {!Campaign}, and the hint/lattice
    sink in {!Sink}.  A single {!error} type carries every way a stage
    can fail, so failure policy (skip, retry, abort) is decided by the
    driver, not deep inside a stage. *)

type profile = {
  attack : Sca.Attack.t;
  window_length : int;
  segment : Sca.Segment.config;  (** with the calibrated absolute threshold *)
  values : int array;  (** candidate labels, e.g. -14..14 *)
  sigma : float;
  sign_fit_floor : float;
      (** goodness-of-fit floor for the sign template, calibrated on
          the profiling windows — attack windows scoring below it are
          out-of-distribution (faulted) and grade Unknown *)
  value_fit_floor : float;  (** same, for the value templates: below it a window is at best SignOnly *)
}
(** The trained state every stage reads: templates, POIs, calibrated
    segmentation and fit floors.  Built by {!Profiling}, persisted by
    {!Profile_store}. *)

(** {1 Errors} *)

type error =
  | Window_count of { expected : int; found : int }
      (** the strict segmenter found a window count other than
          coefficients + 1 (trailing dummy) *)
  | Segmentation of Sca.Segment.segment_error
      (** the resilient segmenter could not repair the trace *)
  | Corrupt_record of string  (** a source produced an undecodable record *)
  | Io of string

val error_to_string : error -> string
(** Renders [Window_count] as the historical
    ["Campaign: segmentation found %d windows for %d coefficients"]
    message — callers that must keep raising [Failure] with the legacy
    text feed this through [failwith]. *)

(** {1 Classifier stage}

    The per-window classification step, packed existentially so a
    driver can carry any {!Sca.Classifier.S} instance without a type
    parameter.  {!template_classifier} wraps the combined template
    attack; an ML classifier only has to implement the signature. *)

type classifier = Classifier : (module Sca.Classifier.S with type t = 'c) * 'c -> classifier

val template_classifier : Sca.Attack.t -> classifier
val classifier_of_profile : profile -> classifier
val classifier_name : classifier -> string

(** {1 Segmenter stage} *)

val raw_windows :
  Sca.Segment.config -> count:int -> Mathkit.Fvec.t -> (Sca.Segment.window array, error) result
(** The shared strict window extraction: exactly [count] + 1 windows
    (the firmware's trailing dummy) or [Window_count], keeping the
    first [count].  Used by the strict segmenter and by profiling's
    window labelling. *)

type segmented = {
  vectors : Mathkit.Fvec.t array;
      (** fixed-dimension window vectors, one per coefficient — borrowed
          views of the trace where the window is in bounds
          ({!Sca.Segment.views}), so they must be treated as read-only *)
  quality : Sca.Segment.quality array;
}

module type SEGMENTER = sig
  val name : string
  val segment : profile -> count:int -> Mathkit.Fvec.t -> (segmented, error) result
end

type segmenter = (module SEGMENTER)

val strict_segmenter : segmenter
(** Window count must match exactly; every window is [Clean].  The
    classic pipeline. *)

val resilient_segmenter : segmenter
(** {!Sca.Segment.segment}: repairs miscounted bursts and reports
    per-window quality.  The fault-tolerant pipeline. *)

val segmenter_name : segmenter -> string
val run_segmenter : segmenter -> profile -> count:int -> Mathkit.Fvec.t -> (segmented, error) result

(** {1 Source stage}

    A source yields attack traces one {!item} at a time.  The [acquire]
    thunk does the expensive part (running the device, or decoding) so
    a driver can fan items out to worker domains; sources whose
    backing store is sequential (an archive reader) decode inside
    [next] instead and return a constant thunk. *)

type acquired = {
  samples : Mathkit.Fvec.t;
  noises : int array;  (** ground truth, for scoring *)
  remeasure : (int -> Mathkit.Fvec.t) option;
      (** live sources only: capture the same coefficients again
          (fresh scope/fault realisation); argument is the attempt
          number *)
}

type item = { index : int; acquire : unit -> acquired }

module type SOURCE = sig
  type t

  val name : string

  val next : t -> [ `Item of item | `Skip of string | `End ]
  (** [`Skip] is a record the source dropped (corrupt frame in a
      tolerant archive replay); the driver counts it. *)

  val close : t -> unit
end

type source = Source : (module SOURCE with type t = 's) * 's -> source

val source_name : source -> string
val next_item : source -> [ `Item of item | `Skip of string | `End ]
val close_source : source -> unit

val instrument_source : Obs.Ctx.t -> source -> source
(** Observability wrapper: pulls count [source.items] / [source.skips]
    in the context's registry (each skip also emits a warn-level
    [source.skip] event), and every item's [acquire] thunk runs inside
    a [stage.acquire] span — timed on whichever domain forces it.
    With a disabled context this returns the source itself (physical
    equality), so uninstrumented campaigns pay nothing.  Closing the
    wrapper closes the wrapped source. *)
