(* Hand-rolled JSON — the repo deliberately has no JSON dependency.
   The codec itself lives in Obs.Json (the observability layer sits
   below the report layer and needs it first); the type is re-exported
   here by equation so every existing [Report.Obj ...] constructor
   keeps working and emission stays byte-identical. *)

type json = Obs.Json.t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Obj of (string * json) list

let to_string = Obs.Json.to_string
let print = Obs.Json.print

(* --- documents ------------------------------------------------------------ *)

type doc = { text : string; json : json }

(* --- column combinators --------------------------------------------------- *)

(* One declaration drives both renderers: [heading]/[cell] reproduce
   the historical fixed-width text (headings carry their own leading
   spaces so the concatenation is byte-exact), [key]/[value] the JSON
   row objects. *)
type 'a column = {
  heading : string;
  cell : 'a -> string;
  key : string;
  value : 'a -> json;
}

let column ~heading ~key ~cell ~value = { heading; cell; key; value }

let fcol ~heading ~key ~fmt get = { heading; cell = (fun r -> Printf.sprintf fmt (get r)); key; value = (fun r -> Float (get r)) }
let icol ~heading ~key ~fmt get = { heading; cell = (fun r -> Printf.sprintf fmt (get r)); key; value = (fun r -> Int (get r)) }
let scol ~heading ~key ~fmt get = { heading; cell = (fun r -> Printf.sprintf fmt (get r)); key; value = (fun r -> String (get r)) }

let row_json columns r = Obj (List.map (fun c -> (c.key, c.value r)) columns)

let table ~title ?header ?(footer = "") columns rows =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf title;
  (match header with
  | Some h -> Buffer.add_string buf h
  | None ->
      List.iter (fun c -> Buffer.add_string buf c.heading) columns;
      Buffer.add_char buf '\n');
  List.iter
    (fun r ->
      List.iter (fun c -> Buffer.add_string buf (c.cell r)) columns;
      Buffer.add_char buf '\n')
    rows;
  Buffer.add_string buf footer;
  { text = Buffer.contents buf; json = List (List.map (row_json columns) rows) }
