(* Hand-rolled JSON — the repo deliberately has no JSON dependency.
   Emission only (the CLI never parses JSON), compact form, with the
   float rendering pinned to "%.12g" so output is stable across runs
   and platforms. *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Obj of (string * json) list

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_float buf f =
  (* JSON has no NaN/inf literal *)
  if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then Buffer.add_string buf "null"
  else begin
    let s = Printf.sprintf "%.12g" f in
    Buffer.add_string buf s;
    (* "1" would re-read as an int; keep the float-ness explicit *)
    if String.for_all (fun c -> (c >= '0' && c <= '9') || c = '-') s then Buffer.add_string buf ".0"
  end

let rec add_json buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> add_float buf f
  | String s -> escape_string buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          add_json buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_string buf k;
          Buffer.add_char buf ':';
          add_json buf v)
        fields;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 1024 in
  add_json buf j;
  Buffer.contents buf

let print j =
  print_string (to_string j);
  print_newline ()

(* --- documents ------------------------------------------------------------ *)

type doc = { text : string; json : json }

(* --- column combinators --------------------------------------------------- *)

(* One declaration drives both renderers: [heading]/[cell] reproduce
   the historical fixed-width text (headings carry their own leading
   spaces so the concatenation is byte-exact), [key]/[value] the JSON
   row objects. *)
type 'a column = {
  heading : string;
  cell : 'a -> string;
  key : string;
  value : 'a -> json;
}

let column ~heading ~key ~cell ~value = { heading; cell; key; value }

let fcol ~heading ~key ~fmt get = { heading; cell = (fun r -> Printf.sprintf fmt (get r)); key; value = (fun r -> Float (get r)) }
let icol ~heading ~key ~fmt get = { heading; cell = (fun r -> Printf.sprintf fmt (get r)); key; value = (fun r -> Int (get r)) }
let scol ~heading ~key ~fmt get = { heading; cell = (fun r -> Printf.sprintf fmt (get r)); key; value = (fun r -> String (get r)) }

let row_json columns r = Obj (List.map (fun c -> (c.key, c.value r)) columns)

let table ~title ?header ?(footer = "") columns rows =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf title;
  (match header with
  | Some h -> Buffer.add_string buf h
  | None ->
      List.iter (fun c -> Buffer.add_string buf c.heading) columns;
      Buffer.add_char buf '\n');
  List.iter
    (fun r ->
      List.iter (fun c -> Buffer.add_string buf (c.cell r)) columns;
      Buffer.add_char buf '\n')
    rows;
  Buffer.add_string buf footer;
  { text = Buffer.contents buf; json = List (List.map (row_json columns) rows) }
