(** Concrete trace sources behind {!Pipeline.SOURCE}.

    Three instances cover every campaign the repo runs: a live device
    ({!device_live}), an archive replay ({!archive_replay}, over
    {!Traceio.Source}), and an in-memory run list ({!of_runs},
    synthetic campaigns and tests).  The drivers in {!Campaign} are
    written against the source interface only — adding an acquisition
    backend (a remote scope, a different file format) means writing
    one of these, nothing else. *)

val device_live :
  ?retry:bool ->
  Device.t ->
  traces:int ->
  scope_rng:Mathkit.Prng.t ->
  sampler_rng:Mathkit.Prng.t ->
  Pipeline.source
(** [traces] honest single-trace captures.  Seeds are pre-drawn from
    the two generators at construction, one pair per trace in trace
    order, and each item re-derives its own generators — acquisition
    can therefore run on any worker domain without perturbing the
    campaign's randomness.  With [~retry:true] every item carries a
    [remeasure] closure that re-acquires the same coefficients (same
    noise values, honest timing, fresh scope/fault realisation) from a
    per-trace retry stream ({!Constants.retry_seed_salt}), so a
    campaign that needs no retries consumes randomness identically to
    one with [~retry:false]. *)

val device_live_range :
  ?retry:bool ->
  Device.t ->
  traces:int ->
  lo:int ->
  hi:int ->
  scope_rng:Mathkit.Prng.t ->
  sampler_rng:Mathkit.Prng.t ->
  Pipeline.source
(** {!device_live} restricted to the half-open slice [\[lo,hi)] of a
    [traces]-long campaign — the shard worker's source.  The full
    campaign's seed table is drawn regardless of the slice, so trace
    [i] acquires identically whether it is served by the whole
    campaign, this shard, or any other partition; items keep their
    global indices.  [device_live] is the [\[0,traces)] instance.
    @raise Invalid_argument unless [0 <= lo <= hi <= traces]. *)

val archive_replay : ?strict:bool -> ?obs:Obs.Ctx.t -> string -> Pipeline.source
(** Stream a recorded campaign.  Tolerant by default: a record failing
    its CRC yields [`Skip] and the stream resumes at the next frame
    boundary; with [~strict:true] the same condition raises
    {!Traceio.Error.Corrupt} instead.  Records decode inside [next]
    (the reader is sequential), so the acquire thunks are cheap.
    [obs] forwards to the underlying archive reader, whose read/skip
    counters land in the context's metrics registry.
    @raise Traceio.Error.Io when the file cannot be opened. *)

val remote :
  ?strict:bool -> ?obs:Obs.Ctx.t -> ?close:(unit -> unit) -> peer:string -> in_channel -> Pipeline.source
(** Stream records from a serving peer over {!Traceio.Wire} — the
    distributed fabric's acquisition backend.  Same tolerant/strict
    corruption discipline as {!archive_replay}; the header is read
    before this returns.  [close] runs when the pipeline closes the
    source — pass the socket teardown.  [peer] labels errors.
    @raise Traceio.Error.Corrupt on a bad preamble or header. *)

val of_runs : name:string -> Device.run array -> Pipeline.source
(** An in-memory source over already-captured runs. *)

val of_trace_source : Traceio.Source.t -> Pipeline.source
(** Adapt any {!Traceio.Source} record stream (indices assigned in
    stream order). *)
