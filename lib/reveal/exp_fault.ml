open Exp_core

(* --- fault sweep --------------------------------------------------------------------- *)

type fault_sweep_row = {
  intensity : float;
  recovery_rate : float;
  sign_accuracy : float;
  value_accuracy : float;
  confident : int;
  tentative : int;
  sign_only : int;
  unknown : int;
  retried : int;
  unrecoverable : int;
  perfect_hints : int;
  approximate_hints : int;
  none_hints : int;
  graded_bikz : float;
}

(* All intensities share one fault-free profile and the same attack
   seeds: the only thing that varies along the sweep is the fault load
   on the attacked device, so the curves measure fault tolerance and
   nothing else. *)
let fault_sweep ?(intensities = [| 0.0; 0.25; 0.5; 0.75; 1.0 |]) config =
  let rng = Mathkit.Prng.create ~seed:(Int64.add config.seed 89L) () in
  let n = min config.device_n 128 in
  let device = Device.create ~n () in
  let prof = Campaign.profile ~per_value:(min config.per_value 200) device rng in
  let traces = max 2 (config.attack_traces / 4) in
  Array.to_list intensities
  |> List.map (fun intensity ->
         let fault = if intensity = 0.0 then None else Some (Power.Fault.of_intensity intensity) in
         let dev = Device.with_fault device fault in
         let scope_rng = Mathkit.Prng.create ~seed:(Int64.add config.seed 97L) () in
         let sampler_rng = Mathkit.Prng.create ~seed:(Int64.add config.seed 101L) () in
         let stats, results = Campaign.run_attacks_resilient prof dev ~traces ~scope_rng ~sampler_rng in
         let confident, tentative, sign_only, unknown = Campaign.grade_counts results in
         let retried = ref 0 and unrecoverable = ref 0 in
         Array.iter
           (fun r ->
             match r.Campaign.recovery with
             | Campaign.Retried _ -> incr retried
             | Campaign.Unrecoverable -> incr unrecoverable
             | Campaign.Clean -> ())
           results;
         let hints =
           Sink.hints_of_results results Sink.lwe_instance.Hints.Lwe.m (fun i r ->
               Campaign.hint_of_result ~sigma:prof.Campaign.sigma ~coordinate:i r)
         in
         let perfect_hints, approximate_hints, none_hints = Hints.Hint.kind_counts hints in
         let sec = Sink.security_of_hints hints in
         let total = max 1 (Array.length results) in
         {
           intensity;
           recovery_rate = float_of_int (confident + tentative) /. float_of_int total;
           sign_accuracy =
             100.0 *. float_of_int stats.Campaign.sign_correct /. float_of_int (max 1 stats.Campaign.sign_total);
           value_accuracy =
             100.0 *. float_of_int stats.Campaign.value_correct /. float_of_int (max 1 stats.Campaign.value_total);
           confident;
           tentative;
           sign_only;
           unknown;
           retried = !retried;
           unrecoverable = !unrecoverable;
           perfect_hints;
           approximate_hints;
           none_hints;
           graded_bikz = sec.Sink.bikz_with_hints;
         })

let fault_sweep_columns =
  [
    Report.fcol ~heading:"  intensity" ~key:"intensity" ~fmt:"  %9.2f" (fun r -> r.intensity);
    Report.column ~heading:"  recovery%" ~key:"recovery_rate"
      ~cell:(fun r -> Printf.sprintf "  %8.1f" (100.0 *. r.recovery_rate))
      ~value:(fun r -> Report.Float r.recovery_rate);
    Report.fcol ~heading:"  sign%" ~key:"sign_accuracy" ~fmt:"  %5.1f" (fun r -> r.sign_accuracy);
    Report.fcol ~heading:"   value%" ~key:"value_accuracy" ~fmt:"   %5.1f" (fun r -> r.value_accuracy);
    Report.icol ~heading:"   conf" ~key:"confident" ~fmt:"   %4d" (fun r -> r.confident);
    Report.icol ~heading:"  tent" ~key:"tentative" ~fmt:"  %4d" (fun r -> r.tentative);
    Report.icol ~heading:"  sign" ~key:"sign_only" ~fmt:"  %4d" (fun r -> r.sign_only);
    Report.icol ~heading:"  unk" ~key:"unknown" ~fmt:"  %4d" (fun r -> r.unknown);
    Report.icol ~heading:"   retried" ~key:"retried" ~fmt:"   %7d" (fun r -> r.retried);
    Report.icol ~heading:"  unrec" ~key:"unrecoverable" ~fmt:"  %5d" (fun r -> r.unrecoverable);
    Report.column ~heading:"   hints(P/A/-)" ~key:"hints"
      ~cell:(fun r -> Printf.sprintf "   %4d/%4d/%4d" r.perfect_hints r.approximate_hints r.none_hints)
      ~value:(fun r ->
        Report.Obj
          [
            ("perfect", Report.Int r.perfect_hints);
            ("approximate", Report.Int r.approximate_hints);
            ("none", Report.Int r.none_hints);
          ]);
    Report.fcol ~heading:"      bikz" ~key:"bikz" ~fmt:"  %8.2f" (fun r -> r.graded_bikz);
  ]

let fault_sweep_doc rows =
  Report.table ~title:"Fault sweep: graceful degradation under measurement faults\n"
    ~header:"  intensity  recovery%  sign%   value%   conf  tent  sign  unk   retried  unrec   hints(P/A/-)      bikz\n"
    ~footer:
      "(recovery = coefficients graded Confident or Tentative; bikz rises as hints degrade\n\
      \ along the ladder perfect -> approximate -> sign-only -> none)\n"
    fault_sweep_columns rows

let render_fault_sweep rows = (fault_sweep_doc rows).Report.text
let json_fault_sweep rows = (fault_sweep_doc rows).Report.json

(* The two properties the sweep must honour: recovery degrades
   monotonically with intensity, and the reported hardness never drops
   below the clean run's (degradation must not make the attack look
   stronger).  Small tolerances absorb grade flips of individual
   borderline coefficients. *)
let fault_sweep_check ?(recovery_tolerance = 0.02) ?(bikz_tolerance = 0.5) rows =
  match rows with
  | [] -> Error "fault sweep produced no rows"
  | first :: _ ->
      let problems = ref [] in
      let rec walk = function
        | a :: (b :: _ as rest) ->
            if b.recovery_rate > a.recovery_rate +. recovery_tolerance then
              problems :=
                Printf.sprintf "recovery rate rises from %.3f (intensity %.2f) to %.3f (intensity %.2f)"
                  a.recovery_rate a.intensity b.recovery_rate b.intensity
                :: !problems;
            walk rest
        | _ -> ()
      in
      walk rows;
      List.iter
        (fun r ->
          if r.graded_bikz < first.graded_bikz -. bikz_tolerance then
            problems :=
              Printf.sprintf "bikz %.2f at intensity %.2f under-reports hardness vs clean run (%.2f)" r.graded_bikz
                r.intensity first.graded_bikz
              :: !problems)
        rows;
      (match !problems with [] -> Ok () | ps -> Error (String.concat "; " (List.rev ps)))

(* --- zero-fault regression ------------------------------------------------------------- *)

type zero_consistency = {
  coefficients : int;
  verdict_mismatches : int;
  grade_downgrades : int;  (* resilient coefficients graded SignOnly/Unknown *)
  bikz_classic : float;
  bikz_graded : float;
}

(* The acceptance gate for the whole fault-tolerance stack: with no
   fault model installed, the resilient pipeline must reproduce the
   classic one bit for bit — same verdicts, same bikz. *)
let fault_zero_consistency config =
  let rng = Mathkit.Prng.create ~seed:(Int64.add config.seed 89L) () in
  let n = min config.device_n 128 in
  let device = Device.create ~n () in
  let prof = Campaign.profile ~per_value:(min config.per_value 200) device rng in
  let traces = max 2 (config.attack_traces / 4) in
  let seeds () =
    ( Mathkit.Prng.create ~seed:(Int64.add config.seed 97L) (),
      Mathkit.Prng.create ~seed:(Int64.add config.seed 101L) () )
  in
  let scope_rng, sampler_rng = seeds () in
  let _, classic = Campaign.run_attacks prof device ~traces ~scope_rng ~sampler_rng in
  (* thread an explicit no-op fault config through the device to also
     exercise the is_noop short-circuit *)
  let scope_rng, sampler_rng = seeds () in
  let _, resilient =
    Campaign.run_attacks_resilient prof
      (Device.with_fault device (Some Power.Fault.none))
      ~traces ~scope_rng ~sampler_rng
  in
  if Array.length classic <> Array.length resilient then
    failwith "Experiment.fault_zero_consistency: result counts differ";
  let mism = ref 0 and downgrades = ref 0 in
  Array.iteri
    (fun i c ->
      let r = resilient.(i) in
      if
        c.Campaign.actual <> r.Campaign.actual
        || c.Campaign.verdict.Sca.Attack.value <> r.Campaign.verdict.Sca.Attack.value
        || c.Campaign.verdict.Sca.Attack.sign <> r.Campaign.verdict.Sca.Attack.sign
      then incr mism;
      match r.Campaign.grade with
      | Campaign.SignOnly | Campaign.Unknown -> incr downgrades
      | Campaign.Confident | Campaign.Tentative -> ())
    classic;
  let bikz results mk =
    (Sink.security_of_hints (Sink.hints_of_results results Sink.lwe_instance.Hints.Lwe.m mk)).Sink.bikz_with_hints
  in
  {
    coefficients = Array.length classic;
    verdict_mismatches = !mism;
    grade_downgrades = !downgrades;
    bikz_classic = bikz classic (fun i r -> Hints.Hint.of_posterior ~coordinate:i r.Campaign.posterior_all);
    bikz_graded =
      bikz resilient (fun i r -> Campaign.hint_of_result ~sigma:prof.Campaign.sigma ~coordinate:i r);
  }

let render_zero_consistency z =
  Printf.sprintf
    "Zero-fault regression: resilient pipeline vs classic pipeline over %d coefficients\n\
    \  verdict mismatches: %d (must be 0)\n\
    \  grades below Tentative: %d (must be 0 for bikz equality)\n\
    \  bikz classic %.4f vs graded %.4f (must match)\n"
    z.coefficients z.verdict_mismatches z.grade_downgrades z.bikz_classic z.bikz_graded

let json_zero_consistency z =
  Report.Obj
    [
      ("coefficients", Report.Int z.coefficients);
      ("verdict_mismatches", Report.Int z.verdict_mismatches);
      ("grade_downgrades", Report.Int z.grade_downgrades);
      ("bikz_classic", Report.Float z.bikz_classic);
      ("bikz_graded", Report.Float z.bikz_graded);
    ]

let zero_consistency_doc z = { Report.text = render_zero_consistency z; json = json_zero_consistency z }
