open Exp_core

(* --- figures ------------------------------------------------------------ *)

type fig3 = {
  full_portion : float array;
  bursts : (int * int) array;
  sub_zero : float array;
  sub_pos : float array;
  sub_neg : float array;
}

let fig3 config =
  let rng = Mathkit.Prng.create ~seed:config.seed () in
  let device = Device.create ~n:3 () in
  (* the three iterations of Fig. 3: noise = 0, > 0, < 0 *)
  let run = Device.run device ~scope_rng:rng ~draws:[| (0, 1); (4, 0); (-5, 2) |] in
  let samples = run.Device.trace.Power.Ptrace.samples in
  let seg = Sca.Segment.default in
  let bursts = Sca.Segment.burst_regions seg samples in
  let wins = Sca.Segment.windows seg samples in
  if Array.length wins < 4 then failwith "Experiment.fig3: segmentation failed";
  let sub i =
    let w = wins.(i) in
    Array.sub samples w.Sca.Segment.start (min 220 (w.Sca.Segment.stop - w.Sca.Segment.start))
  in
  {
    full_portion = samples;
    bursts = Array.map (fun b -> (b.Sca.Segment.start, b.Sca.Segment.stop)) bursts;
    sub_zero = sub 0;
    sub_pos = sub 1;
    sub_neg = sub 2;
  }

let render_fig3 f =
  let buf = Buffer.create 8192 in
  Buffer.add_string buf "Fig. 3 (a): power trace of three coefficient samplings\n";
  Buffer.add_string buf
    (Printf.sprintf "peaks (distribution calls) at sample ranges: %s\n"
       (String.concat ", " (Array.to_list (Array.map (fun (a, b) -> Printf.sprintf "[%d,%d)" a b) f.bursts))));
  Buffer.add_string buf (Power.Ptrace.ascii_plot ~width:110 ~height:14 f.full_portion);
  Buffer.add_string buf "\nFig. 3 (b): branch sub-traces (control flow differs per case)\n";
  Buffer.add_string buf "--- noise = 0 ---\n";
  Buffer.add_string buf (Power.Ptrace.ascii_plot ~width:110 ~height:8 f.sub_zero);
  Buffer.add_string buf "--- noise > 0 ---\n";
  Buffer.add_string buf (Power.Ptrace.ascii_plot ~width:110 ~height:8 f.sub_pos);
  Buffer.add_string buf "--- noise < 0 ---\n";
  Buffer.add_string buf (Power.Ptrace.ascii_plot ~width:110 ~height:8 f.sub_neg);
  Buffer.contents buf

let json_fig3 f =
  Report.Obj
    [
      ("samples", Report.Int (Array.length f.full_portion));
      ( "bursts",
        Report.List
          (Array.to_list (Array.map (fun (a, b) -> Report.List [ Report.Int a; Report.Int b ]) f.bursts)) );
      ("sub_zero_samples", Report.Int (Array.length f.sub_zero));
      ("sub_pos_samples", Report.Int (Array.length f.sub_pos));
      ("sub_neg_samples", Report.Int (Array.length f.sub_neg));
    ]

let fig3_doc f = { Report.text = render_fig3 f; json = json_fig3 f }

(* --- Table I -------------------------------------------------------------- *)

let sign_accuracy_percent (s : Campaign.stats) =
  100.0 *. float_of_int s.Campaign.sign_correct /. float_of_int (max 1 s.Campaign.sign_total)

let value_accuracy_percent (s : Campaign.stats) =
  100.0 *. float_of_int s.Campaign.value_correct /. float_of_int (max 1 s.Campaign.value_total)

let render_table1 env =
  let s = env.stats in
  let buf = Buffer.create 8192 in
  Buffer.add_string buf "Table I: attack success percentages per actual coefficient (columns sum to 100)\n";
  Buffer.add_string buf (Sca.Confusion.render ~lo:(-7) ~hi:7 s.Campaign.confusion);
  Buffer.add_string buf
    (Printf.sprintf "\nsign accuracy: %.2f%% (%d/%d)   value accuracy: %.2f%% (%d/%d)\n"
       (sign_accuracy_percent s) s.Campaign.sign_correct s.Campaign.sign_total (value_accuracy_percent s)
       s.Campaign.value_correct s.Campaign.value_total);
  Buffer.contents buf

let json_table1 env =
  let s = env.stats in
  let c = s.Campaign.confusion in
  let lo = -7 and hi = 7 in
  let range = List.init (hi - lo + 1) (fun i -> lo + i) in
  let columns =
    List.map
      (fun actual ->
        Report.Obj
          [
            ("actual", Report.Int actual);
            ( "percent_predicted",
              Report.Obj
                (List.map
                   (fun predicted ->
                     (string_of_int predicted, Report.Float (Sca.Confusion.column_percent c ~actual ~predicted)))
                   range) );
          ])
      range
  in
  Report.Obj
    [
      ("confusion_columns", Report.List columns);
      ("sign_correct", Report.Int s.Campaign.sign_correct);
      ("sign_total", Report.Int s.Campaign.sign_total);
      ("sign_accuracy_percent", Report.Float (sign_accuracy_percent s));
      ("value_correct", Report.Int s.Campaign.value_correct);
      ("value_total", Report.Int s.Campaign.value_total);
      ("value_accuracy_percent", Report.Float (value_accuracy_percent s));
    ]

let table1_doc env = { Report.text = render_table1 env; json = json_table1 env }

(* --- Table II -------------------------------------------------------------- *)

type table2_row = {
  secret : int;
  probabilities : (int * float) array;
  centered : float;
  variance : float;
}

let table2 env =
  (* one example row per secret in -2..2, as the paper prints *)
  let wanted = [ 0; 1; -1; 2; -2 ] in
  List.filter_map
    (fun s ->
      let found = Array.to_list env.results |> List.find_opt (fun r -> r.Campaign.actual = s) in
      Option.map
        (fun r ->
          let post = r.Campaign.posterior_all in
          let probabilities = Array.to_list post |> List.filter (fun (v, _) -> v >= -2 && v <= 2) |> Array.of_list in
          {
            secret = s;
            probabilities;
            centered = Hints.Hint.centered_mean post;
            variance = Hints.Hint.variance post;
          })
        found)
    wanted

let table2_probability_cell row v =
  let p = Array.to_list row.probabilities |> List.assoc_opt v |> Option.value ~default:0.0 in
  if p > 0.999 then "        ~1" else if p < 1e-12 then "         0" else Printf.sprintf "  %8.2e" p

let table2_columns =
  [
    Report.icol ~heading:"secret" ~key:"secret" ~fmt:"%6d |" (fun r -> r.secret);
    Report.column
      ~heading:" |        -2        -1         0         1         2"
      ~key:"probabilities"
      ~cell:(fun r -> String.concat "" (List.map (table2_probability_cell r) [ -2; -1; 0; 1; 2 ]))
      ~value:(fun r ->
        Report.Obj
          (List.map
             (fun v ->
               ( string_of_int v,
                 Report.Float (Array.to_list r.probabilities |> List.assoc_opt v |> Option.value ~default:0.0) ))
             [ -2; -1; 0; 1; 2 ]));
    Report.fcol ~heading:" |  centered" ~key:"centered" ~fmt:" | %9.3f" (fun r -> r.centered);
    Report.fcol ~heading:"  variance" ~key:"variance" ~fmt:" %9.2e" (fun r -> r.variance);
  ]

let table2_doc rows =
  Report.table ~title:"Table II: guessing probabilities derived from selected measurements\n"
    ~header:"secret |        -2        -1         0         1         2 |  centered  variance\n" table2_columns rows

let render_table2 rows = (table2_doc rows).Report.text
let json_table2 rows = (table2_doc rows).Report.json

(* --- Tables III / IV --------------------------------------------------------- *)

type security_report = Sink.security_report = {
  bikz_no_hints : float;
  bikz_with_hints : float;
  bits_no_hints : float;
  bits_with_hints : float;
  perfect_hints : int;
  approximate_hints : int;
}

let lwe_instance = Sink.lwe_instance
let hints_of_results = Sink.hints_of_results
let security_of_hints = Sink.security_of_hints

type table3_report = {
  paper_mode : security_report;
  calibrated : security_report;
}

let table3 env =
  let calibrated =
    security_of_hints
      (hints_of_results env.results lwe_instance.Hints.Lwe.m (fun i r ->
           Hints.Hint.of_posterior ~coordinate:i r.Campaign.posterior_all))
  in
  (* Paper mode: the authors note their per-measurement probabilities
     round to 1 (or 0) in floating point, so the framework integrates
     essentially every measurement as a perfect hint. *)
  let paper_mode =
    security_of_hints
      (hints_of_results env.results lwe_instance.Hints.Lwe.m (fun i r ->
           { Hints.Hint.coordinate = i; kind = Hints.Hint.Perfect r.Campaign.verdict.Sca.Attack.value }))
  in
  { paper_mode; calibrated }

let render_table3 r =
  Printf.sprintf
    "Table III: cost of attack with/without hints, SEAL-128 (q=132120577, n=1024, sigma=3.2)\n\
    \  attack without hints:                 %8.2f bikz  (~2^%.1f)   [paper: 382.25 bikz / 2^128]\n\
    \  attack with hints (paper pipeline):   %8.2f bikz  (~2^%.1f)   [paper:  12.20 bikz / 2^4.4]\n\
    \  attack with hints (calibrated):       %8.2f bikz  (~2^%.1f)   (honest posterior variances)\n\
    \  calibrated hints: %d perfect, %d approximate\n"
    r.paper_mode.bikz_no_hints r.paper_mode.bits_no_hints r.paper_mode.bikz_with_hints
    r.paper_mode.bits_with_hints r.calibrated.bikz_with_hints r.calibrated.bits_with_hints
    r.calibrated.perfect_hints r.calibrated.approximate_hints

let json_table3 r =
  Report.Obj
    [ ("paper_mode", Sink.json_of_security r.paper_mode); ("calibrated", Sink.json_of_security r.calibrated) ]

let table3_doc r = { Report.text = render_table3 r; json = json_table3 r }

type table4_report = {
  base : security_report;
  bikz_with_guess : float;
  guesses : int;
  guess_success_probability : float;
  ladder : Hints.Hint.ladder_step list;
}

let table4 env =
  let sigma = env.prof.Campaign.sigma in
  let hint_list =
    hints_of_results env.results lwe_instance.Hints.Lwe.m (fun i r ->
        Hints.Hint.sign_hint ~sigma ~coordinate:i r.Campaign.verdict.Sca.Attack.sign)
  in
  let base = security_of_hints hint_list in
  (* one extra guess: the most likely value given only the sign is
     +-1; its success probability is the conditional prior mass *)
  let dbdd = Hints.Dbdd.create lwe_instance in
  Hints.Hint.apply_all dbdd hint_list;
  let first_nonzero =
    Array.to_list env.results
    |> List.mapi (fun i r -> (i, r))
    |> List.find_opt (fun (i, r) -> i < lwe_instance.Hints.Lwe.m && r.Campaign.verdict.Sca.Attack.sign <> 0)
  in
  (* extension: a full guess ladder driven by the value posteriors *)
  let ladder =
    let dbdd_ladder = Hints.Dbdd.create lwe_instance in
    let value_hints =
      hints_of_results env.results lwe_instance.Hints.Lwe.m (fun i r ->
          Hints.Hint.of_posterior ~coordinate:i r.Campaign.posterior_all)
    in
    Hints.Hint.apply_all dbdd_ladder value_hints;
    Hints.Hint.guess_ladder dbdd_ladder value_hints ~max_guesses:16
  in
  match first_nonzero with
  | None -> { base; bikz_with_guess = base.bikz_with_hints; guesses = 0; guess_success_probability = 0.0; ladder }
  | Some (i, _) ->
      Hints.Dbdd.perfect_hint dbdd i;
      let p1 = Mathkit.Gaussian.discrete_probability ~sigma 1 in
      let p_pos =
        let acc = ref 0.0 in
        for z = 1 to 41 do
          acc := !acc +. Mathkit.Gaussian.discrete_probability ~sigma z
        done;
        !acc
      in
      {
        base;
        bikz_with_guess = Hints.Dbdd.estimate_bikz dbdd;
        guesses = 1;
        guess_success_probability = p1 /. p_pos;
        ladder;
      }

let render_table4 r =
  let head =
    Printf.sprintf
      "Table IV: cost of attack using ONLY the branch vulnerability, SEAL-128\n\
      \  attack without hints:        %8.2f bikz   [paper: 382.25]\n\
      \  attack with sign hints:      %8.2f bikz   [paper: 253.29]\n\
      \  attack with hints & guesses: %8.2f bikz   [paper: 252.83]\n\
      \  number of guesses: %d   success probability: %.0f%%   [paper: 1 guess, 20%%]\n\
      \  => signs alone cannot recover the message (2^%.1f remains)\n"
      r.base.bikz_no_hints r.base.bikz_with_hints r.bikz_with_guess r.guesses
      (100.0 *. r.guess_success_probability)
      (Hints.Bkz_model.security_bits r.base.bikz_with_hints)
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf head;
  Buffer.add_string buf "  extension - guess ladder on the FULL attack's posteriors ([31]'s hints & guesses):\n";
  List.iteri
    (fun i step ->
      if i = 0 || (i + 1) mod 4 = 0 then
        Buffer.add_string buf
          (Printf.sprintf "    %2d guesses: success %5.1f%%  -> %7.2f bikz\n" step.Hints.Hint.guesses
             (100.0 *. step.Hints.Hint.success_probability)
             step.Hints.Hint.bikz))
    r.ladder;
  Buffer.contents buf

let json_table4 r =
  Report.Obj
    [
      ("base", Sink.json_of_security r.base);
      ("bikz_with_guess", Report.Float r.bikz_with_guess);
      ("guesses", Report.Int r.guesses);
      ("guess_success_probability", Report.Float r.guess_success_probability);
      ( "ladder",
        Report.List
          (List.map
             (fun (step : Hints.Hint.ladder_step) ->
               Report.Obj
                 [
                   ("guesses", Report.Int step.Hints.Hint.guesses);
                   ("success_probability", Report.Float step.Hints.Hint.success_probability);
                   ("bikz", Report.Float step.Hints.Hint.bikz);
                 ])
             r.ladder) );
    ]

let table4_doc r = { Report.text = render_table4 r; json = json_table4 r }
