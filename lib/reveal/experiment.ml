(* Thin aggregator over the per-table experiment modules.  Each
   [include] re-exports the stage's types and runners so the public
   [Experiment] API is unchanged; the artefact registry at the bottom
   is what the CLI's [report] subcommand dispatches over. *)

include Exp_core
include Exp_tables
include Exp_validate
include Exp_defense
include Exp_fault

let artefacts : (string * (config -> Report.doc)) list =
  [
    ("fig3", fun c -> fig3_doc (fig3 c));
    ("table1", fun c -> table1_doc (prepare c));
    ("table2", fun c -> table2_doc (table2 (prepare c)));
    ("table3", fun c -> table3_doc (table3 (prepare c)));
    ("table4", fun c -> table4_doc (table4 (prepare c)));
    ("signs", fun c -> signs_doc (signs (prepare c)));
    ("recover", fun c -> recovery_doc (recovery c));
    ("toylattice", fun c -> toylattice_doc (toylattice c));
    ("defenses", fun c -> defenses_doc (defenses c));
    ("tvla", fun c -> tvla_doc (tvla c));
    ("averaging", fun c -> averaging_doc (averaging c));
    ("ablate-leakage", fun c -> ablation_doc ~title:"leakage model" (ablate_leakage c));
    ("ablate-noise", fun c -> ablation_doc ~title:"measurement noise" (ablate_noise c));
    ("ablate-poi", fun c -> ablation_doc ~title:"POI count" (ablate_poi c));
    ("ablate-timing", fun c -> ablation_doc ~title:"CPU timing model" (ablate_timing c));
    ("ablate-features", fun c -> features_doc (ablate_features c));
    ("fault-sweep", fun c -> fault_sweep_doc (fault_sweep c));
    ("zero-consistency", fun c -> zero_consistency_doc (fault_zero_consistency c));
  ]

let artefact_names = List.map fst artefacts

let artefact name config =
  match List.assoc_opt name artefacts with
  | Some build -> Some (build config)
  | None -> None
