type config = {
  seed : int64;
  device_n : int;
  per_value : int;
  attack_traces : int;
}

let default = { seed = 0xD47EL; device_n = 256; per_value = 400; attack_traces = 20 }
let paper_scale = { seed = 0xD47EL; device_n = 1024; per_value = 7600; attack_traces = 25 }

type env = {
  config : config;
  device : Device.t;
  prof : Campaign.profile;
  stats : Campaign.stats;
  results : Campaign.coefficient_result array;
}

let prepare config =
  let rng = Mathkit.Prng.create ~seed:config.seed () in
  let device = Device.create ~n:config.device_n () in
  let prof = Campaign.profile ~per_value:config.per_value device rng in
  let scope_rng = Mathkit.Prng.split rng and sampler_rng = Mathkit.Prng.split rng in
  let stats, results = Campaign.run_attacks prof device ~traces:config.attack_traces ~scope_rng ~sampler_rng in
  { config; device; prof; stats; results }

let env_stats env = env.stats
let env_profile env = env.prof

(* --- figures ------------------------------------------------------------ *)

type fig3 = {
  full_portion : float array;
  bursts : (int * int) array;
  sub_zero : float array;
  sub_pos : float array;
  sub_neg : float array;
}

let fig3 config =
  let rng = Mathkit.Prng.create ~seed:config.seed () in
  let device = Device.create ~n:3 () in
  (* the three iterations of Fig. 3: noise = 0, > 0, < 0 *)
  let run = Device.run device ~scope_rng:rng ~draws:[| (0, 1); (4, 0); (-5, 2) |] in
  let samples = run.Device.trace.Power.Ptrace.samples in
  let seg = Sca.Segment.default in
  let bursts = Sca.Segment.burst_regions seg samples in
  let wins = Sca.Segment.windows seg samples in
  if Array.length wins < 4 then failwith "Experiment.fig3: segmentation failed";
  let sub i =
    let w = wins.(i) in
    Array.sub samples w.Sca.Segment.start (min 220 (w.Sca.Segment.stop - w.Sca.Segment.start))
  in
  {
    full_portion = samples;
    bursts = Array.map (fun b -> (b.Sca.Segment.start, b.Sca.Segment.stop)) bursts;
    sub_zero = sub 0;
    sub_pos = sub 1;
    sub_neg = sub 2;
  }

let render_fig3 f =
  let buf = Buffer.create 8192 in
  Buffer.add_string buf "Fig. 3 (a): power trace of three coefficient samplings\n";
  Buffer.add_string buf
    (Printf.sprintf "peaks (distribution calls) at sample ranges: %s\n"
       (String.concat ", " (Array.to_list (Array.map (fun (a, b) -> Printf.sprintf "[%d,%d)" a b) f.bursts))));
  Buffer.add_string buf (Power.Ptrace.ascii_plot ~width:110 ~height:14 f.full_portion);
  Buffer.add_string buf "\nFig. 3 (b): branch sub-traces (control flow differs per case)\n";
  Buffer.add_string buf "--- noise = 0 ---\n";
  Buffer.add_string buf (Power.Ptrace.ascii_plot ~width:110 ~height:8 f.sub_zero);
  Buffer.add_string buf "--- noise > 0 ---\n";
  Buffer.add_string buf (Power.Ptrace.ascii_plot ~width:110 ~height:8 f.sub_pos);
  Buffer.add_string buf "--- noise < 0 ---\n";
  Buffer.add_string buf (Power.Ptrace.ascii_plot ~width:110 ~height:8 f.sub_neg);
  Buffer.contents buf

(* --- Table I -------------------------------------------------------------- *)

let render_table1 env =
  let s = env.stats in
  let buf = Buffer.create 8192 in
  Buffer.add_string buf "Table I: attack success percentages per actual coefficient (columns sum to 100)\n";
  Buffer.add_string buf (Sca.Confusion.render ~lo:(-7) ~hi:7 s.Campaign.confusion);
  Buffer.add_string buf
    (Printf.sprintf "\nsign accuracy: %.2f%% (%d/%d)   value accuracy: %.2f%% (%d/%d)\n"
       (100.0 *. float_of_int s.Campaign.sign_correct /. float_of_int (max 1 s.Campaign.sign_total))
       s.Campaign.sign_correct s.Campaign.sign_total
       (100.0 *. float_of_int s.Campaign.value_correct /. float_of_int (max 1 s.Campaign.value_total))
       s.Campaign.value_correct s.Campaign.value_total);
  Buffer.contents buf

(* --- Table II -------------------------------------------------------------- *)

type table2_row = {
  secret : int;
  probabilities : (int * float) array;
  centered : float;
  variance : float;
}

let table2 env =
  (* one example row per secret in -2..2, as the paper prints *)
  let wanted = [ 0; 1; -1; 2; -2 ] in
  List.filter_map
    (fun s ->
      let found = Array.to_list env.results |> List.find_opt (fun r -> r.Campaign.actual = s) in
      Option.map
        (fun r ->
          let post = r.Campaign.posterior_all in
          let probabilities = Array.to_list post |> List.filter (fun (v, _) -> v >= -2 && v <= 2) |> Array.of_list in
          {
            secret = s;
            probabilities;
            centered = Hints.Hint.centered_mean post;
            variance = Hints.Hint.variance post;
          })
        found)
    wanted

let render_table2 rows =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "Table II: guessing probabilities derived from selected measurements\n";
  Buffer.add_string buf "secret |        -2        -1         0         1         2 |  centered  variance\n";
  List.iter
    (fun row ->
      Buffer.add_string buf (Printf.sprintf "%6d |" row.secret);
      List.iter
        (fun v ->
          let p = Array.to_list row.probabilities |> List.assoc_opt v |> Option.value ~default:0.0 in
          if p > 0.999 then Buffer.add_string buf "        ~1"
          else if p < 1e-12 then Buffer.add_string buf "         0"
          else Buffer.add_string buf (Printf.sprintf "  %8.2e" p))
        [ -2; -1; 0; 1; 2 ];
      Buffer.add_string buf (Printf.sprintf " | %9.3f %9.2e\n" row.centered row.variance))
    rows;
  Buffer.contents buf

(* --- Tables III / IV --------------------------------------------------------- *)

type security_report = {
  bikz_no_hints : float;
  bikz_with_hints : float;
  bits_no_hints : float;
  bits_with_hints : float;
  perfect_hints : int;
  approximate_hints : int;
}

let lwe_instance = Hints.Lwe.seal_128_1024

(* When the campaign attacked fewer coefficients than the instance has
   (scaled-down configs), the per-coefficient statistics are recycled -
   the per-coordinate hint quality is i.i.d., so this is an unbiased
   extrapolation of the security estimate. *)
let hints_of_results results count mk =
  if Array.length results = 0 then failwith "Experiment: no attacked coefficients";
  let len = Array.length results in
  List.init count (fun i -> mk i results.(i mod len))

let security_of_hints hint_list =
  let dbdd = Hints.Dbdd.create lwe_instance in
  let bikz_no_hints = Hints.Dbdd.estimate_bikz dbdd in
  Hints.Hint.apply_all dbdd hint_list;
  let bikz_with_hints = Hints.Dbdd.estimate_bikz dbdd in
  let perfect = Hints.Dbdd.integrated dbdd in
  {
    bikz_no_hints;
    bikz_with_hints;
    bits_no_hints = Hints.Bkz_model.security_bits bikz_no_hints;
    bits_with_hints = Hints.Bkz_model.security_bits bikz_with_hints;
    perfect_hints = perfect;
    approximate_hints = List.length hint_list - perfect;
  }

type table3_report = {
  paper_mode : security_report;
  calibrated : security_report;
}

let table3 env =
  let calibrated =
    security_of_hints
      (hints_of_results env.results lwe_instance.Hints.Lwe.m (fun i r ->
           Hints.Hint.of_posterior ~coordinate:i r.Campaign.posterior_all))
  in
  (* Paper mode: the authors note their per-measurement probabilities
     round to 1 (or 0) in floating point, so the framework integrates
     essentially every measurement as a perfect hint. *)
  let paper_mode =
    security_of_hints
      (hints_of_results env.results lwe_instance.Hints.Lwe.m (fun i r ->
           { Hints.Hint.coordinate = i; kind = Hints.Hint.Perfect r.Campaign.verdict.Sca.Attack.value }))
  in
  { paper_mode; calibrated }

let render_table3 r =
  Printf.sprintf
    "Table III: cost of attack with/without hints, SEAL-128 (q=132120577, n=1024, sigma=3.2)\n\
    \  attack without hints:                 %8.2f bikz  (~2^%.1f)   [paper: 382.25 bikz / 2^128]\n\
    \  attack with hints (paper pipeline):   %8.2f bikz  (~2^%.1f)   [paper:  12.20 bikz / 2^4.4]\n\
    \  attack with hints (calibrated):       %8.2f bikz  (~2^%.1f)   (honest posterior variances)\n\
    \  calibrated hints: %d perfect, %d approximate\n"
    r.paper_mode.bikz_no_hints r.paper_mode.bits_no_hints r.paper_mode.bikz_with_hints
    r.paper_mode.bits_with_hints r.calibrated.bikz_with_hints r.calibrated.bits_with_hints
    r.calibrated.perfect_hints r.calibrated.approximate_hints

type table4_report = {
  base : security_report;
  bikz_with_guess : float;
  guesses : int;
  guess_success_probability : float;
  ladder : Hints.Hint.ladder_step list;
}

let table4 env =
  let sigma = env.prof.Campaign.sigma in
  let hint_list =
    hints_of_results env.results lwe_instance.Hints.Lwe.m (fun i r ->
        Hints.Hint.sign_hint ~sigma ~coordinate:i r.Campaign.verdict.Sca.Attack.sign)
  in
  let base = security_of_hints hint_list in
  (* one extra guess: the most likely value given only the sign is
     +-1; its success probability is the conditional prior mass *)
  let dbdd = Hints.Dbdd.create lwe_instance in
  Hints.Hint.apply_all dbdd hint_list;
  let first_nonzero =
    Array.to_list env.results
    |> List.mapi (fun i r -> (i, r))
    |> List.find_opt (fun (i, r) -> i < lwe_instance.Hints.Lwe.m && r.Campaign.verdict.Sca.Attack.sign <> 0)
  in
  (* extension: a full guess ladder driven by the value posteriors *)
  let ladder =
    let dbdd_ladder = Hints.Dbdd.create lwe_instance in
    let value_hints =
      hints_of_results env.results lwe_instance.Hints.Lwe.m (fun i r ->
          Hints.Hint.of_posterior ~coordinate:i r.Campaign.posterior_all)
    in
    Hints.Hint.apply_all dbdd_ladder value_hints;
    Hints.Hint.guess_ladder dbdd_ladder value_hints ~max_guesses:16
  in
  match first_nonzero with
  | None -> { base; bikz_with_guess = base.bikz_with_hints; guesses = 0; guess_success_probability = 0.0; ladder }
  | Some (i, _) ->
      Hints.Dbdd.perfect_hint dbdd i;
      let p1 = Mathkit.Gaussian.discrete_probability ~sigma 1 in
      let p_pos =
        let acc = ref 0.0 in
        for z = 1 to 41 do
          acc := !acc +. Mathkit.Gaussian.discrete_probability ~sigma z
        done;
        !acc
      in
      {
        base;
        bikz_with_guess = Hints.Dbdd.estimate_bikz dbdd;
        guesses = 1;
        guess_success_probability = p1 /. p_pos;
        ladder;
      }

let render_table4 r =
  let head =
    Printf.sprintf
      "Table IV: cost of attack using ONLY the branch vulnerability, SEAL-128\n\
      \  attack without hints:        %8.2f bikz   [paper: 382.25]\n\
      \  attack with sign hints:      %8.2f bikz   [paper: 253.29]\n\
      \  attack with hints & guesses: %8.2f bikz   [paper: 252.83]\n\
      \  number of guesses: %d   success probability: %.0f%%   [paper: 1 guess, 20%%]\n\
      \  => signs alone cannot recover the message (2^%.1f remains)\n"
      r.base.bikz_no_hints r.base.bikz_with_hints r.bikz_with_guess r.guesses
      (100.0 *. r.guess_success_probability)
      (Hints.Bkz_model.security_bits r.base.bikz_with_hints)
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf head;
  Buffer.add_string buf "  extension - guess ladder on the FULL attack's posteriors ([31]'s hints & guesses):\n";
  List.iteri
    (fun i step ->
      if i = 0 || (i + 1) mod 4 = 0 then
        Buffer.add_string buf
          (Printf.sprintf "    %2d guesses: success %5.1f%%  -> %7.2f bikz\n" step.Hints.Hint.guesses
             (100.0 *. step.Hints.Hint.success_probability)
             step.Hints.Hint.bikz))
    r.ladder;
  Buffer.contents buf

(* --- supporting experiments ---------------------------------------------------- *)

type sign_report = { correct : int; total : int; accuracy_percent : float }

let signs env =
  let s = env.stats in
  {
    correct = s.Campaign.sign_correct;
    total = s.Campaign.sign_total;
    accuracy_percent = 100.0 *. float_of_int s.Campaign.sign_correct /. float_of_int (max 1 s.Campaign.sign_total);
  }

let render_signs r =
  Printf.sprintf "Sign recovery: %d/%d = %.2f%%   [paper: 100%%]\n" r.correct r.total r.accuracy_percent

type recovery_report = {
  n : int;
  coefficients_total : int;
  coefficients_exact : int;
  message_recovered_exactly : bool;
  residual_bikz : float;
  expected_wrong : float;
  log2_full_recovery_probability : float;
}

let recovery config =
  let rng = Mathkit.Prng.create ~seed:(Int64.add config.seed 17L) () in
  let n = config.device_n in
  let params = Bfv.Params.create ~n ~coeff_modulus:[ 132120577 ] ~plain_modulus:256 in
  let ctx = Bfv.Rq.context params in
  let sk = Bfv.Keygen.secret_key rng ctx in
  let pk = Bfv.Keygen.public_key rng ctx sk in
  let m =
    Bfv.Keys.plaintext_of_coeffs params (Array.init n (fun _ -> Mathkit.Prng.int rng 256))
  in
  (* the device samples e1 then e2 in one encryption: 2n draws *)
  let device = Device.create ~n:(2 * n) () in
  let prof_device = Device.create ~n:(min n 256) () in
  let prof = Campaign.profile ~per_value:(min config.per_value 400) prof_device rng in
  let scope_rng = Mathkit.Prng.split rng and sampler_rng = Mathkit.Prng.split rng in
  let run = Device.run_gaussian device ~scope_rng ~sampler_rng in
  let e1_true = Array.sub run.Device.noises 0 n and e2_true = Array.sub run.Device.noises n n in
  let u = Bfv.Rq.ternary rng ctx in
  let randomness =
    {
      Bfv.Encryptor.u;
      e1 = Bfv.Sampler.of_noises ctx e1_true;
      e2 = Bfv.Sampler.of_noises ctx e2_true;
      e1_log = { Bfv.Sampler.noises = e1_true; rejections = Array.make n 0 };
      e2_log = { Bfv.Sampler.noises = e2_true; rejections = Array.make n 0 };
    }
  in
  let c = Bfv.Encryptor.encrypt_with ctx pk m randomness in
  (* sanity: the algebra recovers m from the true noise *)
  (match Bfv.Recover.recover_with_noises ctx pk c ~e1_noises:e1_true ~e2_noises:e2_true with
  | Some m' when Bfv.Keys.plaintext_equal m m' -> ()
  | _ -> failwith "Experiment.recovery: eq. (3) sanity check failed");
  (* the attack *)
  let results = Campaign.attack_trace prof run in
  let recovered = Array.map (fun r -> r.Campaign.verdict.Sca.Attack.value) results in
  let exact = ref 0 in
  Array.iteri (fun i v -> if v = run.Device.noises.(i) then incr exact) recovered;
  let e1_rec = Array.sub recovered 0 n and e2_rec = Array.sub recovered n n in
  let recovered_exactly =
    match Bfv.Recover.recover_with_noises ctx pk c ~e1_noises:e1_rec ~e2_noises:e2_rec with
    | Some m' -> Bfv.Keys.plaintext_equal m m'
    | None -> false
  in
  (* residual search space, extrapolated to the full SEAL-128 instance:
     the e2-half posteriors are recycled over the 1024 coordinates *)
  let dbdd = Hints.Dbdd.create lwe_instance in
  for c = 0 to lwe_instance.Hints.Lwe.m - 1 do
    let r = results.(n + (c mod n)) in
    Hints.Hint.apply dbdd (Hints.Hint.of_posterior ~coordinate:c r.Campaign.posterior_all)
  done;
  (* posterior-based success accounting: P(correct) per coefficient *)
  let expected_wrong = ref 0.0 and log2_all = ref 0.0 in
  Array.iter
    (fun r ->
      let p_true =
        Array.fold_left
          (fun acc (v, p) -> if v = r.Campaign.actual then acc +. p else acc)
          0.0 r.Campaign.posterior_all
      in
      expected_wrong := !expected_wrong +. (1.0 -. p_true);
      log2_all := !log2_all +. Float.log2 (Float.max p_true 1e-300))
    results;
  {
    n;
    coefficients_total = 2 * n;
    coefficients_exact = !exact;
    message_recovered_exactly = recovered_exactly;
    residual_bikz = Hints.Dbdd.estimate_bikz dbdd;
    expected_wrong = !expected_wrong;
    log2_full_recovery_probability = !log2_all;
  }

let render_recovery r =
  Printf.sprintf
    "End-to-end single-trace recovery (n = %d):\n\
    \  eq.(3) with true e1,e2: message recovered exactly (sanity check passed)\n\
    \  attacked coefficients exactly right: %d / %d (%.1f%%)\n\
    \  plaintext recovered from raw guesses alone: %b\n\
    \  expected wrong coefficients (posterior-based): %.1f; P(all correct) = 2^%.0f\n\
    \  => the lattice stage is what absorbs the residue:\n\
    \  residual search space from posteriors: %.2f bikz (~2^%.1f)\n"
    r.n r.coefficients_exact r.coefficients_total
    (100.0 *. float_of_int r.coefficients_exact /. float_of_int r.coefficients_total)
    r.message_recovered_exactly r.expected_wrong r.log2_full_recovery_probability r.residual_bikz
    (Hints.Bkz_model.security_bits r.residual_bikz)

(* --- toy lattice validation -------------------------------------------------------- *)

type toylattice_row = {
  toy_n : int;
  hints_given : int;
  predicted_bikz : float;
  solved : bool;
}

let toylattice config =
  let rng = Mathkit.Prng.create ~seed:(Int64.add config.seed 31L) () in
  let polar = Mathkit.Gaussian.polar () in
  let rows = ref [] in
  List.iter
    (fun (toy_n, q) ->
      let md = Mathkit.Modular.modulus q in
      (* ring instance b = p1 * u + e2 over Z_q[x]/(x^n+1) *)
      let p1 = Mathkit.Poly.uniform rng md toy_n in
      let u = Array.init toy_n (fun _ -> Mathkit.Prng.ternary rng) in
      let e2 = Array.init toy_n (fun _ -> int_of_float (Float.round (Mathkit.Gaussian.normal polar rng ~mu:0.0 ~sigma:3.19))) in
      let a = Lattice.Embed.negacyclic_matrix ~q p1 in
      let b =
        Array.init toy_n (fun j ->
            let acc = ref 0 in
            for i = 0 to toy_n - 1 do
              acc := Mathkit.Modular.add md !acc (Mathkit.Modular.mul md a.(j).(i) (Mathkit.Modular.reduce md u.(i)))
            done;
            Mathkit.Modular.add md !acc (Mathkit.Modular.reduce md e2.(j)))
      in
      let inst = { Lattice.Embed.q; a; b } in
      List.iter
        (fun hints_given ->
          let reduced =
            if hints_given = 0 then inst
            else Lattice.Embed.eliminate_perfect inst ~known:(List.init hints_given (fun j -> (j, e2.(j))))
          in
          let solved =
            match Lattice.Embed.solve ~block_size:12 reduced with
            | Some sol -> sol.Lattice.Embed.error = Array.sub e2 hints_given (toy_n - hints_given)
            | None -> false
          in
          (* estimator prediction for the same shrinkage *)
          let lwe = { Hints.Lwe.n = toy_n; m = toy_n; q; sigma_error = 3.19; sigma_secret = sqrt (2.0 /. 3.0) } in
          let dbdd = Hints.Dbdd.create lwe in
          for i = 0 to hints_given - 1 do
            Hints.Dbdd.perfect_hint dbdd i
          done;
          rows := { toy_n; hints_given; predicted_bikz = Hints.Dbdd.estimate_bikz dbdd; solved } :: !rows)
        [ 0; toy_n / 2 ])
    [ (16, 521); (32, 257); (40, 127) ];
  List.rev !rows

let render_toylattice rows =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "Estimator vs. solver on toy Ring-LWE (sigma = 3.19, q shrinks as n grows to stay lattice-solvable):\n";
  Buffer.add_string buf "   n  hints  predicted bikz  BKZ-12 solved?\n";
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "%4d  %5d  %14.1f  %s\n" r.toy_n r.hints_given r.predicted_bikz
           (if r.solved then "yes" else "no")))
    rows;
  Buffer.add_string buf "(hints shrink the instance; estimator and solver must agree on the trend)\n";
  Buffer.contents buf

(* --- defenses ------------------------------------------------------------------------ *)

type defense_report = {
  variant : string;
  sign_accuracy : float;
  value_accuracy : float;
  bikz_after_attack : float;
}

let small_campaign ?(variant = Riscv.Sampler_prog.Vulnerable) ?synth ?cycle_model ?poi_count config rng =
  let n = min config.device_n 128 in
  let device =
    match synth with
    | Some s -> Device.create ~variant ~synth:s ?cycle_model ~n ()
    | None -> Device.create ~variant ?cycle_model ~n ()
  in
  let per_value = min config.per_value 200 in
  let prof =
    match poi_count with
    | Some p -> Campaign.profile ~per_value ~poi_count:p device rng
    | None -> Campaign.profile ~per_value device rng
  in
  let scope_rng = Mathkit.Prng.split rng and sampler_rng = Mathkit.Prng.split rng in
  if variant = Riscv.Sampler_prog.Shuffled then begin
    (* shuffled sampling order: attack the windows in sampled order *)
    let perm = Array.init n (fun i -> i) in
    Mathkit.Prng.shuffle sampler_rng perm;
    let run = Device.run_shuffled device ~scope_rng ~sampler_rng ~perm in
    let results = Campaign.attack_trace prof run in
    (prof, results)
  end
  else begin
    let _, results = Campaign.run_attacks prof device ~traces:(max 2 (config.attack_traces / 4)) ~scope_rng ~sampler_rng in
    (prof, results)
  end

let accuracies results =
  let sign_ok = ref 0 and value_ok = ref 0 and total = ref 0 in
  Array.iter
    (fun r ->
      incr total;
      if compare r.Campaign.actual 0 = r.Campaign.verdict.Sca.Attack.sign then incr sign_ok;
      if r.Campaign.actual = r.Campaign.verdict.Sca.Attack.value then incr value_ok)
    results;
  let pct x = 100.0 *. float_of_int x /. float_of_int (max 1 !total) in
  (pct !sign_ok, pct !value_ok)

let defenses config =
  let run variant name coordinates_known =
    let rng = Mathkit.Prng.create ~seed:(Int64.add config.seed 47L) () in
    let prof, results = small_campaign ~variant config rng in
    ignore prof;
    let sign_accuracy, value_accuracy = accuracies results in
    let bikz =
      if coordinates_known then begin
        let dbdd = Hints.Dbdd.create lwe_instance in
        Array.iteri
          (fun i r ->
            if i < lwe_instance.Hints.Lwe.m then
              Hints.Hint.apply dbdd (Hints.Hint.of_posterior ~coordinate:i r.Campaign.posterior_all))
          (Array.append results (Array.make (max 0 (lwe_instance.Hints.Lwe.m - Array.length results)) results.(0)));
        Hints.Dbdd.estimate_bikz dbdd
      end
      else Hints.Lwe.no_hint_bikz lwe_instance
    in
    { variant = name; sign_accuracy; value_accuracy; bikz_after_attack = bikz }
  in
  [
    run Riscv.Sampler_prog.Vulnerable "SEAL v3.2 (vulnerable)" true;
    run Riscv.Sampler_prog.Branchless "v3.6-style branchless" true;
    run Riscv.Sampler_prog.Shuffled "shuffled sampling order" false;
    run Riscv.Sampler_prog.Cdt_table "constant-time CDT sampler" true;
  ]

let render_defenses rows =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "Countermeasure study (Section V-A):\n";
  Buffer.add_string buf "  variant                      sign%   value%   residual bikz\n";
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "  %-26s %6.1f   %6.1f   %10.1f\n" r.variant r.sign_accuracy r.value_accuracy r.bikz_after_attack))
    rows;
  Buffer.add_string buf
    "(shuffling voids the coordinate hints; the branchless sampler removes the control-flow\n\
    \ leak but its mask arithmetic still leaks data -> 'may have a different vulnerability';\n\
    \ the CDT sampler -- prior work's target [10][12] -- leaks less but is not leak-free)\n";
  Buffer.contents buf

(* --- leakage assessment -------------------------------------------------------------- *)

type tvla_row = {
  sampler : string;
  max_t_first_order : float;
  leaky_samples : int;
  max_t_second_order : float;
}

let tvla_windows device rng ~count ~draw =
  (* fixed-length windows of single-coefficient runs *)
  let seg = Sca.Segment.default in
  let raw =
    Array.init count (fun _ ->
        let run = Device.run device ~scope_rng:rng ~draws:[| draw rng |] in
        let samples = run.Device.trace.Power.Ptrace.samples in
        let wins = Sca.Segment.windows seg samples in
        if Array.length wins < 1 then failwith "Experiment.tvla: no window";
        let w = wins.(0) in
        Array.sub samples w.Sca.Segment.start (w.Sca.Segment.stop - w.Sca.Segment.start))
  in
  let len = Array.fold_left (fun acc w -> min acc (Array.length w)) max_int raw in
  Array.map (fun w -> Array.sub w 0 len) raw

let tvla config =
  List.map
    (fun (variant, name) ->
      let rng = Mathkit.Prng.create ~seed:(Int64.add config.seed 71L) () in
      let device = Device.create ~variant ~n:1 () in
      let count = max 100 (config.per_value / 2) in
      let fixed = tvla_windows device rng ~count ~draw:(fun rng -> Device.profiling_draw device rng ~value:5) in
      let random =
        tvla_windows device rng ~count ~draw:(fun rng ->
            let draws, _ = Riscv.Sampler_prog.draws_of_gaussian rng Mathkit.Gaussian.seal_default ~count:1 in
            draws.(0))
      in
      let len = min (Array.length fixed.(0)) (Array.length random.(0)) in
      let clip set = Array.map (fun w -> Array.sub w 0 len) set in
      let fixed = clip fixed and random = clip random in
      let t1 = Sca.Tvla.t_statistics fixed random in
      let t2 = Sca.Tvla.second_order fixed random in
      {
        sampler = name;
        max_t_first_order = Sca.Tvla.max_abs_t t1;
        leaky_samples = Array.length (Sca.Tvla.leaky_points t1);
        max_t_second_order = Sca.Tvla.max_abs_t t2;
      })
    [ (Riscv.Sampler_prog.Vulnerable, "SEAL v3.2 (vulnerable)"); (Riscv.Sampler_prog.Branchless, "v3.6-style branchless") ]

let render_tvla rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "TVLA (fixed coefficient = 5 vs honest Gaussian), pass level |t| <= 4.5:\n";
  Buffer.add_string buf "  variant                     max |t| (1st)   leaky samples   max |t| (2nd)\n";
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "  %-26s %12.1f   %13d   %13.1f%s\n" r.sampler r.max_t_first_order r.leaky_samples
           r.max_t_second_order
           (if r.max_t_first_order > Sca.Tvla.threshold then "   FAIL" else "   pass")))
    rows;
  Buffer.add_string buf
    "(the branchless sampler removes the branches yet still fails TVLA: its mask\n\
    \ arithmetic is data-dependent -- the paper's 'may have a different vulnerability')\n";
  Buffer.contents buf

type averaging_row = { traces_averaged : int; value_accuracy : float }

let averaging config =
  let rng = Mathkit.Prng.create ~seed:(Int64.add config.seed 83L) () in
  let n = min config.device_n 128 in
  let device = Device.create ~n () in
  let prof = Campaign.profile ~per_value:(min config.per_value 200) device rng in
  let scope_rng = Mathkit.Prng.split rng and sampler_rng = Mathkit.Prng.split rng in
  (* hypothetical noise-reusing device: the same draw queue measured K
     times with fresh scope noise; windows averaged before matching *)
  let draws, _ = Riscv.Sampler_prog.draws_of_gaussian sampler_rng Mathkit.Gaussian.seal_default ~count:n in
  List.map
    (fun k ->
      let window_sets =
        Array.init k (fun _ ->
            let run = Device.run device ~scope_rng ~draws in
            let samples = run.Device.trace.Power.Ptrace.samples in
            let wins = Sca.Segment.windows prof.Campaign.segment samples in
            Sca.Segment.vectorize samples (Array.sub wins 0 n) ~length:prof.Campaign.window_length)
      in
      let averaged =
        Array.init n (fun i ->
            let acc = Array.make prof.Campaign.window_length 0.0 in
            Array.iter (fun set -> Array.iteri (fun t x -> acc.(t) <- acc.(t) +. x) set.(i)) window_sets;
            Array.map (fun x -> x /. float_of_int k) acc)
      in
      let ok = ref 0 in
      Array.iteri
        (fun i w -> if (Sca.Attack.classify prof.Campaign.attack w).Sca.Attack.value = fst draws.(i) then incr ok)
        averaged;
      { traces_averaged = k; value_accuracy = 100.0 *. float_of_int !ok /. float_of_int n })
    [ 1; 4; 16 ]

let render_averaging rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "Multi-trace averaging baseline (hypothetical noise-reusing device):\n";
  List.iter
    (fun r -> Buffer.add_string buf (Printf.sprintf "  averaging %2d traces: value accuracy %5.1f%%\n" r.traces_averaged r.value_accuracy))
    rows;
  Buffer.add_string buf
    "(BFV samples fresh noise per encryption, so the real adversary gets K = 1;\n\
    \ this is why the paper's attack is designed to be single-trace)\n";
  Buffer.contents buf

(* --- ablations ----------------------------------------------------------------------- *)

type ablation_row = { label : string; sign_accuracy : float; value_accuracy : float }

let ablate_leakage config =
  List.map
    (fun (label, model) ->
      let rng = Mathkit.Prng.create ~seed:(Int64.add config.seed 53L) () in
      let synth = { Power.Synth.default with Power.Synth.model } in
      let _, results = small_campaign ~synth config rng in
      let sign_accuracy, value_accuracy = accuracies results in
      { label; sign_accuracy; value_accuracy })
    [
      ("HW + HD (default)", Power.Leakage.default);
      ("HW only", Power.Leakage.hw_only);
      ("HD only", Power.Leakage.hd_only);
    ]

let ablate_noise config =
  List.map
    (fun sigma ->
      let rng = Mathkit.Prng.create ~seed:(Int64.add config.seed 59L) () in
      let synth = { Power.Synth.default with Power.Synth.noise_sigma = sigma } in
      let _, results = small_campaign ~synth config rng in
      let sign_accuracy, value_accuracy = accuracies results in
      { label = Printf.sprintf "scope noise sigma = %.2f" sigma; sign_accuracy; value_accuracy })
    [ 0.05; 0.17; 0.35; 0.7; 1.4 ]

let ablate_poi config =
  List.map
    (fun poi_count ->
      let rng = Mathkit.Prng.create ~seed:(Int64.add config.seed 61L) () in
      let _, results = small_campaign ~poi_count config rng in
      let sign_accuracy, value_accuracy = accuracies results in
      { label = Printf.sprintf "%2d POIs per template" poi_count; sign_accuracy; value_accuracy })
    [ 4; 8; 16; 24; 32 ]

type feature_row = { feature_method : string; accuracy : float }

let ablate_features config =
  let rng = Mathkit.Prng.create ~seed:(Int64.add config.seed 67L) () in
  let n = min config.device_n 128 in
  let device = Device.create ~n () in
  let segment, window_length, classes =
    Campaign.profiling_windows ~per_value:(min config.per_value 200) device rng
  in
  (* held-out attack windows with ground truth *)
  let scope_rng = Mathkit.Prng.split rng and sampler_rng = Mathkit.Prng.split rng in
  let test_windows =
    List.concat
      (List.init 4 (fun _ ->
           let run = Device.run_gaussian device ~scope_rng ~sampler_rng in
           let samples = run.Device.trace.Power.Ptrace.samples in
           let wins = Sca.Segment.windows segment samples in
           let vecs = Sca.Segment.vectorize samples (Array.sub wins 0 n) ~length:window_length in
           Array.to_list (Array.mapi (fun i w -> (run.Device.noises.(i), w)) vecs)))
  in
  let in_labels = Hashtbl.create 32 in
  List.iter (fun (v, _) -> Hashtbl.replace in_labels v ()) classes;
  let test_windows = List.filter (fun (v, _) -> Hashtbl.mem in_labels v) test_windows in
  let evaluate name project =
    let template = Sca.Template.build ~pois:[||] (List.map (fun (l, rows) -> (l, Array.map project rows)) classes) in
    let ok = List.fold_left (fun acc (actual, w) -> if Sca.Template.classify template (project w) = actual then acc + 1 else acc) 0 test_windows in
    { feature_method = name; accuracy = 100.0 *. float_of_int ok /. float_of_int (List.length test_windows) }
  in
  let class_array = Array.of_list (List.map snd classes) in
  let sost_pois = Sca.Sosd.select ~count:24 (Sca.Sosd.scores_t class_array) in
  let sosd_pois = Sca.Sosd.select ~count:24 (Sca.Sosd.scores class_array) in
  let pca = Sca.Pca.fit ~k:12 classes in
  let corr_pois =
    let rows = List.concat_map (fun (l, ws) -> Array.to_list (Array.map (fun w -> (l, w)) ws)) classes in
    let traces = Array.of_list (List.map snd rows) in
    let labels = Array.of_list (List.map fst rows) in
    Sca.Cpa.correlation_poi ~count:24 traces labels
  in
  [
    evaluate "SOST POIs (default)" (fun w -> Sca.Sosd.pick w sost_pois);
    evaluate "SOSD POIs (paper's cite [30])" (fun w -> Sca.Sosd.pick w sosd_pois);
    evaluate "PCA subspace (k=12)" (Sca.Pca.transform pca);
    evaluate "correlation POIs" (fun w -> Sca.Sosd.pick w corr_pois);
  ]

let ablate_timing config =
  let picorv32 = Riscv.Cpu.cycles_of_class in
  let uniform4 = fun (_ : Riscv.Inst.klass) -> 4 in
  let slow_div k = match k with Riscv.Inst.K_div -> 64 | other -> picorv32 other in
  let fast_div k = match k with Riscv.Inst.K_div -> 12 | other -> picorv32 other in
  List.map
    (fun (label, cycle_model) ->
      let rng = Mathkit.Prng.create ~seed:(Int64.add config.seed 73L) () in
      match small_campaign ~cycle_model ?synth:None config rng with
      | _, results ->
          let sign_accuracy, value_accuracy = accuracies results in
          { label; sign_accuracy; value_accuracy }
      | exception Failure _ ->
          (* segmentation collapsed: the peaks this timing model
             produces are too short/close for the default settings *)
          { label = label ^ " (segmentation failed)"; sign_accuracy = 0.0; value_accuracy = 0.0 })
    [
      ("PicoRV32 latencies (default)", picorv32);
      ("slow bit-serial divider (64)", slow_div);
      ("fast divider (12 cycles)", fast_div);
      ("uniform 4-cycle machine", uniform4);
    ]

let render_features rows =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "Feature-extraction comparison (flat 29-class templates, same data):\n";
  List.iter
    (fun r -> Buffer.add_string buf (Printf.sprintf "  %-32s value accuracy %5.1f%%\n" r.feature_method r.accuracy))
    rows;
  Buffer.contents buf

let render_ablation ~title rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "Ablation: %s\n" title);
  Buffer.add_string buf "  setting                        sign%   value%\n";
  List.iter
    (fun r -> Buffer.add_string buf (Printf.sprintf "  %-28s %6.1f   %6.1f\n" r.label r.sign_accuracy r.value_accuracy))
    rows;
  Buffer.contents buf

(* --- fault sweep --------------------------------------------------------------------- *)

type fault_sweep_row = {
  intensity : float;
  recovery_rate : float;
  sign_accuracy : float;
  value_accuracy : float;
  confident : int;
  tentative : int;
  sign_only : int;
  unknown : int;
  retried : int;
  unrecoverable : int;
  perfect_hints : int;
  approximate_hints : int;
  none_hints : int;
  graded_bikz : float;
}

(* All intensities share one fault-free profile and the same attack
   seeds: the only thing that varies along the sweep is the fault load
   on the attacked device, so the curves measure fault tolerance and
   nothing else. *)
let fault_sweep ?(intensities = [| 0.0; 0.25; 0.5; 0.75; 1.0 |]) config =
  let rng = Mathkit.Prng.create ~seed:(Int64.add config.seed 89L) () in
  let n = min config.device_n 128 in
  let device = Device.create ~n () in
  let prof = Campaign.profile ~per_value:(min config.per_value 200) device rng in
  let traces = max 2 (config.attack_traces / 4) in
  Array.to_list intensities
  |> List.map (fun intensity ->
         let fault = if intensity = 0.0 then None else Some (Power.Fault.of_intensity intensity) in
         let dev = Device.with_fault device fault in
         let scope_rng = Mathkit.Prng.create ~seed:(Int64.add config.seed 97L) () in
         let sampler_rng = Mathkit.Prng.create ~seed:(Int64.add config.seed 101L) () in
         let stats, results = Campaign.run_attacks_resilient prof dev ~traces ~scope_rng ~sampler_rng in
         let confident, tentative, sign_only, unknown = Campaign.grade_counts results in
         let retried = ref 0 and unrecoverable = ref 0 in
         Array.iter
           (fun r ->
             match r.Campaign.recovery with
             | Campaign.Retried _ -> incr retried
             | Campaign.Unrecoverable -> incr unrecoverable
             | Campaign.Clean -> ())
           results;
         let hints =
           hints_of_results results lwe_instance.Hints.Lwe.m (fun i r ->
               Campaign.hint_of_result ~sigma:prof.Campaign.sigma ~coordinate:i r)
         in
         let perfect_hints, approximate_hints, none_hints = Hints.Hint.kind_counts hints in
         let sec = security_of_hints hints in
         let total = max 1 (Array.length results) in
         {
           intensity;
           recovery_rate = float_of_int (confident + tentative) /. float_of_int total;
           sign_accuracy =
             100.0 *. float_of_int stats.Campaign.sign_correct /. float_of_int (max 1 stats.Campaign.sign_total);
           value_accuracy =
             100.0 *. float_of_int stats.Campaign.value_correct /. float_of_int (max 1 stats.Campaign.value_total);
           confident;
           tentative;
           sign_only;
           unknown;
           retried = !retried;
           unrecoverable = !unrecoverable;
           perfect_hints;
           approximate_hints;
           none_hints;
           graded_bikz = sec.bikz_with_hints;
         })

let render_fault_sweep rows =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "Fault sweep: graceful degradation under measurement faults\n";
  Buffer.add_string buf
    "  intensity  recovery%  sign%   value%   conf  tent  sign  unk   retried  unrec   hints(P/A/-)      bikz\n";
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "  %9.2f  %8.1f  %5.1f   %5.1f   %4d  %4d  %4d  %4d   %7d  %5d   %4d/%4d/%4d  %8.2f\n"
           r.intensity
           (100.0 *. r.recovery_rate)
           r.sign_accuracy r.value_accuracy r.confident r.tentative r.sign_only r.unknown r.retried
           r.unrecoverable r.perfect_hints r.approximate_hints r.none_hints r.graded_bikz))
    rows;
  Buffer.add_string buf
    "(recovery = coefficients graded Confident or Tentative; bikz rises as hints degrade\n\
    \ along the ladder perfect -> approximate -> sign-only -> none)\n";
  Buffer.contents buf

(* The two properties the sweep must honour: recovery degrades
   monotonically with intensity, and the reported hardness never drops
   below the clean run's (degradation must not make the attack look
   stronger).  Small tolerances absorb grade flips of individual
   borderline coefficients. *)
let fault_sweep_check ?(recovery_tolerance = 0.02) ?(bikz_tolerance = 0.5) rows =
  match rows with
  | [] -> Error "fault sweep produced no rows"
  | first :: _ ->
      let problems = ref [] in
      let rec walk = function
        | a :: (b :: _ as rest) ->
            if b.recovery_rate > a.recovery_rate +. recovery_tolerance then
              problems :=
                Printf.sprintf "recovery rate rises from %.3f (intensity %.2f) to %.3f (intensity %.2f)"
                  a.recovery_rate a.intensity b.recovery_rate b.intensity
                :: !problems;
            walk rest
        | _ -> ()
      in
      walk rows;
      List.iter
        (fun r ->
          if r.graded_bikz < first.graded_bikz -. bikz_tolerance then
            problems :=
              Printf.sprintf "bikz %.2f at intensity %.2f under-reports hardness vs clean run (%.2f)" r.graded_bikz
                r.intensity first.graded_bikz
              :: !problems)
        rows;
      (match !problems with [] -> Ok () | ps -> Error (String.concat "; " (List.rev ps)))

(* --- zero-fault regression ------------------------------------------------------------- *)

type zero_consistency = {
  coefficients : int;
  verdict_mismatches : int;
  grade_downgrades : int;  (* resilient coefficients graded SignOnly/Unknown *)
  bikz_classic : float;
  bikz_graded : float;
}

(* The acceptance gate for the whole fault-tolerance stack: with no
   fault model installed, the resilient pipeline must reproduce the
   classic one bit for bit — same verdicts, same bikz. *)
let fault_zero_consistency config =
  let rng = Mathkit.Prng.create ~seed:(Int64.add config.seed 89L) () in
  let n = min config.device_n 128 in
  let device = Device.create ~n () in
  let prof = Campaign.profile ~per_value:(min config.per_value 200) device rng in
  let traces = max 2 (config.attack_traces / 4) in
  let seeds () =
    ( Mathkit.Prng.create ~seed:(Int64.add config.seed 97L) (),
      Mathkit.Prng.create ~seed:(Int64.add config.seed 101L) () )
  in
  let scope_rng, sampler_rng = seeds () in
  let _, classic = Campaign.run_attacks prof device ~traces ~scope_rng ~sampler_rng in
  (* thread an explicit no-op fault config through the device to also
     exercise the is_noop short-circuit *)
  let scope_rng, sampler_rng = seeds () in
  let _, resilient =
    Campaign.run_attacks_resilient prof
      (Device.with_fault device (Some Power.Fault.none))
      ~traces ~scope_rng ~sampler_rng
  in
  if Array.length classic <> Array.length resilient then
    failwith "Experiment.fault_zero_consistency: result counts differ";
  let mism = ref 0 and downgrades = ref 0 in
  Array.iteri
    (fun i c ->
      let r = resilient.(i) in
      if
        c.Campaign.actual <> r.Campaign.actual
        || c.Campaign.verdict.Sca.Attack.value <> r.Campaign.verdict.Sca.Attack.value
        || c.Campaign.verdict.Sca.Attack.sign <> r.Campaign.verdict.Sca.Attack.sign
      then incr mism;
      match r.Campaign.grade with
      | Campaign.SignOnly | Campaign.Unknown -> incr downgrades
      | Campaign.Confident | Campaign.Tentative -> ())
    classic;
  let bikz results mk =
    (security_of_hints (hints_of_results results lwe_instance.Hints.Lwe.m mk)).bikz_with_hints
  in
  {
    coefficients = Array.length classic;
    verdict_mismatches = !mism;
    grade_downgrades = !downgrades;
    bikz_classic = bikz classic (fun i r -> Hints.Hint.of_posterior ~coordinate:i r.Campaign.posterior_all);
    bikz_graded =
      bikz resilient (fun i r -> Campaign.hint_of_result ~sigma:prof.Campaign.sigma ~coordinate:i r);
  }

let render_zero_consistency z =
  Printf.sprintf
    "Zero-fault regression: resilient pipeline vs classic pipeline over %d coefficients\n\
    \  verdict mismatches: %d (must be 0)\n\
    \  grades below Tentative: %d (must be 0 for bikz equality)\n\
    \  bikz classic %.4f vs graded %.4f (must match)\n"
    z.coefficients z.verdict_mismatches z.grade_downgrades z.bikz_classic z.bikz_graded
