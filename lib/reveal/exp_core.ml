type config = {
  seed : int64;
  device_n : int;
  per_value : int;
  attack_traces : int;
}

let default = { seed = 0xD47EL; device_n = 256; per_value = 400; attack_traces = 20 }
let paper_scale = { seed = 0xD47EL; device_n = 1024; per_value = 7600; attack_traces = 25 }

type env = {
  config : config;
  device : Device.t;
  prof : Campaign.profile;
  stats : Campaign.stats;
  results : Campaign.coefficient_result array;
}

let prepare config =
  let rng = Mathkit.Prng.create ~seed:config.seed () in
  let device = Device.create ~n:config.device_n () in
  let prof = Campaign.profile ~per_value:config.per_value device rng in
  let scope_rng = Mathkit.Prng.split rng and sampler_rng = Mathkit.Prng.split rng in
  let stats, results = Campaign.run_attacks prof device ~traces:config.attack_traces ~scope_rng ~sampler_rng in
  { config; device; prof; stats; results }

let env_stats env = env.stats
let env_profile env = env.prof

let small_campaign ?(variant = Riscv.Sampler_prog.Vulnerable) ?synth ?cycle_model ?poi_count config rng =
  let n = min config.device_n 128 in
  let device =
    match synth with
    | Some s -> Device.create ~variant ~synth:s ?cycle_model ~n ()
    | None -> Device.create ~variant ?cycle_model ~n ()
  in
  let per_value = min config.per_value 200 in
  let prof =
    match poi_count with
    | Some p -> Campaign.profile ~per_value ~poi_count:p device rng
    | None -> Campaign.profile ~per_value device rng
  in
  let scope_rng = Mathkit.Prng.split rng and sampler_rng = Mathkit.Prng.split rng in
  if variant = Riscv.Sampler_prog.Shuffled then begin
    (* shuffled sampling order: attack the windows in sampled order *)
    let perm = Array.init n (fun i -> i) in
    Mathkit.Prng.shuffle sampler_rng perm;
    let run = Device.run_shuffled device ~scope_rng ~sampler_rng ~perm in
    let results = Campaign.attack_trace prof run in
    (prof, results)
  end
  else begin
    let _, results =
      Campaign.run_attacks prof device ~traces:(max 2 (config.attack_traces / 4)) ~scope_rng ~sampler_rng
    in
    (prof, results)
  end

(* A complete instrumented campaign under the deterministic logical
   clock: profile, attack resiliently, integrate hints — every stage
   span and metric lands in a memory sink whose rendered summary is
   byte-reproducible (single worker domain, fixed seed).  Pinned as a
   golden and shown in the README. *)
let obs_golden_config = { seed = 0xD47EL; device_n = 64; per_value = 40; attack_traces = 2 }

let obs_summary_demo config =
  let sink, drain = Obs.Sink.memory () in
  let obs = Obs.Ctx.create ~clock:(Obs.Clock.logical ()) ~sink () in
  let rng = Mathkit.Prng.create ~seed:config.seed () in
  let device = Device.create ~n:config.device_n () in
  let prof = Campaign.profile ~per_value:config.per_value ~domains:1 ~obs device rng in
  let scope_rng = Mathkit.Prng.split rng and sampler_rng = Mathkit.Prng.split rng in
  let _stats, results =
    Campaign.run_attacks_resilient ~obs ~domains:1 prof device ~traces:config.attack_traces ~scope_rng
      ~sampler_rng
  in
  let hints =
    Sink.hints_of_results results (Array.length results) (fun i r ->
        Campaign.hint_of_result ~sigma:prof.Campaign.sigma ~coordinate:i r)
  in
  let (_ : Sink.security_report) = Sink.security_of_hints ~obs hints in
  Obs.Ctx.close obs;
  match Obs.Summary.of_records (drain ()) with
  | Ok s -> Obs.Summary.render s
  | Error e -> failwith ("Experiment.obs_summary_demo: " ^ e)

let accuracies results =
  let sign_ok = ref 0 and value_ok = ref 0 and total = ref 0 in
  Array.iter
    (fun r ->
      incr total;
      if compare r.Campaign.actual 0 = r.Campaign.verdict.Sca.Attack.sign then incr sign_ok;
      if r.Campaign.actual = r.Campaign.verdict.Sca.Attack.value then incr value_ok)
    results;
  let pct x = 100.0 *. float_of_int x /. float_of_int (max 1 !total) in
  (pct !sign_ok, pct !value_ok)
