(** Report rendering: one declaration, two renderers.

    The experiment modules used to hand-roll every table twice — once
    as [Printf] text, and (for machine consumption) not at all.  Here
    a table is a list of {!column} declarations; {!table} renders the
    same rows as the historical byte-exact text AND as a JSON array,
    so the two can never drift.  The {!json} type is hand-rolled
    emission (the repo has no JSON dependency, deliberately): compact
    form, floats pinned to ["%.12g"], NaN/infinity as [null].  It is
    [Obs.Json.t] re-exported by equation — the codec lives in the obs
    layer so traces and reports share one implementation. *)

type json = Obs.Json.t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Obj of (string * json) list

val to_string : json -> string
(** Compact (single-line) rendering with full string escaping. *)

val print : json -> unit
(** [to_string] to stdout plus a newline — the [--json] output path. *)

type doc = { text : string; json : json }
(** One artefact, both renderings. *)

(** {1 Column combinators} *)

type 'a column = {
  heading : string;  (** carries its own leading spaces — headings concatenate byte-exactly *)
  cell : 'a -> string;  (** fixed-width cell, leading spaces included *)
  key : string;  (** JSON field name *)
  value : 'a -> json;
}

val column : heading:string -> key:string -> cell:('a -> string) -> value:('a -> json) -> 'a column

val fcol : heading:string -> key:string -> fmt:(float -> string, unit, string) format -> ('a -> float) -> 'a column
(** Float column: [fmt] formats the text cell, JSON gets the raw value. *)

val icol : heading:string -> key:string -> fmt:(int -> string, unit, string) format -> ('a -> int) -> 'a column
val scol : heading:string -> key:string -> fmt:(string -> string, unit, string) format -> ('a -> string) -> 'a column

val row_json : 'a column list -> 'a -> json
(** The [Obj] a single row renders to. *)

val table : title:string -> ?header:string -> ?footer:string -> 'a column list -> 'a list -> doc
(** [table ~title columns rows] — text is
    [title ^ headings ^ "\n" ^ row lines ^ footer] (pass [?header] to
    override the concatenated headings when the historical header line
    does not decompose per column); json is the array of row objects.
    [title] and [footer] must carry their own trailing newlines, as the
    historical renderers did. *)
