(** Per-table and per-figure experiment runners.

    One function per artefact of the paper's evaluation (Fig. 3,
    Tables I-IV) plus the supporting validations and the ablations
    called out in DESIGN.md.  Every runner is deterministic given the
    configuration's seed, returns its numbers in a record, and renders
    a printable report through [render_*].  The bench executable is a
    thin dispatcher over this module. *)

type config = {
  seed : int64;
  device_n : int;  (** coefficients per attacked trace *)
  per_value : int;  (** profiling windows per candidate value *)
  attack_traces : int;  (** full single-trace attacks to average over *)
}

val default : config
(** Scaled-down but shape-stable: n = 256, 400 windows/value,
    20 traces (5120 attacked coefficients). *)

val paper_scale : config
(** The paper's campaign: n = 1024, ~7600 windows/value (220k
    profiling samplings), 25 traces (25 600 attacked coefficients).
    Minutes, not seconds. *)

val obs_golden_config : config
(** Tiny campaign for the observability golden: n = 64, 40
    windows/value, 2 traces — seconds, and byte-reproducible under the
    logical clock. *)

val obs_summary_demo : config -> string
(** Run a fully instrumented campaign (profile, resilient attack, hint
    integration) with a deterministic logical clock and a single worker
    domain, and return the rendered {!Obs.Summary} — the transcript
    pinned in [test/golden/obs_summary.txt] and shown in the README. *)

type env
(** Shared profiling/attack state reused by the table experiments. *)

val prepare : config -> env
val env_stats : env -> Campaign.stats
val env_profile : env -> Campaign.profile

(* --- figures ---------------------------------------------------------- *)

type fig3 = {
  full_portion : float array;  (** fig 3a: a 3-coefficient trace portion *)
  bursts : (int * int) array;  (** detected distribution-call peaks *)
  sub_zero : float array;  (** fig 3b: branch windows per case *)
  sub_pos : float array;
  sub_neg : float array;
}

val fig3 : config -> fig3
val render_fig3 : fig3 -> string

(* --- Table I ----------------------------------------------------------- *)

val render_table1 : env -> string
(** Confusion matrix, columns -7..7 as printed in the paper (the full
    -14..14 matrix is in the stats record). *)

(* --- Table II ---------------------------------------------------------- *)

type table2_row = {
  secret : int;
  probabilities : (int * float) array;  (** posterior over -2..2 *)
  centered : float;
  variance : float;
}

val table2 : env -> table2_row list
val render_table2 : table2_row list -> string

(* --- Tables III / IV ----------------------------------------------------- *)

type security_report = {
  bikz_no_hints : float;
  bikz_with_hints : float;
  bits_no_hints : float;
  bits_with_hints : float;
  perfect_hints : int;
  approximate_hints : int;
}

type table3_report = {
  paper_mode : security_report;
      (** every measurement integrated at the confidence the paper's
          pipeline assigns it — the "probabilities rounded to 1 by
          floating-point precision" regime of Section IV-C, in which
          nearly all hints are perfect.  This is what Table III's 12.2
          bikz corresponds to. *)
  calibrated : security_report;
      (** same attack, but each hint carries its honest Bayesian
          posterior variance; the conservative residual hardness *)
}

val table3 : env -> table3_report
(** Full attack: posteriors of 1024 attacked coefficients as hints on
    the e2 coordinates of the SEAL-128 instance. *)

val render_table3 : table3_report -> string

type table4_report = {
  base : security_report;  (** sign/zero hints only *)
  bikz_with_guess : float;
  guesses : int;
  guess_success_probability : float;
  ladder : Hints.Hint.ladder_step list;
      (** extension: the full hints-and-guesses trade-off of [31],
          guessing the most confident coefficients first *)
}

val table4 : env -> table4_report
val render_table4 : table4_report -> string

(* --- supporting experiments ----------------------------------------------- *)

type sign_report = { correct : int; total : int; accuracy_percent : float }

val signs : env -> sign_report
val render_signs : sign_report -> string

type recovery_report = {
  n : int;
  coefficients_total : int;  (** 2n: e1 and e2 *)
  coefficients_exact : int;
  message_recovered_exactly : bool;  (** all-coefficient recovery succeeded *)
  residual_bikz : float;  (** estimator on the attack posteriors *)
  expected_wrong : float;  (** sum of per-coefficient error probabilities *)
  log2_full_recovery_probability : float;
      (** log2 of the probability every coefficient was guessed right
          in this one trace (posterior-based, independence assumed) *)
}

val recovery : config -> recovery_report
(** End-to-end: encrypt on the device, attack the trace, rebuild e1/e2
    and run eq. (3); also quantifies the remaining search space. *)

val render_recovery : recovery_report -> string

type toylattice_row = {
  toy_n : int;
  hints_given : int;
  predicted_bikz : float;
  solved : bool;
}

val toylattice : config -> toylattice_row list
(** Estimator-vs-solver validation: hint-reduced toy Ring-LWE
    instances handed to LLL/BKZ; solved iff the planted (u, e2) comes
    back.  More hints => lower predicted bikz => solvable. *)

val render_toylattice : toylattice_row list -> string

(* --- defenses and ablations -------------------------------------------------- *)

type defense_report = {
  variant : string;
  sign_accuracy : float;  (** percent *)
  value_accuracy : float;
  bikz_after_attack : float;
}

val defenses : config -> defense_report list
(** Vulnerable vs v3.6-style branchless vs shuffled sampling order. *)

val render_defenses : defense_report list -> string

type tvla_row = {
  sampler : string;
  max_t_first_order : float;
  leaky_samples : int;
  max_t_second_order : float;
}

val tvla : config -> tvla_row list
(** Fixed-vs-random Welch t-test per firmware variant: certifies where
    each sampler leaks.  The branchless variant still failing TVLA is
    the quantitative form of the paper's "v3.6 may have a different
    vulnerability". *)

val render_tvla : tvla_row list -> string

type averaging_row = { traces_averaged : int; value_accuracy : float }

val averaging : config -> averaging_row list
(** Multi-trace baseline: if the device (hypothetically) re-used its
    noise, averaging K traces would wash out the measurement noise and
    push value recovery toward 100%.  BFV encryption forbids that —
    fresh noise every run — which is exactly why the paper's attack
    must work from a single trace. *)

val render_averaging : averaging_row list -> string

type ablation_row = { label : string; sign_accuracy : float; value_accuracy : float }

val ablate_leakage : config -> ablation_row list
val ablate_noise : config -> ablation_row list
val ablate_poi : config -> ablation_row list

type feature_row = { feature_method : string; accuracy : float }

val ablate_timing : config -> ablation_row list
(** Robustness to the CPU timing model: the attack must survive
    plausible variations of the core's latency table; a machine whose
    divider is too fast breaks the peak-based segmentation — a real
    limitation the paper's 1.5 MHz multi-cycle target avoids. *)

val ablate_features : config -> feature_row list
(** Feature-extraction comparison on the same profiling data: SOST
    points of interest (the pipeline default), plain SOSD POIs (the
    method the paper cites), PCA principal-subspace templates
    (Archambeau et al.) and correlation-selected POIs.  Single 29-class
    templates, so the numbers isolate the feature choice. *)

val render_features : feature_row list -> string
val render_ablation : title:string -> ablation_row list -> string

(* --- fault tolerance ---------------------------------------------------------- *)

type fault_sweep_row = {
  intensity : float;  (** 0.0 = clean, 1.0 = the full reference fault load *)
  recovery_rate : float;  (** fraction of coefficients graded >= Tentative *)
  sign_accuracy : float;  (** percent *)
  value_accuracy : float;  (** percent *)
  confident : int;
  tentative : int;
  sign_only : int;
  unknown : int;
  retried : int;  (** coefficients rescued by re-measurement *)
  unrecoverable : int;
  perfect_hints : int;
  approximate_hints : int;
  none_hints : int;
  graded_bikz : float;  (** hardness under the degraded hint ladder *)
}

val fault_sweep : ?intensities:float array -> config -> fault_sweep_row list
(** Sweep the measurement-fault intensity over the full pipeline:
    profile once fault-free, then attack with the same seeds at each
    intensity through {!Campaign.run_attacks_resilient} and integrate
    the graded hints.  Deterministic given the config seed.  Default
    intensities: 0, 0.25, 0.5, 0.75, 1. *)

val render_fault_sweep : fault_sweep_row list -> string

val fault_sweep_check :
  ?recovery_tolerance:float -> ?bikz_tolerance:float -> fault_sweep_row list -> (unit, string) result
(** The sweep's two invariants: recovery rate is monotone
    non-increasing in intensity (up to [recovery_tolerance], default
    0.02) and no row's bikz under-reports hardness versus the clean
    first row by more than [bikz_tolerance] (default 0.5).  [Error]
    carries a description of every violation. *)

type zero_consistency = {
  coefficients : int;
  verdict_mismatches : int;  (** must be 0 *)
  grade_downgrades : int;  (** resilient grades below Tentative; must be 0 *)
  bikz_classic : float;
  bikz_graded : float;  (** must equal [bikz_classic] *)
}

val fault_zero_consistency : config -> zero_consistency
(** Regression gate: the resilient pipeline (with an explicit no-op
    fault config installed) run against the classic pipeline on the
    same seeds — verdicts must match coefficient for coefficient and
    the graded hint ladder must reproduce the calibrated bikz. *)

val render_zero_consistency : zero_consistency -> string

(* --- machine-readable artefacts -------------------------------------------------- *)

(** Every artefact is also available as a {!Report.doc}: the historical
    byte-exact text plus a JSON rendering of the same rows, both
    produced from one declaration (see {!Report.table}).  The [_doc]
    builders take the same inputs as the corresponding [render_*]. *)

val fig3_doc : fig3 -> Report.doc
val table1_doc : env -> Report.doc
val table2_doc : table2_row list -> Report.doc
val table3_doc : table3_report -> Report.doc
val table4_doc : table4_report -> Report.doc
val signs_doc : sign_report -> Report.doc
val recovery_doc : recovery_report -> Report.doc
val toylattice_doc : toylattice_row list -> Report.doc
val defenses_doc : defense_report list -> Report.doc
val tvla_doc : tvla_row list -> Report.doc
val averaging_doc : averaging_row list -> Report.doc
val features_doc : feature_row list -> Report.doc
val ablation_doc : title:string -> ablation_row list -> Report.doc
val fault_sweep_doc : fault_sweep_row list -> Report.doc
val zero_consistency_doc : zero_consistency -> Report.doc

val artefacts : (string * (config -> Report.doc)) list
(** Name -> builder registry, one entry per artefact of the paper's
    evaluation.  Builders that need a profiled campaign run
    {!prepare} themselves; each call is self-contained and
    deterministic in [config.seed]. *)

val artefact_names : string list

val artefact : string -> config -> Report.doc option
(** Look up and build one artefact; [None] for an unknown name. *)
