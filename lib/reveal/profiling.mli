(** Template building — the pipeline's training phase.

    Re-creates the paper's profiling: the adversary owns an identical
    device, forces every candidate coefficient value through the
    sampler many times, segments each trace, and learns (a) an
    absolute segmentation threshold, (b) a common window length,
    (c) SOSD POIs and Gaussian templates, (d) the goodness-of-fit
    floors the confidence gate compares against.  Both the live and
    the archive-streamed paths consume their generator identically, so
    for equal seeds the offline profile is bit-identical to the live
    one. *)

val profile :
  ?values:int array ->
  ?per_value:int ->
  ?domains:int ->
  ?obs:Obs.Ctx.t ->
  ?poi_count:int ->
  ?sign_poi_count:int ->
  Device.t ->
  Mathkit.Prng.t ->
  Pipeline.profile
(** Build templates on the attack device itself: each profiling run
    forces every candidate value into several uniformly shuffled
    positions of an honest-length sampling.  [per_value] defaults to
    {!Constants.default_per_value} windows per candidate value; runs
    are distributed over [domains] worker domains (results are
    independent of the domain count — every run carries its own seed).
    With an enabled [obs] context the phases run inside
    [profiling.calibrate] / [profiling.acquire] / [profiling.build]
    spans, the run and window totals land in [profiling.*] counters,
    and the calibrated fit floors are exported as gauges.
    @raise Invalid_argument when the device is too small to host every
    candidate value twice per run. *)

val profiling_windows :
  ?values:int array ->
  ?per_value:int ->
  ?domains:int ->
  ?obs:Obs.Ctx.t ->
  Device.t ->
  Mathkit.Prng.t ->
  Sca.Segment.config * int * (int * float array array) list
(** The raw material {!profile} is built from: the calibrated
    segmentation config, the common window length, and the labelled
    window vectors per candidate value.  Exposed for the
    feature-selection ablation and for custom classifiers. *)

val profile_of_windows :
  poi_count:int -> sign_poi_count:int -> Sca.Segment.config * int * (int * float array array) list -> Pipeline.profile
(** Fit templates and fit floors on already-collected windows. *)

val record_profiling :
  ?values:int array ->
  ?per_value:int ->
  ?seed:int64 ->
  ?obs:Obs.Ctx.t ->
  Device.t ->
  Mathkit.Prng.t ->
  path:string ->
  unit
(** Capture the profiling campaign of {!profile} into an archive, one
    run resident at a time; the segmentation calibration travels in
    the archive metadata.  [seed] is stamped into the header for
    provenance.  With an enabled [obs] context the capture runs inside
    [profiling.calibrate] / [profiling.record] spans and the writer
    counts records and bytes.
    @raise Invalid_argument under the same conditions as {!profile}. *)

val profiling_windows_of_archive :
  ?domains:int -> ?batch:int -> ?obs:Obs.Ctx.t -> string -> Sca.Segment.config * int * (int * float array array) list
(** Stream the labelled windows back out of a profiling archive:
    records are ingested in batches of [batch] (default
    {!Constants.default_batch}) traces — the peak resident set — and
    segmented in parallel over [domains] worker domains.  With an
    enabled [obs] context the stream runs inside a [profiling.stream]
    span and the reader counts records, bytes and CRC skips.
    @raise Traceio.Error.Corrupt when the archive is damaged or is not
    a profiling archive. *)

val profile_of_archive :
  ?domains:int -> ?batch:int -> ?obs:Obs.Ctx.t -> ?poi_count:int -> ?sign_poi_count:int -> string -> Pipeline.profile
(** {!profile}, but from a recorded profiling archive. *)

(**/**)

(* Internals shared with tests and the campaign drivers. *)

val labelled_windows : Sca.Segment.config -> samples:float array -> noises:int array -> (int * float array) array
val calibrate_threshold : Device.t -> Mathkit.Prng.t -> float
val segment_of_threshold : float -> Sca.Segment.config
val profiling_shape : values:int array -> per_value:int -> Device.t -> int * int
val profiling_run : Device.t -> values:int array -> copies:int -> int64 -> Device.run
val fit_floor : float array -> float
val profiling_meta_of_header : path:string -> Traceio.Archive.header -> float * int array
