(* Thin composition of the staged pipeline: every campaign is a
   Pipeline.source pulled through a batching driver that fans the
   acquire/segment/classify/grade work out to worker domains and folds
   the per-trace results into one tally.  The stages themselves live
   in Profiling, Profile_store, Grading and Source; this module only
   re-exports their types under the historical names and wires them
   together. *)

type profile = Pipeline.profile = {
  attack : Sca.Attack.t;
  window_length : int;
  segment : Sca.Segment.config;
  values : int array;
  sigma : float;
  sign_fit_floor : float;
  value_fit_floor : float;
}

type grade = Grading.grade = Confident | Tentative | SignOnly | Unknown
type recovery = Grading.recovery = Clean | Retried of int | Unrecoverable

type coefficient_result = Grading.coefficient_result = {
  actual : int;
  verdict : Sca.Attack.verdict;
  posterior_all : (int * float) array;
  grade : grade;
  recovery : recovery;
}

type gate = Grading.gate = {
  confident_threshold : float;
  tentative_threshold : float;
  sign_only_threshold : float;
  retry_budget : int;
}

let default_values = Constants.default_values
let default_gate = Grading.default_gate
let grade_counts = Grading.grade_counts
let confident_mismatches = Grading.confident_mismatches
let hint_of_result = Grading.hint_of_result

(* --- profiling ------------------------------------------------------------ *)

let profile = Profiling.profile
let profiling_windows = Profiling.profiling_windows
let record_profiling = Profiling.record_profiling
let profiling_windows_of_archive = Profiling.profiling_windows_of_archive
let profile_of_archive = Profiling.profile_of_archive
let save_profile = Profile_store.save
let load_profile = Profile_store.load

(* --- per-trace attacks ---------------------------------------------------- *)

(* The public per-trace entry points keep their [float array] shape —
   the view refactor stops at these edges with an [of_array] each. *)
let attack_samples prof ~samples ~noises =
  match Grading.attack_strict prof ~samples:(Mathkit.Fvec.of_array samples) ~noises with
  | Ok results -> results
  | Error e -> failwith (Pipeline.error_to_string e)

let attack_trace prof (run : Device.run) =
  attack_samples prof ~samples:run.Device.trace.Power.Ptrace.samples ~noises:run.Device.noises

let attack_signs_only prof (run : Device.run) =
  let samples = Mathkit.Fvec.of_array run.Device.trace.Power.Ptrace.samples in
  let count = Array.length run.Device.noises in
  match Pipeline.run_segmenter Pipeline.strict_segmenter prof ~count samples with
  | Error e -> failwith (Pipeline.error_to_string e)
  | Ok seg ->
      let scratch = Sca.Attack.make_scratch prof.attack in
      Array.mapi
        (fun i window ->
          (compare run.Device.noises.(i) 0, Sca.Attack.classify_sign_only_fv prof.attack scratch window))
        seg.Pipeline.vectors

let attack_samples_resilient ?gate ?retry ?obs prof ~samples ~noises =
  let retry = Option.map (fun f attempt -> Mathkit.Fvec.of_array (f attempt)) retry in
  Grading.attack_resilient ?gate ?retry ?obs prof ~samples:(Mathkit.Fvec.of_array samples) ~noises

(* --- aggregate statistics ------------------------------------------------- *)

type stats = {
  confusion : Sca.Confusion.t;
  sign_correct : int;
  sign_total : int;
  value_correct : int;
  value_total : int;
  skipped_out_of_range : int;
  corrupt_skipped : int;
}

(* Shared aggregate accumulator for every campaign driver. *)
type tally = {
  t_confusion : Sca.Confusion.t;
  t_in_range : (int, unit) Hashtbl.t;
  mutable t_sign_correct : int;
  mutable t_sign_total : int;
  mutable t_value_correct : int;
  mutable t_value_total : int;
  mutable t_skipped : int;
  mutable t_all : coefficient_result list;  (* reversed *)
}

let tally_create prof =
  let in_range = Hashtbl.create 64 in
  Array.iter (fun v -> Hashtbl.replace in_range v ()) prof.values;
  {
    t_confusion = Sca.Confusion.create ~labels:prof.values;
    t_in_range = in_range;
    t_sign_correct = 0;
    t_sign_total = 0;
    t_value_correct = 0;
    t_value_total = 0;
    t_skipped = 0;
    t_all = [];
  }

let tally_add t results =
  Array.iter
    (fun r ->
      t.t_all <- r :: t.t_all;
      t.t_sign_total <- t.t_sign_total + 1;
      if compare r.actual 0 = r.verdict.Sca.Attack.sign then t.t_sign_correct <- t.t_sign_correct + 1;
      if Hashtbl.mem t.t_in_range r.actual then begin
        t.t_value_total <- t.t_value_total + 1;
        Sca.Confusion.add t.t_confusion ~actual:r.actual ~predicted:r.verdict.Sca.Attack.value;
        if r.actual = r.verdict.Sca.Attack.value then t.t_value_correct <- t.t_value_correct + 1
      end
      else t.t_skipped <- t.t_skipped + 1)
    results

let tally_finish ?(corrupt_skipped = 0) t =
  ( {
      confusion = t.t_confusion;
      sign_correct = t.t_sign_correct;
      sign_total = t.t_sign_total;
      value_correct = t.t_value_correct;
      value_total = t.t_value_total;
      skipped_out_of_range = t.t_skipped;
      corrupt_skipped;
    },
    Array.of_list (List.rev t.t_all) )

(* The tally is a fold over results in item order with commutative
   counters, so the aggregates are a pure function of the result array
   (plus the corrupt count).  This is the deterministic-merge half of
   the distributed fabric: concatenate per-shard result slices in
   trace order, re-tally, and the stats match the single-process run
   bit for bit. *)
let stats_of_results ?(corrupt_skipped = 0) prof results =
  let t = tally_create prof in
  tally_add t results;
  fst (tally_finish ~corrupt_skipped t)

(* --- the driver ----------------------------------------------------------- *)

type mode = Classic | Resilient of gate

let attack_acquired ~obs ~ctx mode prof (a : Pipeline.acquired) =
  match mode with
  | Classic -> (
      match Grading.attack_strict ~ctx ~obs prof ~samples:a.Pipeline.samples ~noises:a.Pipeline.noises with
      | Ok results -> results
      | Error e -> failwith (Pipeline.error_to_string e))
  | Resilient gate ->
      Grading.attack_resilient ~gate ~ctx ?retry:a.Pipeline.remeasure ~obs prof
        ~samples:a.Pipeline.samples ~noises:a.Pipeline.noises

(* Final campaign aggregates exported as gauges, so an obs trace is a
   complete run record on its own: the summarize path reads these
   without re-running the tally. *)
let export_stats obs stats results =
  let m = Obs.Ctx.metrics obs in
  let set name v = Obs.Metrics.set (Obs.Metrics.gauge m name) (float_of_int v) in
  let confident, tentative, sign_only, unknown = Grading.grade_counts results in
  set "result.grade_confident" confident;
  set "result.grade_tentative" tentative;
  set "result.grade_sign_only" sign_only;
  set "result.grade_unknown" unknown;
  set "result.sign_correct" stats.sign_correct;
  set "result.sign_total" stats.sign_total;
  set "result.value_correct" stats.value_correct;
  set "result.value_total" stats.value_total;
  set "result.skipped_out_of_range" stats.skipped_out_of_range;
  set "result.corrupt_skipped" stats.corrupt_skipped

(* Pull up to [batch] items, attack them in parallel, tally in item
   order; a `Skip (corrupt record a tolerant source dropped) counts
   toward the batch budget and the corrupt counter, exactly as the
   record it replaced would have.

   With an enabled obs context every batch ends with a
   "campaign.heartbeat" event carrying the coefficients graded so far
   (and, when [expected] names the campaign size, the total) — the
   progress frames a live monitor consumes.  Emission goes through the
   ctx sink like every other record, so a streaming tee carries it
   without touching the hot path: the batch has already been tallied
   when the heartbeat fires. *)
let run_source ?(obs = Obs.Ctx.disabled) ?expected ?domains ?(batch = Constants.default_batch)
    ?(mode = Resilient Grading.default_gate) prof source =
  if batch <= 0 then invalid_arg "Campaign.run_source: batch must be positive";
  let tally = tally_create prof in
  let corrupt = ref 0 in
  let source = Pipeline.instrument_source obs source in
  let c_batches = if Obs.Ctx.enabled obs then Some (Obs.Ctx.counter obs "campaign.batches") else None in
  let heartbeat () =
    if Obs.Ctx.enabled obs then
      Obs.Ctx.event obs "campaign.heartbeat"
        ~attrs:
          (("done", Obs.Json.Int tally.t_sign_total)
          :: (match expected with Some total -> [ ("total", Obs.Json.Int total) ] | None -> []))
  in
  Obs.Ctx.span obs "campaign.run" (fun () ->
      Fun.protect
        ~finally:(fun () -> Pipeline.close_source source)
        (fun () ->
          let finished = ref false in
          while not !finished do
            let rec take acc k =
              if k = 0 then acc
              else
                match Pipeline.next_item source with
                | `End ->
                    finished := true;
                    acc
                | `Skip _ ->
                    incr corrupt;
                    take acc (k - 1)
                | `Item it -> take (it :: acc) (k - 1)
            in
            let items = Array.of_list (List.rev (take [] batch)) in
            if Array.length items > 0 then begin
              (match c_batches with Some c -> Obs.Metrics.incr c | None -> ());
              let per_item =
                Obs.Ctx.span obs "campaign.batch" (fun () ->
                    (* one classifier context per worker domain: templates
                       are shared, scratch is not *)
                    Mathkit.Parallel.map_array_with ?domains
                      ~scratch:(fun () -> Grading.make_ctx prof)
                      (fun ctx (it : Pipeline.item) ->
                        attack_acquired ~obs ~ctx mode prof (it.Pipeline.acquire ()))
                      items)
              in
              Obs.Ctx.span obs "stage.tally" (fun () -> Array.iter (tally_add tally) per_item);
              heartbeat ()
            end
          done));
  let stats, results = tally_finish ~corrupt_skipped:!corrupt tally in
  if Obs.Ctx.enabled obs then export_stats obs stats results;
  (stats, results)

(* --- campaign entry points ------------------------------------------------ *)

let run_attacks ?obs ?domains prof device ~traces ~scope_rng ~sampler_rng =
  let source = Source.device_live device ~traces ~scope_rng ~sampler_rng in
  run_source ?obs ?domains ~batch:(max 1 traces) ~mode:Classic prof source

(* Live campaign with the full fault-tolerance stack: resilient
   segmentation, confidence gating, and a bounded re-measurement
   budget.  A coefficient graded Unknown is re-acquired — the same
   noise values forced through the sampler with honest timing and a
   fresh scope/fault realisation, as re-triggering the capture would.
   The retry stream is carved from a separate generator, so a campaign
   that needs no retries consumes its randomness exactly like
   [run_attacks] and yields bit-identical verdicts. *)
let run_attacks_resilient ?obs ?domains ?(gate = Grading.default_gate) prof device ~traces ~scope_rng
    ~sampler_rng =
  let source = Source.device_live ~retry:true device ~traces ~scope_rng ~sampler_rng in
  run_source ?obs ?domains ~batch:(max 1 traces) ~mode:(Resilient gate) prof source

(* Re-attack a recorded campaign: records stream through in batches
   ([batch] traces resident at a time), classification parallelised
   over each batch with Mathkit.Parallel.  By default a record whose
   frame fails its CRC is skipped and counted ([stats.corrupt_skipped])
   and the replay continues at the next frame boundary; [~strict:true]
   restores fail-fast.  Replay has no device to re-measure on, so
   Unknown-graded coefficients come back [Unrecoverable]. *)
let attack_archive ?obs ?domains ?(batch = Constants.default_batch) ?(gate = Grading.default_gate)
    ?(strict = false) prof path =
  if batch <= 0 then invalid_arg "Campaign.attack_archive: batch must be positive";
  run_source ?obs ?domains ~batch ~mode:(Resilient gate) prof
    (Source.archive_replay ~strict ?obs path)
