type profile = {
  attack : Sca.Attack.t;
  window_length : int;
  segment : Sca.Segment.config;
  values : int array;
  sigma : float;
}

let default_values = Array.init 29 (fun i -> i - 14)

(* Segment one trace into per-coefficient windows.  The firmware
   samples a trailing dummy coefficient, so a run over n coefficients
   produces n+1 bursts and we keep the first n windows. *)
let raw_windows_of_samples segment ~samples ~count =
  let wins = Sca.Segment.windows segment samples in
  if Array.length wins <> count + 1 then
    failwith
      (Printf.sprintf "Campaign: segmentation found %d windows for %d coefficients" (Array.length wins) count);
  Array.sub wins 0 count

(* (label, full window) pairs of one run — the per-chunk unit both the
   in-memory and the archive-streamed profiling paths produce. *)
let labelled_windows segment ~samples ~noises =
  let wins = raw_windows_of_samples segment ~samples ~count:(Array.length noises) in
  Array.mapi
    (fun i w -> (noises.(i), Array.sub samples w.Sca.Segment.start (w.Sca.Segment.stop - w.Sca.Segment.start)))
    wins

(* Calibrate an absolute burst threshold once so that profiling and
   attack traces segment identically. *)
let calibrate_threshold device rng =
  let run = Device.run_gaussian device ~scope_rng:rng ~sampler_rng:rng in
  Sca.Segment.auto_threshold Sca.Segment.default run.Device.trace.Power.Ptrace.samples

let segment_of_threshold threshold =
  { Sca.Segment.default with Sca.Segment.threshold = Sca.Segment.Absolute threshold }

let profiling_shape ~values ~per_value device =
  if per_value < 2 then invalid_arg "Campaign.profile: need at least 2 traces per value";
  let n = Device.n device in
  let value_count = Array.length values in
  if n < 2 * value_count then invalid_arg "Campaign.profile: device too small to profile every value per run";
  let copies = n / value_count in
  let runs = (per_value + copies - 1) / copies in
  (copies, runs)

(* One profiling run forces every candidate value into several
   shuffled positions of one honest-length sampling, so templates see
   the value at arbitrary indices with arbitrary neighbours — exactly
   the conditions of the attacked trace.  Runs carry their own seeds,
   so neither the domain count nor record/replay can change the
   results. *)
let profiling_run device ~values ~copies seed =
  let rng = Mathkit.Prng.create ~seed () in
  let n = Device.n device in
  let forced = Array.concat (List.init copies (fun _ -> Array.copy values)) in
  let honest, _ =
    Riscv.Sampler_prog.draws_of_gaussian rng Mathkit.Gaussian.seal_default ~count:(n - Array.length forced)
  in
  let draws = Array.append (Array.map (fun v -> Device.profiling_draw device rng ~value:v) forced) honest in
  Mathkit.Prng.shuffle rng draws;
  Device.run device ~scope_rng:rng ~draws

(* Per-value window bags, filled incrementally so the archive path can
   stream chunk by chunk. *)
let make_bags values =
  let bags = Hashtbl.create (Array.length values) in
  Array.iter (fun v -> Hashtbl.replace bags v []) values;
  bags

let add_labelled bags labelled =
  Array.iter
    (fun (v, w) ->
      match Hashtbl.find_opt bags v with
      | Some lst -> Hashtbl.replace bags v (w :: lst)
      | None -> ())
    labelled

let finalize_bags values bags =
  let total = Hashtbl.fold (fun _ ws acc -> acc + List.length ws) bags 0 in
  if total = 0 then failwith "Campaign.profile: no profiling windows collected";
  (* Common window length: the shortest observed window. *)
  let window_length =
    Hashtbl.fold (fun _ ws acc -> List.fold_left (fun acc w -> min acc (Array.length w)) acc ws) bags max_int
  in
  if window_length < 16 then failwith "Campaign.profile: windows too short — segmentation is misconfigured";
  let classes =
    Array.to_list values
    |> List.map (fun v ->
           let ws = Hashtbl.find bags v in
           (v, Array.of_list (List.map (fun w -> Array.sub w 0 window_length) ws)))
  in
  (window_length, classes)

let profiling_windows ?(values = default_values) ?(per_value = 400) ?domains device rng =
  let copies, runs = profiling_shape ~values ~per_value device in
  let threshold = calibrate_threshold device rng in
  let segment = segment_of_threshold threshold in
  let seeds = Array.init runs (fun _ -> Mathkit.Prng.bits64 rng) in
  let one_run seed =
    let run = profiling_run device ~values ~copies seed in
    labelled_windows segment ~samples:run.Device.trace.Power.Ptrace.samples ~noises:run.Device.noises
  in
  let per_run = Mathkit.Parallel.map_array ?domains one_run seeds in
  let bags = make_bags values in
  Array.iter (add_labelled bags) per_run;
  let window_length, classes = finalize_bags values bags in
  (segment, window_length, classes)

let profile_of_windows ~poi_count ~sign_poi_count (segment, window_length, classes) =
  let values = Array.of_list (List.map fst classes) in
  let sigma = Mathkit.Gaussian.seal_default.Mathkit.Gaussian.sigma in
  let attack = Sca.Attack.build ~poi_count ~sign_poi_count ~sigma classes in
  { attack; window_length; segment; values; sigma }

let profile ?values ?per_value ?domains ?(poi_count = 16) ?(sign_poi_count = 6) device rng =
  profile_of_windows ~poi_count ~sign_poi_count (profiling_windows ?values ?per_value ?domains device rng)

(* --- profiling campaigns on disk ----------------------------------------- *)

let meta_kind_key = "campaign:kind"
let meta_threshold_key = "profiling:threshold-bits"
let meta_values_key = "profiling:values"
let meta_per_value_key = "profiling:per-value"

let record_profiling ?(values = default_values) ?(per_value = 400) ?(seed = 0L) device rng ~path =
  let copies, runs = profiling_shape ~values ~per_value device in
  let threshold = calibrate_threshold device rng in
  let seeds = Array.init runs (fun _ -> Mathkit.Prng.bits64 rng) in
  let meta =
    [
      (meta_kind_key, "profiling");
      (meta_threshold_key, Printf.sprintf "%Lx" (Int64.bits_of_float threshold));
      (meta_values_key, String.concat "," (List.map string_of_int (Array.to_list values)));
      (meta_per_value_key, string_of_int per_value);
    ]
  in
  let writer = Device.open_recorder ~meta device ~path ~seed in
  Fun.protect
    ~finally:(fun () -> Traceio.Archive.close_writer writer)
    (fun () -> Array.iter (fun seed -> Device.record_run writer (profiling_run device ~values ~copies seed)) seeds)

let profiling_meta_of_header ~path (h : Traceio.Archive.header) =
  let require key =
    match Traceio.Archive.meta_find h key with
    | Some v -> v
    | None ->
        Traceio.Error.corruptf "%s: not a profiling archive (missing %S metadata) — record it with record_profiling"
          path key
  in
  let threshold =
    let s = require meta_threshold_key in
    match Int64.of_string_opt ("0x" ^ s) with
    | Some bits -> Int64.float_of_bits bits
    | None -> Traceio.Error.corruptf "%s: unreadable calibration threshold %S" path s
  in
  let values =
    let s = require meta_values_key in
    let parts = String.split_on_char ',' s in
    match List.map int_of_string_opt parts |> List.fold_left (fun acc v -> match acc, v with Some l, Some x -> Some (x :: l) | _ -> None) (Some []) with
    | Some l -> Array.of_list (List.rev l)
    | None -> Traceio.Error.corruptf "%s: unreadable candidate-value list %S" path s
  in
  if Array.length values = 0 then Traceio.Error.corruptf "%s: empty candidate-value list" path;
  (threshold, values)

(* Stream the labelled profiling windows out of an archive: one batch
   of records resident at a time, segmentation parallelised over the
   batch.  Memory is bounded by [batch] traces plus the (much smaller)
   accumulated windows, never the whole trace set. *)
let profiling_windows_of_archive ?domains ?(batch = 16) path =
  if batch <= 0 then invalid_arg "Campaign.profiling_windows_of_archive: batch must be positive";
  Traceio.Archive.with_reader path (fun reader ->
      let h = Traceio.Archive.header reader in
      let threshold, values = profiling_meta_of_header ~path h in
      let segment = segment_of_threshold threshold in
      let bags = make_bags values in
      let rec loop () =
        let records = Traceio.Archive.next_batch reader ~max:batch in
        if Array.length records > 0 then begin
          let labelled =
            Mathkit.Parallel.map_array ?domains
              (fun (r : Traceio.Archive.record) ->
                labelled_windows segment ~samples:r.Traceio.Archive.trace.Power.Ptrace.samples
                  ~noises:r.Traceio.Archive.noises)
              records
          in
          Array.iter (add_labelled bags) labelled;
          loop ()
        end
      in
      loop ();
      let window_length, classes = finalize_bags values bags in
      (segment, window_length, classes))

let profile_of_archive ?domains ?batch ?(poi_count = 16) ?(sign_poi_count = 6) path =
  profile_of_windows ~poi_count ~sign_poi_count (profiling_windows_of_archive ?domains ?batch path)

(* --- profile cache -------------------------------------------------------- *)

(* Versioned binary codec in the traceio format family: magic + u16
   version + one CRC-framed payload.  Version 1 was the Marshal-based
   cache; version 2 is this explicit encoding, so stale caches are
   detected by their magic/version instead of crashing Marshal. *)
let profile_magic = "REVEALPF"
let profile_version = 2
let legacy_profile_magic_prefix = "REVEAL-P" (* "REVEAL-PROFILE-v1\n" of the Marshal era *)

let put_template b (t : Sca.Template.t) =
  Traceio.Codec.put_ints b t.Sca.Template.labels;
  Traceio.Binio.put_varint b (Int64.of_int (Array.length t.Sca.Template.means));
  Array.iter (Traceio.Codec.put_floats b) t.Sca.Template.means;
  let cov = Mathkit.Matrix.to_arrays t.Sca.Template.inv_cov in
  Traceio.Binio.put_varint b (Int64.of_int (Array.length cov));
  Array.iter (Traceio.Codec.put_floats b) cov;
  Traceio.Binio.put_f64 b t.Sca.Template.log_det;
  Traceio.Codec.put_ints b t.Sca.Template.pois

let get_template ~path c =
  let labels = Traceio.Codec.get_ints c in
  let rows = Traceio.Binio.get_varint_int c in
  if rows <> Array.length labels then
    Traceio.Error.corruptf "%s: template has %d mean vectors for %d labels" path rows (Array.length labels);
  let means = Array.init rows (fun _ -> Traceio.Codec.get_floats c) in
  let d = Traceio.Binio.get_varint_int c in
  let cov = Array.init d (fun _ -> Traceio.Codec.get_floats c) in
  Array.iteri
    (fun i row ->
      if Array.length row <> d then
        Traceio.Error.corruptf "%s: covariance row %d has %d columns in a %dx%d matrix" path i (Array.length row) d d)
    cov;
  let log_det = Traceio.Binio.get_f64 c in
  let pois = Traceio.Codec.get_ints c in
  { Sca.Template.labels; means; inv_cov = Mathkit.Matrix.of_arrays cov; log_det; pois }

let put_threshold b = function
  | Sca.Segment.Auto -> Traceio.Binio.put_u8 b 0
  | Sca.Segment.Percentile p ->
      Traceio.Binio.put_u8 b 1;
      Traceio.Binio.put_f64 b p
  | Sca.Segment.Absolute a ->
      Traceio.Binio.put_u8 b 2;
      Traceio.Binio.put_f64 b a

let get_threshold ~path c =
  match Traceio.Binio.get_u8 c with
  | 0 -> Sca.Segment.Auto
  | 1 -> Sca.Segment.Percentile (Traceio.Binio.get_f64 c)
  | 2 -> Sca.Segment.Absolute (Traceio.Binio.get_f64 c)
  | t -> Traceio.Error.corruptf "%s: unknown segmentation-threshold tag %d" path t

let profile_payload prof =
  let b = Buffer.create 65536 in
  put_threshold b prof.segment.Sca.Segment.threshold;
  Traceio.Binio.put_varint b (Int64.of_int prof.segment.Sca.Segment.smooth_radius);
  Traceio.Binio.put_varint b (Int64.of_int prof.segment.Sca.Segment.merge_gap);
  Traceio.Binio.put_varint b (Int64.of_int prof.segment.Sca.Segment.min_burst);
  Traceio.Binio.put_varint b (Int64.of_int prof.window_length);
  Traceio.Codec.put_ints b prof.values;
  Traceio.Binio.put_f64 b prof.sigma;
  let a = prof.attack in
  put_template b a.Sca.Attack.sign_template;
  put_template b a.Sca.Attack.neg_template;
  put_template b a.Sca.Attack.pos_template;
  Traceio.Codec.put_floats b a.Sca.Attack.neg_priors;
  Traceio.Codec.put_floats b a.Sca.Attack.pos_priors;
  Traceio.Codec.put_floats b a.Sca.Attack.prior_of_sign;
  Traceio.Codec.put_ints b a.Sca.Attack.pois_sign;
  Traceio.Codec.put_ints b a.Sca.Attack.pois_neg;
  Traceio.Codec.put_ints b a.Sca.Attack.pois_pos;
  Buffer.contents b

let profile_of_payload ~path payload =
  let c = Traceio.Binio.cursor ~name:path payload in
  let threshold = get_threshold ~path c in
  let smooth_radius = Traceio.Binio.get_varint_int c in
  let merge_gap = Traceio.Binio.get_varint_int c in
  let min_burst = Traceio.Binio.get_varint_int c in
  let segment = { Sca.Segment.threshold; smooth_radius; merge_gap; min_burst } in
  let window_length = Traceio.Binio.get_varint_int c in
  let values = Traceio.Codec.get_ints c in
  let sigma = Traceio.Binio.get_f64 c in
  let sign_template = get_template ~path c in
  let neg_template = get_template ~path c in
  let pos_template = get_template ~path c in
  let neg_priors = Traceio.Codec.get_floats c in
  let pos_priors = Traceio.Codec.get_floats c in
  let prior_of_sign = Traceio.Codec.get_floats c in
  let pois_sign = Traceio.Codec.get_ints c in
  let pois_neg = Traceio.Codec.get_ints c in
  let pois_pos = Traceio.Codec.get_ints c in
  Traceio.Binio.expect_end c;
  let attack =
    {
      Sca.Attack.sign_template;
      neg_template;
      pos_template;
      neg_priors;
      pos_priors;
      prior_of_sign;
      pois_sign;
      pois_neg;
      pois_pos;
    }
  in
  { attack; window_length; segment; values; sigma }

let save_profile path prof =
  let oc = Traceio.Error.open_out_bin path in
  Fun.protect
    ~finally:(fun () -> try close_out oc with Sys_error _ -> ())
    (fun () ->
      Traceio.Error.wrap_io path (fun () ->
          output_string oc profile_magic;
          output_string oc (String.init 2 (fun i -> Char.chr ((profile_version lsr (8 * i)) land 0xFF))));
      Traceio.Frame.write ~path oc (profile_payload prof))

let load_profile path =
  let ic = Traceio.Error.open_in_bin path in
  Fun.protect
    ~finally:(fun () -> try close_in ic with Sys_error _ -> ())
    (fun () ->
      try
        let m = Traceio.Error.wrap_io path (fun () -> really_input_string ic (String.length profile_magic)) in
        if m = legacy_profile_magic_prefix then
          invalid_arg
            (Printf.sprintf
               "Campaign.load_profile: %s is a stale v1 (Marshal) profile cache — delete it and re-run profiling"
               path);
        if m <> profile_magic then
          invalid_arg (Printf.sprintf "Campaign.load_profile: %s is not a profile cache (bad magic)" path);
        let v = Traceio.Error.wrap_io path (fun () -> really_input_string ic 2) in
        let v = Char.code v.[0] lor (Char.code v.[1] lsl 8) in
        if v <> profile_version then
          invalid_arg
            (Printf.sprintf
               "Campaign.load_profile: %s has profile-cache version %d, this build reads version %d — re-run \
                profiling"
               path v profile_version);
        match Traceio.Frame.read ~path ic with
        | None -> invalid_arg (Printf.sprintf "Campaign.load_profile: %s: truncated profile cache" path)
        | Some payload -> profile_of_payload ~path payload
      with Traceio.Error.Corrupt msg -> invalid_arg (Printf.sprintf "Campaign.load_profile: corrupt cache: %s" msg))

(* --- attack --------------------------------------------------------------- *)

type coefficient_result = {
  actual : int;
  verdict : Sca.Attack.verdict;
  posterior_all : (int * float) array;
}

let windows_of_samples prof samples ~count =
  let wins = raw_windows_of_samples prof.segment ~samples ~count in
  Sca.Segment.vectorize samples wins ~length:prof.window_length

let attack_samples prof ~samples ~noises =
  let vectors = windows_of_samples prof samples ~count:(Array.length noises) in
  Array.mapi
    (fun i window ->
      let verdict = Sca.Attack.classify prof.attack window in
      { actual = noises.(i); verdict; posterior_all = Sca.Attack.posterior_all prof.attack window })
    vectors

let windows_of_run prof (run : Device.run) =
  windows_of_samples prof run.Device.trace.Power.Ptrace.samples ~count:(Array.length run.Device.noises)

let attack_trace prof (run : Device.run) =
  attack_samples prof ~samples:run.Device.trace.Power.Ptrace.samples ~noises:run.Device.noises

let attack_signs_only prof run =
  let vectors = windows_of_run prof run in
  Array.mapi (fun i window -> (compare run.Device.noises.(i) 0, Sca.Attack.classify_sign_only prof.attack window)) vectors

type stats = {
  confusion : Sca.Confusion.t;
  sign_correct : int;
  sign_total : int;
  value_correct : int;
  value_total : int;
  skipped_out_of_range : int;
}

(* Shared aggregate accumulator for the live and archive-replay attack
   campaigns. *)
type tally = {
  t_confusion : Sca.Confusion.t;
  t_in_range : (int, unit) Hashtbl.t;
  mutable t_sign_correct : int;
  mutable t_sign_total : int;
  mutable t_value_correct : int;
  mutable t_value_total : int;
  mutable t_skipped : int;
  mutable t_all : coefficient_result list;  (* reversed *)
}

let tally_create prof =
  let in_range = Hashtbl.create 64 in
  Array.iter (fun v -> Hashtbl.replace in_range v ()) prof.values;
  {
    t_confusion = Sca.Confusion.create ~labels:prof.values;
    t_in_range = in_range;
    t_sign_correct = 0;
    t_sign_total = 0;
    t_value_correct = 0;
    t_value_total = 0;
    t_skipped = 0;
    t_all = [];
  }

let tally_add t results =
  Array.iter
    (fun r ->
      t.t_all <- r :: t.t_all;
      t.t_sign_total <- t.t_sign_total + 1;
      if compare r.actual 0 = r.verdict.Sca.Attack.sign then t.t_sign_correct <- t.t_sign_correct + 1;
      if Hashtbl.mem t.t_in_range r.actual then begin
        t.t_value_total <- t.t_value_total + 1;
        Sca.Confusion.add t.t_confusion ~actual:r.actual ~predicted:r.verdict.Sca.Attack.value;
        if r.actual = r.verdict.Sca.Attack.value then t.t_value_correct <- t.t_value_correct + 1
      end
      else t.t_skipped <- t.t_skipped + 1)
    results

let tally_finish t =
  ( {
      confusion = t.t_confusion;
      sign_correct = t.t_sign_correct;
      sign_total = t.t_sign_total;
      value_correct = t.t_value_correct;
      value_total = t.t_value_total;
      skipped_out_of_range = t.t_skipped;
    },
    Array.of_list (List.rev t.t_all) )

let run_attacks ?domains prof device ~traces ~scope_rng ~sampler_rng =
  let seeds = Array.init traces (fun _ -> (Mathkit.Prng.bits64 scope_rng, Mathkit.Prng.bits64 sampler_rng)) in
  let one_trace (scope_seed, sampler_seed) =
    let scope_rng = Mathkit.Prng.create ~seed:scope_seed () in
    let sampler_rng = Mathkit.Prng.create ~seed:sampler_seed () in
    let run = Device.run_gaussian device ~scope_rng ~sampler_rng in
    attack_trace prof run
  in
  let per_trace = Mathkit.Parallel.map_array ?domains one_trace seeds in
  let tally = tally_create prof in
  Array.iter (tally_add tally) per_trace;
  tally_finish tally

(* Re-attack a recorded campaign: records stream through in batches
   ([batch] traces resident at a time), classification parallelised
   over each batch with Mathkit.Parallel. *)
let attack_archive ?domains ?(batch = 16) prof path =
  if batch <= 0 then invalid_arg "Campaign.attack_archive: batch must be positive";
  Traceio.Archive.with_reader path (fun reader ->
      let tally = tally_create prof in
      let rec loop () =
        let records = Traceio.Archive.next_batch reader ~max:batch in
        if Array.length records > 0 then begin
          let per_trace =
            Mathkit.Parallel.map_array ?domains
              (fun (r : Traceio.Archive.record) ->
                attack_samples prof ~samples:r.Traceio.Archive.trace.Power.Ptrace.samples
                  ~noises:r.Traceio.Archive.noises)
              records
          in
          Array.iter (tally_add tally) per_trace;
          loop ()
        end
      in
      loop ();
      tally_finish tally)
