type profile = {
  attack : Sca.Attack.t;
  window_length : int;
  segment : Sca.Segment.config;
  values : int array;
  sigma : float;
  sign_fit_floor : float;
  value_fit_floor : float;
}

let default_values = Array.init 29 (fun i -> i - 14)

(* Segment one trace into per-coefficient windows.  The firmware
   samples a trailing dummy coefficient, so a run over n coefficients
   produces n+1 bursts and we keep the first n windows. *)
let raw_windows_of_samples segment ~samples ~count =
  let wins = Sca.Segment.windows segment samples in
  if Array.length wins <> count + 1 then
    failwith
      (Printf.sprintf "Campaign: segmentation found %d windows for %d coefficients" (Array.length wins) count);
  Array.sub wins 0 count

(* (label, full window) pairs of one run — the per-chunk unit both the
   in-memory and the archive-streamed profiling paths produce. *)
let labelled_windows segment ~samples ~noises =
  let wins = raw_windows_of_samples segment ~samples ~count:(Array.length noises) in
  Array.mapi
    (fun i w -> (noises.(i), Array.sub samples w.Sca.Segment.start (w.Sca.Segment.stop - w.Sca.Segment.start)))
    wins

(* Calibrate an absolute burst threshold once so that profiling and
   attack traces segment identically. *)
let calibrate_threshold device rng =
  let run = Device.run_gaussian device ~scope_rng:rng ~sampler_rng:rng in
  Sca.Segment.auto_threshold Sca.Segment.default run.Device.trace.Power.Ptrace.samples

let segment_of_threshold threshold =
  { Sca.Segment.default with Sca.Segment.threshold = Sca.Segment.Absolute threshold }

let profiling_shape ~values ~per_value device =
  if per_value < 2 then invalid_arg "Campaign.profile: need at least 2 traces per value";
  let n = Device.n device in
  let value_count = Array.length values in
  if n < 2 * value_count then invalid_arg "Campaign.profile: device too small to profile every value per run";
  let copies = n / value_count in
  let runs = (per_value + copies - 1) / copies in
  (copies, runs)

(* One profiling run forces every candidate value into several
   shuffled positions of one honest-length sampling, so templates see
   the value at arbitrary indices with arbitrary neighbours — exactly
   the conditions of the attacked trace.  Runs carry their own seeds,
   so neither the domain count nor record/replay can change the
   results. *)
let profiling_run device ~values ~copies seed =
  let rng = Mathkit.Prng.create ~seed () in
  let n = Device.n device in
  let forced = Array.concat (List.init copies (fun _ -> Array.copy values)) in
  let honest, _ =
    Riscv.Sampler_prog.draws_of_gaussian rng Mathkit.Gaussian.seal_default ~count:(n - Array.length forced)
  in
  let draws = Array.append (Array.map (fun v -> Device.profiling_draw device rng ~value:v) forced) honest in
  Mathkit.Prng.shuffle rng draws;
  Device.run device ~scope_rng:rng ~draws

(* Per-value window bags, filled incrementally so the archive path can
   stream chunk by chunk. *)
let make_bags values =
  let bags = Hashtbl.create (Array.length values) in
  Array.iter (fun v -> Hashtbl.replace bags v []) values;
  bags

let add_labelled bags labelled =
  Array.iter
    (fun (v, w) ->
      match Hashtbl.find_opt bags v with
      | Some lst -> Hashtbl.replace bags v (w :: lst)
      | None -> ())
    labelled

let finalize_bags values bags =
  let total = Hashtbl.fold (fun _ ws acc -> acc + List.length ws) bags 0 in
  if total = 0 then failwith "Campaign.profile: no profiling windows collected";
  (* Common window length: the shortest observed window. *)
  let window_length =
    Hashtbl.fold (fun _ ws acc -> List.fold_left (fun acc w -> min acc (Array.length w)) acc ws) bags max_int
  in
  if window_length < 16 then failwith "Campaign.profile: windows too short — segmentation is misconfigured";
  let classes =
    Array.to_list values
    |> List.map (fun v ->
           let ws = Hashtbl.find bags v in
           (v, Array.of_list (List.map (fun w -> Array.sub w 0 window_length) ws)))
  in
  (window_length, classes)

let profiling_windows ?(values = default_values) ?(per_value = 400) ?domains device rng =
  let copies, runs = profiling_shape ~values ~per_value device in
  let threshold = calibrate_threshold device rng in
  let segment = segment_of_threshold threshold in
  let seeds = Array.init runs (fun _ -> Mathkit.Prng.bits64 rng) in
  let one_run seed =
    let run = profiling_run device ~values ~copies seed in
    labelled_windows segment ~samples:run.Device.trace.Power.Ptrace.samples ~noises:run.Device.noises
  in
  let per_run = Mathkit.Parallel.map_array ?domains one_run seeds in
  let bags = make_bags values in
  Array.iter (add_labelled bags) per_run;
  let window_length, classes = finalize_bags values bags in
  (segment, window_length, classes)

(* Floor below the profiling population: mirror the lower half of the
   distribution below its minimum and leave 30 nats of slack.  Honest
   attack windows (same distribution) essentially never fall under it;
   faulted windows overshoot it by orders of magnitude because the
   Gaussian exponent is quadratic in the corruption. *)
let fit_floor fits =
  let mn = Array.fold_left Float.min infinity fits in
  let p50 = Mathkit.Stats.percentile fits 50.0 in
  mn -. (p50 -. mn) -. 30.0

let profile_of_windows ~poi_count ~sign_poi_count (segment, window_length, classes) =
  let values = Array.of_list (List.map fst classes) in
  let sigma = Mathkit.Gaussian.seal_default.Mathkit.Gaussian.sigma in
  let attack = Sca.Attack.build ~poi_count ~sign_poi_count ~sigma classes in
  (* Calibrate the goodness-of-fit floors on the profiling windows
     themselves — the reference for "what an honest window looks like". *)
  let sign_fits = ref [] and value_fits = ref [] in
  List.iter
    (fun (label, rows) ->
      let sign = Sca.Attack.sign_of_label label in
      Array.iter
        (fun w ->
          sign_fits := Sca.Attack.sign_fit attack w :: !sign_fits;
          if sign <> 0 then value_fits := Sca.Attack.value_fit attack ~sign w :: !value_fits)
        rows)
    classes;
  let sign_fit_floor = fit_floor (Array.of_list !sign_fits) in
  let value_fit_floor = fit_floor (Array.of_list !value_fits) in
  { attack; window_length; segment; values; sigma; sign_fit_floor; value_fit_floor }

let profile ?values ?per_value ?domains ?(poi_count = 16) ?(sign_poi_count = 6) device rng =
  profile_of_windows ~poi_count ~sign_poi_count (profiling_windows ?values ?per_value ?domains device rng)

(* --- profiling campaigns on disk ----------------------------------------- *)

let meta_kind_key = "campaign:kind"
let meta_threshold_key = "profiling:threshold-bits"
let meta_values_key = "profiling:values"
let meta_per_value_key = "profiling:per-value"

let record_profiling ?(values = default_values) ?(per_value = 400) ?(seed = 0L) device rng ~path =
  let copies, runs = profiling_shape ~values ~per_value device in
  let threshold = calibrate_threshold device rng in
  let seeds = Array.init runs (fun _ -> Mathkit.Prng.bits64 rng) in
  let meta =
    [
      (meta_kind_key, "profiling");
      (meta_threshold_key, Printf.sprintf "%Lx" (Int64.bits_of_float threshold));
      (meta_values_key, String.concat "," (List.map string_of_int (Array.to_list values)));
      (meta_per_value_key, string_of_int per_value);
    ]
  in
  let writer = Device.open_recorder ~meta device ~path ~seed in
  Fun.protect
    ~finally:(fun () -> Traceio.Archive.close_writer writer)
    (fun () -> Array.iter (fun seed -> Device.record_run writer (profiling_run device ~values ~copies seed)) seeds)

let profiling_meta_of_header ~path (h : Traceio.Archive.header) =
  let require key =
    match Traceio.Archive.meta_find h key with
    | Some v -> v
    | None ->
        Traceio.Error.corruptf "%s: not a profiling archive (missing %S metadata) — record it with record_profiling"
          path key
  in
  let threshold =
    let s = require meta_threshold_key in
    match Int64.of_string_opt ("0x" ^ s) with
    | Some bits -> Int64.float_of_bits bits
    | None -> Traceio.Error.corruptf "%s: unreadable calibration threshold %S" path s
  in
  let values =
    let s = require meta_values_key in
    let parts = String.split_on_char ',' s in
    match List.map int_of_string_opt parts |> List.fold_left (fun acc v -> match acc, v with Some l, Some x -> Some (x :: l) | _ -> None) (Some []) with
    | Some l -> Array.of_list (List.rev l)
    | None -> Traceio.Error.corruptf "%s: unreadable candidate-value list %S" path s
  in
  if Array.length values = 0 then Traceio.Error.corruptf "%s: empty candidate-value list" path;
  (threshold, values)

(* Stream the labelled profiling windows out of an archive: one batch
   of records resident at a time, segmentation parallelised over the
   batch.  Memory is bounded by [batch] traces plus the (much smaller)
   accumulated windows, never the whole trace set. *)
let profiling_windows_of_archive ?domains ?(batch = 16) path =
  if batch <= 0 then invalid_arg "Campaign.profiling_windows_of_archive: batch must be positive";
  Traceio.Archive.with_reader path (fun reader ->
      let h = Traceio.Archive.header reader in
      let threshold, values = profiling_meta_of_header ~path h in
      let segment = segment_of_threshold threshold in
      let bags = make_bags values in
      let rec loop () =
        let records = Traceio.Archive.next_batch reader ~max:batch in
        if Array.length records > 0 then begin
          let labelled =
            Mathkit.Parallel.map_array ?domains
              (fun (r : Traceio.Archive.record) ->
                labelled_windows segment ~samples:r.Traceio.Archive.trace.Power.Ptrace.samples
                  ~noises:r.Traceio.Archive.noises)
              records
          in
          Array.iter (add_labelled bags) labelled;
          loop ()
        end
      in
      loop ();
      let window_length, classes = finalize_bags values bags in
      (segment, window_length, classes))

let profile_of_archive ?domains ?batch ?(poi_count = 16) ?(sign_poi_count = 6) path =
  profile_of_windows ~poi_count ~sign_poi_count (profiling_windows_of_archive ?domains ?batch path)

(* --- profile cache -------------------------------------------------------- *)

(* Versioned binary codec in the traceio format family: magic + u16
   version + one CRC-framed payload.  Version 1 was the Marshal-based
   cache; version 2 introduced this explicit encoding; version 3 added
   the calibrated goodness-of-fit floors, so stale caches are
   detected by their magic/version instead of crashing Marshal. *)
let profile_magic = "REVEALPF"
let profile_version = 3
let legacy_profile_magic_prefix = "REVEAL-P" (* "REVEAL-PROFILE-v1\n" of the Marshal era *)

let put_template b (t : Sca.Template.t) =
  Traceio.Codec.put_ints b t.Sca.Template.labels;
  Traceio.Binio.put_varint b (Int64.of_int (Array.length t.Sca.Template.means));
  Array.iter (Traceio.Codec.put_floats b) t.Sca.Template.means;
  let cov = Mathkit.Matrix.to_arrays t.Sca.Template.inv_cov in
  Traceio.Binio.put_varint b (Int64.of_int (Array.length cov));
  Array.iter (Traceio.Codec.put_floats b) cov;
  Traceio.Binio.put_f64 b t.Sca.Template.log_det;
  Traceio.Codec.put_ints b t.Sca.Template.pois

let get_template ~path c =
  let labels = Traceio.Codec.get_ints c in
  let rows = Traceio.Binio.get_varint_int c in
  if rows <> Array.length labels then
    Traceio.Error.corruptf "%s: template has %d mean vectors for %d labels" path rows (Array.length labels);
  let means = Array.init rows (fun _ -> Traceio.Codec.get_floats c) in
  let d = Traceio.Binio.get_varint_int c in
  let cov = Array.init d (fun _ -> Traceio.Codec.get_floats c) in
  Array.iteri
    (fun i row ->
      if Array.length row <> d then
        Traceio.Error.corruptf "%s: covariance row %d has %d columns in a %dx%d matrix" path i (Array.length row) d d)
    cov;
  let log_det = Traceio.Binio.get_f64 c in
  let pois = Traceio.Codec.get_ints c in
  { Sca.Template.labels; means; inv_cov = Mathkit.Matrix.of_arrays cov; log_det; pois }

let put_threshold b = function
  | Sca.Segment.Auto -> Traceio.Binio.put_u8 b 0
  | Sca.Segment.Percentile p ->
      Traceio.Binio.put_u8 b 1;
      Traceio.Binio.put_f64 b p
  | Sca.Segment.Absolute a ->
      Traceio.Binio.put_u8 b 2;
      Traceio.Binio.put_f64 b a

let get_threshold ~path c =
  match Traceio.Binio.get_u8 c with
  | 0 -> Sca.Segment.Auto
  | 1 -> Sca.Segment.Percentile (Traceio.Binio.get_f64 c)
  | 2 -> Sca.Segment.Absolute (Traceio.Binio.get_f64 c)
  | t -> Traceio.Error.corruptf "%s: unknown segmentation-threshold tag %d" path t

let profile_payload prof =
  let b = Buffer.create 65536 in
  put_threshold b prof.segment.Sca.Segment.threshold;
  Traceio.Binio.put_varint b (Int64.of_int prof.segment.Sca.Segment.smooth_radius);
  Traceio.Binio.put_varint b (Int64.of_int prof.segment.Sca.Segment.merge_gap);
  Traceio.Binio.put_varint b (Int64.of_int prof.segment.Sca.Segment.min_burst);
  Traceio.Binio.put_varint b (Int64.of_int prof.window_length);
  Traceio.Codec.put_ints b prof.values;
  Traceio.Binio.put_f64 b prof.sigma;
  Traceio.Binio.put_f64 b prof.sign_fit_floor;
  Traceio.Binio.put_f64 b prof.value_fit_floor;
  let a = prof.attack in
  put_template b a.Sca.Attack.sign_template;
  put_template b a.Sca.Attack.neg_template;
  put_template b a.Sca.Attack.pos_template;
  Traceio.Codec.put_floats b a.Sca.Attack.neg_priors;
  Traceio.Codec.put_floats b a.Sca.Attack.pos_priors;
  Traceio.Codec.put_floats b a.Sca.Attack.prior_of_sign;
  Traceio.Codec.put_ints b a.Sca.Attack.pois_sign;
  Traceio.Codec.put_ints b a.Sca.Attack.pois_neg;
  Traceio.Codec.put_ints b a.Sca.Attack.pois_pos;
  Buffer.contents b

let profile_of_payload ~path payload =
  let c = Traceio.Binio.cursor ~name:path payload in
  let threshold = get_threshold ~path c in
  let smooth_radius = Traceio.Binio.get_varint_int c in
  let merge_gap = Traceio.Binio.get_varint_int c in
  let min_burst = Traceio.Binio.get_varint_int c in
  let segment = { Sca.Segment.threshold; smooth_radius; merge_gap; min_burst } in
  let window_length = Traceio.Binio.get_varint_int c in
  let values = Traceio.Codec.get_ints c in
  let sigma = Traceio.Binio.get_f64 c in
  let sign_fit_floor = Traceio.Binio.get_f64 c in
  let value_fit_floor = Traceio.Binio.get_f64 c in
  let sign_template = get_template ~path c in
  let neg_template = get_template ~path c in
  let pos_template = get_template ~path c in
  let neg_priors = Traceio.Codec.get_floats c in
  let pos_priors = Traceio.Codec.get_floats c in
  let prior_of_sign = Traceio.Codec.get_floats c in
  let pois_sign = Traceio.Codec.get_ints c in
  let pois_neg = Traceio.Codec.get_ints c in
  let pois_pos = Traceio.Codec.get_ints c in
  Traceio.Binio.expect_end c;
  let attack =
    {
      Sca.Attack.sign_template;
      neg_template;
      pos_template;
      neg_priors;
      pos_priors;
      prior_of_sign;
      pois_sign;
      pois_neg;
      pois_pos;
    }
  in
  { attack; window_length; segment; values; sigma; sign_fit_floor; value_fit_floor }

let save_profile path prof =
  let oc = Traceio.Error.open_out_bin path in
  Fun.protect
    ~finally:(fun () -> try close_out oc with Sys_error _ -> ())
    (fun () ->
      Traceio.Error.wrap_io path (fun () ->
          output_string oc profile_magic;
          output_string oc (String.init 2 (fun i -> Char.chr ((profile_version lsr (8 * i)) land 0xFF))));
      Traceio.Frame.write ~path oc (profile_payload prof))

let load_profile path =
  let ic = Traceio.Error.open_in_bin path in
  Fun.protect
    ~finally:(fun () -> try close_in ic with Sys_error _ -> ())
    (fun () ->
      try
        let m = Traceio.Error.wrap_io path (fun () -> really_input_string ic (String.length profile_magic)) in
        if m = legacy_profile_magic_prefix then
          invalid_arg
            (Printf.sprintf
               "Campaign.load_profile: %s is a stale v1 (Marshal) profile cache — delete it and re-run profiling"
               path);
        if m <> profile_magic then
          invalid_arg (Printf.sprintf "Campaign.load_profile: %s is not a profile cache (bad magic)" path);
        let v = Traceio.Error.wrap_io path (fun () -> really_input_string ic 2) in
        let v = Char.code v.[0] lor (Char.code v.[1] lsl 8) in
        if v <> profile_version then
          invalid_arg
            (Printf.sprintf
               "Campaign.load_profile: %s has profile-cache version %d, this build reads version %d — re-run \
                profiling"
               path v profile_version);
        match Traceio.Frame.read ~path ic with
        | None -> invalid_arg (Printf.sprintf "Campaign.load_profile: %s: truncated profile cache" path)
        | Some payload -> profile_of_payload ~path payload
      with Traceio.Error.Corrupt msg -> invalid_arg (Printf.sprintf "Campaign.load_profile: corrupt cache: %s" msg))

(* --- attack --------------------------------------------------------------- *)

type grade = Confident | Tentative | SignOnly | Unknown
type recovery = Clean | Retried of int | Unrecoverable

type coefficient_result = {
  actual : int;
  verdict : Sca.Attack.verdict;
  posterior_all : (int * float) array;
  grade : grade;
  recovery : recovery;
}

type gate = {
  confident_threshold : float;
  tentative_threshold : float;
  sign_only_threshold : float;
  retry_budget : int;
}

let default_gate =
  { confident_threshold = 0.85; tentative_threshold = 0.0; sign_only_threshold = 0.5; retry_budget = 2 }

(* Grading is goodness-of-fit first, posterior confidence second.  A
   posterior normalises the absolute likelihood away, so a corrupted
   window often looks MORE confident than an honest one (one garbage
   class is merely the least garbage).  The absolute best-class log
   density has no such failure mode: honest attack windows land in the
   band the profiling windows calibrated, faulted ones fall off a
   quadratic cliff.  Only windows that fit are allowed to carry value
   information; only then does the joint confidence (sign-match peak
   times value-posterior peak, both flat-prior) pick the rung. *)
let classify_graded prof gate ~quality window =
  let sign_conf = Sca.Attack.sign_confidence prof.attack window in
  let verdict = Sca.Attack.classify prof.attack window in
  let posterior_all = Sca.Attack.posterior_all prof.attack window in
  (* Peak of the joint Bayesian posterior.  Crucially, a point-mass
     posterior (the one that would become a perfect hint) always scores
     1.0 here, so on a clean window it always clears the Confident
     threshold — the Tentative perfect-hint demotion provably cannot
     change a clean-trace hint. *)
  let conf = Array.fold_left (fun acc (_, p) -> Float.max acc p) 0.0 posterior_all in
  let grade =
    if Sca.Attack.sign_fit prof.attack window < prof.sign_fit_floor then
      (* not even the branch region looks like any class: the window is
         noise and nothing in it can be trusted *)
      Unknown
    else if Sca.Attack.value_fit prof.attack ~sign:verdict.Sca.Attack.sign window < prof.value_fit_floor
    then if sign_conf >= gate.sign_only_threshold then SignOnly else Unknown
    else if conf >= gate.confident_threshold && quality <> Sca.Segment.Resynced then
      (* a window that segmentation had to repair can never be Confident:
         a confidently-wrong verdict would enter the lattice as a perfect
         hint and poison the whole estimate.  Suspect (a length outlier)
         does not bar Confident: burst length varies legitimately with
         the coefficient value, so rare large-magnitude values trip the
         MAD check on perfectly clean traces — corruption is what the
         fit floors detect. *)
      Confident
    else if conf >= gate.tentative_threshold then Tentative
    else if sign_conf >= gate.sign_only_threshold then SignOnly
    else Unknown
  in
  (verdict, posterior_all, grade)

let grade_counts results =
  let c = ref 0 and t = ref 0 and s = ref 0 and u = ref 0 in
  Array.iter
    (fun r ->
      match r.grade with
      | Confident -> incr c
      | Tentative -> incr t
      | SignOnly -> incr s
      | Unknown -> incr u)
    results;
  (!c, !t, !s, !u)

let hint_of_result ~sigma ~coordinate r =
  match r.grade with
  | Confident -> Hints.Hint.of_posterior ~coordinate r.posterior_all
  | Tentative -> (
      (* keep the measured posterior, but never let a Tentative verdict
         harden into a perfect hint: a point-mass posterior on a window
         the gate would not call Confident (repaired segmentation, soft
         sign match) is exactly the confidently-wrong case *)
      let h = Hints.Hint.of_posterior ~coordinate r.posterior_all in
      match h.Hints.Hint.kind with
      | Hints.Hint.Perfect v ->
          {
            h with
            Hints.Hint.kind =
              Hints.Hint.Approximate { mean = float_of_int v; variance = 0.25; confidence = 1.0 };
          }
      | _ -> h)
  | SignOnly -> Hints.Hint.sign_hint ~sigma ~coordinate r.verdict.Sca.Attack.sign
  | Unknown -> { Hints.Hint.coordinate; kind = Hints.Hint.None_useful }

let windows_of_samples prof samples ~count =
  let wins = raw_windows_of_samples prof.segment ~samples ~count in
  Sca.Segment.vectorize samples wins ~length:prof.window_length

let attack_samples prof ~samples ~noises =
  let vectors = windows_of_samples prof samples ~count:(Array.length noises) in
  Array.mapi
    (fun i window ->
      let verdict, posterior_all, grade = classify_graded prof default_gate ~quality:Sca.Segment.Clean window in
      { actual = noises.(i); verdict; posterior_all; grade; recovery = Clean })
    vectors

(* --- fault-tolerant attack ------------------------------------------------- *)

let null_verdict = { Sca.Attack.sign = 0; value = 0; posterior = [| (0, 1.0) |] }

(* Resilient segmentation of one trace: exactly count+1 windows (the
   firmware's trailing dummy included) or a typed error, with the
   per-window quality feeding the grade gate. *)
let graded_windows prof gate ~count samples =
  match Sca.Segment.segment prof.segment ~expected:(count + 1) samples with
  | Error e -> Error e
  | Ok seg ->
      let wins = Array.sub seg.Sca.Segment.wins 0 count in
      let quality = Array.sub seg.Sca.Segment.quality 0 count in
      let vectors = Sca.Segment.vectorize samples wins ~length:prof.window_length in
      Ok (Array.init count (fun i -> classify_graded prof gate ~quality:quality.(i) vectors.(i)))

let attack_samples_resilient ?(gate = default_gate) ?retry prof ~samples ~noises =
  let count = Array.length noises in
  let results =
    Array.init count (fun i ->
        {
          actual = noises.(i);
          verdict = null_verdict;
          posterior_all = [| (0, 1.0) |];
          grade = Unknown;
          recovery = Unrecoverable;
        })
  in
  let pending = ref [] in
  (match graded_windows prof gate ~count samples with
  | Ok graded ->
      Array.iteri
        (fun i (verdict, posterior_all, grade) ->
          results.(i) <-
            {
              actual = noises.(i);
              verdict;
              posterior_all;
              grade;
              recovery = (if grade = Unknown then Unrecoverable else Clean);
            };
          if grade = Unknown then pending := i :: !pending)
        graded
  | Error _ -> pending := List.init count Fun.id);
  (match retry with
  | Some remeasure ->
      let attempt = ref 1 in
      while !pending <> [] && !attempt <= gate.retry_budget do
        (match graded_windows prof gate ~count (remeasure !attempt) with
        | Ok graded ->
            pending :=
              List.filter
                (fun i ->
                  let verdict, posterior_all, grade = graded.(i) in
                  if grade = Unknown then true
                  else begin
                    results.(i) <-
                      { actual = noises.(i); verdict; posterior_all; grade; recovery = Retried !attempt };
                    false
                  end)
                !pending
        | Error _ -> ());
        incr attempt
      done
  | None -> ());
  results

let windows_of_run prof (run : Device.run) =
  windows_of_samples prof run.Device.trace.Power.Ptrace.samples ~count:(Array.length run.Device.noises)

let attack_trace prof (run : Device.run) =
  attack_samples prof ~samples:run.Device.trace.Power.Ptrace.samples ~noises:run.Device.noises

let attack_signs_only prof run =
  let vectors = windows_of_run prof run in
  Array.mapi (fun i window -> (compare run.Device.noises.(i) 0, Sca.Attack.classify_sign_only prof.attack window)) vectors

type stats = {
  confusion : Sca.Confusion.t;
  sign_correct : int;
  sign_total : int;
  value_correct : int;
  value_total : int;
  skipped_out_of_range : int;
  corrupt_skipped : int;
}

(* Shared aggregate accumulator for the live and archive-replay attack
   campaigns. *)
type tally = {
  t_confusion : Sca.Confusion.t;
  t_in_range : (int, unit) Hashtbl.t;
  mutable t_sign_correct : int;
  mutable t_sign_total : int;
  mutable t_value_correct : int;
  mutable t_value_total : int;
  mutable t_skipped : int;
  mutable t_all : coefficient_result list;  (* reversed *)
}

let tally_create prof =
  let in_range = Hashtbl.create 64 in
  Array.iter (fun v -> Hashtbl.replace in_range v ()) prof.values;
  {
    t_confusion = Sca.Confusion.create ~labels:prof.values;
    t_in_range = in_range;
    t_sign_correct = 0;
    t_sign_total = 0;
    t_value_correct = 0;
    t_value_total = 0;
    t_skipped = 0;
    t_all = [];
  }

let tally_add t results =
  Array.iter
    (fun r ->
      t.t_all <- r :: t.t_all;
      t.t_sign_total <- t.t_sign_total + 1;
      if compare r.actual 0 = r.verdict.Sca.Attack.sign then t.t_sign_correct <- t.t_sign_correct + 1;
      if Hashtbl.mem t.t_in_range r.actual then begin
        t.t_value_total <- t.t_value_total + 1;
        Sca.Confusion.add t.t_confusion ~actual:r.actual ~predicted:r.verdict.Sca.Attack.value;
        if r.actual = r.verdict.Sca.Attack.value then t.t_value_correct <- t.t_value_correct + 1
      end
      else t.t_skipped <- t.t_skipped + 1)
    results

let tally_finish ?(corrupt_skipped = 0) t =
  ( {
      confusion = t.t_confusion;
      sign_correct = t.t_sign_correct;
      sign_total = t.t_sign_total;
      value_correct = t.t_value_correct;
      value_total = t.t_value_total;
      skipped_out_of_range = t.t_skipped;
      corrupt_skipped;
    },
    Array.of_list (List.rev t.t_all) )

let run_attacks ?domains prof device ~traces ~scope_rng ~sampler_rng =
  let seeds = Array.init traces (fun _ -> (Mathkit.Prng.bits64 scope_rng, Mathkit.Prng.bits64 sampler_rng)) in
  let one_trace (scope_seed, sampler_seed) =
    let scope_rng = Mathkit.Prng.create ~seed:scope_seed () in
    let sampler_rng = Mathkit.Prng.create ~seed:sampler_seed () in
    let run = Device.run_gaussian device ~scope_rng ~sampler_rng in
    attack_trace prof run
  in
  let per_trace = Mathkit.Parallel.map_array ?domains one_trace seeds in
  let tally = tally_create prof in
  Array.iter (tally_add tally) per_trace;
  tally_finish tally

(* Live campaign with the full fault-tolerance stack: resilient
   segmentation, confidence gating, and a bounded re-measurement
   budget.  A coefficient graded Unknown is re-acquired — the same
   noise values forced through the sampler with honest timing and a
   fresh scope/fault realisation, as re-triggering the capture would.
   The retry stream is carved from a separate generator, so a campaign
   that needs no retries consumes its randomness exactly like
   [run_attacks] and yields bit-identical verdicts. *)
let run_attacks_resilient ?domains ?(gate = default_gate) prof device ~traces ~scope_rng ~sampler_rng =
  let seeds = Array.init traces (fun _ -> (Mathkit.Prng.bits64 scope_rng, Mathkit.Prng.bits64 sampler_rng)) in
  let one_trace (scope_seed, sampler_seed) =
    let scope_rng = Mathkit.Prng.create ~seed:scope_seed () in
    let sampler_rng = Mathkit.Prng.create ~seed:sampler_seed () in
    let run = Device.run_gaussian device ~scope_rng ~sampler_rng in
    let retry_master = Mathkit.Prng.create ~seed:(Int64.logxor scope_seed 0x5DEECE66DL) () in
    let remeasure _attempt =
      let rng = Mathkit.Prng.split retry_master in
      let draws = Array.map (fun v -> Device.profiling_draw device rng ~value:v) run.Device.noises in
      (Device.run device ~scope_rng:rng ~draws).Device.trace.Power.Ptrace.samples
    in
    attack_samples_resilient ~gate ~retry:remeasure prof
      ~samples:run.Device.trace.Power.Ptrace.samples ~noises:run.Device.noises
  in
  let per_trace = Mathkit.Parallel.map_array ?domains one_trace seeds in
  let tally = tally_create prof in
  Array.iter (tally_add tally) per_trace;
  tally_finish tally

(* Re-attack a recorded campaign: records stream through in batches
   ([batch] traces resident at a time), classification parallelised
   over each batch with Mathkit.Parallel.  By default a record whose
   frame fails its CRC is skipped and counted ([stats.corrupt_skipped])
   and the replay continues at the next frame boundary; [~strict:true]
   restores fail-fast.  Replay has no device to re-measure on, so
   Unknown-graded coefficients come back [Unrecoverable]. *)
let attack_archive ?domains ?(batch = 16) ?(gate = default_gate) ?(strict = false) prof path =
  if batch <= 0 then invalid_arg "Campaign.attack_archive: batch must be positive";
  Traceio.Archive.with_reader path (fun reader ->
      let tally = tally_create prof in
      let corrupt = ref 0 in
      let finished = ref false in
      let next_tolerant_batch () =
        let rec take acc k =
          if k = 0 then acc
          else
            match Traceio.Archive.try_next reader with
            | `End_of_archive ->
                finished := true;
                acc
            | `Skipped _ ->
                incr corrupt;
                take acc (k - 1)
            | `Record r -> take (r :: acc) (k - 1)
        in
        Array.of_list (List.rev (take [] batch))
      in
      let next_strict_batch () =
        let records = Traceio.Archive.next_batch reader ~max:batch in
        if Array.length records < batch then finished := true;
        records
      in
      while not !finished do
        let records = if strict then next_strict_batch () else next_tolerant_batch () in
        if Array.length records > 0 then begin
          let per_trace =
            Mathkit.Parallel.map_array ?domains
              (fun (r : Traceio.Archive.record) ->
                attack_samples_resilient ~gate prof ~samples:r.Traceio.Archive.trace.Power.Ptrace.samples
                  ~noises:r.Traceio.Archive.noises)
              records
          in
          Array.iter (tally_add tally) per_trace
        end
      done;
      tally_finish ~corrupt_skipped:!corrupt tally)
