(** The device under attack: RISC-V core + sampler firmware + scope.

    Bundles the pieces of the measurement setup the paper describes
    (PicoRV32 soft core running SEAL's sampler, shunt + oscilloscope)
    into one object: load the firmware once, then run sampling
    campaigns and get power traces back.  All randomness — the
    sampler's draws and the scope's measurement noise — comes from
    explicit generators. *)

type t

val create :
  ?variant:Riscv.Sampler_prog.variant ->
  ?synth:Power.Synth.config ->
  ?moduli:int array ->
  ?cycle_model:(Riscv.Inst.klass -> int) ->
  ?fault:Power.Fault.config ->
  n:int ->
  unit ->
  t
(** A device whose firmware samples [n] coefficients per run over the
    given modulus chain (default: the paper's q = 132120577, k = 1).
    With [fault], every trace leaving the scope — live runs and
    recordings alike — is corrupted by that measurement-fault model;
    a no-op fault config leaves traces bit-identical to a faultless
    device. *)

val n : t -> int
val variant : t -> Riscv.Sampler_prog.variant
val moduli : t -> int array
val synth_config : t -> Power.Synth.config
val with_synth : t -> Power.Synth.config -> t
(** Same firmware, different scope settings (noise sweeps). *)

val with_fault : t -> Power.Fault.config option -> t
(** Same firmware and scope, different acquisition-fault load. *)

val fault_config : t -> Power.Fault.config option

type run = {
  trace : Power.Ptrace.t;
  noises : int array;  (** ground truth: the signed coefficients sampled *)
  poly : int array array;  (** what the firmware wrote: planes x coefficients *)
}

val run : t -> scope_rng:Mathkit.Prng.t -> draws:(int * int) array -> run
(** Execute one sampling of [n t] coefficients from an explicit draw
    queue [(noise, rejections)]. *)

val run_gaussian : t -> scope_rng:Mathkit.Prng.t -> sampler_rng:Mathkit.Prng.t -> run
(** Honest run: the device draws its own clipped-normal noise. *)

val run_shuffled :
  t -> scope_rng:Mathkit.Prng.t -> sampler_rng:Mathkit.Prng.t -> perm:int array -> run
(** Shuffled-variant run with the given sampling order. *)

val profiling_draw : t -> Mathkit.Prng.t -> value:int -> int * int
(** A draw queue entry with the chosen [value] but a realistic,
    honestly sampled rejection count — how profiling "configures the
    device with all possible secrets" without distorting its timing
    distribution. *)

(** {1 Record / replay}

    Capture a campaign into a {!Traceio.Archive} once, re-attack it
    offline any number of times.  Recording streams run by run —
    memory stays bounded by one trace — and replay is lossless: a
    replayed run is bit-identical to the live one (samples, events,
    ground-truth labels), so offline analyses reproduce online results
    exactly. *)

val open_recorder :
  ?meta:(string * string) list -> ?obs:Obs.Ctx.t -> t -> path:string -> seed:int64 -> Traceio.Archive.writer
(** An archive writer stamped with this device's parameters (variant,
    n, samples per cycle, scope noise) and the campaign [seed].  With
    an enabled [obs] context the writer counts every appended record
    ([traceio.records_written], [traceio.payload_bytes_written]). *)

val record_run : Traceio.Archive.writer -> run -> unit
(** Append one run (its trace and ground-truth noises). *)

val record :
  ?obs:Obs.Ctx.t ->
  t ->
  path:string ->
  seed:int64 ->
  traces:int ->
  scope_rng:Mathkit.Prng.t ->
  sampler_rng:Mathkit.Prng.t ->
  unit
(** Capture [traces] honest runs ([run_gaussian]; the Shuffled variant
    draws a fresh secret permutation per run) into an archive.  [seed]
    is provenance metadata only — the randomness comes from the two
    generators, exactly as in the live campaign entry points.  With an
    enabled [obs] context the capture loop runs inside a
    [device.record] span and the writer counts records and bytes. *)

type replay
(** A streaming cursor over an archived campaign. *)

val open_replay : ?expect:t -> string -> replay
(** Open an archive for replay.  With [expect], the archive header
    must match the device's variant, coefficient count and sampling
    rate.
    @raise Invalid_argument on a parameter mismatch.
    @raise Traceio.Error.Corrupt on a damaged archive. *)

val replay_header : replay -> Traceio.Archive.header
val replay_next : replay -> run option
(** Next archived run.  [poly] is empty: the archive stores what the
    scope saw and the ground truth, not the firmware's memory image. *)

val close_replay : replay -> unit
val replay_iter : ?expect:t -> string -> f:(run -> unit) -> unit

val of_header : ?synth:Power.Synth.config -> ?cycle_model:(Riscv.Inst.klass -> int) -> Traceio.Archive.header -> t
(** A clone device matching an archive's parameters — what offline
    profiling builds its templates on.  [synth] defaults to
    {!Power.Synth.default} with the header's sampling rate and noise
    sigma. *)
