(** Profile cache serialization (format v3).

    Persists a built {!Pipeline.profile} (templates, POIs, calibrated
    segmentation and fit floors) so the expensive profiling phase runs
    once per device.  The format is a versioned binary codec in the
    {!Traceio} format family — {!Constants.profile_magic}, a little-
    endian u16 version ({!Constants.profile_version}), one CRC-framed
    payload.  Stale or damaged caches are rejected on load with an
    actionable message instead of being misinterpreted. *)

val save : string -> Pipeline.profile -> unit
(** @raise Traceio.Error.Io when the path cannot be written (message
    carries the path). *)

val load : string -> Pipeline.profile
(** @raise Invalid_argument with a clear message on a stale (v1 /
    Marshal-era), version-mismatched, truncated or corrupt cache.
    @raise Traceio.Error.Io when the file cannot be read. *)

(**/**)

(* The raw payload codec, exposed for round-trip property tests. *)

val profile_payload : Pipeline.profile -> string
val profile_of_payload : path:string -> string -> Pipeline.profile
