type security_report = {
  bikz_no_hints : float;
  bikz_with_hints : float;
  bits_no_hints : float;
  bits_with_hints : float;
  perfect_hints : int;
  approximate_hints : int;
}

let lwe_instance = Constants.lwe_instance

(* When the campaign attacked fewer coefficients than the instance has
   (scaled-down configs), the per-coefficient statistics are recycled -
   the per-coordinate hint quality is i.i.d., so this is an unbiased
   extrapolation of the security estimate. *)
let hints_of_results results count mk =
  if Array.length results = 0 then failwith "Experiment: no attacked coefficients";
  let len = Array.length results in
  List.init count (fun i -> mk i results.(i mod len))

let security_of_hints ?(obs = Obs.Ctx.disabled) hint_list =
  let report =
    Obs.Ctx.span obs "sink.integrate" (fun () ->
        let dbdd = Hints.Dbdd.create lwe_instance in
        let bikz_no_hints = Hints.Dbdd.estimate_bikz dbdd in
        Hints.Hint.apply_all dbdd hint_list;
        let bikz_with_hints = Hints.Dbdd.estimate_bikz dbdd in
        let perfect = Hints.Dbdd.integrated dbdd in
        {
          bikz_no_hints;
          bikz_with_hints;
          bits_no_hints = Hints.Bkz_model.security_bits bikz_no_hints;
          bits_with_hints = Hints.Bkz_model.security_bits bikz_with_hints;
          perfect_hints = perfect;
          approximate_hints = List.length hint_list - perfect;
        })
  in
  if Obs.Ctx.enabled obs then begin
    let m = Obs.Ctx.metrics obs in
    let perfect, approximate, none_useful = Hints.Hint.kind_counts hint_list in
    Obs.Metrics.incr ~by:perfect (Obs.Metrics.counter m "sink.hints_perfect");
    Obs.Metrics.incr ~by:approximate (Obs.Metrics.counter m "sink.hints_approximate");
    Obs.Metrics.incr ~by:none_useful (Obs.Metrics.counter m "sink.hints_none_useful");
    Obs.Metrics.set (Obs.Metrics.gauge m "sink.bikz_no_hints") report.bikz_no_hints;
    Obs.Metrics.set (Obs.Metrics.gauge m "sink.bikz_with_hints") report.bikz_with_hints;
    Obs.Metrics.set (Obs.Metrics.gauge m "sink.bits_with_hints") report.bits_with_hints
  end;
  report

let json_of_security s =
  Report.Obj
    [
      ("bikz_no_hints", Report.Float s.bikz_no_hints);
      ("bikz_with_hints", Report.Float s.bikz_with_hints);
      ("bits_no_hints", Report.Float s.bits_no_hints);
      ("bits_with_hints", Report.Float s.bits_with_hints);
      ("perfect_hints", Report.Int s.perfect_hints);
      ("approximate_hints", Report.Int s.approximate_hints);
    ]
