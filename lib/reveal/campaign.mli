(** Profiling and attack campaigns (Section IV-B) — the stage drivers.

    This module is the composition root of the staged pipeline: the
    historical entry points ({!run_attacks}, {!attack_archive}, …) are
    thin wrappers that pick a {!Pipeline.source}, a segmenter and a
    grading mode and hand them to the one generic driver,
    {!run_source}.  The stages themselves live in {!Profiling}
    (template building), {!Profile_store} (cache v3), {!Grading}
    (gate + retry ladder) and {!Source} (live / archive / synthetic);
    their types are re-exported here under their historical names.

    The paper's sizes are 220 000 profiling runs and 25 000 attacked
    coefficients; the default here is scaled down (the shapes are
    stable); pass larger counts to match the paper exactly. *)

type profile = Pipeline.profile = {
  attack : Sca.Attack.t;
  window_length : int;
  segment : Sca.Segment.config;  (** with the calibrated absolute threshold *)
  values : int array;  (** candidate labels, e.g. -14..14 *)
  sigma : float;
  sign_fit_floor : float;
      (** goodness-of-fit floor for the sign template, calibrated on
          the profiling windows — attack windows scoring below it are
          out-of-distribution (faulted) and grade Unknown *)
  value_fit_floor : float;  (** same, for the value templates: below it a window is at best SignOnly *)
}

val default_values : int array
(** -14 .. 14, the range the paper observed over 220 000 draws
    ({!Constants.default_values}). *)

val profile :
  ?values:int array ->
  ?per_value:int ->
  ?domains:int ->
  ?obs:Obs.Ctx.t ->
  ?poi_count:int ->
  ?sign_poi_count:int ->
  Device.t ->
  Mathkit.Prng.t ->
  profile
(** {!Profiling.profile}: build templates on the attack device itself.
    @raise Invalid_argument when the device is too small to host every
    candidate value twice per run. *)

val save_profile : string -> profile -> unit
(** {!Profile_store.save}. *)

val load_profile : string -> profile
(** {!Profile_store.load}.
    @raise Invalid_argument with a clear message on a stale (v1 /
    Marshal-era), version-mismatched, truncated or corrupt cache.
    @raise Traceio.Error.Io when the file cannot be read. *)

(** {1 Profiling campaigns on disk}

    The acquire-once / analyze-many split: {!record_profiling} runs
    the profiling campaign and streams every labelled run into a
    {!Traceio.Archive} (the segmentation calibration travels in the
    archive metadata); {!profile_of_archive} rebuilds templates from
    such an archive without touching a device.  Both paths consume
    their generator identically, so for equal seeds the offline
    profile is bit-identical to the live one. *)

val record_profiling :
  ?values:int array ->
  ?per_value:int ->
  ?seed:int64 ->
  ?obs:Obs.Ctx.t ->
  Device.t ->
  Mathkit.Prng.t ->
  path:string ->
  unit
(** {!Profiling.record_profiling}.
    @raise Invalid_argument under the same conditions as {!profile}. *)

val profiling_windows_of_archive :
  ?domains:int -> ?batch:int -> ?obs:Obs.Ctx.t -> string -> Sca.Segment.config * int * (int * float array array) list
(** {!Profiling.profiling_windows_of_archive}.
    @raise Traceio.Error.Corrupt when the archive is damaged or is not
    a profiling archive. *)

val profile_of_archive :
  ?domains:int -> ?batch:int -> ?obs:Obs.Ctx.t -> ?poi_count:int -> ?sign_poi_count:int -> string -> profile
(** {!profile}, but from a recorded profiling archive. *)

val profiling_windows :
  ?values:int array ->
  ?per_value:int ->
  ?domains:int ->
  ?obs:Obs.Ctx.t ->
  Device.t ->
  Mathkit.Prng.t ->
  Sca.Segment.config * int * (int * float array array) list
(** {!Profiling.profiling_windows}: the raw material {!profile} is
    built from.  Exposed for the feature-selection ablation and for
    custom classifiers. *)

(** {1 Confidence grading}

    Re-exports of the {!Grading} stage: every attacked coefficient
    carries a grade — the rung of the hint-degradation ladder it is
    still good for — and a recovery tag saying how it was obtained. *)

type grade = Grading.grade =
  | Confident  (** clean window, unambiguous match: full-strength hint *)
  | Tentative
      (** usable posterior but a repaired window or a soft match: the
          hint keeps its measured posterior variance *)
  | SignOnly  (** only the branch-region sign is trustworthy *)
  | Unknown  (** nothing usable — the window is noise *)

type recovery = Grading.recovery =
  | Clean  (** first measurement sufficed *)
  | Retried of int  (** usable after this many re-measurements *)
  | Unrecoverable
      (** still Unknown when the retry budget ran out — or no live
          device to re-measure on (archive replay) *)

type gate = Grading.gate = {
  confident_threshold : float;
      (** min peak of the joint Bayesian posterior for Confident (also
          requires a window segmentation did not have to repair); a
          point-mass posterior always scores 1.0 *)
  tentative_threshold : float;  (** min joint confidence for Tentative *)
  sign_only_threshold : float;  (** min sign confidence for SignOnly *)
  retry_budget : int;  (** re-measurements per trace, live campaigns only *)
}

val default_gate : gate
(** 0.85 / 0 / 0.5, retry budget 2.  With a zero tentative threshold,
    demotion below Tentative happens only on a goodness-of-fit failure
    (see {!profile}) — clean traces always fit, so the zero-fault
    pipeline is bit-identical to the ungated one. *)

type coefficient_result = Grading.coefficient_result = {
  actual : int;
  verdict : Sca.Attack.verdict;
  posterior_all : (int * float) array;  (** unrestricted posterior, Table II *)
  grade : grade;
  recovery : recovery;
}

val grade_counts : coefficient_result array -> int * int * int * int
(** (confident, tentative, sign-only, unknown). *)

val confident_mismatches : coefficient_result array -> int
(** {!Grading.confident_mismatches}: coefficients graded [Confident]
    with a wrong recovered sign — the triage fuzzer's misgrade
    signal. *)

val hint_of_result : sigma:float -> coordinate:int -> coefficient_result -> Hints.Hint.t
(** {!Grading.hint_of_result}: the hint-degradation ladder. *)

val attack_trace : profile -> Device.run -> coefficient_result array
(** Segment one honest trace (strict segmenter) and classify every
    coefficient.
    @raise Failure when segmentation finds a window count different
    from the device's coefficient count. *)

val attack_signs_only : profile -> Device.run -> (int * int) array
(** (actual sign, recovered sign) per coefficient — Table IV input. *)

val attack_samples_resilient :
  ?gate:gate ->
  ?retry:(int -> float array) ->
  ?obs:Obs.Ctx.t ->
  profile ->
  samples:float array ->
  noises:int array ->
  coefficient_result array
(** {!Grading.attack_resilient}: fault-tolerant single-trace attack —
    resilient segmentation, per-window confidence grading, and — when
    [retry] is provided — a bounded re-measurement loop.  On a clean
    trace the verdicts are bit-identical to {!attack_trace}. *)

(** {1 Campaign drivers} *)

type stats = {
  confusion : Sca.Confusion.t;
  sign_correct : int;
  sign_total : int;
  value_correct : int;
  value_total : int;
  skipped_out_of_range : int;  (** |actual| beyond the template labels *)
  corrupt_skipped : int;
      (** source records dropped for CRC/decode failures (tolerant
          replay only; always 0 for live campaigns) *)
}

val stats_of_results : ?corrupt_skipped:int -> profile -> coefficient_result array -> stats
(** Rebuild the aggregates from a result array alone.  The campaign
    tally is a fold of commutative counters over results in item
    order, so this reproduces the driver's own stats exactly — and it
    is the deterministic-merge half of the distributed fabric:
    concatenating per-shard result slices in trace order and
    re-tallying here is bit-identical to the single-process run. *)

type mode =
  | Classic  (** strict segmentation, no gating or retries; failures raise *)
  | Resilient of gate  (** the fault-tolerance stack *)

val run_source :
  ?obs:Obs.Ctx.t ->
  ?expected:int ->
  ?domains:int ->
  ?batch:int ->
  ?mode:mode ->
  profile ->
  Pipeline.source ->
  stats * coefficient_result array
(** The one generic driver every campaign below is a wrapper around:
    pull up to [batch] items (default {!Constants.default_batch}) from
    the source, attack them in parallel over [domains] worker domains,
    tally in item order, repeat to exhaustion.  A [`Skip]ped source
    record counts toward the batch budget and [stats.corrupt_skipped].
    The source is closed on exit, also on exceptions.  [mode] defaults
    to [Resilient default_gate].

    With an enabled [obs] context the whole run is one [campaign.run]
    span containing a [campaign.batch] span per batch (fan-out) and a
    [stage.tally] span per fold; the source is wrapped with
    {!Pipeline.instrument_source}, each per-trace attack carries its
    stage spans and window metrics (see {!Grading.attack_resilient}),
    and the final aggregates are exported as [result.*] gauges so the
    trace is a self-contained run record.  Span timings are only
    meaningful per-domain; counters and histograms aggregate correctly
    across domains.

    Each batch additionally ends with a [campaign.heartbeat] event
    whose attrs carry the coefficients graded so far (["done"]) and,
    when [expected] names the campaign size, the ["total"] — the
    progress frames a live monitor consumes over a streaming sink.
    @raise Invalid_argument when [batch <= 0]. *)

val run_attacks :
  ?obs:Obs.Ctx.t ->
  ?domains:int ->
  profile ->
  Device.t ->
  traces:int ->
  scope_rng:Mathkit.Prng.t ->
  sampler_rng:Mathkit.Prng.t ->
  stats * coefficient_result array
(** Repeated single-trace attacks ({!Source.device_live} through
    [Classic] mode); returns aggregate statistics and the flattened
    per-coefficient results (for hint building). *)

val run_attacks_resilient :
  ?obs:Obs.Ctx.t ->
  ?domains:int ->
  ?gate:gate ->
  profile ->
  Device.t ->
  traces:int ->
  scope_rng:Mathkit.Prng.t ->
  sampler_rng:Mathkit.Prng.t ->
  stats * coefficient_result array
(** {!run_attacks} through the fault-tolerance stack
    ({!Source.device_live} with [~retry:true] through [Resilient]
    mode): Unknown-graded coefficients are re-measured on the live
    device within the gate's retry budget.  Retries draw from a
    separate generator stream, so a campaign that needs none consumes
    randomness exactly like {!run_attacks} and yields bit-identical
    verdicts. *)

val attack_archive :
  ?obs:Obs.Ctx.t ->
  ?domains:int ->
  ?batch:int ->
  ?gate:gate ->
  ?strict:bool ->
  profile ->
  string ->
  stats * coefficient_result array
(** Re-attack a recorded campaign (see {!Device.record}) offline:
    {!Source.archive_replay} through [Resilient] mode — the same
    aggregates as {!run_attacks}, and bit-identical results for the
    runs the archive holds, with memory bounded by one batch instead
    of the whole trace set.  A mid-stream record that fails its CRC is
    skipped, counted in [stats.corrupt_skipped], and replay continues
    at the next frame boundary; pass [~strict:true] to fail fast
    instead.  Replaying cannot re-measure, so Unknown coefficients are
    [Unrecoverable].
    @raise Traceio.Error.Corrupt when the archive is structurally
    damaged (truncation, bad length field) — or, with [~strict:true],
    on the first bad record. *)
