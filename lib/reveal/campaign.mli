(** Profiling and attack campaigns (Section IV-B).

    Profiling re-creates the paper's template-building phase: the
    adversary owns an identical device, forces every candidate
    coefficient value through the sampler many times, segments each
    trace, and learns (a) an absolute segmentation threshold, (b) a
    common window length, (c) SOSD POIs and Gaussian templates.

    The attack phase then takes honest single traces of a full
    polynomial sampling and classifies every coefficient window.  The
    paper's sizes are 220 000 profiling runs and 25 000 attacked
    coefficients; the default here is scaled down (the shapes are
    stable); pass larger counts to match the paper exactly. *)

type profile = {
  attack : Sca.Attack.t;
  window_length : int;
  segment : Sca.Segment.config;  (** with the calibrated absolute threshold *)
  values : int array;  (** candidate labels, e.g. -14..14 *)
  sigma : float;
  sign_fit_floor : float;
      (** goodness-of-fit floor for the sign template, calibrated on
          the profiling windows — attack windows scoring below it are
          out-of-distribution (faulted) and grade Unknown *)
  value_fit_floor : float;  (** same, for the value templates: below it a window is at best SignOnly *)
}

val default_values : int array
(** -14 .. 14, the range the paper observed over 220 000 draws. *)

val profile :
  ?values:int array ->
  ?per_value:int ->
  ?domains:int ->
  ?poi_count:int ->
  ?sign_poi_count:int ->
  Device.t ->
  Mathkit.Prng.t ->
  profile
(** Build templates on the attack device itself: each profiling run
    forces every candidate value into several uniformly shuffled
    positions of an honest-length sampling, so the templates see each
    value at arbitrary coefficient indices with arbitrary neighbours —
    removing the index- and context-dependent leakage components from
    the class means (SOST then ranks those positions low).
    [per_value] defaults to 400 windows per candidate value; runs are
    distributed over [domains] worker domains (results are independent
    of the domain count — every run carries its own seed).
    @raise Invalid_argument when the device is too small to host every
    candidate value twice per run. *)

val save_profile : string -> profile -> unit
(** Persist a built profile (templates, POIs, segmentation calibration)
    so the expensive profiling phase runs once per device.  The format
    is a versioned binary codec in the {!Traceio} format family (magic
    + version + one CRC-framed payload) — stale or damaged caches are
    rejected on load instead of being misinterpreted.
    @raise Traceio.Error.Io when the path cannot be written (message
    carries the path). *)

val load_profile : string -> profile
(** @raise Invalid_argument with a clear message on a stale (v1 /
    Marshal-era), version-mismatched, truncated or corrupt cache.
    @raise Traceio.Error.Io when the file cannot be read. *)

(** {1 Profiling campaigns on disk}

    The acquire-once / analyze-many split: {!record_profiling} runs
    the profiling campaign and streams every labelled run into a
    {!Traceio.Archive} (the segmentation calibration travels in the
    archive metadata); {!profile_of_archive} rebuilds templates from
    such an archive without touching a device.  Both paths consume
    their generator identically, so for equal seeds the offline
    profile is bit-identical to the live one. *)

val record_profiling :
  ?values:int array -> ?per_value:int -> ?seed:int64 -> Device.t -> Mathkit.Prng.t -> path:string -> unit
(** Capture the profiling campaign of {!profile} into an archive, one
    run resident at a time.  [seed] is stamped into the header for
    provenance.
    @raise Invalid_argument under the same conditions as {!profile}. *)

val profiling_windows_of_archive :
  ?domains:int -> ?batch:int -> string -> Sca.Segment.config * int * (int * float array array) list
(** Stream the labelled windows back out of a profiling archive:
    records are ingested in batches of [batch] (default 16) traces —
    the peak resident set — and segmented in parallel over [domains]
    worker domains.
    @raise Traceio.Error.Corrupt when the archive is damaged or is not
    a profiling archive. *)

val profile_of_archive :
  ?domains:int -> ?batch:int -> ?poi_count:int -> ?sign_poi_count:int -> string -> profile
(** {!profile}, but from a recorded profiling archive. *)

val profiling_windows :
  ?values:int array ->
  ?per_value:int ->
  ?domains:int ->
  Device.t ->
  Mathkit.Prng.t ->
  Sca.Segment.config * int * (int * float array array) list
(** The raw material {!profile} is built from: the calibrated
    segmentation config, the common window length, and the labelled
    window vectors per candidate value.  Exposed for the
    feature-selection ablation and for custom classifiers. *)

(** {1 Confidence grading}

    Under measurement faults a verdict can be garbage even when the
    classifier returns one.  Every attacked coefficient therefore
    carries a grade — the rung of the hint-degradation ladder it is
    still good for — and a recovery tag saying how it was obtained. *)

type grade =
  | Confident  (** clean window, unambiguous match: full-strength hint *)
  | Tentative
      (** usable posterior but a repaired window or a soft match: the
          hint keeps its measured posterior variance *)
  | SignOnly  (** only the branch-region sign is trustworthy *)
  | Unknown  (** nothing usable — the window is noise *)

type recovery =
  | Clean  (** first measurement sufficed *)
  | Retried of int  (** usable after this many re-measurements *)
  | Unrecoverable
      (** still Unknown when the retry budget ran out — or no live
          device to re-measure on (archive replay) *)

type gate = {
  confident_threshold : float;
      (** min peak of the joint Bayesian posterior for Confident (also
          requires a window segmentation did not have to repair); a
          point-mass posterior always scores 1.0 *)
  tentative_threshold : float;  (** min joint confidence for Tentative *)
  sign_only_threshold : float;  (** min sign confidence for SignOnly *)
  retry_budget : int;  (** re-measurements per trace, live campaigns only *)
}

val default_gate : gate
(** 0.85 / 0 / 0.5, retry budget 2.  With a zero tentative threshold,
    demotion below Tentative happens only on a goodness-of-fit failure
    (see {!profile}) — clean traces always fit, so the zero-fault
    pipeline is bit-identical to the ungated one. *)

type coefficient_result = {
  actual : int;
  verdict : Sca.Attack.verdict;
  posterior_all : (int * float) array;  (** unrestricted posterior, Table II *)
  grade : grade;
  recovery : recovery;
}

val grade_counts : coefficient_result array -> int * int * int * int
(** (confident, tentative, sign-only, unknown). *)

val hint_of_result : sigma:float -> coordinate:int -> coefficient_result -> Hints.Hint.t
(** The hint-degradation ladder: [Confident] integrates the measured
    posterior exactly as the clean pipeline does (near-point-mass
    posteriors become perfect hints), [Tentative] keeps the measured
    posterior but is barred from hardening into a perfect hint (a
    point-mass is floored at variance 0.25), [SignOnly] degrades to
    the half-Gaussian sign hint, [Unknown] contributes nothing. *)

val attack_trace : profile -> Device.run -> coefficient_result array
(** Segment one honest trace and classify every coefficient.
    @raise Failure when segmentation finds a window count different
    from the device's coefficient count. *)

val attack_signs_only : profile -> Device.run -> (int * int) array
(** (actual sign, recovered sign) per coefficient — Table IV input. *)

val attack_samples_resilient :
  ?gate:gate ->
  ?retry:(int -> float array) ->
  profile ->
  samples:float array ->
  noises:int array ->
  coefficient_result array
(** Fault-tolerant single-trace attack: resilient segmentation
    ({!Sca.Segment.segment}), per-window confidence grading, and —
    when [retry] is provided — a bounded re-measurement loop.
    [retry attempt] must return a fresh capture of the same
    coefficients; coefficients still Unknown after [gate.retry_budget]
    attempts (or with no [retry]) are marked [Unrecoverable].  A trace
    whose segmentation fails outright grades every coefficient Unknown
    and is retried whole.  On a clean trace the verdicts are
    bit-identical to {!attack_trace}. *)

type stats = {
  confusion : Sca.Confusion.t;
  sign_correct : int;
  sign_total : int;
  value_correct : int;
  value_total : int;
  skipped_out_of_range : int;  (** |actual| beyond the template labels *)
  corrupt_skipped : int;
      (** archive records dropped for CRC/decode failures (tolerant
          replay only; always 0 for live campaigns) *)
}

val run_attacks :
  ?domains:int ->
  profile ->
  Device.t ->
  traces:int ->
  scope_rng:Mathkit.Prng.t ->
  sampler_rng:Mathkit.Prng.t ->
  stats * coefficient_result array
(** Repeated single-trace attacks; returns aggregate statistics and
    the flattened per-coefficient results (for hint building). *)

val run_attacks_resilient :
  ?domains:int ->
  ?gate:gate ->
  profile ->
  Device.t ->
  traces:int ->
  scope_rng:Mathkit.Prng.t ->
  sampler_rng:Mathkit.Prng.t ->
  stats * coefficient_result array
(** {!run_attacks} through the fault-tolerance stack: each trace is
    attacked with {!attack_samples_resilient}, re-measuring
    Unknown-graded coefficients on the live device (same noise values,
    honest timing, fresh scope/fault realisation) within the gate's
    retry budget.  Retries draw from a separate generator stream, so a
    campaign that needs none consumes randomness exactly like
    {!run_attacks} and yields bit-identical verdicts. *)

val attack_archive :
  ?domains:int -> ?batch:int -> ?gate:gate -> ?strict:bool -> profile -> string -> stats * coefficient_result array
(** Re-attack a recorded campaign (see {!Device.record}) offline:
    records stream through in batches of [batch] (default 16) traces,
    classified in parallel — the same aggregates as {!run_attacks},
    and bit-identical results for the runs the archive holds, with
    memory bounded by one batch instead of the whole trace set.
    A mid-stream record that fails its CRC (or will not decode) is
    skipped, counted in [stats.corrupt_skipped], and replay continues
    at the next frame boundary; pass [~strict:true] to fail fast
    instead.  Replaying cannot re-measure, so Unknown coefficients are
    [Unrecoverable].
    @raise Traceio.Error.Corrupt when the archive is structurally
    damaged (truncation, bad length field) — or, with [~strict:true],
    on the first bad record. *)
