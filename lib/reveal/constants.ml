let default_values = Array.init 29 (fun i -> i - 14)
let default_per_value = 400
let default_poi_count = 16
let default_sign_poi_count = 6
let default_batch = 16
let min_window_length = 16

let profile_magic = "REVEALPF"
let profile_version = 3
let legacy_profile_magic_prefix = "REVEAL-P" (* "REVEAL-PROFILE-v1\n" of the Marshal era *)

let meta_kind_key = "campaign:kind"
let meta_threshold_key = "profiling:threshold-bits"
let meta_values_key = "profiling:values"
let meta_per_value_key = "profiling:per-value"

let gate_confident_threshold = 0.85
let gate_tentative_threshold = 0.0
let gate_sign_only_threshold = 0.5
let gate_retry_budget = 2

(* The retry stream is carved from a generator derived from the trace's
   scope seed; the xor keeps it disjoint from the scope stream itself. *)
let retry_seed_salt = 0x5DEECE66DL

let lwe_instance = Hints.Lwe.seal_128_1024
