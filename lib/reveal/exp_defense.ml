open Exp_core

(* --- defenses ------------------------------------------------------------------------ *)

type defense_report = {
  variant : string;
  sign_accuracy : float;
  value_accuracy : float;
  bikz_after_attack : float;
}

let defenses config =
  let run variant name coordinates_known =
    let rng = Mathkit.Prng.create ~seed:(Int64.add config.seed 47L) () in
    let prof, results = small_campaign ~variant config rng in
    ignore prof;
    let sign_accuracy, value_accuracy = accuracies results in
    let bikz =
      if coordinates_known then begin
        let dbdd = Hints.Dbdd.create Sink.lwe_instance in
        Array.iteri
          (fun i r ->
            if i < Sink.lwe_instance.Hints.Lwe.m then
              Hints.Hint.apply dbdd (Hints.Hint.of_posterior ~coordinate:i r.Campaign.posterior_all))
          (Array.append results
             (Array.make (max 0 (Sink.lwe_instance.Hints.Lwe.m - Array.length results)) results.(0)));
        Hints.Dbdd.estimate_bikz dbdd
      end
      else Hints.Lwe.no_hint_bikz Sink.lwe_instance
    in
    { variant = name; sign_accuracy; value_accuracy; bikz_after_attack = bikz }
  in
  [
    run Riscv.Sampler_prog.Vulnerable "SEAL v3.2 (vulnerable)" true;
    run Riscv.Sampler_prog.Branchless "v3.6-style branchless" true;
    run Riscv.Sampler_prog.Shuffled "shuffled sampling order" false;
    run Riscv.Sampler_prog.Cdt_table "constant-time CDT sampler" true;
  ]

let defense_columns =
  [
    Report.scol ~heading:"  variant" ~key:"variant" ~fmt:"  %-26s" (fun r -> r.variant);
    Report.fcol ~heading:"sign%" ~key:"sign_accuracy" ~fmt:" %6.1f" (fun r -> r.sign_accuracy);
    Report.fcol ~heading:"value%" ~key:"value_accuracy" ~fmt:"   %6.1f" (fun r -> r.value_accuracy);
    Report.fcol ~heading:"residual bikz" ~key:"residual_bikz" ~fmt:"   %10.1f" (fun r -> r.bikz_after_attack);
  ]

let defenses_doc rows =
  Report.table ~title:"Countermeasure study (Section V-A):\n"
    ~header:"  variant                      sign%   value%   residual bikz\n"
    ~footer:
      "(shuffling voids the coordinate hints; the branchless sampler removes the control-flow\n\
      \ leak but its mask arithmetic still leaks data -> 'may have a different vulnerability';\n\
      \ the CDT sampler -- prior work's target [10][12] -- leaks less but is not leak-free)\n"
    defense_columns rows

let render_defenses rows = (defenses_doc rows).Report.text
let json_defenses rows = (defenses_doc rows).Report.json

(* --- ablations ----------------------------------------------------------------------- *)

type ablation_row = { label : string; sign_accuracy : float; value_accuracy : float }

let ablate_leakage config =
  List.map
    (fun (label, model) ->
      let rng = Mathkit.Prng.create ~seed:(Int64.add config.seed 53L) () in
      let synth = { Power.Synth.default with Power.Synth.model } in
      let _, results = small_campaign ~synth config rng in
      let sign_accuracy, value_accuracy = accuracies results in
      { label; sign_accuracy; value_accuracy })
    [
      ("HW + HD (default)", Power.Leakage.default);
      ("HW only", Power.Leakage.hw_only);
      ("HD only", Power.Leakage.hd_only);
    ]

let ablate_noise config =
  List.map
    (fun sigma ->
      let rng = Mathkit.Prng.create ~seed:(Int64.add config.seed 59L) () in
      let synth = { Power.Synth.default with Power.Synth.noise_sigma = sigma } in
      let _, results = small_campaign ~synth config rng in
      let sign_accuracy, value_accuracy = accuracies results in
      { label = Printf.sprintf "scope noise sigma = %.2f" sigma; sign_accuracy; value_accuracy })
    [ 0.05; 0.17; 0.35; 0.7; 1.4 ]

let ablate_poi config =
  List.map
    (fun poi_count ->
      let rng = Mathkit.Prng.create ~seed:(Int64.add config.seed 61L) () in
      let _, results = small_campaign ~poi_count config rng in
      let sign_accuracy, value_accuracy = accuracies results in
      { label = Printf.sprintf "%2d POIs per template" poi_count; sign_accuracy; value_accuracy })
    [ 4; 8; 16; 24; 32 ]

let ablate_timing config =
  let picorv32 = Riscv.Cpu.cycles_of_class in
  let uniform4 = fun (_ : Riscv.Inst.klass) -> 4 in
  let slow_div k = match k with Riscv.Inst.K_div -> 64 | other -> picorv32 other in
  let fast_div k = match k with Riscv.Inst.K_div -> 12 | other -> picorv32 other in
  List.map
    (fun (label, cycle_model) ->
      let rng = Mathkit.Prng.create ~seed:(Int64.add config.seed 73L) () in
      match small_campaign ~cycle_model ?synth:None config rng with
      | _, results ->
          let sign_accuracy, value_accuracy = accuracies results in
          { label; sign_accuracy; value_accuracy }
      | exception Failure _ ->
          (* segmentation collapsed: the peaks this timing model
             produces are too short/close for the default settings *)
          { label = label ^ " (segmentation failed)"; sign_accuracy = 0.0; value_accuracy = 0.0 })
    [
      ("PicoRV32 latencies (default)", picorv32);
      ("slow bit-serial divider (64)", slow_div);
      ("fast divider (12 cycles)", fast_div);
      ("uniform 4-cycle machine", uniform4);
    ]

let ablation_columns =
  [
    Report.scol ~heading:"  setting" ~key:"setting" ~fmt:"  %-28s" (fun r -> r.label);
    Report.fcol ~heading:"sign%" ~key:"sign_accuracy" ~fmt:" %6.1f" (fun r -> r.sign_accuracy);
    Report.fcol ~heading:"value%" ~key:"value_accuracy" ~fmt:"   %6.1f" (fun r -> r.value_accuracy);
  ]

let ablation_doc ~title rows =
  Report.table
    ~title:(Printf.sprintf "Ablation: %s\n" title)
    ~header:"  setting                        sign%   value%\n" ablation_columns rows

let render_ablation ~title rows = (ablation_doc ~title rows).Report.text
let json_ablation rows = Report.List (List.map (Report.row_json ablation_columns) rows)
