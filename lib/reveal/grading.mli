(** The grader stage: confidence gate, retry ladder, hint demotion.

    Under measurement faults a verdict can be garbage even when the
    classifier returns one.  Every attacked coefficient therefore
    carries a grade — the rung of the hint-degradation ladder it is
    still good for — and a recovery tag saying how it was obtained.
    Both attack entry points here are pure per-trace functions over
    {!Pipeline} stage instances; the campaign drivers fan them out. *)

type grade =
  | Confident  (** clean window, unambiguous match: full-strength hint *)
  | Tentative
      (** usable posterior but a repaired window or a soft match: the
          hint keeps its measured posterior variance *)
  | SignOnly  (** only the branch-region sign is trustworthy *)
  | Unknown  (** nothing usable — the window is noise *)

type recovery =
  | Clean  (** first measurement sufficed *)
  | Retried of int  (** usable after this many re-measurements *)
  | Unrecoverable
      (** still Unknown when the retry budget ran out — or no live
          device to re-measure on (archive replay) *)

type coefficient_result = {
  actual : int;
  verdict : Sca.Attack.verdict;
  posterior_all : (int * float) array;  (** unrestricted posterior, Table II *)
  grade : grade;
  recovery : recovery;
}

type gate = {
  confident_threshold : float;
      (** min peak of the joint Bayesian posterior for Confident (also
          requires a window segmentation did not have to repair); a
          point-mass posterior always scores 1.0 *)
  tentative_threshold : float;  (** min joint confidence for Tentative *)
  sign_only_threshold : float;  (** min sign confidence for SignOnly *)
  retry_budget : int;  (** re-measurements per trace, live campaigns only *)
}

val default_gate : gate
(** {!Constants.gate_confident_threshold} etc.: 0.85 / 0 / 0.5, retry
    budget 2.  With a zero tentative threshold, demotion below
    Tentative happens only on a goodness-of-fit failure — clean traces
    always fit, so the zero-fault pipeline is bit-identical to the
    ungated one. *)

type ctx
(** A classifier resolved together with its scratch state — the
    grader's per-worker working set.  One context serves any number of
    sequential classifications; it must not be shared across domains
    (each worker builds its own with {!make_ctx}). *)

val make_ctx : ?classifier:Pipeline.classifier -> Pipeline.profile -> ctx
(** Resolve [classifier] (default: the profile's template classifier)
    and allocate its scratch once.  The drivers call this once per
    worker domain so the per-window hot loop is allocation-free. *)

val classify_graded :
  ?classifier:Pipeline.classifier ->
  Pipeline.profile ->
  gate ->
  quality:Sca.Segment.quality ->
  Mathkit.Fvec.t ->
  Sca.Attack.verdict * (int * float) array * grade
(** Classify one window vector and grade it: goodness-of-fit floors
    first (they catch corruption a normalised posterior hides), then
    the joint-confidence thresholds.  [classifier] defaults to the
    profile's template classifier.  Builds a fresh {!ctx} per call —
    batch callers go through {!attack_strict}/{!attack_resilient},
    which reuse one. *)

val grade_counts : coefficient_result array -> int * int * int * int
(** (confident, tentative, sign-only, unknown). *)

val confident_mismatches : coefficient_result array -> int
(** Coefficients graded [Confident] whose recovered {e sign} is wrong
    — the failure mode the gate exists to prevent.  Sign rather than
    value: clean campaigns recover every sign but only a fraction of
    exact values, so sign correctness is the property a [Confident]
    grade actually vouches for.  Zero on every correctly-gated
    campaign; the triage fuzzer's misgrade verdict is this count being
    positive. *)

val hint_of_result : sigma:float -> coordinate:int -> coefficient_result -> Hints.Hint.t
(** The hint-degradation ladder: [Confident] integrates the measured
    posterior exactly as the clean pipeline does (near-point-mass
    posteriors become perfect hints), [Tentative] keeps the measured
    posterior but is barred from hardening into a perfect hint (a
    point-mass is floored at variance 0.25), [SignOnly] degrades to
    the half-Gaussian sign hint, [Unknown] contributes nothing. *)

val null_verdict : Sca.Attack.verdict
(** Placeholder verdict of an [Unrecoverable] coefficient. *)

val attack_strict :
  ?classifier:Pipeline.classifier ->
  ?ctx:ctx ->
  ?obs:Obs.Ctx.t ->
  Pipeline.profile ->
  samples:Mathkit.Fvec.t ->
  noises:int array ->
  (coefficient_result array, Pipeline.error) result
(** The classic pipeline on one trace: strict segmentation, default
    gate, no retries; every result is [Clean].  [ctx] reuses a
    prebuilt classifier context (it wins over [classifier]); without
    one, a fresh context is resolved per call.  With an enabled [obs]
    context the segmentation and classification run inside
    [stage.segment] / [stage.classify] spans, and per-window quality,
    grade, and fit-score/confidence distributions land in the metrics
    registry ([segment.windows_*], [grade.*], [classifier.*]). *)

val attack_resilient :
  ?gate:gate ->
  ?classifier:Pipeline.classifier ->
  ?ctx:ctx ->
  ?segmenter:Pipeline.segmenter ->
  ?retry:(int -> Mathkit.Fvec.t) ->
  ?obs:Obs.Ctx.t ->
  Pipeline.profile ->
  samples:Mathkit.Fvec.t ->
  noises:int array ->
  coefficient_result array
(** Fault-tolerant single-trace attack: resilient segmentation (the
    default [segmenter]), per-window confidence grading, and — when
    [retry] is provided — a bounded re-measurement loop.  [ctx] as in
    {!attack_strict}.
    [retry attempt] must return a fresh capture of the same
    coefficients; coefficients still Unknown after [gate.retry_budget]
    attempts (or with no [retry]) are marked [Unrecoverable].  A trace
    whose segmentation fails outright grades every coefficient Unknown
    and is retried whole.  On a clean trace the verdicts are
    bit-identical to {!attack_strict}.  With an enabled [obs] context,
    every segmentation/classification pass (retries included) is
    spanned and counted as in {!attack_strict}, each retry pass emits
    a [retry.attempt] event, and the ladder updates [retry.attempts],
    [retry.rescued] and the [retry.depth] histogram. *)
