type profile = {
  attack : Sca.Attack.t;
  window_length : int;
  segment : Sca.Segment.config;
  values : int array;
  sigma : float;
  sign_fit_floor : float;
  value_fit_floor : float;
}

type error =
  | Window_count of { expected : int; found : int }
  | Segmentation of Sca.Segment.segment_error
  | Corrupt_record of string
  | Io of string

let error_to_string = function
  | Window_count { expected; found } ->
      (* the historical message of the strict attack path — tests and
         scripts match on it *)
      Printf.sprintf "Campaign: segmentation found %d windows for %d coefficients" found expected
  | Segmentation e -> Sca.Segment.error_to_string e
  | Corrupt_record msg -> Printf.sprintf "corrupt record: %s" msg
  | Io msg -> msg

(* --- classifier stage ----------------------------------------------------- *)

type classifier = Classifier : (module Sca.Classifier.S with type t = 'c) * 'c -> classifier

let template_classifier attack = Classifier ((module Sca.Classifier.Template), attack)
let classifier_of_profile prof = template_classifier prof.attack
let classifier_name (Classifier ((module C), _)) = C.name

(* --- segmenter stage ------------------------------------------------------ *)

(* The firmware samples a trailing dummy coefficient, so a run over n
   coefficients produces n+1 bursts and we keep the first n windows. *)
let raw_windows segment ~count samples =
  let wins = Sca.Segment.windows_fv segment samples in
  if Array.length wins <> count + 1 then Error (Window_count { expected = count; found = Array.length wins })
  else Ok (Array.sub wins 0 count)

type segmented = { vectors : Mathkit.Fvec.t array; quality : Sca.Segment.quality array }

module type SEGMENTER = sig
  val name : string
  val segment : profile -> count:int -> Mathkit.Fvec.t -> (segmented, error) result
end

type segmenter = (module SEGMENTER)

module Strict_segmenter = struct
  let name = "strict"

  let segment prof ~count samples =
    match raw_windows prof.segment ~count samples with
    | Error _ as e -> e
    | Ok wins ->
        Ok
          {
            vectors = Sca.Segment.views samples wins ~length:prof.window_length;
            quality = Array.make count Sca.Segment.Clean;
          }
end

module Resilient_segmenter = struct
  let name = "resilient"

  let segment prof ~count samples =
    match Sca.Segment.segment_fv prof.segment ~expected:(count + 1) samples with
    | Error e -> Error (Segmentation e)
    | Ok seg ->
        let wins = Array.sub seg.Sca.Segment.wins 0 count in
        let quality = Array.sub seg.Sca.Segment.quality 0 count in
        Ok { vectors = Sca.Segment.views samples wins ~length:prof.window_length; quality }
end

let strict_segmenter : segmenter = (module Strict_segmenter)
let resilient_segmenter : segmenter = (module Resilient_segmenter)
let segmenter_name (module S : SEGMENTER) = S.name
let run_segmenter (module S : SEGMENTER) prof ~count samples = S.segment prof ~count samples

(* --- source stage --------------------------------------------------------- *)

type acquired = {
  samples : Mathkit.Fvec.t;
  noises : int array;
  remeasure : (int -> Mathkit.Fvec.t) option;
}

type item = { index : int; acquire : unit -> acquired }

module type SOURCE = sig
  type t

  val name : string
  val next : t -> [ `Item of item | `Skip of string | `End ]
  val close : t -> unit
end

type source = Source : (module SOURCE with type t = 's) * 's -> source

let source_name (Source ((module S), _)) = S.name
let next_item (Source ((module S), s)) = S.next s
let close_source (Source ((module S), s)) = S.close s

(* --- source instrumentation ------------------------------------------------ *)

(* Wrap a source so pulls update the obs registry and each item's
   [acquire] thunk runs inside a [stage.acquire] span.  The span fires
   on the worker domain that forces the thunk, which is exactly where
   the acquisition cost is paid.  A disabled context returns the
   source unchanged (physical equality — the no-op invariant the obs
   tests pin). *)
module Instrumented_source = struct
  type t = {
    inner : source;
    obs : Obs.Ctx.t;
    items : Obs.Metrics.counter;
    skips : Obs.Metrics.counter;
  }

  let name = "instrumented"

  let next s =
    match next_item s.inner with
    | `Item it ->
        Obs.Metrics.incr s.items;
        `Item { it with acquire = (fun () -> Obs.Ctx.span s.obs "stage.acquire" it.acquire) }
    | `Skip reason as ev ->
        Obs.Metrics.incr s.skips;
        Obs.Ctx.event ~level:Obs.Ctx.Warn
          ~attrs:[ ("reason", Obs.Json.String reason) ]
          s.obs "source.skip";
        ev
    | `End -> `End

  let close s = close_source s.inner
end

let instrument_source obs src =
  if not (Obs.Ctx.enabled obs) then src
  else
    Source
      ( (module Instrumented_source),
        {
          Instrumented_source.inner = src;
          obs;
          items = Obs.Ctx.counter obs "source.items";
          skips = Obs.Ctx.counter obs "source.skips";
        } )
