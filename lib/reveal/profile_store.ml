(* Versioned binary codec in the traceio format family: magic + u16
   version + one CRC-framed payload.  Version 1 was the Marshal-based
   cache; version 2 introduced this explicit encoding; version 3 added
   the calibrated goodness-of-fit floors, so stale caches are
   detected by their magic/version instead of crashing Marshal. *)

let put_template b (t : Sca.Template.t) =
  Traceio.Codec.put_ints b t.Sca.Template.labels;
  Traceio.Binio.put_varint b (Int64.of_int (Array.length t.Sca.Template.means));
  Array.iter (Traceio.Codec.put_floats b) t.Sca.Template.means;
  let cov = Mathkit.Matrix.to_arrays t.Sca.Template.inv_cov in
  Traceio.Binio.put_varint b (Int64.of_int (Array.length cov));
  Array.iter (Traceio.Codec.put_floats b) cov;
  Traceio.Binio.put_f64 b t.Sca.Template.log_det;
  Traceio.Codec.put_ints b t.Sca.Template.pois

let get_template ~path c =
  let labels = Traceio.Codec.get_ints c in
  let rows = Traceio.Binio.get_varint_int c in
  if rows <> Array.length labels then
    Traceio.Error.corruptf "%s: template has %d mean vectors for %d labels" path rows (Array.length labels);
  let means = Array.init rows (fun _ -> Traceio.Codec.get_floats c) in
  let d = Traceio.Binio.get_varint_int c in
  let cov = Array.init d (fun _ -> Traceio.Codec.get_floats c) in
  Array.iteri
    (fun i row ->
      if Array.length row <> d then
        Traceio.Error.corruptf "%s: covariance row %d has %d columns in a %dx%d matrix" path i (Array.length row) d d)
    cov;
  let log_det = Traceio.Binio.get_f64 c in
  let pois = Traceio.Codec.get_ints c in
  let inv_cov = Mathkit.Matrix.of_arrays cov in
  (* the flat scoring copy is derived, never serialized — the cache
     format is unchanged across the numeric-core refactor *)
  { Sca.Template.labels; means; inv_cov; inv_cov_fm = Mathkit.Fmat.of_matrix inv_cov; log_det; pois }

let put_threshold b = function
  | Sca.Segment.Auto -> Traceio.Binio.put_u8 b 0
  | Sca.Segment.Percentile p ->
      Traceio.Binio.put_u8 b 1;
      Traceio.Binio.put_f64 b p
  | Sca.Segment.Absolute a ->
      Traceio.Binio.put_u8 b 2;
      Traceio.Binio.put_f64 b a

let get_threshold ~path c =
  match Traceio.Binio.get_u8 c with
  | 0 -> Sca.Segment.Auto
  | 1 -> Sca.Segment.Percentile (Traceio.Binio.get_f64 c)
  | 2 -> Sca.Segment.Absolute (Traceio.Binio.get_f64 c)
  | t -> Traceio.Error.corruptf "%s: unknown segmentation-threshold tag %d" path t

let profile_payload (prof : Pipeline.profile) =
  let b = Buffer.create 65536 in
  put_threshold b prof.segment.Sca.Segment.threshold;
  Traceio.Binio.put_varint b (Int64.of_int prof.segment.Sca.Segment.smooth_radius);
  Traceio.Binio.put_varint b (Int64.of_int prof.segment.Sca.Segment.merge_gap);
  Traceio.Binio.put_varint b (Int64.of_int prof.segment.Sca.Segment.min_burst);
  Traceio.Binio.put_varint b (Int64.of_int prof.window_length);
  Traceio.Codec.put_ints b prof.values;
  Traceio.Binio.put_f64 b prof.sigma;
  Traceio.Binio.put_f64 b prof.sign_fit_floor;
  Traceio.Binio.put_f64 b prof.value_fit_floor;
  let a = prof.attack in
  put_template b a.Sca.Attack.sign_template;
  put_template b a.Sca.Attack.neg_template;
  put_template b a.Sca.Attack.pos_template;
  Traceio.Codec.put_floats b a.Sca.Attack.neg_priors;
  Traceio.Codec.put_floats b a.Sca.Attack.pos_priors;
  Traceio.Codec.put_floats b a.Sca.Attack.prior_of_sign;
  Traceio.Codec.put_ints b a.Sca.Attack.pois_sign;
  Traceio.Codec.put_ints b a.Sca.Attack.pois_neg;
  Traceio.Codec.put_ints b a.Sca.Attack.pois_pos;
  Buffer.contents b

let profile_of_payload ~path payload =
  let c = Traceio.Binio.cursor ~name:path payload in
  let threshold = get_threshold ~path c in
  let smooth_radius = Traceio.Binio.get_varint_int c in
  let merge_gap = Traceio.Binio.get_varint_int c in
  let min_burst = Traceio.Binio.get_varint_int c in
  let segment = { Sca.Segment.threshold; smooth_radius; merge_gap; min_burst } in
  let window_length = Traceio.Binio.get_varint_int c in
  let values = Traceio.Codec.get_ints c in
  let sigma = Traceio.Binio.get_f64 c in
  let sign_fit_floor = Traceio.Binio.get_f64 c in
  let value_fit_floor = Traceio.Binio.get_f64 c in
  let sign_template = get_template ~path c in
  let neg_template = get_template ~path c in
  let pos_template = get_template ~path c in
  let neg_priors = Traceio.Codec.get_floats c in
  let pos_priors = Traceio.Codec.get_floats c in
  let prior_of_sign = Traceio.Codec.get_floats c in
  let pois_sign = Traceio.Codec.get_ints c in
  let pois_neg = Traceio.Codec.get_ints c in
  let pois_pos = Traceio.Codec.get_ints c in
  Traceio.Binio.expect_end c;
  let attack =
    {
      Sca.Attack.sign_template;
      neg_template;
      pos_template;
      neg_priors;
      pos_priors;
      prior_of_sign;
      pois_sign;
      pois_neg;
      pois_pos;
    }
  in
  { Pipeline.attack; window_length; segment; values; sigma; sign_fit_floor; value_fit_floor }

let save path prof =
  let oc = Traceio.Error.open_out_bin path in
  Fun.protect
    ~finally:(fun () -> try close_out oc with Sys_error _ -> ())
    (fun () ->
      Traceio.Error.wrap_io path (fun () ->
          output_string oc Constants.profile_magic;
          output_string oc (String.init 2 (fun i -> Char.chr ((Constants.profile_version lsr (8 * i)) land 0xFF))));
      Traceio.Frame.write ~path oc (profile_payload prof))

let load path =
  let ic = Traceio.Error.open_in_bin path in
  Fun.protect
    ~finally:(fun () -> try close_in ic with Sys_error _ -> ())
    (fun () ->
      try
        let m = Traceio.Error.wrap_io path (fun () -> really_input_string ic (String.length Constants.profile_magic)) in
        if m = Constants.legacy_profile_magic_prefix then
          invalid_arg
            (Printf.sprintf
               "Campaign.load_profile: %s is a stale v1 (Marshal) profile cache — delete it and re-run profiling"
               path);
        if m <> Constants.profile_magic then
          invalid_arg (Printf.sprintf "Campaign.load_profile: %s is not a profile cache (bad magic)" path);
        let v = Traceio.Error.wrap_io path (fun () -> really_input_string ic 2) in
        let v = Char.code v.[0] lor (Char.code v.[1] lsl 8) in
        if v <> Constants.profile_version then
          invalid_arg
            (Printf.sprintf
               "Campaign.load_profile: %s has profile-cache version %d, this build reads version %d — re-run \
                profiling"
               path v Constants.profile_version);
        match Traceio.Frame.read ~path ic with
        | None -> invalid_arg (Printf.sprintf "Campaign.load_profile: %s: truncated profile cache" path)
        | Some payload -> profile_of_payload ~path payload
      with Traceio.Error.Corrupt msg -> invalid_arg (Printf.sprintf "Campaign.load_profile: corrupt cache: %s" msg))
