(** The sink stage: graded coefficient results into lattice hardness.

    Converts per-coefficient attack results into DBDD hints on the
    SEAL-128 instance ({!Constants.lwe_instance}) and integrates them
    into before/after block-size estimates — the quantity every table
    of the paper ultimately reports. *)

type security_report = {
  bikz_no_hints : float;
  bikz_with_hints : float;
  bits_no_hints : float;
  bits_with_hints : float;
  perfect_hints : int;
  approximate_hints : int;
}

val lwe_instance : Hints.Lwe.t
(** {!Constants.lwe_instance}. *)

val hints_of_results :
  Grading.coefficient_result array -> int -> (int -> Grading.coefficient_result -> Hints.Hint.t) -> Hints.Hint.t list
(** [hints_of_results results count mk] builds [count] hints, recycling
    the attacked coefficients modulo their number when the campaign was
    smaller than the instance (the per-coordinate hint quality is
    i.i.d., so this is an unbiased extrapolation).
    @raise Failure when [results] is empty. *)

val security_of_hints : ?obs:Obs.Ctx.t -> Hints.Hint.t list -> security_report
(** Fresh DBDD instance, estimate, apply all hints, estimate again.
    With an enabled [obs] context the integration runs inside a
    [sink.integrate] span, the per-kind hint totals land in
    [sink.hints_*] counters, and the before/after block sizes in
    [sink.bikz_no_hints] / [sink.bikz_with_hints] gauges — the final
    rungs of a campaign's run record. *)

val json_of_security : security_report -> Report.json
