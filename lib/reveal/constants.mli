(** Single source of truth for the pipeline's shared constants.

    Every value here used to be re-spelled at two or more places in
    the campaign and experiment monoliths; a drift between copies
    (e.g. a profile format version bumped in the writer but not the
    reader) is exactly the kind of bug a refactor must make
    impossible.  Nothing in this module may depend on any other
    [Reveal] module. *)

val default_values : int array
(** -14 .. 14, the range the paper observed over 220 000 draws. *)

val default_per_value : int
(** Profiling windows per candidate value (400). *)

val default_poi_count : int
(** POIs per value template (16). *)

val default_sign_poi_count : int
(** POIs for the sign template (6). *)

val default_batch : int
(** Archive records resident at a time while streaming (16). *)

val min_window_length : int
(** Shortest usable per-coefficient window; shorter means the
    segmentation is misconfigured. *)

(** {1 Profile cache format} *)

val profile_magic : string
val profile_version : int

val legacy_profile_magic_prefix : string
(** Prefix of the Marshal-era v1 cache, recognised only to produce a
    better error message. *)

(** {1 Profiling-archive metadata keys} *)

val meta_kind_key : string
val meta_threshold_key : string
val meta_values_key : string
val meta_per_value_key : string

(** {1 Confidence-gate defaults} *)

val gate_confident_threshold : float
val gate_tentative_threshold : float
val gate_sign_only_threshold : float
val gate_retry_budget : int

val retry_seed_salt : int64
(** Xored into a trace's scope seed to derive its re-measurement
    stream, keeping retries out of the primary randomness. *)

val lwe_instance : Hints.Lwe.t
(** SEAL-128 (q = 132120577, n = 1024, sigma = 3.2) — the instance all
    security estimates target. *)
