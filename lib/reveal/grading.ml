type grade = Confident | Tentative | SignOnly | Unknown
type recovery = Clean | Retried of int | Unrecoverable

type coefficient_result = {
  actual : int;
  verdict : Sca.Attack.verdict;
  posterior_all : (int * float) array;
  grade : grade;
  recovery : recovery;
}

type gate = {
  confident_threshold : float;
  tentative_threshold : float;
  sign_only_threshold : float;
  retry_budget : int;
}

let default_gate =
  {
    confident_threshold = Constants.gate_confident_threshold;
    tentative_threshold = Constants.gate_tentative_threshold;
    sign_only_threshold = Constants.gate_sign_only_threshold;
    retry_budget = Constants.gate_retry_budget;
  }

(* Grading is goodness-of-fit first, posterior confidence second.  A
   posterior normalises the absolute likelihood away, so a corrupted
   window often looks MORE confident than an honest one (one garbage
   class is merely the least garbage).  The absolute best-class log
   density has no such failure mode: honest attack windows land in the
   band the profiling windows calibrated, faulted ones fall off a
   quadratic cliff.  Only windows that fit are allowed to carry value
   information; only then does the joint confidence (sign-match peak
   times value-posterior peak, both flat-prior) pick the rung. *)
let classify_graded ?classifier prof gate ~quality window =
  let (Pipeline.Classifier ((module C), cls)) =
    match classifier with Some c -> c | None -> Pipeline.classifier_of_profile prof
  in
  let sign_conf = C.sign_confidence cls window in
  let verdict = C.classify cls window in
  let posterior_all = C.posterior_all cls window in
  (* Peak of the joint Bayesian posterior.  Crucially, a point-mass
     posterior (the one that would become a perfect hint) always scores
     1.0 here, so on a clean window it always clears the Confident
     threshold — the Tentative perfect-hint demotion provably cannot
     change a clean-trace hint. *)
  let conf = Array.fold_left (fun acc (_, p) -> Float.max acc p) 0.0 posterior_all in
  let grade =
    if C.sign_fit cls window < prof.Pipeline.sign_fit_floor then
      (* not even the branch region looks like any class: the window is
         noise and nothing in it can be trusted *)
      Unknown
    else if C.value_fit cls ~sign:verdict.Sca.Attack.sign window < prof.Pipeline.value_fit_floor then
      if sign_conf >= gate.sign_only_threshold then SignOnly else Unknown
    else if conf >= gate.confident_threshold && quality <> Sca.Segment.Resynced then
      (* a window that segmentation had to repair can never be Confident:
         a confidently-wrong verdict would enter the lattice as a perfect
         hint and poison the whole estimate.  Suspect (a length outlier)
         does not bar Confident: burst length varies legitimately with
         the coefficient value, so rare large-magnitude values trip the
         MAD check on perfectly clean traces — corruption is what the
         fit floors detect. *)
      Confident
    else if conf >= gate.tentative_threshold then Tentative
    else if sign_conf >= gate.sign_only_threshold then SignOnly
    else Unknown
  in
  (verdict, posterior_all, grade)

let grade_counts results =
  let c = ref 0 and t = ref 0 and s = ref 0 and u = ref 0 in
  Array.iter
    (fun r ->
      match r.grade with
      | Confident -> incr c
      | Tentative -> incr t
      | SignOnly -> incr s
      | Unknown -> incr u)
    results;
  (!c, !t, !s, !u)

let hint_of_result ~sigma ~coordinate r =
  match r.grade with
  | Confident -> Hints.Hint.of_posterior ~coordinate r.posterior_all
  | Tentative -> (
      (* keep the measured posterior, but never let a Tentative verdict
         harden into a perfect hint: a point-mass posterior on a window
         the gate would not call Confident (repaired segmentation, soft
         sign match) is exactly the confidently-wrong case *)
      let h = Hints.Hint.of_posterior ~coordinate r.posterior_all in
      match h.Hints.Hint.kind with
      | Hints.Hint.Perfect v ->
          {
            h with
            Hints.Hint.kind = Hints.Hint.Approximate { mean = float_of_int v; variance = 0.25; confidence = 1.0 };
          }
      | _ -> h)
  | SignOnly -> Hints.Hint.sign_hint ~sigma ~coordinate r.verdict.Sca.Attack.sign
  | Unknown -> { Hints.Hint.coordinate; kind = Hints.Hint.None_useful }

let null_verdict = { Sca.Attack.sign = 0; value = 0; posterior = [| (0, 1.0) |] }

(* --- strict (classic) attack ---------------------------------------------- *)

let attack_strict ?classifier prof ~samples ~noises =
  let count = Array.length noises in
  match Pipeline.run_segmenter Pipeline.strict_segmenter prof ~count samples with
  | Error _ as e -> e
  | Ok seg ->
      Ok
        (Array.mapi
           (fun i window ->
             let verdict, posterior_all, grade =
               classify_graded ?classifier prof default_gate ~quality:seg.Pipeline.quality.(i) window
             in
             { actual = noises.(i); verdict; posterior_all; grade; recovery = Clean })
           seg.Pipeline.vectors)

(* --- fault-tolerant attack ------------------------------------------------- *)

(* Resilient segmentation of one trace: exactly count+1 windows (the
   firmware's trailing dummy included) or a typed error, with the
   per-window quality feeding the grade gate. *)
let graded_windows ?classifier ?(segmenter = Pipeline.resilient_segmenter) prof gate ~count samples =
  match Pipeline.run_segmenter segmenter prof ~count samples with
  | Error e -> Error e
  | Ok { Pipeline.vectors; quality } ->
      Ok (Array.init count (fun i -> classify_graded ?classifier prof gate ~quality:quality.(i) vectors.(i)))

let attack_resilient ?(gate = default_gate) ?classifier ?segmenter ?retry prof ~samples ~noises =
  let count = Array.length noises in
  let results =
    Array.init count (fun i ->
        {
          actual = noises.(i);
          verdict = null_verdict;
          posterior_all = [| (0, 1.0) |];
          grade = Unknown;
          recovery = Unrecoverable;
        })
  in
  let pending = ref [] in
  (match graded_windows ?classifier ?segmenter prof gate ~count samples with
  | Ok graded ->
      Array.iteri
        (fun i (verdict, posterior_all, grade) ->
          results.(i) <-
            {
              actual = noises.(i);
              verdict;
              posterior_all;
              grade;
              recovery = (if grade = Unknown then Unrecoverable else Clean);
            };
          if grade = Unknown then pending := i :: !pending)
        graded
  | Error _ -> pending := List.init count Fun.id);
  (match retry with
  | Some remeasure ->
      let attempt = ref 1 in
      while !pending <> [] && !attempt <= gate.retry_budget do
        (match graded_windows ?classifier ?segmenter prof gate ~count (remeasure !attempt) with
        | Ok graded ->
            pending :=
              List.filter
                (fun i ->
                  let verdict, posterior_all, grade = graded.(i) in
                  if grade = Unknown then true
                  else begin
                    results.(i) <-
                      { actual = noises.(i); verdict; posterior_all; grade; recovery = Retried !attempt };
                    false
                  end)
                !pending
        | Error _ -> ());
        incr attempt
      done
  | None -> ());
  results
