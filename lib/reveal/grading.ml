type grade = Confident | Tentative | SignOnly | Unknown
type recovery = Clean | Retried of int | Unrecoverable

type coefficient_result = {
  actual : int;
  verdict : Sca.Attack.verdict;
  posterior_all : (int * float) array;
  grade : grade;
  recovery : recovery;
}

type gate = {
  confident_threshold : float;
  tentative_threshold : float;
  sign_only_threshold : float;
  retry_budget : int;
}

let default_gate =
  {
    confident_threshold = Constants.gate_confident_threshold;
    tentative_threshold = Constants.gate_tentative_threshold;
    sign_only_threshold = Constants.gate_sign_only_threshold;
    retry_budget = Constants.gate_retry_budget;
  }

(* --- instrumentation ------------------------------------------------------- *)

(* Per-trace observability handles, resolved once per attack call (the
   registry lookup locks) and then bumped per window.  [None] on the
   uninstrumented path keeps the hot loop to one match. *)
type instruments = {
  c_quality_clean : Obs.Metrics.counter;
  c_quality_resynced : Obs.Metrics.counter;
  c_quality_suspect : Obs.Metrics.counter;
  c_confident : Obs.Metrics.counter;
  c_tentative : Obs.Metrics.counter;
  c_sign_only : Obs.Metrics.counter;
  c_unknown : Obs.Metrics.counter;
  h_sign_fit : Obs.Metrics.histogram;
  h_value_fit : Obs.Metrics.histogram;
  h_confidence : Obs.Metrics.histogram;
  c_retry_attempts : Obs.Metrics.counter;
  c_retry_rescued : Obs.Metrics.counter;
  h_retry_depth : Obs.Metrics.histogram;
}

(* fit scores are best-class log densities: near zero for in-band
   windows, falling off a quadratic cliff when faulted *)
let fit_buckets = [| -1e4; -3e3; -1e3; -300.; -100.; -30.; -10.; 0.; 10.; 100. |]
let confidence_buckets = [| 0.1; 0.25; 0.5; 0.75; 0.9; 0.95; 0.99; 1.0 |]
let retry_depth_buckets = [| 1.; 2.; 3.; 4.; 5. |]

let instruments obs =
  if not (Obs.Ctx.enabled obs) then None
  else
    Some
      {
        c_quality_clean = Obs.Ctx.counter obs "segment.windows_clean";
        c_quality_resynced = Obs.Ctx.counter obs "segment.windows_resynced";
        c_quality_suspect = Obs.Ctx.counter obs "segment.windows_suspect";
        c_confident = Obs.Ctx.counter obs "grade.confident";
        c_tentative = Obs.Ctx.counter obs "grade.tentative";
        c_sign_only = Obs.Ctx.counter obs "grade.sign_only";
        c_unknown = Obs.Ctx.counter obs "grade.unknown";
        h_sign_fit = Obs.Ctx.histogram ~buckets:fit_buckets obs "classifier.sign_fit";
        h_value_fit = Obs.Ctx.histogram ~buckets:fit_buckets obs "classifier.value_fit";
        h_confidence = Obs.Ctx.histogram ~buckets:confidence_buckets obs "classifier.confidence";
        c_retry_attempts = Obs.Ctx.counter obs "retry.attempts";
        c_retry_rescued = Obs.Ctx.counter obs "retry.rescued";
        h_retry_depth = Obs.Ctx.histogram ~buckets:retry_depth_buckets obs "retry.depth";
      }

let count_quality insts quality =
  match insts with
  | None -> ()
  | Some i ->
      Obs.Metrics.incr
        (match quality with
        | Sca.Segment.Clean -> i.c_quality_clean
        | Sca.Segment.Resynced -> i.c_quality_resynced
        | Sca.Segment.Suspect -> i.c_quality_suspect)

let count_grade insts grade =
  match insts with
  | None -> ()
  | Some i ->
      Obs.Metrics.incr
        (match grade with
        | Confident -> i.c_confident
        | Tentative -> i.c_tentative
        | SignOnly -> i.c_sign_only
        | Unknown -> i.c_unknown)

(* --- classifier context ---------------------------------------------------- *)

(* A classifier packed together with its scratch state.  The scratch
   existential is hidden here rather than in [Pipeline.classifier] so
   the stage contract stays a pure value; the grader, which owns the
   hot loop, resolves a context once per trace (or once per worker
   domain) and threads it through every window. *)
type ctx = Ctx : (module Sca.Classifier.S with type t = 'c and type scratch = 's) * 'c * 's -> ctx

let make_ctx ?classifier prof =
  let (Pipeline.Classifier ((module C), cls)) =
    match classifier with Some c -> c | None -> Pipeline.classifier_of_profile prof
  in
  Ctx ((module C), cls, C.make_scratch cls)

(* Grading is goodness-of-fit first, posterior confidence second.  A
   posterior normalises the absolute likelihood away, so a corrupted
   window often looks MORE confident than an honest one (one garbage
   class is merely the least garbage).  The absolute best-class log
   density has no such failure mode: honest attack windows land in the
   band the profiling windows calibrated, faulted ones fall off a
   quadratic cliff.  Only windows that fit are allowed to carry value
   information; only then does the joint confidence (sign-match peak
   times value-posterior peak, both flat-prior) pick the rung. *)
let classify_graded_i ~ctx ~insts prof gate ~quality window =
  let (Ctx ((module C), cls, scratch)) = ctx in
  (* One fused scoring pass: [grade] returns every quantity the gate
     consumes, bit-identical to the five single-purpose calls it
     replaces (the classifier contract) — each template is scored once
     instead of several times per window. *)
  let g = C.grade cls scratch window in
  let sign_conf = g.Sca.Attack.g_sign_confidence in
  let verdict = g.Sca.Attack.g_verdict in
  let posterior_all = g.Sca.Attack.g_posterior_all in
  (* Peak of the joint Bayesian posterior.  Crucially, a point-mass
     posterior (the one that would become a perfect hint) always scores
     1.0 here, so on a clean window it always clears the Confident
     threshold — the Tentative perfect-hint demotion provably cannot
     change a clean-trace hint. *)
  let conf = Array.fold_left (fun acc (_, p) -> Float.max acc p) 0.0 posterior_all in
  let sign_fit = g.Sca.Attack.g_sign_fit in
  let grade =
    if sign_fit < prof.Pipeline.sign_fit_floor then
      (* not even the branch region looks like any class: the window is
         noise and nothing in it can be trusted *)
      Unknown
    else begin
      let value_fit = g.Sca.Attack.g_value_fit in
      (match insts with Some i -> Obs.Metrics.observe i.h_value_fit value_fit | None -> ());
      if value_fit < prof.Pipeline.value_fit_floor then
        if sign_conf >= gate.sign_only_threshold then SignOnly else Unknown
      else if conf >= gate.confident_threshold && quality <> Sca.Segment.Resynced then
        (* a window that segmentation had to repair can never be Confident:
           a confidently-wrong verdict would enter the lattice as a perfect
           hint and poison the whole estimate.  Suspect (a length outlier)
           does not bar Confident: burst length varies legitimately with
           the coefficient value, so rare large-magnitude values trip the
           MAD check on perfectly clean traces — corruption is what the
           fit floors detect. *)
        Confident
      else if conf >= gate.tentative_threshold then Tentative
      else if sign_conf >= gate.sign_only_threshold then SignOnly
      else Unknown
    end
  in
  (match insts with
  | None -> ()
  | Some i ->
      Obs.Metrics.observe i.h_sign_fit sign_fit;
      Obs.Metrics.observe i.h_confidence conf);
  count_quality insts quality;
  count_grade insts grade;
  (verdict, posterior_all, grade)

let classify_graded ?classifier prof gate ~quality window =
  classify_graded_i ~ctx:(make_ctx ?classifier prof) ~insts:None prof gate ~quality window

let grade_counts results =
  let c = ref 0 and t = ref 0 and s = ref 0 and u = ref 0 in
  Array.iter
    (fun r ->
      match r.grade with
      | Confident -> incr c
      | Tentative -> incr t
      | SignOnly -> incr s
      | Unknown -> incr u)
    results;
  (!c, !t, !s, !u)

(* Coefficients the gate vouched for whose recovered sign is wrong —
   the one outcome the grading ladder exists to prevent.  Sign, not
   value: the attack's clean-run guarantee is perfect sign recovery
   (Table IV), while exact values are only partially recoverable even
   on an honest device, so a confidently-wrong value is expected and a
   confidently-wrong sign never is.  The triage fuzzer's misgrade
   verdict is exactly this count being nonzero. *)
let confident_mismatches results =
  Array.fold_left
    (fun acc r ->
      if r.grade = Confident && r.verdict.Sca.Attack.sign <> compare r.actual 0 then acc + 1 else acc)
    0 results

let hint_of_result ~sigma ~coordinate r =
  match r.grade with
  | Confident -> Hints.Hint.of_posterior ~coordinate r.posterior_all
  | Tentative -> (
      (* keep the measured posterior, but never let a Tentative verdict
         harden into a perfect hint: a point-mass posterior on a window
         the gate would not call Confident (repaired segmentation, soft
         sign match) is exactly the confidently-wrong case *)
      let h = Hints.Hint.of_posterior ~coordinate r.posterior_all in
      match h.Hints.Hint.kind with
      | Hints.Hint.Perfect v ->
          {
            h with
            Hints.Hint.kind = Hints.Hint.Approximate { mean = float_of_int v; variance = 0.25; confidence = 1.0 };
          }
      | _ -> h)
  | SignOnly -> Hints.Hint.sign_hint ~sigma ~coordinate r.verdict.Sca.Attack.sign
  | Unknown -> { Hints.Hint.coordinate; kind = Hints.Hint.None_useful }

let null_verdict = { Sca.Attack.sign = 0; value = 0; posterior = [| (0, 1.0) |] }

(* --- strict (classic) attack ---------------------------------------------- *)

let attack_strict ?classifier ?ctx ?(obs = Obs.Ctx.disabled) prof ~samples ~noises =
  let insts = instruments obs in
  let ctx = match ctx with Some c -> c | None -> make_ctx ?classifier prof in
  let count = Array.length noises in
  match
    Obs.Ctx.span obs "stage.segment" (fun () ->
        Pipeline.run_segmenter Pipeline.strict_segmenter prof ~count samples)
  with
  | Error _ as e -> e
  | Ok seg ->
      Ok
        (Obs.Ctx.span obs "stage.classify" (fun () ->
             Array.mapi
               (fun i window ->
                 let verdict, posterior_all, grade =
                   classify_graded_i ~ctx ~insts prof default_gate
                     ~quality:seg.Pipeline.quality.(i) window
                 in
                 { actual = noises.(i); verdict; posterior_all; grade; recovery = Clean })
               seg.Pipeline.vectors))

(* --- fault-tolerant attack ------------------------------------------------- *)

(* Resilient segmentation of one trace: exactly count+1 windows (the
   firmware's trailing dummy included) or a typed error, with the
   per-window quality feeding the grade gate. *)
let graded_windows ~ctx ?(segmenter = Pipeline.resilient_segmenter) ~obs ~insts prof gate
    ~count samples =
  match
    Obs.Ctx.span obs "stage.segment" (fun () -> Pipeline.run_segmenter segmenter prof ~count samples)
  with
  | Error e -> Error e
  | Ok { Pipeline.vectors; quality } ->
      Ok
        (Obs.Ctx.span obs "stage.classify" (fun () ->
             Array.init count (fun i ->
                 classify_graded_i ~ctx ~insts prof gate ~quality:quality.(i) vectors.(i))))

let attack_resilient ?(gate = default_gate) ?classifier ?ctx ?segmenter ?retry
    ?(obs = Obs.Ctx.disabled) prof ~samples ~noises =
  let insts = instruments obs in
  let ctx = match ctx with Some c -> c | None -> make_ctx ?classifier prof in
  let count = Array.length noises in
  let results =
    Array.init count (fun i ->
        {
          actual = noises.(i);
          verdict = null_verdict;
          posterior_all = [| (0, 1.0) |];
          grade = Unknown;
          recovery = Unrecoverable;
        })
  in
  let pending = ref [] in
  (match graded_windows ~ctx ?segmenter ~obs ~insts prof gate ~count samples with
  | Ok graded ->
      Array.iteri
        (fun i (verdict, posterior_all, grade) ->
          results.(i) <-
            {
              actual = noises.(i);
              verdict;
              posterior_all;
              grade;
              recovery = (if grade = Unknown then Unrecoverable else Clean);
            };
          if grade = Unknown then pending := i :: !pending)
        graded
  | Error _ -> pending := List.init count Fun.id);
  (match retry with
  | Some remeasure ->
      let attempt = ref 1 in
      while !pending <> [] && !attempt <= gate.retry_budget do
        (match insts with
        | Some ins -> Obs.Metrics.incr ins.c_retry_attempts
        | None -> ());
        if Obs.Ctx.enabled obs then
          Obs.Ctx.event
            ~attrs:
              [ ("attempt", Obs.Json.Int !attempt); ("pending", Obs.Json.Int (List.length !pending)) ]
            obs "retry.attempt";
        (match graded_windows ~ctx ?segmenter ~obs ~insts prof gate ~count (remeasure !attempt) with
        | Ok graded ->
            pending :=
              List.filter
                (fun idx ->
                  let verdict, posterior_all, grade = graded.(idx) in
                  if grade = Unknown then true
                  else begin
                    results.(idx) <-
                      { actual = noises.(idx); verdict; posterior_all; grade; recovery = Retried !attempt };
                    (match insts with
                    | Some ins ->
                        Obs.Metrics.incr ins.c_retry_rescued;
                        Obs.Metrics.observe ins.h_retry_depth (float_of_int !attempt)
                    | None -> ());
                    false
                  end)
                !pending
        | Error _ -> ());
        incr attempt
      done
  | None -> ());
  results
