(* (label, full window) pairs of one run — the per-chunk unit both the
   in-memory and the archive-streamed profiling paths produce. *)
let labelled_windows segment ~samples ~noises =
  let wins =
    match Pipeline.raw_windows segment ~count:(Array.length noises) (Mathkit.Fvec.of_array samples) with
    | Ok wins -> wins
    | Error e -> failwith (Pipeline.error_to_string e)
  in
  Array.mapi
    (fun i w -> (noises.(i), Array.sub samples w.Sca.Segment.start (w.Sca.Segment.stop - w.Sca.Segment.start)))
    wins

(* Calibrate an absolute burst threshold once so that profiling and
   attack traces segment identically. *)
let calibrate_threshold device rng =
  let run = Device.run_gaussian device ~scope_rng:rng ~sampler_rng:rng in
  Sca.Segment.auto_threshold Sca.Segment.default run.Device.trace.Power.Ptrace.samples

let segment_of_threshold threshold =
  { Sca.Segment.default with Sca.Segment.threshold = Sca.Segment.Absolute threshold }

let profiling_shape ~values ~per_value device =
  if per_value < 2 then invalid_arg "Campaign.profile: need at least 2 traces per value";
  let n = Device.n device in
  let value_count = Array.length values in
  if n < 2 * value_count then invalid_arg "Campaign.profile: device too small to profile every value per run";
  let copies = n / value_count in
  let runs = (per_value + copies - 1) / copies in
  (copies, runs)

(* One profiling run forces every candidate value into several
   shuffled positions of one honest-length sampling, so templates see
   the value at arbitrary indices with arbitrary neighbours — exactly
   the conditions of the attacked trace.  Runs carry their own seeds,
   so neither the domain count nor record/replay can change the
   results. *)
let profiling_run device ~values ~copies seed =
  let rng = Mathkit.Prng.create ~seed () in
  let n = Device.n device in
  let forced = Array.concat (List.init copies (fun _ -> Array.copy values)) in
  let honest, _ =
    Riscv.Sampler_prog.draws_of_gaussian rng Mathkit.Gaussian.seal_default ~count:(n - Array.length forced)
  in
  let draws = Array.append (Array.map (fun v -> Device.profiling_draw device rng ~value:v) forced) honest in
  Mathkit.Prng.shuffle rng draws;
  Device.run device ~scope_rng:rng ~draws

(* Per-value window bags, filled incrementally so the archive path can
   stream chunk by chunk. *)
let make_bags values =
  let bags = Hashtbl.create (Array.length values) in
  Array.iter (fun v -> Hashtbl.replace bags v []) values;
  bags

let add_labelled bags labelled =
  Array.iter
    (fun (v, w) ->
      match Hashtbl.find_opt bags v with
      | Some lst -> Hashtbl.replace bags v (w :: lst)
      | None -> ())
    labelled

let finalize_bags values bags =
  (* Walk the bags in the caller's value order, not hash order, so any
     failure (and the class layout) is reproducible run to run. *)
  let bag v = Option.value ~default:[] (Hashtbl.find_opt bags v) in
  let total = Array.fold_left (fun acc v -> acc + List.length (bag v)) 0 values in
  if total = 0 then failwith "Campaign.profile: no profiling windows collected";
  (* Common window length: the shortest observed window. *)
  let window_length =
    Array.fold_left (fun acc v -> List.fold_left (fun acc w -> min acc (Array.length w)) acc (bag v)) max_int values
  in
  if window_length < Constants.min_window_length then
    failwith "Campaign.profile: windows too short — segmentation is misconfigured";
  let classes =
    Array.to_list values
    |> List.map (fun v ->
           let ws = Hashtbl.find bags v in
           (v, Array.of_list (List.map (fun w -> Array.sub w 0 window_length) ws)))
  in
  (window_length, classes)

let profiling_windows ?(values = Constants.default_values) ?(per_value = Constants.default_per_value) ?domains
    ?(obs = Obs.Ctx.disabled) device rng =
  let copies, runs = profiling_shape ~values ~per_value device in
  let threshold = Obs.Ctx.span obs "profiling.calibrate" (fun () -> calibrate_threshold device rng) in
  let segment = segment_of_threshold threshold in
  let seeds = Array.init runs (fun _ -> Mathkit.Prng.bits64 rng) in
  let one_run seed =
    let run = profiling_run device ~values ~copies seed in
    labelled_windows segment ~samples:run.Device.trace.Power.Ptrace.samples ~noises:run.Device.noises
  in
  let per_run =
    Obs.Ctx.span obs "profiling.acquire" (fun () -> Mathkit.Parallel.map_array ?domains one_run seeds)
  in
  let bags = make_bags values in
  Array.iter (add_labelled bags) per_run;
  let window_length, classes = finalize_bags values bags in
  if Obs.Ctx.enabled obs then begin
    Obs.Metrics.incr ~by:runs (Obs.Ctx.counter obs "profiling.runs");
    Obs.Metrics.incr
      ~by:(List.fold_left (fun acc (_, rows) -> acc + Array.length rows) 0 classes)
      (Obs.Ctx.counter obs "profiling.windows");
    Obs.Metrics.set (Obs.Ctx.gauge obs "profiling.window_length") (float_of_int window_length)
  end;
  (segment, window_length, classes)

(* Floor below the profiling population: mirror the lower half of the
   distribution below its minimum and leave 30 nats of slack.  Honest
   attack windows (same distribution) essentially never fall under it;
   faulted windows overshoot it by orders of magnitude because the
   Gaussian exponent is quadratic in the corruption. *)
let fit_floor fits =
  let mn = Array.fold_left Float.min infinity fits in
  let p50 = Mathkit.Stats.percentile fits 50.0 in
  mn -. (p50 -. mn) -. 30.0

let profile_of_windows ~poi_count ~sign_poi_count (segment, window_length, classes) =
  let values = Array.of_list (List.map fst classes) in
  let sigma = Mathkit.Gaussian.seal_default.Mathkit.Gaussian.sigma in
  let attack = Sca.Attack.build ~poi_count ~sign_poi_count ~sigma classes in
  (* Calibrate the goodness-of-fit floors on the profiling windows
     themselves — the reference for "what an honest window looks like".
     One scratch and one window buffer serve the whole sweep. *)
  let scratch = Sca.Attack.make_scratch attack in
  let wv = Mathkit.Fvec.create window_length in
  let sign_fits = ref [] and value_fits = ref [] in
  List.iter
    (fun (label, rows) ->
      let sign = Sca.Attack.sign_of_label label in
      Array.iter
        (fun w ->
          Mathkit.Fvec.blit_from_array w wv;
          sign_fits := Sca.Attack.sign_fit_fv attack scratch wv :: !sign_fits;
          if sign <> 0 then value_fits := Sca.Attack.value_fit_fv attack scratch ~sign wv :: !value_fits)
        rows)
    classes;
  let sign_fit_floor = fit_floor (Array.of_list !sign_fits) in
  let value_fit_floor = fit_floor (Array.of_list !value_fits) in
  { Pipeline.attack; window_length; segment; values; sigma; sign_fit_floor; value_fit_floor }

(* Shared by the live and archive paths: fit templates inside a
   [profiling.build] span and export the calibrated floors as gauges. *)
let build_profile ~obs ~poi_count ~sign_poi_count windows =
  let prof =
    Obs.Ctx.span obs "profiling.build" (fun () -> profile_of_windows ~poi_count ~sign_poi_count windows)
  in
  if Obs.Ctx.enabled obs then begin
    Obs.Metrics.set (Obs.Ctx.gauge obs "profiling.sign_fit_floor") prof.Pipeline.sign_fit_floor;
    Obs.Metrics.set (Obs.Ctx.gauge obs "profiling.value_fit_floor") prof.Pipeline.value_fit_floor
  end;
  prof

let profile ?values ?per_value ?domains ?(obs = Obs.Ctx.disabled) ?(poi_count = Constants.default_poi_count)
    ?(sign_poi_count = Constants.default_sign_poi_count) device rng =
  build_profile ~obs ~poi_count ~sign_poi_count (profiling_windows ?values ?per_value ?domains ~obs device rng)

(* --- profiling campaigns on disk ----------------------------------------- *)

let record_profiling ?(values = Constants.default_values) ?(per_value = Constants.default_per_value) ?(seed = 0L)
    ?(obs = Obs.Ctx.disabled) device rng ~path =
  let copies, runs = profiling_shape ~values ~per_value device in
  let threshold = Obs.Ctx.span obs "profiling.calibrate" (fun () -> calibrate_threshold device rng) in
  let seeds = Array.init runs (fun _ -> Mathkit.Prng.bits64 rng) in
  let meta =
    [
      (Constants.meta_kind_key, "profiling");
      (Constants.meta_threshold_key, Printf.sprintf "%Lx" (Int64.bits_of_float threshold));
      (Constants.meta_values_key, String.concat "," (List.map string_of_int (Array.to_list values)));
      (Constants.meta_per_value_key, string_of_int per_value);
    ]
  in
  let writer = Device.open_recorder ~obs ~meta device ~path ~seed in
  Fun.protect
    ~finally:(fun () -> Traceio.Archive.close_writer writer)
    (fun () ->
      Obs.Ctx.span obs "profiling.record" (fun () ->
          Array.iter (fun seed -> Device.record_run writer (profiling_run device ~values ~copies seed)) seeds))

let profiling_meta_of_header ~path (h : Traceio.Archive.header) =
  let require key =
    match Traceio.Archive.meta_find h key with
    | Some v -> v
    | None ->
        Traceio.Error.corruptf "%s: not a profiling archive (missing %S metadata) — record it with record_profiling"
          path key
  in
  let threshold =
    let s = require Constants.meta_threshold_key in
    match Int64.of_string_opt ("0x" ^ s) with
    | Some bits -> Int64.float_of_bits bits
    | None -> Traceio.Error.corruptf "%s: unreadable calibration threshold %S" path s
  in
  let values =
    let s = require Constants.meta_values_key in
    let parts = String.split_on_char ',' s in
    match
      List.map int_of_string_opt parts
      |> List.fold_left (fun acc v -> match (acc, v) with Some l, Some x -> Some (x :: l) | _ -> None) (Some [])
    with
    | Some l -> Array.of_list (List.rev l)
    | None -> Traceio.Error.corruptf "%s: unreadable candidate-value list %S" path s
  in
  if Array.length values = 0 then Traceio.Error.corruptf "%s: empty candidate-value list" path;
  (threshold, values)

(* Stream the labelled profiling windows out of an archive: one batch
   of records resident at a time, segmentation parallelised over the
   batch.  Memory is bounded by [batch] traces plus the (much smaller)
   accumulated windows, never the whole trace set. *)
let profiling_windows_of_archive ?domains ?(batch = Constants.default_batch) ?(obs = Obs.Ctx.disabled) path =
  if batch <= 0 then invalid_arg "Campaign.profiling_windows_of_archive: batch must be positive";
  Obs.Ctx.span obs "profiling.stream" @@ fun () ->
  Traceio.Archive.with_reader ~obs path (fun reader ->
      let h = Traceio.Archive.header reader in
      let threshold, values = profiling_meta_of_header ~path h in
      let segment = segment_of_threshold threshold in
      let bags = make_bags values in
      let rec loop () =
        let records = Traceio.Archive.next_batch reader ~max:batch in
        if Array.length records > 0 then begin
          let labelled =
            Mathkit.Parallel.map_array ?domains
              (fun (r : Traceio.Archive.record) ->
                labelled_windows segment ~samples:r.Traceio.Archive.trace.Power.Ptrace.samples
                  ~noises:r.Traceio.Archive.noises)
              records
          in
          Array.iter (add_labelled bags) labelled;
          loop ()
        end
      in
      loop ();
      let window_length, classes = finalize_bags values bags in
      (segment, window_length, classes))

let profile_of_archive ?domains ?batch ?(obs = Obs.Ctx.disabled) ?(poi_count = Constants.default_poi_count)
    ?(sign_poi_count = Constants.default_sign_poi_count) path =
  build_profile ~obs ~poi_count ~sign_poi_count (profiling_windows_of_archive ?domains ?batch ~obs path)
