(* Flat row-major Float64 matrices over the Fvec buffer type: the
   dense-kernel companion to Fvec, used where Matrix's boxed
   float-array-of-rows layout costs a pointer chase per row.  The
   quadratic form replicates Matrix.mul_vec/Matrix.dot accumulation
   order exactly, so switching a scoring path to Fmat is bit-invisible. *)

type t = { data : Fvec.buffer; m_rows : int; m_cols : int }

let rows t = t.m_rows
let cols t = t.m_cols

let create rows cols =
  if rows < 0 || cols < 0 then invalid_arg "Fmat.create: negative dimension";
  let data = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout (rows * cols) in
  Bigarray.Array1.fill data 0.0;
  { data; m_rows = rows; m_cols = cols }

let get t i j =
  if i < 0 || i >= t.m_rows || j < 0 || j >= t.m_cols then invalid_arg "Fmat.get: index out of bounds";
  Fvec.uget t.data ((i * t.m_cols) + j)

let set t i j v =
  if i < 0 || i >= t.m_rows || j < 0 || j >= t.m_cols then invalid_arg "Fmat.set: index out of bounds";
  Fvec.uset t.data ((i * t.m_cols) + j) v

let of_matrix m =
  let r = Matrix.rows m and c = Matrix.cols m in
  let t = create r c in
  for i = 0 to r - 1 do
    for j = 0 to c - 1 do
      Fvec.uset t.data ((i * c) + j) (Matrix.get m i j)
    done
  done;
  t

let to_matrix t =
  let m = Matrix.create t.m_rows t.m_cols in
  for i = 0 to t.m_rows - 1 do
    for j = 0 to t.m_cols - 1 do
      Matrix.set m i j (Fvec.uget t.data ((i * t.m_cols) + j))
    done
  done;
  m

(* out <- t * v, each out_i accumulated j-ascending like Matrix.mul_vec. *)
let mul_vec_into t v ~out =
  if Fvec.length v <> t.m_cols then invalid_arg "Fmat.mul_vec_into: dimension mismatch";
  if Fvec.length out <> t.m_rows then invalid_arg "Fmat.mul_vec_into: output dimension mismatch";
  let vbuf = Fvec.buffer v and voff = Fvec.offset v and vstr = Fvec.stride v in
  for i = 0 to t.m_rows - 1 do
    let acc = ref 0.0 in
    let base = i * t.m_cols in
    let vi = ref voff in
    for j = 0 to t.m_cols - 1 do
      acc := !acc +. (Fvec.uget t.data (base + j) *. Fvec.uget vbuf !vi);
      vi := !vi + vstr
    done;
    Fvec.set out i !acc
  done

(* d^T t d, fused but in the exact accumulation order of
   [Matrix.dot d (Matrix.mul_vec t d)]: row sums j-ascending, outer
   product i-ascending.  This is the Mahalanobis inner loop. *)
let quadratic_form t d =
  if t.m_rows <> t.m_cols then invalid_arg "Fmat.quadratic_form: matrix not square";
  if Fvec.length d <> t.m_cols then invalid_arg "Fmat.quadratic_form: dimension mismatch";
  let dbuf = Fvec.buffer d and doff = Fvec.offset d and dstr = Fvec.stride d in
  Fvec.check_range dbuf ~off:doff ~stride:dstr ~len:(Fvec.length d) "Fmat.quadratic_form";
  let n = t.m_cols in
  let total = ref 0.0 in
  if dstr = 1 then
    (* Contiguous [d] — the scoring scratch always is: same loops with
       the stride walk folded into the induction variable. *)
    for i = 0 to n - 1 do
      let acc = ref 0.0 in
      let base = i * n in
      for j = 0 to n - 1 do
        (* srclint: allow unsafe-index both ranges validated by the dimension checks and check_range above *)
        acc := !acc +. (Bigarray.Array1.unsafe_get t.data (base + j) *. Bigarray.Array1.unsafe_get dbuf (doff + j))
      done;
      (* srclint: allow unsafe-index i stays inside the range validated above *)
      total := !total +. (Bigarray.Array1.unsafe_get dbuf (doff + i) *. !acc)
    done
  else begin
    let di = ref doff in
    for i = 0 to n - 1 do
      let acc = ref 0.0 in
      let base = i * n in
      let dj = ref doff in
      for j = 0 to n - 1 do
        (* srclint: allow unsafe-index both ranges validated by the dimension checks and check_range above *)
        acc := !acc +. (Bigarray.Array1.unsafe_get t.data (base + j) *. Bigarray.Array1.unsafe_get dbuf !dj);
        dj := !dj + dstr
      done;
      (* srclint: allow unsafe-index di stays inside the range validated above *)
      total := !total +. (Bigarray.Array1.unsafe_get dbuf !di *. !acc);
      di := !di + dstr
    done
  end;
  !total
