(** Deterministic fork/join parallelism over OCaml 5 domains.

    The campaign code parallelises embarrassingly-parallel trace
    acquisition.  Determinism is preserved by construction: work items
    carry their own seeds, results are returned in index order, and
    the decomposition does not depend on the domain count. *)

val map_array : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map_array ~domains f xs] is [Array.map f xs], with the items
    processed by up to [domains] worker domains (default: the
    recommended domain count, capped at 8).  [f] must not share
    mutable state across items.  Exceptions raised by [f] are
    re-raised in the caller. *)

val map_array_with : ?domains:int -> scratch:(unit -> 's) -> ('s -> 'a -> 'b) -> 'a array -> 'b array
(** [map_array] with per-domain scratch: every worker domain calls
    [scratch ()] exactly once and passes the value to [f] for each
    item it processes.  Use for reusable buffers (Fvec arenas,
    classifier scratch) that must not be shared across domains. *)

val init : ?domains:int -> int -> (int -> 'a) -> 'a array
(** Parallel [Array.init]. *)

val recommended_domains : unit -> int
