(** Bigarray-backed float vectors with strided views — the unboxed
    numeric substrate of the attack's hot path.

    A {!t} is a (possibly strided) view into a [Float64] [c_layout]
    buffer.  Views alias: [sub]/[strided] never copy, and a write
    through one view is visible through every other view of the same
    buffer.  Kernels validate bounds once up front and run unchecked
    inner loops; setting [REVEAL_FVEC_BOUNDS=1] in the environment
    restores per-access bounds checks for debugging.

    Kernel arithmetic (fold direction, two-pass variance, strict
    argmax, NaN behaviour) matches the historical [float array]
    implementations in {!Stats} and {!Matrix} bit for bit. *)

type buffer = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type t

(** Whether [REVEAL_FVEC_BOUNDS] re-enabled per-access checks. *)
val bounds_checked : bool

(** Raw buffer access for sibling kernel modules (see {!Fmat}):
    unchecked unless [bounds_checked]. *)
val uget : buffer -> int -> float

val uset : buffer -> int -> float -> unit

(** [check_range b ~off ~stride ~len name] validates the whole strided
    index range against [b] — a no-op unless [bounds_checked].  Hot
    kernels (here and in sibling modules) call it once up front and
    then apply the Bigarray primitives directly, because without
    flambda a per-element [uget] call cannot inline across modules and
    boxes every float it returns. *)
val check_range : buffer -> off:int -> stride:int -> len:int -> string -> unit

(** [buffer]/[offset]/[stride] expose the view layout so sibling
    kernels can run their own validated raw loops. *)
val buffer : t -> buffer

val offset : t -> int
val stride : t -> int
val length : t -> int

(** Fresh zero-filled contiguous vector. *)
val create : int -> t

val get : t -> int -> float
val set : t -> int -> float -> unit
val init : int -> (int -> float) -> t
val of_array : float array -> t
val to_array : t -> float array

(** [blit_from_array xs t] overwrites [t] (same length) with [xs]. *)
val blit_from_array : float array -> t -> unit

val fill : t -> float -> unit
val blit : src:t -> dst:t -> unit
val copy : t -> t

(** [sub t pos len]: aliasing view of [t.(pos .. pos+len-1)]. *)
val sub : t -> int -> int -> t

(** [strided t ~pos ~len ~stride]: aliasing view of every [stride]-th
    element starting at [pos]; strides compose multiplicatively. *)
val strided : t -> pos:int -> len:int -> stride:int -> t

val iteri : (int -> float -> unit) -> t -> unit
val sum : t -> float
val mean : t -> float
val variance : t -> float
val dot : t -> t -> float

(** [axpy a ~x ~y]: [y <- y + a*x], elementwise, in place. *)
val axpy : float -> x:t -> y:t -> unit

val sqdist : t -> t -> float
val argmax : t -> int
val argmin : t -> int
val minimum : t -> float
val maximum : t -> float

val minmax : t -> float * float
(** [(minimum t, maximum t)] in one traversal — both components are
    bit-identical to the separate calls. *)

val histogram : bins:int -> lo:float -> hi:float -> t -> int array

(** Explicit-capacity bump arenas for per-domain scratch.  A stage
    sizes its arena once from profile constants, carves persistent
    views with {!Scratch.alloc}, and reuses them for every window —
    allocation-free after setup.  Overflow raises; arenas never grow.
    One arena per domain: the views alias one buffer, so sharing an
    arena across domains is a data race. *)
module Scratch : sig
  type vec = t
  type t

  val create : int -> t
  val capacity : t -> int
  val used : t -> int

  (** Forget every allocation (views stay valid as raw aliases but
      must no longer be used); subsequent [alloc]s reuse the space. *)
  val reset : t -> unit

  (** Carve an uninitialised (last-use contents) contiguous view. *)
  val alloc : t -> int -> vec
end
