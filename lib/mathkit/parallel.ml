let recommended_domains () = min 8 (max 1 (Domain.recommended_domain_count () - 1))

(* One work-stealing pass shared by both entry points: every worker
   owns one [scratch ()] value for its whole lifetime, so per-item
   buffers (Fvec arenas, classifier scratch) are allocated once per
   domain instead of once per item — and are never shared across
   domains, which would race. *)
let map_array_with ?domains ~scratch f xs =
  let n = Array.length xs in
  let workers = max 1 (min (Option.value domains ~default:(recommended_domains ())) n) in
  if n = 0 then [||]
  else if workers = 1 then begin
    let s = scratch () in
    Array.map (f s) xs
  end
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let failure = Atomic.make None in
    let worker () =
      let s = scratch () in
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n || Atomic.get failure <> None then continue := false
        else begin
          match f s xs.(i) with
          | v -> results.(i) <- Some v
          | exception e -> Atomic.set failure (Some e)
        end
      done
    in
    let handles = Array.init (workers - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join handles;
    (match Atomic.get failure with Some e -> raise e | None -> ());
    Array.map (function Some v -> v | None -> assert false) results
  end

let map_array ?domains f xs = map_array_with ?domains ~scratch:(fun () -> ()) (fun () x -> f x) xs

let init ?domains n f = map_array ?domains f (Array.init n (fun i -> i))
