(* Bigarray-backed float vectors: the unboxed numeric substrate of the
   attack's hot path.  A [t] is a strided view into a Float64 c_layout
   buffer, so window extraction and POI gathering can alias one trace
   buffer instead of copying per window.

   Every kernel validates its bounds once up front and then runs an
   unchecked inner loop; REVEAL_FVEC_BOUNDS=1 turns the unchecked
   accesses back into checked ones for debugging.  Kernel arithmetic
   (accumulation order, two-pass variance, strict argmax) mirrors the
   historical float-array implementations in Stats/Matrix bit for bit
   — the equivalence properties in test_mathkit pin this. *)

type buffer = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = { buf : buffer; off : int; len : int; stride : int }

(* Debug bounds checking for the unchecked kernel loops.  Read once at
   start-up: flipping it mid-run could change code paths between the
   profiling and attack halves of one campaign. *)
let bounds_checked =
  match Sys.getenv_opt "REVEAL_FVEC_BOUNDS" with Some ("1" | "true" | "yes") -> true | _ -> false

let uget (b : buffer) i =
  if bounds_checked then Bigarray.Array1.get b i
  else Bigarray.Array1.unsafe_get b i (* srclint: allow unsafe-index kernel loops validate bounds up front; REVEAL_FVEC_BOUNDS=1 re-enables checks *)

let uset (b : buffer) i v =
  if bounds_checked then Bigarray.Array1.set b i v
  else Bigarray.Array1.unsafe_set b i v (* srclint: allow unsafe-index kernel loops validate bounds up front; REVEAL_FVEC_BOUNDS=1 re-enables checks *)

(* Up-front range validation for kernels that run raw unchecked loops
   over a strided view.  Without flambda a per-element [uget] call
   cannot inline across modules (and boxes its float result), so the
   hot loops apply the Bigarray primitives directly and call this once
   before entering: a no-op normally, a full range check of the view
   against the buffer under REVEAL_FVEC_BOUNDS=1. *)
let check_range (b : buffer) ~off ~stride ~len name =
  if bounds_checked && len > 0 then begin
    let last = off + ((len - 1) * stride) in
    let lo = min off last and hi = max off last in
    if lo < 0 || hi >= Bigarray.Array1.dim b then
      invalid_arg (name ^ ": view range escapes the buffer (REVEAL_FVEC_BOUNDS)")
  end

let length t = t.len
let buffer t = t.buf
let offset t = t.off
let stride t = t.stride

let create n =
  if n < 0 then invalid_arg "Fvec.create: negative length";
  let buf = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n in
  Bigarray.Array1.fill buf 0.0;
  { buf; off = 0; len = n; stride = 1 }

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Fvec.get: index out of bounds";
  uget t.buf (t.off + (i * t.stride))

let set t i v =
  if i < 0 || i >= t.len then invalid_arg "Fvec.set: index out of bounds";
  uset t.buf (t.off + (i * t.stride)) v

(* The kernels below run raw Bigarray primitives after one up-front
   [check_range]: a per-element [uget] is a real call without flambda
   (boxing every float it returns), which tripled the hot-path cost
   when these loops first went through it. *)

let init n f =
  let t = create n in
  for i = 0 to n - 1 do
    (* srclint: allow unsafe-index i is bounded by the fresh buffer's length *)
    Bigarray.Array1.unsafe_set t.buf i (f i)
  done;
  t

let of_array xs =
  let n = Array.length xs in
  let t = create n in
  for i = 0 to n - 1 do
    (* srclint: allow unsafe-index i is bounded by the array length just read *)
    Bigarray.Array1.unsafe_set t.buf i (Array.unsafe_get xs i)
  done;
  t

let to_array t =
  check_range t.buf ~off:t.off ~stride:t.stride ~len:t.len "Fvec.to_array";
  let out = Array.make t.len 0.0 in
  let idx = ref t.off in
  for i = 0 to t.len - 1 do
    (* srclint: allow unsafe-index idx walks the view range check_range'd above, i the fresh array *)
    Array.unsafe_set out i (Bigarray.Array1.unsafe_get t.buf !idx);
    idx := !idx + t.stride
  done;
  out

let blit_from_array xs t =
  if Array.length xs <> t.len then invalid_arg "Fvec.blit_from_array: length mismatch";
  check_range t.buf ~off:t.off ~stride:t.stride ~len:t.len "Fvec.blit_from_array";
  let idx = ref t.off in
  for i = 0 to t.len - 1 do
    (* srclint: allow unsafe-index i is bounded by the length equality just checked *)
    Bigarray.Array1.unsafe_set t.buf !idx (Array.unsafe_get xs i);
    idx := !idx + t.stride
  done

let fill t v =
  check_range t.buf ~off:t.off ~stride:t.stride ~len:t.len "Fvec.fill";
  let idx = ref t.off in
  for _ = 1 to t.len do
    (* srclint: allow unsafe-index idx walks the view range check_range'd above *)
    Bigarray.Array1.unsafe_set t.buf !idx v;
    idx := !idx + t.stride
  done

let blit ~src ~dst =
  if src.len <> dst.len then invalid_arg "Fvec.blit: length mismatch";
  check_range src.buf ~off:src.off ~stride:src.stride ~len:src.len "Fvec.blit";
  check_range dst.buf ~off:dst.off ~stride:dst.stride ~len:dst.len "Fvec.blit";
  let is = ref src.off and id = ref dst.off in
  for _ = 1 to src.len do
    (* srclint: allow unsafe-index both view ranges check_range'd above *)
    Bigarray.Array1.unsafe_set dst.buf !id (Bigarray.Array1.unsafe_get src.buf !is);
    is := !is + src.stride;
    id := !id + dst.stride
  done

let copy t =
  let out = create t.len in
  blit ~src:t ~dst:out;
  out

(* Views share the underlying buffer: no copy, writes are visible to
   every alias.  [sub] keeps the parent's stride; [strided] composes. *)
let sub t pos len =
  if pos < 0 || len < 0 || pos + len > t.len then invalid_arg "Fvec.sub: view out of bounds";
  { t with off = t.off + (pos * t.stride); len }

let strided t ~pos ~len ~stride =
  if stride <= 0 then invalid_arg "Fvec.strided: stride must be positive";
  if pos < 0 || len < 0 || (len > 0 && pos + ((len - 1) * stride) >= t.len) then
    invalid_arg "Fvec.strided: view out of bounds";
  { buf = t.buf; off = t.off + (pos * t.stride); len; stride = t.stride * stride }

(* --- kernels -------------------------------------------------------------- *)

let iteri f t =
  check_range t.buf ~off:t.off ~stride:t.stride ~len:t.len "Fvec.iteri";
  let idx = ref t.off in
  for i = 0 to t.len - 1 do
    (* srclint: allow unsafe-index idx walks the view range check_range'd above *)
    f i (Bigarray.Array1.unsafe_get t.buf !idx);
    idx := !idx + t.stride
  done

(* Ascending left fold, exactly [Array.fold_left ( +. ) 0.0]. *)
let sum t =
  check_range t.buf ~off:t.off ~stride:t.stride ~len:t.len "Fvec.sum";
  let acc = ref 0.0 in
  let idx = ref t.off in
  for _ = 1 to t.len do
    (* srclint: allow unsafe-index idx walks the view range check_range'd above *)
    acc := !acc +. Bigarray.Array1.unsafe_get t.buf !idx;
    idx := !idx + t.stride
  done;
  !acc

let mean t =
  if t.len = 0 then invalid_arg "Fvec.mean: empty";
  sum t /. float_of_int t.len

(* Two-pass sample variance, mirroring Stats.variance_a. *)
let variance t =
  if t.len < 2 then 0.0
  else begin
    let m = mean t in
    let acc = ref 0.0 in
    let idx = ref t.off in
    for _ = 1 to t.len do
      (* srclint: allow unsafe-index idx walks the view range check_range'd inside sum *)
      let d = Bigarray.Array1.unsafe_get t.buf !idx -. m in
      acc := !acc +. (d *. d);
      idx := !idx + t.stride
    done;
    !acc /. float_of_int (t.len - 1)
  end

let dot a b =
  if a.len <> b.len then invalid_arg "Fvec.dot: length mismatch";
  check_range a.buf ~off:a.off ~stride:a.stride ~len:a.len "Fvec.dot";
  check_range b.buf ~off:b.off ~stride:b.stride ~len:b.len "Fvec.dot";
  let acc = ref 0.0 in
  let ia = ref a.off and ib = ref b.off in
  for _ = 1 to a.len do
    (* srclint: allow unsafe-index both view ranges check_range'd above *)
    acc := !acc +. (Bigarray.Array1.unsafe_get a.buf !ia *. Bigarray.Array1.unsafe_get b.buf !ib);
    ia := !ia + a.stride;
    ib := !ib + b.stride
  done;
  !acc

(* y <- y + a*x *)
let axpy a ~x ~y =
  if x.len <> y.len then invalid_arg "Fvec.axpy: length mismatch";
  check_range x.buf ~off:x.off ~stride:x.stride ~len:x.len "Fvec.axpy";
  check_range y.buf ~off:y.off ~stride:y.stride ~len:y.len "Fvec.axpy";
  let ix = ref x.off and iy = ref y.off in
  for _ = 1 to x.len do
    (* srclint: allow unsafe-index both view ranges check_range'd above *)
    let xv = Bigarray.Array1.unsafe_get x.buf !ix in
    (* srclint: allow unsafe-index both view ranges check_range'd above *)
    Bigarray.Array1.unsafe_set y.buf !iy (Bigarray.Array1.unsafe_get y.buf !iy +. (a *. xv));
    ix := !ix + x.stride;
    iy := !iy + y.stride
  done

let sqdist a b =
  if a.len <> b.len then invalid_arg "Fvec.sqdist: length mismatch";
  check_range a.buf ~off:a.off ~stride:a.stride ~len:a.len "Fvec.sqdist";
  check_range b.buf ~off:b.off ~stride:b.stride ~len:b.len "Fvec.sqdist";
  let acc = ref 0.0 in
  let ia = ref a.off and ib = ref b.off in
  for _ = 1 to a.len do
    (* srclint: allow unsafe-index both view ranges check_range'd above *)
    let d = Bigarray.Array1.unsafe_get a.buf !ia -. Bigarray.Array1.unsafe_get b.buf !ib in
    acc := !acc +. (d *. d);
    ia := !ia + a.stride;
    ib := !ib + b.stride
  done;
  !acc

(* Strictly-greater first-winner scan, mirroring Stats.argmax. *)
let argmax t =
  if t.len = 0 then invalid_arg "Fvec.argmax: empty";
  check_range t.buf ~off:t.off ~stride:t.stride ~len:t.len "Fvec.argmax";
  (* srclint: allow unsafe-index the view range is check_range'd above *)
  let best = ref 0 and best_v = ref (Bigarray.Array1.unsafe_get t.buf t.off) in
  let idx = ref (t.off + t.stride) in
  for i = 1 to t.len - 1 do
    (* srclint: allow unsafe-index idx walks the view range check_range'd above *)
    let v = Bigarray.Array1.unsafe_get t.buf !idx in
    if v > !best_v then begin
      best := i;
      best_v := v
    end;
    idx := !idx + t.stride
  done;
  !best

let argmin t =
  if t.len = 0 then invalid_arg "Fvec.argmin: empty";
  check_range t.buf ~off:t.off ~stride:t.stride ~len:t.len "Fvec.argmin";
  (* srclint: allow unsafe-index the view range is check_range'd above *)
  let best = ref 0 and best_v = ref (Bigarray.Array1.unsafe_get t.buf t.off) in
  let idx = ref (t.off + t.stride) in
  for i = 1 to t.len - 1 do
    (* srclint: allow unsafe-index idx walks the view range check_range'd above *)
    let v = Bigarray.Array1.unsafe_get t.buf !idx in
    if v < !best_v then begin
      best := i;
      best_v := v
    end;
    idx := !idx + t.stride
  done;
  !best

(* Float.min/Float.max folds seeded with the first element, exactly
   [Array.fold_left Float.min xs.(0) xs] (NaN-propagating). *)
let minimum t =
  if t.len = 0 then invalid_arg "Fvec.minimum: empty";
  check_range t.buf ~off:t.off ~stride:t.stride ~len:t.len "Fvec.minimum";
  (* srclint: allow unsafe-index the view range is check_range'd above *)
  let acc = ref (Bigarray.Array1.unsafe_get t.buf t.off) in
  let idx = ref t.off in
  for _ = 1 to t.len do
    (* srclint: allow unsafe-index idx walks the view range check_range'd above *)
    acc := Float.min !acc (Bigarray.Array1.unsafe_get t.buf !idx);
    idx := !idx + t.stride
  done;
  !acc

let maximum t =
  if t.len = 0 then invalid_arg "Fvec.maximum: empty";
  check_range t.buf ~off:t.off ~stride:t.stride ~len:t.len "Fvec.maximum";
  (* srclint: allow unsafe-index the view range is check_range'd above *)
  let acc = ref (Bigarray.Array1.unsafe_get t.buf t.off) in
  let idx = ref t.off in
  for _ = 1 to t.len do
    (* srclint: allow unsafe-index idx walks the view range check_range'd above *)
    acc := Float.max !acc (Bigarray.Array1.unsafe_get t.buf !idx);
    idx := !idx + t.stride
  done;
  !acc

(* [minimum] and [maximum] in one traversal.  Each accumulator runs
   the exact Float.min / Float.max chain of the single-purpose kernel
   over the same element order, so both components are bit-identical
   to the separate calls — the fusion only saves a pass (Otsu's
   thresholding wants both ends of the range).

   A strict [<] / [>] settles the common case without the Float.min /
   Float.max calls (their sign_bit test goes through Int64 boxing);
   elements that compare neither above nor below an accumulator — a
   NaN, or an exact tie where +0.0 / -0.0 could pick a different
   bit pattern — fall back to the real Float.min / Float.max, so every
   accumulator still holds exactly the value the plain fold would. *)
let minmax t =
  if t.len = 0 then invalid_arg "Fvec.minmax: empty";
  check_range t.buf ~off:t.off ~stride:t.stride ~len:t.len "Fvec.minmax";
  (* srclint: allow unsafe-index the view range is check_range'd above *)
  let first = Bigarray.Array1.unsafe_get t.buf t.off in
  let mn = ref first and mx = ref first in
  let idx = ref t.off in
  for _ = 1 to t.len do
    (* srclint: allow unsafe-index idx walks the view range check_range'd above *)
    let v = Bigarray.Array1.unsafe_get t.buf !idx in
    if v < !mn then mn := v else if not (v > !mn) then mn := Float.min !mn v;
    if v > !mx then mx := v else if not (v < !mx) then mx := Float.max !mx v;
    idx := !idx + t.stride
  done;
  (!mn, !mx)

(* Mirrors Stats.histogram: same binning arithmetic, same clamping.
   [float_of_int bins] and [hi -. lo] are loop-invariant, and the
   clamp is explicit int branches rather than the polymorphic
   [min]/[max] (a caml_compare call per sample) — same bins. *)
let histogram ~bins ~lo ~hi t =
  if bins <= 0 || hi <= lo then invalid_arg "Fvec.histogram";
  check_range t.buf ~off:t.off ~stride:t.stride ~len:t.len "Fvec.histogram";
  let h = Array.make bins 0 in
  let fbins = float_of_int bins and range = hi -. lo and top = bins - 1 in
  let idx = ref t.off in
  for _ = 1 to t.len do
    (* srclint: allow unsafe-index idx walks the view range check_range'd above *)
    let x = Bigarray.Array1.unsafe_get t.buf !idx in
    if x >= lo && x < hi then begin
      let b = int_of_float (fbins *. (x -. lo) /. range) in
      let b = if b < 0 then 0 else if b > top then top else b in
      h.(b) <- h.(b) + 1
    end;
    idx := !idx + t.stride
  done;
  h

(* --- explicit-capacity scratch arenas ------------------------------------- *)

(* A bump allocator over one buffer: a stage sizes its scratch once
   (the sizes are all profile-derived constants), carves persistent
   views out of it, and reuses them for every window of every trace.
   Overflow is a programming error and raises — the arena never grows,
   so a domain's scratch footprint is exact and allocation-free after
   setup.  Arenas are single-owner: share one per domain, never across
   domains. *)
module Scratch = struct
  type vec = t

  type t = { sbuf : buffer; capacity : int; mutable used : int }

  let create capacity =
    if capacity < 0 then invalid_arg "Fvec.Scratch.create: negative capacity";
    let sbuf = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout capacity in
    Bigarray.Array1.fill sbuf 0.0;
    { sbuf; capacity; used = 0 }

  let capacity s = s.capacity
  let used s = s.used
  let reset s = s.used <- 0

  let alloc s n : vec =
    if n < 0 then invalid_arg "Fvec.Scratch.alloc: negative length";
    if s.used + n > s.capacity then
      invalid_arg
        (Printf.sprintf "Fvec.Scratch.alloc: %d floats requested but only %d of %d remain" n
           (s.capacity - s.used) s.capacity);
    let off = s.used in
    s.used <- s.used + n;
    { buf = s.sbuf; off; len = n; stride = 1 }
end
