(** Flat row-major Float64 matrices: the dense-kernel companion to
    {!Fvec}, replacing {!Matrix}'s array-of-rows layout (one pointer
    chase per row) on scoring hot paths.  Conversion preserves values
    exactly, and {!quadratic_form} replicates the accumulation order
    of [Matrix.dot d (Matrix.mul_vec m d)] bit for bit. *)

type t

val rows : t -> int
val cols : t -> int

(** Fresh zero-filled matrix. *)
val create : int -> int -> t

val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit
val of_matrix : Matrix.t -> t
val to_matrix : t -> Matrix.t

(** [mul_vec_into t v ~out]: [out <- t*v]; each row accumulated
    j-ascending exactly like [Matrix.mul_vec]. *)
val mul_vec_into : t -> Fvec.t -> out:Fvec.t -> unit

(** [quadratic_form t d = d^T t d], fused, in the exact accumulation
    order of [Matrix.dot d (Matrix.mul_vec t d)] — the Mahalanobis
    inner loop. *)
val quadratic_form : t -> Fvec.t -> float
