(** Control-flow graph recovery for assembled RV32IM programs.

    The graph is rebuilt from the encoded words alone (no label or
    listing information), so the analyzer sees exactly what the device
    fetches.  Exploration starts at the program origin and follows
    direct branches, [jal] calls (the fall-through address becomes a
    call-return site) and [jalr x0, ra, 0] returns (resolved
    context-insensitively to every discovered call-return site).  Any
    other [jalr] is an indirect jump: it is conservatively assumed to
    target any label of the program plus any already-discovered block
    leader.  Words never reached this way — data, padding after a halt
    — are not decoded at all, so embedded data cannot crash the
    analyzer.  An illegal word that {e is} reachable terminates its
    block like a fetch fault (treated as {!Halt}). *)

type terminator =
  | Fallthrough  (** next block starts at the following address *)
  | Branch of { taken : int; not_taken : int }
  | Jump of int  (** jal x0 *)
  | Call of { target : int; return : int }  (** jal rd<>x0 *)
  | Return  (** jalr x0, ra, 0 *)
  | Indirect  (** any other jalr *)
  | Halt  (** ebreak / ecall, or a reachable illegal word *)

type block = {
  start : int;
  insts : (int * Riscv.Inst.t) array;  (** (address, instruction), in order *)
  term : terminator;
  succs : int list;  (** successor block starts, deduplicated *)
}

type t

val build : Riscv.Asm.program -> t
val entry : t -> int
val blocks : t -> block list
(** Reachable blocks in ascending address order. *)

val block : t -> int -> block
(** @raise Not_found when the address is not a reachable block start. *)

val back_edges : t -> (int * int) list
(** [(src, dst)] block-start pairs closing a loop (DFS back edges). *)

val call_returns : t -> int list
val has_indirect : t -> bool
