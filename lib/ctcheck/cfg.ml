type terminator =
  | Fallthrough
  | Branch of { taken : int; not_taken : int }
  | Jump of int
  | Call of { target : int; return : int }
  | Return
  | Indirect
  | Halt

type block = { start : int; insts : (int * Riscv.Inst.t) array; term : terminator; succs : int list }

type t = {
  entry : int;
  blocks : block list;
  table : (int, block) Hashtbl.t;
  back_edges : (int * int) list;
  call_returns : int list;
  has_indirect : bool;
}

let entry t = t.entry
let blocks t = t.blocks
let block t a = match Hashtbl.find_opt t.table a with Some b -> b | None -> raise Not_found
let back_edges t = t.back_edges
let call_returns t = t.call_returns
let has_indirect t = t.has_indirect

(* [jalr x0, ra, 0] is the canonical return; everything else indirect. *)
let is_ret = function Riscv.Inst.Jalr (0, rs1, 0) -> rs1 = Riscv.Inst.ra | _ -> false

let build (p : Riscv.Asm.program) =
  let origin = p.Riscv.Asm.origin in
  let limit = origin + (4 * Array.length p.Riscv.Asm.words) in
  let in_range a = a >= origin && a < limit && a land 3 = 0 in
  let decode a =
    match Riscv.Codec.decode p.Riscv.Asm.words.((a - origin) / 4) with
    | i -> Some i
    | exception Riscv.Codec.Illegal _ -> None
  in
  let visited = Hashtbl.create 256 in
  let leaders = Hashtbl.create 64 in
  let call_returns = ref [] in
  let has_indirect = ref false in
  let q = Queue.create () in
  let mark_leader a = if in_range a then Hashtbl.replace leaders a () in
  let push a = if in_range a && not (Hashtbl.mem visited a) then Queue.add a q in
  let note_call_return a =
    if not (List.mem a !call_returns) then call_returns := a :: !call_returns;
    mark_leader a;
    push a
  in
  (* Conservative targets of an indirect jump: the program's labels.
     Label addresses come from the assembler's symbol table, which is
     the only place plausible computed-goto targets can originate. *)
  let open_indirect_targets () =
    if not !has_indirect then begin
      has_indirect := true;
      List.iter
        (fun (_, a) ->
          mark_leader a;
          push a)
        p.Riscv.Asm.labels
    end
  in
  mark_leader origin;
  push origin;
  while not (Queue.is_empty q) do
    let pc = Queue.pop q in
    if not (Hashtbl.mem visited pc) then begin
      Hashtbl.add visited pc ();
      match decode pc with
      | None -> () (* reachable illegal word: fetch fault, block ends *)
      | Some inst -> (
          let open Riscv.Inst in
          match inst with
          | Beq (_, _, off) | Bne (_, _, off) | Blt (_, _, off) | Bge (_, _, off) | Bltu (_, _, off) | Bgeu (_, _, off)
            ->
              mark_leader (pc + off);
              mark_leader (pc + 4);
              push (pc + off);
              push (pc + 4)
          | Jal (rd, off) ->
              mark_leader (pc + off);
              push (pc + off);
              if rd <> 0 then note_call_return (pc + 4)
          | Jalr (rd, _, _) when is_ret inst -> ignore rd (* successors resolved at block build *)
          | Jalr (rd, _, _) ->
              open_indirect_targets ();
              if rd <> 0 then note_call_return (pc + 4)
          | Ecall | Ebreak -> ()
          | _ -> push (pc + 4))
    end
  done;
  let leader_list = List.sort Int.compare (Hashtbl.fold (fun a () acc -> if Hashtbl.mem visited a then a :: acc else acc) leaders []) in
  let dedup l = List.sort_uniq Int.compare l in
  let succ_filter l = dedup (List.filter (fun a -> Hashtbl.mem visited a) l) in
  let build_block start =
    let insts = ref [] in
    let rec walk pc =
      match if Hashtbl.mem visited pc then decode pc else None with
      | None -> (Halt, [])
      | Some inst -> (
          insts := (pc, inst) :: !insts;
          let open Riscv.Inst in
          match inst with
          | Beq (_, _, off) | Bne (_, _, off) | Blt (_, _, off) | Bge (_, _, off) | Bltu (_, _, off) | Bgeu (_, _, off)
            ->
              (Branch { taken = pc + off; not_taken = pc + 4 }, succ_filter [ pc + off; pc + 4 ])
          | Jal (0, off) -> (Jump (pc + off), succ_filter [ pc + off ])
          | Jal (_, off) -> (Call { target = pc + off; return = pc + 4 }, succ_filter [ pc + off ])
          | Jalr _ when is_ret inst -> (Return, succ_filter !call_returns)
          | Jalr _ -> (Indirect, succ_filter (List.map snd p.Riscv.Asm.labels @ leader_list))
          | Ecall | Ebreak -> (Halt, [])
          | _ ->
              if in_range (pc + 4) && not (Hashtbl.mem leaders (pc + 4)) then walk (pc + 4)
              else (Fallthrough, succ_filter [ pc + 4 ]))
    in
    let term, succs = walk start in
    { start; insts = Array.of_list (List.rev !insts); term; succs }
  in
  let block_list = List.map build_block leader_list in
  let table = Hashtbl.create 64 in
  List.iter (fun b -> Hashtbl.replace table b.start b) block_list;
  (* DFS back-edge detection over block successors. *)
  let color = Hashtbl.create 64 in
  (* 0 absent = white, 1 = on stack, 2 = done *)
  let backs = ref [] in
  let rec dfs a =
    match Hashtbl.find_opt color a with
    | Some _ -> ()
    | None ->
        Hashtbl.replace color a 1;
        (match Hashtbl.find_opt table a with
        | None -> ()
        | Some b ->
            List.iter
              (fun s ->
                match Hashtbl.find_opt color s with
                | Some 1 -> if not (List.mem (a, s) !backs) then backs := (a, s) :: !backs
                | Some _ -> ()
                | None -> dfs s)
              b.succs);
        Hashtbl.replace color a 2
  in
  dfs origin;
  {
    entry = origin;
    blocks = block_list;
    table;
    back_edges = List.rev !backs;
    call_returns = dedup !call_returns;
    has_indirect = !has_indirect;
  }
