module IntMap = Map.Make (Int)

type base = Const of int | Region of int | Any
type value = { base : base; secret : bool }

type config = { secret_mmio : int -> bool; region_bases : int list; gated_classes : Riscv.Inst.klass list }

let config ?(secret_mmio = fun _ -> false) ?(region_bases = []) ?(gated_classes = []) () =
  { secret_mmio; region_bases = List.sort_uniq Int.compare (0 :: Riscv.Memory.mmio_base :: region_bases); gated_classes }

let default_config = config ()

type fact = {
  addr : int;
  inst : Riscv.Inst.t;
  secret_branch : bool;
  secret_addr : bool;
  secret_bus : bool;
  secret_gated : bool;
}

type result = { cfg : Cfg.t; facts : fact list }

let u32 x = x land 0xFFFFFFFF

(* Largest declared base <= addr; total because 0 is always declared. *)
let region_of cfg addr = List.fold_left (fun acc b -> if b <= addr then b else acc) 0 cfg.region_bases

let public b = { base = b; secret = false }
let any_of secret = { base = Any; secret }

let join_base cfg a b =
  match (a, b) with
  | Const x, Const y when x = y -> Const x
  | Const x, Const y -> Region (region_of cfg (min x y))
  | Region r, Const c | Const c, Region r -> if region_of cfg c = r then Region r else Any
  | Region r, Region s -> if r = s then Region r else Any
  | Any, _ | _, Any -> Any

let join cfg a b = { base = join_base cfg a.base b.base; secret = a.secret || b.secret }

(* Address arithmetic on the base component. *)
let add_base cfg a b =
  match (a, b) with
  | Const x, Const y -> Const (u32 (x + y))
  | Region r, Const c | Const c, Region r -> Region (region_of cfg (u32 (r + c)))
  | Any, Const c | Const c, Any -> if List.mem c cfg.region_bases then Region c else Any
  | _ -> Any

let sub_base cfg a b =
  match (a, b) with
  | Const x, Const y -> Const (u32 (x - y))
  | Region r, Const c -> if r - c >= 0 then Region (region_of cfg (r - c)) else Any
  | _ -> Any

let shift_base a sh =
  match a with Const x -> Const (u32 (x lsl sh)) | Region 0 -> Region 0 | Region _ | Any -> Any

type state = { regs : value array; mem : value IntMap.t; escaped : value option }

let initial_state () = { regs = Array.make 32 (public (Const 0)); mem = IntMap.empty; escaped = None }

let join_opt cfg a b = match (a, b) with None, x | x, None -> x | Some x, Some y -> Some (join cfg x y)

let join_state cfg a b =
  {
    regs = Array.init 32 (fun i -> join cfg a.regs.(i) b.regs.(i));
    mem = IntMap.union (fun _ x y -> Some (join cfg x y)) a.mem b.mem;
    escaped = join_opt cfg a.escaped b.escaped;
  }

let state_equal a b = a.regs = b.regs && IntMap.equal ( = ) a.mem b.mem && a.escaped = b.escaped

let set_reg st rd v =
  if rd = 0 then st
  else begin
    let regs = Array.copy st.regs in
    regs.(rd) <- v;
    { st with regs }
  end

(* What a load from a RAM region observes: everything the program ever
   stored there, plus anything stored through an unresolved pointer.
   Regions never written read back public: host-staged tables (moduli,
   CDT thresholds, permutations) are public inputs. *)
let mem_read cfg st b =
  let region r = match IntMap.find_opt r st.mem with Some v -> v | None -> public Any in
  let with_escape v = match st.escaped with None -> v | Some e -> join cfg v e in
  match b with
  | Const a -> with_escape (region (region_of cfg a))
  | Region r -> with_escape (region r)
  | Any -> with_escape (IntMap.fold (fun _ v acc -> join cfg v acc) st.mem (public Any))

let mem_write cfg st b v =
  let into r = { st with mem = IntMap.update r (function None -> Some v | Some old -> Some (join cfg old v)) st.mem } in
  match b with
  | Const a when a >= Riscv.Memory.mmio_base -> st (* MMIO store: no RAM effect *)
  | Const a -> into (region_of cfg a)
  | Region r when r >= Riscv.Memory.mmio_base -> st
  | Region r -> into r
  | Any -> { st with escaped = join_opt cfg st.escaped (Some v) }

(* Source operand registers, mirroring the CPU's operand sampling.  x0
   stands in for "no operand": it is always public Const 0. *)
let sources (inst : Riscv.Inst.t) =
  let open Riscv.Inst in
  match inst with
  | Lui _ | Auipc _ | Jal _ | Ecall | Ebreak -> (0, 0)
  | Jalr (_, rs1, _)
  | Lb (_, rs1, _) | Lh (_, rs1, _) | Lw (_, rs1, _) | Lbu (_, rs1, _) | Lhu (_, rs1, _)
  | Addi (_, rs1, _) | Slti (_, rs1, _) | Sltiu (_, rs1, _) | Xori (_, rs1, _) | Ori (_, rs1, _)
  | Andi (_, rs1, _) | Slli (_, rs1, _) | Srli (_, rs1, _) | Srai (_, rs1, _) ->
      (rs1, 0)
  | Beq (rs1, rs2, _) | Bne (rs1, rs2, _) | Blt (rs1, rs2, _) | Bge (rs1, rs2, _) | Bltu (rs1, rs2, _)
  | Bgeu (rs1, rs2, _)
  | Sb (rs2, rs1, _) | Sh (rs2, rs1, _) | Sw (rs2, rs1, _)
  | Add (_, rs1, rs2) | Sub (_, rs1, rs2) | Sll (_, rs1, rs2) | Slt (_, rs1, rs2) | Sltu (_, rs1, rs2)
  | Xor (_, rs1, rs2) | Srl (_, rs1, rs2) | Sra (_, rs1, rs2) | Or (_, rs1, rs2) | And (_, rs1, rs2)
  | Mul (_, rs1, rs2) | Mulh (_, rs1, rs2) | Mulhsu (_, rs1, rs2) | Mulhu (_, rs1, rs2) | Div (_, rs1, rs2)
  | Divu (_, rs1, rs2) | Rem (_, rs1, rs2) | Remu (_, rs1, rs2) ->
      (rs1, rs2)

let destination (inst : Riscv.Inst.t) =
  let open Riscv.Inst in
  match inst with
  | Lui (rd, _) | Auipc (rd, _) | Jal (rd, _) | Jalr (rd, _, _)
  | Lb (rd, _, _) | Lh (rd, _, _) | Lw (rd, _, _) | Lbu (rd, _, _) | Lhu (rd, _, _)
  | Addi (rd, _, _) | Slti (rd, _, _) | Sltiu (rd, _, _) | Xori (rd, _, _) | Ori (rd, _, _) | Andi (rd, _, _)
  | Slli (rd, _, _) | Srli (rd, _, _) | Srai (rd, _, _)
  | Add (rd, _, _) | Sub (rd, _, _) | Sll (rd, _, _) | Slt (rd, _, _) | Sltu (rd, _, _) | Xor (rd, _, _)
  | Srl (rd, _, _) | Sra (rd, _, _) | Or (rd, _, _) | And (rd, _, _)
  | Mul (rd, _, _) | Mulh (rd, _, _) | Mulhsu (rd, _, _) | Mulhu (rd, _, _)
  | Div (rd, _, _) | Divu (rd, _, _) | Rem (rd, _, _) | Remu (rd, _, _) ->
      rd
  | Beq _ | Bne _ | Blt _ | Bge _ | Bltu _ | Bgeu _ | Sb _ | Sh _ | Sw _ | Ecall | Ebreak -> 0

(* One instruction: returns the post-state and the leakage fact. *)
let transfer cfg (addr, inst) st =
  let open Riscv.Inst in
  let rs1i, rs2i = sources inst in
  let v1 = st.regs.(rs1i) and v2 = st.regs.(rs2i) in
  let op_secret = v1.secret || v2.secret in
  let fact =
    {
      addr;
      inst;
      secret_branch = false;
      secret_addr = false;
      secret_bus = false;
      secret_gated = List.mem (classify ~taken:true inst) cfg.gated_classes && op_secret;
    }
  in
  let write v = set_reg st (destination inst) v in
  let alu base = (write { base; secret = op_secret }, fact) in
  match inst with
  | Lui (_, imm) -> (write (public (Const (u32 (imm lsl 12)))), fact)
  | Auipc (_, imm) -> (write (public (Const (u32 (addr + (imm lsl 12))))), fact)
  | Jal _ | Jalr _ -> (write (public (Const (u32 (addr + 4)))), fact)
  | Beq _ | Bne _ | Blt _ | Bge _ | Bltu _ | Bgeu _ -> (st, { fact with secret_branch = op_secret })
  | Lb (_, _, imm) | Lh (_, _, imm) | Lw (_, _, imm) | Lbu (_, _, imm) | Lhu (_, _, imm) ->
      let addr_base = add_base cfg v1.base (Const imm) in
      let datum =
        match addr_base with
        | Const a when a >= Riscv.Memory.mmio_base -> any_of (cfg.secret_mmio a)
        | Region r when r >= Riscv.Memory.mmio_base -> any_of true (* unresolved MMIO port: assume secret *)
        | b -> any_of (mem_read cfg st b).secret
      in
      (write datum, { fact with secret_addr = v1.secret; secret_bus = datum.secret })
  | Sb (_, _, imm) | Sh (_, _, imm) | Sw (_, _, imm) ->
      (* v2 is the stored datum: [sources] yields (rs1, rs2) for stores *)
      let addr_base = add_base cfg v1.base (Const imm) in
      (mem_write cfg st addr_base v2, { fact with secret_addr = v1.secret; secret_bus = v2.secret })
  | Addi (_, _, imm) -> alu (add_base cfg v1.base (Const imm))
  | Add _ -> alu (add_base cfg v1.base v2.base)
  | Sub _ -> alu (sub_base cfg v1.base v2.base)
  | Slli (_, _, sh) -> alu (shift_base v1.base sh)
  | Slti _ | Sltiu _ | Xori _ | Ori _ | Andi _ | Srli _ | Srai _ | Sll _ | Slt _ | Sltu _ | Xor _ | Srl _ | Sra _
  | Or _ | And _ | Mul _ | Mulh _ | Mulhsu _ | Mulhu _ | Div _ | Divu _ | Rem _ | Remu _ ->
      alu Any
  | Ecall | Ebreak -> (st, fact)

let block_transfer cfg (b : Cfg.block) st =
  Array.fold_left (fun st ia -> fst (transfer cfg ia st)) st b.Cfg.insts

let analyze ?(config = default_config) p =
  let graph = Cfg.build p in
  let in_states : (int, state) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.replace in_states (Cfg.entry graph) (initial_state ());
  let work = Queue.create () in
  Queue.add (Cfg.entry graph) work;
  while not (Queue.is_empty work) do
    let a = Queue.pop work in
    match Hashtbl.find_opt in_states a with
    | None -> ()
    | Some in_st ->
        let b = Cfg.block graph a in
        let out = block_transfer config b in_st in
        List.iter
          (fun s ->
            let updated =
              match Hashtbl.find_opt in_states s with
              | None -> Some out
              | Some old ->
                  let merged = join_state config old out in
                  if state_equal old merged then None else Some merged
            in
            match updated with
            | None -> ()
            | Some st ->
                Hashtbl.replace in_states s st;
                Queue.add s work)
          b.Cfg.succs
  done;
  let facts =
    List.concat_map
      (fun (b : Cfg.block) ->
        match Hashtbl.find_opt in_states b.Cfg.start with
        | None -> []
        | Some in_st ->
            let st = ref in_st in
            Array.to_list
              (Array.map
                 (fun ia ->
                   let st', fact = transfer config ia !st in
                   st := st';
                   fact)
                 b.Cfg.insts))
      (Cfg.blocks graph)
  in
  { cfg = graph; facts = List.sort (fun a b -> Int.compare a.addr b.addr) facts }
