(** Typed leakage findings of the constant-time analyzer.

    Every finding anchors at the byte address of one instruction of the
    analyzed program and carries the four-way classification the paper's
    leakage taxonomy suggests: secret-dependent control flow, secret-
    dependent addressing, secret-dependent instruction counts / latency,
    and secret data moved over the memory bus.  The first three break
    the constant-time contract outright; the fourth is a leak surface a
    power adversary templates (it is exactly what RevEAL's single-trace
    attack consumes) but does not by itself make execution time or
    addresses secret-dependent, so it is reported at a lower severity. *)

type kind =
  | Secret_branch  (** branch condition depends on a secret *)
  | Secret_mem_addr  (** load/store address depends on a secret *)
  | Secret_count
      (** retired-instruction count or cycle count depends on a secret:
          unbalanced successor paths of a secret branch, or an
          operand-gated-latency instruction fed secret operands *)
  | Secret_bus  (** a secret datum crosses the memory bus *)

type severity = Violation | Leak_surface

val severity : kind -> severity
(** [Secret_bus] is {!Leak_surface}; everything else {!Violation}. *)

type witness = {
  secret_lo : int;  (** first secret of the distinguishing pair *)
  secret_hi : int;
  evidence : string  (** human-readable signature difference *)
}
(** A secret pair whose executions produced observably different
    signatures at the finding's address. *)

type confirmation =
  | Static_only  (** no differential witness found (or oracle not run) *)
  | Confirmed of witness

type t = {
  kind : kind;
  addr : int;  (** byte address of the anchoring instruction *)
  inst : Riscv.Inst.t;
  detail : string;
  confirmation : confirmation;
}

val is_violation : t -> bool
val is_confirmed : t -> bool
val kind_name : kind -> string
val severity_name : severity -> string
val compare : t -> t -> int
(** Orders by address, then kind — the report order. *)

val to_row : t -> Render.row
(** The shared report row: [loc] is the hex instruction address, [tag]
    the confirmation status, [detail] the instruction plus any note.
    Both the text listing and the [--json] finding objects of
    [reveal lint] render through this (see {!Render}), so the firmware
    linter and the source linter emit the same schema. *)

val to_string : t -> string
(** [Render.line (to_row f)]: address, kind, severity, confirmation
    tag, instruction and detail. *)
