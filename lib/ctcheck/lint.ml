module S = Riscv.Sampler_prog

let sampler_config ?(gated_classes = []) () =
  Taint.config
    ~secret_mmio:(fun a -> a = S.noise_port || a = S.uniform_port || a = S.sign_port)
    ~region_bases:
      [
        S.default_layout.S.moduli_base;
        S.default_layout.S.perm_base;
        S.cdt_base;
        S.default_layout.S.poly_base;
      ]
    ~gated_classes ()

(* --- class 3: path imbalance under a secret branch ---------------------- *)

(* Per-block execution cost along a specific outgoing edge: a branch
   terminator costs taken or not-taken cycles depending on the edge
   (only the last instruction of a block can be a branch). *)
let block_cost ~cycles (b : Cfg.block) ~succ =
  let n = Array.length b.Cfg.insts in
  if not cycles then n
  else begin
    let edge_taken =
      match b.Cfg.term with
      | Cfg.Branch { taken; not_taken } -> not (succ = not_taken && succ <> taken)
      | _ -> true
    in
    let total = ref 0 in
    Array.iteri
      (fun i (_, inst) ->
        let taken = if i = n - 1 then edge_taken else true in
        total := !total + Riscv.Cpu.cycles_of_class (Riscv.Inst.classify ~taken inst))
      b.Cfg.insts;
    !total
  end

(* Dijkstra over block starts; distance to a block m = cost of executing
   everything strictly before m on the cheapest path from [src]. *)
let distances cfg ~cycles src =
  let dist = Hashtbl.create 32 in
  Hashtbl.replace dist src 0;
  let frontier = ref [ (0, src) ] in
  let pop () =
    match List.sort compare !frontier with
    | [] -> None
    | (d, a) :: rest ->
        frontier := rest;
        Some (d, a)
  in
  let rec loop () =
    match pop () with
    | None -> ()
    | Some (d, a) ->
        if Hashtbl.find dist a = d then begin
          match Cfg.block cfg a with
          | b ->
              List.iter
                (fun s ->
                  let d' = d + block_cost ~cycles b ~succ:s in
                  match Hashtbl.find_opt dist s with
                  | Some old when old <= d' -> ()
                  | _ ->
                      Hashtbl.replace dist s d';
                      frontier := (d', s) :: !frontier)
                b.Cfg.succs
          | exception Not_found -> ()
        end;
        loop ()
  in
  loop ();
  dist

let imbalance_findings cfg facts =
  let secret_branch_addrs =
    List.filter_map (fun (f : Taint.fact) -> if f.Taint.secret_branch then Some f.Taint.addr else None) facts
  in
  let findings =
    List.filter_map
      (fun (b : Cfg.block) ->
        match b.Cfg.term with
        | Cfg.Branch { taken; not_taken }
          when Array.length b.Cfg.insts > 0
               && List.mem (fst b.Cfg.insts.(Array.length b.Cfg.insts - 1)) secret_branch_addrs -> (
            let di_t = distances cfg ~cycles:false taken and di_n = distances cfg ~cycles:false not_taken in
            let dc_t = distances cfg ~cycles:true taken and dc_n = distances cfg ~cycles:true not_taken in
            (* merge point: common reachable block minimizing the summed
               instruction distance (ties to the lowest address) *)
            let merge =
              Hashtbl.fold (fun m dt acc -> (m, dt) :: acc) di_t []
              |> List.sort compare
              |> List.fold_left
                   (fun best (m, dt) ->
                     match Hashtbl.find_opt di_n m with
                     | None -> best
                     | Some dn -> (
                         match best with
                         | Some (_, s) when s < dt + dn -> best
                         | Some (bm, s) when s = dt + dn && bm < m -> best
                         | _ -> Some (m, dt + dn)))
                   None
            in
            let anchor_block side = try Some (Cfg.block cfg side) with Not_found -> None in
            let mk side detail =
              match anchor_block side with
              | Some ab when Array.length ab.Cfg.insts > 0 ->
                  let addr, inst = ab.Cfg.insts.(0) in
                  Some { Finding.kind = Finding.Secret_count; addr; inst; detail; confirmation = Finding.Static_only }
              | _ -> None
            in
            match merge with
            | None -> mk not_taken "secret branch: successor paths never rejoin"
            | Some (m, _) ->
                let it = Hashtbl.find di_t m and inn = Hashtbl.find di_n m in
                let ct = try Hashtbl.find dc_t m with Not_found -> 0
                and cn = try Hashtbl.find dc_n m with Not_found -> 0 in
                if it = inn && ct = cn then None
                else
                  let side = if it <> inn then (if it > inn then taken else not_taken) else if ct > cn then taken else not_taken in
                  mk side
                    (Printf.sprintf "secret branch at 0x%x: paths rejoin at 0x%x after %d vs %d instructions (%d vs %d cycles)"
                       (fst b.Cfg.insts.(Array.length b.Cfg.insts - 1))
                       m it inn ct cn))
        | _ -> None)
      (Cfg.blocks cfg)
  in
  (* An anchor that is itself a flagged secret branch is the same leak
     seen twice (the ladder's second blt): keep the branch finding. *)
  let findings = List.filter (fun f -> not (List.mem f.Finding.addr secret_branch_addrs)) findings in
  List.sort_uniq Finding.compare findings

(* --- static analysis ----------------------------------------------------- *)

let findings_of_result (r : Taint.result) =
  let direct =
    List.concat_map
      (fun (f : Taint.fact) ->
        let mk kind detail =
          { Finding.kind; addr = f.Taint.addr; inst = f.Taint.inst; detail; confirmation = Finding.Static_only }
        in
        (if f.Taint.secret_branch then [ mk Finding.Secret_branch "branch condition is secret-tainted" ] else [])
        @ (if f.Taint.secret_addr then [ mk Finding.Secret_mem_addr "memory address is secret-tainted" ] else [])
        @ (if f.Taint.secret_bus then [ mk Finding.Secret_bus "secret datum crosses the memory bus" ] else [])
        @
        if f.Taint.secret_gated then [ mk Finding.Secret_count "operand-gated latency with secret operand" ] else [])
      r.Taint.facts
  in
  List.sort Finding.compare (direct @ imbalance_findings r.Taint.cfg r.Taint.facts)

let analyze_program ?(config = Taint.default_config) p = findings_of_result (Taint.analyze ~config p)

(* --- differential-oracle execution --------------------------------------- *)

(* Wide staged modulus: the high word of q - |noise| is nonzero, so the
   hi-word stores of the negative path carry a usable witness (the
   default test modulus has an all-zero high word). *)
let oracle_q = (1 lsl 45) + 9

let run_variant ?(n = 1) ?(k = 1) ?(origin = 0) variant ~secret =
  let p = S.build ~variant ~origin ~n ~k () in
  let layout = S.default_layout in
  let mem = Riscv.Memory.create layout.S.ram_size in
  Riscv.Memory.load_program mem origin p.Riscv.Asm.words;
  S.stage_moduli mem layout (Array.make k oracle_q);
  (match variant with
  | S.Shuffled -> S.stage_permutation mem layout (Array.init n (fun i -> i))
  | S.Cdt_table ->
      let sigma = Mathkit.Gaussian.seal_default.Mathkit.Gaussian.sigma in
      S.stage_cdt_table mem layout (S.cdt_thresholds ~sigma);
      let rng = Mathkit.Prng.create ~seed:7L () in
      S.install_cdt_port mem ~draws:(Array.init n (fun _ -> S.cdt_force_draw rng ~sigma ~value:secret))
  | S.Vulnerable | S.Branchless -> ());
  (match variant with
  | S.Cdt_table -> ()
  | _ -> S.install_noise_port mem ~draws:(Array.make n (secret, 2)));
  let recorder = Riscv.Trace.recorder () in
  let cpu = Riscv.Cpu.create ~tracer:(Riscv.Trace.record recorder) mem in
  Riscv.Cpu.set_pc cpu origin;
  ignore (Riscv.Cpu.run ~max_steps:(100_000 + (4096 * n * k)) cpu);
  Riscv.Trace.events recorder

type report = {
  variant : S.variant;
  program : Riscv.Asm.program;
  cfg : Cfg.t;
  findings : Finding.t list;
  confirmed : bool;
}

let analyze_variant ?(n = 1) ?(k = 1) ?(origin = 0) ?(confirm = true) variant =
  let p = S.build ~variant ~origin ~n ~k () in
  let config = sampler_config () in
  let result = Taint.analyze ~config p in
  let findings = findings_of_result result in
  let cfg = result.Taint.cfg in
  let findings =
    if confirm then Oracle.confirm_all ~run:(fun ~secret -> run_variant ~n ~k ~origin variant ~secret) findings
    else findings
  in
  { variant; program = p; cfg; findings; confirmed = confirm }

let violations r = List.filter Finding.is_violation r.findings

(* --- the expected verdict table ------------------------------------------ *)

(* Derived structurally from the decoded words so any drift between the
   firmware, the analyzer and the paper's taxonomy is caught:
   - v3.2 ladder (Vulnerable, Shuffled): the two [blt]s on the noise
     register t0, the unbalanced negation path at "neg_branch", the
     noise-port load and the four coefficient stores;
   - Branchless: bus traffic only (noise load, two stores);
   - CDT: the residual sign branch [beq a1, x0], its negation
     [sub a0, x0, a0], the two entropy-port loads and two stores. *)
let expected_findings (p : Riscv.Asm.program) variant =
  let open Riscv.Inst in
  let t0 = t 0 and s4 = s 4 and a0 = a 0 and a1 = a 1 in
  let insts =
    Array.to_list (Array.mapi (fun i w -> (p.Riscv.Asm.origin + (4 * i), Riscv.Codec.decode w)) p.Riscv.Asm.words)
  in
  let where pred kind = List.filter_map (fun (addr, i) -> if pred i then Some (kind, addr) else None) insts in
  let stores = where (function Sw (rs2, _, _) -> rs2 <> x0 | _ -> false) Finding.Secret_bus in
  match variant with
  | S.Vulnerable | S.Shuffled ->
      where (function Blt (r1, r2, _) -> r1 = t0 || r2 = t0 | _ -> false) Finding.Secret_branch
      @ [ (Finding.Secret_count, Riscv.Asm.label_address p "neg_branch") ]
      @ where (function Lw (_, b, 0) -> b = s4 | _ -> false) Finding.Secret_bus
      @ stores
  | S.Branchless -> where (function Lw (_, b, 0) -> b = s4 | _ -> false) Finding.Secret_bus @ stores
  | S.Cdt_table ->
      where (function Beq (r1, r2, _) -> r1 = a1 && r2 = x0 | _ -> false) Finding.Secret_branch
      @ where (function Sub (rd, r1, r2) -> rd = a0 && r1 = x0 && r2 = a0 | _ -> false) Finding.Secret_count
      @ where (function Lw (_, b, imm) -> b = s4 && (imm = 8 || imm = 12) | _ -> false) Finding.Secret_bus
      @ stores

let check r =
  let actual = List.map (fun f -> (f.Finding.kind, f.Finding.addr)) r.findings in
  let expected = expected_findings r.program r.variant in
  let sort = List.sort_uniq compare in
  let actual_s = sort actual and expected_s = sort expected in
  let missing = List.filter (fun e -> not (List.mem e actual_s)) expected_s in
  let spurious = List.filter (fun a -> not (List.mem a expected_s)) actual_s in
  let describe (kind, addr) = Printf.sprintf "%s at 0x%08x" (Finding.kind_name kind) addr in
  List.map (fun e -> "missing expected finding: " ^ describe e) missing
  @ List.map (fun a -> "finding not in the verdict table: " ^ describe a) spurious
  @
  if r.confirmed then
    List.filter_map
      (fun f ->
        if Finding.is_confirmed f then None
        else Some (Printf.sprintf "no differential witness for %s at 0x%08x" (Finding.kind_name f.Finding.kind) f.Finding.addr))
      r.findings
  else []

(* --- rendering ------------------------------------------------------------ *)

let variant_label = function
  | S.Vulnerable -> "v3.2 ladder (vulnerable)"
  | S.Branchless -> "v3.6 branchless"
  | S.Shuffled -> "v3.2 ladder + shuffling"
  | S.Cdt_table -> "constant-time CDT"

let render ?(verbose = false) r =
  let buf = Buffer.create 1024 in
  let count pred = List.length (List.filter pred r.findings) in
  Buffer.add_string buf
    (Printf.sprintf "leaklint: %s, %d instructions, %d basic blocks, %d loop back-edges\n" (variant_label r.variant)
       (Array.length r.program.Riscv.Asm.words)
       (List.length (Cfg.blocks r.cfg))
       (List.length (Cfg.back_edges r.cfg)));
  List.iter
    (fun f ->
      Buffer.add_string buf ("  " ^ Finding.to_string f);
      Buffer.add_char buf '\n')
    r.findings;
  let nviol = count Finding.is_violation in
  let nsurf = List.length r.findings - nviol in
  Buffer.add_string buf
    (if nviol = 0 then
       Printf.sprintf "verdict: CONSTANT-TIME (%d leak-surface note%s)\n" nsurf (if nsurf = 1 then "" else "s")
     else
       Printf.sprintf "verdict: NOT CONSTANT-TIME (%d violation%s, %d leak-surface note%s)\n" nviol
         (if nviol = 1 then "" else "s")
         nsurf
         (if nsurf = 1 then "" else "s"));
  if verbose then begin
    Buffer.add_string buf "\n";
    let by_addr = Hashtbl.create 16 in
    List.iter (fun f -> Hashtbl.add by_addr f.Finding.addr f) r.findings;
    List.iter
      (fun line ->
        Buffer.add_string buf line;
        Buffer.add_char buf '\n';
        (* instruction lines start with the hex address; label lines
           carry the same address in angle brackets — skip those *)
        match
          if String.contains line '<' then None
          else int_of_string_opt ("0x" ^ String.trim (List.hd (String.split_on_char ':' line)))
        with
        | Some addr ->
            List.iter
              (fun f ->
                Buffer.add_string buf
                  (Printf.sprintf "          ^ %s (%s)\n" (Finding.kind_name f.Finding.kind)
                     (Finding.severity_name (Finding.severity f.Finding.kind))))
              (Hashtbl.find_all by_addr addr)
        | None -> ())
      r.program.Riscv.Asm.listing
  end;
  Buffer.contents buf
