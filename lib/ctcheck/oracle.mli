(** Differential-trace confirmation of static findings.

    Every static finding is adversarially checked against the dynamic
    truth: the program is executed on {!Riscv.Cpu} for pairs of secret
    inputs and a per-kind signature is extracted at the finding's
    address from the event stream.  If any pair produces different
    signatures the finding is {!Finding.Confirmed} with that pair as
    witness; otherwise it stays {!Finding.Static_only} — a
    conservative over-approximation of the analyzer (e.g. a value that
    is tainted on paper but masked to a constant before use).

    Signatures per kind:
    - [Secret_branch]: the taken/not-taken pattern of the branch;
    - [Secret_mem_addr]: the bus-address sequence of the instruction;
    - [Secret_bus]: the bus-datum sequence;
    - [Secret_count]: execution count at the address plus the global
      retired-instruction and cycle counts. *)

type signature =
  | Branches of bool list  (** taken? per dynamic execution of the anchor *)
  | Addresses of int list
  | Bus_values of int list
  | Counts of { hits : int; retired : int; cycles : int }

val signature_of : Finding.kind -> addr:int -> Riscv.Trace.event array -> signature

val default_pairs : (int * int) list
(** [(3, -3); (1, 2); (0, 1)] — sign, magnitude and zero/non-zero
    distinguishers, all within every sampler variant's range. *)

val confirm :
  run:(secret:int -> Riscv.Trace.event array) -> ?pairs:(int * int) list -> Finding.t -> Finding.t
(** Re-tags the finding.  [run] executes the program under one secret
    and returns its event stream; memoize it when confirming many
    findings. *)

val confirm_all :
  run:(secret:int -> Riscv.Trace.event array) -> ?pairs:(int * int) list -> Finding.t list -> Finding.t list
(** {!confirm} for every finding, with [run] memoized across the
    list. *)
