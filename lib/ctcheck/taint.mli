(** Secret-taint dataflow over a recovered {!Cfg}.

    Abstract values track one bit of secrecy plus a small address
    abstraction used to keep pointer arithmetic from drowning the
    analysis in false aliases:

    - [Const a] — the register provably holds the 32-bit constant [a]
      (tracked through [lui]/[auipc]/[addi]/[add]/[sub]/[slli], the
      operations address computation is made of);
    - [Region r] — the register points somewhere inside the declared
      data region based at [r] (the largest declared base [<=] the
      address); loop-variant pointers land here after one join;
    - [Any] — no information.

    The memory abstraction is region-granular: a store joins its value
    into the target region, a load reads the region's accumulated
    value.  Memory never written by the program reads back public —
    host-staged tables (moduli, CDT thresholds, permutations) are
    public inputs.  Stores through unresolvable addresses land in an
    escape cell that every subsequent load also observes, so aliasing
    is handled conservatively.  MMIO loads at a resolvable constant
    address consult the configuration's secret-port predicate; an MMIO
    load through an unresolved pointer into the MMIO region is
    conservatively secret.

    The whole domain is a finite lattice ([Const -> Region -> Any]
    along declared regions, secrecy monotone), so the worklist
    iteration terminates. *)

type base = Const of int | Region of int | Any
type value = { base : base; secret : bool }

type config = {
  secret_mmio : int -> bool;  (** is this MMIO address a secret source? *)
  region_bases : int list;  (** declared data-region base addresses *)
  gated_classes : Riscv.Inst.klass list;
      (** instruction classes whose latency is operand-gated on this
          core (empty for the PicoRV32 model: its divider is bit-serial
          fixed-latency) *)
}

val config :
  ?secret_mmio:(int -> bool) -> ?region_bases:int list -> ?gated_classes:Riscv.Inst.klass list -> unit -> config
(** Sorts and deduplicates the region bases and always includes 0 and
    {!Riscv.Memory.mmio_base}. *)

val default_config : config
(** No secret sources, no extra regions, no gated classes. *)

type fact = {
  addr : int;
  inst : Riscv.Inst.t;
  secret_branch : bool;  (** branch condition tainted *)
  secret_addr : bool;  (** memory address tainted *)
  secret_bus : bool;  (** datum on the bus tainted *)
  secret_gated : bool;  (** operand-gated latency fed a tainted operand *)
}

type result = { cfg : Cfg.t; facts : fact list }

val analyze : ?config:config -> Riscv.Asm.program -> result
(** Fixed point over the recovered CFG; [facts] cover every reachable
    instruction in ascending address order. *)
