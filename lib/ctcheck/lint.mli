(** Leaklint: the constant-time verdict for sampler firmware.

    Glues the pieces together: {!Taint} produces per-instruction
    leakage facts, path-imbalance analysis over the {!Cfg} turns
    secret branches with unequal successor costs into
    [Secret_count] findings, and {!Oracle} adversarially confirms
    every finding against differential executions on {!Riscv.Cpu}.

    The expected verdict table (the paper's leakage taxonomy applied
    to the four firmware variants) is derived structurally from the
    decoded program — the ladder's [blt]s on the noise register, the
    residual sign negation of the CDT draw, the bus instructions that
    move noise — so [check] detects any drift between the analyzer,
    the firmware and the paper's claims. *)

val sampler_config : ?gated_classes:Riscv.Inst.klass list -> unit -> Taint.config
(** Secret sources: the noise, uniform and sign MMIO ports.  The
    rejection-count port is deliberately public — the polar burn loop
    replays a data-independent rejection count, and marking it secret
    would (correctly but uninterestingly) flag the whole burn loop.
    Region bases: scratch (0), moduli, permutation, CDT table,
    polynomial output, MMIO. *)

val analyze_program : ?config:Taint.config -> Riscv.Asm.program -> Finding.t list
(** Static findings only (all {!Finding.Static_only}), sorted by
    address. *)

type report = {
  variant : Riscv.Sampler_prog.variant;
  program : Riscv.Asm.program;
  cfg : Cfg.t;
  findings : Finding.t list;
  confirmed : bool;  (** whether the differential oracle ran *)
}

val analyze_variant :
  ?n:int -> ?k:int -> ?origin:int -> ?confirm:bool -> Riscv.Sampler_prog.variant -> report
(** Build the firmware ([n] coefficients, [k] RNS planes, default
    1/1), lint it, and (with [confirm], the default) run the
    differential oracle with a staged wide modulus so that both words
    of every stored coefficient can witness. *)

val run_variant :
  ?n:int -> ?k:int -> ?origin:int -> Riscv.Sampler_prog.variant -> secret:int -> Riscv.Trace.event array
(** One differential-oracle execution: every coefficient draw yields
    [secret].  Exposed so tests can re-verify witnesses. *)

val violations : report -> Finding.t list
(** Findings of {!Finding.Violation} severity — the constant-time
    verdict is clean iff this is empty. *)

val expected_findings : Riscv.Asm.program -> Riscv.Sampler_prog.variant -> (Finding.kind * int) list
(** The paper's verdict table for this firmware, as (kind, address)
    pairs derived from the decoded instruction stream. *)

val check : report -> string list
(** Drift between the analyzer's findings and {!expected_findings}
    (plus any expected finding left unconfirmed when the oracle ran).
    Empty means the verdict table holds. *)

val render : ?verbose:bool -> report -> string
(** Human-readable report; [verbose] appends the annotated listing. *)
