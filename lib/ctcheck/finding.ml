type kind = Secret_branch | Secret_mem_addr | Secret_count | Secret_bus

type severity = Violation | Leak_surface

let severity = function Secret_bus -> Leak_surface | Secret_branch | Secret_mem_addr | Secret_count -> Violation

type witness = { secret_lo : int; secret_hi : int; evidence : string }

type confirmation = Static_only | Confirmed of witness

type t = { kind : kind; addr : int; inst : Riscv.Inst.t; detail : string; confirmation : confirmation }

let is_violation f = severity f.kind = Violation
let is_confirmed f = match f.confirmation with Confirmed _ -> true | Static_only -> false

let kind_name = function
  | Secret_branch -> "secret-branch"
  | Secret_mem_addr -> "secret-mem-addr"
  | Secret_count -> "secret-count"
  | Secret_bus -> "secret-bus"

let severity_name = function Violation -> "VIOLATION" | Leak_surface -> "leak-surface"

let kind_rank = function Secret_branch -> 0 | Secret_mem_addr -> 1 | Secret_count -> 2 | Secret_bus -> 3

let compare a b =
  match Int.compare a.addr b.addr with 0 -> Int.compare (kind_rank a.kind) (kind_rank b.kind) | c -> c

let to_row f =
  let tag =
    match f.confirmation with
    | Static_only -> "static-only"
    | Confirmed w -> Printf.sprintf "confirmed %d vs %d" w.secret_lo w.secret_hi
  in
  {
    Render.loc = Printf.sprintf "0x%08x" f.addr;
    rule = kind_name f.kind;
    severity = severity_name (severity f.kind);
    tag = Some tag;
    detail = Riscv.Inst.to_string f.inst ^ (if f.detail = "" then "" else "  ; " ^ f.detail);
  }

let to_string f = Render.line (to_row f)
