type signature =
  | Branches of bool list
  | Addresses of int list
  | Bus_values of int list
  | Counts of { hits : int; retired : int; cycles : int }

let signature_of kind ~addr (events : Riscv.Trace.event array) =
  let at = List.filter (fun e -> e.Riscv.Trace.pc = addr) (Array.to_list events) in
  match kind with
  | Finding.Secret_branch ->
      Branches (List.map (fun e -> e.Riscv.Trace.klass = Riscv.Inst.K_branch_taken) at)
  | Finding.Secret_mem_addr -> Addresses (List.filter_map (fun e -> e.Riscv.Trace.mem_addr) at)
  | Finding.Secret_bus -> Bus_values (List.filter_map (fun e -> e.Riscv.Trace.mem_value) at)
  | Finding.Secret_count ->
      let cycles =
        match Array.length events with
        | 0 -> 0
        | n -> events.(n - 1).Riscv.Trace.cycle + events.(n - 1).Riscv.Trace.cycles
      in
      Counts { hits = List.length at; retired = Array.length events; cycles }

let render_signature = function
  | Branches bs ->
      Printf.sprintf "[%s]" (String.concat "" (List.map (fun b -> if b then "T" else "n") bs))
  | Addresses l -> Printf.sprintf "[%s]" (String.concat ";" (List.map (Printf.sprintf "0x%x") l))
  | Bus_values l -> Printf.sprintf "[%s]" (String.concat ";" (List.map (Printf.sprintf "0x%x") l))
  | Counts { hits; retired; cycles } -> Printf.sprintf "%d hits, %d retired, %d cycles" hits retired cycles

let default_pairs = [ (3, -3); (1, 2); (0, 1) ]

let confirm_with cache ~run ~pairs (f : Finding.t) =
  let events secret =
    match Hashtbl.find_opt cache secret with
    | Some ev -> ev
    | None ->
        let ev = run ~secret in
        Hashtbl.replace cache secret ev;
        ev
  in
  let rec try_pairs = function
    | [] -> { f with Finding.confirmation = Finding.Static_only }
    | (lo, hi) :: rest ->
        let sa = signature_of f.Finding.kind ~addr:f.Finding.addr (events lo) in
        let sb = signature_of f.Finding.kind ~addr:f.Finding.addr (events hi) in
        if sa <> sb then
          {
            f with
            Finding.confirmation =
              Finding.Confirmed
                {
                  Finding.secret_lo = lo;
                  secret_hi = hi;
                  evidence = Printf.sprintf "%s vs %s" (render_signature sa) (render_signature sb);
                };
          }
        else try_pairs rest
  in
  try_pairs pairs

let confirm ~run ?(pairs = default_pairs) f = confirm_with (Hashtbl.create 8) ~run ~pairs f

let confirm_all ~run ?(pairs = default_pairs) findings =
  let cache = Hashtbl.create 8 in
  List.map (confirm_with cache ~run ~pairs) findings
