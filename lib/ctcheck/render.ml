type row = { loc : string; rule : string; severity : string; tag : string option; detail : string }

let line r =
  match r.tag with
  | Some t -> Printf.sprintf "%s  %-15s %-12s %-20s %s" r.loc r.rule r.severity t r.detail
  | None -> Printf.sprintf "%s  %-15s %-12s %s" r.loc r.rule r.severity r.detail

let to_json r =
  Obs.Json.Obj
    [
      ("loc", Obs.Json.String r.loc);
      ("rule", Obs.Json.String r.rule);
      ("severity", Obs.Json.String r.severity);
      ("tag", (match r.tag with Some t -> Obs.Json.String t | None -> Obs.Json.Null));
      ("detail", Obs.Json.String r.detail);
    ]
