(** The one finding-rendering helper shared by every analyzer in the
    tree.

    [reveal lint] (firmware constant-time findings, anchored at
    instruction addresses) and [reveal srclint] (source determinism
    findings, anchored at file:line) emit the same report schema: one
    text line per finding with aligned rule / severity columns, and
    one JSON object per finding with the keys [loc], [rule],
    [severity], [tag] and [detail].  Analyzers map their typed
    findings into {!row}s; how a location or confirmation tag is
    spelled stays the analyzer's business, the shape does not. *)

type row = {
  loc : string;  (** anchor: ["0x%08x"] for firmware, ["file:line"] for source *)
  rule : string;  (** rule / finding-kind identifier, kebab-case *)
  severity : string;  (** e.g. ["VIOLATION"], ["leak-surface"], ["warning"] *)
  tag : string option;  (** analyzer-specific annotation (e.g. confirmation status) *)
  detail : string;  (** one-line why *)
}

val line : row -> string
(** One aligned text line; the [tag] column is omitted when [None]. *)

val to_json : row -> Obs.Json.t
(** [{"loc":…,"rule":…,"severity":…,"tag":…,"detail":…}]; [tag] is
    [null] when absent. *)
