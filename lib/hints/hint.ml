type kind =
  | Perfect of int
  | Approximate of { mean : float; variance : float; confidence : float }
  | None_useful

type t = { coordinate : int; kind : kind }

let centered_mean dist =
  let total = Array.fold_left (fun acc (_, p) -> acc +. p) 0.0 dist in
  if total <= 0.0 then invalid_arg "Hint: empty distribution";
  Array.fold_left (fun acc (v, p) -> acc +. (float_of_int v *. p)) 0.0 dist /. total

let variance dist =
  let mu = centered_mean dist in
  let total = Array.fold_left (fun acc (_, p) -> acc +. p) 0.0 dist in
  Array.fold_left (fun acc (v, p) -> acc +. (p *. (float_of_int v -. mu) *. (float_of_int v -. mu))) 0.0 dist
  /. total

let of_posterior ?(perfect_threshold = 1e-9) ~coordinate dist =
  if Array.length dist = 0 then invalid_arg "Hint.of_posterior: empty distribution";
  let mu = centered_mean dist in
  let var = variance dist in
  let best_value = ref (fst dist.(0)) and best_p = ref (snd dist.(0)) in
  Array.iter
    (fun (v, p) ->
      if p > !best_p then begin
        best_p := p;
        best_value := v
      end)
    dist;
  if var <= perfect_threshold then { coordinate; kind = Perfect !best_value }
  else { coordinate; kind = Approximate { mean = mu; variance = var; confidence = !best_p } }

let sign_hint ~sigma ~coordinate sign =
  match compare sign 0 with
  | 0 -> { coordinate; kind = Perfect 0 }
  | s ->
      (* Half-normal posterior: mean s*sigma*sqrt(2/pi), variance
         sigma^2 (1 - 2/pi). *)
      let mean = float_of_int s *. sigma *. sqrt (2.0 /. Float.pi) in
      let variance = sigma *. sigma *. (1.0 -. (2.0 /. Float.pi)) in
      (* A sign guess on a nonzero coefficient is certain here (the
         branch classifier is exact); confidence reflects guessing the
         value, which sign alone does not give. *)
      { coordinate; kind = Approximate { mean; variance; confidence = 0.0 } }

let kind_counts hints =
  List.fold_left
    (fun (p, a, n) h ->
      match h.kind with
      | Perfect _ -> (p + 1, a, n)
      | Approximate _ -> (p, a + 1, n)
      | None_useful -> (p, a, n + 1))
    (0, 0, 0) hints

let apply dbdd hint =
  match hint.kind with
  | Perfect _ -> Dbdd.perfect_hint dbdd hint.coordinate
  | Approximate { variance; _ } -> Dbdd.posterior_hint dbdd hint.coordinate ~posterior_variance:variance
  | None_useful -> ()

let apply_all dbdd hint_list = List.iter (apply dbdd) hint_list

let guess_gain dbdd hint_list =
  let candidates =
    List.filter_map
      (fun h -> match h.kind with Approximate { confidence; _ } when confidence > 0.0 -> Some (h, confidence) | _ -> None)
      hint_list
  in
  match candidates with
  | [] -> None
  | _ ->
      let best, confidence =
        List.fold_left (fun (bh, bc) (h, c) -> if c > bc then (h, c) else (bh, bc)) (List.hd candidates) candidates
      in
      Dbdd.perfect_hint dbdd best.coordinate;
      Some (confidence, Dbdd.estimate_bikz dbdd)

type ladder_step = {
  guesses : int;
  success_probability : float;
  bikz : float;
}

let guess_ladder dbdd hint_list ~max_guesses =
  if max_guesses < 1 then invalid_arg "Hint.guess_ladder: need at least one guess";
  let candidates =
    List.filter_map
      (fun h -> match h.kind with Approximate { confidence; _ } when confidence > 0.0 -> Some (h.coordinate, confidence) | _ -> None)
      hint_list
    |> List.sort (fun (_, a) (_, b) -> Float.compare b a)
  in
  let rec go steps taken acc_prob = function
    | [] -> List.rev steps
    | _ when taken >= max_guesses -> List.rev steps
    | (coordinate, confidence) :: rest ->
        Dbdd.perfect_hint dbdd coordinate;
        let acc_prob = acc_prob *. confidence in
        let step = { guesses = taken + 1; success_probability = acc_prob; bikz = Dbdd.estimate_bikz dbdd } in
        go (step :: steps) (taken + 1) acc_prob rest
  in
  go [] 0 1.0 candidates
