(** Converting attack posteriors into DBDD hints (Section IV-C).

    The template attack returns, for every sampled coefficient, a
    probability distribution over candidate values.  Following the
    paper: distributions with (numerically) zero variance become
    perfect hints; the rest become approximate hints carrying their
    posterior variance.  The branch-only attack yields sign
    information, which is a perfect hint for zeros and a half-Gaussian
    posterior for the others. *)

type kind =
  | Perfect of int  (** the exact value *)
  | Approximate of { mean : float; variance : float; confidence : float }
      (** [confidence] is the posterior mass of the most likely value
          — what a guess of this coordinate would succeed with *)
  | None_useful  (** posterior no sharper than the prior *)

type t = { coordinate : int; kind : kind }

val of_posterior : ?perfect_threshold:float -> coordinate:int -> (int * float) array -> t
(** [of_posterior ~coordinate dist] with [dist = (value, prob) array].
    Variance below [perfect_threshold] (default 1e-9) makes the hint
    perfect — the paper's "probabilities rounded to 1 by floating
    point precision" case. *)

val sign_hint : sigma:float -> coordinate:int -> int -> t
(** Branch-only information: sign -1/0/+1.  Zero is perfect; a known
    sign leaves a half-Gaussian with variance sigma^2 (1 - 2/pi)
    around mean +-sigma sqrt(2/pi). *)

val centered_mean : (int * float) array -> float
val variance : (int * float) array -> float

val kind_counts : t list -> int * int * int
(** (perfect, approximate, none-useful) — the hint-ladder census the
    fault-sweep reporting prints. *)

val apply : Dbdd.t -> t -> unit
(** Integrate into the lite estimator. *)

val apply_all : Dbdd.t -> t list -> unit

val guess_gain : Dbdd.t -> t list -> (float * float) option
(** Simulate the paper's "hints & guesses" row: pick the unintegrated
    approximate hint with the highest confidence, apply it as a
    perfect hint, and return (success probability, new bikz).  [None]
    when no approximate hint remains. *)

type ladder_step = {
  guesses : int;  (** cumulative number of guessed coordinates *)
  success_probability : float;  (** probability every guess so far is right *)
  bikz : float;  (** hardness if they are *)
}

val guess_ladder : Dbdd.t -> t list -> max_guesses:int -> ladder_step list
(** The full "hints and guesses" trade-off of [31]: repeatedly guess
    the most confident unguessed coordinate; each step turns an
    approximate hint into a perfect one at a multiplicative success
    cost.  Steps stop early when no candidates remain. *)
