(* Connected byte pipes for the fabric: Unix-domain and TCP sockets,
   surfaced as stdlib channels so Traceio.Wire never learns what it is
   talking over. *)

type endpoint = Unix_socket of string | Tcp of string * int

let to_string = function
  | Unix_socket path -> "unix:" ^ path
  | Tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port

let parse s =
  let prefixed p = String.length s > String.length p && String.sub s 0 (String.length p) = p in
  let rest p = String.sub s (String.length p) (String.length s - String.length p) in
  if prefixed "unix:" then Ok (Unix_socket (rest "unix:"))
  else if prefixed "tcp:" then begin
    let body = rest "tcp:" in
    match String.rindex_opt body ':' with
    | None -> Error (Printf.sprintf "tcp endpoint %S needs HOST:PORT" s)
    | Some i -> (
        let host = String.sub body 0 i in
        let port = String.sub body (i + 1) (String.length body - i - 1) in
        match int_of_string_opt port with
        | Some p when p > 0 && p < 65536 && host <> "" -> Ok (Tcp (host, p))
        | _ -> Error (Printf.sprintf "tcp endpoint %S needs HOST:PORT with a port in 1..65535" s))
  end
  else Error (Printf.sprintf "endpoint %S must be unix:PATH or tcp:HOST:PORT" s)

(* Every OS-level failure names the endpoint, like the file container
   names its path. *)
let wrap ep f =
  try f ()
  with Unix.Unix_error (e, fn, _) ->
    Traceio.Error.iof "%s: %s (%s)" (to_string ep) (Unix.error_message e) fn

let resolve host =
  match Unix.inet_addr_of_string host with
  | addr -> addr
  | exception Failure _ -> (
      match Unix.gethostbyname host with
      | { Unix.h_addr_list = addrs; _ } when Array.length addrs > 0 -> addrs.(0)
      | _ -> Traceio.Error.iof "tcp:%s: host does not resolve" host
      | exception Not_found -> Traceio.Error.iof "tcp:%s: host does not resolve" host)

let sockaddr_of = function
  | Unix_socket path -> Unix.ADDR_UNIX path
  | Tcp (host, port) -> Unix.ADDR_INET (resolve host, port)

let domain_of = function Unix_socket _ -> Unix.PF_UNIX | Tcp _ -> Unix.PF_INET

type connection = { ic : in_channel; oc : out_channel; peer : string }

type listener = { l_fd : Unix.file_descr; l_endpoint : endpoint; mutable l_closed : bool }

let listen ?(backlog = 16) ep =
  wrap ep (fun () ->
      let fd = Unix.socket (domain_of ep) Unix.SOCK_STREAM 0 in
      (try
         (match ep with
         | Unix_socket path -> if Sys.file_exists path then Unix.unlink path
         | Tcp _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true);
         Unix.bind fd (sockaddr_of ep);
         Unix.listen fd backlog
       with e ->
         Unix.close fd;
         raise e);
      { l_fd = fd; l_endpoint = ep; l_closed = false })

let connection_of_fd ~peer fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  set_binary_mode_in ic true;
  set_binary_mode_out oc true;
  { ic; oc; peer }

let peer_name ep = function
  | Unix.ADDR_UNIX _ -> to_string ep
  | Unix.ADDR_INET (addr, port) -> Printf.sprintf "tcp:%s:%d" (Unix.string_of_inet_addr addr) port

let accept l =
  wrap l.l_endpoint (fun () ->
      let fd, addr = Unix.accept l.l_fd in
      connection_of_fd ~peer:(peer_name l.l_endpoint addr) fd)

let close_listener l =
  if not l.l_closed then begin
    l.l_closed <- true;
    (try Unix.close l.l_fd with Unix.Unix_error _ -> ());
    match l.l_endpoint with
    | Unix_socket path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
    | Tcp _ -> ()
  end

(* A server that has not bound yet looks like ECONNREFUSED (tcp) or a
   missing socket file (unix); both clear on their own once it comes
   up, so they are the only refusals worth sleeping on — anything else
   (unroutable host, permission) will not improve with patience. *)
let transient_refusal = function
  | Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ECONNRESET | Unix.ENOENT), _, _) -> true
  | _ -> false

let connect ?(retries = 0) ?(backoff_s = 0.05) ep =
  if retries < 0 then invalid_arg "Transport.connect: retries must be non-negative";
  if backoff_s <= 0.0 then invalid_arg "Transport.connect: backoff must be positive";
  let raw () =
    let fd = Unix.socket (domain_of ep) Unix.SOCK_STREAM 0 in
    (try Unix.connect fd (sockaddr_of ep)
     with e ->
       Unix.close fd;
       raise e);
    connection_of_fd ~peer:(to_string ep) fd
  in
  let rec attempt left pause =
    match raw () with
    | c -> c
    | exception (Unix.Unix_error _ as e) when left > 0 && transient_refusal e ->
        Unix.sleepf pause;
        (* doubling backoff, capped: total wait stays bounded and the
           cheap early retries win most serve/connect races outright *)
        attempt (left - 1) (Float.min (pause *. 2.0) 0.5)
    | exception e -> wrap ep (fun () -> raise e)
  in
  attempt retries backoff_s

(* ic and oc are two views of one fd: close_out closes the fd, the
   close_in after it then fails harmlessly. *)
let close_connection c =
  (try flush c.oc with Sys_error _ -> ());
  (try close_out_noerr c.oc with Sys_error _ -> ());
  close_in_noerr c.ic

let with_connection ?retries ?backoff_s ep f =
  let c = connect ?retries ?backoff_s ep in
  Fun.protect ~finally:(fun () -> close_connection c) (fun () -> f c)
