(* Process-pool scheduling for sharded campaigns.  Everything that
   could differ between runs — which worker finishes first, which
   attempt of a shard succeeded — is kept out of the data path: results
   land in per-shard slots and merge in shard order. *)

type status = Exited of int | Signaled of int

type failure = {
  f_shard : int;
  f_attempt : int;
  f_status : status;
  f_log : string;
  f_reason : string;
}

(* OCaml signal numbers are internal (negative); name the common ones. *)
let signal_name s =
  if s = Sys.sigkill then "SIGKILL"
  else if s = Sys.sigterm then "SIGTERM"
  else if s = Sys.sigsegv then "SIGSEGV"
  else if s = Sys.sigabrt then "SIGABRT"
  else if s = Sys.sigint then "SIGINT"
  else if s = Sys.sigpipe then "SIGPIPE"
  else Printf.sprintf "signal %d" s

let describe_failure f =
  let status =
    match f.f_status with
    | Exited c -> Printf.sprintf "exit %d" c
    | Signaled s -> signal_name s
  in
  Printf.sprintf "shard %d attempt %d failed (%s): %s [log: %s]" f.f_shard f.f_attempt status f.f_reason f.f_log

type config = {
  max_inflight : int;
  retries : int;
  work_dir : string;
  command : shard:int -> attempt:int -> range:Shard.range -> out:string -> log:string -> string array;
}

type report = {
  results : Shard.result array;
  failures : failure list;
  retried : int;
}

type job = { j_shard : int; j_range : Shard.range; mutable j_attempt : int }

let out_path config shard = Filename.concat config.work_dir (Printf.sprintf "shard-%d.bin" shard)

let log_path config shard attempt =
  Filename.concat config.work_dir (Printf.sprintf "shard-%d-attempt-%d.log" shard attempt)

let spawn config job =
  let out = out_path config job.j_shard in
  (try Sys.remove out with Sys_error _ -> ());
  let log = log_path config job.j_shard job.j_attempt in
  let argv = config.command ~shard:job.j_shard ~attempt:job.j_attempt ~range:job.j_range ~out ~log in
  Traceio.Error.wrap_io log (fun () ->
      let logfd = Unix.openfile log [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
      let devnull = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
      Fun.protect
        ~finally:(fun () ->
          Unix.close logfd;
          Unix.close devnull)
        (fun () -> Unix.create_process argv.(0) argv devnull logfd logfd))

(* A finished worker's shard result, validated against what the job
   asked for — a worker writing the wrong slice is as much a failure
   as a crash. *)
let collect config job =
  let out = out_path config job.j_shard in
  match Shard.load out with
  | r ->
      if r.Shard.shard <> job.j_shard || r.Shard.range <> job.j_range then
        Error
          (Printf.sprintf "result file describes shard %d [%d,%d), expected shard %d [%d,%d)" r.Shard.shard
             r.Shard.range.Shard.lo r.Shard.range.Shard.hi job.j_shard job.j_range.Shard.lo job.j_range.Shard.hi)
      else Ok r
  | exception Traceio.Error.Corrupt msg -> Error msg
  | exception Traceio.Error.Io msg -> Error msg

let run config ~plan =
  if config.max_inflight <= 0 then invalid_arg "Orchestrator.run: max_inflight must be positive";
  if config.retries < 0 then invalid_arg "Orchestrator.run: retries must be non-negative";
  let slots : Shard.result option array = Array.make (Array.length plan) None in
  let queue = Queue.create () in
  Array.iteri
    (fun i (range : Shard.range) ->
      if range.Shard.hi > range.Shard.lo then Queue.add { j_shard = i; j_range = range; j_attempt = 0 } queue
      else slots.(i) <- Some { Shard.shard = i; range; corrupt_skipped = 0; results = [||] })
    plan;
  let running : (int, job) Hashtbl.t = Hashtbl.create 8 in
  let failures = ref [] in
  let retried = ref [] in
  let fatal = ref false in
  let fail job st reason =
    let f =
      {
        f_shard = job.j_shard;
        f_attempt = job.j_attempt;
        f_status = st;
        f_log = log_path config job.j_shard job.j_attempt;
        f_reason = reason;
      }
    in
    failures := f :: !failures;
    if job.j_attempt < config.retries then begin
      if not (List.mem job.j_shard !retried) then retried := job.j_shard :: !retried;
      job.j_attempt <- job.j_attempt + 1;
      Queue.add job queue
    end
    else fatal := true
  in
  let reap_one () =
    match Unix.wait () with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | pid, st -> (
        match Hashtbl.find_opt running pid with
        | None -> () (* not ours; nothing in this process spawns others *)
        | Some job -> (
            Hashtbl.remove running pid;
            match st with
            | Unix.WEXITED 0 -> (
                match collect config job with
                | Ok r -> slots.(job.j_shard) <- Some r
                | Error reason -> fail job (Exited 0) reason)
            | Unix.WEXITED c -> fail job (Exited c) "worker exited nonzero"
            | Unix.WSIGNALED s -> fail job (Signaled s) "worker killed by signal"
            | Unix.WSTOPPED _ -> Hashtbl.add running pid job (* not traced; keep waiting *)))
  in
  while (not !fatal) && (Queue.length queue > 0 || Hashtbl.length running > 0) do
    while (not !fatal) && Hashtbl.length running < config.max_inflight && Queue.length queue > 0 do
      let job = Queue.pop queue in
      let pid = spawn config job in
      Hashtbl.add running pid job
    done;
    if Hashtbl.length running > 0 then reap_one ()
  done;
  if !fatal then begin
    (* a shard is out of attempts: tear the rest of the fleet down *)
    Hashtbl.iter (fun pid _ -> try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ()) running;
    Hashtbl.iter
      (fun pid _ -> try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
      running;
    Error (List.rev !failures)
  end
  else
    Ok
      {
        results = Array.map (function Some r -> r | None -> assert false) slots;
        failures = List.rev !failures;
        retried = List.length !retried;
      }

(* --- work dirs ---------------------------------------------------------- *)

let fresh_work_dir ?(prefix = "reveal_fabric") () =
  let path = Filename.temp_file prefix "" in
  Sys.remove path;
  Unix.mkdir path 0o700;
  path

let rec remove_dir path =
  match Unix.lstat path with
  | exception Unix.Unix_error _ -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun entry -> remove_dir (Filename.concat path entry)) (Sys.readdir path);
      (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Sys.remove path with Sys_error _ -> ())
