(* Process-pool scheduling for sharded campaigns and fuzz batches.
   Everything that could differ between runs — which worker finishes
   first, which attempt of a job succeeded — is kept out of the data
   path: results land in per-job slots and consumers read them in job
   order.  The pool core is generic ([run_pool]); the shard campaign
   ([run]) is its oldest client, the triage fuzzer the newest. *)

type status = Exited of int | Signaled of int | Timed_out of float

type failure = {
  f_shard : int;
  f_attempt : int;
  f_status : status;
  f_log : string;
  f_reason : string;
}

(* OCaml signal numbers are internal (negative); name the common ones. *)
let signal_name s =
  if s = Sys.sigkill then "SIGKILL"
  else if s = Sys.sigterm then "SIGTERM"
  else if s = Sys.sigsegv then "SIGSEGV"
  else if s = Sys.sigabrt then "SIGABRT"
  else if s = Sys.sigint then "SIGINT"
  else if s = Sys.sigpipe then "SIGPIPE"
  else Printf.sprintf "signal %d" s

let status_to_string = function
  | Exited c -> Printf.sprintf "exit %d" c
  | Signaled s -> signal_name s
  | Timed_out t -> Printf.sprintf "timeout after %.1fs" t

let describe_failure f =
  Printf.sprintf "shard %d attempt %d failed (%s): %s [log: %s]" f.f_shard f.f_attempt
    (status_to_string f.f_status) f.f_reason f.f_log

(* --- the generic pool ---------------------------------------------------- *)

type 'a jobs = {
  job_count : int;
  command : job:int -> attempt:int -> out:string -> log:string -> string array;
  out_path : job:int -> string;
  log_path : job:int -> attempt:int -> string;
  collect : job:int -> out:string -> ('a, string) result;
}

type pool = {
  max_inflight : int;
  retries : int;
  timeout_s : float option;
  fail_fast : bool;
}

type 'a pool_report = {
  outcomes : ('a, failure list) result array;
  pool_failures : failure list;
  pool_retried : int;
  aborted : bool;
}

type job = { j_id : int; mutable j_attempt : int; mutable j_failures : failure list (* newest first *) }

type tracked = {
  tk_job : job;
  tk_deadline : float option;  (* absolute, when a timeout is armed *)
  tk_spawned : float;
  mutable tk_first_out : float option;  (* first time the result file had bytes *)
}

(* Post-mortem breadcrumbs appended to the attempt log when a worker
   settles: whether it ever produced its first result byte and when
   its log last moved distinguish "never started" from "wedged
   mid-run" when reading a Timed_out attempt. *)
let stamp_log jobs tk status_str =
  let job = tk.tk_job in
  let log = jobs.log_path ~job:job.j_id ~attempt:job.j_attempt in
  (* srclint: allow nondet-source post-mortem stamps are real wall-clock timings by design *)
  let now = Unix.gettimeofday () in
  let last_activity =
    match Unix.stat log with
    | st -> Printf.sprintf "%.3fs after spawn" (st.Unix.st_mtime -. tk.tk_spawned)
    | exception Unix.Unix_error _ -> "unknown"
  in
  let first_out =
    match tk.tk_first_out with
    | Some t -> Printf.sprintf "%.3fs after spawn" (t -. tk.tk_spawned)
    | None -> "never"
  in
  try
    let oc = open_out_gen [ Open_append; Open_creat ] 0o644 log in
    Printf.fprintf oc
      "orchestrator: attempt %d %s %.3fs after spawn; first result byte: %s; last log write: %s\n"
      job.j_attempt status_str (now -. tk.tk_spawned) first_out last_activity;
    close_out_noerr oc
  with Sys_error _ -> ()

let process_status_string = function
  | Unix.WEXITED c -> Printf.sprintf "exited %d" c
  | Unix.WSIGNALED s -> "killed by " ^ signal_name s
  | Unix.WSTOPPED s -> "stopped by " ^ signal_name s

let spawn jobs job =
  let out = jobs.out_path ~job:job.j_id in
  (try Sys.remove out with Sys_error _ -> ());
  let log = jobs.log_path ~job:job.j_id ~attempt:job.j_attempt in
  let argv = jobs.command ~job:job.j_id ~attempt:job.j_attempt ~out ~log in
  Traceio.Error.wrap_io log (fun () ->
      let logfd = Unix.openfile log [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
      let devnull = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
      Fun.protect
        ~finally:(fun () ->
          Unix.close logfd;
          Unix.close devnull)
        (fun () -> Unix.create_process argv.(0) argv devnull logfd logfd))

(* The poll interval trades reap latency against wakeups; worker
   processes live hundreds of milliseconds at least, so 10 ms of
   scheduling slack never dominates. *)
let poll_interval_s = 0.01

let run_pool ?(skip = fun (_ : int) -> None) pool jobs =
  if pool.max_inflight <= 0 then invalid_arg "Orchestrator.run_pool: max_inflight must be positive";
  if pool.retries < 0 then invalid_arg "Orchestrator.run_pool: retries must be non-negative";
  (match pool.timeout_s with
  | Some t when t <= 0.0 -> invalid_arg "Orchestrator.run_pool: timeout must be positive"
  | _ -> ());
  let outcomes : ('a, failure list) result array = Array.make jobs.job_count (Error []) in
  let queue = Queue.create () in
  for id = 0 to jobs.job_count - 1 do
    match skip id with
    | Some v -> outcomes.(id) <- Ok v
    | None -> Queue.add { j_id = id; j_attempt = 0; j_failures = [] } queue
  done;
  (* pid -> the job plus its post-mortem breadcrumbs: when it was
     spawned, when a timeout will fire, and when its result file first
     grew a byte (polled during reap passes) *)
  let running : (int, tracked) Hashtbl.t = Hashtbl.create 8 in
  let failures = ref [] in
  let retried = ref [] in
  let aborted = ref false in
  let fail job st reason =
    let f =
      {
        f_shard = job.j_id;
        f_attempt = job.j_attempt;
        f_status = st;
        f_log = jobs.log_path ~job:job.j_id ~attempt:job.j_attempt;
        f_reason = reason;
      }
    in
    failures := f :: !failures;
    job.j_failures <- f :: job.j_failures;
    if job.j_attempt < pool.retries then begin
      if not (List.mem job.j_id !retried) then retried := job.j_id :: !retried;
      job.j_attempt <- job.j_attempt + 1;
      Queue.add job queue
    end
    else begin
      outcomes.(job.j_id) <- Error (List.rev job.j_failures);
      if pool.fail_fast then aborted := true
    end
  in
  let settle job st reason =
    match st with
    | Unix.WEXITED 0 -> (
        match jobs.collect ~job:job.j_id ~out:(jobs.out_path ~job:job.j_id) with
        | Ok v -> outcomes.(job.j_id) <- Ok v
        | Error msg -> fail job (Exited 0) msg
        | exception Traceio.Error.Corrupt msg -> fail job (Exited 0) msg
        | exception Traceio.Error.Io msg -> fail job (Exited 0) msg)
    | Unix.WEXITED c -> fail job (Exited c) reason
    | Unix.WSIGNALED s -> fail job (Signaled s) reason
    | Unix.WSTOPPED _ -> () (* not traced: never reported without WUNTRACED *)
  in
  (* One reap pass: harvest every worker that already exited, then kill
     any that blew their deadline.  Returns true when at least one pid
     was settled (so the scheduler loop only sleeps when truly idle). *)
  let reap_pass () =
    let settled = ref false in
    (* Reap in pid order, not hash order: which worker's failure trips
       fail-fast first must not depend on table layout. *)
    let pids =
      Hashtbl.fold (fun pid entry acc -> (pid, entry) :: acc) running []
      |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
    in
    List.iter
      (fun (pid, tk) ->
        match Unix.waitpid [ Unix.WNOHANG ] pid with
        | 0, _ -> (
            (if tk.tk_first_out = None then
               match Unix.stat (jobs.out_path ~job:tk.tk_job.j_id) with
               | st when st.Unix.st_size > 0 ->
                   (* srclint: allow nondet-source first-byte stamps are real wall-clock timings by design *)
                   tk.tk_first_out <- Some (Unix.gettimeofday ())
               | _ | (exception Unix.Unix_error _) -> ());
            match tk.tk_deadline with
            (* srclint: allow nondet-source worker deadlines are real wall-clock time by design *)
            | Some d when Unix.gettimeofday () > d ->
                (* hung worker: SIGTERM first — the grace window is what
                   lets a worker's flight recorder dump its final
                   moments — then SIGKILL, reap synchronously, charge
                   the retry budget with a typed timeout failure *)
                (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
                let rec grace tries =
                  match Unix.waitpid [ Unix.WNOHANG ] pid with
                  | 0, _ when tries > 0 ->
                      Unix.sleepf 0.02;
                      grace (tries - 1)
                  | 0, _ ->
                      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
                      (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
                  | _, _ -> ()
                  | exception Unix.Unix_error (Unix.EINTR, _, _) -> grace tries
                in
                grace 25;
                Hashtbl.remove running pid;
                settled := true;
                let t = match pool.timeout_s with Some t -> t | None -> 0.0 in
                stamp_log jobs tk "timed out and was killed";
                fail tk.tk_job (Timed_out t) "worker exceeded its wall-clock budget"
            | _ -> ())
        | _, st ->
            Hashtbl.remove running pid;
            settled := true;
            stamp_log jobs tk (process_status_string st);
            settle tk.tk_job st
              (match st with
              | Unix.WEXITED _ -> "worker exited nonzero"
              | _ -> "worker killed by signal")
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
      pids;
    !settled
  in
  while (not !aborted) && (Queue.length queue > 0 || Hashtbl.length running > 0) do
    while (not !aborted) && Hashtbl.length running < pool.max_inflight && Queue.length queue > 0 do
      let job = Queue.pop queue in
      let pid = spawn jobs job in
      (* srclint: allow nondet-source worker deadlines are real wall-clock time by design *)
      let now = Unix.gettimeofday () in
      let deadline = Option.map (fun t -> now +. t) pool.timeout_s in
      Hashtbl.add running pid { tk_job = job; tk_deadline = deadline; tk_spawned = now; tk_first_out = None }
    done;
    if Hashtbl.length running > 0 && not (reap_pass ()) then Unix.sleepf poll_interval_s
  done;
  if !aborted then begin
    (* fail-fast tripped: tear the rest of the fleet down *)
    let doomed = Hashtbl.fold (fun pid _ acc -> pid :: acc) running [] |> List.sort Int.compare in
    List.iter (fun pid -> try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ()) doomed;
    List.iter (fun pid -> try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()) doomed
  end;
  {
    outcomes;
    pool_failures = List.rev !failures;
    pool_retried = List.length !retried;
    aborted = !aborted;
  }

(* --- the shard campaign client ------------------------------------------- *)

type config = {
  max_inflight : int;
  retries : int;
  timeout_s : float option;
  work_dir : string;
  command : shard:int -> attempt:int -> range:Shard.range -> out:string -> log:string -> string array;
}

type report = {
  results : Shard.result array;
  failures : failure list;
  retried : int;
}

let out_path config shard = Filename.concat config.work_dir (Printf.sprintf "shard-%d.bin" shard)

let log_path config shard attempt =
  Filename.concat config.work_dir (Printf.sprintf "shard-%d-attempt-%d.log" shard attempt)

(* A finished worker's shard result, validated against what the job
   asked for — a worker writing the wrong slice is as much a failure
   as a crash. *)
let collect_shard plan ~job ~out =
  let range = plan.(job) in
  match Shard.load out with
  | r ->
      if r.Shard.shard <> job || r.Shard.range <> range then
        Error
          (Printf.sprintf "result file describes shard %d [%d,%d), expected shard %d [%d,%d)" r.Shard.shard
             r.Shard.range.Shard.lo r.Shard.range.Shard.hi job range.Shard.lo range.Shard.hi)
      else Ok r
  | exception Traceio.Error.Corrupt msg -> Error msg
  | exception Traceio.Error.Io msg -> Error msg

let run config ~plan =
  if config.max_inflight <= 0 then invalid_arg "Orchestrator.run: max_inflight must be positive";
  if config.retries < 0 then invalid_arg "Orchestrator.run: retries must be non-negative";
  let jobs =
    {
      job_count = Array.length plan;
      command =
        (fun ~job ~attempt ~out ~log -> config.command ~shard:job ~attempt ~range:plan.(job) ~out ~log);
      out_path = (fun ~job -> out_path config job);
      log_path = (fun ~job ~attempt -> log_path config job attempt);
      collect = collect_shard plan;
    }
  in
  let pool =
    {
      max_inflight = config.max_inflight;
      retries = config.retries;
      timeout_s = config.timeout_s;
      fail_fast = true;
    }
  in
  let skip id =
    let range = plan.(id) in
    if range.Shard.hi > range.Shard.lo then None
    else Some { Shard.shard = id; range; corrupt_skipped = 0; results = [||] }
  in
  let r = run_pool ~skip pool jobs in
  if r.aborted then Error r.pool_failures
  else
    Ok
      {
        results = Array.map (function Ok x -> x | Error _ -> assert false) r.outcomes;
        failures = r.pool_failures;
        retried = r.pool_retried;
      }

(* --- work dirs ---------------------------------------------------------- *)

let fresh_work_dir ?(prefix = "reveal_fabric") () =
  let path = Filename.temp_file prefix "" in
  Sys.remove path;
  Unix.mkdir path 0o700;
  path

let rec remove_dir path =
  match Unix.lstat path with
  | exception Unix.Unix_error _ -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun entry -> remove_dir (Filename.concat path entry)) (Sys.readdir path);
      (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Sys.remove path with Sys_error _ -> ())
