(** Fleet telemetry aggregation: per-worker {!Traceio.Wire} telemetry
    streams folded into {!Obs.Summary} values, plus the pure
    straggler / missed-heartbeat heuristics over the drained reports.

    The aggregation is deliberately the same fold [obs merge] performs
    over the workers' JSONL files: each stream carries the file's
    exact line sequence (the worker tees one sink to both), and
    {!merge_reports} merges in sorted source order — so a live
    monitor's end-of-run summary is bit-identical to the post-hoc
    merge.  Backs [reveal monitor]; run by the orchestrating process,
    in-process. *)

type report = {
  r_name : string;  (** the start record's ["source"], else the peer label *)
  r_source : string option;
  r_summary : Obs.Summary.t;
  r_skipped : int;  (** slots lost to CRC damage + unparseable lines *)
  r_heartbeats : int;
  r_done : int;  (** last heartbeat's coefficient count *)
  r_total : int option;  (** last heartbeat's expected total, when known *)
  r_first_hb : float option;  (** stream-clock times of first/last heartbeat *)
  r_last_hb : float option;
  r_last_t : float option;  (** time of the last record of any kind *)
  r_truncated : string option;  (** the Corrupt message when the stream was cut *)
}

val heartbeat_event : string
(** The event name campaigns emit per batch: ["campaign.heartbeat"]. *)

val drain :
  ?strict:bool ->
  ?on_heartbeat:(source:string -> done_:int -> total:int option -> t:float -> unit) ->
  peer:string ->
  in_channel ->
  report
(** Read one telemetry stream to its end frame, folding every line
    into a summary.  [on_heartbeat] fires per heartbeat with the
    worker's best-known name — the live progress feed.  Tolerant by
    default: CRC-skipped slots and unparseable lines are counted in
    [r_skipped], and a connection cut mid-stream yields a partial
    report with [r_truncated] set (a dead worker is a finding, not an
    error).  [~strict:true] raises {!Traceio.Error.Corrupt} for all of
    these instead.  Does not close the channel. *)

val merge_reports : report list -> Obs.Summary.t option
(** Merge summaries in sorted [r_name] order — the [obs merge] fold.
    [None] on an empty list. *)

val default_straggler_factor : float
(** 0.5: flagged when under half the fleet median rate. *)

val stragglers : ?factor:float -> (string * int * float) list -> string list
(** [(name, done, elapsed)] per worker; returns (sorted) names whose
    [done/elapsed] rate is below [factor] x the fleet median rate
    (upper median of the sorted rates).  Fleets of fewer than two
    workers have no stragglers.  Pure and deterministic. *)

val missed_heartbeats : report -> bool
(** True when a non-empty stream carried no heartbeat at all, or when
    the stream continued past the last heartbeat by more than twice
    the observed mean heartbeat interval (at least two heartbeats
    needed to estimate the cadence). *)
