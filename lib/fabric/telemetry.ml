(* The fleet aggregator: drain per-worker telemetry streams
   (Traceio.Wire 'T' frames, one obs JSONL line each) into
   Obs.Summary folds, then merge them in source order — the exact
   fold [obs merge] performs over the workers' JSONL files, so the
   live end-of-run summary is bit-identical to the post-hoc one.
   Straggler and missed-heartbeat detection are pure functions over
   the drained reports, kept separate from I/O so they unit-test
   deterministically. *)

type report = {
  r_name : string;  (* the start record's "source", else the peer label *)
  r_source : string option;
  r_summary : Obs.Summary.t;
  r_skipped : int;
  r_heartbeats : int;
  r_done : int;
  r_total : int option;
  r_first_hb : float option;
  r_last_hb : float option;
  r_last_t : float option;
  r_truncated : string option;
}

let heartbeat_event = "campaign.heartbeat"

let get_float j key = Option.bind (Obs.Json.member key j) Obs.Json.to_float_opt
let get_string j key = Option.bind (Obs.Json.member key j) Obs.Json.to_string_opt
let get_int j key = Option.bind (Obs.Json.member key j) Obs.Json.to_int_opt

let drain ?(strict = false) ?on_heartbeat ~peer ic =
  let recv = Traceio.Wire.open_telemetry_receiver ~strict ~peer ic in
  let st = Obs.Summary.state_create () in
  let source = ref None in
  let parse_skipped = ref 0 in
  let heartbeats = ref 0 in
  let done_ = ref 0 in
  let total = ref None in
  let first_hb = ref None in
  let last_hb = ref None in
  let last_t = ref None in
  let truncated = ref None in
  let name () = match !source with Some s -> s | None -> peer in
  let fold_line line =
    match Obs.Json.parse line with
    | Error msg ->
        if strict then Traceio.Error.corruptf "%s: telemetry line: %s" peer msg
        else incr parse_skipped
    | Ok j -> (
        match Obs.Summary.state_add st j with
        | exception Obs.Summary.Malformed msg ->
            if strict then Traceio.Error.corruptf "%s: %s" peer msg else incr parse_skipped
        | () ->
            (match get_float j "t" with Some t -> last_t := Some t | None -> ());
            (match get_string j "ev" with
            | Some "start" -> ( match get_string j "source" with Some s -> source := Some s | None -> ())
            | Some "event" when get_string j "name" = Some heartbeat_event -> (
                incr heartbeats;
                let attrs = Option.value ~default:Obs.Json.Null (Obs.Json.member "attrs" j) in
                (match get_int attrs "done" with Some d -> done_ := d | None -> ());
                (match get_int attrs "total" with Some tt -> total := Some tt | None -> ());
                match get_float j "t" with
                | Some t ->
                    if !first_hb = None then first_hb := Some t;
                    last_hb := Some t;
                    let cb = match on_heartbeat with Some f -> f | None -> fun ~source:_ ~done_:_ ~total:_ ~t:_ -> () in
                    cb ~source:(name ()) ~done_:!done_ ~total:!total ~t
                | None -> ())
            | _ -> ()))
  in
  let rec loop () =
    match Traceio.Wire.telemetry_recv recv with
    | `End_of_stream -> ()
    | `Skipped _ -> loop ()
    | `Line line ->
        fold_line line;
        loop ()
    | exception Traceio.Error.Corrupt msg when not strict ->
        (* a worker that died mid-stream is exactly what a monitor is
           for: keep its partial summary and record how it ended *)
        truncated := Some msg
  in
  loop ();
  {
    r_name = name ();
    r_source = !source;
    r_summary = Obs.Summary.state_finish st;
    r_skipped = Traceio.Wire.telemetry_skipped recv + !parse_skipped;
    r_heartbeats = !heartbeats;
    r_done = !done_;
    r_total = !total;
    r_first_hb = !first_hb;
    r_last_hb = !last_hb;
    r_last_t = !last_t;
    r_truncated = !truncated;
  }

(* Merge in name order — the same left-to-right fold over the same
   ordering [obs merge] uses on sorted per-worker filenames, so the
   float additions associate identically. *)
let merge_reports reports =
  match List.sort (fun a b -> compare a.r_name b.r_name) reports with
  | [] -> None
  | first :: rest -> Some (List.fold_left (fun acc r -> Obs.Summary.merge acc r.r_summary) first.r_summary rest)

(* --- fleet health ----------------------------------------------------------- *)

let default_straggler_factor = 0.5

(* Rate = done/elapsed per worker; a worker under [factor] x the fleet
   median rate is a straggler.  Median is the upper median of the
   sorted rates (deterministic, no averaging), and a fleet of one has
   no peers to lag behind. *)
let stragglers ?(factor = default_straggler_factor) workers =
  match workers with
  | [] | [ _ ] -> []
  | _ ->
      let rate (_, d, elapsed) =
        if elapsed > 0.0 then float_of_int d /. elapsed
        else if d > 0 then Float.infinity
        else 0.0
      in
      let rates = List.sort compare (List.map rate workers) in
      let median = List.nth rates (List.length rates / 2) in
      List.filter_map
        (fun ((name, _, _) as w) -> if rate w < factor *. median then Some name else None)
        workers
      |> List.sort compare

(* A report misses heartbeats when it never sent one, or when the
   stream kept going past the last heartbeat by more than twice the
   observed mean heartbeat interval (needs at least two heartbeats to
   know the cadence). *)
let missed_heartbeats r =
  if r.r_heartbeats = 0 then r.r_summary.Obs.Summary.records > 0
  else
    match (r.r_last_hb, r.r_last_t) with
    | Some hb, Some t when r.r_heartbeats >= 2 -> (
        match (r.r_first_hb, ()) with
        | Some first, () ->
            let mean = (hb -. first) /. float_of_int (r.r_heartbeats - 1) in
            mean > 0.0 && t -. hb > 2.0 *. mean
        | None, () -> false)
    | _ -> false
