(* Shard planning and the result file a worker hands back.  The codec
   mirrors the profile cache: svarints for small signed fields, f64
   bit patterns for posteriors, one CRC frame around the lot. *)

let magic = "REVEALSH"
let version = 1

type range = { lo : int; hi : int }

let plan ~traces ~workers =
  if workers <= 0 then invalid_arg "Shard.plan: workers must be positive";
  if traces < 0 then invalid_arg "Shard.plan: negative trace count";
  let base = traces / workers and extra = traces mod workers in
  Array.init workers (fun i ->
      let lo = (i * base) + min i extra in
      let hi = lo + base + (if i < extra then 1 else 0) in
      { lo; hi })

type result = {
  shard : int;
  range : range;
  corrupt_skipped : int;
  results : Reveal.Campaign.coefficient_result array;
}

(* --- codec -------------------------------------------------------------- *)

let grade_code = function
  | Reveal.Campaign.Confident -> 0
  | Reveal.Campaign.Tentative -> 1
  | Reveal.Campaign.SignOnly -> 2
  | Reveal.Campaign.Unknown -> 3

let grade_of_code ~path = function
  | 0 -> Reveal.Campaign.Confident
  | 1 -> Reveal.Campaign.Tentative
  | 2 -> Reveal.Campaign.SignOnly
  | 3 -> Reveal.Campaign.Unknown
  | c -> Traceio.Error.corruptf "%s: unknown grade code %d" path c

let put_pairs b pairs =
  Traceio.Binio.put_varint b (Int64.of_int (Array.length pairs));
  Array.iter
    (fun (v, p) ->
      Traceio.Binio.put_svarint b (Int64.of_int v);
      Traceio.Binio.put_f64 b p)
    pairs

let get_pairs c =
  let len = Traceio.Binio.get_varint_int c in
  Array.init len (fun _ ->
      let v = Int64.to_int (Traceio.Binio.get_svarint c) in
      let p = Traceio.Binio.get_f64 c in
      (v, p))

let put_result b (r : Reveal.Campaign.coefficient_result) =
  Traceio.Binio.put_svarint b (Int64.of_int r.actual);
  Traceio.Binio.put_svarint b (Int64.of_int r.verdict.Sca.Attack.sign);
  Traceio.Binio.put_svarint b (Int64.of_int r.verdict.Sca.Attack.value);
  put_pairs b r.verdict.Sca.Attack.posterior;
  put_pairs b r.posterior_all;
  Traceio.Binio.put_u8 b (grade_code r.grade);
  match r.recovery with
  | Reveal.Campaign.Clean -> Traceio.Binio.put_u8 b 0
  | Reveal.Campaign.Retried k ->
      Traceio.Binio.put_u8 b 1;
      Traceio.Binio.put_varint b (Int64.of_int k)
  | Reveal.Campaign.Unrecoverable -> Traceio.Binio.put_u8 b 2

let get_result ~path c =
  let actual = Int64.to_int (Traceio.Binio.get_svarint c) in
  let sign = Int64.to_int (Traceio.Binio.get_svarint c) in
  let value = Int64.to_int (Traceio.Binio.get_svarint c) in
  let posterior = get_pairs c in
  let posterior_all = get_pairs c in
  let grade = grade_of_code ~path (Traceio.Binio.get_u8 c) in
  let recovery =
    match Traceio.Binio.get_u8 c with
    | 0 -> Reveal.Campaign.Clean
    | 1 -> Reveal.Campaign.Retried (Traceio.Binio.get_varint_int c)
    | 2 -> Reveal.Campaign.Unrecoverable
    | k -> Traceio.Error.corruptf "%s: unknown recovery code %d" path k
  in
  {
    Reveal.Campaign.actual;
    verdict = { Sca.Attack.sign; value; posterior };
    posterior_all;
    grade;
    recovery;
  }

let result_payload r =
  let b = Buffer.create 4096 in
  Traceio.Binio.put_varint b (Int64.of_int r.shard);
  Traceio.Binio.put_varint b (Int64.of_int r.range.lo);
  Traceio.Binio.put_varint b (Int64.of_int r.range.hi);
  Traceio.Binio.put_varint b (Int64.of_int r.corrupt_skipped);
  Traceio.Binio.put_varint b (Int64.of_int (Array.length r.results));
  Array.iter (put_result b) r.results;
  Buffer.contents b

let result_of_payload ~path payload =
  let c = Traceio.Binio.cursor ~name:path payload in
  let shard = Traceio.Binio.get_varint_int c in
  let lo = Traceio.Binio.get_varint_int c in
  let hi = Traceio.Binio.get_varint_int c in
  let corrupt_skipped = Traceio.Binio.get_varint_int c in
  if hi < lo then Traceio.Error.corruptf "%s: shard range [%d,%d) is inverted" path lo hi;
  let len = Traceio.Binio.get_varint_int c in
  let results = Array.init len (fun _ -> get_result ~path c) in
  Traceio.Binio.expect_end c;
  { shard; range = { lo; hi }; corrupt_skipped; results }

let save path r =
  let oc = Traceio.Error.open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      Traceio.Error.wrap_io path (fun () ->
          output_string oc magic;
          output_string oc (String.init 2 (fun i -> Char.chr ((version lsr (8 * i)) land 0xFF))));
      Traceio.Frame.write ~path oc (result_payload r))

let load path =
  let ic = Traceio.Error.open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let m = Traceio.Error.wrap_io path (fun () -> really_input_string ic (String.length magic)) in
      if m <> magic then
        Traceio.Error.corruptf "%s: not a shard result file (magic %S, expected %S)" path m magic;
      let v = Traceio.Error.wrap_io path (fun () -> really_input_string ic 2) in
      let v = Char.code v.[0] lor (Char.code v.[1] lsl 8) in
      if v <> version then
        Traceio.Error.corruptf "%s: unsupported shard result version %d (this build reads version %d)" path v
          version;
      let payload =
        match Traceio.Frame.read ~path ic with
        | None -> Traceio.Error.corruptf "%s: missing result frame" path
        | Some p -> p
      in
      (match Traceio.Frame.read ~path ic with
      | None -> ()
      | Some _ -> Traceio.Error.corruptf "%s: trailing data after the result frame" path);
      result_of_payload ~path payload)

(* --- merge -------------------------------------------------------------- *)

let merge prof results =
  let sorted = List.sort (fun a b -> compare a.shard b.shard) results in
  let rec check expect_shard expect_lo = function
    | [] -> Ok ()
    | r :: rest ->
        if r.shard <> expect_shard then
          Error
            (if r.shard < expect_shard then Printf.sprintf "duplicate result for shard %d" r.shard
             else Printf.sprintf "missing result for shard %d" expect_shard)
        else if r.range.lo <> expect_lo then
          Error
            (Printf.sprintf "shard %d covers [%d,%d) but the previous shard ended at %d — gap or overlap" r.shard
               r.range.lo r.range.hi expect_lo)
        else check (expect_shard + 1) r.range.hi rest
  in
  match check 0 0 sorted with
  | Error _ as e -> e
  | Ok () ->
      let merged = Array.concat (List.map (fun r -> r.results) sorted) in
      let corrupt_skipped = List.fold_left (fun acc r -> acc + r.corrupt_skipped) 0 sorted in
      Ok (Reveal.Campaign.stats_of_results ~corrupt_skipped prof merged, merged)
