(** The shard orchestrator: fork/exec one worker process per shard,
    bounded in-flight, retry crashed shards, collect result files.

    The orchestrator owns scheduling only — which worker runs when has
    no way to reach the output, because every worker derives its slice
    of the campaign from the shared seed and {!Shard.merge} orders by
    shard id.  A worker that exits nonzero, dies on a signal, or
    leaves a missing/corrupt result file produces a typed {!failure}
    record and its shard is re-run, up to [retries] extra attempts;
    only when a shard exhausts its budget does the run fail (remaining
    workers are killed and reaped). *)

type status = Exited of int | Signaled of int

type failure = {
  f_shard : int;
  f_attempt : int;  (** 0-based *)
  f_status : status;
  f_log : string;  (** the attempt's captured stdout+stderr *)
  f_reason : string;
}

val describe_failure : failure -> string

type config = {
  max_inflight : int;  (** concurrent worker processes *)
  retries : int;  (** extra attempts per shard after the first *)
  work_dir : string;  (** result files and per-attempt logs live here *)
  command : shard:int -> attempt:int -> range:Shard.range -> out:string -> log:string -> string array;
      (** argv for one attempt; [out] is where the worker must write
          its {!Shard.result} file, [log] is informational (where this
          attempt's output is being captured) *)
}

type report = {
  results : Shard.result array;  (** one per plan entry, in shard order *)
  failures : failure list;  (** every failed attempt, including recovered ones, oldest first *)
  retried : int;  (** shards that needed more than one attempt *)
}

val run : config -> plan:Shard.range array -> (report, failure list) Stdlib.result
(** Execute the plan.  Empty ranges are satisfied without spawning a
    process.  [Error] carries every failure, the fatal one last.
    Workers run with stdin from [/dev/null] and stdout+stderr captured
    to [work_dir/shard-N-attempt-K.log].
    @raise Invalid_argument when [max_inflight <= 0] or [retries < 0].
    @raise Traceio.Error.Io when the work dir or a log cannot be
    written. *)

val fresh_work_dir : ?prefix:string -> unit -> string
(** Create a private directory under the system temp dir. *)

val remove_dir : string -> unit
(** Recursively delete a work dir (best effort; symlinks not
    followed). *)
