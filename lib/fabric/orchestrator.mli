(** The worker-process orchestrator: fork/exec one process per job,
    bounded in-flight, retry crashed jobs, collect result files.

    The orchestrator owns scheduling only — which worker runs when has
    no way to reach the output, because every consumer reads results
    in job order from per-job slots.  A worker that exits nonzero,
    dies on a signal, leaves a missing/corrupt result file, or — with
    a timeout armed — outlives its wall-clock budget produces a typed
    {!failure} record and its job is re-run, up to [retries] extra
    attempts.

    Two clients share the pool core: the sharded campaign ({!run},
    fail-fast — one exhausted shard kills the fleet) and the triage
    fuzzer ({!run_pool} with [fail_fast = false] — an exhausted trial
    is a verdict, not a fatality). *)

type status =
  | Exited of int
  | Signaled of int
  | Timed_out of float  (** killed after this many seconds of wall clock *)

type failure = {
  f_shard : int;  (** job id (shard position for campaign runs) *)
  f_attempt : int;  (** 0-based *)
  f_status : status;
  f_log : string;  (** the attempt's captured stdout+stderr *)
  f_reason : string;
}

val describe_failure : failure -> string
val status_to_string : status -> string

(** {1 The generic pool} *)

type 'a jobs = {
  job_count : int;
  command : job:int -> attempt:int -> out:string -> log:string -> string array;
      (** argv for one attempt; [out] is where the worker must write
          its result file, [log] where this attempt's output is being
          captured (informational) *)
  out_path : job:int -> string;
  log_path : job:int -> attempt:int -> string;
  collect : job:int -> out:string -> ('a, string) result;
      (** validate and decode a finished worker's result file;
          [Error]/raised {!Traceio.Error} count as a failed attempt *)
}

type pool = {
  max_inflight : int;  (** concurrent worker processes *)
  retries : int;  (** extra attempts per job after the first *)
  timeout_s : float option;
      (** wall-clock budget per attempt; a worker that outlives it is
          sent SIGTERM (a short grace window lets its flight recorder
          dump the final moments), SIGKILLed if it lingers, and charged
          a {!Timed_out} failure against the job's retry budget — a
          hung worker can never stall the pool forever *)
  fail_fast : bool;
      (** [true]: the first job to exhaust its budget aborts the pool
          (remaining workers are killed and reaped).  [false]: every
          job runs to a resolution and exhausted jobs surface as
          [Error] slots. *)
}

type 'a pool_report = {
  outcomes : ('a, failure list) result array;
      (** one slot per job, in job order; [Error] carries that job's
          failed attempts oldest-first (empty for jobs never started
          because an abort tripped first) *)
  pool_failures : failure list;  (** every failed attempt, including recovered ones, oldest first *)
  pool_retried : int;  (** jobs that needed more than one attempt *)
  aborted : bool;  (** a fail-fast pool stopped before resolving every job *)
}

val run_pool : ?skip:(int -> 'a option) -> pool -> 'a jobs -> 'a pool_report
(** Execute the jobs.  [skip id = Some v] satisfies job [id] with [v]
    without spawning a process (empty shard ranges, cached trials).
    Workers run with stdin from [/dev/null] and stdout+stderr captured
    to the attempt's log file.  When an attempt settles (exit, signal
    or timeout) the pool appends an [orchestrator:] stamp line to that
    log recording how long the worker ran, when its result file first
    had bytes ("never" for a worker that made no progress) and when
    its log last moved — the post-mortem breadcrumbs for {!Timed_out}
    attempts.
    @raise Invalid_argument when [max_inflight <= 0], [retries < 0] or
    [timeout_s <= 0].
    @raise Traceio.Error.Io when a log cannot be written. *)

(** {1 The sharded-campaign client} *)

type config = {
  max_inflight : int;  (** concurrent worker processes *)
  retries : int;  (** extra attempts per shard after the first *)
  timeout_s : float option;  (** per-attempt wall-clock budget (see {!pool.timeout_s}) *)
  work_dir : string;  (** result files and per-attempt logs live here *)
  command : shard:int -> attempt:int -> range:Shard.range -> out:string -> log:string -> string array;
      (** argv for one attempt; [out] is where the worker must write
          its {!Shard.result} file *)
}

type report = {
  results : Shard.result array;  (** one per plan entry, in shard order *)
  failures : failure list;  (** every failed attempt, including recovered ones, oldest first *)
  retried : int;  (** shards that needed more than one attempt *)
}

val run : config -> plan:Shard.range array -> (report, failure list) Stdlib.result
(** Execute the plan through a fail-fast {!run_pool}.  Empty ranges
    are satisfied without spawning a process.  [Error] carries every
    failure, the fatal one last.
    @raise Invalid_argument when [max_inflight <= 0] or [retries < 0]. *)

val fresh_work_dir : ?prefix:string -> unit -> string
(** Create a private directory under the system temp dir. *)

val remove_dir : string -> unit
(** Recursively delete a work dir (best effort; symlinks not
    followed). *)
