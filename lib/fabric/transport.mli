(** Byte transports for the distributed campaign fabric.

    A transport is only a way to get a connected byte pipe — the
    protocol spoken over it is {!Traceio.Wire}, which is written
    against plain channels.  Two transports cover the fabric's needs:
    Unix-domain sockets (loopback worker fleets, tests) and TCP
    (remote acquisition hosts).  Adding a transport means adding an
    {!endpoint} constructor and its [listen]/[connect] arms; nothing
    in the wire protocol or the orchestrator changes (DESIGN.md
    section 13).

    Operating-system failures surface as {!Traceio.Error.Io} carrying
    the endpoint string, mirroring the file container's discipline. *)

type endpoint =
  | Unix_socket of string  (** filesystem path *)
  | Tcp of string * int  (** host (name or dotted quad), port *)

val parse : string -> (endpoint, string) result
(** ["unix:PATH"] or ["tcp:HOST:PORT"]. *)

val to_string : endpoint -> string
(** Round-trips with {!parse}. *)

type connection = {
  ic : in_channel;
  oc : out_channel;  (** both views of the one socket *)
  peer : string;  (** label for errors and obs attrs *)
}

type listener

val listen : ?backlog:int -> endpoint -> listener
(** Bind and listen.  A stale Unix-socket file at the path is
    unlinked first (the bind would otherwise fail forever).
    @raise Traceio.Error.Io on any OS refusal. *)

val accept : listener -> connection
(** Block for the next client. *)

val close_listener : listener -> unit
(** Idempotent; also unlinks a Unix socket's path. *)

val connect : ?retries:int -> ?backoff_s:float -> endpoint -> connection
(** Connect, optionally riding out a serve/connect race: a transient
    refusal (connection refused/reset, socket file not there yet) is
    retried up to [retries] extra times with a doubling backoff that
    starts at [backoff_s] (default 0.05 s) and caps at 0.5 s per wait.
    The default [retries = 0] preserves the old fail-immediately
    behaviour.  Non-transient failures never retry.
    @raise Traceio.Error.Io when the peer is (still) not there.
    @raise Invalid_argument when [retries < 0] or [backoff_s <= 0]. *)

val close_connection : connection -> unit
(** Flush and close both channel views.  Idempotent in effect (double
    close is swallowed). *)

val with_connection : ?retries:int -> ?backoff_s:float -> endpoint -> (connection -> 'a) -> 'a
(** [connect], run, close — also on exceptions. *)
