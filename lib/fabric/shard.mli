(** Campaign partitioning and the per-shard result container.

    A shard is a half-open slice [\[lo,hi)] of the campaign's trace
    index space.  Because {!Reveal.Source.device_live_range} draws the
    full campaign seed table whatever slice it serves, per-trace
    results are identical however the campaign is partitioned, and
    {!merge} — concatenate slices in trace order, re-tally — is
    bit-identical to the single-process run (DESIGN.md section 13).

    Results cross the process boundary in a CRC-framed container
    (magic ["REVEALSH"], u16 version, one {!Traceio.Frame}), with the
    same corruption discipline as the profile cache: any truncation or
    bit flip loads loudly as {!Traceio.Error.Corrupt}, never as
    plausible numbers.  Floats travel as IEEE-754 bit patterns, so a
    decoded result is bit-identical to the worker's. *)

type range = { lo : int; hi : int }

val plan : traces:int -> workers:int -> range array
(** Contiguous cover of [\[0,traces)] by [workers] ranges, in order,
    sizes differing by at most one (the first [traces mod workers]
    shards get the extra trace).  Deterministic in its arguments.
    Ranges may be empty when [workers > traces].
    @raise Invalid_argument when [workers <= 0] or [traces < 0]. *)

type result = {
  shard : int;  (** position in the plan *)
  range : range;
  corrupt_skipped : int;  (** source records the worker's replay dropped *)
  results : Reveal.Campaign.coefficient_result array;  (** traces [lo..hi-1], in trace order *)
}

val result_payload : result -> string
val result_of_payload : path:string -> string -> result
(** @raise Traceio.Error.Corrupt when the payload does not decode. *)

val save : string -> result -> unit
val load : string -> result
(** @raise Traceio.Error.Corrupt on bad magic/version/checksum,
    truncation or trailing data; {!Traceio.Error.Io} when unreadable. *)

val merge :
  Reveal.Campaign.profile ->
  result list ->
  (Reveal.Campaign.stats * Reveal.Campaign.coefficient_result array, string) Stdlib.result
(** Deterministic merge: sort by shard id, check the ranges tile an
    initial segment [\[0,hi)] without gap, overlap or duplicate,
    concatenate the result slices in trace order and rebuild the
    aggregates with {!Reveal.Campaign.stats_of_results} (corrupt
    counts summed).  Scheduling order of the workers cannot influence
    the output. *)
