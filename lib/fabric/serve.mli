(** The producing side of a remote trace source: push records down a
    connection with {!Traceio.Wire}.  The consuming side is
    {!Reveal.Source.remote}. *)

val records : ?obs:Obs.Ctx.t -> Transport.connection -> header:Traceio.Archive.header -> Traceio.Archive.record array -> int
(** Stream an in-memory record set (header's [trace_count] is sent
    as-is; records are re-indexed in send order).  Returns the count
    streamed.  The connection stays open — close it after. *)

val archive : ?obs:Obs.Ctx.t -> Transport.connection -> path:string -> int
(** Stream an on-disk archive, tolerantly: records that fail their CRC
    on disk are dropped (counted in the [obs] registry by the reader)
    and the survivors are re-indexed densely on the wire.  Returns the
    count streamed.
    @raise Traceio.Error.Corrupt when the archive is structurally
    damaged. *)

val archive_once : ?obs:Obs.Ctx.t -> Transport.listener -> path:string -> int
(** Accept one client, {!archive} to it, close the connection.  The
    loopback serving loop of a one-shot worker feed. *)
