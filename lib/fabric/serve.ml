let records ?obs conn ~header recs =
  let s = Traceio.Wire.create_sender ?obs ~peer:conn.Transport.peer ~header conn.Transport.oc in
  Array.iter (fun (r : Traceio.Archive.record) -> Traceio.Wire.send s ~noises:r.noises r.trace) recs;
  Traceio.Wire.finish s;
  Traceio.Wire.sender_count s

let archive ?obs conn ~path =
  Traceio.Archive.with_reader ?obs path (fun reader ->
      let header = Traceio.Archive.header reader in
      let s = Traceio.Wire.create_sender ?obs ~peer:conn.Transport.peer ~header conn.Transport.oc in
      let rec loop () =
        match Traceio.Archive.try_next reader with
        | `End_of_archive -> ()
        | `Skipped _ -> loop ()
        | `Record (r : Traceio.Archive.record) ->
            Traceio.Wire.send s ~noises:r.noises r.trace;
            loop ()
      in
      loop ();
      Traceio.Wire.finish s;
      Traceio.Wire.sender_count s)

let archive_once ?obs listener ~path =
  let conn = Transport.accept listener in
  Fun.protect ~finally:(fun () -> Transport.close_connection conn) (fun () -> archive ?obs conn ~path)
