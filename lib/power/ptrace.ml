type t = {
  samples : float array;
  samples_per_cycle : int;
  event_start : int array;
  event_pc : int array;
}

let length t = Array.length t.samples

let sub t pos len =
  if pos < 0 || len < 0 || pos + len > Array.length t.samples then invalid_arg "Ptrace.sub: window out of bounds";
  Array.sub t.samples pos len

let mean t = Mathkit.Stats.mean_a t.samples
let stddev t = Mathkit.Stats.stddev_a t.samples

let to_csv t =
  let buf = Buffer.create (16 * Array.length t.samples) in
  Buffer.add_string buf "index,power\n";
  Array.iteri (fun i s -> Buffer.add_string buf (Printf.sprintf "%d,%.6f\n" i s)) t.samples;
  Buffer.contents buf

(* Streaming render: one small row buffer flushed per sample, instead
   of materialising the whole file as a string first (to_csv + output
   was a double copy of the trace). *)
let write_rows oc ~get n =
  output_string oc "index,power\n";
  let row = Buffer.create 32 in
  for i = 0 to n - 1 do
    Buffer.clear row;
    Printf.bprintf row "%d,%.6f\n" i (get i);
    Buffer.output_buffer oc row
  done

let write_csv oc t = write_rows oc ~get:(fun i -> t.samples.(i)) (Array.length t.samples)

let write_csv_fv oc v = write_rows oc ~get:(Mathkit.Fvec.get v) (Mathkit.Fvec.length v)

let save_csv path t =
  try
    let oc = open_out path in
    (try
       write_csv oc t;
       close_out oc
     with e ->
       close_out_noerr oc;
       raise e)
  with Sys_error msg -> failwith (Printf.sprintf "Ptrace.save_csv: cannot write %s: %s" path msg)

(* CSV round-trip read side.  Events are not representable in the CSV,
   so they come back empty; [samples_per_cycle] is the caller's. *)
let load_csv ?(samples_per_cycle = 1) path =
  let ic =
    try open_in path
    with Sys_error msg -> failwith (Printf.sprintf "Ptrace.load_csv: cannot read %s: %s" path msg)
  in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
  let header = try input_line ic with End_of_file -> failwith (Printf.sprintf "Ptrace.load_csv: %s is empty" path) in
  if header <> "index,power" then
    failwith (Printf.sprintf "Ptrace.load_csv: %s does not start with an index,power header" path);
  let rows = ref [] in
  let line_no = ref 1 in
  (try
     while true do
       let line = input_line ic in
       incr line_no;
       if String.trim line <> "" then
         match String.index_opt line ',' with
         | None -> failwith (Printf.sprintf "Ptrace.load_csv: %s line %d has no comma" path !line_no)
         | Some c -> (
             let v = String.sub line (c + 1) (String.length line - c - 1) in
             match float_of_string_opt (String.trim v) with
             | Some f -> rows := f :: !rows
             | None ->
                 failwith (Printf.sprintf "Ptrace.load_csv: %s line %d has a malformed power value %S" path !line_no v))
     done
   with End_of_file -> ());
  {
    samples = Array.of_list (List.rev !rows);
    samples_per_cycle;
    event_start = [||];
    event_pc = [||];
  }

let ascii_plot ?(width = 100) ?(height = 16) samples =
  let n = Array.length samples in
  if n = 0 then "(empty trace)\n"
  else begin
    let lo = Array.fold_left Float.min samples.(0) samples in
    let hi = Array.fold_left Float.max samples.(0) samples in
    let range = if hi -. lo <= 0.0 then 1.0 else hi -. lo in
    let width = min width n in
    (* min/max envelope per column so narrow spikes stay visible *)
    let col_hi = Array.make width lo and col_lo = Array.make width hi in
    Array.iteri
      (fun i s ->
        let c = i * width / n in
        if s > col_hi.(c) then col_hi.(c) <- s;
        if s < col_lo.(c) then col_lo.(c) <- s)
      samples;
    let grid = Array.make_matrix height width ' ' in
    for c = 0 to width - 1 do
      let row_of v =
        let r = int_of_float (Float.of_int (height - 1) *. (v -. lo) /. range) in
        height - 1 - max 0 (min (height - 1) r)
      in
      let top = row_of col_hi.(c) and bottom = row_of col_lo.(c) in
      for r = top to bottom do
        grid.(r).(c) <- (if r = top then '*' else '|')
      done
    done;
    let buf = Buffer.create (width * height) in
    Array.iteri
      (fun r row ->
        let label =
          if r = 0 then Printf.sprintf "%8.1f |" hi
          else if r = height - 1 then Printf.sprintf "%8.1f |" lo
          else "         |"
        in
        Buffer.add_string buf label;
        Array.iter (Buffer.add_char buf) row;
        Buffer.add_char buf '\n')
      grid;
    Buffer.add_string buf (Printf.sprintf "         +%s\n" (String.make width '-'));
    Buffer.add_string buf (Printf.sprintf "          0 .. %d samples\n" n);
    Buffer.contents buf
  end

let pp_summary fmt t =
  Format.fprintf fmt "trace: %d samples (%d/cycle), mean %.2f, sd %.2f" (Array.length t.samples)
    t.samples_per_cycle (mean t) (stddev t)
