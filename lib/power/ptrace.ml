type t = {
  samples : float array;
  samples_per_cycle : int;
  event_start : int array;
  event_pc : int array;
}

let length t = Array.length t.samples

let sub t pos len =
  if pos < 0 || len < 0 || pos + len > Array.length t.samples then invalid_arg "Ptrace.sub: window out of bounds";
  Array.sub t.samples pos len

let mean t = Mathkit.Stats.mean_a t.samples
let stddev t = Mathkit.Stats.stddev_a t.samples

let to_csv t =
  let buf = Buffer.create (16 * Array.length t.samples) in
  Buffer.add_string buf "index,power\n";
  Array.iteri (fun i s -> Buffer.add_string buf (Printf.sprintf "%d,%.6f\n" i s)) t.samples;
  Buffer.contents buf

let save_csv path t =
  try
    let oc = open_out path in
    (try
       output_string oc (to_csv t);
       close_out oc
     with e ->
       close_out_noerr oc;
       raise e)
  with Sys_error msg -> failwith (Printf.sprintf "Ptrace.save_csv: cannot write %s: %s" path msg)

let ascii_plot ?(width = 100) ?(height = 16) samples =
  let n = Array.length samples in
  if n = 0 then "(empty trace)\n"
  else begin
    let lo = Array.fold_left Float.min samples.(0) samples in
    let hi = Array.fold_left Float.max samples.(0) samples in
    let range = if hi -. lo <= 0.0 then 1.0 else hi -. lo in
    let width = min width n in
    (* min/max envelope per column so narrow spikes stay visible *)
    let col_hi = Array.make width lo and col_lo = Array.make width hi in
    Array.iteri
      (fun i s ->
        let c = i * width / n in
        if s > col_hi.(c) then col_hi.(c) <- s;
        if s < col_lo.(c) then col_lo.(c) <- s)
      samples;
    let grid = Array.make_matrix height width ' ' in
    for c = 0 to width - 1 do
      let row_of v =
        let r = int_of_float (Float.of_int (height - 1) *. (v -. lo) /. range) in
        height - 1 - max 0 (min (height - 1) r)
      in
      let top = row_of col_hi.(c) and bottom = row_of col_lo.(c) in
      for r = top to bottom do
        grid.(r).(c) <- (if r = top then '*' else '|')
      done
    done;
    let buf = Buffer.create (width * height) in
    Array.iteri
      (fun r row ->
        let label =
          if r = 0 then Printf.sprintf "%8.1f |" hi
          else if r = height - 1 then Printf.sprintf "%8.1f |" lo
          else "         |"
        in
        Buffer.add_string buf label;
        Array.iter (Buffer.add_char buf) row;
        Buffer.add_char buf '\n')
      grid;
    Buffer.add_string buf (Printf.sprintf "         +%s\n" (String.make width '-'));
    Buffer.add_string buf (Printf.sprintf "          0 .. %d samples\n" n);
    Buffer.contents buf
  end

let pp_summary fmt t =
  Format.fprintf fmt "trace: %d samples (%d/cycle), mean %.2f, sd %.2f" (Array.length t.samples)
    t.samples_per_cycle (mean t) (stddev t)
