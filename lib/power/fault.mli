(** Measurement-fault injection for power traces.

    Real acquisition campaigns fight trigger jitter, dropped or
    duplicated ADC samples, saturation, electrical glitches and slow
    baseline drift.  This module models those faults as a composable,
    seeded corruption pass over a synthesized {!Ptrace.t}, so the
    downstream pipeline can be exercised — and hardened — against the
    same failure modes a SAKURA-G capture exhibits.

    Every channel is independently toggleable; a disabled channel
    consumes no randomness, so two configs that differ only in disabled
    channels corrupt identically.  [apply] at {!none} returns the trace
    unchanged (same array, no RNG draws): the clean pipeline is
    bit-identical to a faultless build. *)

type config = {
  trigger_jitter : int;
      (** Max trigger-offset error in samples; the trace is shifted by a
          uniform offset in [\[-j, j\]] and padded with quiet level. *)
  drop_rate : float;  (** Per-sample probability the ADC drops a sample. *)
  dup_rate : float;  (** Per-sample probability a sample is duplicated. *)
  clip_fraction : float;
      (** Fraction of the dynamic range (from the top) clipped away, as
          if the scope's vertical scale saturated: 0.35 clips everything
          above lo + 0.65 * (hi - lo). *)
  glitch_rate : float;  (** Expected glitch bursts per 1000 samples. *)
  glitch_amplitude : float;  (** Additive amplitude of each glitch burst. *)
  glitch_width : int;  (** Samples per glitch burst. *)
  drift_amplitude : float;  (** Peak baseline drift added to the trace. *)
  drift_period : int;  (** Samples per full drift oscillation. *)
}

val none : config
(** All channels disabled. *)

val full : config
(** Reference intensity-1 fault load: severe but survivable. *)

val is_noop : config -> bool
(** True when every channel is disabled — [apply] would be the
    identity. *)

val of_intensity : float -> config
(** Linear scale between {!none} (0.0) and {!full} (1.0); intensities
    above 1.0 extrapolate.  Negative intensities are clamped to 0. *)

val apply : rng:Mathkit.Prng.t -> config -> Ptrace.t -> Ptrace.t
(** Corrupt a trace.  Stage order: baseline drift, glitch bursts,
    clipping, drop/duplication, trigger jitter.  Disabled stages are
    skipped entirely and draw no randomness.  Event metadata
    ([event_start] / [event_pc]) is carried over unchanged and becomes
    approximate once samples move; the attack path never reads it, and
    profiling should run fault-free. *)
