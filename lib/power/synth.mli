(** Trace synthesis: architectural events -> oscilloscope samples.

    Each instruction contributes [cycles * samples_per_cycle] samples:
    the first cycle carries the data-dependent power (operands live on
    the buses, the register file is written), later cycles the base
    residual.  Within a cycle the pulse is shaped (rise then fall) so
    that upsampled traces look like real shunt-resistor measurements.
    Additive white Gaussian noise models the measurement chain; its
    sigma is the experiment knob for the noise-sweep ablation. *)

type config = {
  model : Leakage.t;
  samples_per_cycle : int;
  noise_sigma : float;  (** stddev of the additive measurement noise *)
}

val default : config
(** [Leakage.default], 2 samples/cycle, noise sigma 0.35. *)

val quiet : config
(** Noise-free variant, used by unit tests and the figure benches. *)

val synthesize : ?rng:Mathkit.Prng.t -> config -> Riscv.Trace.event array -> Ptrace.t
(** Noise is drawn from [rng]; omitting it with a nonzero
    [noise_sigma] is an error — determinism must be explicit. *)

val synthesize_into :
  ?rng:Mathkit.Prng.t -> config -> Riscv.Trace.event array -> out:Mathkit.Fvec.t -> int
(** [synthesize] into a caller-owned vector, for batch synthesis that
    reuses one buffer across traces.  Writes a prefix of [out] and
    returns its length; samples and noise draws are bit-identical to
    [synthesize], but the event tables are not built.
    @raise Invalid_argument when [out] is too short. *)
