type config = {
  trigger_jitter : int;
  drop_rate : float;
  dup_rate : float;
  clip_fraction : float;
  glitch_rate : float;
  glitch_amplitude : float;
  glitch_width : int;
  drift_amplitude : float;
  drift_period : int;
}

let none =
  {
    trigger_jitter = 0;
    drop_rate = 0.0;
    dup_rate = 0.0;
    clip_fraction = 0.0;
    glitch_rate = 0.0;
    glitch_amplitude = 0.0;
    glitch_width = 0;
    drift_amplitude = 0.0;
    drift_period = 0;
  }

(* Calibrated against the synthesized SEAL sampler traces: at this load
   segmentation still finds most divider bursts but a visible fraction of
   coefficients degrades to SignOnly/Unknown. *)
let full =
  {
    trigger_jitter = 48;
    drop_rate = 0.02;
    dup_rate = 0.02;
    clip_fraction = 0.35;
    glitch_rate = 1.2;
    glitch_amplitude = 18.0;
    glitch_width = 8;
    drift_amplitude = 2.5;
    drift_period = 4096;
  }

let is_noop c =
  c.trigger_jitter = 0 && c.drop_rate = 0.0 && c.dup_rate = 0.0 && c.clip_fraction = 0.0
  && (c.glitch_rate = 0.0 || c.glitch_amplitude = 0.0 || c.glitch_width = 0)
  && (c.drift_amplitude = 0.0 || c.drift_period = 0)

let of_intensity x =
  let x = Float.max 0.0 x in
  if x = 0.0 then none
  else
    let scale_i v = int_of_float (Float.round (x *. float_of_int v)) in
    {
      trigger_jitter = scale_i full.trigger_jitter;
      drop_rate = x *. full.drop_rate;
      dup_rate = x *. full.dup_rate;
      clip_fraction = Float.min 0.95 (x *. full.clip_fraction);
      glitch_rate = x *. full.glitch_rate;
      glitch_amplitude = full.glitch_amplitude;
      glitch_width = full.glitch_width;
      drift_amplitude = x *. full.drift_amplitude;
      drift_period = full.drift_period;
    }

(* --- individual stages ---------------------------------------------------- *)

(* Quiet level used for padding after jitter/drops: a low percentile is
   robust to bursts dominating the trace. *)
let quiet_level samples =
  if Array.length samples = 0 then 0.0 else Mathkit.Stats.percentile samples 10.0

let apply_drift c samples =
  let period = float_of_int c.drift_period in
  Array.mapi
    (fun i s -> s +. (c.drift_amplitude *. sin (2.0 *. Float.pi *. float_of_int i /. period)))
    samples

let apply_glitches ~rng c samples =
  let n = Array.length samples in
  let samples = Array.copy samples in
  let expected = c.glitch_rate *. float_of_int n /. 1000.0 in
  (* deterministic burst count: floor plus a Bernoulli for the remainder *)
  let count =
    int_of_float expected + if Mathkit.Prng.float rng < Float.rem expected 1.0 then 1 else 0
  in
  for _ = 1 to count do
    let start = Mathkit.Prng.int rng (max 1 n) in
    let sign = if Mathkit.Prng.bool rng then 1.0 else -1.0 in
    for i = start to min (n - 1) (start + c.glitch_width - 1) do
      samples.(i) <- samples.(i) +. (sign *. c.glitch_amplitude)
    done
  done;
  samples

let apply_clip c samples =
  let n = Array.length samples in
  if n = 0 then samples
  else begin
    let lo = Array.fold_left Float.min samples.(0) samples in
    let hi = Array.fold_left Float.max samples.(0) samples in
    let ceiling = hi -. (c.clip_fraction *. (hi -. lo)) in
    Array.map (fun s -> Float.min s ceiling) samples
  end

(* One pass: each input sample is emitted 0x (drop), 1x, or 2x (dup). *)
let apply_drop_dup ~rng c samples =
  let acc = ref [] in
  let count = ref 0 in
  Array.iter
    (fun s ->
      let u = Mathkit.Prng.float rng in
      if u < c.drop_rate then ()
      else if u < c.drop_rate +. c.dup_rate then begin
        acc := s :: s :: !acc;
        count := !count + 2
      end
      else begin
        acc := s :: !acc;
        incr count
      end)
    samples;
  let out = Array.make !count 0.0 in
  let i = ref (!count - 1) in
  List.iter
    (fun s ->
      out.(!i) <- s;
      decr i)
    !acc;
  out

let apply_jitter ~rng c samples =
  let n = Array.length samples in
  let offset = Mathkit.Prng.int_in rng (-c.trigger_jitter) c.trigger_jitter in
  (* clamp after drawing, so RNG consumption is trace-length independent *)
  let offset = Int.max (-n) (Int.min n offset) in
  if offset = 0 || n = 0 then samples
  else begin
    let pad = quiet_level samples in
    let out = Array.make n pad in
    if offset > 0 then
      (* trigger fired late: the first [offset] samples were missed *)
      Array.blit samples offset out 0 (n - offset)
    else Array.blit samples 0 out (-offset) (n + offset);
    out
  end

let apply ~rng c (t : Ptrace.t) =
  if is_noop c then t
  else begin
    let s = t.Ptrace.samples in
    let s =
      if c.drift_amplitude <> 0.0 && c.drift_period <> 0 then apply_drift c s else s
    in
    let s =
      if c.glitch_rate <> 0.0 && c.glitch_amplitude <> 0.0 && c.glitch_width <> 0 then
        apply_glitches ~rng c s
      else s
    in
    let s = if c.clip_fraction <> 0.0 then apply_clip c s else s in
    let s =
      if c.drop_rate <> 0.0 || c.dup_rate <> 0.0 then apply_drop_dup ~rng c s else s
    in
    let s = if c.trigger_jitter <> 0 then apply_jitter ~rng c s else s in
    { t with Ptrace.samples = s }
  end
