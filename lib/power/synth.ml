type config = {
  model : Leakage.t;
  samples_per_cycle : int;
  noise_sigma : float;
}

let default = { model = Leakage.default; samples_per_cycle = 2; noise_sigma = 0.17 }
let quiet = { default with noise_sigma = 0.0 }

(* In-cycle pulse shape: current rises at the clock edge and decays.
   Values for samples_per_cycle = s are shape(0..s-1). *)
let shape ~samples_per_cycle i =
  if samples_per_cycle = 1 then 1.0
  else begin
    let x = float_of_int i /. float_of_int (samples_per_cycle - 1) in
    1.0 +. (0.25 *. (1.0 -. x) *. (1.0 -. x)) -. (0.15 *. x)
  end

let synthesize ?rng config events =
  if config.samples_per_cycle <= 0 then invalid_arg "Synth: samples_per_cycle must be positive";
  (match (rng, config.noise_sigma > 0.0) with
  | None, true -> invalid_arg "Synth.synthesize: noisy synthesis needs an explicit rng"
  | _ -> ());
  let spc = config.samples_per_cycle in
  let total_cycles = Array.fold_left (fun acc e -> acc + e.Riscv.Trace.cycles) 0 events in
  let samples = Array.make (total_cycles * spc) 0.0 in
  let event_start = Array.make (Array.length events) 0 in
  let event_pc = Array.make (Array.length events) 0 in
  let pos = ref 0 in
  Array.iteri
    (fun idx e ->
      event_start.(idx) <- !pos;
      event_pc.(idx) <- e.Riscv.Trace.pc;
      let first = Leakage.of_event config.model e in
      let rest = Leakage.residual config.model e in
      for c = 0 to e.Riscv.Trace.cycles - 1 do
        let level = if c = 0 then first else rest in
        for i = 0 to spc - 1 do
          samples.(!pos) <- level *. shape ~samples_per_cycle:spc i;
          incr pos
        done
      done)
    events;
  (match rng with
  | Some g when config.noise_sigma > 0.0 ->
      let polar = Mathkit.Gaussian.polar () in
      for i = 0 to Array.length samples - 1 do
        samples.(i) <- samples.(i) +. Mathkit.Gaussian.normal polar g ~mu:0.0 ~sigma:config.noise_sigma
      done
  | _ -> ());
  { Ptrace.samples; samples_per_cycle = spc; event_start; event_pc }

(* [synthesize] into a caller-owned vector (batch synthesis reuses one
   buffer across traces).  Sample arithmetic and noise-draw order are
   identical to [synthesize] — a bit-identity test pins this — but the
   event tables, which batch scoring never reads, are not built.
   Returns the number of samples written (a prefix of [out]). *)
let synthesize_into ?rng config events ~out =
  if config.samples_per_cycle <= 0 then invalid_arg "Synth: samples_per_cycle must be positive";
  (match (rng, config.noise_sigma > 0.0) with
  | None, true -> invalid_arg "Synth.synthesize: noisy synthesis needs an explicit rng"
  | _ -> ());
  let spc = config.samples_per_cycle in
  let total_cycles = Array.fold_left (fun acc e -> acc + e.Riscv.Trace.cycles) 0 events in
  let n = total_cycles * spc in
  if Mathkit.Fvec.length out < n then
    invalid_arg
      (Printf.sprintf "Synth.synthesize_into: %d samples to write but the output holds only %d" n
         (Mathkit.Fvec.length out));
  (* The write loops run over the contiguous [0, n) prefix: validate it
     once, then write through the raw primitives (a per-sample checked
     Fvec.set is a cross-module call without flambda). *)
  let buf = Mathkit.Fvec.buffer out and off = Mathkit.Fvec.offset out and str = Mathkit.Fvec.stride out in
  Mathkit.Fvec.check_range buf ~off ~stride:str ~len:n "Synth.synthesize_into";
  let pos = ref 0 in
  Array.iter
    (fun e ->
      let first = Leakage.of_event config.model e in
      let rest = Leakage.residual config.model e in
      for c = 0 to e.Riscv.Trace.cycles - 1 do
        let level = if c = 0 then first else rest in
        for i = 0 to spc - 1 do
          (* srclint: allow unsafe-index pos stays under n, the range check_range'd above *)
          Bigarray.Array1.unsafe_set buf (off + (!pos * str)) (level *. shape ~samples_per_cycle:spc i);
          incr pos
        done
      done)
    events;
  (match rng with
  | Some g when config.noise_sigma > 0.0 ->
      let polar = Mathkit.Gaussian.polar () in
      for i = 0 to n - 1 do
        let j = off + (i * str) in
        (* srclint: allow unsafe-index i stays in [0,n), the range check_range'd above *)
        let cur = Bigarray.Array1.unsafe_get buf j in
        let noisy = cur +. Mathkit.Gaussian.normal polar g ~mu:0.0 ~sigma:config.noise_sigma in
        (* srclint: allow unsafe-index i stays in [0,n), the range check_range'd above *)
        Bigarray.Array1.unsafe_set buf j noisy
      done
  | _ -> ());
  n
