(** Power traces: sample containers plus text/CSV rendering.

    A trace is one oscilloscope capture: samples at a fixed rate,
    arbitrary power units.  Also carries the sample index at which
    each retired instruction started, which profiling uses as ground
    truth (the attacker's analysis never reads it). *)

type t = {
  samples : float array;
  samples_per_cycle : int;
  event_start : int array;  (** event index -> first sample index *)
  event_pc : int array;  (** event index -> pc, for ground-truth region labelling *)
}

val length : t -> int
val sub : t -> int -> int -> float array
(** [sub t pos len] copies a window.
    @raise Invalid_argument when out of bounds. *)

val mean : t -> float
val stddev : t -> float

val to_csv : t -> string
(** "index,power" lines. *)

val write_csv : out_channel -> t -> unit
(** Stream the CSV rows to a channel — unlike [to_csv] the trace is
    never materialised a second time as one big string. *)

val write_csv_fv : out_channel -> Mathkit.Fvec.t -> unit
(** {!write_csv} straight from a sample view (same format; synthesis
    batches render without converting to [float array] first). *)

val save_csv : string -> t -> unit
(** @raise Failure when the file cannot be written; the message names
    the target path (never a bare [Sys_error]). *)

val load_csv : ?samples_per_cycle:int -> string -> t
(** Read back a {!save_csv} file.  The CSV carries no events, so
    [event_start]/[event_pc] come back empty; [samples_per_cycle]
    defaults to 1.
    @raise Failure when the file is missing or malformed; the message
    names the path. *)

val ascii_plot : ?width:int -> ?height:int -> float array -> string
(** Down-sampled ASCII rendering used by the figure benches. *)

val pp_summary : Format.formatter -> t -> unit
