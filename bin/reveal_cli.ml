(* reveal — command-line front end.

   Subcommands:
     disasm        print the RV32IM listing of a sampler firmware variant
     trace         capture one sampler power trace (ASCII plot / CSV)
     profile       build attack templates and cache them to disk
     attack        run the single-trace attack once and print per-coefficient results
     record        capture a campaign of honest traces into a binary archive
     replay-attack re-run the single-trace attack offline, from an archive
     inspect       validate an archive and print its header / record summary
     fault-sweep   sweep measurement-fault intensity, report graceful degradation
     lint          constant-time lint of the sampler firmware
     srclint       determinism / domain-safety lint of the pipeline's own OCaml source
     estimate      DBDD security estimates for SEAL parameter sets with hint counts
     report        render any experiment artefact of the paper (text or JSON)
     worker        attack one shard of a campaign, write a shard result file
     shard         run a campaign sharded over N worker processes, merge deterministically
     obs           summarize / merge / export observability traces
     monitor       watch a worker fleet's telemetry live, or replay recorded streams
     trial         run one randomized-campaign trial scenario, print its typed verdict
     fuzz          run a randomized trial campaign, surface novel deduped failures
     reduce        shrink a failing trial archive to a minimal reproducer

   Every subcommand accepts --json: one JSON object (or array) on
   stdout, progress chatter suppressed, same exit codes.

   Exit codes: 0 success; 1 attack/check failure (including a shard
   that exhausted its retry budget); 2 usage error; 3 I/O error or
   corrupt input. *)

open Cmdliner

let seed_arg =
  let doc = "PRNG seed (all randomness is explicit and reproducible)." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let n_arg default =
  let doc = "Number of coefficients the firmware samples per run." in
  Arg.(value & opt int default & info [ "n" ] ~docv:"N" ~doc)

let variant_arg =
  let doc = "Sampler variant: v32 (vulnerable), v36 (branchless), shuffled or cdt (constant-time CDT)." in
  let variant_conv =
    Arg.enum
      [
        ("v32", Riscv.Sampler_prog.Vulnerable);
        ("v36", Riscv.Sampler_prog.Branchless);
        ("shuffled", Riscv.Sampler_prog.Shuffled);
        ("cdt", Riscv.Sampler_prog.Cdt_table);
      ]
  in
  Arg.(value & opt variant_conv Riscv.Sampler_prog.Vulnerable & info [ "variant" ] ~docv:"VARIANT" ~doc)

let json_arg =
  let doc = "Emit one machine-readable JSON value on stdout instead of the human-readable report." in
  Arg.(value & flag & info [ "json" ] ~doc)

let rng_of_seed seed = Mathkit.Prng.create ~seed:(Int64.of_int seed) ()

(* --- observability ----------------------------------------------------- *)

let obs_out_arg =
  let doc = "Write a structured observability trace (JSON Lines: spans, events, final metrics) to $(docv); summarize it with $(b,reveal obs summarize)." in
  Arg.(value & opt (some string) None & info [ "obs-out" ] ~docv:"FILE" ~doc)

let obs_clock_arg =
  let doc = "Observability clock: $(b,wall) (monotonic seconds) or $(b,logical) (deterministic ticks, for reproducible traces)." in
  Arg.(
    value
    & opt (Arg.enum [ ("wall", Obs.Clock.Wall); ("logical", Obs.Clock.Logical) ]) Obs.Clock.Wall
    & info [ "obs-clock" ] ~docv:"CLOCK" ~doc)

let obs_stream_arg =
  let doc =
    "Stream the observability trace live as CRC-framed telemetry to $(docv) — a fabric endpoint (\"unix:PATH\" or \
     \"tcp:HOST:PORT\", attach $(b,reveal monitor --listen) there first) or a plain file path, replayable with \
     $(b,reveal monitor FILE). Combines with $(b,--obs-out): both carry the identical event sequence."
  in
  Arg.(value & opt (some string) None & info [ "obs-stream" ] ~docv:"DEST" ~doc)

let obs_source_arg =
  let doc =
    "Name stamped into the trace's start record so a fleet aggregator can tell worker streams apart (e.g. \
     $(b,shard-0))."
  in
  Arg.(value & opt (some string) None & info [ "obs-source" ] ~docv:"NAME" ~doc)

let obs_args =
  Term.(
    const (fun out clock stream source -> (out, clock, stream, source))
    $ obs_out_arg $ obs_clock_arg $ obs_stream_arg $ obs_source_arg)

(* The --obs-stream sink: a live fabric connection when DEST parses as
   an endpoint, else a plain file carrying the same framed stream.
   Events ride a bounded queue to a background sender, so a slow or
   dead monitor never stalls the pipeline (drops are counted). *)
let stream_sink dest =
  let framed oc close_channel =
    let sender = Traceio.Wire.create_telemetry_sender ~peer:dest oc in
    Obs.Sink.stream
      ~send:(Traceio.Wire.telemetry_send sender)
      ~close:(fun () ->
        Traceio.Wire.telemetry_finish sender;
        close_channel ())
      ()
  in
  try
    match Fabric.Transport.parse dest with
    | Ok ep ->
        let conn = Fabric.Transport.connect ~retries:8 ep in
        framed conn.Fabric.Transport.oc (fun () -> Fabric.Transport.close_connection conn)
    | Error _ ->
        let oc =
          try open_out_bin dest
          with Sys_error msg -> failwith (Printf.sprintf "cannot write %s: %s" dest msg)
        in
        framed oc (fun () -> close_out oc)
  with
  | (Traceio.Error.Io _ | Traceio.Error.Corrupt _) as e ->
      prerr_endline ("reveal: --obs-stream: " ^ Traceio.Error.to_string e);
      exit 3
  | Failure msg ->
      prerr_endline ("reveal: --obs-stream: " ^ msg);
      exit 3

(* Every subcommand routes through this wrapper: without --obs-out or
   --obs-stream the disabled context makes every probe a no-op; with
   either the whole body runs inside a [cli.<name>] span and the final
   metrics record is flushed even when the body calls [exit] (close is
   idempotent, so the at_exit and the Fun.protect flush coexist).
   With both, the file and the stream are tee'd under one lock and
   carry the identical line sequence — the monitor's end-of-run
   summary is bit-identical to [obs merge] over the files. *)
let with_obs name (out, clock_kind, stream, source) f =
  if out = None && stream = None then f Obs.Ctx.disabled
  else begin
    let file_sink =
      match out with
      | None -> None
      | Some path -> (
          try Some (Obs.Sink.file path)
          with Failure msg ->
            prerr_endline ("reveal: " ^ msg);
            exit 3)
    in
    let streaming = Option.map stream_sink stream in
    let sink =
      match (file_sink, streaming) with
      | Some a, Some (b, _) -> Obs.Sink.tee a b
      | Some a, None -> a
      | None, Some (b, _) -> b
      | None, None -> assert false
    in
    let clock =
      match clock_kind with Obs.Clock.Wall -> Obs.Clock.wall () | Obs.Clock.Logical -> Obs.Clock.logical ()
    in
    let obs = Obs.Ctx.create ?source ~clock ~sink () in
    at_exit (fun () -> Obs.Ctx.close obs);
    Fun.protect
      ~finally:(fun () ->
        Obs.Ctx.close obs;
        match streaming with
        | Some (_, drops) ->
            let d = drops () in
            if d > 0 then Printf.eprintf "reveal: obs stream: %d event(s) dropped\n" d
        | None -> ())
      (fun () -> Obs.Ctx.span obs ("cli." ^ name) (fun () -> f obs))
  end

(* --- disasm ------------------------------------------------------------ *)

let disasm variant n json obsa =
  with_obs "disasm" obsa @@ fun _obs ->
  let prog = Riscv.Sampler_prog.build ~variant ~n ~k:1 () in
  if json then
    Reveal.Report.(
      print
        (Obj
           [
             ("variant", String (Traceio.Archive.variant_name variant));
             ("n", Int n);
             ("instructions", Int (Array.length prog.Riscv.Asm.words));
             ("listing", List (List.map (fun l -> String l) prog.Riscv.Asm.listing));
           ]))
  else begin
    List.iter print_endline prog.Riscv.Asm.listing;
    Printf.printf "; %d instructions\n" (Array.length prog.Riscv.Asm.words)
  end

let disasm_cmd =
  let doc = "Print the RV32IM assembly listing of the sampler firmware." in
  Cmd.v (Cmd.info "disasm" ~doc) Term.(const disasm $ variant_arg $ n_arg 4 $ json_arg $ obs_args)

(* --- trace -------------------------------------------------------------- *)

let trace seed variant n csv json obsa =
  with_obs "trace" obsa @@ fun _obs ->
  let rng = rng_of_seed seed in
  let device = Reveal.Device.create ~variant ~n () in
  let run =
    if variant = Riscv.Sampler_prog.Shuffled then begin
      let perm = Array.init n (fun i -> i) in
      Mathkit.Prng.shuffle rng perm;
      Reveal.Device.run_shuffled device ~scope_rng:rng ~sampler_rng:rng ~perm
    end
    else Reveal.Device.run_gaussian device ~scope_rng:rng ~sampler_rng:rng
  in
  if json then begin
    (match csv with Some path -> Power.Ptrace.save_csv path run.Reveal.Device.trace | None -> ());
    let bursts = Sca.Segment.burst_regions Sca.Segment.default run.Reveal.Device.trace.Power.Ptrace.samples in
    Reveal.Report.(
      print
        (Obj
           ([
              ("noises", List (Array.to_list (Array.map (fun v -> Int v) run.Reveal.Device.noises)));
              ("samples", Int (Power.Ptrace.length run.Reveal.Device.trace));
              ("peaks", Int (Array.length bursts));
            ]
           @ match csv with Some path -> [ ("csv", String path) ] | None -> [])))
  end
  else begin
    Printf.printf "sampled noises: %s\n"
      (String.concat " " (Array.to_list (Array.map string_of_int run.Reveal.Device.noises)));
    (match csv with
    | Some path ->
        Power.Ptrace.save_csv path run.Reveal.Device.trace;
        Printf.printf "trace written to %s (%d samples)\n" path (Power.Ptrace.length run.Reveal.Device.trace)
    | None -> print_string (Power.Ptrace.ascii_plot ~width:110 ~height:16 run.Reveal.Device.trace.Power.Ptrace.samples));
    let bursts = Sca.Segment.burst_regions Sca.Segment.default run.Reveal.Device.trace.Power.Ptrace.samples in
    Printf.printf "%d distribution-call peaks detected\n" (Array.length bursts)
  end

let trace_cmd =
  let doc = "Capture one power trace of the sampler and plot or dump it." in
  let csv = Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE" ~doc:"Write the trace as CSV.") in
  Cmd.v (Cmd.info "trace" ~doc) Term.(const trace $ seed_arg $ variant_arg $ n_arg 4 $ csv $ json_arg $ obs_args)

(* --- profile ----------------------------------------------------------------- *)

let profile_cmd_impl seed n per_value out json obsa =
  with_obs "profile" obsa @@ fun obs ->
  let rng = rng_of_seed seed in
  let device = Reveal.Device.create ~n () in
  if not json then Printf.printf "profiling (%d windows per candidate value, n = %d)...\n%!" per_value n;
  let prof = Reveal.Campaign.profile ~per_value ~obs device rng in
  Reveal.Campaign.save_profile out prof;
  if json then
    Reveal.Report.(
      print
        (Obj
           [
             ("out", String out);
             ("n", Int n);
             ("per_value", Int per_value);
             ("window_length", Int prof.Reveal.Campaign.window_length);
             ("sigma", Float prof.Reveal.Campaign.sigma);
           ]))
  else Printf.printf "profile saved to %s (window length %d)\n" out prof.Reveal.Campaign.window_length

let profile_cmd =
  let doc = "Build attack templates on a clone device and cache them to disk." in
  let out = Arg.(value & opt string "reveal_profile.bin" & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Cache file.") in
  let per_value = Arg.(value & opt int 400 & info [ "per-value" ] ~docv:"K" ~doc:"Profiling windows per value.") in
  Cmd.v (Cmd.info "profile" ~doc)
    Term.(const profile_cmd_impl $ seed_arg $ n_arg 128 $ per_value $ out $ json_arg $ obs_args)

(* --- attack --------------------------------------------------------------- *)

(* Exit-code policy, kept consistent across subcommands:
     0  success
     1  the attack / check itself failed (recovery below threshold,
        sweep invariant violated)
     2  usage error (bad arguments, impossible configuration)
     3  I/O error or corrupt input (archive, profile cache)
   Archive and profile-cache failures carry user-actionable messages;
   print them without a backtrace. *)
let traceio_guard f =
  try f () with
  | Traceio.Error.Corrupt _ | Traceio.Error.Io _ as e ->
      prerr_endline ("reveal: " ^ Traceio.Error.to_string e);
      exit 3
  | Invalid_argument msg ->
      prerr_endline ("reveal: " ^ msg);
      exit 2

let coefficient_json i (r : Reveal.Campaign.coefficient_result) =
  Reveal.Report.(
    Obj
      [
        ("index", Int i);
        ("actual", Int r.Reveal.Campaign.actual);
        ("recovered", Int r.Reveal.Campaign.verdict.Sca.Attack.value);
        ("sign", Int r.Reveal.Campaign.verdict.Sca.Attack.sign);
      ])

let attack seed n per_value cached verbose json obsa =
  with_obs "attack" obsa @@ fun obs ->
  traceio_guard @@ fun () ->
  let rng = rng_of_seed seed in
  let device = Reveal.Device.create ~n () in
  let prof =
    match cached with
    | Some path ->
        if not json then Printf.printf "loading cached profile from %s\n%!" path;
        Reveal.Campaign.load_profile path
    | None ->
        if not json then Printf.printf "profiling (%d windows per candidate value)...\n%!" per_value;
        Reveal.Campaign.profile ~per_value ~obs device rng
  in
  let scope_rng = Mathkit.Prng.split rng and sampler_rng = Mathkit.Prng.split rng in
  let run = Reveal.Device.run_gaussian device ~scope_rng ~sampler_rng in
  let results = Reveal.Campaign.attack_trace prof run in
  let sign_ok = ref 0 and value_ok = ref 0 in
  Array.iteri
    (fun i r ->
      let v = r.Reveal.Campaign.verdict in
      if compare r.Reveal.Campaign.actual 0 = v.Sca.Attack.sign then incr sign_ok;
      if r.Reveal.Campaign.actual = v.Sca.Attack.value then incr value_ok;
      if verbose && not json then
        Printf.printf "coeff %4d: actual %3d -> recovered %3d %s\n" i r.Reveal.Campaign.actual v.Sca.Attack.value
          (if r.Reveal.Campaign.actual = v.Sca.Attack.value then "" else "x"))
    results;
  if json then
    Reveal.Report.(
      print
        (Obj
           ([ ("n", Int n); ("sign_correct", Int !sign_ok); ("value_correct", Int !value_ok) ]
           @
           if verbose then
             [ ("coefficients", List (Array.to_list (Array.mapi coefficient_json results))) ]
           else [])))
  else Printf.printf "single-trace attack over %d coefficients: signs %d/%d, values %d/%d\n" n !sign_ok n !value_ok n

let attack_cmd =
  let doc = "Run the single-trace attack on one honest sampling." in
  let per_value = Arg.(value & opt int 300 & info [ "per-value" ] ~docv:"K" ~doc:"Profiling windows per value.") in
  let cached = Arg.(value & opt (some string) None & info [ "profile" ] ~docv:"FILE" ~doc:"Use a cached profile (see the profile command).") in
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print every coefficient.") in
  Cmd.v (Cmd.info "attack" ~doc)
    Term.(const attack $ seed_arg $ n_arg 128 $ per_value $ cached $ verbose $ json_arg $ obs_args)

(* --- record ------------------------------------------------------------- *)

(* The rng derivation (create, split scope, split sampler) matches the
   attack command exactly, so `record --seed S --traces 1` captures the
   very trace `attack --seed S --profile …` attacks live. *)
let record seed variant n traces out json obsa =
  with_obs "record" obsa @@ fun obs ->
  traceio_guard (fun () ->
      let rng = rng_of_seed seed in
      let device = Reveal.Device.create ~variant ~n () in
      let scope_rng = Mathkit.Prng.split rng and sampler_rng = Mathkit.Prng.split rng in
      Reveal.Device.record ~obs device ~path:out ~seed:(Int64.of_int seed) ~traces ~scope_rng ~sampler_rng;
      if json then
        Reveal.Report.(
          print
            (Obj
               [
                 ("out", String out);
                 ("traces", Int traces);
                 ("n", Int n);
                 ("variant", String (Traceio.Archive.variant_name variant));
                 ("bytes", Int (Traceio.Archive.file_size out));
               ]))
      else
        Printf.printf "recorded %d traces (n = %d, %s) to %s (%d bytes)\n" traces n
          (Traceio.Archive.variant_name variant) out (Traceio.Archive.file_size out))

let record_cmd =
  let doc = "Capture a campaign of honest sampler traces into a binary archive." in
  let traces = Arg.(value & opt int 16 & info [ "traces" ] ~docv:"T" ~doc:"Number of traces to record.") in
  let out = Arg.(value & opt string "campaign.rvt" & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Archive file.") in
  Cmd.v (Cmd.info "record" ~doc)
    Term.(const record $ seed_arg $ variant_arg $ n_arg 128 $ traces $ out $ json_arg $ obs_args)

(* --- replay-attack ------------------------------------------------------- *)

let replay_attack archive cached per_value profile_seed strict min_values verbose json obsa =
  with_obs "replay-attack" obsa @@ fun obs ->
  traceio_guard (fun () ->
      let header = Traceio.Archive.with_reader archive Traceio.Archive.header in
      if not json then
        Printf.printf "archive %s: %d traces, n = %d, %s, seed %Ld\n" archive header.Traceio.Archive.trace_count
          header.Traceio.Archive.n
          (Traceio.Archive.variant_name header.Traceio.Archive.variant)
          header.Traceio.Archive.seed;
      let prof =
        match cached with
        | Some path ->
            if not json then Printf.printf "loading cached profile from %s\n%!" path;
            Reveal.Campaign.load_profile path
        | None ->
            (* profile on a clone device matching the archive's header *)
            let device = Reveal.Device.of_header header in
            if not json then Printf.printf "profiling clone device (%d windows per candidate value)...\n%!" per_value;
            Reveal.Campaign.profile ~per_value ~obs device (rng_of_seed profile_seed)
      in
      let stats, results = Reveal.Campaign.attack_archive ~strict ~obs prof archive in
      (* With an enabled obs context, carry the campaign all the way to
         the sink so the trace records the final graded-hint and bikz
         metrics too. *)
      if Obs.Ctx.enabled obs && Array.length results > 0 then begin
        let hints =
          Reveal.Sink.hints_of_results results (Array.length results) (fun i r ->
              Reveal.Campaign.hint_of_result ~sigma:prof.Reveal.Campaign.sigma ~coordinate:i r)
        in
        ignore (Reveal.Sink.security_of_hints ~obs hints)
      end;
      if verbose && not json then
        Array.iteri
          (fun i r ->
            let v = r.Reveal.Campaign.verdict in
            Printf.printf "coeff %4d: actual %3d -> recovered %3d %s\n" i r.Reveal.Campaign.actual
              v.Sca.Attack.value
              (if r.Reveal.Campaign.actual = v.Sca.Attack.value then "" else "x"))
          results;
      let replayed = header.Traceio.Archive.trace_count - stats.Reveal.Campaign.corrupt_skipped in
      let value_rate =
        if stats.Reveal.Campaign.value_total = 0 then 0.0
        else float_of_int stats.Reveal.Campaign.value_correct /. float_of_int stats.Reveal.Campaign.value_total
      in
      if json then
        Reveal.Report.(
          print
            (Obj
               ([
                  ("archive", String archive);
                  ("replayed", Int replayed);
                  ("n", Int header.Traceio.Archive.n);
                  ("sign_correct", Int stats.Reveal.Campaign.sign_correct);
                  ("sign_total", Int stats.Reveal.Campaign.sign_total);
                  ("value_correct", Int stats.Reveal.Campaign.value_correct);
                  ("value_total", Int stats.Reveal.Campaign.value_total);
                  ("out_of_range", Int stats.Reveal.Campaign.skipped_out_of_range);
                  ("corrupt_skipped", Int stats.Reveal.Campaign.corrupt_skipped);
                  ("value_rate", Float value_rate);
                ]
               @
               if verbose then
                 [ ("coefficients", List (Array.to_list (Array.mapi coefficient_json results))) ]
               else [])))
      else begin
        Printf.printf
          "replayed attack over %d traces x %d coefficients: signs %d/%d, values %d/%d (%d out of template range)\n"
          replayed header.Traceio.Archive.n stats.Reveal.Campaign.sign_correct
          stats.Reveal.Campaign.sign_total stats.Reveal.Campaign.value_correct stats.Reveal.Campaign.value_total
          stats.Reveal.Campaign.skipped_out_of_range;
        if stats.Reveal.Campaign.corrupt_skipped > 0 then
          Printf.printf "%d corrupt record(s) skipped mid-stream\n" stats.Reveal.Campaign.corrupt_skipped
      end;
      if value_rate < min_values then begin
        Printf.eprintf "reveal: value recovery rate %.3f below required %.3f\n" value_rate min_values;
        exit 1
      end)

let replay_attack_cmd =
  let doc = "Re-run the single-trace attack offline from a recorded archive." in
  let archive = Arg.(required & pos 0 (some string) None & info [] ~docv:"ARCHIVE" ~doc:"Trace archive (see record).") in
  let cached = Arg.(value & opt (some string) None & info [ "profile" ] ~docv:"FILE" ~doc:"Use a cached profile.") in
  let per_value = Arg.(value & opt int 300 & info [ "per-value" ] ~docv:"K" ~doc:"Profiling windows per value.") in
  let profile_seed = Arg.(value & opt int 42 & info [ "profile-seed" ] ~docv:"SEED" ~doc:"Seed for on-the-fly profiling.") in
  let strict =
    Arg.(value & flag & info [ "strict" ] ~doc:"Fail fast (exit 3) on the first corrupt record instead of skipping it.")
  in
  let min_values =
    Arg.(
      value
      & opt float 0.0
      & info [ "min-values" ] ~docv:"RATE"
          ~doc:"Exit 1 when the value recovery rate falls below $(docv) (a fraction in [0,1]).")
  in
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print every coefficient.") in
  Cmd.v (Cmd.info "replay-attack" ~doc)
    Term.(
      const replay_attack $ archive $ cached $ per_value $ profile_seed $ strict $ min_values $ verbose $ json_arg
      $ obs_args)

(* --- inspect -------------------------------------------------------------- *)

let inspect path show_records json obsa =
  with_obs "inspect" obsa @@ fun obs ->
  traceio_guard (fun () ->
      let size = Traceio.Archive.file_size path in
      Traceio.Archive.with_reader ~obs path (fun reader ->
          let h = Traceio.Archive.header reader in
          if not json then begin
            Printf.printf "%s: reveal trace archive (format v1), %d bytes\n" path size;
            Printf.printf "  variant            %s\n" (Traceio.Archive.variant_name h.Traceio.Archive.variant);
            Printf.printf "  coefficients/run   %d\n" h.Traceio.Archive.n;
            Printf.printf "  campaign seed      %Ld\n" h.Traceio.Archive.seed;
            Printf.printf "  samples/cycle      %d\n" h.Traceio.Archive.samples_per_cycle;
            Printf.printf "  scope noise sigma  %.4f\n" h.Traceio.Archive.noise_sigma;
            Printf.printf "  traces             %d\n" h.Traceio.Archive.trace_count;
            List.iter (fun (k, v) -> Printf.printf "  meta %-18s %s\n" k v) h.Traceio.Archive.meta
          end;
          let total_samples = ref 0 and raw = ref 0 in
          let record_rows = ref [] in
          let rec loop () =
            match Traceio.Archive.next reader with
            | None -> ()
            | Some r ->
                let len = Power.Ptrace.length r.Traceio.Archive.trace in
                let events = Array.length r.Traceio.Archive.trace.Power.Ptrace.event_start in
                total_samples := !total_samples + len;
                (* what a naive 64-bit dump of the same record costs *)
                raw := !raw + (8 * (len + (2 * events) + Array.length r.Traceio.Archive.noises));
                if show_records then
                  if json then
                    record_rows :=
                      Reveal.Report.(
                        Obj
                          [
                            ("index", Int r.Traceio.Archive.index);
                            ("samples", Int len);
                            ("events", Int events);
                            ("mean_power", Float (Power.Ptrace.mean r.Traceio.Archive.trace));
                          ])
                      :: !record_rows
                  else
                    Printf.printf "  record %4d: %6d samples, %5d events, mean power %8.2f\n" r.Traceio.Archive.index
                      len events
                      (Power.Ptrace.mean r.Traceio.Archive.trace);
                loop ()
          in
          loop ();
          if json then
            Reveal.Report.(
              print
                (Obj
                   ([
                      ("path", String path);
                      ("bytes", Int size);
                      ("variant", String (Traceio.Archive.variant_name h.Traceio.Archive.variant));
                      ("n", Int h.Traceio.Archive.n);
                      ("seed", String (Int64.to_string h.Traceio.Archive.seed));
                      ("samples_per_cycle", Int h.Traceio.Archive.samples_per_cycle);
                      ("noise_sigma", Float h.Traceio.Archive.noise_sigma);
                      ("traces", Int h.Traceio.Archive.trace_count);
                      ("meta", Obj (List.map (fun (k, v) -> (k, String v)) h.Traceio.Archive.meta));
                      ("total_samples", Int !total_samples);
                      ("raw_bytes", Int !raw);
                      ("checksums_verified", Bool true);
                    ]
                   @ if show_records then [ ("records", List (List.rev !record_rows)) ] else [])))
          else begin
            Printf.printf "all %d record checksums verified\n" h.Traceio.Archive.trace_count;
            if !raw > 0 then
              Printf.printf "%d samples total; %d bytes on disk vs %d raw 64-bit dump (%.2fx compression)\n"
                !total_samples size !raw
                (float_of_int !raw /. float_of_int size)
          end))

let inspect_cmd =
  let doc = "Validate every checksum of a trace archive and print its contents." in
  let archive = Arg.(required & pos 0 (some string) None & info [] ~docv:"ARCHIVE" ~doc:"Trace archive.") in
  let records = Arg.(value & flag & info [ "records" ] ~doc:"Print a line per record.") in
  Cmd.v (Cmd.info "inspect" ~doc) Term.(const inspect $ archive $ records $ json_arg $ obs_args)

(* --- fault-sweep ------------------------------------------------------------- *)

let fault_sweep seed n per_value traces intensities check json obsa =
  with_obs "fault-sweep" obsa @@ fun _obs ->
  traceio_guard (fun () ->
      let config =
        { Reveal.Experiment.seed = Int64.of_int seed; device_n = n; per_value; attack_traces = traces }
      in
      let intensities = Option.map Array.of_list intensities in
      let rows = Reveal.Experiment.fault_sweep ?intensities config in
      if json then begin
        let fields = ref [ ("rows", (Reveal.Experiment.fault_sweep_doc rows).Reveal.Report.json) ] in
        if check then begin
          (match Reveal.Experiment.fault_sweep_check rows with
          | Ok () -> ()
          | Error msg ->
              Printf.eprintf "reveal: fault sweep violates invariants:\n%s\n" msg;
              exit 1);
          let zc = Reveal.Experiment.fault_zero_consistency config in
          if
            zc.Reveal.Experiment.verdict_mismatches > 0
            || zc.Reveal.Experiment.grade_downgrades > 0
            || zc.Reveal.Experiment.bikz_classic <> zc.Reveal.Experiment.bikz_graded
          then begin
            prerr_endline "reveal: zero-intensity pipeline diverges from the clean attack";
            exit 1
          end;
          fields :=
            !fields
            @ [
                ("invariants_ok", Reveal.Report.Bool true);
                ("zero_consistency", (Reveal.Experiment.zero_consistency_doc zc).Reveal.Report.json);
              ]
        end;
        Reveal.Report.(print (Obj !fields))
      end
      else begin
        print_string (Reveal.Experiment.render_fault_sweep rows);
        if check then begin
          (match Reveal.Experiment.fault_sweep_check rows with
          | Ok () -> print_endline "sweep invariants hold: recovery monotone, bikz never under-reported"
          | Error msg ->
              Printf.eprintf "reveal: fault sweep violates invariants:\n%s\n" msg;
              exit 1);
          let zc = Reveal.Experiment.fault_zero_consistency config in
          print_string (Reveal.Experiment.render_zero_consistency zc);
          if
            zc.Reveal.Experiment.verdict_mismatches > 0
            || zc.Reveal.Experiment.grade_downgrades > 0
            || zc.Reveal.Experiment.bikz_classic <> zc.Reveal.Experiment.bikz_graded
          then begin
            prerr_endline "reveal: zero-intensity pipeline diverges from the clean attack";
            exit 1
          end;
          print_endline "zero-intensity attack is bit-identical to the clean pipeline"
        end
      end)

let fault_sweep_cmd =
  let doc = "Sweep measurement-fault intensity and report graceful degradation." in
  let per_value = Arg.(value & opt int 300 & info [ "per-value" ] ~docv:"K" ~doc:"Profiling windows per value.") in
  let traces = Arg.(value & opt int 8 & info [ "traces" ] ~docv:"T" ~doc:"Attack traces per intensity.") in
  let intensities =
    Arg.(
      value
      & opt (some (list float)) None
      & info [ "intensities" ] ~docv:"I,I,..."
          ~doc:"Comma-separated fault intensities (default 0,0.25,0.5,0.75,1).")
  in
  let check =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Verify the sweep invariants (recovery monotone non-increasing, bikz never under-reported) and that zero \
             intensity reproduces the clean pipeline exactly; exit 1 on violation.")
  in
  Cmd.v (Cmd.info "fault-sweep" ~doc)
    Term.(const fault_sweep $ seed_arg $ n_arg 128 $ per_value $ traces $ intensities $ check $ json_arg $ obs_args)

(* --- lint ----------------------------------------------------------------- *)

let lint variant n k no_confirm check verbose json obsa =
  with_obs "lint" obsa @@ fun _obs ->
  traceio_guard (fun () ->
      if n <= 0 || k <= 0 then invalid_arg "lint: n and k must be positive";
      let report = Ctcheck.Lint.analyze_variant ~n ~k ~confirm:(not no_confirm) variant in
      if json then begin
        let violations = Ctcheck.Lint.violations report in
        let drift = if check then Ctcheck.Lint.check report else [] in
        let ok = if check then drift = [] else violations = [] in
        Reveal.Report.(
          print
            (Obj
               [
                 ("variant", String (Traceio.Archive.variant_name variant));
                 ( "findings",
                   List (List.map (fun f -> Ctcheck.Render.to_json (Ctcheck.Finding.to_row f)) report.Ctcheck.Lint.findings)
                 );
                 ("violations", Int (List.length violations));
                 ( "confirmed",
                   Int (List.length (List.filter Ctcheck.Finding.is_confirmed report.Ctcheck.Lint.findings)) );
                 ("drift", List (List.map (fun d -> String d) drift));
                 ("ok", Bool ok);
               ]));
        if not ok then exit 1
      end
      else begin
        print_string (Ctcheck.Lint.render ~verbose report);
        if check then
          match Ctcheck.Lint.check report with
          | [] -> print_endline "verdict table check: OK"
          | drift ->
              List.iter (fun d -> Printf.eprintf "reveal: verdict drift: %s\n" d) drift;
              exit 1
        else if Ctcheck.Lint.violations report <> [] then exit 1
      end)

let lint_cmd =
  let doc = "Constant-time lint of the sampler firmware, with differential-trace confirmation." in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Recovers the control-flow graph from the encoded firmware, runs a secret-taint dataflow analysis seeded at \
         the entropy MMIO ports, and reports secret-dependent branches, memory addresses and path-length imbalances \
         (violations) plus secret data crossing the memory bus (leak surface). Every static finding is then \
         adversarially confirmed by executing the firmware under pairs of secrets and diffing the per-finding trace \
         signatures.";
      `P
        "Without $(b,--check) the exit code is the verdict: 0 when constant-time (no violations), 1 otherwise. With \
         $(b,--check) the findings are instead compared against the expected leakage taxonomy of the selected \
         variant and any drift exits 1.";
    ]
  in
  let k = Arg.(value & opt int 1 & info [ "k" ] ~docv:"K" ~doc:"Number of RNS planes the firmware writes.") in
  let no_confirm =
    Arg.(value & flag & info [ "no-confirm" ] ~doc:"Skip the differential oracle; report static findings only.")
  in
  let check =
    Arg.(
      value & flag
      & info [ "check" ] ~doc:"Compare the findings against the variant's expected verdict table; exit 1 on drift.")
  in
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Append the annotated listing.") in
  Cmd.v (Cmd.info "lint" ~doc ~man)
    Term.(const lint $ variant_arg $ n_arg 4 $ k $ no_confirm $ check $ verbose $ json_arg $ obs_args)

(* --- srclint ---------------------------------------------------------------- *)

let srclint paths check json obsa =
  with_obs "srclint" obsa @@ fun _obs ->
  let paths = if paths = [] then [ "lib"; "bin" ] else paths in
  match Srclint.Driver.lint_paths paths with
  | Error msg ->
      Printf.eprintf "reveal: srclint: %s\n" msg;
      exit 2
  | Ok report ->
      let drift = if check then Srclint.Driver.drift report else [] in
      let ok = if check then drift = [] else Srclint.Driver.clean report in
      if json then begin
        Reveal.Report.print (Srclint.Driver.to_json report ~drift ~ok);
        if not ok then exit 1
      end
      else begin
        print_string (Srclint.Driver.render report);
        if check then
          match drift with
          | [] -> print_endline "expect table check: OK"
          | ds ->
              List.iter (fun d -> Printf.eprintf "reveal: srclint drift: %s\n" d) ds;
              exit 1
        else if not ok then exit 1
      end

let srclint_cmd =
  let doc = "Determinism and domain-safety lint of the pipeline's own OCaml source." in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Parses every $(b,.ml) file under the given paths with the compiler's own front end and reports four rule \
         classes, all syntactic and deliberately conservative: $(b,nondet-source) (ambient randomness, wall-clock and \
         scheduling reads), $(b,hashtbl-order) (hash-order iteration that is not visibly sorted before it can reach \
         emitted output), $(b,domain-capture) (Domain.spawn closures touching mutable state with no synchronizer in \
         scope) and $(b,exn-message) (matching or comparing exception message strings instead of exception families).";
      `P
        "A finding at a provably-benign site is suppressed with an in-source directive comment \"srclint: allow RULE \
         reason\" on the line above (or on) the site; the reason is mandatory and an allow that suppresses nothing is \
         itself reported, so the suppression table cannot rot. Fixture files assert their expected findings with \
         \"srclint: expect RULE\" directives, checked by $(b,--check).";
      `P
        "Exit codes: 0 when clean (or, with $(b,--check), when the findings match the expect table exactly); 1 on \
         findings or drift; 2 on usage errors and unparseable sources. The pipeline's own tree must stay clean — \
         scripts/check.sh runs this over lib/ and bin/ on every gate.";
    ]
  in
  let paths_arg =
    Arg.(value & pos_all string [] & info [] ~docv:"PATH" ~doc:"Files or directories to lint (default: lib bin).")
  in
  let check =
    Arg.(
      value & flag
      & info [ "check" ] ~doc:"Compare the findings against the in-source expect directives; exit 1 on drift.")
  in
  Cmd.v (Cmd.info "srclint" ~doc ~man) Term.(const srclint $ paths_arg $ check $ json_arg $ obs_args)

(* --- estimate --------------------------------------------------------------- *)

let estimate perfect sign_only json obsa =
  with_obs "estimate" obsa @@ fun _obs ->
  let lwe = Hints.Lwe.seal_128_1024 in
  let d = Hints.Dbdd.create lwe in
  let bikz0 = Hints.Dbdd.estimate_bikz d in
  if not json then
    Printf.printf "SEAL-128 (q=%d, n=%d): %.2f bikz (~2^%.1f) without hints\n" lwe.Hints.Lwe.q lwe.Hints.Lwe.n bikz0
      (Hints.Bkz_model.security_bits bikz0);
  let hints =
    if sign_only then begin
      let sigma = lwe.Hints.Lwe.sigma_error in
      let p0 = Mathkit.Gaussian.discrete_probability ~sigma 0 in
      let zeros = int_of_float (Float.round (p0 *. float_of_int lwe.Hints.Lwe.m)) in
      let hv = sigma *. sigma *. (1.0 -. (2.0 /. Float.pi)) in
      for i = 0 to lwe.Hints.Lwe.m - 1 do
        if i < zeros then Hints.Dbdd.perfect_hint d i else Hints.Dbdd.posterior_hint d i ~posterior_variance:hv
      done;
      if not json then
        Printf.printf "with sign/zero hints on all %d error coordinates: %.2f bikz (~2^%.1f)\n" lwe.Hints.Lwe.m
          (Hints.Dbdd.estimate_bikz d)
          (Hints.Bkz_model.security_bits (Hints.Dbdd.estimate_bikz d));
      lwe.Hints.Lwe.m
    end
    else begin
      let k = min perfect lwe.Hints.Lwe.m in
      for i = 0 to k - 1 do
        Hints.Dbdd.perfect_hint d i
      done;
      if not json then
        Printf.printf "with %d perfect error hints: %.2f bikz (~2^%.1f)\n" k (Hints.Dbdd.estimate_bikz d)
          (Hints.Bkz_model.security_bits (Hints.Dbdd.estimate_bikz d));
      k
    end
  in
  let bikz1 = Hints.Dbdd.estimate_bikz d in
  if json then
    Reveal.Report.(
      print
        (Obj
           [
             ("q", Int lwe.Hints.Lwe.q);
             ("n", Int lwe.Hints.Lwe.n);
             ("mode", String (if sign_only then "sign-only" else "perfect"));
             ("hints", Int hints);
             ("bikz_no_hints", Float bikz0);
             ("bits_no_hints", Float (Hints.Bkz_model.security_bits bikz0));
             ("bikz_with_hints", Float bikz1);
             ("bits_with_hints", Float (Hints.Bkz_model.security_bits bikz1));
             ( "cost_models",
               Obj (List.map (fun (label, bits) -> (label, Float bits)) (Hints.Bkz_model.cost_summary bikz1)) );
           ]))
  else begin
    print_endline "cost-model conversions of the final block size:";
    List.iter
      (fun (label, bits) -> Printf.printf "  %-30s %7.1f bits\n" label bits)
      (Hints.Bkz_model.cost_summary bikz1)
  end

let estimate_cmd =
  let doc = "DBDD security estimate for SEAL-128 under side-channel hints." in
  let perfect = Arg.(value & opt int 1024 & info [ "perfect" ] ~docv:"K" ~doc:"Number of perfect error hints.") in
  let sign_only = Arg.(value & flag & info [ "sign-only" ] ~doc:"Use branch-vulnerability hints only (Table IV).") in
  Cmd.v (Cmd.info "estimate" ~doc) Term.(const estimate $ perfect $ sign_only $ json_arg $ obs_args)

(* --- report ---------------------------------------------------------------- *)

let report name list_only seed n per_value traces json obsa =
  with_obs "report" obsa @@ fun _obs ->
  if list_only then List.iter print_endline Reveal.Experiment.artefact_names
  else
    match name with
    | None ->
        prerr_endline "reveal: report: missing ARTEFACT argument (use --list for the available names)";
        exit 2
    | Some name -> (
        let config =
          { Reveal.Experiment.seed = Int64.of_int seed; device_n = n; per_value; attack_traces = traces }
        in
        match Reveal.Experiment.artefact name config with
        | Some doc ->
            if json then Reveal.Report.print doc.Reveal.Report.json else print_string doc.Reveal.Report.text
        | None ->
            Printf.eprintf "reveal: report: unknown artefact %s (use --list for the available names)\n" name;
            exit 2)

let report_cmd =
  let doc = "Render one experiment artefact of the paper (tables, figures, ablations)." in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Every table and figure of the paper's evaluation is registered by name (see $(b,--list)). Each artefact is \
         rendered either as the historical fixed-width text or, with $(b,--json), as a machine-readable JSON value \
         carrying the same rows. Artefacts are deterministic in $(b,--seed) and the campaign-size arguments.";
    ]
  in
  let artefact_arg =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"ARTEFACT" ~doc:"Artefact name (see --list).")
  in
  let list_only = Arg.(value & flag & info [ "list" ] ~doc:"List the available artefact names and exit.") in
  let per_value = Arg.(value & opt int 80 & info [ "per-value" ] ~docv:"K" ~doc:"Profiling windows per value.") in
  let traces = Arg.(value & opt int 2 & info [ "traces" ] ~docv:"T" ~doc:"Attack traces for campaign artefacts.") in
  Cmd.v (Cmd.info "report" ~doc ~man)
    Term.(const report $ artefact_arg $ list_only $ seed_arg $ n_arg 64 $ per_value $ traces $ json_arg $ obs_args)

(* --- worker / shard: the distributed campaign fabric -------------------- *)

(* Both the in-process (workers = 1) path and every worker process
   derive their acquisition randomness the same way — a fresh
   generator from the campaign seed, split into scope and sampler
   streams — and [device_live_range] draws the full campaign's seed
   table whatever slice it serves.  Partitioning therefore cannot
   reach the per-trace randomness, which is the first half of the
   determinism argument (DESIGN.md section 13); [Fabric.Shard.merge]
   is the second. *)
let shard_source device ~seed ~traces ~lo ~hi =
  let rng = rng_of_seed seed in
  let scope_rng = Mathkit.Prng.split rng and sampler_rng = Mathkit.Prng.split rng in
  Reveal.Source.device_live_range ~retry:true device ~traces ~lo ~hi ~scope_rng ~sampler_rng

let worker_impl seed n traces lo hi shard_id profile_path out sabotage obsa =
  with_obs "worker" obsa @@ fun obs ->
  traceio_guard (fun () ->
      if traces <= 0 then invalid_arg "worker: traces must be positive";
      if lo < 0 || hi < lo || hi > traces then
        invalid_arg (Printf.sprintf "worker: shard range [%d,%d) does not fit a %d-trace campaign" lo hi traces);
      let prof = Reveal.Campaign.load_profile profile_path in
      let device = Reveal.Device.create ~n () in
      let source = shard_source device ~seed ~traces ~lo ~hi in
      let stats, results = Reveal.Campaign.run_source ~obs ~expected:((hi - lo) * n) prof source in
      Fabric.Shard.save out
        {
          Fabric.Shard.shard = shard_id;
          range = { Fabric.Shard.lo; hi };
          corrupt_skipped = stats.Reveal.Campaign.corrupt_skipped;
          results;
        };
      if sabotage then begin
        (* test aid: leave a truncated result behind and die the way a
           crashed worker would, so the orchestrator's retry path can
           be exercised from the command line *)
        let size = (Unix.stat out).Unix.st_size in
        Unix.truncate out (max 1 (size / 2));
        Unix.kill (Unix.getpid ()) Sys.sigkill
      end;
      Printf.printf "worker: shard %d wrote %d results ([%d,%d) of %d traces) to %s\n" shard_id
        (Array.length results) lo hi traces out)

let worker_cmd =
  let doc = "Attack one shard of a campaign and write a shard result file (used by shard)." in
  let man =
    [
      `S Manpage.s_description;
      `P
        "The worker half of $(b,reveal shard): loads a cached profile, re-derives the full campaign seed table from \
         $(b,--seed), attacks only the trace slice [$(b,--shard-lo),$(b,--shard-hi)) and writes a CRC-framed \
         $(b,Fabric.Shard) result file to $(b,--out). Invoked by the orchestrator with stdout and stderr captured \
         to a per-attempt log; it is also a plain subcommand, so a shard can be re-run by hand for debugging.";
    ]
  in
  let traces = Arg.(required & opt (some int) None & info [ "traces" ] ~docv:"T" ~doc:"Total campaign trace count.") in
  let lo = Arg.(required & opt (some int) None & info [ "shard-lo" ] ~docv:"LO" ~doc:"First trace index of the shard.") in
  let hi =
    Arg.(required & opt (some int) None & info [ "shard-hi" ] ~docv:"HI" ~doc:"One past the last trace index of the shard.")
  in
  let shard_id = Arg.(value & opt int 0 & info [ "shard-id" ] ~docv:"I" ~doc:"Shard position in the plan.") in
  let profile_path =
    Arg.(required & opt (some string) None & info [ "profile" ] ~docv:"FILE" ~doc:"Cached profile (see profile).")
  in
  let out = Arg.(required & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Shard result file.") in
  let sabotage =
    Arg.(
      value & flag
      & info [ "sabotage" ]
          ~doc:"Test aid: after writing a deliberately truncated result file, kill this process with SIGKILL.")
  in
  Cmd.v (Cmd.info "worker" ~doc ~man)
    Term.(
      const worker_impl $ seed_arg $ n_arg 128 $ traces $ lo $ hi $ shard_id $ profile_path $ out $ sabotage
      $ obs_args)

let shard_impl seed n per_value traces workers retries timeout work_dir keep sabotage obs_dir telemetry json obsa =
  with_obs "shard" obsa @@ fun obs ->
  traceio_guard (fun () ->
      if traces <= 0 then invalid_arg "shard: traces must be positive";
      if workers <= 0 then invalid_arg "shard: workers must be positive";
      if retries < 0 then invalid_arg "shard: retries must be non-negative";
      (match timeout with
      | Some t when t <= 0.0 -> invalid_arg "shard: timeout must be positive"
      | _ -> ());
      (* Progress goes to stderr: stdout carries only campaign-level
         results, byte-identical whatever the worker count. *)
      let chatter fmt = Printf.ksprintf (fun s -> prerr_endline ("shard: " ^ s)) fmt in
      let owned, wd =
        match work_dir with
        | Some d ->
            (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
            (false, d)
        | None -> (true, Fabric.Orchestrator.fresh_work_dir ())
      in
      (match obs_dir with
      | Some d -> ( try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
      | None -> ());
      (* On the failure paths below [exit] skips this finaliser, so a
         failed run keeps its work dir (and the per-attempt logs the
         failure records point at) for diagnosis. *)
      Fun.protect ~finally:(fun () -> if owned && not keep then Fabric.Orchestrator.remove_dir wd)
      @@ fun () ->
      chatter "profiling (%d windows per candidate value, n = %d)" per_value n;
      let device = Reveal.Device.create ~n () in
      let built = Reveal.Campaign.profile ~per_value ~obs device (rng_of_seed seed) in
      let profile_path = Filename.concat wd "profile.bin" in
      Reveal.Campaign.save_profile profile_path built;
      (* Attack with the decoded cache in both paths, so the template
         floats in play are byte-identical whether a worker loaded the
         file or we never left this process. *)
      let prof = Reveal.Campaign.load_profile profile_path in
      let stats, results =
        if workers = 1 then begin
          if obs_dir <> None then chatter "note: --obs-dir collects worker traces; with 1 worker none are spawned";
          if telemetry <> None then chatter "note: --telemetry streams worker traces; with 1 worker none are spawned";
          chatter "single worker: running the campaign in-process";
          Reveal.Campaign.run_source ~obs prof (shard_source device ~seed ~traces ~lo:0 ~hi:traces)
        end
        else begin
          let plan = Fabric.Shard.plan ~traces ~workers in
          let command ~shard ~attempt ~range ~out ~log:_ =
            Array.of_list
              ([
                 Sys.executable_name;
                 "worker";
                 "--seed";
                 string_of_int seed;
                 "-n";
                 string_of_int n;
                 "--traces";
                 string_of_int traces;
                 "--shard-id";
                 string_of_int shard;
                 "--shard-lo";
                 string_of_int range.Fabric.Shard.lo;
                 "--shard-hi";
                 string_of_int range.Fabric.Shard.hi;
                 "--profile";
                 profile_path;
                 "--out";
                 out;
               ]
              @ (* both obs destinations share one logical-clock context
                   named after the shard, so a live monitor's merge and
                   [obs merge] over the files fold the same streams *)
              (let obs_flags =
                 (match obs_dir with
                 | Some dir -> [ "--obs-out"; Filename.concat dir (Printf.sprintf "shard-%d.jsonl" shard) ]
                 | None -> [])
                 @ match telemetry with Some dest -> [ "--obs-stream"; dest ] | None -> []
               in
               match obs_flags with
               | [] -> []
               | flags -> flags @ [ "--obs-clock"; "logical"; "--obs-source"; Printf.sprintf "shard-%d" shard ])
              @ if sabotage = Some shard && attempt = 0 then [ "--sabotage" ] else [])
          in
          let config =
            { Fabric.Orchestrator.max_inflight = workers; retries; timeout_s = timeout; work_dir = wd; command }
          in
          chatter "dispatching %d workers over %d traces (work dir %s)" workers traces wd;
          match Fabric.Orchestrator.run config ~plan with
          | Error failures ->
              List.iter
                (fun f -> prerr_endline ("reveal: " ^ Fabric.Orchestrator.describe_failure f))
                failures;
              Printf.eprintf "reveal: shard: a shard exhausted its retry budget; work dir kept at %s\n" wd;
              exit 1
          | Ok report -> (
              List.iter
                (fun f -> chatter "recovered: %s" (Fabric.Orchestrator.describe_failure f))
                report.Fabric.Orchestrator.failures;
              if report.Fabric.Orchestrator.retried > 0 then
                chatter "%d shard(s) needed more than one attempt" report.Fabric.Orchestrator.retried;
              match Fabric.Shard.merge prof (Array.to_list report.Fabric.Orchestrator.results) with
              | Error msg ->
                  Printf.eprintf "reveal: shard: merge failed: %s; work dir kept at %s\n" msg wd;
                  exit 1
              | Ok pair -> pair)
        end
      in
      if Array.length results <> traces * n then begin
        Printf.eprintf "reveal: shard: merged %d results, expected %d (%d traces x %d coefficients)\n"
          (Array.length results) (traces * n) traces n;
        exit 1
      end;
      (* Fold the workers' obs traces into one summary next to them. *)
      (match obs_dir with
      | Some dir when workers > 1 -> (
          let files =
            Sys.readdir dir |> Array.to_list
            |> List.filter (fun f -> Filename.check_suffix f ".jsonl")
            |> List.sort compare
            |> List.map (Filename.concat dir)
          in
          match Obs.Summary.merge_files files with
          | Error msg -> Printf.eprintf "reveal: shard: obs merge: %s\n" msg
          | Ok s ->
              let out = Filename.concat dir "summary.json" in
              let oc = open_out out in
              output_string oc (Reveal.Report.to_string (Obs.Summary.to_json s));
              output_char oc '\n';
              close_out oc;
              chatter "merged %d worker obs traces into %s" (List.length files) out)
      | _ -> ());
      let confident, tentative, sign_only, unknown = Reveal.Campaign.grade_counts results in
      let hints =
        Reveal.Sink.hints_of_results results (Array.length results) (fun i r ->
            Reveal.Campaign.hint_of_result ~sigma:prof.Reveal.Campaign.sigma ~coordinate:i r)
      in
      let perfect, approximate, none = Hints.Hint.kind_counts hints in
      if json then
        Reveal.Report.(
          print
            (Obj
               [
                 ("n", Int n);
                 ("traces", Int traces);
                 ("seed", Int seed);
                 ("sign_correct", Int stats.Reveal.Campaign.sign_correct);
                 ("sign_total", Int stats.Reveal.Campaign.sign_total);
                 ("value_correct", Int stats.Reveal.Campaign.value_correct);
                 ("value_total", Int stats.Reveal.Campaign.value_total);
                 ("out_of_range", Int stats.Reveal.Campaign.skipped_out_of_range);
                 ("corrupt_skipped", Int stats.Reveal.Campaign.corrupt_skipped);
                 ( "grades",
                   Obj
                     [
                       ("confident", Int confident);
                       ("tentative", Int tentative);
                       ("sign_only", Int sign_only);
                       ("unknown", Int unknown);
                     ] );
                 ( "hints",
                   Obj [ ("perfect", Int perfect); ("approximate", Int approximate); ("none", Int none) ] );
               ]))
      else begin
        Printf.printf "sharded campaign: %d traces x %d coefficients (seed %d)\n" traces n seed;
        Printf.printf "signs %d/%d, values %d/%d (%d out of template range)\n" stats.Reveal.Campaign.sign_correct
          stats.Reveal.Campaign.sign_total stats.Reveal.Campaign.value_correct stats.Reveal.Campaign.value_total
          stats.Reveal.Campaign.skipped_out_of_range;
        Printf.printf "grades: confident %d, tentative %d, sign-only %d, unknown %d\n" confident tentative sign_only
          unknown;
        Printf.printf "hints: perfect %d, approximate %d, none %d\n" perfect approximate none
      end)

let shard_cmd =
  let doc = "Run a campaign sharded over N worker processes and merge deterministically." in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Profiles once, caches the templates in the work dir, partitions the campaign's trace index space into \
         $(b,--workers) contiguous shards and runs one $(b,reveal worker) process per shard (stdout and stderr \
         captured to per-attempt logs). Shard results come back in CRC-framed files, are validated, and merge in \
         trace order; the printed campaign results are bit-identical to $(b,--workers 1), which runs the same \
         campaign in-process.";
      `P
        "A worker that crashes, exits nonzero or leaves a corrupt result file is retried up to $(b,--retries) extra \
         attempts; only when a shard exhausts its budget does the command fail (exit 1), keeping the work dir and \
         its logs for diagnosis.";
    ]
  in
  let per_value = Arg.(value & opt int 300 & info [ "per-value" ] ~docv:"K" ~doc:"Profiling windows per value.") in
  let traces = Arg.(value & opt int 4 & info [ "traces" ] ~docv:"T" ~doc:"Campaign trace count.") in
  let workers =
    Arg.(value & opt int 2 & info [ "workers" ] ~docv:"W" ~doc:"Worker processes; 1 runs in-process, no fork.")
  in
  let retries =
    Arg.(value & opt int 1 & info [ "retries" ] ~docv:"R" ~doc:"Extra attempts per shard after the first.")
  in
  let timeout =
    Arg.(
      value
      & opt (some float) None
      & info [ "shard-timeout" ] ~docv:"SECONDS"
          ~doc:
            "Wall-clock budget per worker attempt; a worker that outlives it is killed and charged a timeout \
             failure against its retry budget (default: no limit).")
  in
  let work_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "work-dir" ] ~docv:"DIR"
          ~doc:"Work directory for profile cache, shard results and logs (default: private temp dir, removed on success).")
  in
  let keep = Arg.(value & flag & info [ "keep" ] ~doc:"Keep the auto-created work dir after a successful run.") in
  let sabotage =
    Arg.(
      value
      & opt (some int) None
      & info [ "sabotage" ] ~docv:"SHARD"
          ~doc:"Test aid: make shard $(docv)'s first attempt write a truncated result and die, exercising the retry path.")
  in
  let obs_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "obs-dir" ] ~docv:"DIR"
          ~doc:"Collect per-worker observability traces (logical clock) in $(docv) and fold them into summary.json.")
  in
  let telemetry =
    Arg.(
      value
      & opt (some string) None
      & info [ "telemetry" ] ~docv:"ENDPOINT"
          ~doc:
            "Stream each worker's observability trace live to $(docv) (\"unix:PATH\" or \"tcp:HOST:PORT\") — attach \
             $(b,reveal monitor --listen) $(docv) $(b,--workers) W first. Workers stream under the logical clock, \
             named shard-0, shard-1, ...")
  in
  Cmd.v (Cmd.info "shard" ~doc ~man)
    Term.(
      const shard_impl $ seed_arg $ n_arg 128 $ per_value $ traces $ workers $ retries $ timeout $ work_dir $ keep
      $ sabotage $ obs_dir $ telemetry $ json_arg $ obs_args)

(* --- obs ------------------------------------------------------------------- *)

let sample_events_arg =
  let doc =
    "Keep only every $(docv)-th point event while aggregating, weighting kept ones by $(docv) — bounded-memory \
     summaries of event-heavy traces. Spans, counters, gauges and histograms are always exact."
  in
  Arg.(value & opt int 1 & info [ "sample-events" ] ~docv:"K" ~doc)

let obs_summarize path sample_events json =
  traceio_guard @@ fun () ->
  match Obs.Summary.load ~sample_events path with
  | Error msg ->
      prerr_endline ("reveal: " ^ msg);
      exit 3
  | Ok s -> if json then Reveal.Report.print (Obs.Summary.to_json s) else print_string (Obs.Summary.render s)

let obs_merge paths sample_events json =
  traceio_guard @@ fun () ->
  match Obs.Summary.merge_files ~sample_events paths with
  | Error msg ->
      prerr_endline ("reveal: " ^ msg);
      exit 3
  | Ok s -> if json then Reveal.Report.print (Obs.Summary.to_json s) else print_string (Obs.Summary.render s)

let obs_export paths sample_events json =
  traceio_guard @@ fun () ->
  match Obs.Summary.merge_files ~sample_events paths with
  | Error msg ->
      prerr_endline ("reveal: " ^ msg);
      exit 3
  | Ok s ->
      if json then Reveal.Report.print (Obs.Summary.to_json s) else print_string (Obs.Summary.to_prometheus s)

let obs_cmd =
  let doc = "Work with observability traces (files written by --obs-out)." in
  let summarize =
    let doc = "Aggregate an observability trace into per-span timings, counters, gauges and histograms." in
    let man =
      [
        `S Manpage.s_description;
        `P
          "Reads a JSON Lines trace produced by any subcommand's $(b,--obs-out) and prints one table per section: \
           span wall-clock totals (count / total / mean / max), counter totals, gauge values, histogram buckets and \
           severity-tagged events. With $(b,--json) the same aggregation is emitted as one JSON object.";
      ]
    in
    let file =
      Arg.(required & pos 0 (some string) None & info [] ~docv:"TRACE" ~doc:"Trace file written by --obs-out.")
    in
    Cmd.v (Cmd.info "summarize" ~doc ~man) Term.(const obs_summarize $ file $ sample_events_arg $ json_arg)
  in
  let merge =
    let doc = "Merge several observability traces into one aggregate summary." in
    let man =
      [
        `S Manpage.s_description;
        `P
          "Aggregates each trace like $(b,summarize), then combines the summaries: span counts/totals and counter, \
           event, gauge and histogram-bucket totals sum; span and histogram maxima take the max. This is the fold \
           $(b,reveal shard --obs-dir) applies to its workers' traces; running it by hand answers what a whole \
           sharded campaign did across all processes.";
      ]
    in
    let files =
      Arg.(non_empty & pos_all string [] & info [] ~docv:"TRACE" ~doc:"Trace files written by --obs-out.")
    in
    Cmd.v (Cmd.info "merge" ~doc ~man) Term.(const obs_merge $ files $ sample_events_arg $ json_arg)
  in
  let export =
    let doc = "Export merged observability traces in the Prometheus text exposition format." in
    let man =
      [
        `S Manpage.s_description;
        `P
          "Aggregates the traces like $(b,merge), then renders the summary as Prometheus-style text metrics \
           ($(b,reveal_span_count), $(b,reveal_counter_total), $(b,reveal_histogram_bucket) with cumulative \
           $(b,le) labels, ...) for scraping into an existing metrics stack. $(b,--json) emits the same aggregate \
           as the $(b,summarize) JSON object instead.";
      ]
    in
    let files =
      Arg.(non_empty & pos_all string [] & info [] ~docv:"TRACE" ~doc:"Trace files written by --obs-out.")
    in
    Cmd.v (Cmd.info "export" ~doc ~man) Term.(const obs_export $ files $ sample_events_arg $ json_arg)
  in
  Cmd.group (Cmd.info "obs" ~doc) [ summarize; merge; export ]

(* --- monitor --------------------------------------------------------------- *)

let report_json (r : Fabric.Telemetry.report) =
  Reveal.Report.(
    Obj
      ([
         ("name", String r.Fabric.Telemetry.r_name);
         ("heartbeats", Int r.Fabric.Telemetry.r_heartbeats);
         ("done", Int r.Fabric.Telemetry.r_done);
       ]
      @ (match r.Fabric.Telemetry.r_total with Some t -> [ ("total", Int t) ] | None -> [])
      @ [ ("skipped", Int r.Fabric.Telemetry.r_skipped) ]
      @ (match r.Fabric.Telemetry.r_truncated with Some m -> [ ("truncated", String m) ] | None -> [])
      @ [ ("missed_heartbeats", Bool (Fabric.Telemetry.missed_heartbeats r)) ]))

let monitor_impl listen workers files json obsa =
  with_obs "monitor" obsa @@ fun _obs ->
  traceio_guard (fun () ->
      (* Progress chatter goes to stderr; stdout carries only the final
         summary, so the text output is byte-comparable to [obs merge]
         over the workers' --obs-out files. *)
      let chatter_lock = Mutex.create () in
      let chatter fmt =
        Printf.ksprintf
          (fun s ->
            if not json then begin
              Mutex.lock chatter_lock;
              prerr_endline ("monitor: " ^ s);
              Mutex.unlock chatter_lock
            end)
          fmt
      in
      let on_heartbeat ~source ~done_ ~total ~t:_ =
        match total with
        | Some total -> chatter "%s: %d/%d coefficients" source done_ total
        | None -> chatter "%s: %d coefficients" source done_
      in
      let reports =
        match (listen, files) with
        | Some _, _ :: _ -> invalid_arg "monitor: --listen and telemetry FILE replay are mutually exclusive"
        | None, [] -> invalid_arg "monitor: pass --listen ENDPOINT or at least one recorded telemetry FILE"
        | Some dest, [] ->
            if workers <= 0 then invalid_arg "monitor: workers must be positive";
            let ep =
              match Fabric.Transport.parse dest with Ok ep -> ep | Error msg -> invalid_arg ("monitor: " ^ msg)
            in
            let listener = Fabric.Transport.listen ep in
            Fun.protect ~finally:(fun () -> Fabric.Transport.close_listener listener) @@ fun () ->
            chatter "listening on %s for %d worker stream(s)" dest workers;
            (* Accept serially (the backlog holds early connectors) but
               drain concurrently: one domain per stream, so a chatty
               worker cannot stall a quiet one's heartbeats. *)
            let drain conn =
              Fun.protect
                ~finally:(fun () -> Fabric.Transport.close_connection conn)
                (fun () ->
                  Fabric.Telemetry.drain ~on_heartbeat ~peer:conn.Fabric.Transport.peer conn.Fabric.Transport.ic)
            in
            let rec accept_all acc k =
              if k = 0 then List.rev acc
              else
                let conn = Fabric.Transport.accept listener in
                accept_all (Domain.spawn (fun () -> drain conn) :: acc) (k - 1)
            in
            List.map Domain.join (accept_all [] workers)
        | None, files ->
            List.map
              (fun path ->
                let ic = Traceio.Error.open_in_bin path in
                Fun.protect
                  ~finally:(fun () -> try close_in ic with Sys_error _ -> ())
                  (fun () -> Fabric.Telemetry.drain ~peer:path ic))
              files
      in
      let reports =
        List.sort (fun a b -> compare a.Fabric.Telemetry.r_name b.Fabric.Telemetry.r_name) reports
      in
      let lagging =
        Fabric.Telemetry.stragglers
          (List.filter_map
             (fun r ->
               match (r.Fabric.Telemetry.r_first_hb, r.Fabric.Telemetry.r_last_hb) with
               | Some a, Some b when b > a -> Some (r.Fabric.Telemetry.r_name, r.Fabric.Telemetry.r_done, b -. a)
               | _ -> None)
             reports)
      in
      List.iter
        (fun r ->
          if r.Fabric.Telemetry.r_truncated <> None then
            chatter "%s: stream cut mid-run (worker died?)" r.Fabric.Telemetry.r_name
          else if Fabric.Telemetry.missed_heartbeats r then
            chatter "%s: missed heartbeats" r.Fabric.Telemetry.r_name;
          if r.Fabric.Telemetry.r_skipped > 0 then
            chatter "%s: %d damaged/unparseable slot(s) skipped" r.Fabric.Telemetry.r_name
              r.Fabric.Telemetry.r_skipped)
        reports;
      List.iter (fun name -> chatter "%s: straggling (rate below half the fleet median)" name) lagging;
      match Fabric.Telemetry.merge_reports reports with
      | None ->
          prerr_endline "reveal: monitor: no telemetry streams to summarize";
          exit 3
      | Some s ->
          if json then
            Reveal.Report.(
              print
                (Obj
                   [
                     ("workers", List (List.map report_json reports));
                     ("stragglers", List (List.map (fun n -> String n) lagging));
                     ("summary", Obs.Summary.to_json s);
                   ]))
          else print_string (Obs.Summary.render s))

let monitor_cmd =
  let doc = "Watch a worker fleet's telemetry live, or replay recorded telemetry streams." in
  let man =
    [
      `S Manpage.s_description;
      `P
        "With $(b,--listen), binds the endpoint, accepts one framed telemetry stream per expected worker (point \
         $(b,reveal shard --telemetry) or any subcommand's $(b,--obs-stream) at it), narrates heartbeat progress \
         and anomalies — streams cut mid-run, missed heartbeats, stragglers running below half the fleet's median \
         rate — to stderr, and prints the merged end-of-run summary to stdout. The merge is the $(b,reveal obs \
         merge) fold in sorted source order, so when workers also write $(b,--obs-out) files the two summaries are \
         bit-identical.";
      `P
        "With FILE arguments instead, replays recorded telemetry streams ($(b,--obs-stream) pointed at a plain \
         path) through the same aggregation — deterministic under the logical clock. A stream cut before its end \
         frame is reported, not fatal: a dead worker is a finding. Note the aggregator drains exactly one stream \
         per expected worker; a retried worker attempt opens a fresh connection the monitor will not count.";
    ]
  in
  let listen =
    Arg.(
      value
      & opt (some string) None
      & info [ "listen" ] ~docv:"ENDPOINT"
          ~doc:"Accept live telemetry streams on $(docv) (\"unix:PATH\" or \"tcp:HOST:PORT\").")
  in
  let workers =
    Arg.(
      value & opt int 1
      & info [ "workers" ] ~docv:"W" ~doc:"Streams to accept before summarizing (match the fleet size).")
  in
  let files =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"FILE" ~doc:"Recorded telemetry stream (written by --obs-stream with a file DEST).")
  in
  Cmd.v (Cmd.info "monitor" ~doc ~man) Term.(const monitor_impl $ listen $ workers $ files $ json_arg $ obs_args)

(* --- trial / fuzz / reduce (triage) ---------------------------------------- *)

let segmenter_arg =
  let doc = "Segmenter mode: $(b,strict) (classic pipeline, failures raise) or $(b,resilient) (fault-tolerance stack)." in
  Arg.(
    value
    & opt (Arg.enum [ ("strict", Triage.Plan.Strict); ("resilient", Triage.Plan.Resilient) ]) Triage.Plan.Resilient
    & info [ "segmenter" ] ~docv:"MODE" ~doc)

let gate_arg =
  let doc =
    "Gate profile: $(b,default) (the shipped thresholds), $(b,aggressive) (thresholds floored, fit floors disabled — \
     accepts garbage confidently) or $(b,paranoid) (thresholds raised, deeper retries)."
  in
  Arg.(
    value
    & opt
        (Arg.enum
           [
             ("default", Triage.Plan.Default); ("aggressive", Triage.Plan.Aggressive); ("paranoid", Triage.Plan.Paranoid);
           ])
        Triage.Plan.Default
    & info [ "gate" ] ~docv:"PROFILE" ~doc)

let intensity_arg =
  Arg.(
    value
    & opt float 0.0
    & info [ "intensity" ] ~docv:"I" ~doc:"Measurement-fault intensity (0 = clean, 1 = full reference load).")

let trial_of_flags seed variant intensity segmenter gate traces per_value =
  if intensity < 0.0 then invalid_arg "trial: intensity must be non-negative";
  if traces <= 0 then invalid_arg "trial: traces must be positive";
  if per_value <= 0 then invalid_arg "trial: per-value must be positive";
  {
    Triage.Plan.id = 0;
    variant;
    intensity;
    seed;
    segmenter;
    gate;
    traces;
    n = Triage.Plan.trial_n;
    per_value;
  }

let trial_impl seed variant intensity segmenter gate traces per_value archive archive_out out flight json obsa =
  with_obs "trial" obsa @@ fun obs ->
  traceio_guard (fun () ->
      if archive <> None && archive_out <> None then
        invalid_arg "trial: --archive and --archive-out are mutually exclusive";
      let t = trial_of_flags seed variant intensity segmenter gate traces per_value in
      (* The flight recorder: a ring-buffer obs context feeding the
         pipeline's spans and heartbeats, dumped to --flight on a
         failure verdict, a pipeline crash, or SIGTERM (the
         orchestrator's timeout kill arrives as SIGTERM first, leaving
         a grace window exactly for this dump). *)
      let run_obs, dump =
        match flight with
        | None -> (obs, fun () -> ())
        | Some path ->
            let sink, ring = Obs.Sink.ring () in
            let fobs = Obs.Ctx.create ~clock:(Obs.Clock.logical ()) ~source:"trial" ~sink () in
            let dump () =
              Obs.Ctx.close fobs;
              try Obs.Sink.ring_dump ring path with Failure _ -> ()
            in
            Sys.set_signal Sys.sigterm
              (Sys.Signal_handle
                 (fun _ ->
                   dump ();
                   exit 143));
            (fobs, dump)
      in
      let measure () =
        match (archive, archive_out) with
        | Some path, _ -> Triage.Runner.run ~obs:run_obs ~archive:path t
        | None, Some path -> Triage.Runner.record_and_measure ~obs:run_obs t ~archive:path
        | None, None -> Triage.Runner.run ~obs:run_obs t
      in
      let result_json verdict m =
        Reveal.Report.(
          Obj
            ([
               ("trial", Triage.Plan.to_json t);
               ("verdict", Triage.Verdict.to_json verdict);
               ("signature", String (Triage.Signature.of_verdict t verdict));
             ]
            @ match m with Some m -> [ ("measurements", Triage.Verdict.measurements_to_json m) ] | None -> []))
      in
      match out with
      | Some path ->
          (* worker mode: any classified verdict — crashes included — is a
             successful trial run, and the verdict travels in the result
             file.  Catching here maps a pipeline exception to the same
             crash family an in-process replay would produce, so worker
             and minimizer signatures agree; only a genuine malfunction
             (e.g. a Unix error) may exit nonzero. *)
          let verdict, m =
            match measure () with
            | m -> (Triage.Verdict.classify m, Some m)
            | exception (Unix.Unix_error _ as e) -> raise e
            | exception e -> (Triage.Verdict.crash_of_exn e, None)
          in
          if Triage.Verdict.is_failure verdict then dump ();
          let oc = open_out path in
          Fun.protect
            ~finally:(fun () -> close_out oc)
            (fun () -> output_string oc (Reveal.Report.to_string (result_json verdict m) ^ "\n"))
      | None ->
          let m = measure () in
          let verdict = Triage.Verdict.classify m in
          if Triage.Verdict.is_failure verdict then dump ();
          let signature = Triage.Signature.of_verdict t verdict in
          if json then Reveal.Report.print (result_json verdict (Some m))
          else begin
            Printf.printf "trial: %s\n" (Triage.Plan.describe t);
            Printf.printf "verdict: %s\n" (Triage.Verdict.to_string verdict);
            Printf.printf "signature: %s\n" signature;
            Printf.printf
              "grades: confident=%d tentative=%d sign-only=%d unknown=%d; values %d/%d, signs %d/%d%s\n"
              m.Triage.Verdict.m_confident m.Triage.Verdict.m_tentative m.Triage.Verdict.m_sign_only
              m.Triage.Verdict.m_unknown m.Triage.Verdict.m_value_correct m.Triage.Verdict.m_value_total
              m.Triage.Verdict.m_sign_correct m.Triage.Verdict.m_sign_total
              (if m.Triage.Verdict.m_corrupt_skipped > 0 then
                 Printf.sprintf " (%d corrupt record(s) skipped)" m.Triage.Verdict.m_corrupt_skipped
               else "")
          end;
          if Triage.Verdict.is_failure verdict then exit 1)

let trial_cmd =
  let doc = "Run one randomized-campaign trial scenario and print its typed verdict." in
  let man =
    [
      `S Manpage.s_description;
      `P
        "A trial records a faulted campaign archive (variant, intensity, seed, traces), replays the attack over it \
         in the requested segmenter/gate configuration, checks the pipeline's internal invariants, and classifies \
         the outcome: $(b,bit-exact), $(b,degraded-hints), $(b,misgrade), or $(b,invariant-violation). This is both \
         the worker the fuzzer spawns ($(b,--out)) and the repro contract: every failure $(b,reveal fuzz) reports \
         prints one $(b,trial) line that reproduces it, optionally against a minimized archive ($(b,--archive)).";
      `P "Exits 1 when the verdict is a failure (misgrade, invariant violation) — except in $(b,--out) worker mode, \
          where any classified verdict is a successful trial run.";
    ]
  in
  let traces = Arg.(value & opt int 2 & info [ "traces" ] ~docv:"T" ~doc:"Campaign trace count.") in
  let per_value = Arg.(value & opt int 24 & info [ "per-value" ] ~docv:"K" ~doc:"Profiling windows per value.") in
  let archive =
    Arg.(
      value
      & opt (some string) None
      & info [ "archive" ] ~docv:"FILE"
          ~doc:"Replay this archive instead of recording one (the reduce repro path).")
  in
  let archive_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "archive-out" ] ~docv:"FILE" ~doc:"Keep the recorded campaign archive at $(docv).")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Worker mode: write the JSON verdict record to $(docv) and exit 0 for any classified verdict.")
  in
  let flight =
    Arg.(
      value
      & opt (some string) None
      & info [ "flight" ] ~docv:"FILE"
          ~doc:
            "Arm the flight recorder: keep the last obs events of the run in a fixed ring and dump them to $(docv) \
             on a failure verdict, a pipeline crash, or SIGTERM (how the orchestrator's timeout kill announces \
             itself) — crash forensics for $(b,reveal fuzz).")
  in
  Cmd.v (Cmd.info "trial" ~doc ~man)
    Term.(
      const trial_impl $ seed_arg $ variant_arg $ intensity_arg $ segmenter_arg $ gate_arg $ traces $ per_value
      $ archive $ archive_out $ out $ flight $ json_arg $ obs_args)

let fuzz_impl master_seed trials workers timeout work_dir known_path update_known no_minimize json obsa =
  with_obs "fuzz" obsa @@ fun _obs ->
  traceio_guard (fun () ->
      if trials <= 0 then invalid_arg "fuzz: trials must be positive";
      if workers <= 0 then invalid_arg "fuzz: workers must be positive";
      (match timeout with
      | Some t when t <= 0.0 -> invalid_arg "fuzz: timeout must be positive"
      | _ -> ());
      let chatter fmt = Printf.ksprintf (fun s -> if not json then prerr_endline ("fuzz: " ^ s)) fmt in
      let owned, wd =
        match work_dir with
        | Some d -> (false, d)
        | None -> (true, Fabric.Orchestrator.fresh_work_dir ~prefix:"reveal_fuzz" ())
      in
      (* load_opt: a known file that does not exist yet is an empty
         store, so --known X --update-known bootstraps the file *)
      let known = match known_path with Some p -> Triage.Signature.load_opt p | None -> Triage.Signature.empty in
      let plan = Triage.Plan.plan ~master_seed ~trials in
      chatter "%d trials from master seed %d, %d workers (work dir %s)" trials master_seed workers wd;
      let batch =
        Triage.Fuzz.run ~minimize:(not no_minimize) ~exe:Sys.executable_name ~work_dir:wd ~workers
          ~timeout_s:timeout ~known plan
      in
      let novel =
        Array.to_list (Array.of_seq (Seq.filter (fun o -> o.Triage.Fuzz.o_status = Triage.Fuzz.Novel)
                                        (Array.to_seq batch.Triage.Fuzz.b_outcomes)))
      in
      (match (update_known, known_path) with
      | true, Some p when novel <> [] ->
          Triage.Signature.append p (List.map (fun o -> o.Triage.Fuzz.o_signature) novel);
          chatter "%d novel signature(s) appended to %s" (List.length novel) p
      | true, None -> invalid_arg "fuzz: --update-known needs --known FILE"
      | _ -> ());
      if json then begin
        let outcome_json o =
          Reveal.Report.(
            Obj
              ([
                 ("trial", Triage.Plan.to_json o.Triage.Fuzz.o_trial);
                 ("verdict", Triage.Verdict.to_json o.Triage.Fuzz.o_verdict);
                 ("signature", String o.Triage.Fuzz.o_signature);
                 ("repro", String o.Triage.Fuzz.o_repro);
               ]
              @ (match o.Triage.Fuzz.o_archive with Some a -> [ ("archive", String a) ] | None -> [])
              @ (match o.Triage.Fuzz.o_flight with Some f -> [ ("flight", String f) ] | None -> [])
              @
              match o.Triage.Fuzz.o_minimized with
              | Some (path, report) ->
                  [
                    ("minimized", String path);
                    ("reduction", Triage.Minimize.to_json report);
                    ( "reduce_repro",
                      String (Triage.Plan.repro_command ~archive:path ~exe:Sys.executable_name o.Triage.Fuzz.o_trial)
                    );
                  ]
              | None -> []))
        in
        Reveal.Report.(
          print
            (Obj
               [
                 ("master_seed", Int master_seed);
                 ("trials", Int trials);
                 ("workers", Int workers);
                 ("work_dir", String wd);
                 ( "summary",
                   Obj (List.map (fun (k, c) -> (k, Int c)) batch.Triage.Fuzz.b_summary) );
                 ("novel", Int batch.Triage.Fuzz.b_novel);
                 ("known", Int batch.Triage.Fuzz.b_known);
                 ("duplicate", Int batch.Triage.Fuzz.b_duplicate);
                 ("novel_failures", List (List.map outcome_json novel));
               ]))
      end
      else begin
        Array.iter
          (fun o ->
            Printf.printf "trial %4d: %s -> %s%s\n" o.Triage.Fuzz.o_trial.Triage.Plan.id
              (Triage.Plan.describe o.Triage.Fuzz.o_trial)
              (Triage.Verdict.to_string o.Triage.Fuzz.o_verdict)
              (match o.Triage.Fuzz.o_status with
              | Triage.Fuzz.Passed -> ""
              | Triage.Fuzz.Novel -> " [novel]"
              | Triage.Fuzz.Known -> " [known]"
              | Triage.Fuzz.Duplicate -> " [duplicate]"))
          batch.Triage.Fuzz.b_outcomes;
        Printf.printf "summary: %s\n"
          (String.concat " " (List.map (fun (k, c) -> Printf.sprintf "%s=%d" k c) batch.Triage.Fuzz.b_summary));
        Printf.printf "failures: %d novel, %d known, %d duplicate\n" batch.Triage.Fuzz.b_novel
          batch.Triage.Fuzz.b_known batch.Triage.Fuzz.b_duplicate;
        List.iter
          (fun o ->
            Printf.printf "\nnovel failure: %s\n" o.Triage.Fuzz.o_signature;
            Printf.printf "  trial %d: %s\n" o.Triage.Fuzz.o_trial.Triage.Plan.id
              (Triage.Plan.describe o.Triage.Fuzz.o_trial);
            Printf.printf "  repro: %s\n" o.Triage.Fuzz.o_repro;
            (match o.Triage.Fuzz.o_archive with
            | Some a -> Printf.printf "  archive: %s\n" a
            | None -> ());
            (match o.Triage.Fuzz.o_flight with
            | Some f -> Printf.printf "  flight: %s\n" f
            | None -> ());
            match o.Triage.Fuzz.o_minimized with
            | Some (path, report) ->
                Printf.printf "  minimized: %s (%s)\n" path (Triage.Minimize.describe report);
                Printf.printf "  reduce repro: %s\n"
                  (Triage.Plan.repro_command ~archive:path ~exe:Sys.executable_name o.Triage.Fuzz.o_trial)
            | None -> ())
          novel
      end;
      if batch.Triage.Fuzz.b_novel > 0 then begin
        if owned then chatter "novel failures found; work dir kept at %s" wd;
        exit 1
      end
      else if owned then Fabric.Orchestrator.remove_dir wd)

let fuzz_cmd =
  let doc = "Run a randomized trial campaign; surface novel, deduplicated, pre-minimized failures." in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Expands one master seed into a deterministic table of trial scenarios (fault intensity x sampler variant x \
         campaign seed x segmenter x gate profile), runs each as a $(b,reveal trial) worker process under a bounded \
         pool, and classifies every outcome into a typed verdict. Failing verdicts are fingerprinted into stable \
         signatures, deduplicated against $(b,--known) and within the batch, and each novel failure is reported with \
         a one-line repro command and — when it reproduces in-process — an automatically minimized archive.";
      `P
        "Two runs with the same master seed, trial count and $(b,--work-dir) produce byte-identical trial tables and \
         verdict summaries. Exits 1 when novel failures were found, 0 when everything passed or was known.";
    ]
  in
  let master_seed =
    Arg.(value & opt int 42 & info [ "master-seed" ] ~docv:"SEED" ~doc:"Master seed the trial table expands from.")
  in
  let trials = Arg.(value & opt int 100 & info [ "trials" ] ~docv:"N" ~doc:"Number of trials to run.") in
  let workers = Arg.(value & opt int 4 & info [ "workers" ] ~docv:"W" ~doc:"Concurrent trial worker processes.") in
  let timeout =
    Arg.(
      value
      & opt (some float) (Some 120.0)
      & info [ "trial-timeout" ] ~docv:"SECONDS"
          ~doc:"Wall-clock budget per trial; a hung trial is killed and becomes a timeout verdict.")
  in
  let work_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "work-dir" ] ~docv:"DIR"
          ~doc:
            "Per-trial artefact directory (archives, result files, logs, minimized corpora). Default: private temp \
             dir, removed when no novel failure is found. Pass the same $(docv) to two runs for byte-identical \
             output.")
  in
  let known =
    Arg.(
      value
      & opt (some string) None
      & info [ "known" ] ~docv:"FILE" ~doc:"Known-signatures file; matching failures are suppressed as [known].")
  in
  let update_known =
    Arg.(value & flag & info [ "update-known" ] ~doc:"Append novel signatures to the $(b,--known) file.")
  in
  let no_minimize = Arg.(value & flag & info [ "no-minimize" ] ~doc:"Skip auto-minimization of novel failures.") in
  Cmd.v (Cmd.info "fuzz" ~doc ~man)
    Term.(
      const fuzz_impl $ master_seed $ trials $ workers $ timeout $ work_dir $ known $ update_known $ no_minimize
      $ json_arg $ obs_args)

let reduce_impl seed variant intensity segmenter gate traces per_value archive expect out json obsa =
  with_obs "reduce" obsa @@ fun _obs ->
  traceio_guard (fun () ->
      if expect = Some "timeout" then
        invalid_arg "reduce: timeout verdicts do not reproduce in-process and cannot be reduced";
      let t = trial_of_flags seed variant intensity segmenter gate traces per_value in
      let dst = match out with Some p -> p | None -> Filename.remove_extension archive ^ ".min.rvt" in
      let prof = Triage.Runner.profile_for t in
      let expected = Triage.Runner.replay_verdict t prof ~archive in
      (match expect with
      | Some k when k <> Triage.Verdict.kind expected ->
          Printf.eprintf "reveal: reduce: archive replays as %s, expected %s\n"
            (Triage.Verdict.to_string expected) k;
          exit 1
      | _ -> ());
      if not (Triage.Verdict.is_failure expected) then begin
        Printf.eprintf "reveal: reduce: archive replays as %s — nothing to reduce\n"
          (Triage.Verdict.to_string expected);
        exit 1
      end;
      let check path = Triage.Verdict.same_failure (Triage.Runner.replay_verdict t prof ~archive:path) expected in
      let wd = Fabric.Orchestrator.fresh_work_dir ~prefix:"reveal_reduce" () in
      Fun.protect ~finally:(fun () -> Fabric.Orchestrator.remove_dir wd) @@ fun () ->
      match Triage.Minimize.reduce ~check ~work_dir:wd ~src:archive ~dst with
      | Error msg ->
          Printf.eprintf "reveal: reduce: %s\n" msg;
          exit 1
      | Ok report ->
          let repro = Triage.Plan.repro_command ~archive:dst ~exe:Sys.executable_name t in
          if json then
            Reveal.Report.(
              print
                (Obj
                   [
                     ("archive", String archive);
                     ("minimized", String dst);
                     ("verdict", Triage.Verdict.to_json expected);
                     ("reduction", Triage.Minimize.to_json report);
                     ("reduce_repro", String repro);
                   ]))
          else begin
            Printf.printf "verdict: %s\n" (Triage.Verdict.to_string expected);
            Printf.printf "minimized %s -> %s: %s\n" archive dst (Triage.Minimize.describe report);
            Printf.printf "reduce repro: %s\n" repro
          end)

let reduce_cmd =
  let doc = "Shrink a failing trial archive to a minimal reproducer (deterministic bisection over replay)." in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Replays the trial scenario (same flags as $(b,reveal trial)) over the archive to establish the failing \
         verdict, then minimizes in two passes: the smallest record subset (ddmin-style chunk removal), then the \
         smallest per-record sample span (stepped greedy cuts). Every candidate is re-verified by a full replay, so \
         the emitted archive reproduces the verdict by construction; the printed $(b,reduce repro:) line replays it.";
      `P "Exits 1 when the archive does not reproduce a failing verdict (or disagrees with $(b,--expect)).";
    ]
  in
  let archive =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ARCHIVE" ~doc:"Failing trial archive (.rvt).")
  in
  let traces = Arg.(value & opt int 2 & info [ "traces" ] ~docv:"T" ~doc:"Campaign trace count of the scenario.") in
  let per_value = Arg.(value & opt int 24 & info [ "per-value" ] ~docv:"K" ~doc:"Profiling windows per value.") in
  let expect =
    Arg.(
      value
      & opt (some (Arg.enum (List.map (fun k -> (k, k)) Triage.Fuzz.kinds_in_order))) None
      & info [ "expect" ] ~docv:"KIND"
          ~doc:"Fail unless the archive replays to this verdict kind ($(b,timeout) is a usage error).")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Minimized archive path (default: ARCHIVE with a .min.rvt suffix).")
  in
  Cmd.v (Cmd.info "reduce" ~doc ~man)
    Term.(
      const reduce_impl $ seed_arg $ variant_arg $ intensity_arg $ segmenter_arg $ gate_arg $ traces $ per_value
      $ archive $ expect $ out $ json_arg $ obs_args)

let () =
  let doc = "RevEAL: single-trace side-channel attack on the SEAL BFV encryptor (reproduction)" in
  let man =
    [
      `S Manpage.s_description;
      `P "Every stage of the paper's pipeline is a subcommand:";
      `I ("$(b,disasm)", "print the RV32IM listing of a sampler firmware variant.");
      `I ("$(b,trace)", "capture one sampler power trace (ASCII plot / CSV).");
      `I ("$(b,profile)", "build attack templates and cache them to disk.");
      `I ("$(b,attack)", "run the single-trace attack once and print per-coefficient results.");
      `I ("$(b,record)", "capture a campaign of honest traces into a binary archive.");
      `I ("$(b,replay-attack)", "re-run the single-trace attack offline, from an archive.");
      `I ("$(b,inspect)", "validate an archive and print its header / record summary.");
      `I ("$(b,fault-sweep)", "sweep measurement-fault intensity, report graceful degradation.");
      `I ("$(b,lint)", "constant-time lint of the sampler firmware.");
      `I ("$(b,srclint)", "determinism / domain-safety lint of the pipeline's own OCaml source.");
      `I ("$(b,estimate)", "DBDD security estimates for SEAL parameter sets with hint counts.");
      `I ("$(b,report)", "render any experiment artefact of the paper (text or JSON).");
      `I ("$(b,shard)", "run a campaign sharded over N worker processes, merged deterministically.");
      `I ("$(b,worker)", "attack one shard of a campaign and write a shard result file.");
      `I ("$(b,obs)", "summarize, merge or export observability traces written by --obs-out.");
      `I ("$(b,monitor)", "watch a worker fleet's telemetry live, or replay recorded telemetry streams.");
      `I ("$(b,trial)", "run one randomized-campaign trial scenario and print its typed verdict.");
      `I ("$(b,fuzz)", "run a randomized trial campaign; surface novel, deduplicated, pre-minimized failures.");
      `I ("$(b,reduce)", "shrink a failing trial archive to a minimal reproducer.");
      `P "Every subcommand accepts $(b,--json) for one machine-readable JSON value on stdout.";
    ]
  in
  let exits =
    [
      Cmd.Exit.info 0 ~doc:"on success.";
      Cmd.Exit.info 1
        ~doc:
          "when the attack or a requested check fails (recovery below threshold, sweep invariant violated, a shard \
           exhausted its retry budget).";
      Cmd.Exit.info 2 ~doc:"on usage errors and impossible configurations.";
      Cmd.Exit.info 3 ~doc:"on I/O errors and corrupt archives, profile caches or shard result files.";
    ]
  in
  let info = Cmd.info "reveal" ~version:"1.0.0" ~doc ~man ~exits in
  exit
    (Cmd.eval ~term_err:2
       (Cmd.group info
          [
            disasm_cmd;
            trace_cmd;
            profile_cmd;
            attack_cmd;
            record_cmd;
            replay_attack_cmd;
            inspect_cmd;
            fault_sweep_cmd;
            lint_cmd;
            srclint_cmd;
            estimate_cmd;
            report_cmd;
            worker_cmd;
            shard_cmd;
            obs_cmd;
            monitor_cmd;
            trial_cmd;
            fuzz_cmd;
            reduce_cmd;
          ]))
