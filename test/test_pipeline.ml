(* Integration tests: device + campaign + experiments glued together.
   Sizes are kept small; the assertions target structure and the
   paper's hard claims (100% sign recovery, zero-class exactness,
   hint monotonicity), not exact percentages. *)

let small_config =
  { Reveal.Experiment.default with Reveal.Experiment.device_n = 64; per_value = 80; attack_traces = 2 }

(* one shared env for the experiment-level tests (profiling is the
   expensive part) *)
let env = lazy (Reveal.Experiment.prepare small_config)

let rng () = Mathkit.Prng.create ~seed:4242L ()

(* --- Device ------------------------------------------------------------- *)

let test_device_run_deterministic () =
  let mk () =
    let g = rng () in
    let device = Reveal.Device.create ~n:8 () in
    Reveal.Device.run_gaussian device ~scope_rng:g ~sampler_rng:g
  in
  let a = mk () and b = mk () in
  Alcotest.(check bool) "same noises" true (a.Reveal.Device.noises = b.Reveal.Device.noises);
  Alcotest.(check bool) "same trace" true
    (a.Reveal.Device.trace.Power.Ptrace.samples = b.Reveal.Device.trace.Power.Ptrace.samples)

let test_device_poly_matches_assignment () =
  let g = rng () in
  let device = Reveal.Device.create ~n:8 () in
  let run = Reveal.Device.run_gaussian device ~scope_rng:g ~sampler_rng:g in
  let q = 132120577 in
  Array.iteri
    (fun i z ->
      let expected = if z > 0 then z else if z < 0 then q + z else 0 in
      Alcotest.(check int) (Printf.sprintf "coeff %d" i) expected run.Reveal.Device.poly.(0).(i))
    run.Reveal.Device.noises

let test_device_trailing_dummy_windows () =
  let g = rng () in
  let device = Reveal.Device.create ~n:8 () in
  let run = Reveal.Device.run_gaussian device ~scope_rng:g ~sampler_rng:g in
  let wins = Sca.Segment.windows Sca.Segment.default run.Reveal.Device.trace.Power.Ptrace.samples in
  Alcotest.(check int) "n+1 windows (dummy included)" 9 (Array.length wins)

let test_device_draw_queue_length_checked () =
  let g = rng () in
  let device = Reveal.Device.create ~n:4 () in
  Alcotest.check_raises "short queue" (Invalid_argument "Device: draw queue length must equal n") (fun () ->
      ignore (Reveal.Device.run device ~scope_rng:g ~draws:[| (1, 0) |]))

let test_device_shuffled_places_values () =
  let g = rng () in
  let device = Reveal.Device.create ~variant:Riscv.Sampler_prog.Shuffled ~n:4 () in
  let perm = [| 2; 0; 3; 1 |] in
  let run = Reveal.Device.run_shuffled device ~scope_rng:g ~sampler_rng:g ~perm in
  let q = 132120577 in
  Array.iteri
    (fun d z ->
      let expected = if z > 0 then z else if z < 0 then q + z else 0 in
      Alcotest.(check int) (Printf.sprintf "draw %d at coeff %d" d perm.(d)) expected
        run.Reveal.Device.poly.(0).(perm.(d)))
    run.Reveal.Device.noises

let test_device_variant_traces_differ () =
  let g1 = rng () and g2 = rng () in
  let v32 = Reveal.Device.create ~n:4 () in
  let v36 = Reveal.Device.create ~variant:Riscv.Sampler_prog.Branchless ~n:4 () in
  let r32 = Reveal.Device.run_gaussian v32 ~scope_rng:g1 ~sampler_rng:g1 in
  let r36 = Reveal.Device.run_gaussian v36 ~scope_rng:g2 ~sampler_rng:g2 in
  Alcotest.(check bool) "same noise stream" true (r32.Reveal.Device.noises = r36.Reveal.Device.noises);
  Alcotest.(check bool) "same poly output" true (r32.Reveal.Device.poly = r36.Reveal.Device.poly);
  Alcotest.(check bool) "different traces" true
    (r32.Reveal.Device.trace.Power.Ptrace.samples <> r36.Reveal.Device.trace.Power.Ptrace.samples)

(* --- Campaign ------------------------------------------------------------- *)

let test_campaign_sign_recovery_perfect () =
  let e = Lazy.force env in
  let s = Reveal.Experiment.env_stats e in
  Alcotest.(check int) "100% sign recovery" s.Reveal.Campaign.sign_total s.Reveal.Campaign.sign_correct

let test_campaign_zero_class_exact () =
  let e = Lazy.force env in
  let s = Reveal.Experiment.env_stats e in
  let c = s.Reveal.Campaign.confusion in
  Alcotest.(check (float 1e-9)) "zeros never misread" 100.0
    (Sca.Confusion.column_percent c ~actual:0 ~predicted:0)

let test_campaign_negatives_beat_positives () =
  (* the paper's headline asymmetry: vulnerability 3 makes negative
     coefficients far more recoverable *)
  let e = Lazy.force env in
  let c = (Reveal.Experiment.env_stats e).Reveal.Campaign.confusion in
  let mean_diag range =
    let vals = List.filter_map (fun v ->
        let p = Sca.Confusion.column_percent c ~actual:v ~predicted:v in
        if Sca.Confusion.count c ~actual:v ~predicted:v >= 0 then Some p else None)
        range
    in
    List.fold_left ( +. ) 0.0 vals /. float_of_int (List.length vals)
  in
  let neg = mean_diag [ -1; -2; -3; -4 ] and pos = mean_diag [ 1; 2; 3; 4 ] in
  Alcotest.(check bool) (Printf.sprintf "neg %.1f > pos %.1f" neg pos) true (neg > pos)

let test_campaign_value_accuracy_reasonable () =
  let e = Lazy.force env in
  let s = Reveal.Experiment.env_stats e in
  let acc = float_of_int s.Reveal.Campaign.value_correct /. float_of_int s.Reveal.Campaign.value_total in
  Alcotest.(check bool) "above 35%" true (acc > 0.35);
  Alcotest.(check bool) "not perfect (noise present)" true (acc < 0.95)

let test_campaign_posteriors_are_distributions () =
  let e = Lazy.force env in
  let results = snd (let s = Reveal.Experiment.env_stats e in (s, ())) in
  ignore results;
  let e2 = Lazy.force env in
  let prof = Reveal.Experiment.env_profile e2 in
  let g = rng () in
  let device = Reveal.Device.create ~n:64 () in
  let run = Reveal.Device.run_gaussian device ~scope_rng:g ~sampler_rng:g in
  let results = Reveal.Campaign.attack_trace prof run in
  Array.iter
    (fun r ->
      let total = Array.fold_left (fun acc (_, p) -> acc +. p) 0.0 r.Reveal.Campaign.posterior_all in
      Alcotest.(check bool) "sums to 1" true (Float.abs (total -. 1.0) < 1e-6);
      Array.iter (fun (_, p) -> Alcotest.(check bool) "non-negative" true (p >= 0.0)) r.Reveal.Campaign.posterior_all)
    results

let test_campaign_signs_only_matches_verdicts () =
  let e = Lazy.force env in
  let prof = Reveal.Experiment.env_profile e in
  let g = rng () in
  let device = Reveal.Device.create ~n:64 () in
  let run = Reveal.Device.run_gaussian device ~scope_rng:g ~sampler_rng:g in
  let signs = Reveal.Campaign.attack_signs_only prof run in
  Array.iter
    (fun (actual, recovered) -> Alcotest.(check int) "sign correct" actual recovered)
    signs

(* --- Experiments -------------------------------------------------------------- *)

let test_fig3_structure () =
  let f = Reveal.Experiment.fig3 small_config in
  Alcotest.(check int) "four peaks (3 coeffs + dummy)" 4 (Array.length f.Reveal.Experiment.bursts);
  Alcotest.(check bool) "sub-traces differ (vulnerability 1)" true
    (f.Reveal.Experiment.sub_zero <> f.Reveal.Experiment.sub_pos
    && f.Reveal.Experiment.sub_pos <> f.Reveal.Experiment.sub_neg)

let test_table2_zero_secret_is_certain () =
  let rows = Reveal.Experiment.table2 (Lazy.force env) in
  match List.find_opt (fun r -> r.Reveal.Experiment.secret = 0) rows with
  | None -> Alcotest.fail "no zero-secret row"
  | Some r ->
      Alcotest.(check bool) "variance ~ 0" true (r.Reveal.Experiment.variance < 1e-6);
      Alcotest.(check bool) "centered ~ 0" true (Float.abs r.Reveal.Experiment.centered < 1e-6)

let test_table3_hints_reduce_hardness () =
  let r = Reveal.Experiment.table3 (Lazy.force env) in
  let p = r.Reveal.Experiment.paper_mode and c = r.Reveal.Experiment.calibrated in
  Alcotest.(check bool) "paper mode is a complete break" true
    (p.Reveal.Experiment.bikz_with_hints < 40.0);
  Alcotest.(check bool) "calibrated still a large reduction" true
    (c.Reveal.Experiment.bikz_with_hints < c.Reveal.Experiment.bikz_no_hints -. 50.0);
  Alcotest.(check bool) "calibrated keeps some hardness" true
    (c.Reveal.Experiment.bikz_with_hints > p.Reveal.Experiment.bikz_with_hints)

let test_table4_signs_insufficient () =
  let e = Lazy.force env in
  let t3 = Reveal.Experiment.table3 e and t4 = Reveal.Experiment.table4 e in
  let sign_bikz = t4.Reveal.Experiment.base.Reveal.Experiment.bikz_with_hints in
  (* the paper's conclusion: signs alone leave a hard instance *)
  Alcotest.(check bool) "well above complete break" true (sign_bikz > 150.0);
  Alcotest.(check bool) "weaker than the full attack" true
    (sign_bikz > t3.Reveal.Experiment.paper_mode.Reveal.Experiment.bikz_with_hints);
  Alcotest.(check bool) "guess helps a little" true
    (t4.Reveal.Experiment.bikz_with_guess <= sign_bikz);
  Alcotest.(check bool) "guess success probability sane" true
    (t4.Reveal.Experiment.guess_success_probability > 0.1
    && t4.Reveal.Experiment.guess_success_probability < 0.5)

let test_recovery_sanity_and_counts () =
  let r = Reveal.Experiment.recovery { small_config with Reveal.Experiment.device_n = 64 } in
  Alcotest.(check int) "2n coefficients attacked" 128 r.Reveal.Experiment.coefficients_total;
  Alcotest.(check bool) "a useful fraction exact" true (r.Reveal.Experiment.coefficients_exact > 128 / 4);
  Alcotest.(check bool) "residual below no-hint hardness" true (r.Reveal.Experiment.residual_bikz < 347.0)

let test_defense_report_shape () =
  let rows = Reveal.Experiment.defenses small_config in
  Alcotest.(check int) "four variants" 4 (List.length rows);
  let find name = List.find (fun r -> r.Reveal.Experiment.variant = name) rows in
  let vuln = find "SEAL v3.2 (vulnerable)" in
  let branchless = find "v3.6-style branchless" in
  let shuffled = find "shuffled sampling order" in
  Alcotest.(check (float 1e-9)) "v3.2 sign 100%" 100.0 vuln.Reveal.Experiment.sign_accuracy;
  Alcotest.(check bool) "branchless degrades sign" true
    (branchless.Reveal.Experiment.sign_accuracy < vuln.Reveal.Experiment.sign_accuracy);
  Alcotest.(check bool) "shuffling restores full hardness" true
    (shuffled.Reveal.Experiment.bikz_after_attack > vuln.Reveal.Experiment.bikz_after_attack);
  let cdt = find "constant-time CDT sampler" in
  Alcotest.(check bool) "CDT leaks less than v3.2" true
    (cdt.Reveal.Experiment.value_accuracy < vuln.Reveal.Experiment.value_accuracy)

let test_ablation_noise_monotone () =
  let rows = Reveal.Experiment.ablate_noise small_config in
  let accs = List.map (fun (r : Reveal.Experiment.ablation_row) -> r.value_accuracy) rows in
  (* first (least noise) should beat last (most noise) clearly *)
  match (accs, List.rev accs) with
  | best :: _, worst :: _ -> Alcotest.(check bool) "more noise, worse attack" true (best > worst +. 5.0)
  | _ -> Alcotest.fail "unexpected shape"

let suite =
  List.map
    (fun (name, f) -> Alcotest.test_case name `Quick f)
    [
      ("device run deterministic", test_device_run_deterministic);
      ("device poly matches Fig.2 assignment", test_device_poly_matches_assignment);
      ("device trailing dummy window", test_device_trailing_dummy_windows);
      ("device draw queue checked", test_device_draw_queue_length_checked);
      ("device shuffled placement", test_device_shuffled_places_values);
      ("device variants: same output, different trace", test_device_variant_traces_differ);
      ("campaign 100% sign recovery", test_campaign_sign_recovery_perfect);
      ("campaign zero class exact", test_campaign_zero_class_exact);
      ("campaign negatives beat positives", test_campaign_negatives_beat_positives);
      ("campaign value accuracy in range", test_campaign_value_accuracy_reasonable);
      ("campaign posteriors are distributions", test_campaign_posteriors_are_distributions);
      ("campaign signs-only classifier", test_campaign_signs_only_matches_verdicts);
      ("fig3 structure", test_fig3_structure);
      ("table2 zero secret certain", test_table2_zero_secret_is_certain);
      ("table3 hints reduce hardness", test_table3_hints_reduce_hardness);
      ("table4 signs insufficient", test_table4_signs_insufficient);
      ("recovery sanity and counts", test_recovery_sanity_and_counts);
      ("defense report shape", test_defense_report_shape);
      ("ablation: noise monotone", test_ablation_noise_monotone);
    ]

(* --- profile persistence --------------------------------------------------- *)

let test_profile_save_load_roundtrip () =
  let e = Lazy.force env in
  let prof = Reveal.Experiment.env_profile e in
  let path = Filename.temp_file "reveal_profile" ".bin" in
  Reveal.Campaign.save_profile path prof;
  let prof' = Reveal.Campaign.load_profile path in
  Sys.remove path;
  Alcotest.(check int) "window length" prof.Reveal.Campaign.window_length prof'.Reveal.Campaign.window_length;
  Alcotest.(check (array int)) "values" prof.Reveal.Campaign.values prof'.Reveal.Campaign.values;
  (* the reloaded profile must classify identically *)
  let g = rng () in
  let device = Reveal.Device.create ~n:64 () in
  let run = Reveal.Device.run_gaussian device ~scope_rng:g ~sampler_rng:g in
  let a = Reveal.Campaign.attack_trace prof run and b = Reveal.Campaign.attack_trace prof' run in
  Array.iteri
    (fun i ra ->
      Alcotest.(check int) "same verdicts" ra.Reveal.Campaign.verdict.Sca.Attack.value
        b.(i).Reveal.Campaign.verdict.Sca.Attack.value)
    a

let test_profile_load_rejects_garbage () =
  let path = Filename.temp_file "reveal_profile" ".bin" in
  let oc = open_out path in
  output_string oc "definitely not a profile cache, but long enough to read";
  close_out oc;
  (try
     ignore (Reveal.Campaign.load_profile path);
     Sys.remove path;
     Alcotest.fail "expected rejection"
   with Invalid_argument _ -> Sys.remove path)

let persistence_cases =
  [
    ("profile save/load roundtrip", test_profile_save_load_roundtrip);
    ("profile load rejects garbage", test_profile_load_rejects_garbage);
  ]

let suite = suite @ List.map (fun (name, f) -> Alcotest.test_case name `Quick f) persistence_cases

(* --- parallel campaign determinism ----------------------------------------- *)

let test_parallel_profiling_deterministic () =
  let windows domains =
    let g = Mathkit.Prng.create ~seed:808L () in
    let device = Reveal.Device.create ~n:64 () in
    let _, len, classes = Reveal.Campaign.profiling_windows ~per_value:16 ~domains device g in
    (len, classes)
  in
  let l1, c1 = windows 1 and l3, c3 = windows 3 in
  Alcotest.(check int) "same window length" l1 l3;
  List.iter2
    (fun (v1, w1) (v3, w3) ->
      Alcotest.(check int) "same label" v1 v3;
      Alcotest.(check int) "same window count" (Array.length w1) (Array.length w3))
    c1 c3;
  (* window multisets identical: compare sums *)
  let checksum classes =
    List.fold_left
      (fun acc (_, ws) -> Array.fold_left (fun acc w -> acc +. Array.fold_left ( +. ) 0.0 w) acc ws)
      0.0 classes
  in
  Alcotest.(check (float 1e-6)) "same content" (checksum c1) (checksum c3)

let test_parallel_map_basic () =
  let xs = Array.init 100 (fun i -> i) in
  let doubled = Mathkit.Parallel.map_array ~domains:4 (fun x -> 2 * x) xs in
  Alcotest.(check (array int)) "order preserved" (Array.map (fun x -> 2 * x) xs) doubled;
  Alcotest.(check (array int)) "empty" [||] (Mathkit.Parallel.map_array ~domains:4 (fun x -> x) [||])

let test_parallel_map_propagates_exception () =
  Alcotest.check_raises "worker failure surfaces" (Failure "boom") (fun () ->
      ignore (Mathkit.Parallel.map_array ~domains:3 (fun x -> if x = 7 then failwith "boom" else x) (Array.init 20 (fun i -> i))))

let parallel_cases =
  [
    ("parallel profiling deterministic", test_parallel_profiling_deterministic);
    ("parallel map basics", test_parallel_map_basic);
    ("parallel map propagates exceptions", test_parallel_map_propagates_exception);
  ]

let suite = suite @ List.map (fun (name, f) -> Alcotest.test_case name `Quick f) parallel_cases

(* --- fault tolerance ----------------------------------------------------- *)

(* Satellite regression: at fault intensity 0 the resilient pipeline is
   bit-identical to the classic one — same verdicts, same bikz. *)
let test_fault_zero_consistency () =
  let zc = Reveal.Experiment.fault_zero_consistency small_config in
  Alcotest.(check bool) "attacked something" true (zc.Reveal.Experiment.coefficients > 0);
  Alcotest.(check int) "identical verdicts" 0 zc.Reveal.Experiment.verdict_mismatches;
  Alcotest.(check int) "nothing graded below Tentative" 0 zc.Reveal.Experiment.grade_downgrades;
  Alcotest.(check (float 1e-9)) "identical bikz" zc.Reveal.Experiment.bikz_classic zc.Reveal.Experiment.bikz_graded

let test_fault_sweep_invariants () =
  let rows = Reveal.Experiment.fault_sweep ~intensities:[| 0.0; 0.6; 1.2 |] small_config in
  Alcotest.(check int) "one row per intensity" 3 (List.length rows);
  (match Reveal.Experiment.fault_sweep_check rows with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "sweep invariants violated:\n%s" msg);
  let clean = List.hd rows in
  Alcotest.(check (float 1e-9)) "clean recovery is total" 1.0 clean.Reveal.Experiment.recovery_rate;
  Alcotest.(check int) "clean run needs no retries" 0 clean.Reveal.Experiment.retried;
  Alcotest.(check int) "clean run loses nothing" 0 clean.Reveal.Experiment.unrecoverable

let test_fault_sweep_deterministic () =
  let sweep () = Reveal.Experiment.fault_sweep ~intensities:[| 0.8 |] small_config in
  Alcotest.(check bool) "same seed, same rows" true (sweep () = sweep ())

let fault_cases =
  [
    ("fault: zero intensity = clean pipeline", test_fault_zero_consistency);
    ("fault: sweep invariants", test_fault_sweep_invariants);
    ("fault: sweep deterministic", test_fault_sweep_deterministic);
  ]

let suite = suite @ List.map (fun (name, f) -> Alcotest.test_case name `Quick f) fault_cases
