(* Satellite: reveal_cli's exit-code contract, exercised against the real
   binary.  0 = success, 1 = attack/verification failure, 2 = usage error
   (bad arguments, impossible configuration), 3 = I/O error or corrupt
   input.  Scripts depend on these; see the header of bin/reveal_cli.ml. *)

(* dune runs the test in its build directory, with the binary declared as a
   dep in test/dune so it is always built first. *)
let exe = Filename.concat (Filename.concat ".." "bin") "reveal_cli.exe"

let run args =
  Sys.command (Printf.sprintf "%s %s > /dev/null 2>&1" (Filename.quote exe) args)

let with_tmp f =
  let path = Filename.temp_file "reveal_cli_test" ".rvt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let test_usage_errors_exit_2 () =
  Alcotest.(check int) "unknown subcommand" 2 (run "no-such-subcommand");
  Alcotest.(check int) "unknown flag" 2 (run "record --no-such-flag");
  (* impossible configuration: profiling needs every value twice per run,
     so a 16-coefficient device cannot host the 29-value profile set *)
  Alcotest.(check int) "device too small to profile" 2 (run "attack --seed 7 -n 16")

let test_missing_archive_exits_3 () =
  Alcotest.(check int) "inspect missing file" 3 (run "inspect /nonexistent/path.rvt");
  Alcotest.(check int) "replay missing file" 3 (run "replay-attack /nonexistent/path.rvt")

let stomp_byte path pos =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let b = Bytes.create len in
  really_input ic b 0 len;
  close_in ic;
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x40));
  let oc = open_out_bin path in
  output_bytes oc b;
  close_out oc

let test_record_inspect_roundtrip_and_corruption () =
  with_tmp (fun path ->
      Alcotest.(check int) "record succeeds" 0
        (run (Printf.sprintf "record --seed 7 -n 64 --traces 1 -o %s" (Filename.quote path)));
      Alcotest.(check int) "inspect succeeds" 0 (run (Printf.sprintf "inspect %s" (Filename.quote path)));
      (* flip a magic byte: the reader must refuse the file, not misparse it *)
      stomp_byte path 0;
      Alcotest.(check int) "corrupt archive" 3 (run (Printf.sprintf "inspect %s" (Filename.quote path))))

let cases =
  [
    ("cli: usage errors exit 2", test_usage_errors_exit_2);
    ("cli: missing archive exits 3", test_missing_archive_exits_3);
    ("cli: record/inspect ok, corrupt exits 3", test_record_inspect_roundtrip_and_corruption);
  ]

let suite =
  if Sys.file_exists exe then
    List.map (fun (name, f) -> Alcotest.test_case name `Quick f) cases
  else
    (* e.g. running the test module outside the dune sandbox *)
    [ Alcotest.test_case "cli: binary not built, skipped" `Quick (fun () -> ()) ]
