(* srclint: the determinism / domain-safety lint of the pipeline's own
   OCaml source (DESIGN.md §15).  Unit tests drive each rule class on
   inline sources through Srclint.Driver.report_of_strings (positive,
   negative and suppressed shapes), a QCheck property pins the
   suppression-comment round-trip, and the golden tests byte-compare
   the real binary's output on the planted fixtures under
   fixtures/srclint/. *)

let report src =
  match Srclint.Driver.report_of_strings [ ("t.ml", src) ] with
  | Ok r -> r
  | Error msg -> Alcotest.failf "unexpected srclint error: %s" msg

let rule_names r = List.map (fun f -> Srclint.Finding.rule_name f.Srclint.Finding.kind) r.Srclint.Driver.findings
let src lines = String.concat "\n" lines ^ "\n"

(* Directive comments are assembled with Suppress.allow_comment (or
   around the runtime marker) so this file never contains the literal
   marker text itself. *)
let allow rule reason = Srclint.Suppress.allow_comment ~rule ~reason
let directive body = Printf.sprintf "(* %s %s *)" ("srclint" ^ ":") body

(* --- rule 1: nondeterminism sources ---------------------------------------- *)

let test_nondet () =
  Alcotest.(check (list string))
    "global Random draws flagged" [ "nondet-source"; "nondet-source" ]
    (rule_names (report (src [ "let _ = Random.self_init ()"; "let _roll = Random.int 6" ])));
  Alcotest.(check (list string))
    "wall clock and cpu time flagged" [ "nondet-source"; "nondet-source"; "nondet-source" ]
    (rule_names (report (src [ "let _ = Unix.gettimeofday ()"; "let _ = Sys.time ()"; "let _ = Domain.self ()" ])));
  Alcotest.(check (list string))
    "explicit-state randomness is clean" []
    (rule_names (report (src [ "let _ok st = Random.State.int st 6" ])))

(* --- rule 2: Hashtbl iteration order --------------------------------------- *)

let test_hashtbl_order () =
  Alcotest.(check (list string))
    "iter always flagged" [ "hashtbl-order" ]
    (rule_names (report (src [ "let _f tbl = Hashtbl.iter (fun _ _ -> ()) tbl" ])));
  Alcotest.(check (list string))
    "bare fold flagged" [ "hashtbl-order" ]
    (rule_names (report (src [ "let _f tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl []" ])));
  Alcotest.(check (list string))
    "fold piped into a sort is clean" []
    (rule_names (report (src [ "let _f tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort compare" ])));
  Alcotest.(check (list string))
    "fold directly under a sort is clean" []
    (rule_names (report (src [ "let _f tbl = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) tbl [])" ])));
  Alcotest.(check (list string))
    "fold under sort via @@ is clean" []
    (rule_names (report (src [ "let _f tbl = List.sort compare @@ Hashtbl.fold (fun k _ acc -> k :: acc) tbl []" ])))

(* --- rule 3: Domain.spawn captures ----------------------------------------- *)

let test_domain_capture () =
  Alcotest.(check (list string))
    "unsynchronized ref mutation flagged" [ "domain-capture" ]
    (rule_names (report (src [ "let c = ref 0"; "let _go () = Domain.spawn (fun () -> incr c)" ])));
  Alcotest.(check (list string))
    "mutex in the closure is clean" []
    (rule_names
       (report
          (src
             [
               "let c = ref 0";
               "let m = Mutex.create ()";
               "let _go () = Domain.spawn (fun () -> Mutex.lock m; incr c; Mutex.unlock m)";
             ])));
  Alcotest.(check (list string))
    "pure closure is clean" []
    (rule_names (report (src [ "let _go () = Domain.spawn (fun () -> 1 + 1)" ])))

(* --- rule 4: exception message strings -------------------------------------- *)

let test_exn_message () =
  Alcotest.(check (list string))
    "literal-message handler flagged" [ "exn-message" ]
    (rule_names (report (src [ {|let _h f = try f () with Failure "boom" -> ()|} ])));
  Alcotest.(check (list string))
    "rendered-message comparison flagged" [ "exn-message" ]
    (rule_names (report (src [ {|let _h f = try f () with e -> Printexc.to_string e = "X"|} ])));
  Alcotest.(check (list string))
    "family match is clean" []
    (rule_names (report (src [ "let _h f = try f () with Failure _ -> ()" ])))

(* --- rule 5: bounds-unchecked indexing --------------------------------------- *)

let test_unsafe_index () =
  Alcotest.(check (list string))
    "Array.unsafe_get flagged" [ "unsafe-index" ]
    (rule_names (report (src [ "let _f xs i = Array.unsafe_get xs i" ])));
  Alcotest.(check (list string))
    "Bigarray unsafe_set flagged" [ "unsafe-index" ]
    (rule_names (report (src [ "let _f b i v = Bigarray.Array1.unsafe_set b i v" ])));
  Alcotest.(check (list string))
    "checked access is clean" []
    (rule_names (report (src [ "let _f xs i = Array.get xs i"; "let _g (s : string) = String.get s 0" ])));
  (* the sanctioned-kernel shape: an allow with a reason on the site *)
  let r =
    report
      (src
         [
           allow Srclint.Rule.Unsafe_index "loop bounds validated up front";
           "let _f xs i = Array.unsafe_get xs i";
         ])
  in
  Alcotest.(check (list string)) "allowed kernel site is suppressed" [] (rule_names r);
  Alcotest.(check int) "and counted" 1 r.Srclint.Driver.suppressed

(* --- suppression directives -------------------------------------------------- *)

let test_suppression () =
  let r =
    report (src [ allow Srclint.Rule.Nondet_source "tests want ambient time here"; "let _ = Unix.gettimeofday ()" ])
  in
  Alcotest.(check (list string)) "allowed finding is suppressed" [] (rule_names r);
  Alcotest.(check int) "and counted" 1 r.Srclint.Driver.suppressed;
  let r = report (src [ allow Srclint.Rule.Hashtbl_order "nothing to suppress"; "let _pure = 1 + 1" ]) in
  Alcotest.(check (list string)) "stale allow surfaces" [ "unused-allow" ] (rule_names r);
  let r = report (src [ directive "allow no-such-rule because"; "let _ = 0" ]) in
  Alcotest.(check (list string)) "unknown rule is a bad directive" [ "bad-directive" ] (rule_names r);
  let r = report (src [ directive "allow nondet-source"; "let _ = 0" ]) in
  Alcotest.(check (list string)) "reasonless allow is a bad directive" [ "bad-directive" ] (rule_names r);
  (* an allow does not swallow findings of a different rule *)
  let r =
    report (src [ allow Srclint.Rule.Hashtbl_order "wrong rule for this site"; "let _ = Unix.gettimeofday ()" ])
  in
  Alcotest.(check (list string))
    "allow is rule-scoped" [ "nondet-source"; "unused-allow" ]
    (List.sort compare (rule_names r))

(* --- drift (--check) ---------------------------------------------------------- *)

let test_drift () =
  let matched = report (src [ directive "expect nondet-source"; "let _ = Unix.gettimeofday ()" ]) in
  Alcotest.(check (list string)) "matching expect has no drift" [] (Srclint.Driver.drift matched);
  let missing = report (src [ directive "expect nondet-source"; "let _pure = 1 + 1" ]) in
  Alcotest.(check bool) "unmet expect drifts" true (Srclint.Driver.drift missing <> []);
  let unexpected = report (src [ "let _ = Unix.gettimeofday ()" ]) in
  Alcotest.(check bool) "unexpected finding drifts" true (Srclint.Driver.drift unexpected <> [])

let test_parse_error () =
  match Srclint.Driver.report_of_strings [ ("t.ml", "let = =") ] with
  | Ok _ -> Alcotest.fail "a source that does not parse must be an Error"
  | Error msg -> Alcotest.(check bool) "error names the file" true (String.length msg > 0)

(* --- golden: the real binary on the planted fixtures ------------------------- *)

let exe = Filename.concat (Filename.concat ".." "bin") "reveal_cli.exe"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let run_capture args =
  let tmp = Filename.temp_file "srclint_test" ".out" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove tmp with Sys_error _ -> ())
    (fun () ->
      let code = Sys.command (Printf.sprintf "%s %s > %s 2>/dev/null" (Filename.quote exe) args (Filename.quote tmp)) in
      (code, read_file tmp))

let test_golden_text () =
  let code, out = run_capture "srclint fixtures/srclint --check" in
  Alcotest.(check int) "fixtures match their expect table" 0 code;
  Alcotest.(check string) "text report is bit-identical to the golden" (read_file "golden/srclint.txt") out

let test_golden_json () =
  let code, out = run_capture "srclint fixtures/srclint --check --json" in
  Alcotest.(check int) "fixtures match their expect table" 0 code;
  Alcotest.(check string) "json report is bit-identical to the golden" (read_file "golden/srclint.json") out

let test_exit_codes () =
  let code, _ = run_capture "srclint fixtures/srclint" in
  Alcotest.(check int) "planted findings exit 1 without --check" 1 code;
  let code, _ = run_capture "srclint /nonexistent/path.ml" in
  Alcotest.(check int) "unreadable path exits 2" 2 code

(* --- qcheck: the suppression comment round-trips ----------------------------- *)

let qcheck_cases =
  let open QCheck in
  let word = Gen.map (fun l -> String.concat "" (List.map (String.make 1) l)) (Gen.list_size (Gen.int_range 1 8) (Gen.char_range 'a' 'z')) in
  let reason = Gen.map (String.concat " ") (Gen.list_size (Gen.int_range 1 5) word) in
  let arb = make ~print:(fun (r, s) -> Printf.sprintf "(%s, %S)" (Srclint.Rule.name r) s) Gen.(pair (oneofl Srclint.Rule.all) reason) in
  [
    Test.make ~name:"suppress: allow_comment round-trips through parse_line" ~count:500 arb (fun (rule, reason) ->
        match Srclint.Suppress.parse_line (Srclint.Suppress.allow_comment ~rule ~reason) with
        | Srclint.Suppress.Allow (r, re) -> r = rule && re = reason
        | _ -> false);
    Test.make ~name:"suppress: rule names round-trip through of_name" ~count:100
      (make Gen.(oneofl Srclint.Rule.all))
      (fun rule -> Srclint.Rule.of_name (Srclint.Rule.name rule) = Some rule);
  ]

let unit_cases =
  [
    ("srclint: nondet sources", test_nondet);
    ("srclint: hashtbl order", test_hashtbl_order);
    ("srclint: domain capture", test_domain_capture);
    ("srclint: exn message", test_exn_message);
    ("srclint: unsafe index", test_unsafe_index);
    ("srclint: suppression directives", test_suppression);
    ("srclint: expect drift", test_drift);
    ("srclint: parse error is an Error", test_parse_error);
  ]

let golden_cases =
  [
    ("srclint: golden text on fixtures", test_golden_text);
    ("srclint: golden json on fixtures", test_golden_json);
    ("srclint: exit codes", test_exit_codes);
  ]

let suite =
  List.map (fun (name, f) -> Alcotest.test_case name `Quick f) unit_cases
  @ (if Sys.file_exists exe then List.map (fun (name, f) -> Alcotest.test_case name `Quick f) golden_cases else [])
  @ List.map QCheck_alcotest.to_alcotest qcheck_cases
