(* Distributed campaign fabric: wire protocol corruption discipline,
   shard planning/merging determinism, and the orchestrator's retry
   machinery — including the end-to-end bit-identity guarantee: a
   campaign sharded over real worker processes merges to exactly the
   bytes the single-process run produces. *)

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let data = really_input_string ic len in
  close_in ic;
  data

let write_file path data =
  let oc = open_out_bin path in
  output_string oc data;
  close_out oc

let with_temp_file f =
  let path = Filename.temp_file "reveal_fabric" ".bin" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let rejected f =
  match f () with
  | _ -> false
  | exception Invalid_argument _ -> true
  | exception Traceio.Error.Corrupt _ -> true
  | exception Traceio.Error.Io _ -> true

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec at i = i + n <= h && (String.sub haystack i n = needle || at (i + 1)) in
  at 0

(* --- shard planning --------------------------------------------------------- *)

let test_plan_directed () =
  let ranges = Fabric.Shard.plan ~traces:7 ~workers:3 in
  Alcotest.(check (list (pair int int)))
    "7 over 3: first shard takes the extra"
    [ (0, 3); (3, 5); (5, 7) ]
    (Array.to_list (Array.map (fun r -> (r.Fabric.Shard.lo, r.Fabric.Shard.hi)) ranges));
  let empties = Fabric.Shard.plan ~traces:2 ~workers:4 in
  Alcotest.(check int) "more workers than traces: empty tail ranges" 4 (Array.length empties);
  Alcotest.(check (list (pair int int)))
    "empty ranges still tile"
    [ (0, 1); (1, 2); (2, 2); (2, 2) ]
    (Array.to_list (Array.map (fun r -> (r.Fabric.Shard.lo, r.Fabric.Shard.hi)) empties));
  Alcotest.check_raises "zero workers rejected" (Invalid_argument "Shard.plan: workers must be positive") (fun () ->
      ignore (Fabric.Shard.plan ~traces:4 ~workers:0));
  Alcotest.check_raises "negative traces rejected" (Invalid_argument "Shard.plan: negative trace count") (fun () ->
      ignore (Fabric.Shard.plan ~traces:(-1) ~workers:2))

let qcheck_plan =
  QCheck.Test.make ~count:300 ~name:"plan: contiguous cover of [0,traces), sizes within 1"
    QCheck.(pair (int_range 0 200) (int_range 1 32))
    (fun (traces, workers) ->
      let plan = Fabric.Shard.plan ~traces ~workers in
      let tiles =
        Array.fold_left
          (fun acc r ->
            match acc with
            | Some pos when r.Fabric.Shard.lo = pos && r.Fabric.Shard.hi >= r.Fabric.Shard.lo ->
                Some r.Fabric.Shard.hi
            | _ -> None)
          (Some 0) plan
      in
      let sizes = Array.map (fun r -> r.Fabric.Shard.hi - r.Fabric.Shard.lo) plan in
      let mn = Array.fold_left min max_int sizes and mx = Array.fold_left max 0 sizes in
      Array.length plan = workers && tiles = Some traces && mx - mn <= 1)

(* --- shard result codec ------------------------------------------------------ *)

let mk_result i =
  {
    Reveal.Campaign.actual = (i mod 9) - 4;
    verdict =
      {
        Sca.Attack.sign = (if i mod 2 = 0 then 1 else -1);
        value = (i mod 9) - 4;
        posterior = Array.init 8 (fun j -> (j - 4, 1.0 /. float_of_int (i + j + 2)));
      };
    posterior_all = Array.init 29 (fun j -> (j - 14, 1.0 /. float_of_int (i + j + 2)));
    grade =
      (match i mod 4 with
      | 0 -> Reveal.Campaign.Confident
      | 1 -> Reveal.Campaign.Tentative
      | 2 -> Reveal.Campaign.SignOnly
      | _ -> Reveal.Campaign.Unknown);
    recovery =
      (match i mod 3 with
      | 0 -> Reveal.Campaign.Clean
      | 1 -> Reveal.Campaign.Retried (i mod 5)
      | _ -> Reveal.Campaign.Unrecoverable);
  }

let sample_result =
  lazy
    {
      Fabric.Shard.shard = 2;
      range = { Fabric.Shard.lo = 6; hi = 9 };
      corrupt_skipped = 1;
      results = Array.init 48 mk_result;
    }

let test_shard_codec_roundtrip () =
  let r = Lazy.force sample_result in
  let payload = Fabric.Shard.result_payload r in
  let decoded = Fabric.Shard.result_of_payload ~path:"<mem>" payload in
  Alcotest.(check string) "decode/encode is the identity on the payload" payload
    (Fabric.Shard.result_payload decoded);
  Alcotest.(check int) "shard id survives" r.Fabric.Shard.shard decoded.Fabric.Shard.shard;
  Alcotest.(check bool) "range survives" true (decoded.Fabric.Shard.range = r.Fabric.Shard.range);
  Alcotest.(check bool) "results are structurally identical" true (decoded.Fabric.Shard.results = r.Fabric.Shard.results);
  with_temp_file (fun path ->
      Fabric.Shard.save path r;
      let loaded = Fabric.Shard.load path in
      Alcotest.(check string) "save/load preserves the payload bytes" payload (Fabric.Shard.result_payload loaded))

let qcheck_shard_codec =
  let payload = lazy (Fabric.Shard.result_payload (Lazy.force sample_result)) in
  let file_image =
    lazy
      (with_temp_file (fun path ->
           Fabric.Shard.save path (Lazy.force sample_result);
           read_file path))
  in
  [
    QCheck.Test.make ~count:50 ~name:"shard result: truncated payload rejected"
      QCheck.(float_range 0.0 1.0)
      (fun frac ->
        let payload = Lazy.force payload in
        let keep = int_of_float (frac *. float_of_int (String.length payload - 1)) in
        rejected (fun () -> Fabric.Shard.result_of_payload ~path:"<mem>" (String.sub payload 0 keep)));
    QCheck.Test.make ~count:50 ~name:"shard result: single bit flip in file rejected"
      QCheck.(float_range 0.0 1.0)
      (fun frac ->
        let image = Lazy.force file_image in
        let bit = int_of_float (frac *. float_of_int ((String.length image * 8) - 1)) in
        let mutated = Bytes.of_string image in
        Bytes.set mutated (bit / 8) (Char.chr (Char.code image.[bit / 8] lxor (1 lsl (bit mod 8))));
        with_temp_file (fun path ->
            write_file path (Bytes.to_string mutated);
            rejected (fun () -> Fabric.Shard.load path)));
  ]

(* --- shard merge ------------------------------------------------------------- *)

let campaign_profile =
  lazy
    (let rng = Mathkit.Prng.create ~seed:54398L () in
     let device = Reveal.Device.create ~n:64 () in
     Reveal.Campaign.profile ~per_value:20 device rng)

let test_merge_checks () =
  let prof = Lazy.force campaign_profile in
  let slice shard lo hi =
    { Fabric.Shard.shard; range = { Fabric.Shard.lo; hi }; corrupt_skipped = 0; results = Array.init (hi - lo) mk_result }
  in
  let expect_error msg parts =
    match Fabric.Shard.merge prof parts with
    | Ok _ -> Alcotest.failf "merge accepted %s" msg
    | Error e -> Alcotest.(check bool) (msg ^ " produces a typed error") true (e <> "")
  in
  expect_error "a duplicate shard" [ slice 0 0 2; slice 0 0 2 ];
  expect_error "a missing shard" [ slice 0 0 2; slice 2 4 6 ];
  expect_error "a gap" [ slice 0 0 2; slice 1 3 5 ];
  (match Fabric.Shard.merge prof [ slice 1 2 4; slice 0 0 2 ] with
  | Error e -> Alcotest.failf "well-formed out-of-order merge rejected: %s" e
  | Ok (_, merged) -> Alcotest.(check int) "out-of-order slices merge in trace order" 4 (Array.length merged));
  match Fabric.Shard.merge prof [] with
  | Ok (stats, merged) ->
      Alcotest.(check int) "empty merge is the empty campaign" 0 (Array.length merged);
      Alcotest.(check int) "no corrupt skips" 0 stats.Reveal.Campaign.corrupt_skipped
  | Error e -> Alcotest.failf "empty merge should degenerate cleanly: %s" e

(* --- wire protocol ----------------------------------------------------------- *)

(* A small recorded campaign to stream: real traces, real codec. *)
let wire_fixture =
  lazy
    (let path = Filename.temp_file "reveal_wire" ".rvt" in
     let device = Reveal.Device.create ~n:8 () in
     let g = Mathkit.Prng.create ~seed:11L () in
     Reveal.Device.record device ~path ~seed:11L ~traces:3 ~scope_rng:g ~sampler_rng:g;
     let header = Traceio.Archive.with_reader path Traceio.Archive.header in
     let records = List.rev (Traceio.Archive.fold path (fun acc r -> r :: acc) []) in
     at_exit (fun () -> try Sys.remove path with Sys_error _ -> ());
     (header, records))

let record_payload (r : Traceio.Archive.record) =
  Traceio.Archive.record_payload ~index:r.Traceio.Archive.index ~noises:r.Traceio.Archive.noises
    r.Traceio.Archive.trace

let wire_image () =
  let header, records = Lazy.force wire_fixture in
  with_temp_file (fun path ->
      let oc = open_out_bin path in
      let sender = Traceio.Wire.create_sender ~peer:"test" ~header oc in
      List.iter (fun r -> Traceio.Wire.send sender ~noises:r.Traceio.Archive.noises r.Traceio.Archive.trace) records;
      Traceio.Wire.finish sender;
      close_out oc;
      read_file path)

let drain_receiver r =
  let rec loop acc skips =
    match Traceio.Wire.recv r with
    | `Record rec_ -> loop (rec_ :: acc) skips
    | `Skipped _ -> loop acc (skips + 1)
    | `End_of_stream -> (List.rev acc, skips)
  in
  loop [] 0

let receive_image ?strict image =
  with_temp_file (fun path ->
      write_file path image;
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let r = Traceio.Wire.open_receiver ?strict ~peer:"test" ic in
          let recs, skips = drain_receiver r in
          (Traceio.Wire.receiver_header r, recs, skips)))

let test_wire_roundtrip () =
  let header, records = Lazy.force wire_fixture in
  let h, received, skips = receive_image (wire_image ()) in
  Alcotest.(check int) "header n survives the wire" header.Traceio.Archive.n h.Traceio.Archive.n;
  Alcotest.(check int) "no skips on a clean stream" 0 skips;
  Alcotest.(check int) "every record arrives" (List.length records) (List.length received);
  List.iter2
    (fun a b -> Alcotest.(check string) "record payload is bit-identical" (record_payload a) (record_payload b))
    records received;
  (* recv after the end frame keeps answering End_of_stream *)
  with_temp_file (fun path ->
      write_file path (wire_image ());
      let ic = open_in_bin path in
      let r = Traceio.Wire.open_receiver ~peer:"test" ic in
      ignore (drain_receiver r);
      (match Traceio.Wire.recv r with
      | `End_of_stream -> ()
      | _ -> Alcotest.fail "recv past the end frame must stay End_of_stream");
      close_in ic)

(* Locate the first record frame: magic(8) + version(2), then the
   header frame [len | payload | crc]. *)
let first_record_frame_offset image =
  let u32 at = Char.code image.[at] lor (Char.code image.[at + 1] lsl 8) lor (Char.code image.[at + 2] lsl 16) lor (Char.code image.[at + 3] lsl 24) in
  let preamble = 10 in
  preamble + 4 + u32 preamble + 4

let flip_byte image at =
  let b = Bytes.of_string image in
  Bytes.set b at (Char.chr (Char.code image.[at] lxor 0x01));
  Bytes.to_string b

let test_wire_corrupt_record_skipped () =
  let _, records = Lazy.force wire_fixture in
  let image = wire_image () in
  (* flip a payload byte inside record frame 0 (skip its length field) *)
  let mutated = flip_byte image (first_record_frame_offset image + 4 + 8) in
  let _, received, skips = receive_image mutated in
  Alcotest.(check int) "one slot skipped" 1 skips;
  Alcotest.(check int) "the other records still arrive" (List.length records - 1) (List.length received);
  List.iter2
    (fun a b -> Alcotest.(check string) "survivors are bit-identical" (record_payload a) (record_payload b))
    (List.tl records) received;
  Alcotest.(check bool) "strict mode raises instead" true
    (rejected (fun () -> receive_image ~strict:true mutated))

let test_wire_truncation_raises () =
  let image = wire_image () in
  (* cut the end frame off: EOF without 'E' must be loud, not a clean end *)
  let cut = String.sub image 0 (String.length image - 13) in
  (match receive_image cut with
  | _ -> Alcotest.fail "truncated stream accepted as complete"
  | exception Traceio.Error.Corrupt msg ->
      Alcotest.(check bool) "error names the mid-stream close" true (contains msg "closed mid-stream"));
  (* damage to the preamble is structural *)
  Alcotest.(check bool) "bad magic rejected" true (rejected (fun () -> receive_image (flip_byte image 0)));
  Alcotest.(check bool) "bad version rejected" true (rejected (fun () -> receive_image (flip_byte image 8)))

let qcheck_wire =
  let image = lazy (wire_image ()) in
  let records = lazy (snd (Lazy.force wire_fixture)) in
  QCheck.Test.make ~count:60 ~name:"wire: single bit flip is never silently accepted"
    QCheck.(float_range 0.0 1.0)
    (fun frac ->
      let image = Lazy.force image in
      let originals = Lazy.force records in
      let bit = int_of_float (frac *. float_of_int ((String.length image * 8) - 1)) in
      let mutated = Bytes.of_string image in
      Bytes.set mutated (bit / 8) (Char.chr (Char.code image.[bit / 8] lxor (1 lsl (bit mod 8))));
      match receive_image (Bytes.to_string mutated) with
      | exception Traceio.Error.Corrupt _ -> true
      | exception Traceio.Error.Io _ -> true
      | _, received, skips ->
          (* accepted: then something must have been skipped, or the
             stream must still be byte-identical (impossible for a
             CRC-protected image, so demand a skip) *)
          skips > 0
          || List.length received <> List.length originals
          || not (List.for_all2 (fun a b -> record_payload a = record_payload b) originals received))

let qcheck_frame_roundtrip =
  QCheck.Test.make ~count:50 ~name:"wire: frame round-trips arbitrary payloads"
    QCheck.(string_of_size Gen.(0 -- 2000))
    (fun payload ->
      with_temp_file (fun path ->
          let oc = open_out_bin path in
          Traceio.Frame.write ~path oc payload;
          close_out oc;
          let ic = open_in_bin path in
          let r = Traceio.Frame.read ~path ic in
          close_in ic;
          r = Some payload))

(* --- wire over a real socket -------------------------------------------------- *)

(* The serving peer runs on its own domain: Unix.fork is off-limits
   here (OCaml forbids it once any domain was ever spawned, and the
   campaign layers use Mathkit.Parallel), and a separate domain
   exercises the same full-duplex socket discipline. *)
let serve_on_domain f =
  let d = Domain.spawn (fun () -> match f () with () -> None | exception e -> Some e) in
  fun () -> match Domain.join d with None -> () | Some e -> raise e

let test_wire_over_socketpair () =
  let header, records = Lazy.force wire_fixture in
  let recv_fd, send_fd = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let join =
    serve_on_domain (fun () ->
        let oc = Unix.out_channel_of_descr send_fd in
        let sender = Traceio.Wire.create_sender ~peer:"server" ~header oc in
        List.iter
          (fun r -> Traceio.Wire.send sender ~noises:r.Traceio.Archive.noises r.Traceio.Archive.trace)
          records;
        Traceio.Wire.finish sender;
        close_out oc)
  in
  let ic = Unix.in_channel_of_descr recv_fd in
  let closed = ref false in
  let src = Traceio.Wire.source ~peer:"socketpair" ~close:(fun () -> closed := true) ic in
  let rec loop acc =
    match Traceio.Source.next src with
    | `Record r -> loop (r :: acc)
    | `Skipped _ -> loop acc
    | `End_of_archive -> List.rev acc
  in
  let received = loop [] in
  Traceio.Source.close src;
  close_in_noerr ic;
  join ();
  Alcotest.(check int) "all records crossed the socket" (List.length records) (List.length received);
  List.iter2
    (fun a b -> Alcotest.(check string) "socket records bit-identical" (record_payload a) (record_payload b))
    records received;
  Alcotest.(check bool) "close callback ran" true !closed

(* A remote campaign over a Unix-socket transport equals the archive
   replay of the same records: Source.remote is a drop-in acquisition
   backend. *)
let test_remote_campaign_matches_replay () =
  let sock = Filename.temp_file "reveal_fabric" ".sock" in
  Sys.remove sock;
  let archive = Filename.temp_file "reveal_fabric" ".rvt" in
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove archive with Sys_error _ -> ());
      try Sys.remove sock with Sys_error _ -> ())
    (fun () ->
      let device = Reveal.Device.create ~n:64 () in
      let g = Mathkit.Prng.create ~seed:5L () in
      Reveal.Device.record device ~path:archive ~seed:5L ~traces:2 ~scope_rng:g ~sampler_rng:g;
      let prof = Lazy.force campaign_profile in
      let baseline = Reveal.Campaign.attack_archive prof archive in
      let listener = Fabric.Transport.listen (Fabric.Transport.Unix_socket sock) in
      let join = serve_on_domain (fun () -> ignore (Fabric.Serve.archive_once listener ~path:archive)) in
      let conn = Fabric.Transport.connect (Fabric.Transport.Unix_socket sock) in
      let source =
        Reveal.Source.remote ~peer:conn.Fabric.Transport.peer
          ~close:(fun () -> Fabric.Transport.close_connection conn)
          conn.Fabric.Transport.ic
      in
      let remote = Reveal.Campaign.run_source prof source in
      join ();
      Fabric.Transport.close_listener listener;
      Alcotest.(check bool) "remote campaign stats equal archive replay" true (fst baseline = fst remote);
      Alcotest.(check bool) "remote campaign results bit-identical" true (snd baseline = snd remote))

(* --- orchestrator ------------------------------------------------------------- *)

let with_work_dir f =
  let wd = Fabric.Orchestrator.fresh_work_dir () in
  Fun.protect ~finally:(fun () -> Fabric.Orchestrator.remove_dir wd) (fun () -> f wd)

let test_orchestrator_failure_typing () =
  with_work_dir @@ fun wd ->
  let command ~shard:_ ~attempt:_ ~range:_ ~out:_ ~log:_ = [| "/bin/sh"; "-c"; "exit 3" |] in
  let config = { Fabric.Orchestrator.max_inflight = 2; retries = 1; timeout_s = None; work_dir = wd; command } in
  (match Fabric.Orchestrator.run config ~plan:[| { Fabric.Shard.lo = 0; hi = 1 } |] with
  | Ok _ -> Alcotest.fail "a worker that always exits 3 cannot succeed"
  | Error failures ->
      Alcotest.(check int) "first attempt plus one retry" 2 (List.length failures);
      List.iteri
        (fun i f ->
          Alcotest.(check int) "attempts are numbered" i f.Fabric.Orchestrator.f_attempt;
          Alcotest.(check bool) "status is the typed exit code" true (f.Fabric.Orchestrator.f_status = Fabric.Orchestrator.Exited 3);
          Alcotest.(check bool) "log path recorded" true (contains f.Fabric.Orchestrator.f_log wd))
        failures);
  (* exit 0 without writing the result file is also a typed failure *)
  let config = { config with Fabric.Orchestrator.retries = 0; command = (fun ~shard:_ ~attempt:_ ~range:_ ~out:_ ~log:_ -> [| "/bin/sh"; "-c"; "exit 0" |]) } in
  match Fabric.Orchestrator.run config ~plan:[| { Fabric.Shard.lo = 0; hi = 1 } |] with
  | Ok _ -> Alcotest.fail "a worker that writes no result cannot succeed"
  | Error [ f ] ->
      Alcotest.(check bool) "clean exit, missing file" true (f.Fabric.Orchestrator.f_status = Fabric.Orchestrator.Exited 0);
      Alcotest.(check bool) "reason is non-empty" true (f.Fabric.Orchestrator.f_reason <> "")
  | Error l -> Alcotest.failf "expected exactly one failure, got %d" (List.length l)

let test_orchestrator_empty_ranges () =
  with_work_dir @@ fun wd ->
  (* empty shards are satisfied without ever spawning the (failing) command *)
  let command ~shard:_ ~attempt:_ ~range:_ ~out:_ ~log:_ = [| "/bin/sh"; "-c"; "exit 3" |] in
  let config = { Fabric.Orchestrator.max_inflight = 1; retries = 0; timeout_s = None; work_dir = wd; command } in
  match Fabric.Orchestrator.run config ~plan:[| { Fabric.Shard.lo = 0; hi = 0 }; { Fabric.Shard.lo = 0; hi = 0 } |] with
  | Error _ -> Alcotest.fail "empty ranges must not spawn workers"
  | Ok report ->
      Alcotest.(check int) "one result per plan entry" 2 (Array.length report.Fabric.Orchestrator.results);
      Array.iter
        (fun r -> Alcotest.(check int) "empty result slices" 0 (Array.length r.Fabric.Shard.results))
        report.Fabric.Orchestrator.results;
      Alcotest.(check int) "nothing retried" 0 report.Fabric.Orchestrator.retried

let test_pool_timeout () =
  with_work_dir @@ fun wd ->
  (* a worker that sleeps past its wall-clock budget is killed, charged
     a typed Timed_out failure, and the charge consumes retry budget *)
  let jobs =
    {
      Fabric.Orchestrator.job_count = 2;
      command =
        (fun ~job ~attempt:_ ~out ~log:_ ->
          if job = 0 then [| "/bin/sh"; "-c"; "sleep 30" |]
          else [| "/bin/sh"; "-c"; Printf.sprintf "echo ok > %s" (Filename.quote out) |]);
      out_path = (fun ~job -> Filename.concat wd (Printf.sprintf "out-%d" job));
      log_path = (fun ~job ~attempt -> Filename.concat wd (Printf.sprintf "log-%d-%d" job attempt));
      collect = (fun ~job:_ ~out -> if Sys.file_exists out then Ok () else Error "no result");
    }
  in
  let pool = { Fabric.Orchestrator.max_inflight = 2; retries = 1; timeout_s = Some 0.3; fail_fast = false } in
  let report = Fabric.Orchestrator.run_pool pool jobs in
  Alcotest.(check bool) "a no-fail-fast pool never aborts" false report.Fabric.Orchestrator.aborted;
  (match report.Fabric.Orchestrator.outcomes.(0) with
  | Ok () -> Alcotest.fail "a sleeping worker cannot succeed"
  | Error failures ->
      Alcotest.(check int) "the timeout consumed the retry budget" 2 (List.length failures);
      List.iter
        (fun f ->
          match f.Fabric.Orchestrator.f_status with
          | Fabric.Orchestrator.Timed_out t ->
              Alcotest.(check bool) "the charge records at least the budget" true (t >= 0.3)
          | s -> Alcotest.failf "expected Timed_out, got %s" (Fabric.Orchestrator.status_to_string s))
        failures);
  (match report.Fabric.Orchestrator.outcomes.(1) with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "the quick job must be unaffected by its neighbour's hang");
  Alcotest.(check int) "one job needed retries" 1 report.Fabric.Orchestrator.pool_retried

(* --- end-to-end: real workers, bit-identical merge --------------------------- *)

let exe = Filename.concat (Filename.concat ".." "bin") "reveal_cli.exe"

let golden_seed = 54398
let golden_n = 64
let golden_traces = 2

(* The single-process baseline, attacked with the *decoded* profile
   cache — exactly what the workers load. *)
let baseline =
  lazy
    (with_temp_file (fun ppath ->
         Reveal.Campaign.save_profile ppath (Lazy.force campaign_profile);
         let prof = Reveal.Campaign.load_profile ppath in
         let device = Reveal.Device.create ~n:golden_n () in
         let rng = Mathkit.Prng.create ~seed:(Int64.of_int golden_seed) () in
         let scope_rng = Mathkit.Prng.split rng and sampler_rng = Mathkit.Prng.split rng in
         let source =
           Reveal.Source.device_live_range ~retry:true device ~traces:golden_traces ~lo:0 ~hi:golden_traces ~scope_rng
             ~sampler_rng
         in
         (prof, Reveal.Campaign.run_source prof source)))

let merged_payload results =
  Fabric.Shard.result_payload
    { Fabric.Shard.shard = 0; range = { Fabric.Shard.lo = 0; hi = golden_traces }; corrupt_skipped = 0; results }

let run_workers ~sabotage wd ppath =
  let plan = Fabric.Shard.plan ~traces:golden_traces ~workers:2 in
  let command ~shard ~attempt ~range ~out ~log:_ =
    Array.of_list
      ([
         exe;
         "worker";
         "--seed";
         string_of_int golden_seed;
         "-n";
         string_of_int golden_n;
         "--traces";
         string_of_int golden_traces;
         "--shard-id";
         string_of_int shard;
         "--shard-lo";
         string_of_int range.Fabric.Shard.lo;
         "--shard-hi";
         string_of_int range.Fabric.Shard.hi;
         "--profile";
         ppath;
         "--out";
         out;
       ]
      @ if sabotage && shard = 0 && attempt = 0 then [ "--sabotage" ] else [])
  in
  let config = { Fabric.Orchestrator.max_inflight = 2; retries = 1; timeout_s = None; work_dir = wd; command } in
  Fabric.Orchestrator.run config ~plan

let require_exe () = if not (Sys.file_exists exe) then Alcotest.skip ()

let test_sharded_run_bit_identical () =
  require_exe ();
  let prof, (base_stats, base_results) = Lazy.force baseline in
  with_work_dir @@ fun wd ->
  let ppath = Filename.concat wd "profile.bin" in
  Reveal.Campaign.save_profile ppath prof;
  match run_workers ~sabotage:false wd ppath with
  | Error failures ->
      Alcotest.failf "clean 2-worker run failed: %s"
        (String.concat "; " (List.map Fabric.Orchestrator.describe_failure failures))
  | Ok report -> (
      Alcotest.(check int) "no retries on the clean run" 0 report.Fabric.Orchestrator.retried;
      match Fabric.Shard.merge prof (Array.to_list report.Fabric.Orchestrator.results) with
      | Error e -> Alcotest.failf "merge failed: %s" e
      | Ok (stats, results) ->
          Alcotest.(check bool) "merged stats bit-identical to single process" true (stats = base_stats);
          Alcotest.(check string) "merged results byte-identical to single process" (merged_payload base_results)
            (merged_payload results))

let test_killed_worker_retried_still_identical () =
  require_exe ();
  let prof, (base_stats, base_results) = Lazy.force baseline in
  with_work_dir @@ fun wd ->
  let ppath = Filename.concat wd "profile.bin" in
  Reveal.Campaign.save_profile ppath prof;
  match run_workers ~sabotage:true wd ppath with
  | Error failures ->
      Alcotest.failf "sabotaged run should recover via retry: %s"
        (String.concat "; " (List.map Fabric.Orchestrator.describe_failure failures))
  | Ok report -> (
      Alcotest.(check int) "the killed shard was retried" 1 report.Fabric.Orchestrator.retried;
      Alcotest.(check bool) "the kill left a typed failure record" true
        (List.exists
           (fun f ->
             f.Fabric.Orchestrator.f_shard = 0
             && match f.Fabric.Orchestrator.f_status with Fabric.Orchestrator.Signaled _ -> true | _ -> false)
           report.Fabric.Orchestrator.failures);
      match Fabric.Shard.merge prof (Array.to_list report.Fabric.Orchestrator.results) with
      | Error e -> Alcotest.failf "merge failed after retry: %s" e
      | Ok (stats, results) ->
          Alcotest.(check bool) "stats still bit-identical after the retry" true (stats = base_stats);
          Alcotest.(check string) "results still byte-identical after the retry" (merged_payload base_results)
            (merged_payload results))

(* --- transport --------------------------------------------------------------- *)

let test_transport_parse () =
  (match Fabric.Transport.parse "unix:/tmp/fab.sock" with
  | Ok (Fabric.Transport.Unix_socket p) -> Alcotest.(check string) "unix path" "/tmp/fab.sock" p
  | _ -> Alcotest.fail "unix endpoint did not parse");
  (match Fabric.Transport.parse "tcp:localhost:9000" with
  | Ok (Fabric.Transport.Tcp (h, p)) ->
      Alcotest.(check string) "tcp host" "localhost" h;
      Alcotest.(check int) "tcp port" 9000 p
  | _ -> Alcotest.fail "tcp endpoint did not parse");
  List.iter
    (fun s ->
      match Fabric.Transport.parse s with
      | Ok _ -> Alcotest.failf "%S should not parse" s
      | Error e -> Alcotest.(check bool) (s ^ " error is non-empty") true (e <> ""))
    [ ""; "bogus"; "tcp:nohost"; "tcp:host:0"; "tcp:host:70000"; "tcp:host:abc"; "unix:" ];
  List.iter
    (fun ep ->
      Alcotest.(check bool) "to_string round-trips through parse" true
        (Fabric.Transport.parse (Fabric.Transport.to_string ep) = Ok ep))
    [ Fabric.Transport.Unix_socket "/tmp/x.sock"; Fabric.Transport.Tcp ("example.org", 443) ]

let test_transport_connect_retry () =
  with_work_dir @@ fun wd ->
  let path = Filename.concat wd "late.sock" in
  let ep = Fabric.Transport.Unix_socket path in
  (* nobody listening, no retries: the old fail-immediately contract *)
  (match Fabric.Transport.connect ep with
  | _ -> Alcotest.fail "connecting to an absent socket must fail"
  | exception Traceio.Error.Io _ -> ());
  (match Fabric.Transport.connect ~retries:(-1) ep with
  | _ -> Alcotest.fail "negative retries must be rejected"
  | exception Invalid_argument _ -> ());
  (match Fabric.Transport.connect ~retries:1 ~backoff_s:0.0 ep with
  | _ -> Alcotest.fail "non-positive backoff must be rejected"
  | exception Invalid_argument _ -> ());
  (* a listener that shows up late: the bounded backoff rides out the
     serve/connect race that used to need sleeps in scripts *)
  let listener =
    Domain.spawn (fun () ->
        Unix.sleepf 0.25;
        let l = Fabric.Transport.listen ep in
        let c = Fabric.Transport.accept l in
        Fabric.Transport.close_connection c;
        Fabric.Transport.close_listener l)
  in
  let conn = Fabric.Transport.connect ~retries:10 ~backoff_s:0.05 ep in
  Alcotest.(check bool) "peer label carries the endpoint" true (contains conn.Fabric.Transport.peer path);
  Fabric.Transport.close_connection conn;
  Domain.join listener

(* --- telemetry streams -------------------------------------------------------- *)

(* Real obs lines: a logical-clock context with a named source, a few
   heartbeats (the campaign driver's per-batch event) and optional
   trailing chatter — serialized exactly as Sink.stream would hand
   them to the wire. *)
let telemetry_lines ?(source = "shard-0") ?(trailing = 0) beats =
  let sink, drain = Obs.Sink.memory () in
  let obs = Obs.Ctx.create ~clock:(Obs.Clock.logical ()) ~source ~sink () in
  List.iter
    (fun (d, total) ->
      Obs.Ctx.event
        ~attrs:[ ("done", Obs.Json.Int d); ("total", Obs.Json.Int total) ]
        obs Fabric.Telemetry.heartbeat_event)
    beats;
  for _ = 1 to trailing do
    Obs.Ctx.event obs "chatter"
  done;
  Obs.Ctx.close obs;
  List.map Obs.Json.to_string (drain ())

let telemetry_image lines =
  with_temp_file (fun path ->
      let oc = open_out_bin path in
      let s = Traceio.Wire.create_telemetry_sender ~peer:"test" oc in
      List.iter (Traceio.Wire.telemetry_send s) lines;
      Traceio.Wire.telemetry_finish s;
      close_out oc;
      read_file path)

let receive_telemetry ?strict image =
  with_temp_file (fun path ->
      write_file path image;
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let r = Traceio.Wire.open_telemetry_receiver ?strict ~peer:"test" ic in
          let rec loop acc skips =
            match Traceio.Wire.telemetry_recv r with
            | `Line l -> loop (l :: acc) skips
            | `Skipped _ -> loop acc (skips + 1)
            | `End_of_stream -> (List.rev acc, skips)
          in
          loop [] 0))

let drain_telemetry ?strict ?on_heartbeat image =
  with_temp_file (fun path ->
      write_file path image;
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> Fabric.Telemetry.drain ?strict ?on_heartbeat ~peer:"peer" ic))

let test_telemetry_roundtrip () =
  let lines = telemetry_lines [ (32, 128); (64, 128) ] in
  let received, skips = receive_telemetry (telemetry_image lines) in
  Alcotest.(check int) "no skips on a clean stream" 0 skips;
  Alcotest.(check (list string)) "every line arrives verbatim, in order" lines received;
  (* sender contract: empty lines and finished senders are caller bugs *)
  with_temp_file (fun path ->
      let oc = open_out_bin path in
      let s = Traceio.Wire.create_telemetry_sender ~peer:"test" oc in
      Alcotest.check_raises "empty line rejected"
        (Invalid_argument "Wire.telemetry_send: empty line") (fun () -> Traceio.Wire.telemetry_send s "");
      Traceio.Wire.telemetry_send s "{}";
      Alcotest.(check int) "count tracks sends" 1 (Traceio.Wire.telemetry_count s);
      Traceio.Wire.telemetry_finish s;
      Traceio.Wire.telemetry_finish s;
      (* idempotent *)
      Alcotest.(check bool) "send after finish rejected" true
        (match Traceio.Wire.telemetry_send s "{}" with
        | () -> false
        | exception Invalid_argument _ -> true);
      close_out oc)

(* Telemetry frames start right after the preamble (magic 8 + version
   2): there is no header frame, the first 'T' frame sits at offset 10. *)
let first_telemetry_frame_offset = 10

let test_telemetry_corruption_discipline () =
  let lines = telemetry_lines [ (32, 128) ] in
  let image = telemetry_image lines in
  (* flip a byte inside the first frame's JSON payload (past len + tag):
     that slot is skipped, the rest of the stream survives *)
  let mutated = flip_byte image (first_telemetry_frame_offset + 4 + 2) in
  let received, skips = receive_telemetry mutated in
  Alcotest.(check int) "damaged slot skipped" 1 skips;
  Alcotest.(check (list string)) "survivors arrive verbatim" (List.tl lines) received;
  Alcotest.(check bool) "strict mode raises instead" true (rejected (fun () -> receive_telemetry ~strict:true mutated));
  (* cutting the end frame off must be loud, not a clean end *)
  let cut = String.sub image 0 (String.length image - 13) in
  (match receive_telemetry cut with
  | _ -> Alcotest.fail "truncated telemetry accepted as complete"
  | exception Traceio.Error.Corrupt msg ->
      Alcotest.(check bool) "error names the mid-stream close" true (contains msg "closed mid-stream"));
  (* preamble damage is structural, and an archive stream is not telemetry *)
  Alcotest.(check bool) "bad magic rejected" true (rejected (fun () -> receive_telemetry (flip_byte image 0)));
  Alcotest.(check bool) "bad version rejected" true (rejected (fun () -> receive_telemetry (flip_byte image 8)));
  Alcotest.(check bool) "archive stream on a telemetry endpoint rejected" true
    (rejected (fun () -> receive_telemetry (wire_image ())))

let qcheck_telemetry =
  let fixture = lazy (let lines = telemetry_lines [ (16, 64); (32, 64) ] ~trailing:2 in (lines, telemetry_image lines)) in
  QCheck.Test.make ~count:60 ~name:"telemetry: single bit flip is never silently accepted"
    QCheck.(float_range 0.0 1.0)
    (fun frac ->
      let lines, image = Lazy.force fixture in
      let bit = int_of_float (frac *. float_of_int ((String.length image * 8) - 1)) in
      let mutated = Bytes.of_string image in
      Bytes.set mutated (bit / 8) (Char.chr (Char.code image.[bit / 8] lxor (1 lsl (bit mod 8))));
      match receive_telemetry (Bytes.to_string mutated) with
      | exception Traceio.Error.Corrupt _ -> true
      | exception Traceio.Error.Io _ -> true
      | received, skips -> skips > 0 || received <> lines)

let test_telemetry_drain () =
  let beats = ref [] in
  let on_heartbeat ~source ~done_ ~total ~t = beats := (source, done_, total, t) :: !beats in
  let lines = telemetry_lines ~source:"shard-3" [ (32, 128); (64, 128) ] in
  let r = drain_telemetry ~on_heartbeat (telemetry_image lines) in
  Alcotest.(check string) "name is the start record's source" "shard-3" r.Fabric.Telemetry.r_name;
  Alcotest.(check (option string)) "source recorded" (Some "shard-3") r.Fabric.Telemetry.r_source;
  Alcotest.(check int) "heartbeats counted" 2 r.Fabric.Telemetry.r_heartbeats;
  Alcotest.(check int) "progress is the last heartbeat's" 64 r.Fabric.Telemetry.r_done;
  Alcotest.(check (option int)) "expected total known" (Some 128) r.Fabric.Telemetry.r_total;
  Alcotest.(check int) "nothing skipped" 0 r.Fabric.Telemetry.r_skipped;
  Alcotest.(check bool) "stream complete" true (r.Fabric.Telemetry.r_truncated = None);
  (* logical clock: start=1, heartbeats tick 2 and 3 *)
  Alcotest.(check (option (float 1e-9))) "first heartbeat time" (Some 2.0) r.Fabric.Telemetry.r_first_hb;
  Alcotest.(check (option (float 1e-9))) "last heartbeat time" (Some 3.0) r.Fabric.Telemetry.r_last_hb;
  Alcotest.(check int) "summary folded every line" (List.length lines) r.Fabric.Telemetry.r_summary.Obs.Summary.records;
  Alcotest.(check bool) "live feed fired per heartbeat, in order" true
    (List.rev !beats = [ ("shard-3", 32, Some 128, 2.0); ("shard-3", 64, Some 128, 3.0) ]);
  (* a worker cut mid-stream is a finding: partial summary, truncation named *)
  let image = telemetry_image lines in
  let cut = String.sub image 0 (String.length image - 13) in
  let r = drain_telemetry cut in
  Alcotest.(check bool) "truncation recorded, not raised" true
    (match r.Fabric.Telemetry.r_truncated with Some m -> contains m "closed mid-stream" | None -> false);
  Alcotest.(check int) "partial progress retained" 64 r.Fabric.Telemetry.r_done;
  Alcotest.(check bool) "strict drain raises instead" true (rejected (fun () -> drain_telemetry ~strict:true cut))

let test_telemetry_merge_reports () =
  Alcotest.(check bool) "empty fleet merges to nothing" true (Fabric.Telemetry.merge_reports [] = None);
  let report source = drain_telemetry (telemetry_image (telemetry_lines ~source [ (8, 16) ])) in
  let a = report "shard-0" and b = report "shard-1" in
  (* merge folds in sorted name order regardless of arrival order *)
  let expected = Obs.Summary.merge a.Fabric.Telemetry.r_summary b.Fabric.Telemetry.r_summary in
  (match Fabric.Telemetry.merge_reports [ b; a ] with
  | None -> Alcotest.fail "non-empty fleet must merge"
  | Some m ->
      Alcotest.(check int) "records sum across the fleet" expected.Obs.Summary.records m.Obs.Summary.records;
      Alcotest.(check string) "merge order is name order, as obs merge"
        (Obs.Summary.render expected) (Obs.Summary.render m))

let test_stragglers_and_missed_heartbeats () =
  let s = Fabric.Telemetry.stragglers in
  Alcotest.(check (list string)) "slow worker flagged" [ "c" ]
    (s [ ("a", 100, 10.0); ("b", 100, 10.0); ("c", 10, 10.0) ]);
  Alcotest.(check (list string)) "uniform fleet has no stragglers" []
    (s [ ("a", 50, 5.0); ("b", 50, 5.0); ("c", 50, 5.0) ]);
  Alcotest.(check (list string)) "a fleet of one has no peers to lag" [] (s [ ("only", 1, 100.0) ]);
  Alcotest.(check (list string)) "factor is tunable" []
    (s ~factor:0.05 [ ("a", 100, 10.0); ("b", 100, 10.0); ("c", 10, 10.0) ]);
  Alcotest.(check (list string)) "zero-elapsed progress is infinitely fast, not a straggler" [ "c" ]
    (s [ ("a", 5, 0.0); ("b", 100, 10.0); ("c", 10, 10.0) ]);
  (* missed heartbeats, over real drained streams *)
  let drained ?source ?trailing beats = drain_telemetry (telemetry_image (telemetry_lines ?source ?trailing beats)) in
  Alcotest.(check bool) "a stream with no heartbeat at all is flagged" true
    (Fabric.Telemetry.missed_heartbeats (drained []));
  Alcotest.(check bool) "a stream ending right after its last heartbeat is healthy" false
    (Fabric.Telemetry.missed_heartbeats (drained [ (1, 4); (2, 4); (3, 4) ]));
  Alcotest.(check bool) "a stream chattering far past its last heartbeat is flagged" true
    (Fabric.Telemetry.missed_heartbeats (drained ~trailing:5 [ (1, 4); (2, 4) ]))

(* --- monitor replay: bit-identical to the post-hoc merge ---------------------- *)

let sh cmd = Sys.command (cmd ^ " 2> /dev/null")

(* A real worker streams telemetry to a file (the tee of its JSONL
   sink); [monitor FILE] replaying that stream must render exactly the
   bytes [obs merge] produces from the worker's obs file.  Logical
   clock, fixed seed: the whole comparison is deterministic. *)
let test_monitor_replay_matches_merge () =
  require_exe ();
  let prof, _ = Lazy.force baseline in
  with_work_dir @@ fun wd ->
  let ppath = Filename.concat wd "profile.bin" in
  Reveal.Campaign.save_profile ppath prof;
  let obs_file = Filename.concat wd "shard-0.jsonl" in
  let stream_file = Filename.concat wd "shard-0.tele" in
  let worker =
    Printf.sprintf
      "%s worker --seed %d -n %d --traces %d --shard-id 0 --shard-lo 0 --shard-hi %d --profile %s --out %s \
       --obs-out %s --obs-stream %s --obs-clock logical --obs-source shard-0"
      (Filename.quote exe) golden_seed golden_n golden_traces golden_traces (Filename.quote ppath)
      (Filename.quote (Filename.concat wd "out.bin"))
      (Filename.quote obs_file) (Filename.quote stream_file)
  in
  Alcotest.(check int) "worker runs clean" 0 (sh worker);
  let live = Filename.concat wd "live.txt" and merged = Filename.concat wd "merged.txt" in
  Alcotest.(check int) "monitor replays the stream" 0
    (sh (Printf.sprintf "%s monitor %s > %s" (Filename.quote exe) (Filename.quote stream_file) (Filename.quote live)));
  Alcotest.(check int) "obs merge reads the worker file" 0
    (sh (Printf.sprintf "%s obs merge %s > %s" (Filename.quote exe) (Filename.quote obs_file) (Filename.quote merged)));
  Alcotest.(check string) "monitor replay is bit-identical to obs merge" (read_file merged) (read_file live);
  (* and the replay is deterministic: a second pass renders the same bytes *)
  let live2 = Filename.concat wd "live2.txt" in
  Alcotest.(check int) "second replay runs" 0
    (sh (Printf.sprintf "%s monitor %s > %s" (Filename.quote exe) (Filename.quote stream_file) (Filename.quote live2)));
  Alcotest.(check string) "replay is deterministic" (read_file live) (read_file live2)

let suite =
  [
    ("shard plan: directed cases", `Quick, test_plan_directed);
    QCheck_alcotest.to_alcotest qcheck_plan;
    ("shard result codec round-trip", `Quick, test_shard_codec_roundtrip);
  ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_shard_codec
  @ [
      ("shard merge: typed errors and ordering", `Quick, test_merge_checks);
      ("wire: clean stream round-trips", `Quick, test_wire_roundtrip);
      ("wire: corrupt record skipped (strict raises)", `Quick, test_wire_corrupt_record_skipped);
      ("wire: truncation and preamble damage are loud", `Quick, test_wire_truncation_raises);
      QCheck_alcotest.to_alcotest qcheck_wire;
      QCheck_alcotest.to_alcotest qcheck_frame_roundtrip;
      ("wire: records over a socketpair", `Quick, test_wire_over_socketpair);
      ("remote campaign equals archive replay", `Quick, test_remote_campaign_matches_replay);
      ("orchestrator: typed failures and retry budget", `Quick, test_orchestrator_failure_typing);
      ("orchestrator: empty ranges spawn nothing", `Quick, test_orchestrator_empty_ranges);
      ("orchestrator: hung worker is killed and charged a timeout", `Quick, test_pool_timeout);
      ("sharded campaign is bit-identical to single process", `Quick, test_sharded_run_bit_identical);
      ("killed worker retried, merge still identical", `Quick, test_killed_worker_retried_still_identical);
      ("transport endpoint parsing", `Quick, test_transport_parse);
      ("transport connect: bounded retry rides out a late listener", `Quick, test_transport_connect_retry);
      ("telemetry: clean stream round-trips", `Quick, test_telemetry_roundtrip);
      ("telemetry: corruption discipline", `Quick, test_telemetry_corruption_discipline);
      QCheck_alcotest.to_alcotest qcheck_telemetry;
      ("telemetry drain: summary, progress, truncation", `Quick, test_telemetry_drain);
      ("telemetry merge: name order, as obs merge", `Quick, test_telemetry_merge_reports);
      ("telemetry: stragglers and missed heartbeats", `Quick, test_stragglers_and_missed_heartbeats);
      ("monitor replay bit-identical to obs merge", `Quick, test_monitor_replay_matches_merge);
    ]
