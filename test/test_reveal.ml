let () =
  Alcotest.run "reveal"
    [
      ("mathkit", Test_mathkit.suite);
      ("riscv", Test_riscv.suite);
      ("bfv", Test_bfv.suite);
      ("power", Test_power.suite);
      ("sca", Test_sca.suite);
      ("hints", Test_hints.suite);
      ("lattice", Test_lattice.suite);
      ("traceio", Test_traceio.suite);
      ("ctcheck", Test_ctcheck.suite);
      ("srclint", Test_srclint.suite);
      ("pipeline", Test_pipeline.suite);
      ("grading", Test_grading.suite);
      ("profile_store", Test_profile_store.suite);
      ("report", Test_report.suite);
      ("obs", Test_obs.suite);
      ("fabric", Test_fabric.suite);
      ("triage", Test_triage.suite);
      ("cli", Test_cli.suite);
    ]
