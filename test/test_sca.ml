(* Segmentation, POI selection, templates, confusion bookkeeping. *)

let rng () = Mathkit.Prng.create ~seed:31337L ()

(* --- Segment -------------------------------------------------------------- *)

(* Synthetic trace: quiet level 10, bursts at 25. *)
let synthetic_trace ~bursts ~quiet_len ~burst_len =
  let parts =
    List.concat_map
      (fun _ -> [ Array.make quiet_len 10.0; Array.make burst_len 25.0 ])
      (List.init bursts (fun i -> i))
  in
  Array.concat (parts @ [ Array.make quiet_len 10.0 ])

let test_segment_finds_bursts () =
  let t = synthetic_trace ~bursts:3 ~quiet_len:200 ~burst_len:30 in
  let bursts = Sca.Segment.burst_regions Sca.Segment.default t in
  Alcotest.(check int) "three bursts" 3 (Array.length bursts)

let test_segment_windows_between_bursts () =
  let t = synthetic_trace ~bursts:3 ~quiet_len:200 ~burst_len:30 in
  let wins = Sca.Segment.windows Sca.Segment.default t in
  Alcotest.(check int) "three windows" 3 (Array.length wins);
  Array.iteri
    (fun i w ->
      Alcotest.(check bool) (Printf.sprintf "window %d ordered" i) true (w.Sca.Segment.start < w.Sca.Segment.stop))
    wins;
  (* middle windows span the quiet region *)
  let w = wins.(0) in
  Alcotest.(check bool) "covers quiet gap" true (w.Sca.Segment.stop - w.Sca.Segment.start > 150)

let test_segment_merges_close_runs () =
  (* two high runs separated by a gap smaller than merge_gap: one burst *)
  let t =
    Array.concat
      [ Array.make 200 10.0; Array.make 20 25.0; Array.make 30 10.0; Array.make 20 25.0; Array.make 200 10.0 ]
  in
  let bursts = Sca.Segment.burst_regions Sca.Segment.default t in
  Alcotest.(check int) "merged" 1 (Array.length bursts)

let test_segment_ignores_slivers () =
  (* a 1-sample spike in the quiet zone must not create a burst or
     shift a boundary *)
  let t = synthetic_trace ~bursts:2 ~quiet_len:300 ~burst_len:30 in
  t.(400) <- 30.0;
  (* sliver in the first window, away from boundaries *)
  let bursts = Sca.Segment.burst_regions { Sca.Segment.default with Sca.Segment.smooth_radius = 0 } t in
  Alcotest.(check int) "still two bursts" 2 (Array.length bursts)

let test_segment_boundary_sliver_does_not_shift () =
  let t = synthetic_trace ~bursts:2 ~quiet_len:300 ~burst_len:30 in
  let cfg = { Sca.Segment.default with Sca.Segment.smooth_radius = 0 } in
  let before = Sca.Segment.burst_regions cfg t in
  (* data-dependent spike right after the first burst *)
  let spike_pos = before.(0).Sca.Segment.stop + 1 in
  t.(spike_pos) <- 30.0;
  let after = Sca.Segment.burst_regions cfg t in
  Alcotest.(check int) "burst end unchanged" before.(0).Sca.Segment.stop after.(0).Sca.Segment.stop

let test_segment_absolute_threshold () =
  let t = synthetic_trace ~bursts:2 ~quiet_len:200 ~burst_len:30 in
  let cfg = { Sca.Segment.default with Sca.Segment.threshold = Sca.Segment.Absolute 18.0 } in
  Alcotest.(check int) "two bursts" 2 (Array.length (Sca.Segment.burst_regions cfg t))

let test_segment_smooth () =
  let s = Sca.Segment.smooth 1 [| 0.0; 3.0; 0.0 |] in
  Alcotest.(check (float 1e-9)) "center" 1.0 s.(1);
  Alcotest.(check (float 1e-9)) "edge" 1.5 s.(0)

let test_segment_empty () =
  Alcotest.(check int) "empty trace" 0 (Array.length (Sca.Segment.burst_regions Sca.Segment.default [||]))

let test_vectorize_pads () =
  let samples = Array.init 100 float_of_int in
  let wins = [| { Sca.Segment.start = 90; stop = 95 } |] in
  let v = (Sca.Segment.vectorize samples wins ~length:10).(0) in
  Alcotest.(check (float 0.0)) "real sample" 90.0 v.(0);
  Alcotest.(check (float 0.0)) "padded" 0.0 v.(7)

(* --- Sosd ------------------------------------------------------------------- *)

let test_sosd_scores_peak_at_difference () =
  let class_a = Array.init 20 (fun _ -> [| 1.0; 5.0; 1.0 |]) in
  let class_b = Array.init 20 (fun _ -> [| 1.0; 9.0; 1.0 |]) in
  let scores = Sca.Sosd.scores [| class_a; class_b |] in
  Alcotest.(check int) "peak at index 1" 1 (Mathkit.Stats.argmax scores);
  Alcotest.(check (float 1e-9)) "score = diff^2" 16.0 scores.(1)

let test_sost_suppresses_noisy_positions () =
  let g = rng () in
  (* position 0: mean difference 2 but huge within-class variance;
     position 1: mean difference 0.5, zero variance.  SOST must prefer
     position 1, SOSD position 0. *)
  let mk offset =
    Array.init 200 (fun _ -> [| offset +. (10.0 *. (Mathkit.Prng.float g -. 0.5)); offset /. 4.0 |])
  in
  let classes = [| mk 0.0; mk 2.0 |] in
  let sosd = Sca.Sosd.scores classes in
  let sost = Sca.Sosd.scores_t classes in
  Alcotest.(check int) "sosd picks raw diff" 0 (Mathkit.Stats.argmax sosd);
  Alcotest.(check int) "sost picks stable diff" 1 (Mathkit.Stats.argmax sost)

let test_sosd_select_spacing () =
  let scores = [| 10.0; 9.0; 8.0; 7.0; 1.0; 0.5; 6.0 |] in
  let pois = Sca.Sosd.select ~min_spacing:3 ~count:2 scores in
  Alcotest.(check (array int)) "spaced" [| 0; 3 |] pois

let test_sosd_select_sorted () =
  let scores = [| 1.0; 9.0; 2.0; 8.0; 3.0 |] in
  let pois = Sca.Sosd.select ~min_spacing:1 ~count:3 scores in
  let sorted = Array.copy pois in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "ascending" sorted pois

let test_sosd_pick () =
  Alcotest.(check (array (float 0.0))) "projection" [| 5.0; 7.0 |] (Sca.Sosd.pick [| 4.0; 5.0; 6.0; 7.0 |] [| 1; 3 |])

(* --- Template ---------------------------------------------------------------- *)

let gaussian_class g ~mu ~sigma ~count ~dim =
  let p = Mathkit.Gaussian.polar () in
  Array.init count (fun _ -> Array.init dim (fun j -> Mathkit.Gaussian.normal p g ~mu:mu.(j) ~sigma))

let test_template_classifies_separated_classes () =
  let g = rng () in
  let c0 = gaussian_class g ~mu:[| 0.0; 0.0 |] ~sigma:0.5 ~count:200 ~dim:2 in
  let c1 = gaussian_class g ~mu:[| 3.0; 3.0 |] ~sigma:0.5 ~count:200 ~dim:2 in
  let t = Sca.Template.build ~pois:[| 0; 1 |] [ (0, c0); (1, c1) ] in
  let correct = ref 0 in
  for _ = 1 to 200 do
    let x = (gaussian_class g ~mu:[| 0.0; 0.0 |] ~sigma:0.5 ~count:1 ~dim:2).(0) in
    if Sca.Template.classify t x = 0 then incr correct;
    let y = (gaussian_class g ~mu:[| 3.0; 3.0 |] ~sigma:0.5 ~count:1 ~dim:2).(0) in
    if Sca.Template.classify t y = 1 then incr correct
  done;
  Alcotest.(check bool) "nearly all correct" true (!correct > 390)

let test_template_posterior_sums_to_one () =
  let g = rng () in
  let c0 = gaussian_class g ~mu:[| 0.0 |] ~sigma:1.0 ~count:100 ~dim:1 in
  let c1 = gaussian_class g ~mu:[| 2.0 |] ~sigma:1.0 ~count:100 ~dim:1 in
  let t = Sca.Template.build ~pois:[| 0 |] [ (0, c0); (1, c1) ] in
  let p = Sca.Template.posterior t [| 1.0 |] in
  Alcotest.(check (float 1e-9)) "sums to 1" 1.0 (Array.fold_left ( +. ) 0.0 p)

let test_template_posterior_with_priors () =
  let g = rng () in
  let c0 = gaussian_class g ~mu:[| 0.0 |] ~sigma:1.0 ~count:100 ~dim:1 in
  let c1 = gaussian_class g ~mu:[| 0.0 |] ~sigma:1.0 ~count:100 ~dim:1 in
  (* identical classes: posterior = prior *)
  let t = Sca.Template.build ~pois:[| 0 |] [ (0, c0); (1, c1) ] in
  let p = Sca.Template.posterior ~priors:[| 0.9; 0.1 |] t [| 0.0 |] in
  Alcotest.(check bool) "prior dominates" true (p.(0) > 0.8)

let test_template_restrict () =
  let g = rng () in
  let mk mu = gaussian_class g ~mu:[| mu |] ~sigma:0.3 ~count:50 ~dim:1 in
  let t = Sca.Template.build ~pois:[| 0 |] [ (-1, mk (-2.0)); (1, mk 2.0); (2, mk 4.0) ] in
  let r = Sca.Template.restrict t (fun l -> l > 0) in
  Alcotest.(check (array int)) "labels" [| 1; 2 |] r.Sca.Template.labels;
  Alcotest.(check int) "classify within restriction" 1 (Sca.Template.classify r [| 2.0 |])

let test_template_needs_two_rows () =
  Alcotest.check_raises "one row" (Invalid_argument "Template.build: class 0 needs >= 2 profiling vectors")
    (fun () -> ignore (Sca.Template.build ~pois:[| 0 |] [ (0, [| [| 1.0 |] |]) ]))

(* --- Confusion ------------------------------------------------------------------ *)

let test_confusion_counts () =
  let c = Sca.Confusion.create ~labels:[| -1; 0; 1 |] in
  Sca.Confusion.add c ~actual:1 ~predicted:1;
  Sca.Confusion.add c ~actual:1 ~predicted:0;
  Sca.Confusion.add c ~actual:0 ~predicted:0;
  Alcotest.(check int) "count" 1 (Sca.Confusion.count c ~actual:1 ~predicted:0);
  Alcotest.(check int) "total" 3 (Sca.Confusion.total c);
  Alcotest.(check (float 1e-9)) "column percent" 50.0 (Sca.Confusion.column_percent c ~actual:1 ~predicted:1);
  Alcotest.(check (float 1e-9)) "accuracy" (2.0 /. 3.0) (Sca.Confusion.accuracy c)

let test_confusion_unknown_label () =
  let c = Sca.Confusion.create ~labels:[| 0; 1 |] in
  Alcotest.check_raises "unknown" (Invalid_argument "Confusion: unknown label 5") (fun () ->
      Sca.Confusion.add c ~actual:5 ~predicted:0)

let test_confusion_render () =
  let c = Sca.Confusion.create ~labels:[| -1; 0; 1 |] in
  Sca.Confusion.add c ~actual:(-1) ~predicted:(-1);
  Sca.Confusion.add c ~actual:1 ~predicted:(-1);
  let s = Sca.Confusion.render c in
  Alcotest.(check bool) "mentions actual" true (String.length s > 0 && String.contains s '<')

let test_confusion_per_class () =
  let c = Sca.Confusion.create ~labels:[| 0; 1 |] in
  Sca.Confusion.add c ~actual:0 ~predicted:0;
  Sca.Confusion.add c ~actual:0 ~predicted:1;
  let acc = Sca.Confusion.per_class_accuracy c in
  Alcotest.(check int) "only classes that occurred" 1 (Array.length acc);
  Alcotest.(check (float 1e-9)) "50%" 50.0 (snd acc.(0))

let suite =
  List.map
    (fun (name, f) -> Alcotest.test_case name `Quick f)
    [
      ("segment finds bursts", test_segment_finds_bursts);
      ("segment windows between bursts", test_segment_windows_between_bursts);
      ("segment merges close runs", test_segment_merges_close_runs);
      ("segment ignores slivers", test_segment_ignores_slivers);
      ("segment boundary sliver stable", test_segment_boundary_sliver_does_not_shift);
      ("segment absolute threshold", test_segment_absolute_threshold);
      ("segment smoothing", test_segment_smooth);
      ("segment empty trace", test_segment_empty);
      ("vectorize pads", test_vectorize_pads);
      ("sosd peak at difference", test_sosd_scores_peak_at_difference);
      ("sost suppresses noisy positions", test_sost_suppresses_noisy_positions);
      ("sosd select spacing", test_sosd_select_spacing);
      ("sosd select sorted", test_sosd_select_sorted);
      ("sosd pick", test_sosd_pick);
      ("template separated classes", test_template_classifies_separated_classes);
      ("template posterior sums to 1", test_template_posterior_sums_to_one);
      ("template priors", test_template_posterior_with_priors);
      ("template restrict", test_template_restrict);
      ("template needs two rows", test_template_needs_two_rows);
      ("confusion counts", test_confusion_counts);
      ("confusion unknown label", test_confusion_unknown_label);
      ("confusion render", test_confusion_render);
      ("confusion per-class", test_confusion_per_class);
    ]

(* --- Tvla --------------------------------------------------------------------- *)

let gaussian_rows g ~mu ~sigma ~count ~dim =
  let p = Mathkit.Gaussian.polar () in
  Array.init count (fun _ -> Array.init dim (fun j -> Mathkit.Gaussian.normal p g ~mu:mu.(j) ~sigma))

let test_tvla_detects_mean_shift () =
  let g = rng () in
  let fixed = gaussian_rows g ~mu:[| 0.0; 5.0; 0.0 |] ~sigma:1.0 ~count:500 ~dim:3 in
  let random = gaussian_rows g ~mu:[| 0.0; 0.0; 0.0 |] ~sigma:1.0 ~count:500 ~dim:3 in
  let ts = Sca.Tvla.t_statistics fixed random in
  Alcotest.(check bool) "leak flagged" true (Float.abs ts.(1) > Sca.Tvla.threshold);
  Alcotest.(check bool) "quiet samples pass" true (Float.abs ts.(0) < Sca.Tvla.threshold);
  Alcotest.(check (array int)) "leaky point list" [| 1 |] (Sca.Tvla.leaky_points ts);
  Alcotest.(check bool) "max |t|" true (Sca.Tvla.max_abs_t ts = Float.abs ts.(1))

let test_tvla_no_false_positive () =
  let g = rng () in
  let a = gaussian_rows g ~mu:[| 1.0; 1.0 |] ~sigma:1.0 ~count:400 ~dim:2 in
  let b = gaussian_rows g ~mu:[| 1.0; 1.0 |] ~sigma:1.0 ~count:400 ~dim:2 in
  Alcotest.(check int) "no leaks on identical distributions" 0
    (Array.length (Sca.Tvla.leaky_points (Sca.Tvla.t_statistics a b)))

let test_tvla_second_order () =
  let g = rng () in
  (* same means, different variances: invisible to first order,
     visible to second order *)
  let fixed = gaussian_rows g ~mu:[| 0.0 |] ~sigma:3.0 ~count:800 ~dim:1 in
  let random = gaussian_rows g ~mu:[| 0.0 |] ~sigma:1.0 ~count:800 ~dim:1 in
  let t1 = Sca.Tvla.max_abs_t (Sca.Tvla.t_statistics fixed random) in
  let t2 = Sca.Tvla.max_abs_t (Sca.Tvla.second_order fixed random) in
  Alcotest.(check bool) "second order sees it" true (t2 > Sca.Tvla.threshold);
  Alcotest.(check bool) "second order stronger than first" true (t2 > t1)

let test_tvla_needs_two_traces () =
  Alcotest.check_raises "tiny set" (Invalid_argument "Tvla: need at least 2 traces per set") (fun () ->
      ignore (Sca.Tvla.t_statistics [| [| 1.0 |] |] [| [| 1.0 |]; [| 2.0 |] |]))

(* --- Cpa ----------------------------------------------------------------------- *)

let test_cpa_finds_correlated_sample () =
  let g = rng () in
  let n = 400 in
  let secrets = Array.init n (fun _ -> Mathkit.Prng.int g 256) in
  let p = Mathkit.Gaussian.polar () in
  (* sample 1 leaks HW(secret), others are noise *)
  let traces =
    Array.init n (fun i ->
        [|
          Mathkit.Gaussian.normal p g ~mu:0.0 ~sigma:1.0;
          float_of_int (Power.Leakage.hamming_weight secrets.(i)) +. Mathkit.Gaussian.normal p g ~mu:0.0 ~sigma:0.5;
          Mathkit.Gaussian.normal p g ~mu:0.0 ~sigma:1.0;
        |])
  in
  let rho = Sca.Cpa.correlation_trace traces (Sca.Cpa.hw_hypothesis secrets) in
  Alcotest.(check bool) "peak at the leaking sample" true (Float.abs rho.(1) > 0.8);
  Alcotest.(check bool) "noise uncorrelated" true (Float.abs rho.(0) < 0.2)

let test_cpa_best_candidate () =
  let g = rng () in
  let n = 500 in
  let inputs = Array.init n (fun _ -> Mathkit.Prng.int g 256) in
  let key = 0xA7 in
  let p = Mathkit.Gaussian.polar () in
  let traces =
    Array.init n (fun i ->
        [| float_of_int (Power.Leakage.hamming_weight (inputs.(i) lxor key)) +. Mathkit.Gaussian.normal p g ~mu:0.0 ~sigma:0.8 |])
  in
  let candidates =
    List.init 256 (fun k -> (k, Sca.Cpa.hw_hypothesis (Array.map (fun x -> x lxor k) inputs)))
  in
  let found, rho = Sca.Cpa.best_candidate traces candidates in
  Alcotest.(check int) "key recovered" key found;
  Alcotest.(check bool) "strong correlation" true (rho > 0.7)

let test_cpa_fails_on_fresh_noise () =
  (* the paper's point: with a fresh secret per trace there is nothing
     to accumulate — a wrong constant hypothesis correlates as well as
     any other *)
  let g = rng () in
  let n = 300 in
  let p = Mathkit.Gaussian.polar () in
  let fresh = Array.init n (fun _ -> Mathkit.Prng.int g 256) in
  let traces =
    Array.init n (fun i ->
        [| float_of_int (Power.Leakage.hamming_weight fresh.(i)) +. Mathkit.Gaussian.normal p g ~mu:0.0 ~sigma:0.5 |])
  in
  (* hypotheses built from an unrelated, constant guess of the secret *)
  let unrelated k = Sca.Cpa.hw_hypothesis (Array.init n (fun i -> (i * 31) lxor k)) in
  let candidates = List.init 16 (fun k -> (k, unrelated k)) in
  let _, rho = Sca.Cpa.best_candidate traces candidates in
  Alcotest.(check bool) "no candidate correlates" true (rho < 0.3)

let test_cpa_poi_selection () =
  let g = rng () in
  let n = 400 in
  let labels = Array.init n (fun _ -> Mathkit.Prng.int_in g (-14) 14) in
  let p = Mathkit.Gaussian.polar () in
  let traces =
    Array.init n (fun i ->
        Array.init 10 (fun t ->
            let signal = if t = 4 then float_of_int (Power.Leakage.hamming_weight labels.(i)) else 0.0 in
            signal +. Mathkit.Gaussian.normal p g ~mu:0.0 ~sigma:0.5))
  in
  let pois = Sca.Cpa.correlation_poi ~count:1 traces labels in
  Alcotest.(check (array int)) "picks the leaking sample" [| 4 |] pois

let extension_cases =
  [
    ("tvla detects mean shift", test_tvla_detects_mean_shift);
    ("tvla no false positive", test_tvla_no_false_positive);
    ("tvla second order", test_tvla_second_order);
    ("tvla needs two traces", test_tvla_needs_two_traces);
    ("cpa finds correlated sample", test_cpa_finds_correlated_sample);
    ("cpa recovers xor key", test_cpa_best_candidate);
    ("cpa fails on fresh noise", test_cpa_fails_on_fresh_noise);
    ("cpa poi selection", test_cpa_poi_selection);
  ]

let suite = suite @ List.map (fun (name, f) -> Alcotest.test_case name `Quick f) extension_cases

(* --- Pca ------------------------------------------------------------------- *)

let test_pca_separates_class_means () =
  let g = rng () in
  (* two classes separated along a diagonal direction in 4-d *)
  let mk offset =
    gaussian_rows g ~mu:[| offset; -.offset; 0.0; 0.0 |] ~sigma:0.3 ~count:100 ~dim:4
  in
  let classes = [ (0, mk 0.0); (1, mk 3.0) ] in
  let p = Sca.Pca.fit ~k:1 classes in
  Alcotest.(check int) "one component" 1 (Sca.Pca.components p);
  (* projected class means must be well separated *)
  let proj c = Mathkit.Stats.mean_a (Array.map (fun v -> v.(0)) (Sca.Pca.transform_all p c)) in
  let d = Float.abs (proj (mk 0.0) -. proj (mk 3.0)) in
  Alcotest.(check bool) "separated in subspace" true (d > 3.0)

let test_pca_template_classifies () =
  let g = rng () in
  let mk offset = gaussian_rows g ~mu:[| offset; 0.0; offset /. 2.0 |] ~sigma:0.4 ~count:150 ~dim:3 in
  let classes = [ (0, mk 0.0); (1, mk 2.0); (2, mk 4.0) ] in
  let p = Sca.Pca.fit ~k:2 classes in
  let template =
    Sca.Template.build ~pois:[||]
      (List.map (fun (l, rows) -> (l, Sca.Pca.transform_all p rows)) classes)
  in
  let correct = ref 0 in
  for _ = 1 to 100 do
    List.iter
      (fun (label, offset) ->
        let x = (mk offset).(0) in
        if Sca.Template.classify template (Sca.Pca.transform p x) = label then incr correct)
      [ (0, 0.0); (1, 2.0); (2, 4.0) ]
  done;
  Alcotest.(check bool) "PCA-space templates work" true (!correct > 280)

let test_pca_explained_fraction () =
  let g = rng () in
  let mk offset = gaussian_rows g ~mu:[| offset; 0.0 |] ~sigma:0.1 ~count:50 ~dim:2 in
  let classes = [ (0, mk 0.0); (1, mk 5.0) ] in
  (* all between-class variance lies along one direction *)
  Alcotest.(check bool) "one component explains it" true (Sca.Pca.explained classes ~k:1 > 0.99)

let test_pca_needs_two_classes () =
  Alcotest.check_raises "one class" (Invalid_argument "Pca.fit: need at least two classes") (fun () ->
      ignore (Sca.Pca.fit [ (0, [| [| 1.0 |] |]) ]))

let pca_cases =
  [
    ("pca separates class means", test_pca_separates_class_means);
    ("pca-space templates classify", test_pca_template_classifies);
    ("pca explained fraction", test_pca_explained_fraction);
    ("pca needs two classes", test_pca_needs_two_classes);
  ]

let suite = suite @ List.map (fun (name, f) -> Alcotest.test_case name `Quick f) pca_cases

(* --- segmentation properties -------------------------------------------------- *)

let segment_qcheck =
  let open QCheck in
  [
    Test.make ~name:"segment: windows are disjoint, ordered, in range" ~count:50 (int_bound 100000)
      (fun seed ->
        let g = Mathkit.Prng.create ~seed:(Int64.of_int seed) () in
        (* random bimodal trace: quiet level with random bursts *)
        let n = 1500 + Mathkit.Prng.int g 1000 in
        let t = Array.init n (fun _ -> 10.0 +. Mathkit.Prng.float g) in
        let bursts = 2 + Mathkit.Prng.int g 5 in
        let pos = ref 50 in
        for _ = 1 to bursts do
          let len = 20 + Mathkit.Prng.int g 30 in
          for i = !pos to min (n - 1) (!pos + len) do
            t.(i) <- 25.0 +. Mathkit.Prng.float g
          done;
          pos := !pos + len + 150 + Mathkit.Prng.int g 100
        done;
        let wins = Sca.Segment.windows Sca.Segment.default t in
        let ok = ref true in
        Array.iteri
          (fun i w ->
            if w.Sca.Segment.start > w.Sca.Segment.stop then ok := false;
            if w.Sca.Segment.start < 0 || w.Sca.Segment.stop > n then ok := false;
            if i > 0 && wins.(i - 1).Sca.Segment.stop > w.Sca.Segment.start then ok := false)
          wins;
        !ok);
    Test.make ~name:"segment: bursts and windows interleave" ~count:50 (int_bound 100000)
      (fun seed ->
        let g = Mathkit.Prng.create ~seed:(Int64.of_int seed) () in
        let quiet = 150 + Mathkit.Prng.int g 200 in
        let t =
          Array.concat
            [
              Array.make quiet 10.0;
              Array.make 40 25.0;
              Array.make quiet 10.0;
              Array.make 40 25.0;
              Array.make quiet 10.0;
            ]
        in
        let bursts = Sca.Segment.burst_regions Sca.Segment.default t in
        let wins = Sca.Segment.windows Sca.Segment.default t in
        Array.length bursts = Array.length wins
        && Array.for_all2 (fun b w -> b.Sca.Segment.stop = w.Sca.Segment.start) bursts wins);
  ]

let suite = suite @ List.map QCheck_alcotest.to_alcotest segment_qcheck

(* --- resilient segmentation -------------------------------------------- *)

let erase_range samples lo len =
  let t = Array.copy samples in
  for i = lo to min (Array.length t - 1) (lo + len - 1) do
    t.(i) <- 10.0
  done;
  t

let inject_burst samples lo len =
  let t = Array.copy samples in
  for i = lo to min (Array.length t - 1) (lo + len - 1) do
    t.(i) <- 25.0
  done;
  t

let test_segment_resilient_empty () =
  Alcotest.(check bool) "typed error" true (Sca.Segment.segment Sca.Segment.default ~expected:3 [||] = Error Sca.Segment.Empty_trace)

let test_segment_resilient_flat () =
  Alcotest.(check bool) "typed error" true
    (Sca.Segment.segment Sca.Segment.default ~expected:3 (Array.make 2000 10.0) = Error Sca.Segment.Flat_trace)

let test_segment_resilient_invalid_expected () =
  Alcotest.check_raises "expected must be positive" (Invalid_argument "Segment.segment: expected must be positive")
    (fun () -> ignore (Sca.Segment.segment Sca.Segment.default ~expected:0 [| 1.0 |]))

let test_segment_resilient_clean_matches_windows () =
  let t = synthetic_trace ~bursts:5 ~quiet_len:200 ~burst_len:30 in
  match Sca.Segment.segment Sca.Segment.default ~expected:5 t with
  | Error e -> Alcotest.fail (Sca.Segment.error_to_string e)
  | Ok seg ->
      Alcotest.(check bool) "same windows as the classic path" true (seg.Sca.Segment.wins = Sca.Segment.windows Sca.Segment.default t);
      Alcotest.(check bool) "all Clean" true (Array.for_all (fun q -> q = Sca.Segment.Clean) seg.Sca.Segment.quality)

let test_segment_resilient_count_mismatch () =
  let t = synthetic_trace ~bursts:3 ~quiet_len:200 ~burst_len:30 in
  match Sca.Segment.segment Sca.Segment.default ~expected:9 t with
  | Error (Sca.Segment.Count_mismatch { expected = 9; found }) ->
      Alcotest.(check bool) "reports what it found" true (found < 9)
  | Ok _ | Error _ -> Alcotest.fail "hopeless count mismatch not reported"

let test_segment_resilient_missed_burst () =
  let t = synthetic_trace ~bursts:5 ~quiet_len:200 ~burst_len:30 in
  (* erase the middle burst: starts at 3*200 + 2*30 *)
  let t = erase_range t 660 30 in
  Alcotest.(check int) "one burst really missing" 4 (Array.length (Sca.Segment.burst_regions Sca.Segment.default t));
  match Sca.Segment.segment Sca.Segment.default ~expected:5 t with
  | Error e -> Alcotest.fail (Sca.Segment.error_to_string e)
  | Ok seg ->
      Alcotest.(check int) "resynchronised to the expected count" 5 (Array.length seg.Sca.Segment.wins);
      Alcotest.(check bool) "repair is flagged" true
        (Array.exists (fun q -> q = Sca.Segment.Resynced) seg.Sca.Segment.quality);
      Alcotest.(check bool) "but not everywhere" true
        (Array.exists (fun q -> q = Sca.Segment.Clean) seg.Sca.Segment.quality)

let test_segment_resilient_spurious_burst () =
  let t = synthetic_trace ~bursts:4 ~quiet_len:200 ~burst_len:30 in
  (* a glitch masquerading as a (short) distribution call inside window 1 *)
  let t = inject_burst t 540 8 in
  Alcotest.(check int) "glitch detected as a burst" 5 (Array.length (Sca.Segment.burst_regions Sca.Segment.default t));
  match Sca.Segment.segment Sca.Segment.default ~expected:4 t with
  | Error e -> Alcotest.fail (Sca.Segment.error_to_string e)
  | Ok seg ->
      Alcotest.(check int) "spurious burst dropped" 4 (Array.length seg.Sca.Segment.wins);
      Alcotest.(check bool) "excision is flagged" true
        (Array.exists (fun q -> q <> Sca.Segment.Clean) seg.Sca.Segment.quality)

let test_segment_auto_threshold_flat_guard () =
  Alcotest.(check (float 1e-9)) "flat trace: threshold at the level" 10.0
    (Sca.Segment.auto_threshold Sca.Segment.default (Array.make 512 10.0));
  Alcotest.(check (float 1e-9)) "empty trace: zero" 0.0 (Sca.Segment.auto_threshold Sca.Segment.default [||]);
  Alcotest.(check int) "flat trace: no bursts" 0
    (Array.length (Sca.Segment.burst_regions Sca.Segment.default (Array.make 512 10.0)))

let resilient_cases =
  [
    ("segment (resilient) empty trace", test_segment_resilient_empty);
    ("segment (resilient) flat trace", test_segment_resilient_flat);
    ("segment (resilient) invalid expected", test_segment_resilient_invalid_expected);
    ("segment (resilient) clean = classic windows", test_segment_resilient_clean_matches_windows);
    ("segment (resilient) hopeless count mismatch", test_segment_resilient_count_mismatch);
    ("segment (resilient) missed burst resync", test_segment_resilient_missed_burst);
    ("segment (resilient) spurious burst excision", test_segment_resilient_spurious_burst);
    ("segment auto threshold flat/empty guard", test_segment_auto_threshold_flat_guard);
  ]

let suite = suite @ List.map (fun (name, f) -> Alcotest.test_case name `Quick f) resilient_cases

(* --- Fvec scoring bit-identity (numeric core refactor) --------------------- *)

(* The refactor's contract: the Fvec scoring path — including the fused
   [grade_fv] — must reproduce the boxed [float array] entry points bit
   for bit, for every grading quantity.  Checked on IEEE bit patterns
   over randomly drawn windows at the pinned seed 54398. *)

let scoring_fixture =
  lazy
    (let g = Mathkit.Prng.create ~seed:54398L () in
     let dim = 30 in
     let mu_of label = Array.init dim (fun j -> float_of_int (label * ((j mod 5) - 2)) *. 0.6) in
     let classes =
       List.map
         (fun label -> (label, gaussian_rows g ~mu:(mu_of label) ~sigma:0.8 ~count:14 ~dim))
         [ -2; -1; 0; 1; 2 ]
     in
     let attack = Sca.Attack.build ~poi_count:6 ~sign_poi_count:4 ~sigma:2.0 classes in
     (attack, Sca.Attack.make_scratch attack, dim))

let scoring_window ~dim seed =
  let g = Mathkit.Prng.create ~seed:(Int64.of_int (54398 + seed)) () in
  let p = Mathkit.Gaussian.polar () in
  let label = Mathkit.Prng.int_in g (-2) 2 in
  Array.init dim (fun j ->
      (float_of_int (label * ((j mod 5) - 2)) *. 0.6) +. Mathkit.Gaussian.normal p g ~mu:0.0 ~sigma:0.8)

let sbits = Int64.bits_of_float

let posterior_eq a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun (la, pa) (lb, pb) -> la = lb && sbits pa = sbits pb) a b

let verdict_eq (a : Sca.Attack.verdict) (b : Sca.Attack.verdict) =
  a.Sca.Attack.sign = b.Sca.Attack.sign
  && a.Sca.Attack.value = b.Sca.Attack.value
  && posterior_eq a.Sca.Attack.posterior b.Sca.Attack.posterior

let fv_scoring_qcheck =
  let open QCheck in
  [
    Test.make ~name:"attack: fvec path bit-identical to boxed (seed 54398)" ~count:60
      (int_bound 1_000_000)
      (fun seed ->
        let attack, scratch, dim = Lazy.force scoring_fixture in
        let window = scoring_window ~dim seed in
        let wfv = Mathkit.Fvec.of_array window in
        let v_b = Sca.Attack.classify attack window in
        verdict_eq v_b (Sca.Attack.classify_fv attack scratch wfv)
        && Sca.Attack.classify_sign_only attack window
           = Sca.Attack.classify_sign_only_fv attack scratch wfv
        && sbits (Sca.Attack.sign_confidence attack window)
           = sbits (Sca.Attack.sign_confidence_fv attack scratch wfv)
        && sbits (Sca.Attack.sign_fit attack window)
           = sbits (Sca.Attack.sign_fit_fv attack scratch wfv)
        && sbits (Sca.Attack.value_fit attack ~sign:v_b.Sca.Attack.sign window)
           = sbits (Sca.Attack.value_fit_fv attack scratch ~sign:v_b.Sca.Attack.sign wfv)
        && posterior_eq
             (Sca.Attack.posterior_all attack window)
             (Sca.Attack.posterior_all_fv attack scratch wfv));
    Test.make ~name:"attack: fused grade_fv equals the five separate calls (seed 54398)" ~count:60
      (int_bound 1_000_000)
      (fun seed ->
        let attack, scratch, dim = Lazy.force scoring_fixture in
        let window = scoring_window ~dim seed in
        let wfv = Mathkit.Fvec.of_array window in
        let g = Sca.Attack.grade_fv attack scratch wfv in
        let v = Sca.Attack.classify attack window in
        verdict_eq g.Sca.Attack.g_verdict v
        && posterior_eq g.Sca.Attack.g_posterior_all (Sca.Attack.posterior_all attack window)
        && sbits g.Sca.Attack.g_sign_confidence = sbits (Sca.Attack.sign_confidence attack window)
        && sbits g.Sca.Attack.g_sign_fit = sbits (Sca.Attack.sign_fit attack window)
        && sbits g.Sca.Attack.g_value_fit
           = sbits (Sca.Attack.value_fit attack ~sign:v.Sca.Attack.sign window));
  ]

let suite = suite @ List.map QCheck_alcotest.to_alcotest fv_scoring_qcheck
