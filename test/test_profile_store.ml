(* Profile cache v3: the payload codec round-trips exactly, and no
   single-bit corruption or truncation of a cache file is ever loaded
   silently — the CRC-framed traceio container must turn every damage
   pattern into a loud [Invalid_argument]. *)

let profile =
  lazy
    (let rng = Mathkit.Prng.create ~seed:0x9E3779B9L () in
     let device = Reveal.Device.create ~n:64 () in
     Reveal.Campaign.profile ~per_value:80 device rng)

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let data = really_input_string ic len in
  close_in ic;
  data

let with_temp_file f =
  let path = Filename.temp_file "reveal_pstore" ".bin" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let rejected f =
  match f () with
  | _ -> false
  | exception Invalid_argument _ -> true
  | exception Traceio.Error.Corrupt _ -> true

(* --- round trips ------------------------------------------------------------ *)

let test_payload_roundtrip () =
  let prof = Lazy.force profile in
  let payload = Reveal.Profile_store.profile_payload prof in
  let decoded = Reveal.Profile_store.profile_of_payload ~path:"<mem>" payload in
  Alcotest.(check string) "decode/encode is the identity on the payload" payload
    (Reveal.Profile_store.profile_payload decoded);
  Alcotest.(check int) "window length survives" prof.Reveal.Campaign.window_length
    decoded.Reveal.Campaign.window_length;
  Alcotest.(check (array int)) "values survive" prof.Reveal.Campaign.values decoded.Reveal.Campaign.values;
  Alcotest.(check (float 0.0)) "sign fit floor survives" prof.Reveal.Campaign.sign_fit_floor
    decoded.Reveal.Campaign.sign_fit_floor

let test_file_roundtrip () =
  let prof = Lazy.force profile in
  with_temp_file (fun path ->
      Reveal.Profile_store.save path prof;
      let loaded = Reveal.Profile_store.load path in
      Alcotest.(check string) "save/load preserves the payload bytes"
        (Reveal.Profile_store.profile_payload prof)
        (Reveal.Profile_store.profile_payload loaded))

(* --- corruption rejection ---------------------------------------------------- *)

let qcheck_cases =
  let prof = lazy (Lazy.force profile) in
  let payload = lazy (Reveal.Profile_store.profile_payload (Lazy.force prof)) in
  let file_image =
    lazy
      (with_temp_file (fun path ->
           Reveal.Profile_store.save path (Lazy.force prof);
           read_file path))
  in
  [
    QCheck.Test.make ~count:50 ~name:"truncated payload rejected"
      QCheck.(float_range 0.0 1.0)
      (fun frac ->
        let payload = Lazy.force payload in
        let keep = int_of_float (frac *. float_of_int (String.length payload - 1)) in
        rejected (fun () -> Reveal.Profile_store.profile_of_payload ~path:"<mem>" (String.sub payload 0 keep)));
    QCheck.Test.make ~count:50 ~name:"single bit flip in cache file rejected"
      QCheck.(float_range 0.0 1.0)
      (fun frac ->
        let image = Lazy.force file_image in
        let bit = int_of_float (frac *. float_of_int ((String.length image * 8) - 1)) in
        let mutated = Bytes.of_string image in
        Bytes.set mutated (bit / 8) (Char.chr (Char.code image.[bit / 8] lxor (1 lsl (bit mod 8))));
        with_temp_file (fun path ->
            let oc = open_out_bin path in
            output_bytes oc mutated;
            close_out oc;
            rejected (fun () -> Reveal.Profile_store.load path)));
    QCheck.Test.make ~count:20 ~name:"truncated cache file rejected"
      QCheck.(float_range 0.0 1.0)
      (fun frac ->
        let image = Lazy.force file_image in
        let keep = int_of_float (frac *. float_of_int (String.length image - 1)) in
        with_temp_file (fun path ->
            let oc = open_out_bin path in
            output_string oc (String.sub image 0 keep);
            close_out oc;
            rejected (fun () -> Reveal.Profile_store.load path)));
  ]

let test_stale_and_mismatched_versions () =
  let image = with_temp_file (fun path ->
      Reveal.Profile_store.save path (Lazy.force profile);
      read_file path)
  in
  let magic_len = String.length Reveal.Constants.profile_magic in
  let with_prefix prefix =
    with_temp_file (fun path ->
        let oc = open_out_bin path in
        output_string oc prefix;
        output_string oc (String.sub image (String.length prefix) (String.length image - String.length prefix));
        close_out oc;
        rejected (fun () -> Reveal.Profile_store.load path))
  in
  Alcotest.(check bool) "legacy v1 magic rejected" true
    (with_prefix Reveal.Constants.legacy_profile_magic_prefix);
  Alcotest.(check bool) "foreign magic rejected" true (with_prefix "NOTAPROF");
  let bumped = Bytes.of_string image in
  Bytes.set bumped magic_len (Char.chr (Reveal.Constants.profile_version + 1));
  Alcotest.(check bool) "future version rejected" true
    (with_temp_file (fun path ->
         let oc = open_out_bin path in
         output_bytes oc bumped;
         close_out oc;
         rejected (fun () -> Reveal.Profile_store.load path)))

let suite =
  [
    ("payload round-trip", `Quick, test_payload_roundtrip);
    ("file round-trip", `Quick, test_file_roundtrip);
    ("stale and mismatched versions rejected", `Quick, test_stale_and_mismatched_versions);
  ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_cases
