(* Tests for the RV32IM simulator and the sampler program. *)

open Riscv

let rng () = Mathkit.Prng.create ~seed:1337L ()

(* --- Codec ------------------------------------------------------------- *)

let arbitrary_inst g =
  let open Inst in
  let reg () = Mathkit.Prng.int g 32 in
  let imm12 () = Mathkit.Prng.int_in g (-2048) 2047 in
  let uimm20 () = Mathkit.Prng.int g (1 lsl 20) in
  let boff () = 2 * Mathkit.Prng.int_in g (-2048) 2047 in
  let joff () = 2 * Mathkit.Prng.int_in g (-(1 lsl 19)) ((1 lsl 19) - 1) in
  let sh () = Mathkit.Prng.int g 32 in
  match Mathkit.Prng.int g 47 with
  | 0 -> Lui (reg (), uimm20 ())
  | 1 -> Auipc (reg (), uimm20 ())
  | 2 -> Jal (reg (), joff ())
  | 3 -> Jalr (reg (), reg (), imm12 ())
  | 4 -> Beq (reg (), reg (), boff ())
  | 5 -> Bne (reg (), reg (), boff ())
  | 6 -> Blt (reg (), reg (), boff ())
  | 7 -> Bge (reg (), reg (), boff ())
  | 8 -> Bltu (reg (), reg (), boff ())
  | 9 -> Bgeu (reg (), reg (), boff ())
  | 10 -> Lb (reg (), reg (), imm12 ())
  | 11 -> Lh (reg (), reg (), imm12 ())
  | 12 -> Lw (reg (), reg (), imm12 ())
  | 13 -> Lbu (reg (), reg (), imm12 ())
  | 14 -> Lhu (reg (), reg (), imm12 ())
  | 15 -> Sb (reg (), reg (), imm12 ())
  | 16 -> Sh (reg (), reg (), imm12 ())
  | 17 -> Sw (reg (), reg (), imm12 ())
  | 18 -> Addi (reg (), reg (), imm12 ())
  | 19 -> Slti (reg (), reg (), imm12 ())
  | 20 -> Sltiu (reg (), reg (), imm12 ())
  | 21 -> Xori (reg (), reg (), imm12 ())
  | 22 -> Ori (reg (), reg (), imm12 ())
  | 23 -> Andi (reg (), reg (), imm12 ())
  | 24 -> Slli (reg (), reg (), sh ())
  | 25 -> Srli (reg (), reg (), sh ())
  | 26 -> Srai (reg (), reg (), sh ())
  | 27 -> Add (reg (), reg (), reg ())
  | 28 -> Sub (reg (), reg (), reg ())
  | 29 -> Sll (reg (), reg (), reg ())
  | 30 -> Slt (reg (), reg (), reg ())
  | 31 -> Sltu (reg (), reg (), reg ())
  | 32 -> Xor (reg (), reg (), reg ())
  | 33 -> Srl (reg (), reg (), reg ())
  | 34 -> Sra (reg (), reg (), reg ())
  | 35 -> Or (reg (), reg (), reg ())
  | 36 -> And (reg (), reg (), reg ())
  | 37 -> Mul (reg (), reg (), reg ())
  | 38 -> Mulh (reg (), reg (), reg ())
  | 39 -> Mulhsu (reg (), reg (), reg ())
  | 40 -> Mulhu (reg (), reg (), reg ())
  | 41 -> Div (reg (), reg (), reg ())
  | 42 -> Divu (reg (), reg (), reg ())
  | 43 -> Rem (reg (), reg (), reg ())
  | 44 -> Remu (reg (), reg (), reg ())
  | 45 -> Ecall
  | _ -> Ebreak

let test_codec_roundtrip () =
  let g = rng () in
  for _ = 1 to 5_000 do
    let inst = arbitrary_inst g in
    let decoded = Codec.decode (Codec.encode inst) in
    Alcotest.(check string) "roundtrip" (Inst.to_string inst) (Inst.to_string decoded)
  done

let test_codec_known_words () =
  (* Cross-checked against the RISC-V spec examples. *)
  Alcotest.(check int32) "addi x1, x0, 1" 0x00100093l (Codec.encode (Inst.Addi (1, 0, 1)));
  Alcotest.(check int32) "add x3, x1, x2" 0x002081B3l (Codec.encode (Inst.Add (3, 1, 2)));
  Alcotest.(check int32) "ebreak" 0x00100073l (Codec.encode Inst.Ebreak);
  Alcotest.(check int32) "ecall" 0x00000073l (Codec.encode Inst.Ecall)

let test_codec_rejects_bad_imm () =
  Alcotest.check_raises "imm too big"
    (Invalid_argument "Codec: I immediate 4000 out of 12-bit range") (fun () ->
      ignore (Codec.encode (Inst.Addi (1, 0, 4000))))

let test_codec_illegal_decode () =
  (try
     ignore (Codec.decode 0xFFFFFFFFl);
     Alcotest.fail "expected Illegal"
   with Codec.Illegal _ -> ())

(* Words that look almost like instructions: every undefined opcode,
   funct3 or funct7 combination must surface as Codec.Illegal — the
   static analyzer decodes whole programs and relies on this boundary
   never escaping as a different exception. *)
let illegal_word_corpus =
  [
    (0x00000000l, "all-zero word");
    (0x00000001l, "compressed-looking opcode 0x01");
    (0x0000002Fl, "AMO opcode (not in RV32IM)");
    (0x0000300Fl, "FENCE opcode");
    (0x00003003l, "load funct3=3");
    (0x00006003l, "load funct3=6 (lwu is RV64)");
    (0x00003023l, "store funct3=3");
    (0x00002063l, "branch funct3=2");
    (0x00003063l, "branch funct3=3");
    (0x00001067l, "jalr funct3=1");
    (0x40001013l, "slli with srai's funct7");
    (0x20005013l, "srli/srai with funct7=0x10");
    (0xFE000033l, "op funct7=0x7F");
    (0x42000033l, "op funct7=0x21 (mul+sub mixup)");
    (0x00200073l, "system imm=2 (neither ecall nor ebreak)");
    (0x000000F3l, "ecall encoding with rd!=x0");
    (0xFFFFFFFFl, "all-ones word");
  ]

let test_codec_illegal_corpus () =
  List.iter
    (fun (word, what) ->
      match Codec.decode word with
      | inst -> Alcotest.failf "%s decoded as %s" what (Inst.to_string inst)
      | exception Codec.Illegal w -> Alcotest.(check int32) what word w)
    illegal_word_corpus

(* --- Memory -------------------------------------------------------------- *)

let test_memory_word_roundtrip () =
  let m = Memory.create 1024 in
  Memory.store_word m 0 0xDEADBEEFl;
  Alcotest.(check int32) "word" 0xDEADBEEFl (Memory.load_word m 0)

let test_memory_byte_sign () =
  let m = Memory.create 1024 in
  Memory.store_byte m 5 0xFF;
  Alcotest.(check int) "signed byte" (-1) (Memory.load_byte m 5);
  Alcotest.(check int) "unsigned byte" 0xFF (Memory.load_byte_u m 5)

let test_memory_half_sign () =
  let m = Memory.create 1024 in
  Memory.store_half m 8 0x8000;
  Alcotest.(check int) "signed half" (-32768) (Memory.load_half m 8);
  Alcotest.(check int) "unsigned half" 0x8000 (Memory.load_half_u m 8)

let test_memory_little_endian () =
  let m = Memory.create 1024 in
  Memory.store_word m 0 0x04030201l;
  Alcotest.(check int) "byte0" 1 (Memory.load_byte_u m 0);
  Alcotest.(check int) "byte3" 4 (Memory.load_byte_u m 3)

let test_memory_unaligned_raises () =
  let m = Memory.create 1024 in
  Alcotest.check_raises "unaligned" (Invalid_argument "Memory.load_word: unaligned") (fun () ->
      ignore (Memory.load_word m 2))

let test_memory_mmio () =
  let m = Memory.create 1024 in
  Memory.set_mmio_read m (fun addr -> Int32.of_int (addr land 0xFF));
  Alcotest.(check int32) "mmio routed" 4l (Memory.load_word m (Memory.mmio_base + 4))

(* --- Asm ------------------------------------------------------------------- *)

let run_program ?(ram = 1 lsl 16) items =
  let prog = Asm.assemble items in
  let mem = Memory.create ram in
  Memory.load_program mem 0 prog.Asm.words;
  let cpu = Cpu.create mem in
  ignore (Cpu.run ~max_steps:1_000_000 cpu);
  cpu

let test_asm_forward_backward_labels () =
  (* Sum 1..10 with a backward branch and a forward exit. *)
  let open Asm in
  let cpu =
    run_program
      [
        li (Inst.a 0) 0;
        li (Inst.t 0) 1;
        li (Inst.t 1) 11;
        label "loop";
        beq (Inst.t 0) (Inst.t 1) "done";
        ins (Inst.Add (Inst.a 0, Inst.a 0, Inst.t 0));
        ins (Inst.Addi (Inst.t 0, Inst.t 0, 1));
        j "loop";
        label "done";
        halt;
      ]
  in
  Alcotest.(check int) "sum 1..10" 55 (Cpu.reg cpu (Inst.a 0))

let test_asm_duplicate_label_raises () =
  Alcotest.check_raises "dup" (Asm.Error (Asm.Duplicate_label "x")) (fun () ->
      ignore (Asm.assemble [ Asm.label "x"; Asm.label "x" ]))

let test_asm_undefined_label_raises () =
  Alcotest.check_raises "undef" (Asm.Error (Asm.Undefined_label "nowhere")) (fun () ->
      ignore (Asm.assemble [ Asm.j "nowhere" ]))

let test_asm_branch_out_of_range () =
  (* A conditional branch reaches +-4 KiB; park the target 2000
     instructions away and the assembler must name the label and the
     distance, not die inside the encoder. *)
  let open Asm in
  let far = List.init 2000 (fun _ -> nop) in
  (try
     ignore (Asm.assemble ((blt (Inst.t 0) (Inst.t 1) "far" :: far) @ [ label "far"; halt ]));
     Alcotest.fail "expected Asm.Error"
   with Asm.Error (Asm.Branch_out_of_range { label; distance; at }) ->
     Alcotest.(check string) "label" "far" label;
     Alcotest.(check int) "distance" 8004 distance;
     Alcotest.(check int) "at" 0 at);
  (* jal reaches +-1 MiB: the same label distance assembles fine *)
  let prog = Asm.assemble ((j "far" :: far) @ [ label "far"; halt ]) in
  Alcotest.(check int) "jal spans it" 8004 (Asm.label_address prog "far")

let test_asm_li_large_constant () =
  let open Asm in
  let cpu = run_program [ li (Inst.a 0) 0x12345678; halt ] in
  Alcotest.(check int) "li 0x12345678" 0x12345678 (Cpu.reg cpu (Inst.a 0));
  let cpu = run_program [ li (Inst.a 0) (-1); halt ] in
  Alcotest.(check int) "li -1" 0xFFFFFFFF (Cpu.reg cpu (Inst.a 0));
  let cpu = run_program [ li (Inst.a 0) 0x80000000; halt ] in
  Alcotest.(check int) "li 0x80000000" 0x80000000 (Cpu.reg cpu (Inst.a 0))

let test_asm_call_ret () =
  let open Asm in
  let cpu =
    run_program
      [ li (Inst.a 0) 5; call "double"; call "double"; halt; label "double"; ins (Inst.Add (Inst.a 0, Inst.a 0, Inst.a 0)); ret ]
  in
  Alcotest.(check int) "double twice" 20 (Cpu.reg cpu (Inst.a 0))

(* --- Cpu semantics ------------------------------------------------------------ *)

let exec_rr inst a b =
  let open Asm in
  let cpu = run_program [ li (Inst.a 1) a; li (Inst.a 2) b; ins inst; halt ] in
  Cpu.reg cpu (Inst.a 0)

let a0 = Inst.a 0
let a1 = Inst.a 1
let a2 = Inst.a 2

let test_cpu_add_wraps () =
  Alcotest.(check int) "wrap" 0 (exec_rr (Inst.Add (a0, a1, a2)) 0xFFFFFFFF 1)

let test_cpu_sub_wraps () =
  Alcotest.(check int) "wrap" 0xFFFFFFFF (exec_rr (Inst.Sub (a0, a1, a2)) 0 1)

let test_cpu_slt () =
  Alcotest.(check int) "signed lt" 1 (exec_rr (Inst.Slt (a0, a1, a2)) 0xFFFFFFFF 0);
  (* -1 < 0 *)
  Alcotest.(check int) "unsigned not lt" 0 (exec_rr (Inst.Sltu (a0, a1, a2)) 0xFFFFFFFF 0)

let test_cpu_shifts () =
  Alcotest.(check int) "sll" 0x10 (exec_rr (Inst.Sll (a0, a1, a2)) 1 4);
  Alcotest.(check int) "srl" 0x0FFFFFFF (exec_rr (Inst.Srl (a0, a1, a2)) 0xFFFFFFFF 4);
  Alcotest.(check int) "sra sign fill" 0xFFFFFFFF (exec_rr (Inst.Sra (a0, a1, a2)) 0xFFFFFFFF 4);
  Alcotest.(check int) "shift amount masked to 5 bits" 2 (exec_rr (Inst.Sll (a0, a1, a2)) 1 33)

let test_cpu_mul () =
  Alcotest.(check int) "mul low" (0xFFFFFFFE * 2 land 0xFFFFFFFF) (exec_rr (Inst.Mul (a0, a1, a2)) 0xFFFFFFFE 2);
  (* (-1) * (-1) = 1: high word of signed product is 0 *)
  Alcotest.(check int) "mulh" 0 (exec_rr (Inst.Mulh (a0, a1, a2)) 0xFFFFFFFF 0xFFFFFFFF);
  (* unsigned: 0xFFFFFFFF^2 = 0xFFFFFFFE00000001 *)
  Alcotest.(check int) "mulhu" 0xFFFFFFFE (exec_rr (Inst.Mulhu (a0, a1, a2)) 0xFFFFFFFF 0xFFFFFFFF);
  (* signed -1 * unsigned 0xFFFFFFFF = -0xFFFFFFFF; high word = 0xFFFFFFFF *)
  Alcotest.(check int) "mulhsu" 0xFFFFFFFF (exec_rr (Inst.Mulhsu (a0, a1, a2)) 0xFFFFFFFF 0xFFFFFFFF)

let test_cpu_div_edge_cases () =
  Alcotest.(check int) "div" 0xFFFFFFFE (exec_rr (Inst.Div (a0, a1, a2)) 0xFFFFFFFC 2);
  (* -4 / 2 = -2 *)
  Alcotest.(check int) "div by zero" 0xFFFFFFFF (exec_rr (Inst.Div (a0, a1, a2)) 42 0);
  Alcotest.(check int) "rem by zero" 42 (exec_rr (Inst.Rem (a0, a1, a2)) 42 0);
  Alcotest.(check int) "overflow div" 0x80000000 (exec_rr (Inst.Div (a0, a1, a2)) 0x80000000 0xFFFFFFFF);
  Alcotest.(check int) "overflow rem" 0 (exec_rr (Inst.Rem (a0, a1, a2)) 0x80000000 0xFFFFFFFF);
  Alcotest.(check int) "divu" 0x7FFFFFFE (exec_rr (Inst.Divu (a0, a1, a2)) 0xFFFFFFFC 2);
  Alcotest.(check int) "divu by zero" 0xFFFFFFFF (exec_rr (Inst.Divu (a0, a1, a2)) 42 0);
  Alcotest.(check int) "rem signed" (0x100000000 - 1) (exec_rr (Inst.Rem (a0, a1, a2)) 0xFFFFFFFF 2)

let test_cpu_div_toward_zero () =
  (* -7 / 2 = -3 (toward zero), rem -1 *)
  Alcotest.(check int) "div toward zero" (0x100000000 - 3) (exec_rr (Inst.Div (a0, a1, a2)) (0x100000000 - 7) 2);
  Alcotest.(check int) "rem sign follows dividend" (0x100000000 - 1) (exec_rr (Inst.Rem (a0, a1, a2)) (0x100000000 - 7) 2)

let test_cpu_x0_hardwired () =
  let open Asm in
  let cpu = run_program [ li (Inst.t 0) 5; ins (Inst.Add (Inst.x0, Inst.t 0, Inst.t 0)); halt ] in
  Alcotest.(check int) "x0 stays zero" 0 (Cpu.reg cpu Inst.x0)

let test_cpu_load_store_program () =
  let open Asm in
  let cpu =
    run_program
      [
        li (Inst.t 0) 0x1234;
        li (Inst.t 1) 0x100;
        ins (Inst.Sw (Inst.t 0, Inst.t 1, 0));
        ins (Inst.Lw (Inst.a 0, Inst.t 1, 0));
        ins (Inst.Lb (Inst.a 1, Inst.t 1, 1));
        halt;
      ]
  in
  Alcotest.(check int) "lw" 0x1234 (Cpu.reg cpu (Inst.a 0));
  Alcotest.(check int) "lb of 0x12" 0x12 (Cpu.reg cpu (Inst.a 1))

let test_cpu_branch_events () =
  let open Asm in
  let prog =
    Asm.assemble
      [ li (Inst.t 0) 1; beq (Inst.t 0) Inst.x0 "skip"; nop; label "skip"; halt ]
  in
  let mem = Memory.create 4096 in
  Memory.load_program mem 0 prog.Asm.words;
  let rec_ = Trace.recorder () in
  let cpu = Cpu.create ~tracer:(Trace.record rec_) mem in
  ignore (Cpu.run cpu);
  let events = Trace.events rec_ in
  let branch_event = Array.to_list events |> List.find (fun e -> Inst.is_branch e.Trace.inst) in
  Alcotest.(check bool) "not taken classified" true (branch_event.Trace.klass = Inst.K_branch_not_taken)

let test_cpu_cycle_accounting () =
  let open Asm in
  let prog = Asm.assemble [ nop; nop; halt ] in
  let mem = Memory.create 4096 in
  Memory.load_program mem 0 prog.Asm.words;
  let cpu = Cpu.create mem in
  ignore (Cpu.run cpu);
  Alcotest.(check int) "cycles" (3 + 3 + 3) (Cpu.cycle cpu);
  Alcotest.(check int) "retired" 3 (Cpu.retired cpu)

let test_cpu_reset () =
  let open Asm in
  let prog = Asm.assemble [ li (Inst.t 0) 7; halt ] in
  let mem = Memory.create 4096 in
  Memory.load_program mem 0 prog.Asm.words;
  let cpu = Cpu.create mem in
  ignore (Cpu.run cpu);
  Cpu.reset cpu;
  Alcotest.(check int) "pc" 0 (Cpu.pc cpu);
  Alcotest.(check bool) "not halted" false (Cpu.halted cpu);
  Alcotest.(check int) "regs cleared" 0 (Cpu.reg cpu (Inst.t 0))

(* --- Sampler program -------------------------------------------------------------- *)

let moduli_seal = [| 132120577 |]

let run_sampler ?(variant = Sampler_prog.Vulnerable) ?perm ~n ~k ~draws () =
  let layout = Sampler_prog.default_layout in
  let prog = Sampler_prog.build ~variant ~n ~k () in
  let mem = Memory.create layout.Sampler_prog.ram_size in
  Memory.load_program mem 0 prog.Asm.words;
  Sampler_prog.stage_moduli mem layout (Array.sub moduli_seal 0 k);
  (match perm with Some p -> Sampler_prog.stage_permutation mem layout p | None -> ());
  Sampler_prog.install_noise_port mem ~draws;
  let rec_ = Trace.recorder () in
  let cpu = Cpu.create ~tracer:(Trace.record rec_) mem in
  ignore (Cpu.run ~max_steps:10_000_000 cpu);
  (Sampler_prog.read_poly mem layout ~n ~k, Trace.events rec_)

let expected_coeff q noise = if noise > 0 then noise else if noise < 0 then q - (-noise) else 0

let test_sampler_vulnerable_correct () =
  let noises = [| 3; -5; 0; 41; -41; 1; -1; 0 |] in
  let draws = Array.map (fun z -> (z, 0)) noises in
  let poly, _ = run_sampler ~n:(Array.length noises) ~k:1 ~draws () in
  Array.iteri
    (fun i z -> Alcotest.(check int) (Printf.sprintf "coeff %d" i) (expected_coeff 132120577 z) poly.(0).(i))
    noises

let test_sampler_branchless_matches () =
  let noises = [| 3; -5; 0; 41; -41; 1; -1; 0 |] in
  let draws = Array.map (fun z -> (z, 0)) noises in
  let poly_v, _ = run_sampler ~n:8 ~k:1 ~draws () in
  let poly_b, _ = run_sampler ~variant:Sampler_prog.Branchless ~n:8 ~k:1 ~draws () in
  Alcotest.(check bool) "same output" true (poly_v = poly_b)

let test_sampler_shuffled_matches () =
  let noises = [| 3; -5; 0; 7 |] in
  let draws = Array.map (fun z -> (z, 0)) noises in
  let perm = [| 2; 0; 3; 1 |] in
  let poly, _ = run_sampler ~variant:Sampler_prog.Shuffled ~perm ~n:4 ~k:1 ~draws () in
  (* draw d lands at coefficient perm.(d) *)
  Array.iteri
    (fun d z -> Alcotest.(check int) (Printf.sprintf "draw %d" d) (expected_coeff 132120577 z) poly.(0).(perm.(d)))
    noises

let test_sampler_rejections_lengthen_trace () =
  let draws_fast = [| (1, 0) |] and draws_slow = [| (1, 5) |] in
  let _, ev_fast = run_sampler ~n:1 ~k:1 ~draws:draws_fast () in
  let _, ev_slow = run_sampler ~n:1 ~k:1 ~draws:draws_slow () in
  Alcotest.(check bool) "time-variant sampling" true (Array.length ev_slow > Array.length ev_fast)

let test_sampler_branch_paths_differ () =
  (* The retired instruction streams of the three branches must differ:
     that is vulnerability 1. *)
  let stream z =
    let _, ev = run_sampler ~n:1 ~k:1 ~draws:[| (z, 0) |] () in
    Array.to_list ev |> List.map (fun e -> Inst.to_string e.Trace.inst)
  in
  let pos = stream 3 and neg = stream (-3) and zero = stream 0 in
  Alcotest.(check bool) "pos <> neg" true (pos <> neg);
  Alcotest.(check bool) "pos <> zero" true (pos <> zero);
  Alcotest.(check bool) "neg <> zero" true (neg <> zero)

let test_sampler_branchless_paths_identical () =
  let stream z =
    let _, ev = run_sampler ~variant:Sampler_prog.Branchless ~n:1 ~k:1 ~draws:[| (z, 0) |] () in
    Array.to_list ev |> List.map (fun e -> Inst.to_string e.Trace.inst)
  in
  Alcotest.(check bool) "pos = neg instruction stream" true (stream 3 = stream (-3));
  Alcotest.(check bool) "pos = zero instruction stream" true (stream 3 = stream 0)

let test_sampler_multi_plane () =
  (* k = 1 only prime available in moduli_seal; craft a two-prime chain. *)
  let layout = Sampler_prog.default_layout in
  let prog = Sampler_prog.build ~n:3 ~k:2 () in
  let mem = Memory.create layout.Sampler_prog.ram_size in
  Memory.load_program mem 0 prog.Asm.words;
  let moduli = [| 97; 193 |] in
  Sampler_prog.stage_moduli mem layout moduli;
  Sampler_prog.install_noise_port mem ~draws:[| (2, 0); (-3, 0); (0, 0) |];
  let cpu = Cpu.create mem in
  ignore (Cpu.run ~max_steps:1_000_000 cpu);
  let poly = Sampler_prog.read_poly mem layout ~n:3 ~k:2 in
  Alcotest.(check int) "plane0 pos" 2 poly.(0).(0);
  Alcotest.(check int) "plane1 pos" 2 poly.(1).(0);
  Alcotest.(check int) "plane0 neg" (97 - 3) poly.(0).(1);
  Alcotest.(check int) "plane1 neg" (193 - 3) poly.(1).(1);
  Alcotest.(check int) "plane0 zero" 0 poly.(0).(2);
  Alcotest.(check int) "plane1 zero" 0 poly.(1).(2)

let test_sampler_large_modulus_64bit () =
  (* Exercise the 64-bit subtract path with a modulus above 2^32. *)
  let layout = Sampler_prog.default_layout in
  let prog = Sampler_prog.build ~n:1 ~k:1 () in
  let mem = Memory.create layout.Sampler_prog.ram_size in
  Memory.load_program mem 0 prog.Asm.words;
  let q = (1 lsl 45) + 9 in
  Sampler_prog.stage_moduli mem layout [| q |];
  Sampler_prog.install_noise_port mem ~draws:[| (-11, 0) |];
  let cpu = Cpu.create mem in
  ignore (Cpu.run ~max_steps:1_000_000 cpu);
  let poly = Sampler_prog.read_poly mem layout ~n:1 ~k:1 in
  Alcotest.(check int) "q - 11" (q - 11) poly.(0).(0)

let test_sampler_draws_of_gaussian () =
  let g = rng () in
  let draws, noises = Sampler_prog.draws_of_gaussian g Mathkit.Gaussian.seal_default ~count:1_000 in
  Alcotest.(check int) "count" 1_000 (Array.length draws);
  Array.iteri
    (fun i (z, rej) ->
      Alcotest.(check int) "queue matches ground truth" noises.(i) z;
      Alcotest.(check bool) "bounded" true (abs z <= 20);
      Alcotest.(check bool) "rejections non-negative" true (rej >= 0))
    draws;
  (* Polar method rejects ~21.5% of points, so rejections must occur. *)
  let total_rej = Array.fold_left (fun acc (_, r) -> acc + r) 0 draws in
  Alcotest.(check bool) "some rejections" true (total_rej > 50)

let test_sampler_end_to_end_gaussian () =
  let g = rng () in
  let n = 64 in
  let draws, noises = Sampler_prog.draws_of_gaussian g Mathkit.Gaussian.seal_default ~count:n in
  let poly, _ = run_sampler ~n ~k:1 ~draws () in
  Array.iteri
    (fun i z -> Alcotest.(check int) (Printf.sprintf "coeff %d" i) (expected_coeff 132120577 z) poly.(0).(i))
    noises

let suite =
  List.map
    (fun (name, f) -> Alcotest.test_case name `Quick f)
    [
      ("codec roundtrip (5000 random)", test_codec_roundtrip);
      ("codec known encodings", test_codec_known_words);
      ("codec rejects bad immediate", test_codec_rejects_bad_imm);
      ("codec illegal decode", test_codec_illegal_decode);
      ("codec illegal-word corpus", test_codec_illegal_corpus);
      ("memory word roundtrip", test_memory_word_roundtrip);
      ("memory byte sign extension", test_memory_byte_sign);
      ("memory half sign extension", test_memory_half_sign);
      ("memory little endian", test_memory_little_endian);
      ("memory unaligned raises", test_memory_unaligned_raises);
      ("memory mmio routing", test_memory_mmio);
      ("asm labels forward/backward", test_asm_forward_backward_labels);
      ("asm duplicate label raises", test_asm_duplicate_label_raises);
      ("asm undefined label raises", test_asm_undefined_label_raises);
      ("asm branch out of range names label", test_asm_branch_out_of_range);
      ("asm li large constants", test_asm_li_large_constant);
      ("asm call/ret", test_asm_call_ret);
      ("cpu add wraps", test_cpu_add_wraps);
      ("cpu sub wraps", test_cpu_sub_wraps);
      ("cpu slt signed/unsigned", test_cpu_slt);
      ("cpu shifts", test_cpu_shifts);
      ("cpu mul family", test_cpu_mul);
      ("cpu div/rem edge cases", test_cpu_div_edge_cases);
      ("cpu div rounds toward zero", test_cpu_div_toward_zero);
      ("cpu x0 hardwired", test_cpu_x0_hardwired);
      ("cpu load/store", test_cpu_load_store_program);
      ("cpu branch direction in events", test_cpu_branch_events);
      ("cpu cycle accounting", test_cpu_cycle_accounting);
      ("cpu reset", test_cpu_reset);
      ("sampler vulnerable semantics", test_sampler_vulnerable_correct);
      ("sampler branchless same output", test_sampler_branchless_matches);
      ("sampler shuffled permutation", test_sampler_shuffled_matches);
      ("sampler time-variant rejections", test_sampler_rejections_lengthen_trace);
      ("sampler branch paths differ (vuln 1)", test_sampler_branch_paths_differ);
      ("sampler branchless paths identical", test_sampler_branchless_paths_identical);
      ("sampler multi-plane RNS", test_sampler_multi_plane);
      ("sampler 64-bit modulus", test_sampler_large_modulus_64bit);
      ("sampler gaussian draw queue", test_sampler_draws_of_gaussian);
      ("sampler end-to-end gaussian", test_sampler_end_to_end_gaussian);
    ]

(* --- property tests: ALU semantics vs a reference model ------------------ *)

let u32 x = x land 0xFFFFFFFF
let signed32 x = if x land 0x80000000 <> 0 then x - 0x100000000 else x

let reference op a b =
  match op with
  | Inst.Add _ -> u32 (a + b)
  | Inst.Sub _ -> u32 (a - b)
  | Inst.Xor _ -> a lxor b
  | Inst.Or _ -> a lor b
  | Inst.And _ -> a land b
  | Inst.Sll _ -> u32 (a lsl (b land 31))
  | Inst.Srl _ -> a lsr (b land 31)
  | Inst.Sra _ -> u32 (signed32 a asr (b land 31))
  | Inst.Slt _ -> if signed32 a < signed32 b then 1 else 0
  | Inst.Sltu _ -> if a < b then 1 else 0
  | Inst.Mul _ -> Int64.to_int (Int64.logand (Int64.mul (Int64.of_int a) (Int64.of_int b)) 0xFFFFFFFFL)
  | Inst.Mulh _ ->
      u32 (Int64.to_int (Int64.shift_right (Int64.mul (Int64.of_int (signed32 a)) (Int64.of_int (signed32 b))) 32))
  | Inst.Mulhsu _ -> u32 (Int64.to_int (Int64.shift_right (Int64.mul (Int64.of_int (signed32 a)) (Int64.of_int b)) 32))
  | Inst.Mulhu _ ->
      (* exact high word via the mathkit 128-bit product *)
      let hi, lo = Mathkit.Modular.mul128 a b in
      u32 ((hi lsl 30) lor (lo lsr 32))
  | Inst.Div _ ->
      let sa = signed32 a and sb = signed32 b in
      if sb = 0 then 0xFFFFFFFF else if sa = -0x80000000 && sb = -1 then 0x80000000 else u32 (sa / sb)
  | Inst.Divu _ -> if b = 0 then 0xFFFFFFFF else a / b
  | Inst.Rem _ ->
      let sa = signed32 a and sb = signed32 b in
      if sb = 0 then u32 sa else if sa = -0x80000000 && sb = -1 then 0 else u32 (sa mod sb)
  | Inst.Remu _ -> if b = 0 then a else a mod b
  | _ -> invalid_arg "reference: not an ALU op"

let alu_ops =
  let mk f = f (Inst.a 0) (Inst.a 1) (Inst.a 2) in
  [
    ("add", mk (fun d a b -> Inst.Add (d, a, b)));
    ("sub", mk (fun d a b -> Inst.Sub (d, a, b)));
    ("xor", mk (fun d a b -> Inst.Xor (d, a, b)));
    ("or", mk (fun d a b -> Inst.Or (d, a, b)));
    ("and", mk (fun d a b -> Inst.And (d, a, b)));
    ("sll", mk (fun d a b -> Inst.Sll (d, a, b)));
    ("srl", mk (fun d a b -> Inst.Srl (d, a, b)));
    ("sra", mk (fun d a b -> Inst.Sra (d, a, b)));
    ("slt", mk (fun d a b -> Inst.Slt (d, a, b)));
    ("sltu", mk (fun d a b -> Inst.Sltu (d, a, b)));
    ("mul", mk (fun d a b -> Inst.Mul (d, a, b)));
    ("mulh", mk (fun d a b -> Inst.Mulh (d, a, b)));
    ("mulhsu", mk (fun d a b -> Inst.Mulhsu (d, a, b)));
    ("mulhu", mk (fun d a b -> Inst.Mulhu (d, a, b)));
    ("div", mk (fun d a b -> Inst.Div (d, a, b)));
    ("divu", mk (fun d a b -> Inst.Divu (d, a, b)));
    ("rem", mk (fun d a b -> Inst.Rem (d, a, b)));
    ("remu", mk (fun d a b -> Inst.Remu (d, a, b)));
  ]

let qcheck_cases =
  let open QCheck in
  let word = int_bound 0xFFFFFFF in
  let edge_words = [ 0; 1; 0x7FFFFFFF; 0x80000000; 0xFFFFFFFF; 0xFFFFFFFE ] in
  let arbitrary_word =
    (* mix random words with 32-bit edge cases *)
    map
      (fun (pick, r, shift) ->
        if pick < 3 then List.nth edge_words (pick * 2 + (r land 1)) else u32 (r lsl (shift land 7)))
      (triple (int_bound 5) word (int_bound 7))
  in
  List.map
    (fun (name, op) ->
      Test.make ~name:(Printf.sprintf "cpu %s matches reference" name) ~count:200
        (pair arbitrary_word arbitrary_word)
        (fun (a, b) -> exec_rr op a b = reference op a b))
    alu_ops

let codec_qcheck_cases =
  let open QCheck in
  [
    (* structural equality: encode is injective on legal instructions *)
    Test.make ~name:"codec encode/decode roundtrip (property)" ~count:2000 int
      (fun seed ->
        let g = Mathkit.Prng.create ~seed:(Int64.of_int seed) () in
        let inst = arbitrary_inst g in
        Codec.decode (Codec.encode inst) = inst);
    (* decode is total up to Codec.Illegal: no random word may escape
       through any other exception *)
    Test.make ~name:"codec decode total (Illegal or a value)" ~count:5000
      (int_bound 0xFFFFFFF)
      (fun r ->
        let word = Int32.of_int ((r * 0x9E3779B9) land 0xFFFFFFFF) in
        match Codec.decode word with
        | _ -> true
        | exception Codec.Illegal w -> w = word);
  ]

let suite = suite @ List.map QCheck_alcotest.to_alcotest (qcheck_cases @ codec_qcheck_cases)

(* --- CDT firmware variant (prior-work baseline) --------------------------- *)

let test_cdt_thresholds_monotone () =
  let t = Sampler_prog.cdt_thresholds ~sigma:3.19 in
  Alcotest.(check int) "entry count" Sampler_prog.cdt_entries (Array.length t);
  let prev = ref (-1) in
  Array.iter
    (fun v ->
      Alcotest.(check bool) "monotone non-decreasing" true (v >= !prev);
      Alcotest.(check bool) "31-bit range" true (v >= 0 && v <= 0x7FFFFFFF);
      prev := v)
    t;
  Alcotest.(check int) "saturates at 1.0" 0x7FFFFFFF t.(Sampler_prog.cdt_entries - 1)

let test_cdt_draws_distribution () =
  let g = rng () in
  let _, noises = Sampler_prog.cdt_draws_of_gaussian g ~sigma:3.19 ~count:50_000 in
  let acc = Mathkit.Stats.running () in
  Array.iter (fun z -> Mathkit.Stats.push acc (float_of_int z)) noises;
  Alcotest.(check bool) "mean near 0" true (Float.abs (Mathkit.Stats.mean acc) < 0.06);
  Alcotest.(check bool) "stddev near sigma" true (Float.abs (Mathkit.Stats.stddev acc -. 3.19) < 0.15)

let test_cdt_force_draw_hits_band () =
  let g = rng () in
  let thresholds = Sampler_prog.cdt_thresholds ~sigma:3.19 in
  let magnitude u = Array.fold_left (fun acc t -> if t < u then acc + 1 else acc) 0 thresholds in
  List.iter
    (fun v ->
      for _ = 1 to 50 do
        let u, sgn = Sampler_prog.cdt_force_draw g ~sigma:3.19 ~value:v in
        let m = magnitude u in
        let produced = if sgn = 1 then -m else m in
        Alcotest.(check int) (Printf.sprintf "forced %d" v) v produced
      done)
    [ 0; 1; -1; 5; -5; 14; -14 ]

let test_cdt_firmware_semantics () =
  (* run the CDT firmware directly with crafted entropy *)
  let layout = Sampler_prog.default_layout in
  let prog = Sampler_prog.build ~variant:Sampler_prog.Cdt_table ~n:3 ~k:1 () in
  let mem = Memory.create layout.Sampler_prog.ram_size in
  Memory.load_program mem 0 prog.Asm.words;
  Sampler_prog.stage_moduli mem layout [| 132120577 |];
  let thresholds = Sampler_prog.cdt_thresholds ~sigma:3.19 in
  Sampler_prog.stage_cdt_table mem layout thresholds;
  (* entropy: u below every threshold -> magnitude 0; u above the 2nd
     threshold but not the 3rd -> magnitude 2 *)
  let u_for m = if m = 0 then 0 else thresholds.(m - 1) + 1 in
  Sampler_prog.install_cdt_port mem ~draws:[| (u_for 0, 0); (u_for 2, 0); (u_for 3, 1) |];
  let cpu = Cpu.create mem in
  ignore (Cpu.run ~max_steps:1_000_000 cpu);
  let poly = Sampler_prog.read_poly mem layout ~n:3 ~k:1 in
  Alcotest.(check int) "zero" 0 poly.(0).(0);
  Alcotest.(check int) "+2" 2 poly.(0).(1);
  Alcotest.(check int) "-3 stored as q-3" (132120577 - 3) poly.(0).(2)

let test_cdt_constant_scan_length () =
  (* the scan executes the same instruction count whatever the value *)
  let run_count v =
    let layout = Sampler_prog.default_layout in
    let prog = Sampler_prog.build ~variant:Sampler_prog.Cdt_table ~n:1 ~k:1 () in
    let mem = Memory.create layout.Sampler_prog.ram_size in
    Memory.load_program mem 0 prog.Asm.words;
    Sampler_prog.stage_moduli mem layout [| 132120577 |];
    Sampler_prog.stage_cdt_table mem layout (Sampler_prog.cdt_thresholds ~sigma:3.19);
    let g = Mathkit.Prng.create ~seed:5L () in
    Sampler_prog.install_cdt_port mem ~draws:[| Sampler_prog.cdt_force_draw g ~sigma:3.19 ~value:v |];
    let recorder = Trace.recorder () in
    let cpu = Cpu.create ~tracer:(Trace.record recorder) mem in
    ignore (Cpu.run ~max_steps:1_000_000 cpu);
    (* count instructions inside the dist subroutine's scan loop *)
    Array.length (Trace.events recorder)
  in
  (* same-sign values must execute identical counts (the scan is
     constant-time, and the assignment body is branchless); the only
     data-dependent instruction left is the sign-branch negation *)
  Alcotest.(check int) "positive scan constant" (run_count 3) (run_count 9);
  Alcotest.(check int) "negative scan constant" (run_count (-3)) (run_count (-9));
  Alcotest.(check int) "negation is the single residual instruction" (run_count 3 + 1) (run_count (-3))

let cdt_cases =
  [
    ("cdt thresholds monotone", test_cdt_thresholds_monotone);
    ("cdt draw distribution", test_cdt_draws_distribution);
    ("cdt force draw hits band", test_cdt_force_draw_hits_band);
    ("cdt firmware semantics", test_cdt_firmware_semantics);
    ("cdt constant scan length", test_cdt_constant_scan_length);
  ]

let suite = suite @ List.map (fun (name, f) -> Alcotest.test_case name `Quick f) cdt_cases
